//! BLAS-1 style kernels on `f64` slices.
//!
//! All functions assert matching lengths and are branch-free in the hot
//! path; the SGD inner loop is built entirely from these. The five hot
//! kernels ([`dot`], [`norm_sq`], [`axpy`], [`scale`], [`axpy_project_l2`])
//! dispatch once per process to the widest SIMD implementation the CPU
//! supports (see [`crate::simd`]); `BOLTON_SIMD=off` pins the scalar
//! 4-wide reference, which is bit-identical to the pre-SIMD kernels.
//!
//! Reproducibility: results are bit-identical across runs for a fixed lane
//! width. `scalar` and `avx2` share a 4-lane reduction and agree bit for
//! bit; `avx512` keeps 16 partial sums (two interleaved 8-lane vectors)
//! and reassociates low-order bits of the reductions (element-wise kernels
//! agree at every width).

use crate::simd;

/// Dot product `⟨x, y⟩`, accumulated lane-parallel.
///
/// Independent per-lane accumulators break the sequential-add dependency
/// chain; the pairwise reduction order per lane width is fixed, so results
/// stay bit-reproducible at a given width (`(a₀+a₁)+(a₂+a₃)+tail` for the
/// 4-wide modes).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    simd::dot(simd::active(), x, y)
}

/// Squared Euclidean norm `‖x‖²` (same lane-parallel accumulation as
/// [`dot`], so `norm_sq(x) == dot(x, x)` bit-for-bit under every dispatch
/// mode).
#[inline]
pub fn norm_sq(x: &[f64]) -> f64 {
    simd::norm_sq(simd::active(), x)
}

/// Euclidean norm `‖x‖`.
#[inline]
pub fn norm(x: &[f64]) -> f64 {
    norm_sq(x).sqrt()
}

/// `y ← y + alpha·x` (the classic `axpy`). Element-wise, so bit-identical
/// under every dispatch mode.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    simd::axpy(simd::active(), alpha, x, y)
}

/// `x ← alpha·x`. Element-wise, so bit-identical under every dispatch mode.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    simd::scale(simd::active(), alpha, x)
}

/// Element-wise `out ← x − y`.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn sub(x: &[f64], y: &[f64], out: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    assert_eq!(x.len(), out.len(), "sub: output length mismatch");
    for ((o, a), b) in out.iter_mut().zip(x.iter()).zip(y.iter()) {
        *o = a - b;
    }
}

/// Euclidean distance `‖x − y‖`.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn distance(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "distance: length mismatch");
    x.iter().zip(y.iter()).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
}

/// Sets every element to zero.
#[inline]
pub fn fill_zero(x: &mut [f64]) {
    x.fill(0.0);
}

/// Projects `w` onto the L2 ball of radius `radius` centered at the origin:
/// `Π_C(w) = argmin_{v: ‖v‖ ≤ R} ‖v − w‖`, i.e. rescale iff `‖w‖ > R`.
///
/// Returns the pre-projection norm (useful for instrumentation).
///
/// # Panics
/// Panics if `radius` is negative or NaN.
pub fn project_l2_ball(w: &mut [f64], radius: f64) -> f64 {
    assert!(radius >= 0.0, "radius must be >= 0");
    let n = norm(w);
    if n > radius {
        // radius/n < 1; rescaling moves w to the ball's surface.
        scale(radius / n, w);
    }
    n
}

/// Fused SGD update step: `w ← Π_R(w + alpha·x)` in a single pass.
///
/// Applies the axpy and accumulates the squared norm of the updated vector
/// in the same sweep (the separate `axpy` + `norm` + conditional `scale`
/// sequence reads `w` twice). The accumulation uses the same lane-parallel
/// order as [`norm_sq`] within each dispatch mode, so the result is
/// bit-identical to `axpy(alpha, x, w); project_l2_ball(w, radius)` under
/// every mode.
///
/// Returns the pre-projection norm `‖w + alpha·x‖`.
///
/// # Panics
/// Panics if lengths differ or `radius` is negative or NaN.
pub fn axpy_project_l2(alpha: f64, x: &[f64], w: &mut [f64], radius: f64) -> f64 {
    simd::axpy_project_l2(simd::active(), alpha, x, w, radius)
}

/// Rescales `x` to unit L2 norm in place. Zero vectors are left unchanged
/// (there is no canonical direction to pick).
pub fn normalize_unit(x: &mut [f64]) {
    let n = norm(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
}

/// `out ← Σ coeffs[i]·vectors[i]` — weighted model averaging (Lemma 10).
///
/// # Panics
/// Panics if the numbers of coefficients and vectors differ, or if any
/// vector's length differs from `out`.
pub fn weighted_sum(coeffs: &[f64], vectors: &[&[f64]], out: &mut [f64]) {
    assert_eq!(coeffs.len(), vectors.len(), "weighted_sum: arity mismatch");
    fill_zero(out);
    for (&c, v) in coeffs.iter().zip(vectors.iter()) {
        axpy(c, v, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norms() {
        assert_eq!(norm_sq(&[3.0, 4.0]), 25.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(norm(&[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![2.0, -4.0];
        scale(0.5, &mut x);
        assert_eq!(x, vec![1.0, -2.0]);
    }

    #[test]
    fn sub_and_distance() {
        let mut out = vec![0.0; 2];
        sub(&[5.0, 1.0], &[2.0, 5.0], &mut out);
        assert_eq!(out, vec![3.0, -4.0]);
        assert_eq!(distance(&[5.0, 1.0], &[2.0, 5.0]), 5.0);
    }

    #[test]
    fn projection_noop_inside_ball() {
        let mut w = vec![0.3, 0.4];
        let pre = project_l2_ball(&mut w, 1.0);
        assert_eq!(w, vec![0.3, 0.4]);
        assert!((pre - 0.5).abs() < 1e-12);
    }

    #[test]
    fn projection_rescales_outside_ball() {
        let mut w = vec![3.0, 4.0];
        project_l2_ball(&mut w, 1.0);
        assert!((norm(&w) - 1.0).abs() < 1e-12);
        // Direction preserved.
        assert!((w[0] / w[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn projection_zero_radius() {
        let mut w = vec![1.0, 2.0];
        project_l2_ball(&mut w, 0.0);
        assert_eq!(norm(&w), 0.0);
    }

    #[test]
    fn normalize_unit_vector() {
        let mut x = vec![0.0, 5.0];
        normalize_unit(&mut x);
        assert_eq!(x, vec![0.0, 1.0]);
        let mut zero = vec![0.0, 0.0];
        normalize_unit(&mut zero);
        assert_eq!(zero, vec![0.0, 0.0]);
    }

    #[test]
    fn dot_tail_lengths() {
        // Exercise every remainder class of the 4-wide kernel.
        for len in 0..9usize {
            let x: Vec<f64> = (0..len).map(|i| i as f64 + 1.0).collect();
            let y: Vec<f64> = (0..len).map(|i| 2.0 * i as f64 - 3.0).collect();
            let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            assert!((dot(&x, &y) - naive).abs() < 1e-12, "len {len}");
            assert_eq!(norm_sq(&x), dot(&x, &x), "len {len}");
        }
    }

    #[test]
    fn axpy_project_matches_unfused() {
        for len in [0usize, 1, 3, 4, 5, 8, 13] {
            let x: Vec<f64> = (0..len).map(|i| (i as f64 * 0.7).sin()).collect();
            let w0: Vec<f64> = (0..len).map(|i| (i as f64 * 1.3).cos()).collect();
            for radius in [0.001, 0.5, 100.0] {
                let mut unfused = w0.clone();
                axpy(-0.25, &x, &mut unfused);
                let pre_unfused = project_l2_ball(&mut unfused, radius);
                let mut fused = w0.clone();
                let pre_fused = axpy_project_l2(-0.25, &x, &mut fused, radius);
                assert_eq!(fused, unfused, "len {len} radius {radius}");
                assert_eq!(pre_fused, pre_unfused, "len {len} radius {radius}");
            }
        }
    }

    #[test]
    fn axpy_project_noop_inside_ball() {
        let mut w = vec![0.1, 0.2];
        let pre = axpy_project_l2(1.0, &[0.1, 0.0], &mut w, 10.0);
        assert_eq!(w, vec![0.2, 0.2]);
        assert!((pre - norm(&[0.2, 0.2])).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_project_length_mismatch_panics() {
        axpy_project_l2(1.0, &[1.0], &mut [1.0, 2.0], 1.0);
    }

    #[test]
    fn weighted_sum_matches_manual() {
        let a = [1.0, 0.0];
        let b = [0.0, 2.0];
        let mut out = vec![0.0; 2];
        weighted_sum(&[0.5, 0.25], &[&a, &b], &mut out);
        assert_eq!(out, vec![0.5, 0.5]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(-100.0f64..100.0, len..=len)
    }

    proptest! {
        #[test]
        fn cauchy_schwarz(x in vec_strategy(8), y in vec_strategy(8)) {
            let lhs = dot(&x, &y).abs();
            let rhs = norm(&x) * norm(&y);
            prop_assert!(lhs <= rhs + 1e-9 * rhs.max(1.0));
        }

        #[test]
        fn triangle_inequality(x in vec_strategy(8), y in vec_strategy(8), z in vec_strategy(8)) {
            let d = distance(&x, &z);
            let via = distance(&x, &y) + distance(&y, &z);
            prop_assert!(d <= via + 1e-9 * via.max(1.0));
        }

        /// Projection onto a convex set is non-expansive:
        /// ‖Π(u) − Π(v)‖ ≤ ‖u − v‖. This is the property the paper's
        /// constrained-optimization extension relies on (Section 3.2.3).
        #[test]
        fn projection_is_nonexpansive(u in vec_strategy(6), v in vec_strategy(6), r in 0.01f64..50.0) {
            let before = distance(&u, &v);
            let mut pu = u.clone();
            let mut pv = v.clone();
            project_l2_ball(&mut pu, r);
            project_l2_ball(&mut pv, r);
            let after = distance(&pu, &pv);
            prop_assert!(after <= before + 1e-9 * before.max(1.0),
                "after {after} > before {before}");
        }

        #[test]
        fn projection_idempotent(u in vec_strategy(6), r in 0.01f64..50.0) {
            let mut once = u.clone();
            project_l2_ball(&mut once, r);
            let mut twice = once.clone();
            project_l2_ball(&mut twice, r);
            for (a, b) in once.iter().zip(twice.iter()) {
                prop_assert!((a - b).abs() <= 1e-12);
            }
        }

        #[test]
        fn normalized_vectors_are_unit(x in vec_strategy(5)) {
            prop_assume!(norm(&x) > 1e-6);
            let mut y = x.clone();
            normalize_unit(&mut y);
            prop_assert!((norm(&y) - 1.0).abs() < 1e-9);
        }
    }
}

//! Random projection (Johnson–Lindenstrauss transforms).
//!
//! The paper projects MNIST from 784 to 50 dimensions before private
//! training because ε-DP noise magnitude grows as `d·ln d` (Theorem 2).
//! A random linear map is data-independent, so neighboring datasets remain
//! neighboring and the privacy analysis is unaffected (Section 2, "Random
//! Projection").

use crate::matrix::Matrix;
use bolton_rng::dist::standard_normal;
use bolton_rng::Rng;

/// A fitted random projection `T : R^d → R^k`, applied as `x ↦ T·x`.
#[derive(Clone, Debug)]
pub struct RandomProjection {
    matrix: Matrix,
}

impl RandomProjection {
    /// Gaussian JL transform: entries i.i.d. `N(0, 1/k)` so that
    /// `E‖T x‖² = ‖x‖²`.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, input_dim: usize, output_dim: usize) -> Self {
        assert!(input_dim > 0 && output_dim > 0, "dimensions must be positive");
        let sd = 1.0 / (output_dim as f64).sqrt();
        let matrix = Matrix::from_fn(output_dim, input_dim, |_, _| sd * standard_normal(rng));
        Self { matrix }
    }

    /// Achlioptas' sparse projection: entries `±√(3/k)` each with probability
    /// 1/6, zero with probability 2/3. Same JL guarantee, ~3× fewer flops.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn sparse<R: Rng + ?Sized>(rng: &mut R, input_dim: usize, output_dim: usize) -> Self {
        assert!(input_dim > 0 && output_dim > 0, "dimensions must be positive");
        let magnitude = (3.0 / output_dim as f64).sqrt();
        let matrix = Matrix::from_fn(output_dim, input_dim, |_, _| match rng.next_below(6) {
            0 => magnitude,
            1 => -magnitude,
            _ => 0.0,
        });
        Self { matrix }
    }

    /// Input dimension `d`.
    pub fn input_dim(&self) -> usize {
        self.matrix.cols()
    }

    /// Output dimension `k`.
    pub fn output_dim(&self) -> usize {
        self.matrix.rows()
    }

    /// Projects `x` into the low-dimensional space.
    ///
    /// # Panics
    /// Panics if `x.len() != input_dim()`.
    pub fn project(&self, x: &[f64]) -> Vec<f64> {
        self.matrix.matvec(x)
    }

    /// Projects `x` into a caller-provided buffer of length `output_dim()`.
    pub fn project_into(&self, x: &[f64], out: &mut [f64]) {
        self.matrix.matvec_into(x, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::{distance, norm};
    use bolton_rng::seeded;

    #[test]
    fn dimensions_are_tracked() {
        let mut rng = seeded(31);
        let p = RandomProjection::gaussian(&mut rng, 100, 20);
        assert_eq!(p.input_dim(), 100);
        assert_eq!(p.output_dim(), 20);
        assert_eq!(p.project(&vec![1.0; 100]).len(), 20);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dim_panics() {
        let mut rng = seeded(32);
        RandomProjection::gaussian(&mut rng, 0, 5);
    }

    /// JL property, statistically: projected pairwise distances concentrate
    /// around the originals. With k = 64 the relative error for a single pair
    /// is ~1/√k; we allow a generous 4σ band at a fixed seed.
    #[test]
    fn gaussian_projection_approximately_preserves_distances() {
        let mut rng = seeded(33);
        let d = 300;
        let k = 64;
        let p = RandomProjection::gaussian(&mut rng, d, k);
        let points: Vec<Vec<f64>> =
            (0..6).map(|_| (0..d).map(|_| rng.next_range(-1.0, 1.0)).collect()).collect();
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                let orig = distance(&points[i], &points[j]);
                let proj = distance(&p.project(&points[i]), &p.project(&points[j]));
                let rel = (proj - orig).abs() / orig;
                assert!(rel < 0.5, "pair ({i},{j}) relative distortion {rel}");
            }
        }
    }

    #[test]
    fn gaussian_projection_preserves_norm_in_expectation() {
        let mut rng = seeded(34);
        let d = 200;
        let k = 50;
        let x: Vec<f64> = (0..d).map(|_| rng.next_range(-1.0, 1.0)).collect();
        let n_trials = 200;
        let mean_sq: f64 = (0..n_trials)
            .map(|_| {
                let p = RandomProjection::gaussian(&mut rng, d, k);
                let y = p.project(&x);
                norm(&y).powi(2)
            })
            .sum::<f64>()
            / n_trials as f64;
        let target = norm(&x).powi(2);
        assert!((mean_sq - target).abs() < 0.1 * target, "E‖Tx‖² = {mean_sq} vs ‖x‖² = {target}");
    }

    #[test]
    fn sparse_projection_has_correct_support() {
        let mut rng = seeded(35);
        let p = RandomProjection::sparse(&mut rng, 50, 10);
        let magnitude = (3.0f64 / 10.0).sqrt();
        let mut zeros = 0usize;
        let mut total = 0usize;
        for r in 0..10 {
            for c in 0..50 {
                let v = p.matrix.get(r, c);
                total += 1;
                if v == 0.0 {
                    zeros += 1;
                } else {
                    assert!((v.abs() - magnitude).abs() < 1e-12, "entry {v}");
                }
            }
        }
        let zero_frac = zeros as f64 / total as f64;
        assert!((zero_frac - 2.0 / 3.0).abs() < 0.1, "zero fraction {zero_frac}");
    }

    #[test]
    fn sparse_projection_roughly_preserves_distances() {
        let mut rng = seeded(36);
        let p = RandomProjection::sparse(&mut rng, 300, 80);
        let a: Vec<f64> = (0..300).map(|_| rng.next_range(-1.0, 1.0)).collect();
        let b: Vec<f64> = (0..300).map(|_| rng.next_range(-1.0, 1.0)).collect();
        let orig = distance(&a, &b);
        let proj = distance(&p.project(&a), &p.project(&b));
        assert!((proj - orig).abs() / orig < 0.5, "orig {orig} proj {proj}");
    }

    #[test]
    fn project_into_matches_project() {
        let mut rng = seeded(37);
        let p = RandomProjection::gaussian(&mut rng, 30, 7);
        let x: Vec<f64> = (0..30).map(|_| rng.next_f64()).collect();
        let mut out = vec![0.0; 7];
        p.project_into(&x, &mut out);
        assert_eq!(out, p.project(&x));
    }
}

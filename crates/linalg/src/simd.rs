//! Runtime-dispatched SIMD kernels behind [`crate::vector`].
//!
//! The public BLAS-1 API in [`crate::vector`] routes every call through one
//! of three implementations, chosen once per process:
//!
//! * **`scalar`** — the reference 4-wide unrolled loops (exactly the
//!   kernels this workspace shipped before explicit SIMD existed). Always
//!   available, on every architecture.
//! * **`avx2`** — explicit `f64x4` AVX2 intrinsics. One 4-lane vector
//!   accumulator replays the scalar kernel's four accumulators lane for
//!   lane, so results are **bit-identical** to `scalar`.
//! * **`avx512`** — explicit `f64x8` AVX-512F intrinsics, two interleaved
//!   8-lane accumulators per reduction (16 partial sums, so one vaddpd
//!   latency chain never bounds throughput): reductions reassociate, so
//!   low-order bits of `dot`/`norm_sq`/`axpy_project_l2` differ from the
//!   4-wide modes (element-wise kernels — `axpy`, `scale` — are
//!   bit-identical at every width).
//!
//! ## Reproducibility contract (per lane width)
//!
//! For a fixed lane width `W`, every kernel computes exactly
//! [`reference_dot`]`(W, …)` and friends: `W` running partial sums over
//! lane-strided elements, reduced pairwise
//! (`((a₀+a₁)+(a₂+a₃)) + ((a₄+a₅)+(a₆+a₇)) …`), plus a sequential tail.
//! Therefore:
//!
//! * same lane width ⇒ **bit-identical** results across runs, machines,
//!   and dispatch modes (`scalar` and `avx2` share `W = 4`);
//! * different lane widths reassociate the reduction and differ in
//!   low-order bits — exactly the caveat documented when the 4-wide unroll
//!   replaced the left-fold sums, one more time at `W = 16`.
//!
//! Models trained under `BOLTON_SIMD=off` are bit-for-bit the models of
//! the pre-SIMD workspace at the same seed.
//!
//! ## Selection
//!
//! The `BOLTON_SIMD` environment variable (read once, at the first kernel
//! call) overrides auto-detection: `off`/`scalar` force the reference
//! kernels, `avx2`/`avx512` request a specific instruction set, anything
//! else (or unset, or `auto`) picks the best the CPU supports. A request
//! the hardware cannot honor falls back to the best supported mode at or
//! below it, so a pinned configuration never crashes on older hardware —
//! it only loses the width (and the matching bit pattern).

use std::sync::OnceLock;

/// Environment variable overriding kernel dispatch
/// (`off|scalar|avx2|avx512|auto`).
pub const SIMD_ENV: &str = "BOLTON_SIMD";

/// One dispatchable kernel implementation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Mode {
    /// The reference 4-wide unrolled scalar kernels (`BOLTON_SIMD=off`).
    Scalar,
    /// AVX2 `f64x4` intrinsics — bit-identical to [`Mode::Scalar`].
    Avx2,
    /// AVX-512F `f64x8` intrinsics — 16-wide reductions (two interleaved
    /// 8-lane accumulators, so the single add-latency chain never bounds
    /// throughput; low-order bits differ from the 4-wide modes).
    Avx512,
}

impl Mode {
    /// Every mode, narrowest first.
    pub const ALL: [Mode; 3] = [Mode::Scalar, Mode::Avx2, Mode::Avx512];

    /// Number of independent partial sums a reduction in this mode keeps —
    /// the entire reproducibility contract keys on this value.
    pub fn lane_width(self) -> usize {
        match self {
            Mode::Scalar | Mode::Avx2 => 4,
            Mode::Avx512 => 16,
        }
    }

    /// The knob/JSON spelling of the mode.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Scalar => "scalar",
            Mode::Avx2 => "avx2",
            Mode::Avx512 => "avx512",
        }
    }
}

/// The widest mode this CPU supports (checked at runtime, not compile
/// time — the binary carries every implementation).
pub fn detected() -> Mode {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") {
            return Mode::Avx512;
        }
        if is_x86_feature_detected!("avx2") {
            return Mode::Avx2;
        }
    }
    Mode::Scalar
}

/// Whether this CPU can execute `mode`'s kernels.
pub fn supported(mode: Mode) -> bool {
    mode <= detected()
}

/// The modes this CPU supports, narrowest first.
pub fn supported_modes() -> Vec<Mode> {
    Mode::ALL.into_iter().filter(|&m| supported(m)).collect()
}

/// The process-wide dispatch decision: `BOLTON_SIMD` (read exactly once)
/// clamped to what the hardware supports.
pub fn active() -> Mode {
    static ACTIVE: OnceLock<Mode> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let requested = match std::env::var(SIMD_ENV) {
            Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                "" | "auto" => detected(),
                "off" | "scalar" => Mode::Scalar,
                "avx2" => Mode::Avx2,
                "avx512" => Mode::Avx512,
                other => {
                    eprintln!("{SIMD_ENV}: unknown mode '{other}', using auto-detection");
                    detected()
                }
            },
            Err(_) => detected(),
        };
        // Fall back to the widest supported mode at or below the request.
        Mode::ALL
            .into_iter()
            .rev()
            .find(|&m| m <= requested && supported(m))
            .unwrap_or(Mode::Scalar)
    })
}

/// Pairwise tree reduction `((a₀+a₁)+(a₂+a₃)) + …` — the fixed reduction
/// order every kernel's partial sums collapse through.
fn tree_reduce(acc: &[f64]) -> f64 {
    match acc.len() {
        0 => 0.0,
        1 => acc[0],
        n => {
            let half = n / 2;
            tree_reduce(&acc[..half]) + tree_reduce(&acc[half..])
        }
    }
}

// ---------------------------------------------------------------------------
// Lane-width-parameterized references (the reproducibility contract)
// ---------------------------------------------------------------------------

/// The reference dot product at lane width `lanes`: what every dispatch
/// mode of that width must reproduce bit for bit.
///
/// # Panics
/// Panics on length mismatch or `lanes ∉ {1, 2, 4, 8, 16}`.
pub fn reference_dot(lanes: usize, x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    assert!(lanes.is_power_of_two() && lanes <= 16, "unsupported lane width {lanes}");
    let split = x.len() - x.len() % lanes;
    let mut acc = [0.0f64; 16];
    for (cx, cy) in x[..split].chunks_exact(lanes).zip(y[..split].chunks_exact(lanes)) {
        for j in 0..lanes {
            acc[j] += cx[j] * cy[j];
        }
    }
    let mut tail = 0.0;
    for (a, b) in x[split..].iter().zip(y[split..].iter()) {
        tail += a * b;
    }
    tree_reduce(&acc[..lanes]) + tail
}

/// The reference squared norm at lane width `lanes`
/// (`reference_norm_sq(w, x) == reference_dot(w, x, x)` bit for bit).
///
/// # Panics
/// Panics if `lanes ∉ {1, 2, 4, 8, 16}`.
pub fn reference_norm_sq(lanes: usize, x: &[f64]) -> f64 {
    reference_dot(lanes, x, x)
}

/// The reference fused update-and-project at lane width `lanes`: applies
/// `w ← w + alpha·x`, accumulates `‖w‖²` in the same sweep with `lanes`
/// partial sums, and rescales onto the `radius` ball if needed. Returns
/// the pre-projection norm.
///
/// # Panics
/// Panics on length mismatch, negative/NaN radius, or an unsupported lane
/// width.
pub fn reference_axpy_project_l2(
    lanes: usize,
    alpha: f64,
    x: &[f64],
    w: &mut [f64],
    radius: f64,
) -> f64 {
    assert_eq!(x.len(), w.len(), "axpy_project_l2: length mismatch");
    assert!(radius >= 0.0, "radius must be >= 0");
    assert!(lanes.is_power_of_two() && lanes <= 16, "unsupported lane width {lanes}");
    let split = w.len() - w.len() % lanes;
    let mut acc = [0.0f64; 16];
    for (cw, cx) in w[..split].chunks_exact_mut(lanes).zip(x[..split].chunks_exact(lanes)) {
        for j in 0..lanes {
            cw[j] += alpha * cx[j];
            acc[j] += cw[j] * cw[j];
        }
    }
    let mut tail = 0.0;
    for (wi, xi) in w[split..].iter_mut().zip(x[split..].iter()) {
        *wi += alpha * xi;
        tail += *wi * *wi;
    }
    let n = (tree_reduce(&acc[..lanes]) + tail).sqrt();
    if n > radius {
        scale(Mode::Scalar, radius / n, w);
    }
    n
}

// ---------------------------------------------------------------------------
// Mode-parameterized kernels (tests and benches drive these directly; the
// `vector` API calls them with `active()`)
// ---------------------------------------------------------------------------

/// Dot product under an explicit dispatch mode.
///
/// # Panics
/// Panics on length mismatch or an unsupported mode.
pub fn dot(mode: Mode, x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    assert!(supported(mode), "{} kernels not supported on this CPU", mode.name());
    match mode {
        Mode::Scalar => scalar::dot(x, y),
        // SAFETY: `supported(mode)` verified the CPU feature above.
        #[cfg(target_arch = "x86_64")]
        Mode::Avx2 => unsafe { avx2::dot(x, y) },
        #[cfg(target_arch = "x86_64")]
        Mode::Avx512 => unsafe { avx512::dot(x, y) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::dot(x, y),
    }
}

/// Squared norm under an explicit dispatch mode (`norm_sq(m, x) ==
/// dot(m, x, x)` bit for bit).
///
/// # Panics
/// Panics on an unsupported mode.
pub fn norm_sq(mode: Mode, x: &[f64]) -> f64 {
    assert!(supported(mode), "{} kernels not supported on this CPU", mode.name());
    match mode {
        Mode::Scalar => scalar::norm_sq(x),
        // SAFETY: `supported(mode)` verified the CPU feature above.
        #[cfg(target_arch = "x86_64")]
        Mode::Avx2 => unsafe { avx2::norm_sq(x) },
        #[cfg(target_arch = "x86_64")]
        Mode::Avx512 => unsafe { avx512::norm_sq(x) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::norm_sq(x),
    }
}

/// `y ← y + alpha·x` under an explicit dispatch mode. Element-wise: bit
/// identical across every mode.
///
/// # Panics
/// Panics on length mismatch or an unsupported mode.
pub fn axpy(mode: Mode, alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    assert!(supported(mode), "{} kernels not supported on this CPU", mode.name());
    match mode {
        Mode::Scalar => scalar::axpy(alpha, x, y),
        // SAFETY: `supported(mode)` verified the CPU feature above.
        #[cfg(target_arch = "x86_64")]
        Mode::Avx2 => unsafe { avx2::axpy(alpha, x, y) },
        #[cfg(target_arch = "x86_64")]
        Mode::Avx512 => unsafe { avx512::axpy(alpha, x, y) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::axpy(alpha, x, y),
    }
}

/// `x ← alpha·x` under an explicit dispatch mode. Element-wise: bit
/// identical across every mode.
///
/// # Panics
/// Panics on an unsupported mode.
pub fn scale(mode: Mode, alpha: f64, x: &mut [f64]) {
    assert!(supported(mode), "{} kernels not supported on this CPU", mode.name());
    match mode {
        Mode::Scalar => scalar::scale(alpha, x),
        // SAFETY: `supported(mode)` verified the CPU feature above.
        #[cfg(target_arch = "x86_64")]
        Mode::Avx2 => unsafe { avx2::scale(alpha, x) },
        #[cfg(target_arch = "x86_64")]
        Mode::Avx512 => unsafe { avx512::scale(alpha, x) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::scale(alpha, x),
    }
}

/// Fused `w ← Π_R(w + alpha·x)` under an explicit dispatch mode; returns
/// the pre-projection norm. Bit-identical to the unfused
/// `axpy` + `norm_sq`-based projection *of the same mode*.
///
/// # Panics
/// Panics on length mismatch, negative/NaN radius, or an unsupported mode.
pub fn axpy_project_l2(mode: Mode, alpha: f64, x: &[f64], w: &mut [f64], radius: f64) -> f64 {
    assert_eq!(x.len(), w.len(), "axpy_project_l2: length mismatch");
    assert!(radius >= 0.0, "radius must be >= 0");
    assert!(supported(mode), "{} kernels not supported on this CPU", mode.name());
    match mode {
        Mode::Scalar => scalar::axpy_project_l2(alpha, x, w, radius),
        // SAFETY: `supported(mode)` verified the CPU feature above.
        #[cfg(target_arch = "x86_64")]
        Mode::Avx2 => unsafe { avx2::axpy_project_l2(alpha, x, w, radius) },
        #[cfg(target_arch = "x86_64")]
        Mode::Avx512 => unsafe { avx512::axpy_project_l2(alpha, x, w, radius) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::axpy_project_l2(alpha, x, w, radius),
    }
}

// ---------------------------------------------------------------------------
// Scalar reference kernels — the pre-SIMD 4-wide unrolls, verbatim
// ---------------------------------------------------------------------------

mod scalar {
    pub fn dot(x: &[f64], y: &[f64]) -> f64 {
        let split = x.len() - x.len() % 4;
        let mut acc = [0.0f64; 4];
        for (cx, cy) in x[..split].chunks_exact(4).zip(y[..split].chunks_exact(4)) {
            acc[0] += cx[0] * cy[0];
            acc[1] += cx[1] * cy[1];
            acc[2] += cx[2] * cy[2];
            acc[3] += cx[3] * cy[3];
        }
        let mut tail = 0.0;
        for (a, b) in x[split..].iter().zip(y[split..].iter()) {
            tail += a * b;
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
    }

    pub fn norm_sq(x: &[f64]) -> f64 {
        let split = x.len() - x.len() % 4;
        let mut acc = [0.0f64; 4];
        for c in x[..split].chunks_exact(4) {
            acc[0] += c[0] * c[0];
            acc[1] += c[1] * c[1];
            acc[2] += c[2] * c[2];
            acc[3] += c[3] * c[3];
        }
        let mut tail = 0.0;
        for a in &x[split..] {
            tail += a * a;
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
    }

    pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        for (yi, xi) in y.iter_mut().zip(x.iter()) {
            *yi += alpha * xi;
        }
    }

    pub fn scale(alpha: f64, x: &mut [f64]) {
        for v in x.iter_mut() {
            *v *= alpha;
        }
    }

    pub fn axpy_project_l2(alpha: f64, x: &[f64], w: &mut [f64], radius: f64) -> f64 {
        let split = w.len() - w.len() % 4;
        let mut acc = [0.0f64; 4];
        for (cw, cx) in w[..split].chunks_exact_mut(4).zip(x[..split].chunks_exact(4)) {
            cw[0] += alpha * cx[0];
            cw[1] += alpha * cx[1];
            cw[2] += alpha * cx[2];
            cw[3] += alpha * cx[3];
            acc[0] += cw[0] * cw[0];
            acc[1] += cw[1] * cw[1];
            acc[2] += cw[2] * cw[2];
            acc[3] += cw[3] * cw[3];
        }
        let mut tail = 0.0;
        for (wi, xi) in w[split..].iter_mut().zip(x[split..].iter()) {
            *wi += alpha * xi;
            tail += *wi * *wi;
        }
        let n = ((acc[0] + acc[1]) + (acc[2] + acc[3]) + tail).sqrt();
        if n > radius {
            scale(radius / n, w);
        }
        n
    }
}

// ---------------------------------------------------------------------------
// AVX2 f64x4 kernels — lane-for-lane the scalar 4-wide unroll
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::tree_reduce;
    use std::arch::x86_64::*;

    // Each kernel mirrors its scalar counterpart exactly: one mul + one
    // add per lane per block (never an FMA — the scalar code rounds the
    // product before accumulating, so a fused multiply-add would change
    // bits), and the identical `(a₀+a₁)+(a₂+a₃)+tail` reduction.

    /// # Safety
    /// Caller must have verified AVX2 support; slices must be equal length.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len();
        let split = n - n % 4;
        let (px, py) = (x.as_ptr(), y.as_ptr());
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i < split {
            let vx = _mm256_loadu_pd(px.add(i));
            let vy = _mm256_loadu_pd(py.add(i));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(vx, vy));
            i += 4;
        }
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        let mut tail = 0.0;
        for j in split..n {
            tail += x[j] * y[j];
        }
        tree_reduce(&lanes) + tail
    }

    /// # Safety
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub unsafe fn norm_sq(x: &[f64]) -> f64 {
        dot(x, x)
    }

    /// # Safety
    /// Caller must have verified AVX2 support; slices must be equal length.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = y.len();
        let split = n - n % 4;
        let va = _mm256_set1_pd(alpha);
        let px = x.as_ptr();
        let py = y.as_mut_ptr();
        let mut i = 0;
        while i < split {
            let vy = _mm256_loadu_pd(py.add(i));
            let vx = _mm256_loadu_pd(px.add(i));
            _mm256_storeu_pd(py.add(i), _mm256_add_pd(vy, _mm256_mul_pd(va, vx)));
            i += 4;
        }
        for j in split..n {
            y[j] += alpha * x[j];
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scale(alpha: f64, x: &mut [f64]) {
        let n = x.len();
        let split = n - n % 4;
        let va = _mm256_set1_pd(alpha);
        let px = x.as_mut_ptr();
        let mut i = 0;
        while i < split {
            _mm256_storeu_pd(px.add(i), _mm256_mul_pd(va, _mm256_loadu_pd(px.add(i))));
            i += 4;
        }
        for v in &mut x[split..] {
            *v *= alpha;
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 support; slices must be equal
    /// length; `radius` must be a non-negative non-NaN value.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_project_l2(alpha: f64, x: &[f64], w: &mut [f64], radius: f64) -> f64 {
        let n = w.len();
        let split = n - n % 4;
        let va = _mm256_set1_pd(alpha);
        let px = x.as_ptr();
        let pw = w.as_mut_ptr();
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i < split {
            let vw = _mm256_loadu_pd(pw.add(i));
            let vx = _mm256_loadu_pd(px.add(i));
            let nw = _mm256_add_pd(vw, _mm256_mul_pd(va, vx));
            _mm256_storeu_pd(pw.add(i), nw);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(nw, nw));
            i += 4;
        }
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        let mut tail = 0.0;
        for j in split..n {
            let wi = &mut w[j];
            *wi += alpha * x[j];
            tail += *wi * *wi;
        }
        let norm = (tree_reduce(&lanes) + tail).sqrt();
        if norm > radius {
            scale(radius / norm, w);
        }
        norm
    }
}

// ---------------------------------------------------------------------------
// AVX-512F f64x8 kernels — the 16-wide reduction contract
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx512 {
    use super::tree_reduce;
    use std::arch::x86_64::*;

    // Same mul-then-add discipline as the AVX2 kernels (no FMA), but 16
    // partial sums held in two interleaved zmm accumulators — a single
    // 8-lane chain would serialize on vaddpd latency and lose to AVX2 on
    // cache-resident inputs. Bit-identical to `reference_*(16, …)`, not
    // to the 4-wide modes.

    /// # Safety
    /// Caller must have verified AVX-512F support; slices must be equal
    /// length.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn dot(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len();
        let split = n - n % 16;
        let (px, py) = (x.as_ptr(), y.as_ptr());
        let mut acc0 = _mm512_setzero_pd();
        let mut acc1 = _mm512_setzero_pd();
        let mut i = 0;
        while i < split {
            let x0 = _mm512_loadu_pd(px.add(i));
            let y0 = _mm512_loadu_pd(py.add(i));
            acc0 = _mm512_add_pd(acc0, _mm512_mul_pd(x0, y0));
            let x1 = _mm512_loadu_pd(px.add(i + 8));
            let y1 = _mm512_loadu_pd(py.add(i + 8));
            acc1 = _mm512_add_pd(acc1, _mm512_mul_pd(x1, y1));
            i += 16;
        }
        let mut lanes = [0.0f64; 16];
        _mm512_storeu_pd(lanes.as_mut_ptr(), acc0);
        _mm512_storeu_pd(lanes.as_mut_ptr().add(8), acc1);
        let mut tail = 0.0;
        for j in split..n {
            tail += x[j] * y[j];
        }
        tree_reduce(&lanes) + tail
    }

    /// # Safety
    /// Caller must have verified AVX-512F support.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn norm_sq(x: &[f64]) -> f64 {
        dot(x, x)
    }

    /// # Safety
    /// Caller must have verified AVX-512F support; slices must be equal
    /// length.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = y.len();
        let split = n - n % 8;
        let va = _mm512_set1_pd(alpha);
        let px = x.as_ptr();
        let py = y.as_mut_ptr();
        let mut i = 0;
        while i < split {
            let vy = _mm512_loadu_pd(py.add(i));
            let vx = _mm512_loadu_pd(px.add(i));
            _mm512_storeu_pd(py.add(i), _mm512_add_pd(vy, _mm512_mul_pd(va, vx)));
            i += 8;
        }
        for j in split..n {
            y[j] += alpha * x[j];
        }
    }

    /// # Safety
    /// Caller must have verified AVX-512F support.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn scale(alpha: f64, x: &mut [f64]) {
        let n = x.len();
        let split = n - n % 8;
        let va = _mm512_set1_pd(alpha);
        let px = x.as_mut_ptr();
        let mut i = 0;
        while i < split {
            _mm512_storeu_pd(px.add(i), _mm512_mul_pd(va, _mm512_loadu_pd(px.add(i))));
            i += 8;
        }
        for v in &mut x[split..] {
            *v *= alpha;
        }
    }

    /// # Safety
    /// Caller must have verified AVX-512F support; slices must be equal
    /// length; `radius` must be a non-negative non-NaN value.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn axpy_project_l2(alpha: f64, x: &[f64], w: &mut [f64], radius: f64) -> f64 {
        let n = w.len();
        let split = n - n % 16;
        let va = _mm512_set1_pd(alpha);
        let px = x.as_ptr();
        let pw = w.as_mut_ptr();
        let mut acc0 = _mm512_setzero_pd();
        let mut acc1 = _mm512_setzero_pd();
        let mut i = 0;
        while i < split {
            let w0 = _mm512_loadu_pd(pw.add(i));
            let x0 = _mm512_loadu_pd(px.add(i));
            let n0 = _mm512_add_pd(w0, _mm512_mul_pd(va, x0));
            _mm512_storeu_pd(pw.add(i), n0);
            acc0 = _mm512_add_pd(acc0, _mm512_mul_pd(n0, n0));
            let w1 = _mm512_loadu_pd(pw.add(i + 8));
            let x1 = _mm512_loadu_pd(px.add(i + 8));
            let n1 = _mm512_add_pd(w1, _mm512_mul_pd(va, x1));
            _mm512_storeu_pd(pw.add(i + 8), n1);
            acc1 = _mm512_add_pd(acc1, _mm512_mul_pd(n1, n1));
            i += 16;
        }
        let mut lanes = [0.0f64; 16];
        _mm512_storeu_pd(lanes.as_mut_ptr(), acc0);
        _mm512_storeu_pd(lanes.as_mut_ptr().add(8), acc1);
        let mut tail = 0.0;
        for j in split..n {
            let wi = &mut w[j];
            *wi += alpha * x[j];
            tail += *wi * *wi;
        }
        let norm = (tree_reduce(&lanes) + tail).sqrt();
        if norm > radius {
            scale(radius / norm, w);
        }
        norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(len: usize, f: f64) -> Vec<f64> {
        (0..len).map(|i| (i as f64 * f).sin() * 3.0 - 1.0).collect()
    }

    #[test]
    fn detection_is_consistent() {
        assert!(supported(Mode::Scalar));
        assert!(supported(detected()));
        assert!(supported(active()));
        let modes = supported_modes();
        assert_eq!(modes[0], Mode::Scalar);
        assert!(modes.contains(&detected()));
    }

    #[test]
    fn lane_widths() {
        assert_eq!(Mode::Scalar.lane_width(), 4);
        assert_eq!(Mode::Avx2.lane_width(), 4);
        assert_eq!(Mode::Avx512.lane_width(), 16);
    }

    /// The scalar dispatch mode IS the 4-wide reference (and therefore the
    /// pre-SIMD kernels) bit for bit.
    #[test]
    fn scalar_mode_is_the_4wide_reference() {
        for len in 0..=16 {
            let x = wave(len, 0.7);
            let y = wave(len, 1.3);
            assert_eq!(dot(Mode::Scalar, &x, &y).to_bits(), reference_dot(4, &x, &y).to_bits());
            assert_eq!(norm_sq(Mode::Scalar, &x).to_bits(), reference_norm_sq(4, &x).to_bits());
        }
    }

    /// Every supported mode matches the lane-width reference bit for bit,
    /// across every tail-length class 0–16.
    #[test]
    fn kernels_match_reference_at_their_lane_width() {
        for mode in supported_modes() {
            let w = mode.lane_width();
            for len in 0..=16usize {
                let x = wave(len, 0.7);
                let y = wave(len, 1.3);
                assert_eq!(
                    dot(mode, &x, &y).to_bits(),
                    reference_dot(w, &x, &y).to_bits(),
                    "dot {} len {len}",
                    mode.name()
                );
                assert_eq!(
                    norm_sq(mode, &x).to_bits(),
                    reference_norm_sq(w, &x).to_bits(),
                    "norm_sq {} len {len}",
                    mode.name()
                );
                let mut got = y.clone();
                axpy(mode, -0.37, &x, &mut got);
                let mut want = y.clone();
                super::scalar::axpy(-0.37, &x, &mut want);
                assert_eq!(got, want, "axpy {} len {len}", mode.name());
                let mut got = x.clone();
                scale(mode, 1.0 / 3.0, &mut got);
                let mut want = x.clone();
                super::scalar::scale(1.0 / 3.0, &mut want);
                assert_eq!(got, want, "scale {} len {len}", mode.name());
                for radius in [0.01, 1.0, 1e6] {
                    let mut got = y.clone();
                    let gn = axpy_project_l2(mode, 0.81, &x, &mut got, radius);
                    let mut want = y.clone();
                    let wn = reference_axpy_project_l2(w, 0.81, &x, &mut want, radius);
                    assert_eq!(got, want, "fused {} len {len} r {radius}", mode.name());
                    assert_eq!(gn.to_bits(), wn.to_bits());
                }
            }
        }
    }

    /// The element-wise kernels are bit-identical across *all* modes, not
    /// just within a lane width.
    #[test]
    fn elementwise_kernels_agree_across_modes() {
        let x = wave(37, 0.9);
        let y0 = wave(37, 0.4);
        let mut axpys: Vec<Vec<f64>> = Vec::new();
        let mut scales: Vec<Vec<f64>> = Vec::new();
        for mode in supported_modes() {
            let mut y = y0.clone();
            axpy(mode, 2.5, &x, &mut y);
            axpys.push(y);
            let mut s = x.clone();
            scale(mode, -0.125, &mut s);
            scales.push(s);
        }
        for v in &axpys[1..] {
            assert_eq!(v, &axpys[0]);
        }
        for v in &scales[1..] {
            assert_eq!(v, &scales[0]);
        }
    }

    #[test]
    fn length_mismatch_panics_in_every_mode() {
        for mode in supported_modes() {
            assert!(std::panic::catch_unwind(|| dot(mode, &[1.0], &[1.0, 2.0])).is_err());
            assert!(std::panic::catch_unwind(|| {
                let mut y = [1.0];
                axpy(mode, 1.0, &[1.0, 2.0], &mut y);
            })
            .is_err());
            assert!(std::panic::catch_unwind(|| {
                let mut w = [1.0, 2.0, 3.0];
                axpy_project_l2(mode, 1.0, &[1.0], &mut w, 1.0);
            })
            .is_err());
        }
    }

    #[test]
    fn unsupported_mode_panics_not_ub() {
        if let Some(&unsupported) = Mode::ALL.iter().find(|m| !supported(**m)) {
            assert!(std::panic::catch_unwind(|| dot(unsupported, &[1.0], &[1.0])).is_err());
        }
    }

    #[test]
    fn tree_reduce_orders() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(tree_reduce(&a).to_bits(), ((1.0 + 2.0) + (3.0 + 4.0f64)).to_bits());
        let b = [1e16, 1.0, -1e16, 1.0, 2.0, -2.0, 0.5, 0.25];
        let want = ((b[0] + b[1]) + (b[2] + b[3])) + ((b[4] + b[5]) + (b[6] + b[7]));
        assert_eq!(tree_reduce(&b).to_bits(), want.to_bits());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn vec_of(len: usize) -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(-100.0f64..100.0, len..=len)
    }

    proptest! {
        /// Satellite property: each SIMD kernel is bit-identical to the
        /// scalar reference at the same lane width, across tail lengths
        /// 0–16 (`len = 4·blocks + tail` covers every remainder class of
        /// both the 4- and 16-wide kernels).
        #[test]
        fn reductions_match_reference_bitwise(
            blocks in 0usize..6,
            tail in 0usize..17,
            seed_x in vec_of(41),
            seed_y in vec_of(41),
        ) {
            let len = (blocks * 4 + tail).min(41);
            let x = &seed_x[..len];
            let y = &seed_y[..len];
            for mode in supported_modes() {
                let w = mode.lane_width();
                prop_assert_eq!(dot(mode, x, y).to_bits(), reference_dot(w, x, y).to_bits());
                prop_assert_eq!(norm_sq(mode, x).to_bits(), reference_norm_sq(w, x).to_bits());
            }
        }

        /// Satellite property: fused `axpy_project_l2` equals the unfused
        /// `axpy` + norm + conditional rescale sequence under every
        /// dispatch mode (same-mode kernels throughout).
        #[test]
        fn fused_equals_unfused_under_every_mode(
            seed_x in vec_of(23),
            seed_w in vec_of(23),
            len in 0usize..23,
            alpha in -2.0f64..2.0,
            radius in 0.0f64..50.0,
        ) {
            let x = &seed_x[..len];
            let w0 = &seed_w[..len];
            for mode in supported_modes() {
                let mut fused = w0.to_vec();
                let pre_fused = axpy_project_l2(mode, alpha, x, &mut fused, radius);
                let mut unfused = w0.to_vec();
                axpy(mode, alpha, x, &mut unfused);
                let pre = norm_sq(mode, &unfused).sqrt();
                if pre > radius {
                    scale(mode, radius / pre, &mut unfused);
                }
                prop_assert_eq!(pre_fused.to_bits(), pre.to_bits());
                prop_assert_eq!(&fused, &unfused);
            }
        }
    }
}

//! A minimal row-major dense matrix, sufficient for random projection and
//! the harness's small linear-algebra needs.

use crate::vector;

/// Row-major dense `rows × cols` matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    pub fn set(&mut self, r: usize, c: usize, value: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = value;
    }

    /// Matrix–vector product `out ← A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols` or `out.len() != rows`.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec: input length mismatch");
        assert_eq!(out.len(), self.rows, "matvec: output length mismatch");
        for (r, o) in out.iter_mut().enumerate() {
            *o = vector::dot(self.row(r), x);
        }
    }

    /// Matrix–vector product returning a fresh vector.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(x, &mut out);
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        vector::norm(&self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_get() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(1, 2), 12.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = m.matvec(&[1.0, 0.0, -1.0]);
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 1), m.get(1, 2));
    }

    #[test]
    fn frobenius() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(m.frobenius_norm(), 5.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_vec_bad_len_panics() {
        Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn set_then_get() {
        let mut m = Matrix::zeros(2, 2);
        m.set(1, 0, 7.5);
        assert_eq!(m.get(1, 0), 7.5);
        m.row_mut(0)[1] = -1.0;
        assert_eq!(m.get(0, 1), -1.0);
    }
}

//! Summary statistics for the experiment harness: online mean/variance
//! (Welford), quantiles, and normal-approximation confidence intervals.

/// Numerically stable online mean/variance accumulator (Welford's algorithm).
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Half-width of the normal-approximation 90% confidence interval for the
    /// mean — the error bars in the paper's runtime plots (Section 4.4).
    pub fn ci90_half_width(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        1.645 * self.std_dev() / (self.count as f64).sqrt()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Returns the `q`-quantile (`0 ≤ q ≤ 1`) of `values` using linear
/// interpolation between order statistics. `values` is sorted in place.
///
/// # Panics
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
pub fn quantile_mut(values: &mut [f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    values.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (values.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        values[lo]
    } else {
        let frac = pos - lo as f64;
        values[lo] * (1.0 - frac) + values[hi] * frac
    }
}

/// Convenience: sample mean of a slice (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut acc = OnlineStats::new();
        for &x in &xs {
            acc.push(x);
        }
        assert_eq!(acc.count(), 8);
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        // Two-pass unbiased variance = 32/7.
        assert!((acc.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(acc.min(), 2.0);
        assert_eq!(acc.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let acc = OnlineStats::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
        assert_eq!(acc.ci90_half_width(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-10);
        assert!((left.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn quantiles() {
        let mut xs = vec![3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile_mut(&mut xs, 0.0), 1.0);
        assert_eq!(quantile_mut(&mut xs, 1.0), 4.0);
        assert_eq!(quantile_mut(&mut xs, 0.5), 2.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        quantile_mut(&mut [], 0.5);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }
}

//! Dense linear-algebra kernels for the bolt-on DP-SGD workspace.
//!
//! Everything operates on plain `&[f64]` / `&mut [f64]` slices so the same
//! kernels serve in-memory training, the Bismarck storage engine (which hands
//! out row slices from pages), and the benchmark harness. The hypothesis
//! space of the paper is `R^d` or an L2 ball of radius `R`; the only
//! geometric primitive beyond BLAS-1 is [`vector::project_l2_ball`]
//! (projection onto a convex set never increases distances — Section 3.2.3).

pub mod matrix;
pub mod projection;
pub mod random;
pub mod simd;
pub mod sparse;
pub mod stats;
pub mod vector;

pub use matrix::Matrix;
pub use projection::RandomProjection;
pub use sparse::SparseVec;
pub use stats::OnlineStats;

//! Sparse vectors and sparse-dense kernels.
//!
//! Several of the paper's benchmark corpora (KDDCup-99 after one-hot
//! encoding, RCV1-style text) are naturally sparse. Models stay dense (the
//! hypothesis `w ∈ R^d` is dense by nature), while *examples* can be stored
//! and processed sparsely: the SGD inner products and gradient scatter only
//! touch the nonzero coordinates.

use crate::vector;

/// A sparse vector: strictly increasing indices with their values.
///
/// ```
/// use bolton_linalg::SparseVec;
/// let v = SparseVec::from_pairs(5, [(1, 2.0), (4, -1.0)]);
/// assert_eq!(v.nnz(), 2);
/// assert_eq!(v.dot_dense(&[1.0, 10.0, 0.0, 0.0, 3.0]), 17.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SparseVec {
    dim: usize,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseVec {
    /// Builds a sparse vector from `(index, value)` pairs.
    ///
    /// Pairs may arrive unsorted; duplicates are summed. Zero values are
    /// dropped.
    ///
    /// # Panics
    /// Panics if any index is out of range or `dim` exceeds `u32::MAX`.
    pub fn from_pairs(dim: usize, pairs: impl IntoIterator<Item = (usize, f64)>) -> Self {
        assert!(dim <= u32::MAX as usize, "dimension exceeds u32 index space");
        let mut entries: Vec<(usize, f64)> = pairs.into_iter().collect();
        entries.sort_by_key(|&(i, _)| i);
        let mut indices = Vec::with_capacity(entries.len());
        let mut values: Vec<f64> = Vec::with_capacity(entries.len());
        for (i, v) in entries {
            assert!(i < dim, "index {i} out of range for dim {dim}");
            if v == 0.0 {
                continue;
            }
            if indices.last() == Some(&(i as u32)) {
                *values.last_mut().expect("parallel arrays") += v;
            } else {
                indices.push(i as u32);
                values.push(v);
            }
        }
        // Summed duplicates may have cancelled to zero.
        let mut keep = values.iter().map(|v| *v != 0.0);
        indices.retain(|_| keep.next().expect("parallel arrays"));
        values.retain(|v| *v != 0.0);
        Self { dim, indices, values }
    }

    /// Converts a dense slice, keeping nonzeros.
    pub fn from_dense(x: &[f64]) -> Self {
        Self::from_pairs(
            x.len(),
            x.iter().enumerate().filter(|(_, v)| **v != 0.0).map(|(i, v)| (i, *v)),
        )
    }

    /// The ambient dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Iterates `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.indices.iter().map(|&i| i as usize).zip(self.values.iter().copied())
    }

    /// Materializes into a dense buffer (`out` is zeroed first).
    ///
    /// # Panics
    /// Panics if `out.len() != dim`.
    pub fn write_dense(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.dim, "dense buffer dimension mismatch");
        vector::fill_zero(out);
        for (i, v) in self.iter() {
            out[i] = v;
        }
    }

    /// Materializes into a fresh dense vector.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        self.write_dense(&mut out);
        out
    }

    /// Sparse-dense dot product `⟨self, w⟩`, accumulated 4-wide over the
    /// *stored* entries.
    ///
    /// The accumulation shape is the 4-wide reference reduction
    /// (`(a₀+a₁)+(a₂+a₃)+tail`, i.e. [`crate::simd::reference_dot`] at lane
    /// width 4) — but the lanes stride over the nonzeros rather than over
    /// all `d` coordinates, so the result matches the 4-wide dense kernel
    /// on the densified row bit-for-bit only when the nonzeros occupy a
    /// prefix-aligned pattern (e.g. a fully dense row). In general the
    /// dropped zeros shift surviving terms across lanes, and the dispatched
    /// dense kernel may run at a different lane width entirely — equality
    /// tests should be exact against the width-4 reference where the
    /// pattern allows and approximate (`1e-9`-style) otherwise.
    ///
    /// # Panics
    /// Panics if `w.len() != dim`.
    pub fn dot_dense(&self, w: &[f64]) -> f64 {
        assert_eq!(w.len(), self.dim, "dense operand dimension mismatch");
        let split = self.indices.len() - self.indices.len() % 4;
        let mut acc = [0.0f64; 4];
        for (ci, cv) in
            self.indices[..split].chunks_exact(4).zip(self.values[..split].chunks_exact(4))
        {
            acc[0] += cv[0] * w[ci[0] as usize];
            acc[1] += cv[1] * w[ci[1] as usize];
            acc[2] += cv[2] * w[ci[2] as usize];
            acc[3] += cv[3] * w[ci[3] as usize];
        }
        let mut tail = 0.0;
        for (&i, &v) in self.indices[split..].iter().zip(self.values[split..].iter()) {
            tail += v * w[i as usize];
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
    }

    /// `out[i] += alpha·self[i]` over the nonzeros (sparse axpy into dense),
    /// unrolled 4-wide.
    ///
    /// Unlike [`SparseVec::dot_dense`] there is no reduction, so the
    /// unrolling cannot reassociate anything: each touched coordinate
    /// receives exactly one fused `+= alpha·v`, and the result is
    /// bit-identical to [`vector::axpy`] on the densified row (indices are
    /// strictly increasing, so no coordinate is written twice).
    ///
    /// # Panics
    /// Panics if `out.len() != dim`.
    pub fn axpy_into(&self, alpha: f64, out: &mut [f64]) {
        assert_eq!(out.len(), self.dim, "dense operand dimension mismatch");
        let split = self.indices.len() - self.indices.len() % 4;
        for (ci, cv) in
            self.indices[..split].chunks_exact(4).zip(self.values[..split].chunks_exact(4))
        {
            out[ci[0] as usize] += alpha * cv[0];
            out[ci[1] as usize] += alpha * cv[1];
            out[ci[2] as usize] += alpha * cv[2];
            out[ci[3] as usize] += alpha * cv[3];
        }
        for (&i, &v) in self.indices[split..].iter().zip(self.values[split..].iter()) {
            out[i as usize] += alpha * v;
        }
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Rescales values in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.values {
            *v *= alpha;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_merges_and_drops_zeros() {
        let v = SparseVec::from_pairs(6, [(4, 2.0), (1, 1.0), (4, 3.0), (2, 0.0)]);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.to_dense(), vec![0.0, 1.0, 0.0, 0.0, 5.0, 0.0]);
    }

    #[test]
    fn cancelled_duplicates_are_dropped() {
        let v = SparseVec::from_pairs(3, [(1, 2.0), (1, -2.0)]);
        assert_eq!(v.nnz(), 0);
        assert_eq!(v.to_dense(), vec![0.0; 3]);
    }

    #[test]
    fn dense_roundtrip() {
        let dense = vec![0.0, -1.5, 0.0, 2.25, 0.0];
        let v = SparseVec::from_dense(&dense);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.to_dense(), dense);
    }

    #[test]
    fn dot_matches_dense_kernel() {
        let dense = vec![1.0, 0.0, 3.0, 0.0, -2.0];
        let w = vec![0.5, 9.0, 1.0, 9.0, 2.0];
        let v = SparseVec::from_dense(&dense);
        assert_eq!(v.dot_dense(&w), vector::dot(&dense, &w));
    }

    #[test]
    fn axpy_matches_dense_kernel() {
        let dense = vec![1.0, 0.0, 3.0];
        let v = SparseVec::from_dense(&dense);
        let mut a = vec![1.0, 1.0, 1.0];
        let mut b = a.clone();
        v.axpy_into(-0.5, &mut a);
        vector::axpy(-0.5, &dense, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn norm_and_scale() {
        let mut v = SparseVec::from_pairs(4, [(0, 3.0), (2, 4.0)]);
        assert_eq!(v.norm(), 5.0);
        v.scale(0.5);
        assert_eq!(v.norm(), 2.5);
        assert_eq!(v.to_dense(), vec![1.5, 0.0, 2.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_bounds_checked() {
        SparseVec::from_pairs(3, [(3, 1.0)]);
    }

    #[test]
    fn empty_vector_is_fine() {
        let v = SparseVec::from_pairs(5, []);
        assert_eq!(v.nnz(), 0);
        assert_eq!(v.norm(), 0.0);
        assert_eq!(v.dot_dense(&[1.0; 5]), 0.0);
    }

    /// Exercise every remainder class of the 4-wide sparse kernels.
    #[test]
    fn unrolled_kernels_cover_all_tail_lengths() {
        for nnz in 0..9usize {
            let dim = 2 * nnz + 3;
            let pairs: Vec<(usize, f64)> =
                (0..nnz).map(|j| (2 * j + 1, (j as f64 + 1.0) * 0.5)).collect();
            let v = SparseVec::from_pairs(dim, pairs);
            let w: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.37).sin() + 2.0).collect();
            let naive: f64 = v.iter().map(|(i, x)| x * w[i]).sum();
            assert!((v.dot_dense(&w) - naive).abs() < 1e-12, "nnz {nnz}");
            let mut a = w.clone();
            let mut b = w.clone();
            v.axpy_into(-0.75, &mut a);
            vector::axpy(-0.75, &v.to_dense(), &mut b);
            assert_eq!(a, b, "nnz {nnz}: sparse axpy must match dense bit-for-bit");
        }
    }

    /// On a fully dense row the 4-wide sparse lanes line up with the
    /// width-4 dense reference's lanes, so the dot products are
    /// bit-identical (the *dispatched* dense kernel may use a wider
    /// reduction — compare against the fixed-width reference).
    #[test]
    fn dot_is_bit_identical_on_dense_rows() {
        use crate::simd;
        for len in [4usize, 8, 11] {
            let x: Vec<f64> = (0..len).map(|i| (i as f64 * 0.7).cos() + 1.5).collect();
            let w: Vec<f64> = (0..len).map(|i| (i as f64 * 1.1).sin() - 0.4).collect();
            let v = SparseVec::from_dense(&x);
            assert_eq!(v.nnz(), len);
            assert_eq!(v.dot_dense(&w), simd::reference_dot(4, &x, &w), "len {len}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn sparse_dense_pair() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
        (1usize..40).prop_flat_map(|d| {
            (
                proptest::collection::vec(prop_oneof![3 => Just(0.0), 1 => -10.0f64..10.0], d..=d),
                proptest::collection::vec(-10.0f64..10.0, d..=d),
            )
        })
    }

    proptest! {
        #[test]
        fn sparse_kernels_agree_with_dense((x, w) in sparse_dense_pair()) {
            let v = SparseVec::from_dense(&x);
            prop_assert_eq!(v.to_dense(), x.clone());
            let sparse_dot = v.dot_dense(&w);
            let dense_dot = vector::dot(&x, &w);
            prop_assert!((sparse_dot - dense_dot).abs() < 1e-9);
            let mut a = w.clone();
            let mut b = w.clone();
            v.axpy_into(2.5, &mut a);
            vector::axpy(2.5, &x, &mut b);
            for (p, q) in a.iter().zip(b.iter()) {
                prop_assert!((p - q).abs() < 1e-9);
            }
            prop_assert!((v.norm() - vector::norm(&x)).abs() < 1e-9);
        }

        /// `from_pairs` invariants: indices strictly increasing, duplicates
        /// summed, exact zeros (including cancelled duplicates) dropped, and
        /// the densified result equal to naive accumulation.
        #[test]
        fn from_pairs_invariants(
            dim in 1usize..24,
            raw in proptest::collection::vec(
                (0usize..24, prop_oneof![2 => -4.0f64..4.0, 1 => Just(0.0)]),
                0..32,
            ),
        ) {
            let pairs: Vec<(usize, f64)> =
                raw.into_iter().map(|(i, x)| (i % dim, x)).collect();
            let v = SparseVec::from_pairs(dim, pairs.clone());
            // Strictly increasing indices (sorted + deduped).
            for pair in v.iter().collect::<Vec<_>>().windows(2) {
                prop_assert!(pair[0].0 < pair[1].0, "indices not strictly increasing");
            }
            // No stored zeros.
            for (_, x) in v.iter() {
                prop_assert!(x != 0.0, "zero value retained");
            }
            // Dense equivalence with naive accumulation.
            let mut expect = vec![0.0f64; dim];
            for (i, x) in pairs {
                expect[i] += x;
            }
            let dense = v.to_dense();
            for (i, (a, b)) in dense.iter().zip(expect.iter()).enumerate() {
                prop_assert!((a - b).abs() < 1e-12, "coord {i}: {a} vs {b}");
            }
        }
    }
}

//! Random vector constructions shared by the noise mechanisms and the data
//! synthesizers.

use crate::vector;
use bolton_rng::dist::standard_normal;
use bolton_rng::Rng;

/// Samples a point uniformly on the unit sphere in `R^dim` by normalizing a
/// standard Gaussian vector (the method referenced by the paper's
/// Appendix E).
///
/// # Panics
/// Panics if `dim == 0`.
pub fn sample_unit_sphere<R: Rng + ?Sized>(rng: &mut R, dim: usize) -> Vec<f64> {
    assert!(dim > 0, "sphere dimension must be positive");
    loop {
        let mut v: Vec<f64> = (0..dim).map(|_| standard_normal(rng)).collect();
        let n = vector::norm(&v);
        // Resampling on (astronomically unlikely) underflow keeps the output
        // exactly unit-norm.
        if n > 1e-12 {
            vector::scale(1.0 / n, &mut v);
            return v;
        }
    }
}

/// Samples a point uniformly in the closed unit ball of `R^dim` (direction
/// uniform on the sphere, radius `U^{1/dim}` for volume-uniformity).
pub fn sample_unit_ball<R: Rng + ?Sized>(rng: &mut R, dim: usize) -> Vec<f64> {
    let mut v = sample_unit_sphere(rng, dim);
    let radius = rng.next_f64_open().powf(1.0 / dim as f64);
    vector::scale(radius, &mut v);
    v
}

/// A vector of `dim` i.i.d. standard normal entries.
pub fn gaussian_vector<R: Rng + ?Sized>(rng: &mut R, dim: usize) -> Vec<f64> {
    (0..dim).map(|_| standard_normal(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolton_rng::seeded;

    #[test]
    fn sphere_samples_have_unit_norm() {
        let mut rng = seeded(141);
        for dim in [1, 3, 17] {
            for _ in 0..200 {
                assert!((vector::norm(&sample_unit_sphere(&mut rng, dim)) - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn ball_samples_stay_inside() {
        let mut rng = seeded(142);
        for _ in 0..1000 {
            let v = sample_unit_ball(&mut rng, 4);
            assert!(vector::norm(&v) <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn ball_is_volume_uniform() {
        // In dim d, P(‖X‖ ≤ r) = r^d; check the median radius ≈ 2^{-1/d}.
        let mut rng = seeded(143);
        let dim = 3;
        let mut radii: Vec<f64> =
            (0..20_000).map(|_| vector::norm(&sample_unit_ball(&mut rng, dim))).collect();
        radii.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = radii[radii.len() / 2];
        let expect = 0.5f64.powf(1.0 / dim as f64);
        assert!((median - expect).abs() < 0.01, "median {median} vs {expect}");
    }

    #[test]
    fn gaussian_vector_has_expected_norm() {
        // E‖g‖² = dim.
        let mut rng = seeded(144);
        let dim = 25;
        let mean_sq: f64 =
            (0..5000).map(|_| vector::norm_sq(&gaussian_vector(&mut rng, dim))).sum::<f64>()
                / 5000.0;
        assert!((mean_sq - dim as f64).abs() < 0.5, "E‖g‖² = {mean_sq}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_sphere_panics() {
        sample_unit_sphere(&mut seeded(145), 0);
    }
}

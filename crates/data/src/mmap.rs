//! Minimal read-only memory mapping for the row store.
//!
//! The workspace bakes in a no-new-dependencies rule, so instead of the
//! `libc`/`memmap2` crates this module declares the two syscall wrappers it
//! needs against the C library `std` already links. Only what the row
//! store requires is provided: map a whole file `PROT_READ`/`MAP_SHARED`,
//! reinterpret 8-aligned byte ranges as `&[f64]` (valid because the store
//! format is little-endian `f64`s and every supported target here is
//! little-endian), and unmap on drop.
//!
//! Platforms without the mapping path (or big-endian targets, where the
//! on-disk little-endian floats cannot be reinterpreted in place) compile
//! [`MmapRegion::map`] to `None` and the row store keeps its decode-copy
//! path — mapping is an optimization, never a requirement.

use std::fs::File;

#[cfg(all(
    any(target_os = "linux", target_os = "macos"),
    target_endian = "little",
    target_pointer_width = "64"
))]
mod sys {
    use std::os::fd::AsRawFd;
    use std::os::raw::{c_int, c_void};

    // Identical values on Linux and macOS.
    const PROT_READ: c_int = 1;
    const MAP_SHARED: c_int = 1;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    pub fn map_readonly(file: &std::fs::File, len: usize) -> Option<(*const u8, usize)> {
        if len == 0 {
            return None;
        }
        // SAFETY: a fresh MAP_SHARED|PROT_READ mapping of a valid fd; the
        // kernel picks the address. MAP_FAILED is (size_t)-1.
        let ptr =
            unsafe { mmap(std::ptr::null_mut(), len, PROT_READ, MAP_SHARED, file.as_raw_fd(), 0) };
        if ptr as usize == usize::MAX {
            return None;
        }
        Some((ptr as *const u8, len))
    }

    pub fn unmap(ptr: *const u8, len: usize) {
        // SAFETY: `ptr`/`len` came from a successful `map_readonly` and the
        // region is unmapped exactly once (owned by `MmapRegion`).
        unsafe {
            munmap(ptr as *mut c_void, len);
        }
    }
}

/// Whether this build can memory-map store files at all.
pub const MMAP_SUPPORTED: bool = cfg!(all(
    any(target_os = "linux", target_os = "macos"),
    target_endian = "little",
    target_pointer_width = "64"
));

/// A read-only mapping of an entire file, unmapped on drop.
///
/// The region outlives every borrowed row view through `Arc`: decoded
/// chunks hold an `Arc<MmapRegion>`, and thread-local pins hold the chunks,
/// so a mapping stays valid for as long as anything can still read it.
pub struct MmapRegion {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the region is immutable after construction (PROT_READ) and the
// pointer references kernel-managed memory not tied to any thread.
unsafe impl Send for MmapRegion {}
unsafe impl Sync for MmapRegion {}

impl MmapRegion {
    /// Maps the first `len` bytes of `file` read-only. Returns `None` when
    /// the platform has no mapping path, the file is empty, or the syscall
    /// fails — callers fall back to buffered reads.
    pub fn map(file: &File, len: usize) -> Option<Self> {
        #[cfg(all(
            any(target_os = "linux", target_os = "macos"),
            target_endian = "little",
            target_pointer_width = "64"
        ))]
        {
            sys::map_readonly(file, len).map(|(ptr, len)| Self { ptr, len })
        }
        #[cfg(not(all(
            any(target_os = "linux", target_os = "macos"),
            target_endian = "little",
            target_pointer_width = "64"
        )))]
        {
            let _ = (file, len);
            None
        }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true for a successful map).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reinterprets `count` `f64`s starting at `byte_offset` as a slice.
    ///
    /// # Panics
    /// Panics if the range leaves the mapping or `byte_offset` is not
    /// 8-aligned (mmap returns page-aligned bases, so 8-alignment of the
    /// offset implies 8-alignment of the pointer).
    pub fn f64s(&self, byte_offset: usize, count: usize) -> &[f64] {
        assert_eq!(byte_offset % 8, 0, "unaligned f64 view at byte {byte_offset}");
        let end = byte_offset + count * 8;
        assert!(end <= self.len, "f64 view [{byte_offset}, {end}) outside mapping of {}", self.len);
        // SAFETY: in-bounds (asserted), 8-aligned (asserted; base is
        // page-aligned), all bit patterns are valid f64s, and the mapping
        // is read-only and lives as long as `&self`.
        unsafe { std::slice::from_raw_parts(self.ptr.add(byte_offset) as *const f64, count) }
    }
}

impl Drop for MmapRegion {
    fn drop(&mut self) {
        #[cfg(all(
            any(target_os = "linux", target_os = "macos"),
            target_endian = "little",
            target_pointer_width = "64"
        ))]
        sys::unmap(self.ptr, self.len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_and_reads_f64s() {
        if !MMAP_SUPPORTED {
            return;
        }
        let path =
            std::env::temp_dir().join(format!("bolton-mmap-test-{}.bin", std::process::id()));
        let values = [1.5f64, -2.25, 0.0, 1e300];
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(&[0u8; 8]).unwrap(); // an 8-byte prefix, like a header
        for v in values {
            f.write_all(&v.to_le_bytes()).unwrap();
        }
        f.sync_all().unwrap();
        drop(f);
        let file = std::fs::File::open(&path).unwrap();
        let region = MmapRegion::map(&file, 8 + values.len() * 8).expect("mapping succeeds");
        assert_eq!(region.len(), 8 + values.len() * 8);
        assert_eq!(region.f64s(8, values.len()), &values);
        drop(region);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unaligned_view_panics() {
        if !MMAP_SUPPORTED {
            return;
        }
        let path =
            std::env::temp_dir().join(format!("bolton-mmap-unaligned-{}.bin", std::process::id()));
        std::fs::write(&path, [0u8; 32]).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let region = MmapRegion::map(&file, 32).expect("mapping succeeds");
        assert!(std::panic::catch_unwind(|| region.f64s(4, 1)).is_err());
        assert!(std::panic::catch_unwind(|| region.f64s(32, 1)).is_err());
        drop(region);
        std::fs::remove_file(&path).unwrap();
    }
}

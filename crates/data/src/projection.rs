//! Dataset-level random projection (Section 2, "Random Projection").
//!
//! A data-independent linear map keeps neighboring datasets neighboring, so
//! applying it before private training costs no privacy. After projection
//! the features are re-normalized to the unit ball, restoring the `‖x‖ ≤ 1`
//! assumption the sensitivity constants rely on.

use bolton_linalg::{vector, RandomProjection};
use bolton_sgd::dataset::InMemoryDataset;
use bolton_sgd::TrainSet;

/// Projects every feature vector of `data` through `projection` and
/// re-normalizes to the unit ball. Labels pass through unchanged.
///
/// # Panics
/// Panics if `data.dim() != projection.input_dim()`.
pub fn project_dataset(data: &InMemoryDataset, projection: &RandomProjection) -> InMemoryDataset {
    assert_eq!(data.dim(), projection.input_dim(), "projection input dimension mismatch");
    let out_dim = projection.output_dim();
    let m = data.len();
    let mut features = Vec::with_capacity(m * out_dim);
    let mut labels = Vec::with_capacity(m);
    let mut buf = vec![0.0; out_dim];
    for i in 0..m {
        projection.project_into(data.features_of(i), &mut buf);
        vector::project_l2_ball(&mut buf, 1.0);
        features.extend_from_slice(&buf);
        labels.push(data.label_of(i));
    }
    InMemoryDataset::from_flat(features, labels, out_dim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::linear_binary;
    use bolton_rng::seeded;

    #[test]
    fn projection_changes_dim_keeps_labels() {
        let mut rng = seeded(311);
        let data = linear_binary(&mut rng, 100, 30, 0.0);
        let p = RandomProjection::gaussian(&mut rng, 30, 8);
        let projected = project_dataset(&data, &p);
        assert_eq!(projected.dim(), 8);
        assert_eq!(projected.len(), 100);
        for i in 0..100 {
            assert_eq!(projected.label_of(i), data.label_of(i));
            assert!(vector::norm(projected.features_of(i)) <= 1.0 + 1e-12);
        }
    }

    /// The paper's observation: projecting a *clustered* problem (like
    /// MNIST) to a modest dimension costs only a little accuracy, because
    /// JL preserves the pairwise distances that carry the class structure.
    /// (A full-rank margin problem would NOT survive projection — the signal
    /// component of `w*` shrinks by √(k/d); that is exactly why the paper's
    /// random projection story is about MNIST's cluster structure.)
    #[test]
    fn projected_problem_remains_learnable() {
        use crate::generator::gaussian_mixture;
        let mut rng = seeded(312);
        // Binary mixture: two tight clusters in 100 dims.
        let data = gaussian_mixture(&mut rng, 2000, 100, 2, 0.4);
        // Relabel class indices {0,1} to ±1 for the binary engine.
        let pm: Vec<bolton_sgd::dataset::Example> = (0..data.len())
            .map(|i| bolton_sgd::dataset::Example {
                features: data.features_of(i).to_vec(),
                label: if data.label_of(i) == 1.0 { 1.0 } else { -1.0 },
            })
            .collect();
        let data = InMemoryDataset::from_examples(&pm);
        let p = RandomProjection::gaussian(&mut rng, 100, 25);
        let projected = project_dataset(&data, &p);
        let loss = bolton_sgd::Logistic::plain();
        let config =
            bolton_sgd::SgdConfig::new(bolton_sgd::StepSize::Constant(1.0)).with_passes(10);
        let orig = bolton_sgd::run_psgd(&data, &loss, &config, &mut seeded(313)).model;
        let proj = bolton_sgd::run_psgd(&projected, &loss, &config, &mut seeded(313)).model;
        let acc_orig = bolton_sgd::metrics::accuracy(&orig, &data);
        let acc_proj = bolton_sgd::metrics::accuracy(&proj, &projected);
        assert!(acc_orig - acc_proj < 0.08, "orig {acc_orig} vs projected {acc_proj}");
        assert!(acc_proj > 0.9, "projected accuracy {acc_proj}");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let mut rng = seeded(314);
        let data = linear_binary(&mut rng, 10, 5, 0.0);
        let p = RandomProjection::gaussian(&mut rng, 6, 2);
        project_dataset(&data, &p);
    }
}

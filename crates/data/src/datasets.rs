//! Named stand-ins for the paper's evaluation datasets (Table 3 +
//! Appendix C), with train/test splits and a global scale knob.
//!
//! | name | task | train | test | d | notes |
//! |---|---|---|---|---|---|
//! | mnist | 10 classes | 60 000 | 10 000 | 784 (→50) | random-projected |
//! | protein | binary | 72 876 | 72 875 | 74 | logistic fits well |
//! | covtype | binary | 498 010 | 83 002 | 54 | large |
//! | higgs | binary | 10 500 000 | 500 000 | 28 | very large |
//! | kddcup99 | binary | 4 898 431 | 311 029 | 41 | near-separable |
//!
//! Separability (label noise / mixture spread) is tuned so the *noiseless*
//! baseline accuracy lands near the paper's reported ceilings (≈0.85 MNIST
//! after projection, ≈1.0 Protein, ≈0.76 Covertype, ≈0.64 HIGGS, ≈0.99
//! KDDCup-99). Sizes default to 1/20 of the paper's (HIGGS/KDD 1/100) so
//! the full harness runs in minutes; set `BOLTON_PAPER_SCALE=1` or call
//! [`generate_scaled`] with `scale = 1.0` for full sizes.

use crate::generator::{gaussian_mixture, linear_binary, margin_binary};
use crate::projection::project_dataset;
use bolton_linalg::RandomProjection;
use bolton_sgd::dataset::InMemoryDataset;

/// Which benchmark to synthesize.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetSpec {
    /// MNIST-like: 10-class mixture in 784 dims, projected to 50.
    Mnist,
    /// Protein-like: 74-dim binary, high noiseless accuracy.
    Protein,
    /// Forest-Covertype-like: 54-dim binary, ceiling ≈ 0.76.
    Covtype,
    /// HIGGS-like: 28-dim binary, ceiling ≈ 0.64, very large m.
    Higgs,
    /// KDDCup-99-like: 41-dim binary, near-separable.
    Kddcup99,
}

impl DatasetSpec {
    /// All five benchmarks.
    pub const ALL: [DatasetSpec; 5] = [
        DatasetSpec::Mnist,
        DatasetSpec::Protein,
        DatasetSpec::Covtype,
        DatasetSpec::Higgs,
        DatasetSpec::Kddcup99,
    ];

    /// Lowercase name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetSpec::Mnist => "mnist",
            DatasetSpec::Protein => "protein",
            DatasetSpec::Covtype => "covtype",
            DatasetSpec::Higgs => "higgs",
            DatasetSpec::Kddcup99 => "kddcup99",
        }
    }

    /// Paper-scale (train, test) sizes from Table 3 / Appendix C.
    pub fn paper_sizes(&self) -> (usize, usize) {
        match self {
            DatasetSpec::Mnist => (60_000, 10_000),
            DatasetSpec::Protein => (72_876, 72_875),
            DatasetSpec::Covtype => (498_010, 83_002),
            DatasetSpec::Higgs => (10_500_000, 500_000),
            DatasetSpec::Kddcup99 => (4_898_431, 311_029),
        }
    }

    /// Raw feature dimensionality.
    pub fn raw_dim(&self) -> usize {
        match self {
            DatasetSpec::Mnist => 784,
            DatasetSpec::Protein => 74,
            DatasetSpec::Covtype => 54,
            DatasetSpec::Higgs => 28,
            DatasetSpec::Kddcup99 => 41,
        }
    }

    /// Dimensionality models are trained in (after projection for MNIST).
    pub fn model_dim(&self) -> usize {
        match self {
            DatasetSpec::Mnist => 50,
            other => other.raw_dim(),
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        match self {
            DatasetSpec::Mnist => 10,
            _ => 2,
        }
    }

    /// Default down-scale factor so the harness runs in minutes. Noise
    /// scales as 1/(λm), so these are chosen to keep each dataset in the
    /// paper's noise regime: Protein runs at full size; the giant corpora
    /// keep m in the hundreds of thousands.
    pub fn default_scale(&self) -> f64 {
        match self {
            DatasetSpec::Protein => 1.0,
            DatasetSpec::Mnist | DatasetSpec::Covtype => 0.2,
            DatasetSpec::Higgs => 0.02,
            DatasetSpec::Kddcup99 => 0.05,
        }
    }

    /// ε grid the paper sweeps for this dataset (Section 4.3): MNIST splits
    /// its budget across 10 sub-models, so it uses the 10× grid.
    pub fn epsilon_grid(&self) -> &'static [f64] {
        match self {
            DatasetSpec::Mnist => &[0.1, 0.2, 0.5, 1.0, 2.0, 4.0],
            _ => &[0.01, 0.02, 0.05, 0.1, 0.2, 0.4],
        }
    }
}

/// A generated benchmark: train and test splits plus provenance.
pub struct Benchmark {
    /// Which spec was generated.
    pub spec: DatasetSpec,
    /// Training split (labels: ±1 binary, or class indices for MNIST-like).
    pub train: InMemoryDataset,
    /// Test split.
    pub test: InMemoryDataset,
    /// The scale factor applied to the paper sizes.
    pub scale: f64,
}

/// Reads the global scale override (`BOLTON_PAPER_SCALE`), if set.
pub fn env_scale() -> Option<f64> {
    std::env::var("BOLTON_PAPER_SCALE").ok().and_then(|v| v.parse().ok())
}

/// Generates a benchmark at its default scale (or the env override).
pub fn generate(spec: DatasetSpec, seed: u64) -> Benchmark {
    let scale = env_scale().unwrap_or_else(|| spec.default_scale());
    generate_scaled(spec, seed, scale)
}

/// Generates a benchmark at an explicit scale factor (1.0 = paper sizes).
///
/// # Panics
/// Panics unless `0 < scale ≤ 1`.
pub fn generate_scaled(spec: DatasetSpec, seed: u64, scale: f64) -> Benchmark {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let mut rng = bolton_rng::seeded(seed ^ 0xB017_0000);
    let (train_full, test_full) = spec.paper_sizes();
    let m_train = ((train_full as f64 * scale) as usize).max(100);
    let m_test = ((test_full as f64 * scale) as usize).max(100);
    let total = m_train + m_test;

    let all = match spec {
        DatasetSpec::Mnist => {
            // 10-class mixture in the raw 784-dim space, then the paper's
            // Gaussian random projection to 50 dims ("this random projection
            // only incurs very small loss in test accuracy").
            let raw = gaussian_mixture(&mut rng, total, spec.raw_dim(), 10, 0.75);
            let projection = RandomProjection::gaussian(&mut rng, spec.raw_dim(), spec.model_dim());
            project_dataset(&raw, &projection)
        }
        DatasetSpec::Protein => margin_binary(&mut rng, total, spec.raw_dim(), 0.05, 0.015),
        DatasetSpec::Covtype => linear_binary(&mut rng, total, spec.raw_dim(), 0.24),
        DatasetSpec::Higgs => linear_binary(&mut rng, total, spec.raw_dim(), 0.36),
        DatasetSpec::Kddcup99 => margin_binary(&mut rng, total, spec.raw_dim(), 0.08, 0.005),
    };

    let train_idx: Vec<usize> = (0..m_train).collect();
    let test_idx: Vec<usize> = (m_train..total).collect();
    Benchmark { spec, train: all.subset(&train_idx), test: all.subset(&test_idx), scale }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolton_sgd::TrainSet;

    #[test]
    fn specs_report_paper_shapes() {
        assert_eq!(DatasetSpec::Mnist.paper_sizes(), (60_000, 10_000));
        assert_eq!(DatasetSpec::Mnist.raw_dim(), 784);
        assert_eq!(DatasetSpec::Mnist.model_dim(), 50);
        assert_eq!(DatasetSpec::Mnist.classes(), 10);
        assert_eq!(DatasetSpec::Covtype.paper_sizes(), (498_010, 83_002));
        assert_eq!(DatasetSpec::Protein.model_dim(), 74);
        assert_eq!(DatasetSpec::Higgs.classes(), 2);
    }

    #[test]
    fn generate_scaled_respects_shape() {
        let b = generate_scaled(DatasetSpec::Protein, 1, 0.01);
        assert_eq!(b.train.dim(), 74);
        assert_eq!(b.test.dim(), 74);
        assert_eq!(b.train.len(), 728);
        assert_eq!(b.test.len(), 728);
    }

    #[test]
    fn mnist_like_is_projected_to_50() {
        let b = generate_scaled(DatasetSpec::Mnist, 2, 0.005);
        assert_eq!(b.train.dim(), 50);
        // Labels are digit indices.
        for i in 0..b.train.len() {
            let y = b.train.label_of(i);
            assert!((0.0..10.0).contains(&y) && y.fract() == 0.0);
        }
    }

    #[test]
    fn features_are_unit_normalized() {
        for spec in [DatasetSpec::Mnist, DatasetSpec::Covtype] {
            let b = generate_scaled(spec, 3, 0.002);
            for i in 0..b.train.len() {
                let n = bolton_linalg::vector::norm(b.train.features_of(i));
                assert!(n <= 1.0 + 1e-9, "{}: ‖x‖ = {n}", spec.name());
            }
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = generate_scaled(DatasetSpec::Covtype, 7, 0.002);
        let b = generate_scaled(DatasetSpec::Covtype, 7, 0.002);
        assert_eq!(a.train.features_of(5), b.train.features_of(5));
        let c = generate_scaled(DatasetSpec::Covtype, 8, 0.002);
        assert_ne!(a.train.features_of(5), c.train.features_of(5));
    }

    /// The separability targets: noiseless logistic regression should land
    /// near the paper's reported ceilings on each stand-in.
    #[test]
    fn noiseless_ceilings_match_paper_shape() {
        use bolton::api::{AlgorithmKind, LossKind, TrainPlan};
        let cases = [
            (DatasetSpec::Protein, 0.93, 1.0),
            (DatasetSpec::Covtype, 0.68, 0.84),
            (DatasetSpec::Higgs, 0.56, 0.72),
            (DatasetSpec::Kddcup99, 0.95, 1.0),
        ];
        for (spec, lo, hi) in cases {
            let b = generate_scaled(spec, 11, 0.01);
            let plan =
                TrainPlan::new(LossKind::Logistic { lambda: 0.0 }, AlgorithmKind::Noiseless, None)
                    .with_passes(10)
                    .with_batch_size(50);
            let model = plan.train(&b.train, &mut bolton_rng::seeded(12)).unwrap();
            let acc = bolton_sgd::metrics::accuracy(&model, &b.test);
            assert!(
                (lo..=hi).contains(&acc),
                "{}: noiseless accuracy {acc} outside [{lo}, {hi}]",
                spec.name()
            );
        }
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn zero_scale_rejected() {
        generate_scaled(DatasetSpec::Protein, 1, 0.0);
    }
}

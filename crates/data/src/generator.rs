//! Synthetic classification generators.
//!
//! Every generator emits features with `‖x‖ ≤ 1` (the paper's standing
//! normalization) and binary labels in `{−1, +1}` or multiclass labels as
//! class indices.

use bolton_linalg::random::{sample_unit_ball, sample_unit_sphere};
use bolton_linalg::vector;
use bolton_rng::dist::standard_normal;
use bolton_rng::Rng;
use bolton_sgd::dataset::InMemoryDataset;
use bolton_sgd::TrainSet;

/// Binary data from a hidden unit-norm hyperplane: `y = sign(⟨w*, x⟩)`,
/// each label flipped independently with probability `label_noise`.
///
/// # Panics
/// Panics unless `dim ≥ 1`, `m ≥ 1`, `label_noise ∈ [0, 0.5]`.
pub fn linear_binary<R: Rng + ?Sized>(
    rng: &mut R,
    m: usize,
    dim: usize,
    label_noise: f64,
) -> InMemoryDataset {
    assert!(m >= 1 && dim >= 1, "shape must be positive");
    assert!((0.0..=0.5).contains(&label_noise), "label noise must be in [0, 0.5]");
    let truth = sample_unit_sphere(rng, dim);
    let mut features = Vec::with_capacity(m * dim);
    let mut labels = Vec::with_capacity(m);
    for _ in 0..m {
        let x = sample_unit_ball(rng, dim);
        let clean = if vector::dot(&truth, &x) >= 0.0 { 1.0 } else { -1.0 };
        let label = if rng.next_bool(label_noise) { -clean } else { clean };
        features.extend_from_slice(&x);
        labels.push(label);
    }
    InMemoryDataset::from_flat(features, labels, dim)
}

/// Binary data from a hidden hyperplane with a *margin*: points whose
/// unsigned distance to the plane falls below `margin` are resampled.
/// Produces crisply separable data (high noiseless accuracy).
pub fn margin_binary<R: Rng + ?Sized>(
    rng: &mut R,
    m: usize,
    dim: usize,
    margin: f64,
    label_noise: f64,
) -> InMemoryDataset {
    assert!((0.0..0.5).contains(&margin), "margin must be in [0, 0.5)");
    assert!((0.0..=0.5).contains(&label_noise), "label noise must be in [0, 0.5]");
    let truth = sample_unit_sphere(rng, dim);
    let mut features = Vec::with_capacity(m * dim);
    let mut labels = Vec::with_capacity(m);
    let mut produced = 0usize;
    while produced < m {
        let x = sample_unit_ball(rng, dim);
        let score = vector::dot(&truth, &x);
        if score.abs() < margin {
            continue;
        }
        let clean = if score >= 0.0 { 1.0 } else { -1.0 };
        let label = if rng.next_bool(label_noise) { -clean } else { clean };
        features.extend_from_slice(&x);
        labels.push(label);
        produced += 1;
    }
    InMemoryDataset::from_flat(features, labels, dim)
}

/// Multiclass data as an isotropic Gaussian mixture: `n_classes` centers on
/// the unit sphere, points drawn around them and projected into the unit
/// ball. Labels are class indices `0..n_classes`.
///
/// `spread` is the expected *total* within-cluster radius (`E‖x − center‖ ≈
/// spread`), i.e. the per-coordinate standard deviation is `spread/√dim` —
/// so separability is dimension-independent. Random unit centers sit at
/// pairwise distance ≈ √2, so `spread ≈ 0.5` gives distinct-but-touching
/// clusters.
///
/// # Panics
/// Panics unless `n_classes ≥ 2` and `spread > 0`.
pub fn gaussian_mixture<R: Rng + ?Sized>(
    rng: &mut R,
    m: usize,
    dim: usize,
    n_classes: usize,
    spread: f64,
) -> InMemoryDataset {
    assert!(n_classes >= 2, "need at least two classes");
    assert!(spread > 0.0, "spread must be positive");
    let sd = spread / (dim as f64).sqrt();
    let centers: Vec<Vec<f64>> = (0..n_classes).map(|_| sample_unit_sphere(rng, dim)).collect();
    let mut features = Vec::with_capacity(m * dim);
    let mut labels = Vec::with_capacity(m);
    for i in 0..m {
        let class = i % n_classes;
        let mut x: Vec<f64> =
            centers[class].iter().map(|c| c + sd * standard_normal(rng)).collect();
        vector::project_l2_ball(&mut x, 1.0);
        features.extend_from_slice(&x);
        labels.push(class as f64);
    }
    InMemoryDataset::from_flat(features, labels, dim)
}

/// Sparse binary data from a hidden unit-norm hyperplane — the shape of
/// the paper's high-dimensional one-hot corpora (KDDCup-99 after one-hot
/// encoding): each row has `density·dim` (rounded, at least one) uniformly
/// chosen distinct nonzero coordinates with Gaussian values normalized to
/// the unit sphere, labeled by `sign(⟨w*, x⟩)` with independent label
/// flips.
///
/// Rows are built directly as [`bolton_linalg::SparseVec`]s — no dense
/// materialization anywhere, so generating `density ≪ 1` data at `d` in
/// the tens of thousands stays cheap.
///
/// # Panics
/// Panics unless `m ≥ 1`, `dim ≥ 1`, `density ∈ (0, 1]`,
/// `label_noise ∈ [0, 0.5]`.
pub fn sparse_linear_binary<R: Rng + ?Sized>(
    rng: &mut R,
    m: usize,
    dim: usize,
    density: f64,
    label_noise: f64,
) -> bolton_sgd::SparseDataset {
    assert!(m >= 1 && dim >= 1, "shape must be positive");
    assert!(density > 0.0 && density <= 1.0, "density must be in (0, 1]");
    assert!((0.0..=0.5).contains(&label_noise), "label noise must be in [0, 0.5]");
    let nnz = ((density * dim as f64).round() as usize).clamp(1, dim);
    let truth = sample_unit_sphere(rng, dim);
    // Partial Fisher–Yates pool: after the first `nnz` swaps the prefix is
    // a uniform sample of distinct coordinates.
    let mut pool: Vec<u32> = (0..dim as u32).collect();
    let mut rows = Vec::with_capacity(m);
    let mut labels = Vec::with_capacity(m);
    for _ in 0..m {
        for j in 0..nnz {
            let k = j + rng.next_index(dim - j);
            pool.swap(j, k);
        }
        let mut pairs: Vec<(usize, f64)> =
            pool[..nnz].iter().map(|&i| (i as usize, standard_normal(rng))).collect();
        let norm = pairs.iter().map(|(_, v)| v * v).sum::<f64>().sqrt();
        if norm > 0.0 {
            for (_, v) in &mut pairs {
                *v /= norm;
            }
        }
        let z: f64 = pairs.iter().map(|&(i, v)| v * truth[i]).sum();
        let clean = if z >= 0.0 { 1.0 } else { -1.0 };
        labels.push(if rng.next_bool(label_noise) { -clean } else { clean });
        rows.push(bolton_linalg::SparseVec::from_pairs(dim, pairs));
    }
    bolton_sgd::SparseDataset::new(rows, labels)
}

/// Rescales every feature vector to `‖x‖ ≤ 1` in place — the preprocessing
/// the paper applies to all real datasets ("All data points are normalized
/// to the unit sphere", Table 3).
pub fn normalize_to_unit_ball(data: &InMemoryDataset) -> InMemoryDataset {
    let dim = data.dim();
    let m = bolton_sgd::TrainSet::len(data);
    let mut features = Vec::with_capacity(m * dim);
    let mut labels = Vec::with_capacity(m);
    for i in 0..m {
        let mut x = data.features_of(i).to_vec();
        vector::project_l2_ball(&mut x, 1.0);
        features.extend_from_slice(&x);
        labels.push(data.label_of(i));
    }
    InMemoryDataset::from_flat(features, labels, dim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolton_rng::seeded;
    use bolton_sgd::TrainSet;

    #[test]
    fn linear_binary_shape_and_norms() {
        let mut rng = seeded(301);
        let d = linear_binary(&mut rng, 200, 6, 0.1);
        assert_eq!(d.len(), 200);
        assert_eq!(d.dim(), 6);
        for i in 0..200 {
            assert!(vector::norm(d.features_of(i)) <= 1.0 + 1e-12);
            assert!(d.label_of(i) == 1.0 || d.label_of(i) == -1.0);
        }
    }

    #[test]
    fn sparse_linear_binary_shape_norms_and_learnability() {
        let mut rng = seeded(307);
        let s = sparse_linear_binary(&mut rng, 400, 200, 0.05, 0.0);
        assert_eq!(s.len(), 400);
        assert_eq!(TrainSet::dim(&s), 200);
        // Every row: exactly ⌈0.05·200⌉ = 10 nonzeros, unit norm, ±1 label.
        for i in 0..400 {
            assert_eq!(s.row(i).nnz(), 10, "row {i}");
            assert!((s.row(i).norm() - 1.0).abs() < 1e-12, "row {i}");
            assert!(s.label_of(i) == 1.0 || s.label_of(i) == -1.0);
        }
        assert_eq!(s.total_nnz(), 4000);
        // The hidden hyperplane is learnable through the sparse engine.
        let loss = bolton_sgd::Logistic::plain();
        let config = bolton_sgd::SgdConfig::new(bolton_sgd::StepSize::Constant(1.0)).with_passes(8);
        let model = bolton_sgd::run_sparse_psgd(&s, &loss, &config, &mut rng).model;
        let acc = bolton_sgd::metrics::accuracy_sparse(&model, &s);
        assert!(acc > 0.8, "sparse hyperplane should be learnable: {acc}");
    }

    #[test]
    #[should_panic(expected = "density")]
    fn sparse_generator_rejects_zero_density() {
        sparse_linear_binary(&mut seeded(308), 10, 20, 0.0, 0.1);
    }

    #[test]
    fn margin_binary_is_easier_than_no_margin() {
        let mut rng = seeded(302);
        let easy = margin_binary(&mut rng, 1500, 8, 0.2, 0.0);
        let loss = bolton_sgd::Logistic::plain();
        let config =
            bolton_sgd::SgdConfig::new(bolton_sgd::StepSize::Constant(1.0)).with_passes(10);
        let model = bolton_sgd::run_psgd(&easy, &loss, &config, &mut rng).model;
        let acc = bolton_sgd::metrics::accuracy(&model, &easy);
        assert!(acc > 0.97, "margin data should be almost perfectly learnable: {acc}");
    }

    #[test]
    fn label_noise_bounds_achievable_accuracy() {
        let mut rng = seeded(303);
        let noisy = linear_binary(&mut rng, 4000, 5, 0.3);
        let loss = bolton_sgd::Logistic::plain();
        // Uniform averaging tames the gradient noise from the 30% flips;
        // the last iterate alone wanders too much to test against.
        let config = bolton_sgd::SgdConfig::new(bolton_sgd::StepSize::Constant(0.5))
            .with_passes(20)
            .with_averaging(bolton_sgd::Averaging::Uniform);
        let model = bolton_sgd::run_psgd(&noisy, &loss, &config, &mut rng).model;
        let acc = bolton_sgd::metrics::accuracy(&model, &noisy);
        // Bayes accuracy is 1 − 0.3 = 0.7; training accuracy hugs it.
        assert!((0.6..0.8).contains(&acc), "accuracy {acc} should be near 0.7");
    }

    #[test]
    fn mixture_labels_are_class_indices() {
        let mut rng = seeded(304);
        let d = gaussian_mixture(&mut rng, 90, 4, 3, 0.1);
        let mut counts = [0usize; 3];
        for i in 0..90 {
            counts[d.label_of(i) as usize] += 1;
            assert!(vector::norm(d.features_of(i)) <= 1.0 + 1e-12);
        }
        assert_eq!(counts, [30, 30, 30]);
    }

    #[test]
    fn mixture_is_learnable_one_vs_all() {
        let mut rng = seeded(305);
        let d = gaussian_mixture(&mut rng, 600, 6, 3, 0.12);
        let loss = bolton_sgd::Logistic::plain();
        let model = bolton::multiclass::train_one_vs_all(
            &d,
            3,
            bolton::Budget::pure(1e6).unwrap(),
            |view, _b, r| {
                let config =
                    bolton_sgd::SgdConfig::new(bolton_sgd::StepSize::Constant(0.5)).with_passes(8);
                Ok(bolton_sgd::run_psgd(view, &loss, &config, r).model)
            },
            &mut rng,
        )
        .unwrap();
        let acc = model.accuracy(&d);
        assert!(acc > 0.9, "mixture accuracy {acc}");
    }

    #[test]
    fn normalization_caps_norms() {
        let raw = InMemoryDataset::from_flat(vec![3.0, 4.0, 0.3, 0.4], vec![1.0, -1.0], 2);
        let normed = normalize_to_unit_ball(&raw);
        assert!((vector::norm(normed.features_of(0)) - 1.0).abs() < 1e-12);
        // Already-inside vectors are untouched.
        assert_eq!(normed.features_of(1), raw.features_of(1));
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let a = linear_binary(&mut seeded(306), 50, 3, 0.1);
        let b = linear_binary(&mut seeded(306), 50, 3, 0.1);
        assert_eq!(a.features_of(7), b.features_of(7));
        assert_eq!(a.label_of(7), b.label_of(7));
    }
}

//! Dataset file I/O: CSV (`f1,f2,…,fd,label`) and LIBSVM
//! (`label idx:val idx:val …`) readers and writers, so real corpora can be
//! dropped into the harness in place of the synthetic stand-ins.

use bolton_sgd::dataset::InMemoryDataset;
use bolton_sgd::TrainSet;
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors produced by the loaders.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based number and a description.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The file contained no examples.
    Empty,
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Malformed { line, message } => {
                write!(f, "malformed input at line {line}: {message}")
            }
            LoadError::Empty => write!(f, "no examples in input"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

fn malformed(line: usize, message: impl Into<String>) -> LoadError {
    LoadError::Malformed { line, message: message.into() }
}

/// Reads CSV rows `f1,…,fd,label` from any reader. Blank lines and lines
/// starting with `#` are skipped. All rows must share one dimensionality.
///
/// # Errors
/// [`LoadError`] on I/O failure, inconsistent arity, or an empty file.
pub fn read_csv<R: Read>(reader: R) -> Result<InMemoryDataset, LoadError> {
    let buf = BufReader::new(reader);
    let mut features: Vec<f64> = Vec::new();
    let mut labels: Vec<f64> = Vec::new();
    let mut dim: Option<usize> = None;
    for (idx, line) in buf.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let values: Result<Vec<f64>, _> =
            trimmed.split(',').map(|tok| tok.trim().parse::<f64>()).collect();
        let values = values.map_err(|e| malformed(line_no, format!("bad number: {e}")))?;
        if values.len() < 2 {
            return Err(malformed(line_no, "need at least one feature and a label"));
        }
        let d = values.len() - 1;
        match dim {
            None => dim = Some(d),
            Some(existing) if existing != d => {
                return Err(malformed(
                    line_no,
                    format!("row has {d} features, expected {existing}"),
                ));
            }
            _ => {}
        }
        features.extend_from_slice(&values[..d]);
        labels.push(values[d]);
    }
    let dim = dim.ok_or(LoadError::Empty)?;
    Ok(InMemoryDataset::from_flat(features, labels, dim))
}

/// Writes a dataset as CSV (`f1,…,fd,label` per row).
///
/// # Errors
/// I/O failures.
pub fn write_csv<W: Write>(data: &InMemoryDataset, writer: W) -> Result<(), LoadError> {
    let mut out = BufWriter::new(writer);
    for i in 0..data.len() {
        for v in data.features_of(i) {
            write!(out, "{v},")?;
        }
        writeln!(out, "{}", data.label_of(i))?;
    }
    out.flush()?;
    Ok(())
}

/// Reads LIBSVM-format rows `label idx:val …` (1-based, possibly sparse
/// indices). `dim` fixes the dense dimensionality; indices beyond it error.
///
/// # Errors
/// [`LoadError`] on malformed tokens or out-of-range indices.
pub fn read_libsvm<R: Read>(reader: R, dim: usize) -> Result<InMemoryDataset, LoadError> {
    assert!(dim > 0, "dimension must be positive");
    let buf = BufReader::new(reader);
    let mut features: Vec<f64> = Vec::new();
    let mut labels: Vec<f64> = Vec::new();
    for (idx, line) in buf.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let label: f64 = parts
            .next()
            .expect("split_whitespace on non-empty yields a token")
            .parse()
            .map_err(|e| malformed(line_no, format!("bad label: {e}")))?;
        let mut row = vec![0.0; dim];
        for tok in parts {
            let (i_str, v_str) = tok
                .split_once(':')
                .ok_or_else(|| malformed(line_no, format!("expected idx:val, found '{tok}'")))?;
            let i: usize =
                i_str.parse().map_err(|e| malformed(line_no, format!("bad index: {e}")))?;
            let v: f64 =
                v_str.parse().map_err(|e| malformed(line_no, format!("bad value: {e}")))?;
            if i == 0 || i > dim {
                return Err(malformed(line_no, format!("index {i} outside 1..={dim}")));
            }
            row[i - 1] = v;
        }
        features.extend_from_slice(&row);
        labels.push(label);
    }
    if labels.is_empty() {
        return Err(LoadError::Empty);
    }
    Ok(InMemoryDataset::from_flat(features, labels, dim))
}

/// Writes a dataset in LIBSVM format (zero features elided).
///
/// # Errors
/// I/O failures.
pub fn write_libsvm<W: Write>(data: &InMemoryDataset, writer: W) -> Result<(), LoadError> {
    let mut out = BufWriter::new(writer);
    for i in 0..data.len() {
        write!(out, "{}", data.label_of(i))?;
        for (j, v) in data.features_of(i).iter().enumerate() {
            if *v != 0.0 {
                write!(out, " {}:{v}", j + 1)?;
            }
        }
        writeln!(out)?;
    }
    out.flush()?;
    Ok(())
}

/// Reads a CSV dataset from a path.
///
/// # Errors
/// As [`read_csv`].
pub fn read_csv_path(path: &Path) -> Result<InMemoryDataset, LoadError> {
    read_csv(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let data = InMemoryDataset::from_flat(vec![0.5, -1.25, 0.0, 3.5], vec![1.0, -1.0], 2);
        let mut bytes = Vec::new();
        write_csv(&data, &mut bytes).unwrap();
        let back = read_csv(&bytes[..]).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.dim(), 2);
        assert_eq!(back.features_of(0), data.features_of(0));
        assert_eq!(back.label_of(1), -1.0);
    }

    #[test]
    fn csv_skips_comments_and_blanks() {
        let text = "# header\n\n1.0, 2.0, 1\n0.5,0.5,-1\n";
        let data = read_csv(text.as_bytes()).unwrap();
        assert_eq!(data.len(), 2);
        assert_eq!(data.features_of(1), &[0.5, 0.5]);
    }

    #[test]
    fn csv_rejects_ragged_rows() {
        let text = "1,2,1\n1,2,3,1\n";
        let err = read_csv(text.as_bytes()).unwrap_err();
        assert!(matches!(err, LoadError::Malformed { line: 2, .. }), "{err}");
    }

    #[test]
    fn csv_rejects_garbage_numbers() {
        let err = read_csv("1,abc,1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, LoadError::Malformed { line: 1, .. }));
    }

    #[test]
    fn csv_empty_is_error() {
        assert!(matches!(read_csv("# nothing\n".as_bytes()), Err(LoadError::Empty)));
    }

    #[test]
    fn libsvm_roundtrip_with_sparsity() {
        let data =
            InMemoryDataset::from_flat(vec![0.0, 2.0, 0.0, 1.5, 0.0, -3.0], vec![1.0, -1.0], 3);
        let mut bytes = Vec::new();
        write_libsvm(&data, &mut bytes).unwrap();
        let text = String::from_utf8(bytes.clone()).unwrap();
        assert!(text.contains("1 2:2"), "{text}");
        let back = read_libsvm(&bytes[..], 3).unwrap();
        assert_eq!(back.features_of(0), data.features_of(0));
        assert_eq!(back.features_of(1), data.features_of(1));
    }

    #[test]
    fn libsvm_rejects_bad_indices() {
        assert!(matches!(read_libsvm("1 0:5\n".as_bytes(), 3), Err(LoadError::Malformed { .. })));
        assert!(matches!(read_libsvm("1 4:5\n".as_bytes(), 3), Err(LoadError::Malformed { .. })));
        assert!(matches!(read_libsvm("1 2-5\n".as_bytes(), 3), Err(LoadError::Malformed { .. })));
    }

    #[test]
    fn path_roundtrip() {
        let data = InMemoryDataset::from_flat(vec![1.0, 2.0], vec![1.0], 2);
        let path = std::env::temp_dir().join(format!("bolton-csv-{}.csv", std::process::id()));
        write_csv(&data, std::fs::File::create(&path).unwrap()).unwrap();
        let back = read_csv_path(&path).unwrap();
        assert_eq!(back.features_of(0), &[1.0, 2.0]);
        std::fs::remove_file(&path).unwrap();
    }
}

/// Reads LIBSVM-format rows into a *sparse* dataset — the natural storage
/// for one-hot-encoded corpora (KDDCup-99 and friends), keeping only the
/// nonzeros in memory.
///
/// # Errors
/// As [`read_libsvm`].
pub fn read_libsvm_sparse<R: Read>(
    reader: R,
    dim: usize,
) -> Result<bolton_sgd::SparseDataset, LoadError> {
    assert!(dim > 0, "dimension must be positive");
    let buf = BufReader::new(reader);
    let mut rows: Vec<bolton_linalg::SparseVec> = Vec::new();
    let mut labels: Vec<f64> = Vec::new();
    for (idx, line) in buf.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let label: f64 = parts
            .next()
            .expect("split_whitespace on non-empty yields a token")
            .parse()
            .map_err(|e| malformed(line_no, format!("bad label: {e}")))?;
        let mut pairs: Vec<(usize, f64)> = Vec::new();
        for tok in parts {
            let (i_str, v_str) = tok
                .split_once(':')
                .ok_or_else(|| malformed(line_no, format!("expected idx:val, found '{tok}'")))?;
            let i: usize =
                i_str.parse().map_err(|e| malformed(line_no, format!("bad index: {e}")))?;
            let v: f64 =
                v_str.parse().map_err(|e| malformed(line_no, format!("bad value: {e}")))?;
            if i == 0 || i > dim {
                return Err(malformed(line_no, format!("index {i} outside 1..={dim}")));
            }
            pairs.push((i - 1, v));
        }
        rows.push(bolton_linalg::SparseVec::from_pairs(dim, pairs));
        labels.push(label);
    }
    if labels.is_empty() {
        return Err(LoadError::Empty);
    }
    Ok(bolton_sgd::SparseDataset::new(rows, labels))
}

#[cfg(test)]
mod sparse_loader_tests {
    use super::*;
    use bolton_sgd::TrainSet;

    #[test]
    fn sparse_reader_agrees_with_dense_reader() {
        let text = "1 2:2.5 5:-1\n-1 1:0.5\n1\n";
        let dense = read_libsvm(text.as_bytes(), 5).unwrap();
        let sparse = read_libsvm_sparse(text.as_bytes(), 5).unwrap();
        assert_eq!(sparse.len(), dense.len());
        for i in 0..dense.len() {
            assert_eq!(sparse.get(i), dense.get(i));
        }
        // The whole point: only nonzeros are stored.
        assert_eq!(sparse.total_nnz(), 3);
    }

    #[test]
    fn sparse_reader_validates_like_dense() {
        assert!(matches!(
            read_libsvm_sparse("1 9:1\n".as_bytes(), 3),
            Err(LoadError::Malformed { .. })
        ));
        assert!(matches!(read_libsvm_sparse("".as_bytes(), 3), Err(LoadError::Empty)));
    }
}

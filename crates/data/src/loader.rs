//! Dataset file I/O: CSV (`f1,f2,…,fd,label`) and LIBSVM
//! (`label idx:val idx:val …`) readers and writers, so real corpora can be
//! dropped into the harness in place of the synthetic stand-ins, plus
//! streaming converters ([`csv_to_store`], [`libsvm_to_store`]) that turn a
//! text corpus into a chunked [`StoredDataset`] without ever materializing
//! it in RAM.
//!
//! All readers share one set of line parsers, which reject NaN and ±∞
//! features and labels with a line-numbered [`LoadError::Malformed`]: a
//! single non-finite value would silently poison the gradient clipping and
//! Δ₂ sensitivity calibration every privacy guarantee rests on.

use crate::row_store::{RowStoreWriter, StoreError, StoredDataset};
use bolton_sgd::dataset::InMemoryDataset;
use bolton_sgd::TrainSet;
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors produced by the loaders.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based number and a description.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The file contained no examples.
    Empty,
    /// Row-store failure while converting to the chunked on-disk format.
    Store(StoreError),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Malformed { line, message } => {
                write!(f, "malformed input at line {line}: {message}")
            }
            LoadError::Empty => write!(f, "no examples in input"),
            LoadError::Store(e) => write!(f, "row store error: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<StoreError> for LoadError {
    fn from(e: StoreError) -> Self {
        LoadError::Store(e)
    }
}

fn malformed(line: usize, message: impl Into<String>) -> LoadError {
    LoadError::Malformed { line, message: message.into() }
}

/// Every numeric field must be finite: NaN/±∞ would silently corrupt the
/// `‖x‖ ≤ 1` preprocessing contract and the sensitivity calibration.
fn finite(line: usize, what: &str, v: f64) -> Result<f64, LoadError> {
    if v.is_finite() {
        Ok(v)
    } else {
        Err(malformed(line, format!("non-finite {what} '{v}'")))
    }
}

/// Parses one non-comment CSV line into its values (features then label),
/// validating that every value is finite.
fn parse_csv_row(trimmed: &str, line_no: usize) -> Result<Vec<f64>, LoadError> {
    let values: Result<Vec<f64>, _> =
        trimmed.split(',').map(|tok| tok.trim().parse::<f64>()).collect();
    let values = values.map_err(|e| malformed(line_no, format!("bad number: {e}")))?;
    if values.len() < 2 {
        return Err(malformed(line_no, "need at least one feature and a label"));
    }
    for (j, &v) in values.iter().enumerate() {
        let what = if j + 1 == values.len() { "label".to_string() } else { format!("feature {j}") };
        finite(line_no, &what, v)?;
    }
    Ok(values)
}

/// Parses one non-comment LIBSVM line into `(label, sorted-unchecked
/// (0-based index, value) pairs)`, validating indices against `dim` and
/// that the label and every value are finite.
fn parse_libsvm_row(
    trimmed: &str,
    line_no: usize,
    dim: usize,
) -> Result<(f64, Vec<(usize, f64)>), LoadError> {
    let mut parts = trimmed.split_whitespace();
    let label: f64 = parts
        .next()
        .expect("split_whitespace on non-empty yields a token")
        .parse()
        .map_err(|e| malformed(line_no, format!("bad label: {e}")))?;
    finite(line_no, "label", label)?;
    let mut pairs: Vec<(usize, f64)> = Vec::new();
    for tok in parts {
        let (i_str, v_str) = tok
            .split_once(':')
            .ok_or_else(|| malformed(line_no, format!("expected idx:val, found '{tok}'")))?;
        let i: usize = i_str.parse().map_err(|e| malformed(line_no, format!("bad index: {e}")))?;
        let v: f64 = v_str.parse().map_err(|e| malformed(line_no, format!("bad value: {e}")))?;
        finite(line_no, &format!("value at index {i}"), v)?;
        if i == 0 || i > dim {
            return Err(malformed(line_no, format!("index {i} outside 1..={dim}")));
        }
        pairs.push((i - 1, v));
    }
    // Duplicate indices are rejected rather than resolved: the dense
    // reader would keep the last value while the sparse paths would sum
    // them, silently loading *different datasets* from one file.
    let mut indices: Vec<usize> = pairs.iter().map(|&(i, _)| i).collect();
    indices.sort_unstable();
    if let Some(w) = indices.windows(2).find(|w| w[0] == w[1]) {
        return Err(malformed(line_no, format!("duplicate index {}", w[0] + 1)));
    }
    Ok((label, pairs))
}

/// Reads CSV rows `f1,…,fd,label` from any reader. Blank lines and lines
/// starting with `#` are skipped. All rows must share one dimensionality.
///
/// # Errors
/// [`LoadError`] on I/O failure, inconsistent arity, or an empty file.
pub fn read_csv<R: Read>(reader: R) -> Result<InMemoryDataset, LoadError> {
    let buf = BufReader::new(reader);
    let mut features: Vec<f64> = Vec::new();
    let mut labels: Vec<f64> = Vec::new();
    let mut dim: Option<usize> = None;
    for (idx, line) in buf.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let values = parse_csv_row(trimmed, line_no)?;
        let d = values.len() - 1;
        match dim {
            None => dim = Some(d),
            Some(existing) if existing != d => {
                return Err(malformed(
                    line_no,
                    format!("row has {d} features, expected {existing}"),
                ));
            }
            _ => {}
        }
        features.extend_from_slice(&values[..d]);
        labels.push(values[d]);
    }
    let dim = dim.ok_or(LoadError::Empty)?;
    Ok(InMemoryDataset::from_flat(features, labels, dim))
}

/// Writes a dataset as CSV (`f1,…,fd,label` per row).
///
/// # Errors
/// I/O failures.
pub fn write_csv<W: Write>(data: &InMemoryDataset, writer: W) -> Result<(), LoadError> {
    let mut out = BufWriter::new(writer);
    for i in 0..data.len() {
        for v in data.features_of(i) {
            write!(out, "{v},")?;
        }
        writeln!(out, "{}", data.label_of(i))?;
    }
    out.flush()?;
    Ok(())
}

/// Reads LIBSVM-format rows `label idx:val …` (1-based, possibly sparse
/// indices). `dim` fixes the dense dimensionality; indices beyond it error.
///
/// # Errors
/// [`LoadError`] on malformed tokens or out-of-range indices.
pub fn read_libsvm<R: Read>(reader: R, dim: usize) -> Result<InMemoryDataset, LoadError> {
    assert!(dim > 0, "dimension must be positive");
    let buf = BufReader::new(reader);
    let mut features: Vec<f64> = Vec::new();
    let mut labels: Vec<f64> = Vec::new();
    for (idx, line) in buf.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (label, pairs) = parse_libsvm_row(trimmed, line_no, dim)?;
        let mut row = vec![0.0; dim];
        for (i, v) in pairs {
            row[i] = v;
        }
        features.extend_from_slice(&row);
        labels.push(label);
    }
    if labels.is_empty() {
        return Err(LoadError::Empty);
    }
    Ok(InMemoryDataset::from_flat(features, labels, dim))
}

/// Writes a dataset in LIBSVM format (zero features elided).
///
/// # Errors
/// I/O failures.
pub fn write_libsvm<W: Write>(data: &InMemoryDataset, writer: W) -> Result<(), LoadError> {
    let mut out = BufWriter::new(writer);
    for i in 0..data.len() {
        write!(out, "{}", data.label_of(i))?;
        for (j, v) in data.features_of(i).iter().enumerate() {
            if *v != 0.0 {
                write!(out, " {}:{v}", j + 1)?;
            }
        }
        writeln!(out)?;
    }
    out.flush()?;
    Ok(())
}

/// Reads a CSV dataset from a path.
///
/// # Errors
/// As [`read_csv`].
pub fn read_csv_path(path: &Path) -> Result<InMemoryDataset, LoadError> {
    read_csv(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let data = InMemoryDataset::from_flat(vec![0.5, -1.25, 0.0, 3.5], vec![1.0, -1.0], 2);
        let mut bytes = Vec::new();
        write_csv(&data, &mut bytes).unwrap();
        let back = read_csv(&bytes[..]).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.dim(), 2);
        assert_eq!(back.features_of(0), data.features_of(0));
        assert_eq!(back.label_of(1), -1.0);
    }

    #[test]
    fn csv_skips_comments_and_blanks() {
        let text = "# header\n\n1.0, 2.0, 1\n0.5,0.5,-1\n";
        let data = read_csv(text.as_bytes()).unwrap();
        assert_eq!(data.len(), 2);
        assert_eq!(data.features_of(1), &[0.5, 0.5]);
    }

    #[test]
    fn csv_rejects_ragged_rows() {
        let text = "1,2,1\n1,2,3,1\n";
        let err = read_csv(text.as_bytes()).unwrap_err();
        assert!(matches!(err, LoadError::Malformed { line: 2, .. }), "{err}");
    }

    #[test]
    fn csv_rejects_garbage_numbers() {
        let err = read_csv("1,abc,1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, LoadError::Malformed { line: 1, .. }));
    }

    #[test]
    fn csv_empty_is_error() {
        assert!(matches!(read_csv("# nothing\n".as_bytes()), Err(LoadError::Empty)));
    }

    #[test]
    fn libsvm_roundtrip_with_sparsity() {
        let data =
            InMemoryDataset::from_flat(vec![0.0, 2.0, 0.0, 1.5, 0.0, -3.0], vec![1.0, -1.0], 3);
        let mut bytes = Vec::new();
        write_libsvm(&data, &mut bytes).unwrap();
        let text = String::from_utf8(bytes.clone()).unwrap();
        assert!(text.contains("1 2:2"), "{text}");
        let back = read_libsvm(&bytes[..], 3).unwrap();
        assert_eq!(back.features_of(0), data.features_of(0));
        assert_eq!(back.features_of(1), data.features_of(1));
    }

    #[test]
    fn libsvm_rejects_bad_indices() {
        assert!(matches!(read_libsvm("1 0:5\n".as_bytes(), 3), Err(LoadError::Malformed { .. })));
        assert!(matches!(read_libsvm("1 4:5\n".as_bytes(), 3), Err(LoadError::Malformed { .. })));
        assert!(matches!(read_libsvm("1 2-5\n".as_bytes(), 3), Err(LoadError::Malformed { .. })));
    }

    #[test]
    fn path_roundtrip() {
        let data = InMemoryDataset::from_flat(vec![1.0, 2.0], vec![1.0], 2);
        let path = std::env::temp_dir().join(format!("bolton-csv-{}.csv", std::process::id()));
        write_csv(&data, std::fs::File::create(&path).unwrap()).unwrap();
        let back = read_csv_path(&path).unwrap();
        assert_eq!(back.features_of(0), &[1.0, 2.0]);
        std::fs::remove_file(&path).unwrap();
    }
}

/// Reads LIBSVM-format rows into a *sparse* dataset — the natural storage
/// for one-hot-encoded corpora (KDDCup-99 and friends), keeping only the
/// nonzeros in memory.
///
/// # Errors
/// As [`read_libsvm`].
pub fn read_libsvm_sparse<R: Read>(
    reader: R,
    dim: usize,
) -> Result<bolton_sgd::SparseDataset, LoadError> {
    assert!(dim > 0, "dimension must be positive");
    let buf = BufReader::new(reader);
    let mut rows: Vec<bolton_linalg::SparseVec> = Vec::new();
    let mut labels: Vec<f64> = Vec::new();
    for (idx, line) in buf.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (label, pairs) = parse_libsvm_row(trimmed, line_no, dim)?;
        rows.push(bolton_linalg::SparseVec::from_pairs(dim, pairs));
        labels.push(label);
    }
    if labels.is_empty() {
        return Err(LoadError::Empty);
    }
    Ok(bolton_sgd::SparseDataset::new(rows, labels))
}

#[cfg(test)]
mod sparse_loader_tests {
    use super::*;
    use bolton_sgd::TrainSet;

    #[test]
    fn sparse_reader_agrees_with_dense_reader() {
        let text = "1 2:2.5 5:-1\n-1 1:0.5\n1\n";
        let dense = read_libsvm(text.as_bytes(), 5).unwrap();
        let sparse = read_libsvm_sparse(text.as_bytes(), 5).unwrap();
        assert_eq!(sparse.len(), dense.len());
        for i in 0..dense.len() {
            assert_eq!(sparse.get(i), dense.get(i));
        }
        // The whole point: only nonzeros are stored.
        assert_eq!(sparse.total_nnz(), 3);
    }

    #[test]
    fn sparse_reader_validates_like_dense() {
        assert!(matches!(
            read_libsvm_sparse("1 9:1\n".as_bytes(), 3),
            Err(LoadError::Malformed { .. })
        ));
        assert!(matches!(read_libsvm_sparse("".as_bytes(), 3), Err(LoadError::Empty)));
    }
}

/// Streams a CSV corpus (`f1,…,fd,label` rows) into a dense chunked row
/// store at `out_path` and opens it — peak memory is one chunk, so corpora
/// larger than RAM convert end-to-end. The dimensionality is fixed by the
/// first data row. The opened store's cache budget comes from
/// `BOLTON_MEM_BUDGET` (see [`crate::row_store`]).
///
/// The conversion streams into `<out_path>.partial` and renames into
/// place only on success, so `out_path` is never left half-written and a
/// pre-existing store there survives a failed conversion untouched.
fn partial_path(out_path: &Path) -> std::path::PathBuf {
    let mut name = out_path.file_name().unwrap_or_default().to_os_string();
    name.push(".partial");
    out_path.with_file_name(name)
}

/// Runs one streaming conversion against the temp path, committing
/// (rename + open) on success and removing the temp file on error.
fn commit_store<F>(out_path: &Path, convert: F) -> Result<StoredDataset, LoadError>
where
    F: FnOnce(&Path) -> Result<(), LoadError>,
{
    let tmp = partial_path(out_path);
    let result = convert(&tmp).and_then(|()| {
        std::fs::rename(&tmp, out_path)?;
        Ok(StoredDataset::open(out_path)?)
    });
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// # Errors
/// As [`read_csv`] (including non-finite rejection), plus store I/O. On
/// any error the partially written temp file is removed and `out_path` is
/// left exactly as it was — it only ever changes to a complete, readable
/// store.
pub fn csv_to_store<R: Read>(
    reader: R,
    out_path: &Path,
    chunk_rows: usize,
) -> Result<StoredDataset, LoadError> {
    commit_store(out_path, |tmp| csv_to_store_inner(reader, tmp, chunk_rows))
}

fn csv_to_store_inner<R: Read>(
    reader: R,
    out_path: &Path,
    chunk_rows: usize,
) -> Result<(), LoadError> {
    let buf = BufReader::new(reader);
    let mut writer: Option<RowStoreWriter> = None;
    let mut dim = 0usize;
    for (idx, line) in buf.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let values = parse_csv_row(trimmed, line_no)?;
        let d = values.len() - 1;
        let writer = match writer.as_mut() {
            None => {
                dim = d;
                writer.insert(RowStoreWriter::create_dense(out_path, dim, chunk_rows)?)
            }
            Some(w) => {
                if d != dim {
                    return Err(malformed(
                        line_no,
                        format!("row has {d} features, expected {dim}"),
                    ));
                }
                w
            }
        };
        writer.push_dense(&values[..d], values[d])?;
    }
    let writer = writer.ok_or(LoadError::Empty)?;
    writer.finish()?;
    Ok(())
}

/// Streams a LIBSVM corpus (`label idx:val …` rows, 1-based indices) into a
/// *sparse* chunked row store at `out_path` and opens it — the natural
/// on-disk form for one-hot corpora, holding at most one chunk in memory
/// during conversion.
///
/// # Errors
/// As [`read_libsvm_sparse`] (including non-finite rejection), plus store
/// I/O. On any error the partially written temp file is removed and
/// `out_path` is left exactly as it was — it only ever changes to a
/// complete, readable store.
pub fn libsvm_to_store<R: Read>(
    reader: R,
    dim: usize,
    out_path: &Path,
    chunk_rows: usize,
) -> Result<StoredDataset, LoadError> {
    assert!(dim > 0, "dimension must be positive");
    commit_store(out_path, |tmp| libsvm_to_store_inner(reader, dim, tmp, chunk_rows))
}

fn libsvm_to_store_inner<R: Read>(
    reader: R,
    dim: usize,
    out_path: &Path,
    chunk_rows: usize,
) -> Result<(), LoadError> {
    let buf = BufReader::new(reader);
    let mut writer: Option<RowStoreWriter> = None;
    for (idx, line) in buf.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (label, pairs) = parse_libsvm_row(trimmed, line_no, dim)?;
        let writer = match writer.as_mut() {
            None => writer.insert(RowStoreWriter::create_sparse(out_path, dim, chunk_rows)?),
            Some(w) => w,
        };
        writer.push_sparse(&bolton_linalg::SparseVec::from_pairs(dim, pairs), label)?;
    }
    let writer = writer.ok_or(LoadError::Empty)?;
    writer.finish()?;
    Ok(())
}

#[cfg(test)]
mod hardening_tests {
    use super::*;

    fn line_of(err: &LoadError) -> usize {
        match err {
            LoadError::Malformed { line, .. } => *line,
            other => panic!("expected Malformed, got {other}"),
        }
    }

    #[test]
    fn csv_rejects_non_finite_features_and_labels() {
        for (text, line) in [
            ("1.0,nan,1\n", 1),
            ("1.0,2.0,1\n0.5,inf,-1\n", 2),
            ("1.0,2.0,1\n0.5,-inf,-1\n", 2),
            ("1.0,2.0,NaN\n", 1),
            ("# c\n\n1.0,2.0,1\n1.0,2.0,inf\n", 4),
        ] {
            let err = read_csv(text.as_bytes()).unwrap_err();
            assert_eq!(line_of(&err), line, "{text:?}: {err}");
            assert!(err.to_string().contains("non-finite"), "{err}");
        }
    }

    #[test]
    fn libsvm_rejects_non_finite_values_and_labels() {
        for (text, line) in
            [("nan 1:0.5\n", 1), ("inf\n", 1), ("1 1:nan\n", 1), ("1 1:0.5\n-1 2:-inf\n", 2)]
        {
            let dense = read_libsvm(text.as_bytes(), 3).unwrap_err();
            assert_eq!(line_of(&dense), line, "{text:?}");
            assert!(dense.to_string().contains("non-finite"), "{dense}");
            // The sparse reader shares the parser, so it must agree.
            let sparse = read_libsvm_sparse(text.as_bytes(), 3).unwrap_err();
            assert_eq!(line_of(&sparse), line, "{text:?}");
        }
    }

    #[test]
    fn finite_values_still_load() {
        let data = read_csv("1.0,-2.5,1\n0.0,1e10,-1\n".as_bytes()).unwrap();
        assert_eq!(data.len(), 2);
        assert_eq!(data.features_of(1), &[0.0, 1e10]);
    }

    /// Duplicate LIBSVM indices would load differently dense (last wins)
    /// vs sparse (summed), so every reader rejects them up front.
    #[test]
    fn libsvm_rejects_duplicate_indices_everywhere() {
        let text = "1 2:1.0 2:2.0\n";
        for err in [
            read_libsvm(text.as_bytes(), 3).unwrap_err(),
            read_libsvm_sparse(text.as_bytes(), 3).unwrap_err(),
        ] {
            assert_eq!(line_of(&err), 1);
            assert!(err.to_string().contains("duplicate index 2"), "{err}");
        }
    }
}

#[cfg(test)]
mod store_converter_tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bolton-loader-{}-{name}.rws", std::process::id()))
    }

    #[test]
    fn csv_converter_agrees_with_in_memory_reader() {
        let text = "# header\n0.5,-1.25,1\n0.0,3.5,-1\n1.0,0.25,1\n";
        let mem = read_csv(text.as_bytes()).unwrap();
        let path = tmp("csv");
        let stored = csv_to_store(text.as_bytes(), &path, 2).unwrap();
        assert_eq!(TrainSet::len(&stored), mem.len());
        assert_eq!(TrainSet::dim(&stored), mem.dim());
        for i in 0..mem.len() {
            assert_eq!(stored.get(i), mem.get(i), "row {i}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn libsvm_converter_agrees_with_sparse_reader() {
        use bolton_sgd::SparseTrainSet;
        let text = "1 2:2.5 5:-1\n-1 1:0.5\n1\n";
        let mem = read_libsvm_sparse(text.as_bytes(), 5).unwrap();
        let path = tmp("libsvm");
        let stored = libsvm_to_store(text.as_bytes(), 5, &path, 2).unwrap();
        assert_eq!(TrainSet::len(&stored), mem.len());
        assert_eq!(stored.encoding(), crate::row_store::Encoding::Sparse);
        let order: Vec<usize> = (0..mem.len()).collect();
        let mut mem_rows = Vec::new();
        let mut disk_rows = Vec::new();
        mem.scan_order_sparse(&order, &mut |_, r, y| mem_rows.push((r.clone(), y)));
        stored.scan_order_sparse(&order, &mut |_, r, y| disk_rows.push((r.clone(), y)));
        assert_eq!(mem_rows, disk_rows);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn converters_reject_bad_rows_and_empty_input() {
        let path = tmp("bad");
        assert!(matches!(
            csv_to_store("1,2,1\n1,nan,1\n".as_bytes(), &path, 4),
            Err(LoadError::Malformed { line: 2, .. })
        ));
        assert!(!path.exists(), "partial store must be removed on malformed input");
        assert!(matches!(
            csv_to_store("# only comments\n".as_bytes(), &path, 4),
            Err(LoadError::Empty)
        ));
        assert!(!path.exists(), "no store file for empty input");
        assert!(matches!(
            libsvm_to_store("1 9:1\n".as_bytes(), 3, &path, 4),
            Err(LoadError::Malformed { line: 1, .. })
        ));
        assert!(!path.exists(), "partial sparse store must be removed on malformed input");
    }

    #[test]
    fn ragged_csv_rejected_by_converter() {
        let path = tmp("ragged");
        let err = csv_to_store("1,2,1\n1,2,3,1\n".as_bytes(), &path, 4).unwrap_err();
        assert!(matches!(err, LoadError::Malformed { line: 2, .. }), "{err}");
        assert!(!path.exists(), "partial store must be removed on ragged input");
    }

    /// A failed conversion must not destroy a pre-existing store at the
    /// output path: conversions write to `<path>.partial` and rename only
    /// on success.
    #[test]
    fn failed_conversion_preserves_existing_store() {
        use bolton_sgd::TrainSet as _;
        let path = tmp("preserve");
        let good = csv_to_store("1,2,1\n3,4,-1\n".as_bytes(), &path, 4).unwrap();
        assert_eq!(good.get(0).features, vec![1.0, 2.0]);
        // First data line malformed: fails before any writer is created.
        assert!(csv_to_store("nan,1,1\n".as_bytes(), &path, 4).is_err());
        // Later line malformed: fails mid-stream, after rows were written.
        assert!(csv_to_store("9,9,1\n1,inf,1\n".as_bytes(), &path, 4).is_err());
        // Empty input too.
        assert!(matches!(csv_to_store("# c\n".as_bytes(), &path, 4), Err(LoadError::Empty)));
        // The original store is intact and readable after all three.
        let back = StoredDataset::open(&path).unwrap();
        assert_eq!(back.get(0).features, vec![1.0, 2.0]);
        assert_eq!(back.get(1).features, vec![3.0, 4.0]);
        std::fs::remove_file(&path).unwrap();
    }
}

//! Feature preprocessing: one-hot encoding for categorical columns (how
//! KDDCup-99's protocol/service/flag fields become numeric), per-column
//! standardization, and min-max scaling — the steps upstream of the
//! paper's unit-sphere normalization ("such preprocessing \[is\] common for
//! general machine learning problems, not just private ones", Section 2).

use bolton_sgd::dataset::InMemoryDataset;
use bolton_sgd::TrainSet;
use std::collections::BTreeMap;

/// A fitted one-hot encoding for one categorical column: each distinct
/// value maps to an output slot.
#[derive(Clone, Debug)]
pub struct OneHotColumn {
    /// The source column index.
    pub column: usize,
    /// Distinct values in first-seen order → output slot.
    mapping: BTreeMap<i64, usize>,
}

impl OneHotColumn {
    /// Fits the encoding from the column's distinct (integer-valued)
    /// contents.
    ///
    /// # Panics
    /// Panics if the column index is out of range or a value is not
    /// integral (categorical columns must hold whole numbers).
    pub fn fit(data: &InMemoryDataset, column: usize) -> Self {
        assert!(column < data.dim(), "column out of range");
        let mut mapping = BTreeMap::new();
        for i in 0..data.len() {
            let v = data.features_of(i)[column];
            assert!(v.fract() == 0.0, "categorical column holds non-integer {v}");
            let key = v as i64;
            let next = mapping.len();
            mapping.entry(key).or_insert(next);
        }
        Self { column, mapping }
    }

    /// Number of output slots (distinct categories).
    pub fn cardinality(&self) -> usize {
        self.mapping.len()
    }

    /// The output slot for a value (`None` for unseen categories).
    pub fn slot(&self, value: f64) -> Option<usize> {
        if value.fract() != 0.0 {
            return None;
        }
        self.mapping.get(&(value as i64)).copied()
    }
}

/// Expands the given categorical columns into one-hot indicator blocks,
/// keeping the remaining columns as-is (in their original order, before
/// the indicator blocks). Unseen categories at transform time encode as
/// all-zeros.
///
/// # Panics
/// Panics if any encoding's column index is out of range.
pub fn one_hot_encode(data: &InMemoryDataset, encodings: &[OneHotColumn]) -> InMemoryDataset {
    let categorical: Vec<usize> = encodings.iter().map(|e| e.column).collect();
    let passthrough: Vec<usize> = (0..data.dim()).filter(|c| !categorical.contains(c)).collect();
    let out_dim: usize =
        passthrough.len() + encodings.iter().map(OneHotColumn::cardinality).sum::<usize>();
    let mut features = Vec::with_capacity(data.len() * out_dim);
    let mut labels = Vec::with_capacity(data.len());
    for i in 0..data.len() {
        let row = data.features_of(i);
        for &c in &passthrough {
            features.push(row[c]);
        }
        for enc in encodings {
            let base = features.len();
            features.resize(base + enc.cardinality(), 0.0);
            if let Some(slot) = enc.slot(row[enc.column]) {
                features[base + slot] = 1.0;
            }
        }
        labels.push(data.label_of(i));
    }
    InMemoryDataset::from_flat(features, labels, out_dim)
}

/// Per-column standardization parameters (mean and standard deviation).
#[derive(Clone, Debug)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fits means and standard deviations per column. Constant columns get
    /// σ = 1 so they pass through (centered) rather than dividing by zero.
    pub fn fit(data: &InMemoryDataset) -> Self {
        let d = data.dim();
        let m = data.len() as f64;
        let mut means = vec![0.0; d];
        for i in 0..data.len() {
            for (mu, v) in means.iter_mut().zip(data.features_of(i)) {
                *mu += v / m;
            }
        }
        let mut vars = vec![0.0; d];
        for i in 0..data.len() {
            for ((var, v), mu) in vars.iter_mut().zip(data.features_of(i)).zip(&means) {
                *var += (v - mu) * (v - mu) / m;
            }
        }
        let stds = vars.iter().map(|v| if *v > 0.0 { v.sqrt() } else { 1.0 }).collect();
        Self { means, stds }
    }

    /// Applies `(x − μ)/σ` column-wise.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn transform(&self, data: &InMemoryDataset) -> InMemoryDataset {
        assert_eq!(data.dim(), self.means.len(), "dimension mismatch");
        let d = data.dim();
        let mut features = Vec::with_capacity(data.len() * d);
        let mut labels = Vec::with_capacity(data.len());
        for i in 0..data.len() {
            for ((v, mu), sd) in data.features_of(i).iter().zip(&self.means).zip(&self.stds) {
                features.push((v - mu) / sd);
            }
            labels.push(data.label_of(i));
        }
        InMemoryDataset::from_flat(features, labels, d)
    }
}

/// Rescales each column to `[0, 1]` by its min/max (constant columns → 0).
pub fn min_max_scale(data: &InMemoryDataset) -> InMemoryDataset {
    let d = data.dim();
    let mut mins = vec![f64::INFINITY; d];
    let mut maxs = vec![f64::NEG_INFINITY; d];
    for i in 0..data.len() {
        for ((lo, hi), v) in mins.iter_mut().zip(maxs.iter_mut()).zip(data.features_of(i)) {
            *lo = lo.min(*v);
            *hi = hi.max(*v);
        }
    }
    let mut features = Vec::with_capacity(data.len() * d);
    let mut labels = Vec::with_capacity(data.len());
    for i in 0..data.len() {
        for ((v, lo), hi) in data.features_of(i).iter().zip(&mins).zip(&maxs) {
            let range = hi - lo;
            features.push(if range > 0.0 { (v - lo) / range } else { 0.0 });
        }
        labels.push(data.label_of(i));
    }
    InMemoryDataset::from_flat(features, labels, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed() -> InMemoryDataset {
        // Columns: [continuous, category ∈ {2, 5, 7}]
        InMemoryDataset::from_flat(
            vec![0.5, 2.0, -1.0, 5.0, 2.0, 2.0, 0.0, 7.0],
            vec![1.0, -1.0, 1.0, -1.0],
            2,
        )
    }

    #[test]
    fn one_hot_fit_and_transform() {
        let data = mixed();
        let enc = OneHotColumn::fit(&data, 1);
        assert_eq!(enc.cardinality(), 3);
        let out = one_hot_encode(&data, &[enc]);
        assert_eq!(out.dim(), 4); // 1 passthrough + 3 indicators
                                  // Row 0: continuous 0.5, category 2 → slot for 2.
        let row0 = out.features_of(0);
        assert_eq!(row0[0], 0.5);
        assert_eq!(row0[1..].iter().sum::<f64>(), 1.0);
        // Rows 0 and 2 share category 2 → identical indicator block.
        assert_eq!(&out.features_of(0)[1..], &out.features_of(2)[1..]);
        // Rows with different categories differ.
        assert_ne!(&out.features_of(0)[1..], &out.features_of(1)[1..]);
        // Labels pass through.
        assert_eq!(out.label_of(3), -1.0);
    }

    #[test]
    fn unseen_category_encodes_as_zeros() {
        let data = mixed();
        let enc = OneHotColumn::fit(&data, 1);
        let fresh = InMemoryDataset::from_flat(vec![1.0, 99.0], vec![1.0], 2);
        let out = one_hot_encode(&fresh, &[enc]);
        assert_eq!(out.features_of(0)[1..].iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn standardizer_centers_and_scales() {
        let data = InMemoryDataset::from_flat(
            vec![1.0, 10.0, 3.0, 10.0, 5.0, 10.0],
            vec![1.0, 1.0, 1.0],
            2,
        );
        let std = Standardizer::fit(&data);
        let out = std.transform(&data);
        // Column 0: mean 3, population sd √(8/3).
        let col0: Vec<f64> = (0..3).map(|i| out.features_of(i)[0]).collect();
        assert!((col0.iter().sum::<f64>()).abs() < 1e-12, "centered");
        let var: f64 = col0.iter().map(|v| v * v).sum::<f64>() / 3.0;
        assert!((var - 1.0).abs() < 1e-12, "unit variance, got {var}");
        // Constant column 1 centers to zero without dividing by zero.
        for i in 0..3 {
            assert_eq!(out.features_of(i)[1], 0.0);
        }
    }

    #[test]
    fn min_max_scales_into_unit_interval() {
        let data =
            InMemoryDataset::from_flat(vec![-2.0, 7.0, 0.0, 7.0, 2.0, 7.0], vec![1.0, 1.0, 1.0], 2);
        let out = min_max_scale(&data);
        assert_eq!(out.features_of(0)[0], 0.0);
        assert_eq!(out.features_of(1)[0], 0.5);
        assert_eq!(out.features_of(2)[0], 1.0);
        // Constant column → 0.
        assert_eq!(out.features_of(0)[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "non-integer")]
    fn one_hot_rejects_fractional_categories() {
        let data = InMemoryDataset::from_flat(vec![0.5, 2.5], vec![1.0], 2);
        OneHotColumn::fit(&data, 1);
    }

    /// The full KDD-style pipeline: one-hot, standardize, then project to
    /// the unit ball — ready for private training.
    #[test]
    fn full_pipeline_produces_unit_norm_learnable_data() {
        use crate::generator::normalize_to_unit_ball;
        let mut rng = bolton_rng::seeded(821);
        use bolton_rng::Rng;
        let m = 400;
        let mut features = Vec::with_capacity(m * 3);
        let mut labels = Vec::with_capacity(m);
        for _ in 0..m {
            let x0 = rng.next_range(-1.0, 1.0);
            let category = rng.next_below(4) as f64;
            features.extend_from_slice(&[x0, rng.next_range(0.0, 100.0), category]);
            labels.push(if x0 + 0.3 * category >= 0.6 { 1.0 } else { -1.0 });
        }
        let raw = InMemoryDataset::from_flat(features, labels, 3);
        let enc = OneHotColumn::fit(&raw, 2);
        let encoded = one_hot_encode(&raw, &[enc]);
        assert_eq!(encoded.dim(), 6);
        let standardized = Standardizer::fit(&encoded).transform(&encoded);
        let normalized = normalize_to_unit_ball(&standardized);
        for i in 0..normalized.len() {
            assert!(bolton_linalg::vector::norm(normalized.features_of(i)) <= 1.0 + 1e-9);
        }
        let loss = bolton_sgd::Logistic::plain();
        let config =
            bolton_sgd::SgdConfig::new(bolton_sgd::StepSize::Constant(1.0)).with_passes(10);
        let out = bolton_sgd::run_psgd(&normalized, &loss, &config, &mut rng);
        let acc = bolton_sgd::metrics::accuracy(&out.model, &normalized);
        assert!(acc > 0.9, "pipeline output should be learnable: {acc}");
    }
}

//! The dataset suite for the reproduction.
//!
//! The paper evaluates on MNIST, Protein, Forest Covertype (Table 3) plus
//! HIGGS and KDDCup-99 (Appendix C). Those corpora cannot ship with this
//! repository, so [`datasets`] provides *seeded synthetic stand-ins with the
//! same shape* — matching m, d, class count, and tuned separability so the
//! noiseless baseline lands near the paper's. Accuracy *gaps between
//! algorithms* (the paper's claims) depend on noise magnitude vs. m, d, ε,
//! k, b, which the stand-ins preserve; see EXPERIMENTS.md for the
//! paper-vs-measured tables.
//!
//! * [`generator`] — the underlying synthetic models (logistic ground truth,
//!   Gaussian mixtures), always normalized to `‖x‖ ≤ 1` (Section 2's
//!   standing preprocessing assumption).
//! * [`datasets`] — the named Table 3 stand-ins with train/test splits and a
//!   global scale knob (`BOLTON_PAPER_SCALE=1` for full sizes).
//! * [`projection`] — dataset-level random projection (MNIST 784 → 50).
//! * [`loader`] — CSV and LIBSVM readers/writers so real corpora can be
//!   dropped in when available, plus streaming converters into the chunked
//!   on-disk row store.
//! * [`row_store`] — the chunked, byte-budgeted (`BOLTON_MEM_BUDGET`)
//!   out-of-core store behind the paper's larger-than-memory Figure 2b
//!   configuration: [`row_store::StoredDataset`] is a file on disk that
//!   trains exactly like an in-memory dataset.

pub mod datasets;
pub mod generator;
pub mod loader;
pub mod mmap;
pub mod preprocess;
pub mod projection;
pub mod row_store;

pub use datasets::{generate, generate_scaled, Benchmark, DatasetSpec};
pub use row_store::{CacheStats, Encoding, RowStoreWriter, StoredDataset};

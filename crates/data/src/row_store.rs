//! The chunked on-disk row store behind out-of-core training — the data
//! path that makes the paper's larger-than-memory configuration
//! (Figure 2b) real instead of simulated through a starved buffer pool.
//!
//! A store file is a header plus a sequence of *chunks* of up to
//! `chunk_rows` rows each (dense or sparse encoding), followed by a chunk
//! directory. [`RowStoreWriter`] streams rows to disk one chunk at a time,
//! so converting a corpus never holds more than one chunk in memory;
//! [`StoredDataset`] reads chunks back through a byte-budgeted LRU
//! `ChunkCache` (`BOLTON_MEM_BUDGET`) and adapts them to the
//! [`bolton_sgd::chunked::ChunkedRows`] view, which makes a file on disk a
//! first-class [`TrainSet`]/[`SparseTrainSet`]: the engine, the worker
//! pool, the tuning grids, and the bolt-on private algorithms all run
//! against it unchanged.
//!
//! Pair scans with
//! [`SamplingScheme::chunked`](bolton_sgd::SamplingScheme::chunked) so each
//! pass pins every chunk exactly once (sequential-ish I/O) instead of
//! seeking randomly across the file.
//!
//! ## On-disk format (version 1, little-endian)
//!
//! ```text
//! header (64 bytes):
//!   magic "BOLTNRS1" | version u32 | encoding u32 (0 dense, 1 sparse)
//!   dim u64 | rows u64 | chunk_rows u64 | chunk_count u64
//!   dir_offset u64 | reserved u64
//! chunks (back to back):
//!   dense row:  dim × f64 features, f64 label
//!   sparse row: u32 nnz, nnz × (u32 index, f64 value), f64 label
//! directory (at dir_offset): chunk_count × (offset u64, bytes u64, rows u64)
//! ```
//!
//! Feature and label bits round-trip exactly, so a model trained from disk
//! is *bit-identical* to one trained from the same rows in memory.
//!
//! ## mmap-backed reads
//!
//! Dense-encoded stores are memory-mapped at open time when the platform
//! supports it (see [`crate::mmap`]): chunk "decodes" then hand out
//! borrowed `&[f64]` row views straight into the mapped file — no
//! read+copy, no byte-by-byte float decoding — and the little-endian
//! on-disk floats are the in-memory floats, so bit-identity to the copy
//! path is structural. The cache still charges a mapped chunk its full
//! decoded size, so budgets, evictions, and peak-residency behave exactly
//! as they do for copied chunks (the win is CPU and real memory traffic,
//! not accounting). Fallback to the decode-copy path happens when:
//!
//! * the encoding is sparse (rows have unaligned `u32` fields and must be
//!   materialized anyway),
//! * any directory offset is not 8-aligned (cannot view `f64`s in place),
//! * the platform has no mapping path (non-unix, big-endian),
//! * `BOLTON_MMAP=off`, or
//! * the store was opened with [`StoredDataset::open_copying`] (used by
//!   the Bismarck fault-injection harness, which models I/O faults at the
//!   syscall layer that a shared mapping would bypass).
//!
//! [`CacheStats::borrowed_mmap_hits`] vs [`CacheStats::copied_hits`] make
//! the distinction observable per serve.

use crate::mmap::MmapRegion;
use bolton_linalg::SparseVec;
use bolton_sgd::chunked::{ChunkedRows, SparseChunkedRows};
use bolton_sgd::dataset::TuningData;
use bolton_sgd::{SparseTrainSet, TrainSet};
use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const MAGIC: &[u8; 8] = b"BOLTNRS1";
const VERSION: u32 = 1;
const HEADER_BYTES: usize = 64;
const DIR_ENTRY_BYTES: usize = 24;

/// Default chunk-cache budget when `BOLTON_MEM_BUDGET` is unset: 64 MiB.
pub const DEFAULT_MEM_BUDGET: usize = 64 * 1024 * 1024;

/// Environment variable naming the chunk-cache byte budget.
pub const MEM_BUDGET_ENV: &str = "BOLTON_MEM_BUDGET";

/// Environment variable disabling mmap-backed chunk reads (`off` forces
/// the decode-copy path; anything else, or unset, allows mapping).
pub const MMAP_ENV: &str = "BOLTON_MMAP";

/// How rows are encoded on disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Encoding {
    /// `dim` feature f64s plus the label per row.
    Dense,
    /// Only nonzeros (`u32` index, `f64` value) plus the label per row.
    Sparse,
}

impl Encoding {
    fn code(self) -> u32 {
        match self {
            Encoding::Dense => 0,
            Encoding::Sparse => 1,
        }
    }

    fn from_code(code: u32) -> Option<Self> {
        match code {
            0 => Some(Encoding::Dense),
            1 => Some(Encoding::Sparse),
            _ => None,
        }
    }
}

/// Errors produced by the row store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a valid row store (bad magic, truncated chunk, …).
    Corrupt {
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "row store i/o error: {e}"),
            StoreError::Corrupt { message } => write!(f, "corrupt row store: {message}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

fn corrupt(message: impl Into<String>) -> StoreError {
    StoreError::Corrupt { message: message.into() }
}

/// Byte location of one chunk plus its row count.
#[derive(Clone, Copy, Debug)]
struct ChunkMeta {
    offset: u64,
    bytes: u64,
    rows: u64,
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Streams rows into a new store file, flushing every `chunk_rows` rows —
/// peak memory is one encoded chunk regardless of the corpus size.
pub struct RowStoreWriter {
    file: File,
    path: PathBuf,
    dim: usize,
    chunk_rows: usize,
    encoding: Encoding,
    buf: Vec<u8>,
    rows_in_buf: usize,
    rows: usize,
    offset: u64,
    dir: Vec<ChunkMeta>,
}

impl RowStoreWriter {
    /// Creates a store with dense row encoding at `path` (truncating any
    /// existing file).
    ///
    /// # Errors
    /// I/O failures.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `chunk_rows == 0`.
    pub fn create_dense(
        path: impl AsRef<Path>,
        dim: usize,
        chunk_rows: usize,
    ) -> Result<Self, StoreError> {
        Self::create(path, dim, chunk_rows, Encoding::Dense)
    }

    /// Creates a store with sparse row encoding at `path`.
    ///
    /// # Errors
    /// I/O failures.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `chunk_rows == 0`.
    pub fn create_sparse(
        path: impl AsRef<Path>,
        dim: usize,
        chunk_rows: usize,
    ) -> Result<Self, StoreError> {
        Self::create(path, dim, chunk_rows, Encoding::Sparse)
    }

    fn create(
        path: impl AsRef<Path>,
        dim: usize,
        chunk_rows: usize,
        encoding: Encoding,
    ) -> Result<Self, StoreError> {
        assert!(dim > 0, "dimension must be positive");
        assert!(chunk_rows > 0, "chunk_rows must be positive");
        let path = path.as_ref().to_path_buf();
        let mut file = File::create(&path)?;
        // Placeholder header; rewritten with the final counts by `finish`.
        file.write_all(&[0u8; HEADER_BYTES])?;
        Ok(Self {
            file,
            path,
            dim,
            chunk_rows,
            encoding,
            buf: Vec::new(),
            rows_in_buf: 0,
            rows: 0,
            offset: HEADER_BYTES as u64,
            dir: Vec::new(),
        })
    }

    /// Appends one dense row.
    ///
    /// # Errors
    /// I/O failures.
    ///
    /// # Panics
    /// Panics if `features.len() != dim` or the store is sparse-encoded.
    pub fn push_dense(&mut self, features: &[f64], label: f64) -> Result<(), StoreError> {
        assert_eq!(self.encoding, Encoding::Dense, "dense push on a sparse-encoded store");
        assert_eq!(features.len(), self.dim, "feature dimension mismatch");
        for v in features {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        self.buf.extend_from_slice(&label.to_le_bytes());
        self.end_row()
    }

    /// Appends one sparse row (only its nonzeros are stored).
    ///
    /// # Errors
    /// I/O failures.
    ///
    /// # Panics
    /// Panics if `row.dim() != dim` or the store is dense-encoded.
    pub fn push_sparse(&mut self, row: &SparseVec, label: f64) -> Result<(), StoreError> {
        assert_eq!(self.encoding, Encoding::Sparse, "sparse push on a dense-encoded store");
        assert_eq!(row.dim(), self.dim, "row dimension mismatch");
        let nnz = u32::try_from(row.nnz()).expect("nnz fits in u32");
        self.buf.extend_from_slice(&nnz.to_le_bytes());
        for (i, v) in row.iter() {
            let i = u32::try_from(i).expect("index fits in u32");
            self.buf.extend_from_slice(&i.to_le_bytes());
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        self.buf.extend_from_slice(&label.to_le_bytes());
        self.end_row()
    }

    fn end_row(&mut self) -> Result<(), StoreError> {
        self.rows_in_buf += 1;
        self.rows += 1;
        if self.rows_in_buf == self.chunk_rows {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> Result<(), StoreError> {
        if self.rows_in_buf == 0 {
            return Ok(());
        }
        self.dir.push(ChunkMeta {
            offset: self.offset,
            bytes: self.buf.len() as u64,
            rows: self.rows_in_buf as u64,
        });
        self.file.write_all(&self.buf)?;
        self.offset += self.buf.len() as u64;
        self.buf.clear();
        self.rows_in_buf = 0;
        Ok(())
    }

    /// Rows written so far.
    pub fn rows_written(&self) -> usize {
        self.rows
    }

    /// Flushes the tail chunk, writes the chunk directory, and rewrites the
    /// header with the final counts. The store is unreadable until this
    /// runs.
    ///
    /// # Errors
    /// I/O failures.
    pub fn finish(mut self) -> Result<PathBuf, StoreError> {
        self.flush_chunk()?;
        let dir_offset = self.offset;
        let mut dir_bytes = Vec::with_capacity(self.dir.len() * DIR_ENTRY_BYTES);
        for meta in &self.dir {
            dir_bytes.extend_from_slice(&meta.offset.to_le_bytes());
            dir_bytes.extend_from_slice(&meta.bytes.to_le_bytes());
            dir_bytes.extend_from_slice(&meta.rows.to_le_bytes());
        }
        self.file.write_all(&dir_bytes)?;

        let mut header = [0u8; HEADER_BYTES];
        header[0..8].copy_from_slice(MAGIC);
        header[8..12].copy_from_slice(&VERSION.to_le_bytes());
        header[12..16].copy_from_slice(&self.encoding.code().to_le_bytes());
        header[16..24].copy_from_slice(&(self.dim as u64).to_le_bytes());
        header[24..32].copy_from_slice(&(self.rows as u64).to_le_bytes());
        header[32..40].copy_from_slice(&(self.chunk_rows as u64).to_le_bytes());
        header[40..48].copy_from_slice(&(self.dir.len() as u64).to_le_bytes());
        header[48..56].copy_from_slice(&dir_offset.to_le_bytes());
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&header)?;
        self.file.sync_all()?;
        Ok(self.path)
    }
}

// ---------------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------------

/// Chunk-cache counters, readable at any time via
/// [`StoredDataset::cache_stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Chunk fetches served from the cache (thread-local pin hits are not
    /// counted — they never reach the cache).
    pub hits: u64,
    /// Chunk fetches that decoded from disk.
    pub misses: u64,
    /// Chunks dropped to stay within the byte budget.
    pub evictions: u64,
    /// Decoded bytes currently resident.
    pub resident_bytes: usize,
    /// High-water mark of [`CacheStats::resident_bytes`]. Never exceeds the
    /// budget unless a single chunk is larger than the whole budget.
    /// Thread-local pins are not counted: each scanning thread can hold
    /// one decoded chunk beyond this figure (see the pin docs).
    pub peak_resident_bytes: usize,
    /// The configured byte budget.
    pub budget_bytes: usize,
    /// Chunk serves whose row views borrow the memory-mapped file (no
    /// decode copy happened for this chunk). Every cache serve — hit or
    /// miss — counts as exactly one of `borrowed_mmap_hits` or
    /// [`CacheStats::copied_hits`], so
    /// `borrowed_mmap_hits + copied_hits == hits + misses`.
    pub borrowed_mmap_hits: u64,
    /// Chunk serves backed by a decode-copied buffer (sparse encoding,
    /// mmap unavailable/disabled, or a copy-mode open).
    pub copied_hits: u64,
}

/// One decoded chunk, shared between the cache and per-thread pins.
struct DecodedChunk {
    /// First store row held by this chunk.
    first_row: usize,
    labels: Vec<f64>,
    data: ChunkData,
    /// Decoded footprint charged against the budget. Mapped chunks charge
    /// the same figure as their copied equivalent, so budget/eviction/peak
    /// behavior is identical either way.
    bytes: usize,
}

enum ChunkData {
    /// Row-major `rows × dim` features, decode-copied from disk.
    Dense(Vec<f64>),
    /// Borrowed view into the store's memory mapping: rows are
    /// `(dim + 1)`-strided `f64` runs (features then label) starting at
    /// `float_offset` f64s into the region. Labels are still copied into
    /// `DecodedChunk::labels` (rows × 8 bytes) so label access never
    /// depends on the stride.
    DenseMapped {
        region: Arc<MmapRegion>,
        /// Chunk start, in f64s from the beginning of the mapping.
        float_offset: usize,
    },
    Sparse(Vec<SparseVec>),
}

impl DecodedChunk {
    /// Row `r`'s feature slice of a dense-content chunk.
    fn dense_features(&self, r: usize, dim: usize) -> &[f64] {
        match &self.data {
            ChunkData::Dense(features) => &features[r * dim..(r + 1) * dim],
            ChunkData::DenseMapped { region, float_offset } => {
                region.f64s((float_offset + r * (dim + 1)) * 8, dim)
            }
            ChunkData::Sparse(_) => unreachable!("dense row access on a sparse chunk"),
        }
    }

    /// Whether serves of this chunk borrow the mapping (vs a copied buffer).
    fn is_mapped(&self) -> bool {
        matches!(self.data, ChunkData::DenseMapped { .. })
    }
}

/// The byte-budgeted LRU chunk cache inside a [`StoredDataset`].
///
/// Eviction drops least-recently-used chunks *before* admitting a new one,
/// so resident bytes never exceed the budget (unless one chunk alone is
/// bigger). Evicted chunks stay alive for as long as a worker's
/// thread-local pin still holds them — a worker mid-scan never loses its
/// hot chunk to another worker's fetches.
struct ChunkCache {
    budget: usize,
    stamp: u64,
    resident: HashMap<usize, (Arc<DecodedChunk>, u64)>,
    stats: CacheStats,
}

impl ChunkCache {
    fn new(budget: usize) -> Self {
        let budget = budget.max(1);
        Self {
            budget,
            stamp: 0,
            resident: HashMap::new(),
            stats: CacheStats { budget_bytes: budget, ..CacheStats::default() },
        }
    }

    fn get(&mut self, chunk: usize) -> Option<Arc<DecodedChunk>> {
        self.stamp += 1;
        let stamp = self.stamp;
        if let Some((arc, used)) = self.resident.get_mut(&chunk) {
            *used = stamp;
            self.stats.hits += 1;
            return Some(arc.clone());
        }
        None
    }

    /// Attributes one serve (hit or miss) to the mapped-borrow or
    /// decode-copy counter, keeping
    /// `borrowed_mmap_hits + copied_hits == hits + misses`.
    fn note_serve(&mut self, chunk: &DecodedChunk) {
        if chunk.is_mapped() {
            self.stats.borrowed_mmap_hits += 1;
        } else {
            self.stats.copied_hits += 1;
        }
    }

    fn admit(&mut self, chunk: usize, decoded: Arc<DecodedChunk>) {
        while self.stats.resident_bytes + decoded.bytes > self.budget && !self.resident.is_empty() {
            let (&victim, _) = self
                .resident
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .expect("non-empty cache has an LRU entry");
            let (gone, _) = self.resident.remove(&victim).expect("victim resident");
            self.stats.resident_bytes -= gone.bytes;
            self.stats.evictions += 1;
        }
        self.stamp += 1;
        self.stats.resident_bytes += decoded.bytes;
        self.stats.peak_resident_bytes =
            self.stats.peak_resident_bytes.max(self.stats.resident_bytes);
        self.resident.insert(chunk, (decoded, self.stamp));
    }
}

// ---------------------------------------------------------------------------
// StoredDataset
// ---------------------------------------------------------------------------

/// Unique ids so thread-local pins never confuse two open stores.
static STORE_IDS: AtomicU64 = AtomicU64::new(1);

struct StoreInner {
    id: u64,
    file: Mutex<File>,
    dim: usize,
    chunk_rows: usize,
    encoding: Encoding,
    dir: Vec<ChunkMeta>,
    cache: Mutex<ChunkCache>,
    /// The whole-file read-only mapping, when chunk reads can borrow from
    /// it (dense encoding, 8-aligned chunks, platform support, not
    /// disabled). `None` means every read takes the decode-copy path.
    mapping: Option<Arc<MmapRegion>>,
}

thread_local! {
    /// The calling thread's pinned chunk: `(store id, chunk id, chunk)`.
    /// One pin per thread is exactly the out-of-core scan contract — a
    /// worker's chunk-local order touches one chunk for a long run, and
    /// the pin keeps that chunk alive across the run even if the shared
    /// cache evicts it under pressure from other workers.
    ///
    /// Residency note: a pin persists after the scan (and after the
    /// `StoredDataset` is dropped) until the thread scans a different
    /// chunk or store, so long-lived pool threads retain up to one
    /// decoded chunk each beyond what [`CacheStats`] accounts for —
    /// process peak memory is `budget + threads × chunk_bytes` in the
    /// worst case. Size `chunk_rows` with that bound in mind.
    static PIN: std::cell::RefCell<Option<(u64, usize, Arc<DecodedChunk>)>> =
        const { std::cell::RefCell::new(None) };
}

/// A file-backed training set: a contiguous row range of an on-disk row
/// store, read through the shared `ChunkCache`.
///
/// Cloning (and [`StoredDataset::split`]) is cheap — views share the file
/// handle, directory, and cache. Implements [`TrainSet`],
/// [`SparseTrainSet`], and [`TuningData`], so the engine, the sparse
/// engine, parallel PSGD, the tuning grids, and `train_private(_sparse)`
/// all run against disk-resident data unchanged.
///
/// Scans panic on I/O errors or file corruption discovered mid-read
/// (mirroring the Bismarck table scan contract); use
/// [`StoredDataset::open`] to surface malformed files as errors up front.
#[derive(Clone)]
pub struct StoredDataset {
    inner: Arc<StoreInner>,
    lo: usize,
    hi: usize,
}

impl fmt::Debug for StoredDataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StoredDataset")
            .field("rows", &(self.hi - self.lo))
            .field("dim", &self.inner.dim)
            .field("chunk_rows", &self.inner.chunk_rows)
            .field("encoding", &self.inner.encoding)
            .finish()
    }
}

fn env_budget() -> usize {
    std::env::var(MEM_BUDGET_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(DEFAULT_MEM_BUDGET)
}

/// `BOLTON_MMAP=off` disables mapping (checked per open, not cached, so
/// tests and benches can toggle it between opens).
fn mmap_disabled_by_env() -> bool {
    std::env::var(MMAP_ENV).is_ok_and(|v| v.trim().eq_ignore_ascii_case("off"))
}

impl StoredDataset {
    /// Opens a store with the cache budget taken from `BOLTON_MEM_BUDGET`
    /// (bytes; default 64 MiB). Dense stores are mmap-backed when possible
    /// (see the module docs for the fallback rules).
    ///
    /// # Errors
    /// I/O failures and malformed files.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with_budget(path, env_budget())
    }

    /// Opens a store with an explicit chunk-cache byte budget.
    ///
    /// # Errors
    /// I/O failures and malformed files.
    pub fn open_with_budget(
        path: impl AsRef<Path>,
        budget_bytes: usize,
    ) -> Result<Self, StoreError> {
        Self::open_impl(path, budget_bytes, true)
    }

    /// Opens a store with mmap-backed reads disabled: every chunk takes
    /// the decode-copy path regardless of platform or `BOLTON_MMAP`. The
    /// Bismarck fault-injection harness uses this so recovery reads stay
    /// observable as explicit file I/O; it is also the behavioral twin the
    /// mmap parity tests compare against.
    ///
    /// # Errors
    /// I/O failures and malformed files.
    pub fn open_copying(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_impl(path, env_budget(), false)
    }

    /// [`StoredDataset::open_copying`] with an explicit cache budget.
    ///
    /// # Errors
    /// I/O failures and malformed files.
    pub fn open_copying_with_budget(
        path: impl AsRef<Path>,
        budget_bytes: usize,
    ) -> Result<Self, StoreError> {
        Self::open_impl(path, budget_bytes, false)
    }

    fn open_impl(
        path: impl AsRef<Path>,
        budget_bytes: usize,
        allow_mmap: bool,
    ) -> Result<Self, StoreError> {
        let mut file = File::open(path.as_ref())?;
        let mut header = [0u8; HEADER_BYTES];
        file.read_exact(&mut header).map_err(|_| corrupt("file shorter than the header"))?;
        if &header[0..8] != MAGIC {
            return Err(corrupt("bad magic (not a bolton row store)"));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(corrupt(format!("unsupported version {version}")));
        }
        let encoding =
            Encoding::from_code(u32::from_le_bytes(header[12..16].try_into().expect("4 bytes")))
                .ok_or_else(|| corrupt("unknown row encoding"))?;
        let u64_at = |lo: usize| u64::from_le_bytes(header[lo..lo + 8].try_into().expect("8"));
        let dim = usize::try_from(u64_at(16)).map_err(|_| corrupt("dim overflow"))?;
        let rows = usize::try_from(u64_at(24)).map_err(|_| corrupt("rows overflow"))?;
        let chunk_rows = usize::try_from(u64_at(32)).map_err(|_| corrupt("chunk_rows overflow"))?;
        let chunk_count =
            usize::try_from(u64_at(40)).map_err(|_| corrupt("chunk_count overflow"))?;
        let dir_offset = u64_at(48);
        if dim == 0 || chunk_rows == 0 {
            return Err(corrupt("zero dim or chunk_rows"));
        }
        if chunk_count != rows.div_ceil(chunk_rows) {
            return Err(corrupt("chunk count disagrees with rows/chunk_rows"));
        }

        file.seek(SeekFrom::Start(dir_offset))?;
        let mut dir_bytes = vec![0u8; chunk_count * DIR_ENTRY_BYTES];
        file.read_exact(&mut dir_bytes).map_err(|_| corrupt("truncated chunk directory"))?;
        let mut dir = Vec::with_capacity(chunk_count);
        let mut expect_rows = 0usize;
        for (c, entry) in dir_bytes.chunks_exact(DIR_ENTRY_BYTES).enumerate() {
            let meta = ChunkMeta {
                offset: u64::from_le_bytes(entry[0..8].try_into().expect("8")),
                bytes: u64::from_le_bytes(entry[8..16].try_into().expect("8")),
                rows: u64::from_le_bytes(entry[16..24].try_into().expect("8")),
            };
            let here = usize::try_from(meta.rows).map_err(|_| corrupt("chunk rows overflow"))?;
            let full = if c + 1 == chunk_count { rows - chunk_rows * c } else { chunk_rows };
            if here != full {
                return Err(corrupt(format!("chunk {c} holds {here} rows, expected {full}")));
            }
            expect_rows += here;
            dir.push(meta);
        }
        if expect_rows != rows {
            return Err(corrupt("directory row total disagrees with header"));
        }

        // Dense chunks are raw little-endian f64 runs, so when every chunk
        // sits on an 8-byte boundary the file itself can serve as the
        // decoded representation. (Writer-produced files always qualify:
        // 64-byte header, then chunks of rows×(dim+1)×8 bytes each.)
        let mapping = if allow_mmap
            && encoding == Encoding::Dense
            && !mmap_disabled_by_env()
            && dir.iter().all(|m| m.offset % 8 == 0)
        {
            let map_len = dir.last().map(|m| (m.offset + m.bytes) as usize).unwrap_or(0);
            MmapRegion::map(&file, map_len).map(Arc::new)
        } else {
            None
        };

        Ok(Self {
            inner: Arc::new(StoreInner {
                id: STORE_IDS.fetch_add(1, Ordering::Relaxed),
                file: Mutex::new(file),
                dim,
                chunk_rows,
                encoding,
                dir,
                cache: Mutex::new(ChunkCache::new(budget_bytes)),
                mapping,
            }),
            lo: 0,
            hi: rows,
        })
    }

    /// Whether chunk reads borrow from a memory mapping (false on the
    /// decode-copy fallback in any of its forms).
    pub fn mmap_backed(&self) -> bool {
        self.inner.mapping.is_some()
    }

    /// Number of rows in this view.
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.hi == self.lo
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.inner.dim
    }

    /// The on-disk row encoding.
    pub fn encoding(&self) -> Encoding {
        self.inner.encoding
    }

    /// Rows per full on-disk chunk.
    pub fn chunk_rows(&self) -> usize {
        self.inner.chunk_rows
    }

    /// A snapshot of the shared chunk-cache counters (shared by every view
    /// of this store).
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.lock().expect("cache lock").stats
    }

    /// Resets hit/miss/eviction counters and re-bases the resident peak at
    /// the current residency. Also drops this thread's pin so a benchmark
    /// phase starts cold.
    pub fn reset_cache_stats(&self) {
        let mut cache = self.inner.cache.lock().expect("cache lock");
        let CacheStats { resident_bytes, budget_bytes, .. } = cache.stats;
        cache.stats = CacheStats {
            resident_bytes,
            peak_resident_bytes: resident_bytes,
            budget_bytes,
            ..CacheStats::default()
        };
        drop(cache);
        PIN.with(|p| {
            if let Ok(mut pin) = p.try_borrow_mut() {
                if pin.as_ref().is_some_and(|(sid, _, _)| *sid == self.inner.id) {
                    *pin = None;
                }
            }
        });
    }

    /// Label of view row `i` (convenience for tests and metrics).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn label_of(&self, i: usize) -> f64 {
        assert!(i < self.len(), "row {i} out of range");
        let inner_row = self.lo + i;
        let chunk = self.chunk_arc(inner_row / self.inner.chunk_rows);
        chunk.labels[inner_row - chunk.first_row]
    }

    /// Splits the view into `parts` nearly equal contiguous portions
    /// sharing this store's file handle and chunk cache (the private
    /// tuning Algorithm 3, line 2, without copying any data).
    ///
    /// # Panics
    /// Panics if `parts == 0` or `parts > len`.
    pub fn split(&self, parts: usize) -> Vec<StoredDataset> {
        assert!(parts > 0 && parts <= self.len(), "invalid split arity");
        let base = self.len() / parts;
        let extra = self.len() % parts;
        let mut out = Vec::with_capacity(parts);
        let mut start = self.lo;
        for p in 0..parts {
            let size = base + usize::from(p < extra);
            out.push(StoredDataset { inner: Arc::clone(&self.inner), lo: start, hi: start + size });
            start += size;
        }
        out
    }

    /// Fetches (pin → cache → disk) the decoded chunk holding store rows
    /// `[chunk·chunk_rows, …)`.
    fn chunk_arc(&self, chunk: usize) -> Arc<DecodedChunk> {
        let id = self.inner.id;
        PIN.with(|p| match p.try_borrow_mut() {
            Ok(mut pin) => {
                if let Some((sid, pc, arc)) = pin.as_ref() {
                    if *sid == id && *pc == chunk {
                        return arc.clone();
                    }
                }
                let arc = self.fetch(chunk);
                *pin = Some((id, chunk, arc.clone()));
                arc
            }
            // Reentrant fetch (a visitor scanning this store again): skip
            // the pin, go straight to the shared cache.
            Err(_) => self.fetch(chunk),
        })
    }

    fn fetch(&self, chunk: usize) -> Arc<DecodedChunk> {
        {
            let mut cache = self.inner.cache.lock().expect("cache lock");
            if let Some(arc) = cache.get(chunk) {
                cache.note_serve(&arc);
                return arc;
            }
            cache.stats.misses += 1;
        }
        // Decode outside the cache lock, so pool workers missing on
        // *different* chunks overlap their disk reads and decodes (only
        // the file seek+read itself is serialized, by the file mutex). Two
        // workers racing on the same chunk may both decode it; the first
        // admission wins and the loser adopts it — rare, and far cheaper
        // than serializing every miss behind one lock.
        let decoded = Arc::new(
            self.inner.read_chunk(chunk).unwrap_or_else(|e| panic!("row store chunk {chunk}: {e}")),
        );
        let mut cache = self.inner.cache.lock().expect("cache lock");
        if let Some((arc, _)) = cache.resident.get(&chunk) {
            let arc = arc.clone();
            cache.note_serve(&arc);
            return arc;
        }
        cache.admit(chunk, decoded.clone());
        cache.note_serve(&decoded);
        decoded
    }
}

impl StoreInner {
    fn read_chunk(&self, chunk: usize) -> Result<DecodedChunk, StoreError> {
        let meta = *self
            .dir
            .get(chunk)
            .unwrap_or_else(|| panic!("chunk {chunk} out of range ({} chunks)", self.dir.len()));
        if let Some(region) = &self.mapping {
            return self.map_chunk(chunk, meta, region);
        }
        let mut raw = vec![0u8; meta.bytes as usize];
        {
            let mut file = self.file.lock().expect("file lock");
            file.seek(SeekFrom::Start(meta.offset))?;
            file.read_exact(&mut raw).map_err(|_| corrupt(format!("truncated chunk {chunk}")))?;
        }
        let rows = meta.rows as usize;
        let first_row = chunk * self.chunk_rows;
        let mut labels = Vec::with_capacity(rows);
        match self.encoding {
            Encoding::Dense => {
                let row_bytes = (self.dim + 1) * 8;
                if raw.len() != rows * row_bytes {
                    return Err(corrupt(format!("dense chunk {chunk} has wrong byte count")));
                }
                let mut features = Vec::with_capacity(rows * self.dim);
                for row in raw.chunks_exact(row_bytes) {
                    for v in row[..self.dim * 8].chunks_exact(8) {
                        features.push(f64::from_le_bytes(v.try_into().expect("8 bytes")));
                    }
                    labels
                        .push(f64::from_le_bytes(row[self.dim * 8..].try_into().expect("8 bytes")));
                }
                let bytes = (features.len() + labels.len()) * 8;
                Ok(DecodedChunk { first_row, labels, data: ChunkData::Dense(features), bytes })
            }
            Encoding::Sparse => {
                let mut sparse_rows = Vec::with_capacity(rows);
                let mut at = 0usize;
                let mut take = |n: usize| -> Result<&[u8], StoreError> {
                    let slice = raw
                        .get(at..at + n)
                        .ok_or_else(|| corrupt(format!("truncated sparse chunk {chunk}")))?;
                    at += n;
                    Ok(slice)
                };
                let mut nnz_total = 0usize;
                for _ in 0..rows {
                    let nnz = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
                    let mut pairs = Vec::with_capacity(nnz);
                    for _ in 0..nnz {
                        let i = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
                        let v = f64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
                        if i >= self.dim {
                            return Err(corrupt(format!(
                                "sparse chunk {chunk}: index {i} outside dim {}",
                                self.dim
                            )));
                        }
                        pairs.push((i, v));
                    }
                    nnz_total += nnz;
                    sparse_rows.push(SparseVec::from_pairs(self.dim, pairs));
                    labels.push(f64::from_le_bytes(take(8)?.try_into().expect("8 bytes")));
                }
                if at != raw.len() {
                    return Err(corrupt(format!("sparse chunk {chunk} has trailing bytes")));
                }
                let bytes = nnz_total * 16 + labels.len() * 8;
                Ok(DecodedChunk { first_row, labels, data: ChunkData::Sparse(sparse_rows), bytes })
            }
        }
    }

    /// The mmap "decode": validate the chunk's shape, copy out the labels
    /// (rows × 8 bytes), and borrow the features in place. Charged bytes
    /// equal the copied chunk's decoded size so the cache behaves
    /// identically in both modes.
    fn map_chunk(
        &self,
        chunk: usize,
        meta: ChunkMeta,
        region: &Arc<MmapRegion>,
    ) -> Result<DecodedChunk, StoreError> {
        debug_assert_eq!(self.encoding, Encoding::Dense, "only dense stores are mapped");
        let rows = meta.rows as usize;
        let stride = self.dim + 1;
        if meta.bytes as usize != rows * stride * 8 {
            return Err(corrupt(format!("dense chunk {chunk} has wrong byte count")));
        }
        let float_offset = meta.offset as usize / 8;
        let floats = region.f64s(meta.offset as usize, rows * stride);
        let labels = (0..rows).map(|r| floats[r * stride + self.dim]).collect::<Vec<f64>>();
        Ok(DecodedChunk {
            first_row: chunk * self.chunk_rows,
            labels,
            data: ChunkData::DenseMapped { region: Arc::clone(region), float_offset },
            bytes: rows * stride * 8,
        })
    }
}

impl ChunkedRows for StoredDataset {
    fn len(&self) -> usize {
        self.hi - self.lo
    }

    fn dim(&self) -> usize {
        self.inner.dim
    }

    fn chunk_len(&self) -> usize {
        self.inner.chunk_rows
    }

    fn visit_chunk_rows(
        &self,
        chunk: usize,
        locals: &[usize],
        visit: &mut dyn FnMut(usize, &[f64], f64),
    ) {
        // The view's chunk grid is anchored at `lo`. For a chunk-aligned
        // view (the full store, and any split portion that happens to land
        // on a chunk boundary) every view chunk *is* one store chunk, so
        // the decoded chunk is fetched once per call and rows index it
        // directly. Misaligned views (split portions) straddle two store
        // chunks per view chunk and fall back to per-row resolution
        // through the thread pin.
        let cl = self.inner.chunk_rows;
        let base = chunk * cl;
        let dim = self.inner.dim;
        let aligned = self.lo.is_multiple_of(cl);
        thread_local! {
            static ROW_BUF: std::cell::RefCell<Vec<f64>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        match self.inner.encoding {
            Encoding::Dense => {
                if aligned {
                    let decoded = self.chunk_arc(self.lo / cl + chunk);
                    for (k, &l) in locals.iter().enumerate() {
                        let view_row = base + l;
                        assert!(view_row < self.len(), "row {view_row} out of range");
                        visit(k, decoded.dense_features(l, dim), decoded.labels[l]);
                    }
                    return;
                }
                for (k, &l) in locals.iter().enumerate() {
                    let view_row = base + l;
                    assert!(view_row < self.len(), "row {view_row} out of range");
                    let inner_row = self.lo + view_row;
                    let decoded = self.chunk_arc(inner_row / cl);
                    let r = inner_row - decoded.first_row;
                    visit(k, decoded.dense_features(r, dim), decoded.labels[r]);
                }
            }
            Encoding::Sparse => {
                let mut body = |buf: &mut Vec<f64>| {
                    buf.clear();
                    buf.resize(dim, 0.0);
                    if aligned {
                        let decoded = self.chunk_arc(self.lo / cl + chunk);
                        let ChunkData::Sparse(rows) = &decoded.data else {
                            unreachable!("sparse store decodes sparse chunks")
                        };
                        for (k, &l) in locals.iter().enumerate() {
                            let view_row = base + l;
                            assert!(view_row < self.len(), "row {view_row} out of range");
                            rows[l].write_dense(buf);
                            visit(k, buf, decoded.labels[l]);
                        }
                        return;
                    }
                    for (k, &l) in locals.iter().enumerate() {
                        let view_row = base + l;
                        assert!(view_row < self.len(), "row {view_row} out of range");
                        let inner_row = self.lo + view_row;
                        let decoded = self.chunk_arc(inner_row / cl);
                        let r = inner_row - decoded.first_row;
                        let ChunkData::Sparse(rows) = &decoded.data else {
                            unreachable!("sparse store decodes sparse chunks")
                        };
                        rows[r].write_dense(buf);
                        visit(k, buf, decoded.labels[r]);
                    }
                };
                ROW_BUF.with(|cell| match cell.try_borrow_mut() {
                    Ok(mut buf) => body(&mut buf),
                    Err(_) => body(&mut vec![0.0; dim]),
                });
            }
        }
    }
}

impl SparseChunkedRows for StoredDataset {
    fn visit_chunk_rows_sparse(
        &self,
        chunk: usize,
        locals: &[usize],
        visit: &mut dyn FnMut(usize, &SparseVec, f64),
    ) {
        let cl = self.inner.chunk_rows;
        let base = chunk * cl;
        // One fetch per call for chunk-aligned views, as in the dense scan.
        if self.lo.is_multiple_of(cl) {
            let decoded = self.chunk_arc(self.lo / cl + chunk);
            for (k, &l) in locals.iter().enumerate() {
                let view_row = base + l;
                assert!(view_row < self.len(), "row {view_row} out of range");
                visit_decoded_sparse(&decoded, l, self.inner.dim, k, visit);
            }
            return;
        }
        for (k, &l) in locals.iter().enumerate() {
            let view_row = base + l;
            assert!(view_row < self.len(), "row {view_row} out of range");
            let inner_row = self.lo + view_row;
            let decoded = self.chunk_arc(inner_row / cl);
            let r = inner_row - decoded.first_row;
            visit_decoded_sparse(&decoded, r, self.inner.dim, k, visit);
        }
    }
}

/// Hands decoded row `r` to a sparse visitor as position `k`.
fn visit_decoded_sparse(
    decoded: &DecodedChunk,
    r: usize,
    dim: usize,
    k: usize,
    visit: &mut dyn FnMut(usize, &SparseVec, f64),
) {
    match &decoded.data {
        ChunkData::Sparse(rows) => visit(k, &rows[r], decoded.labels[r]),
        // Correctness fallback for dense-encoded stores (copied or
        // mapped): build the sparse row on the fly (allocates per row —
        // prefer a sparse-encoded store for the O(nnz) path).
        ChunkData::Dense(_) | ChunkData::DenseMapped { .. } => {
            let row = SparseVec::from_dense(decoded.dense_features(r, dim));
            visit(k, &row, decoded.labels[r]);
        }
    }
}

impl TrainSet for StoredDataset {
    fn len(&self) -> usize {
        self.hi - self.lo
    }

    fn dim(&self) -> usize {
        self.inner.dim
    }

    fn scan_order(&self, order: &[usize], visit: &mut dyn FnMut(usize, &[f64], f64)) {
        bolton_sgd::chunked::scan_order(self, order, visit);
    }
}

impl SparseTrainSet for StoredDataset {
    fn scan_order_sparse(&self, order: &[usize], visit: &mut dyn FnMut(usize, &SparseVec, f64)) {
        bolton_sgd::chunked::scan_order_sparse(self, order, visit);
    }
}

impl TuningData for StoredDataset {
    fn split_portions(&self, parts: usize) -> Vec<Self> {
        self.split(parts)
    }
}

/// Streams an in-memory dense dataset into a store file (test/bench
/// convenience; real corpora use the streaming loader converters).
///
/// # Errors
/// I/O failures.
pub fn write_dense_dataset(
    data: &bolton_sgd::InMemoryDataset,
    path: impl AsRef<Path>,
    chunk_rows: usize,
) -> Result<PathBuf, StoreError> {
    let mut writer = RowStoreWriter::create_dense(path, TrainSet::dim(data), chunk_rows)?;
    for i in 0..TrainSet::len(data) {
        writer.push_dense(data.features_of(i), data.label_of(i))?;
    }
    writer.finish()
}

/// Streams an in-memory sparse dataset into a sparse-encoded store file.
///
/// # Errors
/// I/O failures.
pub fn write_sparse_dataset(
    data: &bolton_sgd::SparseDataset,
    path: impl AsRef<Path>,
    chunk_rows: usize,
) -> Result<PathBuf, StoreError> {
    let mut writer = RowStoreWriter::create_sparse(path, TrainSet::dim(data), chunk_rows)?;
    for i in 0..TrainSet::len(data) {
        writer.push_sparse(data.row(i), data.label_of(i))?;
    }
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolton_rng::seeded;
    use bolton_sgd::engine::SamplingScheme;
    use bolton_sgd::schedule::StepSize;
    use bolton_sgd::{run_psgd, InMemoryDataset, Logistic, SgdConfig, SparseDataset};

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bolton-rowstore-{}-{name}.rws", std::process::id()))
    }

    fn linear(m: usize, dim: usize, seed: u64) -> InMemoryDataset {
        crate::generator::linear_binary(&mut seeded(seed), m, dim, 0.05)
    }

    #[test]
    fn dense_roundtrip_is_bit_exact() {
        let data = linear(53, 5, 601);
        let path = tmp("dense-roundtrip");
        write_dense_dataset(&data, &path, 8).unwrap();
        let stored = StoredDataset::open(&path).unwrap();
        assert_eq!(TrainSet::len(&stored), 53);
        assert_eq!(TrainSet::dim(&stored), 5);
        assert_eq!(stored.encoding(), Encoding::Dense);
        assert_eq!(stored.chunk_rows(), 8);
        for i in 0..53 {
            assert_eq!(stored.get(i), data.get(i), "row {i}");
            assert_eq!(stored.label_of(i), data.label_of(i));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sparse_roundtrip_preserves_rows_and_empty_rows() {
        let rows = vec![
            SparseVec::from_pairs(6, [(1, 0.5), (4, -2.0)]),
            SparseVec::from_pairs(6, []), // all-zero row
            SparseVec::from_pairs(6, [(0, 1.25)]),
        ];
        let labels = vec![1.0, -1.0, 1.0];
        let data = SparseDataset::new(rows, labels);
        let path = tmp("sparse-roundtrip");
        write_sparse_dataset(&data, &path, 2).unwrap();
        let stored = StoredDataset::open(&path).unwrap();
        assert_eq!(stored.encoding(), Encoding::Sparse);
        let mut seen = Vec::new();
        stored.scan_order_sparse(&[0, 1, 2], &mut |pos, row, y| {
            seen.push((pos, row.clone(), y));
        });
        for (pos, row, y) in &seen {
            assert_eq!(row, data.row(*pos), "row {pos}");
            assert_eq!(*y, data.label_of(*pos));
        }
        // Dense scan of the sparse store agrees too.
        for i in 0..3 {
            assert_eq!(stored.get(i), data.get(i));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn training_from_disk_is_bit_identical_to_memory() {
        let data = linear(700, 6, 602);
        let path = tmp("train-parity");
        write_dense_dataset(&data, &path, 64).unwrap();
        // Budget of two chunks: constant eviction pressure during training.
        let chunk_bytes = 64 * 7 * 8;
        let stored = StoredDataset::open_with_budget(&path, 2 * chunk_bytes).unwrap();
        let loss = Logistic::plain();
        for sampling in [
            SamplingScheme::Permutation { fresh_each_pass: false },
            SamplingScheme::Permutation { fresh_each_pass: true },
            SamplingScheme::chunked(64),
            SamplingScheme::ChunkedPermutation { chunk_len: 64, fresh_each_pass: true },
        ] {
            let config = SgdConfig::new(StepSize::Constant(0.3))
                .with_passes(2)
                .with_batch_size(3)
                .with_sampling(sampling);
            let mem = run_psgd(&data, &loss, &config, &mut seeded(603));
            let disk = run_psgd(&stored, &loss, &config, &mut seeded(603));
            assert_eq!(mem.model, disk.model, "{sampling:?}");
            assert_eq!(mem.updates, disk.updates);
        }
        let stats = stored.cache_stats();
        assert!(stats.evictions > 0, "budget must force evictions: {stats:?}");
        assert!(stats.peak_resident_bytes <= 2 * chunk_bytes, "{stats:?}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn chunked_sampling_pins_each_chunk_once_per_pass() {
        let data = linear(320, 4, 604);
        let path = tmp("pin-locality");
        write_dense_dataset(&data, &path, 32).unwrap(); // 10 chunks
        let chunk_bytes = 32 * 5 * 8;
        // Room for a single chunk: any non-local order would thrash.
        let stored = StoredDataset::open_with_budget(&path, chunk_bytes).unwrap();
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.2))
            .with_passes(3)
            .with_sampling(SamplingScheme::chunked(32));
        let out = run_psgd(&stored, &loss, &config, &mut seeded(605));
        assert_eq!(out.updates, 3 * 320);
        let stats = stored.cache_stats();
        // 10 chunks: the shared (non-fresh) order pins each chunk once per
        // pass; the thread pin absorbs within-pass locality, so the cache
        // sees at most one fetch per chunk per pass.
        assert!(stats.misses <= 30, "chunk-local order should fetch ≤ chunks×passes: {stats:?}");
        assert!(stats.peak_resident_bytes <= chunk_bytes, "{stats:?}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn parallel_training_from_disk_matches_memory() {
        use bolton_sgd::run_parallel_psgd;
        let data = linear(512, 5, 606);
        let path = tmp("parallel-parity");
        write_dense_dataset(&data, &path, 64).unwrap(); // 8 chunks
        let stored = StoredDataset::open_with_budget(&path, 3 * 64 * 6 * 8).unwrap();
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.3))
            .with_passes(2)
            .with_sampling(SamplingScheme::chunked(64));
        for workers in [1usize, 2, 4] {
            let mem = run_parallel_psgd(&data, &loss, &config, workers, &mut seeded(607));
            let disk = run_parallel_psgd(&stored, &loss, &config, workers, &mut seeded(607));
            assert_eq!(mem.model, disk.model, "{workers} workers");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sparse_store_trains_like_sparse_memory() {
        use bolton_sgd::run_sparse_psgd;
        let (_, sparse) = bolton_sgd::dataset::sparse_pair_fixture(300, 12, 0.2, 608);
        let path = tmp("sparse-train-parity");
        write_sparse_dataset(&sparse, &path, 32).unwrap();
        let stored = StoredDataset::open_with_budget(&path, 1 << 16).unwrap();
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.3))
            .with_passes(2)
            .with_sampling(SamplingScheme::chunked(32));
        let mem = run_sparse_psgd(&sparse, &loss, &config, &mut seeded(609));
        let disk = run_sparse_psgd(&stored, &loss, &config, &mut seeded(609));
        assert_eq!(mem.model, disk.model);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn split_views_share_the_cache_and_cover_all_rows() {
        let data = linear(103, 3, 610);
        let path = tmp("split-views");
        write_dense_dataset(&data, &path, 16).unwrap();
        let stored = StoredDataset::open_with_budget(&path, 1 << 20).unwrap();
        let parts = stored.split(4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(TrainSet::len).sum::<usize>(), 103);
        assert_eq!(TrainSet::len(&parts[0]), 26);
        // Portion boundaries land mid-chunk; every row resolves correctly.
        let mut offset = 0usize;
        for part in &parts {
            for i in 0..TrainSet::len(part) {
                assert_eq!(part.get(i), data.get(offset + i));
            }
            offset += TrainSet::len(part);
        }
        // TuningData goes through the same split.
        let portions = TuningData::split_portions(&stored, 5);
        assert_eq!(portions.len(), 5);
        assert_eq!(portions.iter().map(TrainSet::len).sum::<usize>(), 103);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn private_training_from_disk_matches_memory_bit_for_bit() {
        use bolton::output_perturbation::{train_private, BoltOnConfig};
        use bolton::Budget;
        let data = linear(400, 4, 611);
        let path = tmp("private-parity");
        write_dense_dataset(&data, &path, 64).unwrap();
        let stored = StoredDataset::open_with_budget(&path, 2 * 64 * 5 * 8).unwrap();
        let config = BoltOnConfig::new(Budget::pure(1.0).unwrap()).with_passes(3);
        let loss = Logistic::plain();
        let mem = train_private(&data, &loss, &config, &mut seeded(612)).unwrap();
        let disk = train_private(&stored, &loss, &config, &mut seeded(612)).unwrap();
        // Identical Δ₂ calibration, identical noise draw, identical model:
        // the release from disk is bit-for-bit the in-memory release.
        assert_eq!(mem.sensitivity, disk.sensitivity);
        assert_eq!(mem.unperturbed, disk.unperturbed);
        assert_eq!(mem.model, disk.model);
        std::fs::remove_file(&path).unwrap();
    }

    /// The tuning grid accepts disk-backed data: Algorithm 3 splits the
    /// store into portion views (no copies) and trains candidates against
    /// them through the shared cache.
    #[test]
    fn private_tuning_grid_runs_on_disk() {
        use bolton::tuning::{grid, private_tune_models_parallel, Candidate};
        use bolton::Budget;
        use bolton_sgd::pool::WorkerPool;
        let data = linear(360, 4, 615);
        let path = tmp("tuning-grid");
        write_dense_dataset(&data, &path, 32).unwrap();
        let stored = StoredDataset::open_with_budget(&path, 1 << 16).unwrap();
        let candidates = grid(&[1, 2], &[1], &[0.0]);
        let loss = Logistic::plain();
        let train = |portion: &StoredDataset, c: &Candidate, rng: &mut dyn bolton_rng::Rng| {
            let config = SgdConfig::new(StepSize::Constant(0.3)).with_passes(c.passes);
            run_psgd(portion, &loss, &config, rng).model
        };
        let errors = |model: &Vec<f64>, holdout: &StoredDataset| {
            bolton_sgd::metrics::zero_one_errors(model, holdout)
        };
        let pool = WorkerPool::new(2);
        let tuned = private_tune_models_parallel(
            &pool.runner(),
            &stored,
            &candidates,
            Budget::pure(1.0).unwrap(),
            &train,
            &errors,
            616,
            &mut seeded(617),
        )
        .unwrap();
        assert_eq!(tuned.error_counts.len(), 2);
        assert!(tuned.selected < 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_store_roundtrips() {
        let path = tmp("empty");
        let writer = RowStoreWriter::create_dense(&path, 3, 4).unwrap();
        assert_eq!(writer.rows_written(), 0);
        writer.finish().unwrap();
        let stored = StoredDataset::open(&path).unwrap();
        assert_eq!(TrainSet::len(&stored), 0);
        assert!(stored.is_empty());
        let mut visits = 0usize;
        stored.scan(&mut |_, _, _| visits += 1);
        assert_eq!(visits, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_garbage_and_truncation() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not a row store").unwrap();
        assert!(matches!(StoredDataset::open(&path), Err(StoreError::Corrupt { .. })));
        std::fs::write(&path, b"BOLT").unwrap();
        assert!(matches!(StoredDataset::open(&path), Err(StoreError::Corrupt { .. })));
        // A valid store truncated mid-directory.
        let data = linear(40, 3, 613);
        write_dense_dataset(&data, &path, 8).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        assert!(matches!(StoredDataset::open(&path), Err(StoreError::Corrupt { .. })));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reset_cache_stats_rebases_peak() {
        let data = linear(96, 3, 614);
        let path = tmp("reset-stats");
        write_dense_dataset(&data, &path, 16).unwrap();
        let stored = StoredDataset::open_with_budget(&path, 1 << 20).unwrap();
        stored.scan(&mut |_, _, _| {});
        let warm = stored.cache_stats();
        assert!(warm.misses > 0);
        stored.reset_cache_stats();
        let reset = stored.cache_stats();
        assert_eq!(reset.misses, 0);
        assert_eq!(reset.hits, 0);
        assert_eq!(reset.evictions, 0);
        assert_eq!(reset.peak_resident_bytes, reset.resident_bytes);
        std::fs::remove_file(&path).unwrap();
    }

    /// Mapped and copy-mode opens of the same dense store serve identical
    /// rows, and the serve counters make the path taken observable:
    /// every serve is exactly one of borrowed-from-mmap or decode-copied.
    #[test]
    fn mmap_and_copy_paths_agree_and_are_observable() {
        let data = linear(120, 4, 620);
        let path = tmp("mmap-parity");
        write_dense_dataset(&data, &path, 16).unwrap();
        let mapped = StoredDataset::open_with_budget(&path, 1 << 20).unwrap();
        let copied = StoredDataset::open_copying_with_budget(&path, 1 << 20).unwrap();
        // `BOLTON_MMAP=off` in the environment legitimately disables the
        // mapping (the CI matrix runs the suite that way), so only require
        // it when the knob permits and the platform supports it.
        assert_eq!(mapped.mmap_backed(), crate::mmap::MMAP_SUPPORTED && !mmap_disabled_by_env());
        assert!(!copied.mmap_backed(), "copy-mode open must never map");
        for i in 0..120 {
            assert_eq!(mapped.get(i), copied.get(i), "row {i}");
            assert_eq!(mapped.label_of(i), copied.label_of(i), "label {i}");
        }
        let ms = mapped.cache_stats();
        let cs = copied.cache_stats();
        assert_eq!(ms.borrowed_mmap_hits + ms.copied_hits, ms.hits + ms.misses, "{ms:?}");
        assert_eq!(cs.borrowed_mmap_hits + cs.copied_hits, cs.hits + cs.misses, "{cs:?}");
        if mapped.mmap_backed() {
            assert!(ms.borrowed_mmap_hits > 0, "{ms:?}");
            assert_eq!(ms.copied_hits, 0, "{ms:?}");
        }
        assert_eq!(cs.borrowed_mmap_hits, 0, "{cs:?}");
        assert!(cs.copied_hits > 0, "{cs:?}");
        std::fs::remove_file(&path).unwrap();
    }

    /// Sparse stores always fall back to decode copies (their rows hold
    /// unaligned u32 fields and must be materialized anyway).
    #[test]
    fn sparse_stores_are_never_mapped() {
        let (_, sparse) = bolton_sgd::dataset::sparse_pair_fixture(40, 8, 0.2, 621);
        let path = tmp("sparse-no-mmap");
        write_sparse_dataset(&sparse, &path, 16).unwrap();
        let stored = StoredDataset::open_with_budget(&path, 1 << 16).unwrap();
        assert!(!stored.mmap_backed());
        stored.scan(&mut |_, _, _| {});
        let stats = stored.cache_stats();
        assert_eq!(stats.borrowed_mmap_hits, 0);
        assert!(stats.copied_hits > 0);
        std::fs::remove_file(&path).unwrap();
    }

    /// Training from a mapped store is bit-identical to training from a
    /// copy-mode open of the same file (which is in turn bit-identical to
    /// memory, per `training_from_disk_is_bit_identical_to_memory`) —
    /// under eviction pressure, so mapped chunks cycle through the cache.
    #[test]
    fn mmap_training_is_bit_identical_to_copy_mode() {
        let data = linear(700, 6, 622);
        let path = tmp("mmap-train-parity");
        write_dense_dataset(&data, &path, 64).unwrap();
        let chunk_bytes = 64 * 7 * 8;
        let mapped = StoredDataset::open_with_budget(&path, 2 * chunk_bytes).unwrap();
        let copied = StoredDataset::open_copying_with_budget(&path, 2 * chunk_bytes).unwrap();
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.3))
            .with_passes(2)
            .with_batch_size(3)
            .with_sampling(SamplingScheme::chunked(64));
        let from_map = run_psgd(&mapped, &loss, &config, &mut seeded(623));
        let from_copy = run_psgd(&copied, &loss, &config, &mut seeded(623));
        assert_eq!(from_map.model, from_copy.model);
        let stats = mapped.cache_stats();
        assert!(stats.evictions > 0, "budget must force evictions: {stats:?}");
        assert!(stats.peak_resident_bytes <= 2 * chunk_bytes, "{stats:?}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic(expected = "dense push on a sparse-encoded store")]
    fn encoding_mismatch_rejected() {
        let path = tmp("encoding-mismatch");
        let mut writer = RowStoreWriter::create_sparse(&path, 3, 4).unwrap();
        let _ = writer.push_dense(&[1.0, 2.0, 3.0], 1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use bolton_sgd::engine::{PassOrders, SamplingScheme, SgdConfig};
    use bolton_sgd::schedule::StepSize;
    use bolton_sgd::SparseDataset;
    use proptest::prelude::*;

    fn tmp(name: &str, case: u64) -> PathBuf {
        std::env::temp_dir()
            .join(format!("bolton-rowstore-prop-{}-{name}-{case}.rws", std::process::id()))
    }

    proptest! {
        /// Dense write→read round-trips the exact rows for any shape and
        /// chunk size (including the single-chunk edge `chunk_rows ≥ m`).
        #[test]
        fn dense_roundtrip(
            m in 1usize..60,
            dim in 1usize..6,
            chunk_rows in 1usize..70,
            seed in 0u64..1000,
        ) {
            let data = crate::generator::linear_binary(
                &mut bolton_rng::seeded(seed), m, dim, 0.1);
            let path = tmp("dense", seed.wrapping_mul(61) ^ (m as u64) << 16 ^ (chunk_rows as u64));
            write_dense_dataset(&data, &path, chunk_rows).unwrap();
            let stored = StoredDataset::open_with_budget(&path, 1 << 14).unwrap();
            prop_assert_eq!(TrainSet::len(&stored), m);
            for i in 0..m {
                prop_assert_eq!(stored.get(i), data.get(i));
            }
            std::fs::remove_file(&path).unwrap();
        }

        /// Sparse write→read round-trips rows exactly, including all-zero
        /// rows.
        #[test]
        fn sparse_roundtrip(
            m in 1usize..40,
            chunk_rows in 1usize..50,
            seed in 0u64..1000,
        ) {
            use bolton_rng::Rng as _;
            let dim = 9usize;
            let mut rng = bolton_rng::seeded(seed);
            let mut rows: Vec<SparseVec> = Vec::with_capacity(m);
            for _ in 0..m {
                let mut pairs: Vec<(usize, f64)> = Vec::new();
                for j in 0..dim {
                    if rng.next_bool(0.25) {
                        pairs.push((j, rng.next_range(-1.0, 1.0)));
                    }
                }
                rows.push(SparseVec::from_pairs(dim, pairs));
            }
            let labels: Vec<f64> =
                (0..m).map(|_| if rng.next_bool(0.5) { 1.0 } else { -1.0 }).collect();
            let data = SparseDataset::new(rows, labels);
            let path = tmp("sparse", seed.wrapping_mul(67) ^ (m as u64) << 16 ^ (chunk_rows as u64));
            write_sparse_dataset(&data, &path, chunk_rows).unwrap();
            let stored = StoredDataset::open_with_budget(&path, 1 << 14).unwrap();
            let mut visited = 0usize;
            stored.scan_order_sparse(
                &(0..m).collect::<Vec<_>>(),
                &mut |pos, row, y| {
                    assert_eq!(row, data.row(pos));
                    assert_eq!(y, data.label_of(pos));
                    visited += 1;
                },
            );
            prop_assert_eq!(visited, m);
            std::fs::remove_file(&path).unwrap();
        }

        /// Chunked scans visit every row exactly once, in order positions,
        /// under any chunk size and any sampling scheme's pass orders.
        #[test]
        fn scans_cover_every_row_once(
            m in 1usize..80,
            chunk_rows in 1usize..90,
            order_chunk in 1usize..90,
            fresh_bit in 0u8..2,
            flat_bit in 0u8..2,
            seed in 0u64..1000,
        ) {
            let dim = 3usize;
            let data = crate::generator::linear_binary(
                &mut bolton_rng::seeded(seed), m, dim, 0.1);
            let path = tmp("cover", seed.wrapping_mul(71)
                ^ (m as u64) << 24 ^ (chunk_rows as u64) << 12 ^ (order_chunk as u64));
            write_dense_dataset(&data, &path, chunk_rows).unwrap();
            // A budget of one decoded chunk: worst-case eviction pressure.
            let stored = StoredDataset::open_with_budget(
                &path, chunk_rows.min(m) * (dim + 1) * 8).unwrap();
            let (fresh, flat) = (fresh_bit == 1, flat_bit == 1);
            let sampling = if flat {
                SamplingScheme::Permutation { fresh_each_pass: fresh }
            } else {
                SamplingScheme::ChunkedPermutation { chunk_len: order_chunk, fresh_each_pass: fresh }
            };
            let config = SgdConfig::new(StepSize::Constant(0.1))
                .with_passes(2)
                .with_sampling(sampling);
            let orders = PassOrders::sample(&config, m, &mut bolton_rng::seeded(seed ^ 0xA5));
            for pass in 0..2 {
                let order = orders.order(pass);
                let mut seen = vec![0usize; m];
                let mut pos_ok = true;
                stored.scan_order(order, &mut |pos, x, y| {
                    let i = order[pos];
                    seen[i] += 1;
                    pos_ok &= x == data.features_of(i) && y == data.label_of(i);
                });
                prop_assert!(pos_ok, "row content mismatch");
                prop_assert!(seen.iter().all(|&c| c == 1), "rows visited != once: {seen:?}");
            }
            std::fs::remove_file(&path).unwrap();
        }
    }
}

//! Scalar distribution samplers built on the [`Rng`] trait.
//!
//! These are the building blocks for the paper's noise mechanisms:
//! * [`standard_normal`] / [`Normal`] — Gaussian noise for (ε,δ)-DP
//!   (Theorem 3) and for Gaussian random projection.
//! * [`Exponential`] — building block for Erlang sampling.
//! * [`Gamma`] — the magnitude of the ε-DP noise vector is distributed
//!   `Γ(d, Δ₂/ε)` (Theorem 1 / Appendix E).

use crate::rng::Rng;

/// Draws one standard normal variate via the Box–Muller transform.
///
/// Uses two uniforms and returns the cosine branch; this trades a small
/// constant factor for statelessness (no cached spare), which keeps every
/// call site reproducible from the raw `u64` stream alone.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1 = rng.next_f64_open();
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A normal distribution with the given mean and standard deviation.
#[derive(Clone, Copy, Debug)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates a `N(mean, sd²)` distribution.
    ///
    /// # Panics
    /// Panics if `sd` is negative or not finite.
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(sd.is_finite() && sd >= 0.0, "standard deviation must be finite and >= 0");
        Self { mean, sd }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.sd * standard_normal(rng)
    }
}

/// An exponential distribution with the given rate λ (mean `1/λ`).
#[derive(Clone, Copy, Debug)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an `Exp(rate)` distribution.
    ///
    /// # Panics
    /// Panics unless `rate` is finite and positive.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be finite and > 0");
        Self { rate }
    }

    /// Draws one sample by inversion: `-ln(U)/λ`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        -rng.next_f64_open().ln() / self.rate
    }
}

/// A gamma distribution `Γ(shape, scale)` with density
/// `x^{shape-1} e^{-x/scale} / (Γ(shape) scale^shape)`.
///
/// Sampling uses Marsaglia & Tsang's squeeze method (2000) for `shape ≥ 1`
/// and the Johnk-style boost `Γ(a) = Γ(a+1)·U^{1/a}` for `shape < 1`.
#[derive(Clone, Copy, Debug)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a `Γ(shape, scale)` distribution.
    ///
    /// # Panics
    /// Panics unless both parameters are finite and positive.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape.is_finite() && shape > 0.0, "shape must be finite and > 0");
        assert!(scale.is_finite() && scale > 0.0, "scale must be finite and > 0");
        Self { shape, scale }
    }

    /// The distribution mean, `shape · scale`.
    pub fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    /// The distribution variance, `shape · scale²`.
    pub fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.shape < 1.0 {
            // Boost: if X ~ Γ(shape+1, scale) and U uniform, X·U^{1/shape} ~ Γ(shape, scale).
            let boosted = Gamma::new(self.shape + 1.0, self.scale).sample(rng);
            return boosted * rng.next_f64_open().powf(1.0 / self.shape);
        }
        let d = self.shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = rng.next_f64_open();
            let x2 = x * x;
            // Squeeze acceptance (cheap) then exact log acceptance.
            if u < 1.0 - 0.0331 * x2 * x2 || u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
                return d * v * self.scale;
            }
        }
    }
}

/// Draws an Erlang(`k`, `scale`) sample — i.e. `Γ(k, scale)` for integer `k` —
/// as a sum of `k` exponentials. Slower than [`Gamma`] for large `k` but
/// exact and independent of the Marsaglia–Tsang code path, so tests
/// cross-validate the two.
pub fn erlang<R: Rng + ?Sized>(rng: &mut R, k: u32, scale: f64) -> f64 {
    assert!(k > 0, "Erlang shape must be >= 1");
    assert!(scale.is_finite() && scale > 0.0, "scale must be finite and > 0");
    let mut acc = 0.0;
    for _ in 0..k {
        acc -= rng.next_f64_open().ln();
    }
    acc * scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded;

    fn mean_var(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = seeded(21);
        let samples: Vec<f64> = (0..200_000).map(|_| standard_normal(&mut rng)).collect();
        let (mean, var) = mean_var(&samples);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn normal_shift_scale() {
        let mut rng = seeded(22);
        let dist = Normal::new(3.0, 2.0);
        let samples: Vec<f64> = (0..200_000).map(|_| dist.sample(&mut rng)).collect();
        let (mean, var) = mean_var(&samples);
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn exponential_moments() {
        let mut rng = seeded(23);
        let dist = Exponential::new(0.5);
        let samples: Vec<f64> = (0..200_000).map(|_| dist.sample(&mut rng)).collect();
        let (mean, var) = mean_var(&samples);
        assert!((mean - 2.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn gamma_moments_large_shape() {
        let mut rng = seeded(24);
        let dist = Gamma::new(50.0, 0.25);
        let samples: Vec<f64> = (0..100_000).map(|_| dist.sample(&mut rng)).collect();
        let (mean, var) = mean_var(&samples);
        assert!((mean - dist.mean()).abs() < 0.02 * dist.mean(), "mean {mean}");
        assert!((var - dist.variance()).abs() < 0.05 * dist.variance(), "var {var}");
    }

    #[test]
    fn gamma_moments_small_shape() {
        let mut rng = seeded(25);
        let dist = Gamma::new(0.5, 2.0);
        let samples: Vec<f64> = (0..200_000).map(|_| dist.sample(&mut rng)).collect();
        let (mean, var) = mean_var(&samples);
        assert!((mean - 1.0).abs() < 0.03, "mean {mean}");
        assert!((var - 2.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn gamma_agrees_with_erlang() {
        let mut rng = seeded(26);
        let k = 7u32;
        let scale = 1.5;
        let g = Gamma::new(k as f64, scale);
        let a: Vec<f64> = (0..100_000).map(|_| g.sample(&mut rng)).collect();
        let b: Vec<f64> = (0..100_000).map(|_| erlang(&mut rng, k, scale)).collect();
        let (ma, va) = mean_var(&a);
        let (mb, vb) = mean_var(&b);
        assert!((ma - mb).abs() < 0.05 * ma.max(mb), "means {ma} vs {mb}");
        assert!((va - vb).abs() < 0.1 * va.max(vb), "vars {va} vs {vb}");
    }

    #[test]
    fn gamma_samples_positive() {
        let mut rng = seeded(27);
        for shape in [0.3, 1.0, 2.0, 17.0] {
            let g = Gamma::new(shape, 0.7);
            for _ in 0..1000 {
                assert!(g.sample(&mut rng) > 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "shape must be finite")]
    fn gamma_rejects_zero_shape() {
        Gamma::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "rate must be finite")]
    fn exponential_rejects_negative_rate() {
        Exponential::new(-1.0);
    }
}

//! Fisher–Yates shuffling and random permutations.
//!
//! Permutation-based SGD samples a permutation τ of `[m]` up front
//! (Section 2 of the paper); these helpers are that sampling step.

use crate::rng::Rng;

/// Shuffles `items` in place with the Fisher–Yates algorithm (unbiased given
/// an unbiased [`Rng::next_below`]).
pub fn shuffle<T, R: Rng + ?Sized>(rng: &mut R, items: &mut [T]) {
    let n = items.len();
    for i in (1..n).rev() {
        let j = rng.next_index(i + 1);
        items.swap(i, j);
    }
}

/// Returns a uniformly random permutation of `0..n`.
pub fn random_permutation<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    shuffle(rng, &mut perm);
    perm
}

/// Returns a *two-level* random permutation of `0..n` over fixed chunks
/// `[0, c), [c, 2c), …`: the chunk order is shuffled, then each chunk's
/// rows are shuffled within the chunk, and the shuffled chunks are
/// concatenated. Every same-chunk run in the result is a whole chunk, so a
/// chunked (paged, out-of-core) store scanning in this order pins each
/// chunk exactly once per pass instead of seeking randomly across the file.
///
/// The result is uniform over the subgroup of chunk-preserving
/// permutations, *not* over all `n!` orders — callers needing the flat
/// scheme use [`random_permutation`].
///
/// # Panics
/// Panics if `chunk_len == 0`.
pub fn chunked_permutation<R: Rng + ?Sized>(rng: &mut R, n: usize, chunk_len: usize) -> Vec<usize> {
    chunked_permutation_with_spans(rng, n, chunk_len).0
}

/// [`chunked_permutation`] plus the `[lo, hi)` position span of each
/// whole-chunk run, in run order (spans are contiguous: each starts where
/// the previous ends). Consumers that partition the order along chunk
/// boundaries — parallel sharding — derive their bounds from the spans, so
/// there is exactly one implementation of the two-level draw and its RNG
/// consumption.
///
/// # Panics
/// Panics if `chunk_len == 0`.
pub fn chunked_permutation_with_spans<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    chunk_len: usize,
) -> (Vec<usize>, Vec<(usize, usize)>) {
    assert!(chunk_len > 0, "chunk_len must be positive");
    let chunks = n.div_ceil(chunk_len);
    let chunk_order = random_permutation(rng, chunks);
    let mut order = Vec::with_capacity(n);
    let mut spans = Vec::with_capacity(chunks);
    for &c in &chunk_order {
        let lo = c * chunk_len;
        let hi = ((c + 1) * chunk_len).min(n);
        let start = order.len();
        order.extend(lo..hi);
        shuffle(rng, &mut order[start..]);
        spans.push((start, order.len()));
    }
    (order, spans)
}

#[cfg(test)]
mod chunked_tests {
    use super::*;
    use crate::seeded;

    #[test]
    fn chunked_permutation_is_a_permutation_with_whole_chunk_runs() {
        let mut rng = seeded(21);
        for (n, cl) in [(10usize, 4usize), (12, 4), (1, 3), (0, 2), (7, 1), (5, 100)] {
            let p = chunked_permutation(&mut rng, n, cl);
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "n={n}, cl={cl}");
            // Consecutive entries switch chunks only at run boundaries, and
            // each chunk appears in exactly one contiguous run.
            let mut seen_chunks = Vec::new();
            for w in p.chunks(1).collect::<Vec<_>>().windows(2) {
                let (a, b) = (w[0][0] / cl, w[1][0] / cl);
                if a != b {
                    seen_chunks.push(a);
                }
            }
            if let Some(last) = p.last() {
                seen_chunks.push(last / cl);
            }
            let mut dedup = seen_chunks.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), seen_chunks.len(), "chunk revisited: n={n}, cl={cl}");
        }
    }

    #[test]
    fn chunked_permutation_is_seed_deterministic() {
        let mk = |seed| chunked_permutation(&mut seeded(seed), 40, 7);
        assert_eq!(mk(22), mk(22));
        assert_ne!(mk(22), mk(23));
    }

    #[test]
    #[should_panic(expected = "chunk_len must be positive")]
    fn zero_chunk_len_rejected() {
        chunked_permutation(&mut seeded(24), 10, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded;

    fn is_permutation(perm: &[usize]) -> bool {
        let n = perm.len();
        let mut seen = vec![false; n];
        for &p in perm {
            if p >= n || seen[p] {
                return false;
            }
            seen[p] = true;
        }
        true
    }

    #[test]
    fn permutation_is_valid() {
        let mut rng = seeded(11);
        for n in [0, 1, 2, 10, 1000] {
            assert!(is_permutation(&random_permutation(&mut rng, n)));
        }
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut rng = seeded(12);
        let mut v: Vec<u32> = (0..100).map(|i| i % 7).collect();
        let mut before = v.clone();
        shuffle(&mut rng, &mut v);
        before.sort_unstable();
        let mut after = v.clone();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn shuffle_is_seed_deterministic() {
        let mk = |seed| {
            let mut rng = seeded(seed);
            random_permutation(&mut rng, 50)
        };
        assert_eq!(mk(13), mk(13));
        assert_ne!(mk(13), mk(14));
    }

    /// Each position should be roughly uniform over values: chi-square-style
    /// sanity check on position 0 of a length-6 permutation.
    #[test]
    fn first_position_roughly_uniform() {
        let mut rng = seeded(15);
        let trials = 60_000;
        let mut counts = [0u32; 6];
        for _ in 0..trials {
            let p = random_permutation(&mut rng, 6);
            counts[p[0]] += 1;
        }
        let expect = trials as f64 / 6.0;
        for &c in &counts {
            assert!(((c as f64) - expect).abs() < 0.06 * expect, "count {c}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::seeded;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn random_permutation_always_valid(seed in any::<u64>(), n in 0usize..200) {
            let mut rng = seeded(seed);
            let perm = random_permutation(&mut rng, n);
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            let identity: Vec<usize> = (0..n).collect();
            prop_assert_eq!(sorted, identity);
        }

        #[test]
        fn shuffle_is_involution_free_but_multiset_safe(seed in any::<u64>(), mut v in proptest::collection::vec(any::<i32>(), 0..100)) {
            let mut rng = seeded(seed);
            let mut expected = v.clone();
            shuffle(&mut rng, &mut v);
            expected.sort_unstable();
            v.sort_unstable();
            prop_assert_eq!(v, expected);
        }
    }
}

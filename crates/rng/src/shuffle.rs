//! Fisher–Yates shuffling and random permutations.
//!
//! Permutation-based SGD samples a permutation τ of `[m]` up front
//! (Section 2 of the paper); these helpers are that sampling step.

use crate::rng::Rng;

/// Shuffles `items` in place with the Fisher–Yates algorithm (unbiased given
/// an unbiased [`Rng::next_below`]).
pub fn shuffle<T, R: Rng + ?Sized>(rng: &mut R, items: &mut [T]) {
    let n = items.len();
    for i in (1..n).rev() {
        let j = rng.next_index(i + 1);
        items.swap(i, j);
    }
}

/// Returns a uniformly random permutation of `0..n`.
pub fn random_permutation<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    shuffle(rng, &mut perm);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded;

    fn is_permutation(perm: &[usize]) -> bool {
        let n = perm.len();
        let mut seen = vec![false; n];
        for &p in perm {
            if p >= n || seen[p] {
                return false;
            }
            seen[p] = true;
        }
        true
    }

    #[test]
    fn permutation_is_valid() {
        let mut rng = seeded(11);
        for n in [0, 1, 2, 10, 1000] {
            assert!(is_permutation(&random_permutation(&mut rng, n)));
        }
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut rng = seeded(12);
        let mut v: Vec<u32> = (0..100).map(|i| i % 7).collect();
        let mut before = v.clone();
        shuffle(&mut rng, &mut v);
        before.sort_unstable();
        let mut after = v.clone();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn shuffle_is_seed_deterministic() {
        let mk = |seed| {
            let mut rng = seeded(seed);
            random_permutation(&mut rng, 50)
        };
        assert_eq!(mk(13), mk(13));
        assert_ne!(mk(13), mk(14));
    }

    /// Each position should be roughly uniform over values: chi-square-style
    /// sanity check on position 0 of a length-6 permutation.
    #[test]
    fn first_position_roughly_uniform() {
        let mut rng = seeded(15);
        let trials = 60_000;
        let mut counts = [0u32; 6];
        for _ in 0..trials {
            let p = random_permutation(&mut rng, 6);
            counts[p[0]] += 1;
        }
        let expect = trials as f64 / 6.0;
        for &c in &counts {
            assert!(((c as f64) - expect).abs() < 0.06 * expect, "count {c}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::seeded;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn random_permutation_always_valid(seed in any::<u64>(), n in 0usize..200) {
            let mut rng = seeded(seed);
            let perm = random_permutation(&mut rng, n);
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            let identity: Vec<usize> = (0..n).collect();
            prop_assert_eq!(sorted, identity);
        }

        #[test]
        fn shuffle_is_involution_free_but_multiset_safe(seed in any::<u64>(), mut v in proptest::collection::vec(any::<i32>(), 0..100)) {
            let mut rng = seeded(seed);
            let mut expected = v.clone();
            shuffle(&mut rng, &mut v);
            expected.sort_unstable();
            v.sort_unstable();
            prop_assert_eq!(v, expected);
        }
    }
}

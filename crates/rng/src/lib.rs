//! Deterministic pseudo-random number generation for reproducible experiments.
//!
//! Every randomized component in this workspace (SGD permutations, noise
//! sampling, dataset synthesis, private tuning) draws from the generators in
//! this crate so that an experiment is fully determined by its seed. The
//! paper's algorithms are *non-adaptive* (Definition 7): their random choices
//! do not depend on data values, which is exactly what a seeded PRNG stream
//! models.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a tiny generator used to expand a single `u64` seed
//!   into the larger state of other generators (its intended purpose per
//!   Vigna's reference implementation).
//! * [`Xoshiro256PlusPlus`] — the workhorse generator: 256-bit state, 1-cycle
//!   output, passes BigCrush, with `jump()` for 2^128 non-overlapping
//!   subsequences.
//!
//! The [`Rng`] trait carries the derived sampling methods (uniform doubles,
//! Lemire bounded integers, Fisher–Yates shuffling, random permutations) so
//! downstream crates depend only on the trait.

pub mod dist;
mod pcg;
mod rng;
mod shuffle;
mod splitmix;
mod xoshiro;

pub use pcg::Pcg64;
pub use rng::Rng;
pub use shuffle::{
    chunked_permutation, chunked_permutation_with_spans, random_permutation, shuffle,
};
pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256PlusPlus;

/// Convenience constructor: the workspace-standard generator from a `u64` seed.
///
/// All experiment harnesses call this so seeds printed in reports can be
/// replayed exactly.
pub fn seeded(seed: u64) -> Xoshiro256PlusPlus {
    Xoshiro256PlusPlus::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}

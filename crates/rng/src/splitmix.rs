//! SplitMix64: Steele, Lea & Flood's `splitmix64` update with Stafford's
//! `variant 13` finalizer. Used to seed larger-state generators.

use crate::rng::Rng;

/// A 64-bit state PRNG with equidistributed output over its full period.
///
/// Primarily used to expand a single `u64` seed into the 256-bit state of
/// [`crate::Xoshiro256PlusPlus`]; it is also a valid (if small-state) [`Rng`].
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(Self::GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values produced by Vigna's C `splitmix64.c` with seed 0.
    #[test]
    fn matches_reference_stream_seed_zero() {
        let mut rng = SplitMix64::new(0);
        let expected = [
            0xE220_A839_7B1D_CDAF_u64,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
            0x1B39_896A_51A8_749B,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn distinct_seeds_decorrelate() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(8);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}

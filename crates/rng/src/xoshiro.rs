//! xoshiro256++ 1.0 (Blackman & Vigna), the workspace's default generator.

use crate::rng::Rng;
use crate::splitmix::SplitMix64;

/// xoshiro256++: 256-bit state, period 2^256 − 1, passes BigCrush.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Creates a generator from raw state. At least one word must be nonzero;
    /// an all-zero state is silently replaced by a fixed nonzero state (the
    /// all-zero state is the one fixed point of the transition function).
    pub fn from_state(state: [u64; 4]) -> Self {
        if state == [0; 4] {
            // Expand a fixed seed instead of panicking: callers constructing
            // from hashes occasionally produce zero and want a usable stream.
            return Self::seed_from_u64(0x0BAD_5EED);
        }
        Self { s: state }
    }

    /// Expands a single `u64` seed into full state via [`SplitMix64`],
    /// following the seeding procedure recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self::from_state([sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()])
    }

    /// Derives an independent child generator. Equivalent to seeding a fresh
    /// generator from this stream; used to give each sub-task (e.g. each
    /// one-vs-all binary model) its own stream.
    pub fn fork(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }

    /// The jump function: advances the state by 2^128 steps, yielding
    /// non-overlapping subsequences for up to 2^128 parallel streams.
    pub fn jump(&mut self) {
        // Canonical constants from xoshiro256plusplus.c.
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut acc = [0u64; 4];
        for &word in &JUMP {
            for bit in 0..64 {
                if (word >> bit) & 1 == 1 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }
}

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl Rng for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values from xoshiro256plusplus.c with state {1, 2, 3, 4}.
    #[test]
    fn matches_reference_stream() {
        let mut rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn zero_state_is_replaced() {
        let mut rng = Xoshiro256PlusPlus::from_state([0; 4]);
        // Must not be stuck at zero.
        assert!((0..4).any(|_| rng.next_u64() != 0));
    }

    #[test]
    fn jump_produces_disjoint_prefix() {
        let mut base = Xoshiro256PlusPlus::seed_from_u64(99);
        let mut jumped = base.clone();
        jumped.jump();
        let a: Vec<u64> = (0..64).map(|_| base.next_u64()).collect();
        let b: Vec<u64> = (0..64).map(|_| jumped.next_u64()).collect();
        assert!(a.iter().zip(&b).all(|(x, y)| x != y));
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut child = parent.fork();
        let a: Vec<u64> = (0..32).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..32).map(|_| child.next_u64()).collect();
        assert_ne!(a, b);
    }
}

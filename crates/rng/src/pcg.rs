//! PCG64 (PCG-XSL-RR 128/64, O'Neill 2014): an independent generator family
//! used to cross-check results against xoshiro256++ — if a statistical test
//! outcome depends on which PRNG produced the stream, the test (or a
//! sampler) is wrong, not the generator.

use crate::rng::Rng;

const MULTIPLIER: u128 = 0x2360_ED05_1FC6_5DA4_4385_DF64_9FCC_F645;

/// PCG-XSL-RR 128/64: 128-bit LCG state, xorshift-low + random rotate output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pcg64 {
    state: u128,
    increment: u128,
}

impl Pcg64 {
    /// Creates a generator from a state seed and a stream selector (the
    /// increment is forced odd, as the LCG requires).
    pub fn new(seed: u128, stream: u128) -> Self {
        let increment = (stream << 1) | 1;
        let mut pcg = Self { state: 0, increment };
        // Standard PCG seeding: advance once, add seed, advance again.
        pcg.step();
        pcg.state = pcg.state.wrapping_add(seed);
        pcg.step();
        pcg
    }

    /// Seeds from a single `u64` (stream 0), mirroring [`crate::seeded`].
    pub fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed as u128, 0)
    }

    #[inline]
    fn step(&mut self) {
        self.state = self.state.wrapping_mul(MULTIPLIER).wrapping_add(self.increment);
    }
}

impl Rng for Pcg64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step();
        // XSL-RR output: xor-fold the halves, rotate by the top 6 bits.
        let xored = ((self.state >> 64) as u64) ^ (self.state as u64);
        let rot = (self.state >> 122) as u32;
        xored.rotate_right(rot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Pcg64::seed_from_u64(99);
        let mut b = Pcg64::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Pcg64::seed_from_u64(100);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn streams_are_distinct() {
        let mut a = Pcg64::new(7, 1);
        let mut b = Pcg64::new(7, 2);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn uniformity_sanity() {
        let mut rng = Pcg64::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[rng.next_index(8)] += 1;
        }
        for b in buckets {
            assert!((b as f64 - 10_000.0).abs() < 500.0, "bucket {b}");
        }
    }

    /// Cross-generator check: a statistic computed from PCG64 agrees with
    /// the same statistic from xoshiro256++ within sampling error.
    #[test]
    fn gaussian_moments_match_across_generators() {
        use crate::dist::standard_normal;
        let n = 100_000;
        let mut pcg = Pcg64::seed_from_u64(11);
        let mut xo = crate::seeded(11);
        let var = |rng: &mut dyn Rng| -> f64 {
            let xs: Vec<f64> = (0..n).map(|_| standard_normal(rng)).collect();
            let mean = xs.iter().sum::<f64>() / n as f64;
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        };
        let vp = var(&mut pcg);
        let vx = var(&mut xo);
        assert!((vp - 1.0).abs() < 0.02, "pcg var {vp}");
        assert!((vx - 1.0).abs() < 0.02, "xoshiro var {vx}");
    }
}

//! The [`Rng`] trait: a raw `u64` source plus derived sampling methods.

/// A deterministic source of uniform 64-bit words with derived samplers.
///
/// Implementors supply [`Rng::next_u64`]; everything else has a default
/// implementation so all generators share identical derived distributions.
pub trait Rng {
    /// Returns the next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; multiply by 2^-53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in the open interval `(0, 1]`.
    ///
    /// Useful for `ln(u)` transforms where `u = 0` would produce `-inf`.
    #[inline]
    fn next_f64_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)` using Lemire's unbiased
    /// multiply-shift rejection method.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a positive bound");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `usize` index in `[0, bound)`.
    #[inline]
    fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    #[inline]
    fn next_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi, "next_range requires lo < hi");
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derives an independent generator seeded from this stream. Used to
    /// split one seed into decorrelated streams (e.g. permutation draws vs
    /// noise draws) without aliasing mutable borrows.
    fn fork_stream(&mut self) -> crate::Xoshiro256PlusPlus {
        crate::Xoshiro256PlusPlus::seed_from_u64(self.next_u64())
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded;

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = seeded(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_open_never_zero() {
        let mut rng = seeded(4);
        for _ in 0..10_000 {
            let x = rng.next_f64_open();
            assert!(x > 0.0 && x <= 1.0);
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = seeded(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut rng = seeded(6);
        let bound = 7u64;
        let mut counts = [0u32; 7];
        let n = 70_000;
        for _ in 0..n {
            let v = rng.next_below(bound);
            assert!(v < bound);
            counts[v as usize] += 1;
        }
        let expect = n as f64 / bound as f64;
        for &c in &counts {
            assert!(((c as f64) - expect).abs() < 0.05 * expect, "bucket count {c} vs {expect}");
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn next_below_zero_panics() {
        let mut rng = seeded(7);
        rng.next_below(0);
    }

    #[test]
    fn next_bool_probability() {
        let mut rng = seeded(8);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.next_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn next_range_bounds() {
        let mut rng = seeded(9);
        for _ in 0..1000 {
            let x = rng.next_range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn trait_object_via_mut_ref() {
        let mut rng = seeded(10);
        fn draw(r: &mut dyn Rng) -> u64 {
            r.next_u64()
        }
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }
}

#[cfg(test)]
mod proptests {
    use crate::seeded;
    use crate::Rng;
    use proptest::prelude::*;

    proptest! {
        /// next_below stays strictly below any positive bound.
        #[test]
        fn next_below_in_range(seed in any::<u64>(), bound in 1u64..u64::MAX) {
            let mut rng = seeded(seed);
            for _ in 0..50 {
                prop_assert!(rng.next_below(bound) < bound);
            }
        }

        /// next_range stays within [lo, hi) for arbitrary finite intervals.
        #[test]
        fn next_range_in_interval(seed in any::<u64>(), lo in -1e6f64..1e6, width in 1e-6f64..1e6) {
            let mut rng = seeded(seed);
            let hi = lo + width;
            for _ in 0..50 {
                let x = rng.next_range(lo, hi);
                prop_assert!((lo..hi).contains(&x), "{x} outside [{lo}, {hi})");
            }
        }

        /// The f64 derivations preserve the 53-bit construction invariants.
        #[test]
        fn f64_constructions(seed in any::<u64>()) {
            let mut rng = seeded(seed);
            for _ in 0..100 {
                let closed = rng.next_f64();
                prop_assert!((0.0..1.0).contains(&closed));
                let open = rng.next_f64_open();
                prop_assert!(open > 0.0 && open <= 1.0);
            }
        }
    }
}

//! placeholder during bottom-up build

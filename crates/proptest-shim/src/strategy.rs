//! The [`Strategy`] trait and the concrete strategies the workspace uses:
//! ranges, [`Just`], tuples, `any`, `Vec`s, weighted unions, and the two
//! regex-string shapes.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for sampling values of `Self::Value`.
///
/// Unlike real proptest there is no value tree or shrinking: `sample` draws
/// one value directly from the RNG.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Samples a value, builds a dependent strategy from it, and samples
    /// that — proptest's way of expressing correlated inputs.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

// --- combinators -----------------------------------------------------------

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

// --- constants and ranges --------------------------------------------------

/// Always produces a clone of the wrapped value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $ty;
                }
                (lo as i128 + rng.next_below(span as u64) as i128) as $ty
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.next_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.next_f64() as f32
    }
}

// --- any -------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        crate::num::f64::ANY.sample(rng)
    }
}

pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Mirror of `proptest::prelude::any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// --- tuples ----------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(nonstandard_style)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

// --- collections -----------------------------------------------------------

/// Length bounds for [`VecStrategy`]; built from `usize`, `a..b`, or `a..=b`.
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi_inclusive - self.size.lo + 1;
        let len = self.size.lo + rng.next_below(span as u64) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

// --- weighted unions -------------------------------------------------------

/// Weighted choice among strategies with a common value type — the target
/// of the `prop_oneof!` macro.
pub struct OneOf<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

impl<T> OneOf<T> {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        OneOf { arms: Vec::new() }
    }

    pub fn with(mut self, weight: u32, strategy: impl Strategy<Value = T> + 'static) -> Self {
        self.arms.push((weight, Box::new(strategy)));
        self
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        let mut pick = rng.next_below(total);
        for (weight, strategy) in &self.arms {
            if pick < *weight as u64 {
                return strategy.sample(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

// --- regex-ish string strategies -------------------------------------------

/// String strategies from regex literals, mirroring proptest's
/// `impl Strategy for &str`. Supports the subset the workspace uses:
/// literal characters, character classes (`[a-z0-9_]`), the any-printable
/// escape `\PC`, and `{lo,hi}` repetition.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let span = atom.max_reps - atom.min_reps + 1;
            let reps = atom.min_reps + rng.next_below(span as u64) as usize;
            for _ in 0..reps {
                out.push(atom.chars.sample_char(rng));
            }
        }
        out
    }
}

enum CharSet {
    /// Explicit alternatives from a `[...]` class or a literal char.
    Choices(Vec<(char, char)>),
    /// `\PC`: any printable (non-control) character.
    AnyPrintable,
}

impl CharSet {
    fn sample_char(&self, rng: &mut TestRng) -> char {
        match self {
            CharSet::Choices(ranges) => {
                let total: u64 =
                    ranges.iter().map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1).sum();
                let mut pick = rng.next_below(total);
                for (lo, hi) in ranges {
                    let span = (*hi as u64) - (*lo as u64) + 1;
                    if pick < span {
                        return char::from_u32(*lo as u32 + pick as u32)
                            .expect("range endpoints are valid chars");
                    }
                    pick -= span;
                }
                unreachable!("char pick out of range")
            }
            CharSet::AnyPrintable => loop {
                // Mostly ASCII printable with occasional wider code points,
                // mirroring proptest's bias toward simple inputs.
                let candidate = if rng.next_below(4) > 0 {
                    char::from_u32(0x20 + rng.next_below(0x5f) as u32)
                } else {
                    char::from_u32(rng.next_below(0xD7FF) as u32)
                };
                match candidate {
                    Some(c) if !c.is_control() => return c,
                    _ => continue,
                }
            },
        }
    }
}

struct Atom {
    chars: CharSet,
    min_reps: usize,
    max_reps: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let set = match c {
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = match chars.next() {
                        Some(']') => break,
                        Some(c) => c,
                        None => panic!("unterminated character class in {pattern:?}"),
                    };
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars.next().unwrap_or_else(|| {
                            panic!("dangling '-' in character class in {pattern:?}")
                        });
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                CharSet::Choices(ranges)
            }
            '\\' => match chars.next() {
                Some('P') | Some('p') => {
                    let class = chars.next();
                    assert_eq!(class, Some('C'), "only \\PC is supported, in {pattern:?}");
                    CharSet::AnyPrintable
                }
                Some(escaped) => CharSet::Choices(vec![(escaped, escaped)]),
                None => panic!("dangling escape in {pattern:?}"),
            },
            literal => CharSet::Choices(vec![(literal, literal)]),
        };
        let (min_reps, max_reps) = if chars.peek() == Some(&'{') {
            chars.next();
            let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse().expect("repetition lower bound"),
                    hi.parse().expect("repetition upper bound"),
                ),
                None => {
                    let n = spec.parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(Atom { chars: set, min_reps, max_reps });
    }
    atoms
}

//! A minimal, dependency-free stand-in for the [proptest](https://docs.rs/proptest)
//! property-testing framework.
//!
//! The build environment for this workspace has no network access, so the
//! real `proptest` crate cannot be fetched. This shim implements exactly the
//! surface the workspace's `#[cfg(test)] mod proptests` modules use:
//!
//! - the [`Strategy`](strategy::Strategy) trait with `prop_map` /
//!   `prop_flat_map`;
//! - range strategies (`1usize..8`, `-1.0f64..1.0`, `d..=d`),
//!   [`Just`](strategy::Just),
//!   tuples, `any::<T>()`, `collection::vec`, `num::f64::ANY`, and string
//!   strategies from the two regex shapes the suite uses (`"\\PC{0,120}"`
//!   and character-class literals like `"[a-z][a-z0-9_]{0,10}"`);
//! - the `proptest!`, `prop_assert!`, `prop_assert_eq!`, `prop_assume!`,
//!   and `prop_oneof!` macros, plus `ProptestConfig::with_cases`.
//!
//! Instead of shrinking counterexamples, the shim simply runs each property
//! a configurable number of deterministic seeded cases (default 64) and
//! panics through plain `assert!` on the first failure — the failing values
//! appear in the assertion message. Swapping in the real proptest later is
//! a one-line change in `[workspace.dependencies]`.

pub mod strategy;

pub mod test_runner {
    //! The per-test configuration and deterministic RNG.

    /// Mirror of `proptest::test_runner::Config`, reduced to the one knob
    /// the workspace uses.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of sampled cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` sampled cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// SplitMix64 — tiny, deterministic, and good enough for sampling test
    /// inputs. Seeded from the property's name so every test gets an
    /// independent reproducible stream.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test name for a stable per-test seed.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for byte in name.bytes() {
                seed ^= byte as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `u64` in `[0, bound)` via 128-bit multiply-shift.
        pub fn next_below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
        }
    }
}

pub mod collection {
    //! `Vec` strategies, mirroring `proptest::collection`.

    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s of `element` samples with a length drawn
    /// from `size` (a `usize`, `a..b`, or `a..=b`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod num {
    //! Numeric strategies, mirroring `proptest::num`.

    #[allow(nonstandard_style)]
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy over *all* `f64` bit patterns — including NaN,
        /// infinities, subnormals, and signed zeros — with the special
        /// values over-represented so they actually show up in short runs.
        pub struct Any;

        /// Mirror of `proptest::num::f64::ANY`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f64;

            fn sample(&self, rng: &mut TestRng) -> f64 {
                match rng.next_below(8) {
                    0 => {
                        const SPECIAL: [f64; 8] = [
                            f64::NAN,
                            f64::INFINITY,
                            f64::NEG_INFINITY,
                            0.0,
                            -0.0,
                            f64::MIN_POSITIVE,
                            f64::MIN_POSITIVE / 2.0, // subnormal
                            f64::MAX,
                        ];
                        SPECIAL[rng.next_below(SPECIAL.len() as u64) as usize]
                    }
                    _ => f64::from_bits(rng.next_u64()),
                }
            }
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude::*`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Declares property tests: an optional
/// `#![proptest_config(ProptestConfig::with_cases(n))]` header followed by
/// `#[test] fn name(pattern in strategy, ...) { body }` items. Each
/// property runs `cases` deterministic sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            (<$crate::test_runner::Config as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $pat:pat_param in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            let mut __rng = $crate::test_runner::TestRng::for_test(::core::stringify!($name));
            for __case in 0..__config.cases {
                let ( $($pat,)+ ) =
                    ( $( $crate::strategy::Strategy::sample(&($strat), &mut __rng), )+ );
                // A closure so `prop_assume!` can skip the case via `return`.
                let mut __one_case = || $body;
                __one_case();
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Mirror of proptest's `prop_assert!` — plain `assert!` (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Mirror of proptest's `prop_assert_eq!` — plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Mirror of proptest's `prop_assume!` — skips the current case when the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Mirror of proptest's `prop_oneof!` — a weighted (or uniform) choice
/// among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:literal => $strat:expr ),+ $(,)? ) => {
        $crate::strategy::OneOf::new() $( .with($weight, $strat) )+
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::OneOf::new() $( .with(1, $strat) )+
    };
}

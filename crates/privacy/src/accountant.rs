//! A sequential-composition privacy ledger.
//!
//! The multiclass driver (10 one-vs-all models over MNIST) and the private
//! tuning algorithm both make several private releases from the same data;
//! the accountant enforces that their combined (basic-composition) cost
//! stays inside the granted budget.

use crate::budget::{Budget, PrivacyError};

/// One recorded charge.
#[derive(Clone, Debug)]
pub struct Charge {
    /// Human-readable label of the release (e.g. `"ova-digit-3"`).
    pub label: String,
    /// Budget consumed by the release.
    pub cost: Budget,
}

/// Tracks privacy spend against a fixed total budget under basic sequential
/// composition (ε and δ add across releases on the same data).
#[derive(Clone, Debug)]
pub struct Accountant {
    total: Budget,
    charges: Vec<Charge>,
    spent_eps: f64,
    spent_delta: f64,
}

impl Accountant {
    /// Creates a ledger with the given total budget.
    pub fn new(total: Budget) -> Self {
        Self { total, charges: Vec::new(), spent_eps: 0.0, spent_delta: 0.0 }
    }

    /// The total granted budget.
    pub fn total(&self) -> Budget {
        self.total
    }

    /// The budget consumed so far.
    pub fn spent(&self) -> Budget {
        // Degenerate zero-spend state cannot be represented as a Budget
        // (ε must be > 0), so report via remaining() instead when empty.
        Budget::approx(
            self.spent_eps.max(f64::MIN_POSITIVE),
            self.spent_delta.min(1.0 - f64::EPSILON),
        )
        .expect("spent components are valid by construction")
    }

    /// The budget still available.
    pub fn remaining(&self) -> (f64, f64) {
        (
            (self.total.eps() - self.spent_eps).max(0.0),
            (self.total.delta() - self.spent_delta).max(0.0),
        )
    }

    /// Records a charge if it fits within the remaining budget.
    ///
    /// # Errors
    /// Returns [`PrivacyError::BudgetExceeded`] (recording nothing) if the
    /// charge would overdraw either component.
    pub fn charge(&mut self, label: impl Into<String>, cost: Budget) -> Result<(), PrivacyError> {
        const TOL: f64 = 1e-9;
        let (rem_eps, rem_delta) = self.remaining();
        if cost.eps() > rem_eps * (1.0 + TOL) + TOL || cost.delta() > rem_delta * (1.0 + TOL) + TOL
        {
            return Err(PrivacyError::BudgetExceeded {
                requested: cost,
                remaining: Budget::approx(rem_eps.max(f64::MIN_POSITIVE), rem_delta)
                    .unwrap_or(self.total),
            });
        }
        self.spent_eps += cost.eps();
        self.spent_delta += cost.delta();
        self.charges.push(Charge { label: label.into(), cost });
        Ok(())
    }

    /// All recorded charges in order.
    pub fn charges(&self) -> &[Charge] {
        &self.charges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pure(eps: f64) -> Budget {
        Budget::pure(eps).unwrap()
    }

    #[test]
    fn charges_accumulate() {
        let mut acc = Accountant::new(pure(1.0));
        acc.charge("a", pure(0.4)).unwrap();
        acc.charge("b", pure(0.4)).unwrap();
        assert_eq!(acc.charges().len(), 2);
        let (rem_eps, _) = acc.remaining();
        assert!((rem_eps - 0.2).abs() < 1e-12);
    }

    #[test]
    fn overdraw_is_rejected_and_not_recorded() {
        let mut acc = Accountant::new(pure(0.5));
        acc.charge("a", pure(0.4)).unwrap();
        let err = acc.charge("b", pure(0.2)).unwrap_err();
        assert!(matches!(err, PrivacyError::BudgetExceeded { .. }));
        assert_eq!(acc.charges().len(), 1);
        let (rem, _) = acc.remaining();
        assert!((rem - 0.1).abs() < 1e-12);
    }

    #[test]
    fn delta_is_tracked_independently() {
        let total = Budget::approx(10.0, 1e-6).unwrap();
        let mut acc = Accountant::new(total);
        acc.charge("a", Budget::approx(1.0, 0.9e-6).unwrap()).unwrap();
        // Plenty of ε left, but δ nearly gone.
        let err = acc.charge("b", Budget::approx(1.0, 0.5e-6).unwrap());
        assert!(err.is_err());
    }

    #[test]
    fn ten_even_splits_exactly_fit() {
        // The MNIST one-vs-all pattern: budget ε split across 10 digits.
        let total = Budget::approx(0.4, 1e-6).unwrap();
        let part = total.split_even(10);
        let mut acc = Accountant::new(total);
        for digit in 0..10 {
            acc.charge(format!("digit-{digit}"), part).unwrap();
        }
        let (rem_eps, rem_delta) = acc.remaining();
        assert!(rem_eps < 1e-9, "leftover eps {rem_eps}");
        assert!(rem_delta < 1e-15, "leftover delta {rem_delta}");
        assert!(acc.charge("extra", part).is_err());
    }

    #[test]
    fn spent_reports_totals() {
        let mut acc = Accountant::new(pure(2.0));
        acc.charge("a", pure(0.75)).unwrap();
        assert!((acc.spent().eps() - 0.75).abs() < 1e-12);
        assert_eq!(acc.total().eps(), 2.0);
    }
}

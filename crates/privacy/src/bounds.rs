//! Closed-form tail bounds on noise norms.
//!
//! Theorem 2: for the ε-DP Laplace-ball noise κ with sensitivity Δ₂, with
//! probability at least `1 − γ`, `‖κ‖ ≤ d·ln(d/γ)·Δ₂/ε`. This is the bound
//! that motivates random projection for high-dimensional models, and our
//! tests check the empirical quantiles against it.

/// Theorem 2 high-probability bound on the Laplace-ball noise norm.
///
/// # Panics
/// Panics unless `dim ≥ 1` and `gamma ∈ (0, 1)`, `sensitivity ≥ 0`,
/// `eps > 0`.
pub fn laplace_ball_norm_bound(dim: usize, gamma: f64, sensitivity: f64, eps: f64) -> f64 {
    assert!(dim >= 1, "dimension must be >= 1");
    assert!(gamma > 0.0 && gamma < 1.0, "gamma must be in (0,1)");
    assert!(sensitivity >= 0.0, "sensitivity must be >= 0");
    assert!(eps > 0.0, "eps must be > 0");
    let d = dim as f64;
    d * (d / gamma).ln() * sensitivity / eps
}

/// Expected excess empirical risk added by ε-DP output perturbation for an
/// L-Lipschitz loss: `L·E‖κ‖ = L·d·Δ₂/ε` (Lemma 11 plus the Gamma mean).
pub fn expected_risk_from_noise(lipschitz: f64, dim: usize, sensitivity: f64, eps: f64) -> f64 {
    assert!(lipschitz >= 0.0 && sensitivity >= 0.0 && eps > 0.0);
    lipschitz * dim as f64 * sensitivity / eps
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolton_linalg::vector;
    use bolton_rng::seeded;

    #[test]
    fn bound_formula() {
        // d=10, γ=0.1 ⇒ bound = 10·ln(100)·Δ/ε.
        let b = laplace_ball_norm_bound(10, 0.1, 2.0, 0.5);
        let expected = 10.0 * (100.0f64).ln() * 2.0 / 0.5;
        assert!((b - expected).abs() < 1e-9);
    }

    /// Empirical validation of Theorem 2: the (1−γ) quantile of sampled
    /// noise norms stays below the bound.
    #[test]
    fn empirical_norms_respect_bound() {
        let mut rng = seeded(51);
        let dim = 8;
        let sensitivity = 1.0;
        let eps = 1.0;
        let gamma = 0.05;
        let mech = crate::mechanisms::LaplaceBallMechanism::new(dim, sensitivity, eps).unwrap();
        let bound = laplace_ball_norm_bound(dim, gamma, sensitivity, eps);
        let n = 20_000;
        let violations =
            (0..n).filter(|_| vector::norm(&mech.sample_noise(&mut rng)) > bound).count();
        let rate = violations as f64 / n as f64;
        assert!(rate <= gamma, "violation rate {rate} > gamma {gamma}");
    }

    #[test]
    fn risk_bound_scales_linearly_in_dim() {
        let a = expected_risk_from_noise(1.0, 50, 0.1, 1.0);
        let b = expected_risk_from_noise(1.0, 100, 0.1, 1.0);
        assert!((b / a - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "gamma must be in")]
    fn rejects_bad_gamma() {
        laplace_ball_norm_bound(5, 1.5, 1.0, 1.0);
    }
}

//! Advanced composition arithmetic for BST14 (paper Algorithms 4 & 5).
//!
//! BST14 runs `T = km` noisy iterations, each (ε₁, δ₁)-DP, and needs the
//! whole run to be (ε, δ)-DP with `δ₁ = δ/T`. By the advanced composition
//! theorem the total ε is
//!
//! ```text
//! ε_total(ε₁) = T·ε₁·(e^{ε₁} − 1) + ε₁·√(2T·ln(1/δ₁))
//! ```
//!
//! The algorithms need the inverse: given the target ε, find ε₁. The map is
//! continuous and strictly increasing in ε₁, so bisection converges.

use crate::budget::PrivacyError;

/// Total ε after `t` iterations each `eps1`-DP, with per-iteration failure
/// probability `delta1` (line 5 of paper Algorithms 4/5).
///
/// # Panics
/// Panics on non-positive `t`, `eps1`, or `delta1` outside (0, 1).
pub fn advanced_composition_total(eps1: f64, t: u64, delta1: f64) -> f64 {
    assert!(t > 0, "iteration count must be positive");
    assert!(eps1 >= 0.0 && eps1.is_finite(), "eps1 must be finite and >= 0");
    assert!(delta1 > 0.0 && delta1 < 1.0, "delta1 must be in (0,1)");
    let t = t as f64;
    t * eps1 * (eps1.exp() - 1.0) + eps1 * (2.0 * t * (1.0 / delta1).ln()).sqrt()
}

/// Solves `advanced_composition_total(ε₁, t, δ₁) = eps` for ε₁ by bisection.
///
/// # Errors
/// Returns [`PrivacyError::InvalidBudget`] for non-positive `eps`, `t == 0`,
/// or `delta1` outside (0, 1).
pub fn solve_per_iteration_eps(eps: f64, t: u64, delta1: f64) -> Result<f64, PrivacyError> {
    if !eps.is_finite() || eps <= 0.0 {
        return Err(PrivacyError::InvalidBudget(format!("target eps must be > 0, got {eps}")));
    }
    if t == 0 {
        return Err(PrivacyError::InvalidBudget("iteration count must be positive".into()));
    }
    if !(delta1 > 0.0 && delta1 < 1.0) {
        return Err(PrivacyError::InvalidBudget(format!("delta1 must be in (0,1), got {delta1}")));
    }
    // Bracket the root: total(0) = 0 < eps; grow hi until total(hi) >= eps.
    let mut hi = 1.0f64;
    while advanced_composition_total(hi, t, delta1) < eps {
        hi *= 2.0;
        if hi > 1e6 {
            return Err(PrivacyError::InvalidBudget(
                "advanced composition solve failed to bracket".into(),
            ));
        }
    }
    let mut lo = 0.0f64;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if advanced_composition_total(mid, t, delta1) < eps {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_monotone_in_eps1() {
        let mut prev = 0.0;
        for i in 1..100 {
            let eps1 = i as f64 * 0.01;
            let total = advanced_composition_total(eps1, 1000, 1e-8);
            assert!(total > prev, "not monotone at eps1={eps1}");
            prev = total;
        }
    }

    #[test]
    fn solver_residual_is_tiny() {
        for (eps, t, d1) in [(0.1, 60_000u64, 1e-12), (1.0, 600_000, 1e-13), (4.0, 10_000, 1e-10)] {
            let eps1 = solve_per_iteration_eps(eps, t, d1).unwrap();
            let back = advanced_composition_total(eps1, t, d1);
            assert!((back - eps).abs() < 1e-9 * eps, "eps {eps}: solved {eps1}, recomposed {back}");
        }
    }

    #[test]
    fn per_iteration_eps_shrinks_with_more_iterations() {
        let a = solve_per_iteration_eps(1.0, 1_000, 1e-9).unwrap();
        let b = solve_per_iteration_eps(1.0, 100_000, 1e-9).unwrap();
        assert!(b < a, "{b} !< {a}");
    }

    #[test]
    fn per_iteration_eps_scales_roughly_as_inverse_sqrt_t() {
        // For small ε₁ the linear term is negligible and
        // ε ≈ ε₁·√(2T ln(1/δ₁)), so quadrupling T should halve ε₁.
        let a = solve_per_iteration_eps(0.1, 10_000, 1e-10).unwrap();
        let b = solve_per_iteration_eps(0.1, 40_000, 1e-10).unwrap();
        let ratio = a / b;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn solver_rejects_bad_inputs() {
        assert!(solve_per_iteration_eps(0.0, 10, 1e-6).is_err());
        assert!(solve_per_iteration_eps(1.0, 0, 1e-6).is_err());
        assert!(solve_per_iteration_eps(1.0, 10, 0.0).is_err());
        assert!(solve_per_iteration_eps(1.0, 10, 1.0).is_err());
    }

    #[test]
    #[should_panic(expected = "delta1 must be in")]
    fn total_rejects_bad_delta() {
        advanced_composition_total(0.1, 10, 2.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The bisection solve inverts the total for arbitrary valid inputs.
        #[test]
        fn solve_inverts_total(
            eps in 1e-3f64..16.0,
            t in 1u64..5_000_000,
            log_delta in -16.0f64..-2.0,
        ) {
            let delta1 = 10f64.powf(log_delta);
            let eps1 = solve_per_iteration_eps(eps, t, delta1).unwrap();
            let back = advanced_composition_total(eps1, t, delta1);
            prop_assert!((back - eps).abs() < 1e-6 * eps, "eps {eps} → {eps1} → {back}");
        }

        /// More iterations never allow a larger per-iteration budget.
        #[test]
        fn eps1_monotone_in_iterations(eps in 0.01f64..4.0, t in 10u64..100_000) {
            let d1 = 1e-9;
            let a = solve_per_iteration_eps(eps, t, d1).unwrap();
            let b = solve_per_iteration_eps(eps, t * 2, d1).unwrap();
            prop_assert!(b <= a * (1.0 + 1e-9));
        }
    }
}

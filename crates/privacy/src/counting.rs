//! Discrete mechanisms for counting queries: the two-sided geometric
//! mechanism (Ghosh, Roughgarden & Sundararajan 2009), the discrete
//! analogue of Laplace noise — exact ε-DP for integer-valued queries of
//! sensitivity 1 such as `COUNT(*)` and histograms.
//!
//! These power the engine-level `SELECT PRIVATE COUNT(*)…` surface: the
//! SGD paper privatizes the *model* query; a DP analytics system also needs
//! its scalar aggregates privatized, and this is the standard tool.

use crate::budget::{Budget, PrivacyError};
use bolton_rng::Rng;

/// The two-sided geometric mechanism for sensitivity-`s` integer queries.
///
/// Adds `Z = G₁ − G₂` with `G_i ~ Geometric(1 − α)`, `α = e^{−ε/s}`:
/// `P(Z = z) ∝ α^{|z|}`, giving exact ε-DP.
#[derive(Clone, Copy, Debug)]
pub struct GeometricMechanism {
    alpha: f64,
    eps: f64,
    sensitivity: u64,
}

impl GeometricMechanism {
    /// Calibrates for an integer query with the given sensitivity.
    ///
    /// # Errors
    /// Rejects non-positive ε or zero sensitivity.
    pub fn new(eps: f64, sensitivity: u64) -> Result<Self, PrivacyError> {
        Budget::pure(eps)?;
        if sensitivity == 0 {
            return Err(PrivacyError::InvalidMechanism("sensitivity must be >= 1".into()));
        }
        Ok(Self { alpha: (-eps / sensitivity as f64).exp(), eps, sensitivity })
    }

    /// The ε this mechanism provides.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The calibrated sensitivity.
    pub fn sensitivity(&self) -> u64 {
        self.sensitivity
    }

    /// Noise standard deviation `√(2α)/(1−α)`.
    pub fn std_dev(&self) -> f64 {
        (2.0 * self.alpha).sqrt() / (1.0 - self.alpha)
    }

    fn sample_geometric<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        // Inversion: G = ⌊ln(U)/ln(α)⌋ ~ Geometric(1−α) on {0, 1, 2, …}.
        let u = rng.next_f64_open();
        let g = (u.ln() / self.alpha.ln()).floor();
        // Cap to avoid i64 overflow at astronomically small U.
        g.min(i64::MAX as f64 / 4.0) as i64
    }

    /// Draws one noise value `Z = G₁ − G₂`.
    pub fn sample_noise<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        self.sample_geometric(rng) - self.sample_geometric(rng)
    }

    /// Releases a privatized count, clamped at zero (counts are
    /// non-negative; post-processing preserves DP).
    pub fn privatize_count<R: Rng + ?Sized>(&self, rng: &mut R, count: u64) -> u64 {
        let noisy = count as i64 + self.sample_noise(rng);
        noisy.max(0) as u64
    }

    /// Releases a privatized histogram. Each individual affects one bin by
    /// one, so all bins share this mechanism's ε (parallel composition).
    pub fn privatize_histogram<R: Rng + ?Sized>(&self, rng: &mut R, counts: &[u64]) -> Vec<u64> {
        counts.iter().map(|&c| self.privatize_count(rng, c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolton_linalg::stats::OnlineStats;
    use bolton_rng::seeded;

    #[test]
    fn noise_is_centered_with_expected_spread() {
        let mech = GeometricMechanism::new(0.5, 1).unwrap();
        let mut rng = seeded(801);
        let mut stats = OnlineStats::new();
        for _ in 0..200_000 {
            stats.push(mech.sample_noise(&mut rng) as f64);
        }
        assert!(stats.mean().abs() < 0.02, "mean {}", stats.mean());
        let sd = stats.std_dev();
        assert!((sd - mech.std_dev()).abs() < 0.05 * mech.std_dev(), "sd {sd}");
    }

    /// The exact DP property on the noise pmf: P(Z = z)/P(Z = z+s) ≤ e^ε.
    #[test]
    fn pmf_ratio_bounded_empirically() {
        let eps = 1.0;
        let mech = GeometricMechanism::new(eps, 1).unwrap();
        let mut rng = seeded(802);
        let n = 400_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            *counts.entry(mech.sample_noise(&mut rng)).or_insert(0u32) += 1;
        }
        for z in -3i64..=3 {
            let p = counts.get(&z).copied().unwrap_or(0) as f64;
            let q = counts.get(&(z + 1)).copied().unwrap_or(0) as f64;
            if p > 1000.0 && q > 1000.0 {
                let ratio = (p / q).max(q / p);
                assert!(
                    ratio <= eps.exp() * 1.1,
                    "pmf ratio at z={z}: {ratio} (limit {})",
                    eps.exp()
                );
            }
        }
    }

    #[test]
    fn counts_never_go_negative() {
        let mech = GeometricMechanism::new(0.1, 1).unwrap();
        let mut rng = seeded(803);
        for _ in 0..2000 {
            let released = mech.privatize_count(&mut rng, 1);
            assert!(released < u64::MAX / 2);
        }
    }

    #[test]
    fn large_eps_keeps_counts_nearly_exact() {
        let mech = GeometricMechanism::new(20.0, 1).unwrap();
        let mut rng = seeded(804);
        for _ in 0..1000 {
            assert_eq!(mech.privatize_count(&mut rng, 5000), 5000);
        }
    }

    #[test]
    fn histogram_noises_each_bin() {
        let mech = GeometricMechanism::new(0.5, 1).unwrap();
        let mut rng = seeded(805);
        let truth = vec![100u64, 0, 2500, 7];
        let released = mech.privatize_histogram(&mut rng, &truth);
        assert_eq!(released.len(), 4);
        // At ε = 0.5 the noise sd is ≈ 3.5: bins stay in the neighborhood.
        for (r, t) in released.iter().zip(truth.iter()) {
            assert!((*r as i64 - *t as i64).unsigned_abs() < 40, "{r} vs {t}");
        }
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(GeometricMechanism::new(0.0, 1).is_err());
        assert!(GeometricMechanism::new(1.0, 0).is_err());
    }

    #[test]
    fn higher_sensitivity_means_more_noise() {
        let a = GeometricMechanism::new(1.0, 1).unwrap();
        let b = GeometricMechanism::new(1.0, 5).unwrap();
        assert!(b.std_dev() > a.std_dev() * 3.0);
    }
}

//! Privacy budgets: ε-DP and (ε, δ)-DP (Definition 5).

use std::fmt;

/// Errors produced by budget validation and accounting.
#[derive(Clone, Debug, PartialEq)]
pub enum PrivacyError {
    /// A budget parameter was non-finite, non-positive ε, or δ outside [0, 1).
    InvalidBudget(String),
    /// An [`crate::Accountant`] charge would exceed the granted budget.
    BudgetExceeded {
        /// What the caller tried to charge.
        requested: Budget,
        /// What was still available.
        remaining: Budget,
    },
    /// A mechanism parameter (sensitivity, dimension) was invalid.
    InvalidMechanism(String),
}

impl fmt::Display for PrivacyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrivacyError::InvalidBudget(msg) => write!(f, "invalid privacy budget: {msg}"),
            PrivacyError::BudgetExceeded { requested, remaining } => {
                write!(f, "privacy budget exceeded: requested {requested}, remaining {remaining}")
            }
            PrivacyError::InvalidMechanism(msg) => write!(f, "invalid mechanism: {msg}"),
        }
    }
}

impl std::error::Error for PrivacyError {}

/// An (ε, δ) privacy budget; `δ = 0` is pure ε-differential privacy.
///
/// ```
/// use bolton_privacy::Budget;
/// let total = Budget::approx(1.0, 1e-6).unwrap();
/// let per_class = total.split_even(10); // one-vs-all MNIST
/// assert!((per_class.eps() - 0.1).abs() < 1e-12);
/// assert!(per_class.fits_within(&total));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Budget {
    eps: f64,
    delta: f64,
}

impl Budget {
    /// A pure ε-DP budget.
    ///
    /// # Errors
    /// Returns [`PrivacyError::InvalidBudget`] unless `eps` is finite and
    /// positive.
    pub fn pure(eps: f64) -> Result<Self, PrivacyError> {
        Self::approx(eps, 0.0)
    }

    /// An (ε, δ)-DP budget.
    ///
    /// # Errors
    /// Returns [`PrivacyError::InvalidBudget`] unless `eps` is finite and
    /// positive and `δ ∈ [0, 1)`.
    pub fn approx(eps: f64, delta: f64) -> Result<Self, PrivacyError> {
        if !eps.is_finite() || eps <= 0.0 {
            return Err(PrivacyError::InvalidBudget(format!(
                "epsilon must be finite and > 0, got {eps}"
            )));
        }
        if !delta.is_finite() || !(0.0..1.0).contains(&delta) {
            return Err(PrivacyError::InvalidBudget(format!(
                "delta must be in [0, 1), got {delta}"
            )));
        }
        Ok(Self { eps, delta })
    }

    /// The ε component.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The δ component (0 for pure DP).
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Whether this is pure ε-DP.
    pub fn is_pure(&self) -> bool {
        self.delta == 0.0
    }

    /// Splits the budget evenly across `parts` sub-computations using basic
    /// composition — the paper's treatment of one-vs-all MNIST ("we used the
    /// simplest composition theorem and divide the privacy budget evenly").
    ///
    /// # Panics
    /// Panics if `parts == 0`.
    pub fn split_even(&self, parts: usize) -> Budget {
        assert!(parts > 0, "cannot split a budget into zero parts");
        let parts = parts as f64;
        Budget { eps: self.eps / parts, delta: self.delta / parts }
    }

    /// Basic sequential composition: budgets add component-wise.
    pub fn compose(&self, other: &Budget) -> Budget {
        Budget {
            eps: self.eps + other.eps,
            delta: (self.delta + other.delta).min(1.0 - f64::EPSILON),
        }
    }

    /// Whether `self` fits within `available` (component-wise ≤, with a tiny
    /// tolerance for accumulated floating-point error in repeated splits).
    pub fn fits_within(&self, available: &Budget) -> bool {
        const TOL: f64 = 1e-12;
        self.eps <= available.eps * (1.0 + TOL) + TOL
            && self.delta <= available.delta * (1.0 + TOL) + TOL
    }

    /// Group privacy: the guarantee this budget implies for groups of `k`
    /// correlated individuals (e.g. one household contributing k rows).
    /// Pure ε-DP degrades to `kε`-DP; (ε, δ)-DP degrades to
    /// `(kε, k·e^{(k−1)ε}·δ)`-DP (Dwork & Roth, Thm 2.2 generalized).
    ///
    /// Returns `None` when the group δ reaches 1 (no meaningful guarantee).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn group_privacy(&self, k: usize) -> Option<Budget> {
        assert!(k > 0, "group size must be positive");
        let k_f = k as f64;
        let eps = self.eps * k_f;
        let delta = self.delta * k_f * ((k_f - 1.0) * self.eps).exp();
        Budget::approx(eps, delta).ok()
    }

    /// Component-wise saturating subtraction (used for "remaining budget").
    pub fn saturating_sub(&self, other: &Budget) -> Budget {
        Budget { eps: (self.eps - other.eps).max(0.0), delta: (self.delta - other.delta).max(0.0) }
    }
}

impl fmt::Display for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pure() {
            write!(f, "ε={}", self.eps)
        } else {
            write!(f, "(ε={}, δ={:.3e})", self.eps, self.delta)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_budget_roundtrip() {
        let b = Budget::pure(0.5).unwrap();
        assert_eq!(b.eps(), 0.5);
        assert_eq!(b.delta(), 0.0);
        assert!(b.is_pure());
    }

    #[test]
    fn approx_budget_roundtrip() {
        let b = Budget::approx(1.0, 1e-6).unwrap();
        assert!(!b.is_pure());
        assert_eq!(b.delta(), 1e-6);
    }

    #[test]
    fn rejects_bad_eps() {
        assert!(Budget::pure(0.0).is_err());
        assert!(Budget::pure(-1.0).is_err());
        assert!(Budget::pure(f64::NAN).is_err());
        assert!(Budget::pure(f64::INFINITY).is_err());
    }

    #[test]
    fn rejects_bad_delta() {
        assert!(Budget::approx(1.0, -0.1).is_err());
        assert!(Budget::approx(1.0, 1.0).is_err());
        assert!(Budget::approx(1.0, f64::NAN).is_err());
    }

    #[test]
    fn split_even_divides_both_components() {
        let b = Budget::approx(1.0, 1e-4).unwrap();
        let part = b.split_even(10);
        assert!((part.eps() - 0.1).abs() < 1e-15);
        assert!((part.delta() - 1e-5).abs() < 1e-18);
    }

    #[test]
    fn ten_splits_compose_back() {
        let b = Budget::approx(2.0, 1e-4).unwrap();
        let part = b.split_even(10);
        let mut total = part;
        for _ in 0..9 {
            total = total.compose(&part);
        }
        assert!(total.fits_within(&b));
        assert!((total.eps() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fits_within_is_componentwise() {
        let small = Budget::approx(0.5, 1e-6).unwrap();
        let big = Budget::approx(1.0, 1e-5).unwrap();
        assert!(small.fits_within(&big));
        assert!(!big.fits_within(&small));
        // Larger delta alone must fail.
        let sneaky = Budget::approx(0.5, 1e-4).unwrap();
        assert!(!sneaky.fits_within(&big));
    }

    #[test]
    fn saturating_sub_never_negative() {
        let a = Budget::pure(0.5).unwrap();
        let b = Budget::pure(0.8).unwrap();
        let r = a.saturating_sub(&b);
        assert_eq!(r.eps(), 0.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Budget::pure(0.1).unwrap()), "ε=0.1");
        assert!(format!("{}", Budget::approx(0.1, 1e-6).unwrap()).contains("δ="));
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn split_zero_panics() {
        Budget::pure(1.0).unwrap().split_even(0);
    }

    #[test]
    fn group_privacy_scales_pure_eps_linearly() {
        let b = Budget::pure(0.1).unwrap();
        let g = b.group_privacy(5).unwrap();
        assert!((g.eps() - 0.5).abs() < 1e-12);
        assert!(g.is_pure());
        assert_eq!(b.group_privacy(1).unwrap(), b);
    }

    #[test]
    fn group_privacy_inflates_delta_exponentially() {
        let b = Budget::approx(0.5, 1e-9).unwrap();
        let g = b.group_privacy(4).unwrap();
        assert!((g.eps() - 2.0).abs() < 1e-12);
        // δ' = 4·e^{1.5}·1e-9.
        let expect = 4.0 * (1.5f64).exp() * 1e-9;
        assert!((g.delta() - expect).abs() < 1e-18);
    }

    #[test]
    fn group_privacy_collapses_for_huge_groups() {
        let b = Budget::approx(1.0, 1e-3).unwrap();
        assert!(b.group_privacy(50).is_none(), "delta should exceed 1");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Splitting into n parts and composing n times returns the original
        /// budget (within float tolerance), and each part fits the whole.
        #[test]
        fn split_compose_roundtrip(
            eps in 1e-4f64..100.0,
            delta in 0.0f64..0.01,
            parts in 1usize..64,
        ) {
            let total = Budget::approx(eps, delta).unwrap();
            let part = total.split_even(parts);
            prop_assert!(part.fits_within(&total));
            let mut acc = part;
            for _ in 1..parts {
                acc = acc.compose(&part);
            }
            prop_assert!((acc.eps() - eps).abs() < 1e-9 * eps);
            prop_assert!((acc.delta() - delta).abs() < 1e-9 * delta.max(1e-12));
            prop_assert!(acc.fits_within(&total));
        }

        /// fits_within is reflexive and antisymmetric up to equality.
        #[test]
        fn fits_within_partial_order(
            e1 in 1e-3f64..10.0, d1 in 0.0f64..0.01,
            e2 in 1e-3f64..10.0, d2 in 0.0f64..0.01,
        ) {
            let a = Budget::approx(e1, d1).unwrap();
            let b = Budget::approx(e2, d2).unwrap();
            prop_assert!(a.fits_within(&a));
            if a.fits_within(&b) && b.fits_within(&a) {
                prop_assert!((e1 - e2).abs() < 1e-6 * e1.max(e2) + 1e-9);
            }
        }
    }
}

//! Differential-privacy primitives for the bolt-on DP-SGD workspace.
//!
//! This crate implements the mechanism layer of the paper:
//!
//! * [`budget`] — ε and (ε, δ) privacy budgets, validation, even splits for
//!   one-vs-all multiclass (Section 4.3), basic sequential composition.
//! * [`mechanisms`] — the two output-perturbation mechanisms: the
//!   "Laplace-ball" high-dimensional Laplace mechanism of Theorem 1
//!   (direction uniform on the unit sphere, magnitude `Γ(d, Δ₂/ε)`;
//!   Appendix E) and the Gaussian mechanism of Theorem 3.
//! * [`composition`] — the advanced-composition arithmetic BST14 relies on,
//!   including the bisection solver for the per-iteration ε₁ in paper
//!   Algorithms 4 and 5.
//! * [`accountant`] — a sequential-composition ledger used by the tuning and
//!   multiclass drivers to guarantee the total spend never exceeds the
//!   granted budget.
//! * [`bounds`] — closed-form noise-norm bounds (Theorem 2) used by tests
//!   and by the dimension-ablation bench.

pub mod accountant;
pub mod bounds;
pub mod budget;
pub mod composition;
pub mod counting;
pub mod mechanisms;

pub use accountant::Accountant;
pub use budget::{Budget, PrivacyError};
pub use counting::GeometricMechanism;
pub use mechanisms::{
    ExponentialMechanism, GaussianMechanism, LaplaceBallMechanism, NoiseMechanism,
};

//! Output-perturbation noise mechanisms.
//!
//! * [`LaplaceBallMechanism`] — Theorem 1: publishing `f(D) + κ` with
//!   density `p(κ) ∝ exp(−ε‖κ‖/Δ₂)` is ε-DP. Sampling follows Appendix E:
//!   draw a uniform direction on the unit sphere and an independent
//!   magnitude from `Γ(d, Δ₂/ε)`.
//! * [`GaussianMechanism`] — Theorem 3: per-coordinate `N(0, σ²)` noise with
//!   `σ = √(2 ln(1.25/δ))·Δ₂/ε` is (ε, δ)-DP for `ε ∈ (0, 1)`.
//! * [`NoiseMechanism`] — an enum over the two (plus `Noiseless`) so the
//!   training drivers can treat noise injection uniformly.

use crate::budget::{Budget, PrivacyError};
use bolton_linalg::vector;
use bolton_rng::dist::{standard_normal, Gamma};
use bolton_rng::Rng;

pub use bolton_linalg::random::sample_unit_sphere;

/// The ε-DP high-dimensional Laplace mechanism of Theorem 1.
#[derive(Clone, Copy, Debug)]
pub struct LaplaceBallMechanism {
    dim: usize,
    sensitivity: f64,
    eps: f64,
}

impl LaplaceBallMechanism {
    /// Calibrates the mechanism for a query with the given L2-sensitivity.
    ///
    /// # Errors
    /// Returns [`PrivacyError::InvalidMechanism`] if `dim == 0` or
    /// `sensitivity` is not finite/non-negative, and
    /// [`PrivacyError::InvalidBudget`] for an invalid ε.
    pub fn new(dim: usize, sensitivity: f64, eps: f64) -> Result<Self, PrivacyError> {
        if dim == 0 {
            return Err(PrivacyError::InvalidMechanism("dimension must be positive".into()));
        }
        if !sensitivity.is_finite() || sensitivity < 0.0 {
            return Err(PrivacyError::InvalidMechanism(format!(
                "sensitivity must be finite and >= 0, got {sensitivity}"
            )));
        }
        Budget::pure(eps)?;
        Ok(Self { dim, sensitivity, eps })
    }

    /// The Gamma scale `Δ₂/ε` of the noise magnitude.
    pub fn scale(&self) -> f64 {
        self.sensitivity / self.eps
    }

    /// The L2-sensitivity this mechanism was calibrated for.
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// Expected noise norm `E‖κ‖ = d·Δ₂/ε` (mean of `Γ(d, Δ₂/ε)`).
    pub fn expected_norm(&self) -> f64 {
        self.dim as f64 * self.scale()
    }

    /// Draws one noise vector (Appendix E sampler).
    pub fn sample_noise<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        if self.sensitivity == 0.0 {
            return vec![0.0; self.dim];
        }
        let mut direction = sample_unit_sphere(rng, self.dim);
        let magnitude = Gamma::new(self.dim as f64, self.scale()).sample(rng);
        vector::scale(magnitude, &mut direction);
        direction
    }

    /// Adds one noise draw to `w` in place.
    ///
    /// # Panics
    /// Panics if `w.len() != dim`.
    pub fn perturb<R: Rng + ?Sized>(&self, rng: &mut R, w: &mut [f64]) {
        assert_eq!(w.len(), self.dim, "model dimension mismatch");
        let noise = self.sample_noise(rng);
        vector::axpy(1.0, &noise, w);
    }
}

/// The (ε, δ)-DP Gaussian mechanism of Theorem 3.
#[derive(Clone, Copy, Debug)]
pub struct GaussianMechanism {
    sensitivity: f64,
    sigma: f64,
    eps: f64,
    delta: f64,
}

impl GaussianMechanism {
    /// Calibrates `σ = √(2 ln(1.25/δ))·Δ₂/ε`.
    ///
    /// Theorem 3 is stated for `ε ∈ (0, 1)`; the paper's experiments (and
    /// ours) also run it at larger ε, where the same σ is conservative under
    /// the standard extension, so larger ε is accepted here.
    ///
    /// # Errors
    /// Returns an error for invalid sensitivity, non-positive ε, or δ
    /// outside (0, 1).
    pub fn new(sensitivity: f64, eps: f64, delta: f64) -> Result<Self, PrivacyError> {
        if !sensitivity.is_finite() || sensitivity < 0.0 {
            return Err(PrivacyError::InvalidMechanism(format!(
                "sensitivity must be finite and >= 0, got {sensitivity}"
            )));
        }
        if delta <= 0.0 {
            return Err(PrivacyError::InvalidBudget(
                "Gaussian mechanism requires delta > 0".into(),
            ));
        }
        Budget::approx(eps, delta)?;
        let c = (2.0 * (1.25 / delta).ln()).sqrt();
        Ok(Self { sensitivity, sigma: c * sensitivity / eps, eps, delta })
    }

    /// The per-coordinate noise standard deviation σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The L2-sensitivity this mechanism was calibrated for.
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// Expected noise norm, `E‖κ‖ ≈ σ·√d` (exact up to the χ_d mean factor,
    /// which tends to √d for large d). Exposed for the dimension ablation.
    pub fn expected_norm(&self, dim: usize) -> f64 {
        self.sigma * (dim as f64).sqrt()
    }

    /// The (ε, δ) this mechanism was calibrated for.
    pub fn budget(&self) -> Budget {
        Budget::approx(self.eps, self.delta).expect("validated at construction")
    }

    /// Draws one noise vector of length `dim`.
    pub fn sample_noise<R: Rng + ?Sized>(&self, rng: &mut R, dim: usize) -> Vec<f64> {
        (0..dim).map(|_| self.sigma * standard_normal(rng)).collect()
    }

    /// Adds one noise draw to `w` in place.
    pub fn perturb<R: Rng + ?Sized>(&self, rng: &mut R, w: &mut [f64]) {
        for v in w.iter_mut() {
            *v += self.sigma * standard_normal(rng);
        }
    }
}

/// A unified handle over the supported output-noise mechanisms.
#[derive(Clone, Copy, Debug)]
pub enum NoiseMechanism {
    /// No noise: the noiseless baseline.
    Noiseless,
    /// ε-DP Laplace-ball noise (Theorem 1).
    LaplaceBall(LaplaceBallMechanism),
    /// (ε, δ)-DP Gaussian noise (Theorem 3).
    Gaussian(GaussianMechanism),
}

impl NoiseMechanism {
    /// Builds the mechanism matching `budget` for a `dim`-dimensional query
    /// of the given sensitivity: pure budgets get the Laplace ball, approx
    /// budgets the Gaussian.
    pub fn for_budget(budget: &Budget, dim: usize, sensitivity: f64) -> Result<Self, PrivacyError> {
        if budget.is_pure() {
            Ok(NoiseMechanism::LaplaceBall(LaplaceBallMechanism::new(
                dim,
                sensitivity,
                budget.eps(),
            )?))
        } else {
            Ok(NoiseMechanism::Gaussian(GaussianMechanism::new(
                sensitivity,
                budget.eps(),
                budget.delta(),
            )?))
        }
    }

    /// Adds one noise draw to `w` in place (no-op for `Noiseless`).
    ///
    /// Both noisy mechanisms perturb *every* coordinate, so the release of
    /// a sparsely trained model (most coordinates exactly zero) is dense:
    /// the nonzero support of the unperturbed model — itself a function of
    /// which examples were seen — never leaks through the released vector.
    pub fn perturb<R: Rng + ?Sized>(&self, rng: &mut R, w: &mut [f64]) {
        match self {
            NoiseMechanism::Noiseless => {}
            NoiseMechanism::LaplaceBall(m) => m.perturb(rng, w),
            NoiseMechanism::Gaussian(m) => m.perturb(rng, w),
        }
    }

    /// Expected noise norm for a `dim`-dimensional model.
    pub fn expected_norm(&self, dim: usize) -> f64 {
        match self {
            NoiseMechanism::Noiseless => 0.0,
            NoiseMechanism::LaplaceBall(m) => m.expected_norm(),
            NoiseMechanism::Gaussian(m) => m.expected_norm(dim),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolton_linalg::stats::OnlineStats;
    use bolton_rng::seeded;

    #[test]
    fn unit_sphere_samples_are_unit_norm() {
        let mut rng = seeded(41);
        for dim in [1, 2, 5, 50] {
            for _ in 0..100 {
                let v = sample_unit_sphere(&mut rng, dim);
                assert!((vector::norm(&v) - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn unit_sphere_is_directionally_unbiased() {
        let mut rng = seeded(42);
        let dim = 3;
        let mut mean = vec![0.0; dim];
        let n = 50_000;
        for _ in 0..n {
            let v = sample_unit_sphere(&mut rng, dim);
            vector::axpy(1.0 / n as f64, &v, &mut mean);
        }
        assert!(vector::norm(&mean) < 0.02, "mean norm {}", vector::norm(&mean));
    }

    /// The private release of a sparsely trained model must not leak its
    /// sparsity pattern: both mechanisms perturb every coordinate, so a
    /// mostly-zero model densifies on release (a zero noise coordinate has
    /// probability zero; over many trials every coordinate moves).
    #[test]
    fn release_of_sparse_model_is_dense() {
        let mut rng = seeded(48);
        let dim = 64;
        for mech in [
            NoiseMechanism::for_budget(&Budget::pure(1.0).unwrap(), dim, 0.1).unwrap(),
            NoiseMechanism::for_budget(&Budget::approx(1.0, 1e-6).unwrap(), dim, 0.1).unwrap(),
        ] {
            for _ in 0..20 {
                // One nonzero out of 64 — the shape a sparse run produces.
                let mut w = vec![0.0; dim];
                w[17] = 0.25;
                mech.perturb(&mut rng, &mut w);
                let zeros = w.iter().filter(|v| **v == 0.0).count();
                assert_eq!(zeros, 0, "released model leaked zero coordinates");
            }
        }
    }

    #[test]
    fn laplace_ball_norm_follows_gamma() {
        let mut rng = seeded(43);
        let dim = 10;
        let mech = LaplaceBallMechanism::new(dim, 0.5, 2.0).unwrap();
        let mut stats = OnlineStats::new();
        for _ in 0..20_000 {
            stats.push(vector::norm(&mech.sample_noise(&mut rng)));
        }
        // Γ(10, 0.25): mean 2.5, variance 0.625.
        assert!((stats.mean() - mech.expected_norm()).abs() < 0.05 * mech.expected_norm());
        assert!((stats.variance() - 0.625).abs() < 0.05);
    }

    #[test]
    fn laplace_ball_zero_sensitivity_is_noiseless() {
        let mut rng = seeded(44);
        let mech = LaplaceBallMechanism::new(5, 0.0, 1.0).unwrap();
        assert_eq!(mech.sample_noise(&mut rng), vec![0.0; 5]);
    }

    #[test]
    fn laplace_ball_rejects_invalid() {
        assert!(LaplaceBallMechanism::new(0, 1.0, 1.0).is_err());
        assert!(LaplaceBallMechanism::new(5, f64::NAN, 1.0).is_err());
        assert!(LaplaceBallMechanism::new(5, -1.0, 1.0).is_err());
        assert!(LaplaceBallMechanism::new(5, 1.0, 0.0).is_err());
    }

    #[test]
    fn gaussian_sigma_formula() {
        let mech = GaussianMechanism::new(2.0, 0.5, 1e-5).unwrap();
        let expected = (2.0f64 * (1.25f64 / 1e-5).ln()).sqrt() * 2.0 / 0.5;
        assert!((mech.sigma() - expected).abs() < 1e-12);
    }

    #[test]
    fn gaussian_noise_moments() {
        let mut rng = seeded(45);
        let mech = GaussianMechanism::new(1.0, 1.0, 1e-4).unwrap();
        let mut stats = OnlineStats::new();
        for _ in 0..5_000 {
            for v in mech.sample_noise(&mut rng, 4) {
                stats.push(v);
            }
        }
        assert!(stats.mean().abs() < 0.1);
        let sd = stats.std_dev();
        assert!((sd - mech.sigma()).abs() < 0.02 * mech.sigma(), "sd {sd} vs {}", mech.sigma());
    }

    #[test]
    fn gaussian_rejects_zero_delta() {
        assert!(GaussianMechanism::new(1.0, 1.0, 0.0).is_err());
    }

    #[test]
    fn noise_scales_inversely_with_eps() {
        // Core DP intuition: doubling ε halves expected noise.
        let tight = LaplaceBallMechanism::new(10, 1.0, 2.0).unwrap();
        let loose = LaplaceBallMechanism::new(10, 1.0, 1.0).unwrap();
        assert!((loose.expected_norm() / tight.expected_norm() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn for_budget_picks_mechanism_by_delta() {
        let pure = Budget::pure(1.0).unwrap();
        let approx = Budget::approx(1.0, 1e-6).unwrap();
        assert!(matches!(
            NoiseMechanism::for_budget(&pure, 3, 1.0).unwrap(),
            NoiseMechanism::LaplaceBall(_)
        ));
        assert!(matches!(
            NoiseMechanism::for_budget(&approx, 3, 1.0).unwrap(),
            NoiseMechanism::Gaussian(_)
        ));
    }

    #[test]
    fn perturb_changes_model_noiseless_does_not() {
        let mut rng = seeded(46);
        let mut w = vec![1.0, 2.0, 3.0];
        let orig = w.clone();
        NoiseMechanism::Noiseless.perturb(&mut rng, &mut w);
        assert_eq!(w, orig);
        NoiseMechanism::for_budget(&Budget::pure(1.0).unwrap(), 3, 0.5)
            .unwrap()
            .perturb(&mut rng, &mut w);
        assert_ne!(w, orig);
    }

    /// The ε-DP noise norm grows linearly in d while the Gaussian mechanism
    /// grows as √d — the reason the paper random-projects MNIST (Section 2).
    #[test]
    fn dimension_dependence_laplace_vs_gaussian() {
        let lap_small = LaplaceBallMechanism::new(50, 1.0, 1.0).unwrap().expected_norm();
        let lap_big = LaplaceBallMechanism::new(800, 1.0, 1.0).unwrap().expected_norm();
        assert!((lap_big / lap_small - 16.0).abs() < 1e-9);
        let gauss = GaussianMechanism::new(1.0, 1.0, 1e-6).unwrap();
        let ratio = gauss.expected_norm(800) / gauss.expected_norm(50);
        assert!((ratio - 4.0).abs() < 1e-9);
    }
}

/// The exponential mechanism (McSherry & Talwar 2007): selects index `i`
/// with probability `∝ exp(ε·u_i / (2·Δu))` where `u` are utilities with
/// sensitivity `Δu`. This is the selection rule behind the paper's private
/// tuning Algorithm 3 (utilities `u_i = −χ_i`, Δu = 1: one changed example
/// changes each holdout error count by at most one).
///
/// ```
/// use bolton_privacy::ExponentialMechanism;
/// let mech = ExponentialMechanism::new(1.0, 1.0).unwrap();
/// let p = mech.probabilities(&[-3.0, 0.0]); // utilities
/// assert!(p[1] > p[0]);
/// assert!((p[0] + p[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ExponentialMechanism {
    eps: f64,
    utility_sensitivity: f64,
}

impl ExponentialMechanism {
    /// Calibrates the mechanism.
    ///
    /// # Errors
    /// Rejects non-positive ε or utility sensitivity.
    pub fn new(eps: f64, utility_sensitivity: f64) -> Result<Self, PrivacyError> {
        Budget::pure(eps)?;
        if !utility_sensitivity.is_finite() || utility_sensitivity <= 0.0 {
            return Err(PrivacyError::InvalidMechanism(format!(
                "utility sensitivity must be finite and > 0, got {utility_sensitivity}"
            )));
        }
        Ok(Self { eps, utility_sensitivity })
    }

    /// The selection probabilities for the given utilities (stabilized by
    /// shifting by the maximum utility).
    ///
    /// # Panics
    /// Panics on an empty or non-finite utility list.
    pub fn probabilities(&self, utilities: &[f64]) -> Vec<f64> {
        assert!(!utilities.is_empty(), "need at least one candidate");
        assert!(utilities.iter().all(|u| u.is_finite()), "utilities must be finite");
        let scale = self.eps / (2.0 * self.utility_sensitivity);
        let max = utilities.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = utilities.iter().map(|u| ((u - max) * scale).exp()).collect();
        let total: f64 = weights.iter().sum();
        weights.into_iter().map(|w| w / total).collect()
    }

    /// Draws one selection.
    pub fn select<R: Rng + ?Sized>(&self, rng: &mut R, utilities: &[f64]) -> usize {
        let probabilities = self.probabilities(utilities);
        let mut pick = rng.next_f64();
        for (i, p) in probabilities.iter().enumerate() {
            if pick < *p {
                return i;
            }
            pick -= p;
        }
        probabilities.len() - 1
    }
}

#[cfg(test)]
mod exponential_tests {
    use super::*;
    use bolton_rng::seeded;

    #[test]
    fn probabilities_sum_to_one_and_order_by_utility() {
        let mech = ExponentialMechanism::new(1.0, 1.0).unwrap();
        let p = mech.probabilities(&[-10.0, -2.0, -5.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[1] > p[2] && p[2] > p[0]);
    }

    #[test]
    fn large_eps_concentrates_small_eps_flattens() {
        let utilities = [0.0, -4.0];
        let sharp = ExponentialMechanism::new(10.0, 1.0).unwrap().probabilities(&utilities);
        let flat = ExponentialMechanism::new(1e-6, 1.0).unwrap().probabilities(&utilities);
        assert!(sharp[0] > 0.999);
        assert!((flat[0] - 0.5).abs() < 1e-3);
    }

    #[test]
    fn select_frequencies_match_probabilities() {
        let mech = ExponentialMechanism::new(2.0, 1.0).unwrap();
        let utilities = [0.0, -1.0, -3.0];
        let target = mech.probabilities(&utilities);
        let mut rng = seeded(551);
        let n = 60_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[mech.select(&mut rng, &utilities)] += 1;
        }
        for (c, t) in counts.iter().zip(target.iter()) {
            let freq = *c as f64 / n as f64;
            assert!((freq - t).abs() < 0.01, "freq {freq} vs target {t}");
        }
    }

    /// The defining DP property: for neighboring utility vectors (each
    /// entry moved by ≤ Δu), selection odds change by at most e^ε.
    #[test]
    fn neighboring_utilities_bounded_odds_ratio() {
        let eps = 0.7;
        let mech = ExponentialMechanism::new(eps, 1.0).unwrap();
        let u1 = [0.0, -2.0, -4.0, -1.5];
        // Worst-case neighbor: shift each utility by ±1.
        let u2 = [-1.0, -1.0, -3.0, -2.5];
        let p1 = mech.probabilities(&u1);
        let p2 = mech.probabilities(&u2);
        for (a, b) in p1.iter().zip(p2.iter()) {
            let ratio = (a / b).max(b / a);
            assert!(ratio <= eps.exp() * (1.0 + 1e-9), "odds ratio {ratio}");
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(ExponentialMechanism::new(0.0, 1.0).is_err());
        assert!(ExponentialMechanism::new(1.0, 0.0).is_err());
        assert!(ExponentialMechanism::new(1.0, f64::NAN).is_err());
    }
}

//! Algorithms 1 and 2: bolt-on private PSGD via output perturbation.
//!
//! Run standard PSGD as a black box, compute the L2-sensitivity from the
//! closed forms of [`crate::sensitivity`], and add one draw of noise to the
//! final model — Laplace-ball for ε-DP (Theorems 4/5) or Gaussian for
//! (ε, δ)-DP (Theorems 6/7). Because the noise is added *after* training,
//! the optimizer (here [`bolton_sgd::engine`], or a Bismarck table scan — any
//! [`TrainSet`]) is completely untouched.

use crate::sensitivity;
use bolton_privacy::budget::{Budget, PrivacyError};
use bolton_privacy::mechanisms::NoiseMechanism;
use bolton_rng::Rng;
use bolton_sgd::engine::{run_psgd, Averaging, SamplingScheme, SgdConfig};
use bolton_sgd::growth::LossConstants;
use bolton_sgd::loss::Loss;
use bolton_sgd::schedule::StepSize;
use bolton_sgd::sparse_engine::run_sparse_psgd;
use bolton_sgd::{SparseTrainSet, TrainSet};

/// How Δ₂ is computed for the noise calibration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SensitivityMode {
    /// The paper's closed forms, including the ÷b mini-batch shortcut
    /// (Section 4.1) — the reproduction default.
    PaperFormula,
    /// The exact Lemma 4 recursion for the configured schedule and batching
    /// (never below the true sensitivity; see DESIGN.md §7).
    Replayed,
}

/// Configuration for the bolt-on algorithms.
#[derive(Clone, Copy, Debug)]
pub struct BoltOnConfig {
    /// Privacy budget; pure ⇒ Laplace-ball noise, approx ⇒ Gaussian.
    pub budget: Budget,
    /// Number of passes `k`.
    pub passes: usize,
    /// Mini-batch size `b`.
    pub batch_size: usize,
    /// Projection radius `R` (required in the strongly convex case; the
    /// paper sets `R = 1/λ`).
    pub projection_radius: Option<f64>,
    /// Iterate returned by the underlying PSGD.
    pub averaging: Averaging,
    /// Sensitivity calibration mode.
    pub sensitivity_mode: SensitivityMode,
    /// Optional convergence tolerance µ — the paper's "oblivious k"
    /// strategy (Section 4.3): run until the relative training-loss
    /// decrease falls below µ or `passes` is reached. Sound because Δ₂ is
    /// non-decreasing in the pass count, so calibrating at the cap
    /// `passes` covers every earlier stop. (In the strongly convex case
    /// Δ₂ does not depend on k at all, which is the paper's observation.)
    pub tolerance: Option<f64>,
    /// Example-order scheme for the underlying PSGD. Defaults to the
    /// shared (non-fresh) permutation. Any permutation-family scheme is
    /// sound — the sensitivity bounds are worst-case over every fixed
    /// order — including [`SamplingScheme::ChunkedPermutation`], which is
    /// what out-of-core training over a chunked store should use so a
    /// pass streams chunks instead of seeking randomly.
    /// [`SamplingScheme::WithReplacement`] is rejected: the paper's
    /// analysis does not cover it.
    pub sampling: SamplingScheme,
}

impl BoltOnConfig {
    /// The paper's defaults: final iterate, paper formulas.
    pub fn new(budget: Budget) -> Self {
        Self {
            budget,
            passes: 1,
            batch_size: 1,
            projection_radius: None,
            averaging: Averaging::FinalIterate,
            sensitivity_mode: SensitivityMode::PaperFormula,
            tolerance: None,
            sampling: SamplingScheme::Permutation { fresh_each_pass: false },
        }
    }

    /// Sets the number of passes.
    pub fn with_passes(mut self, k: usize) -> Self {
        self.passes = k;
        self
    }

    /// Sets the mini-batch size.
    pub fn with_batch_size(mut self, b: usize) -> Self {
        self.batch_size = b;
        self
    }

    /// Enables projected SGD with radius `r`.
    pub fn with_projection(mut self, r: f64) -> Self {
        self.projection_radius = Some(r);
        self
    }

    /// Sets the averaging mode.
    pub fn with_averaging(mut self, averaging: Averaging) -> Self {
        self.averaging = averaging;
        self
    }

    /// Sets the sensitivity calibration mode.
    pub fn with_sensitivity_mode(mut self, mode: SensitivityMode) -> Self {
        self.sensitivity_mode = mode;
        self
    }

    /// Enables the oblivious-k convergence tolerance (with `passes` as the
    /// pass cap `K`).
    pub fn with_tolerance(mut self, mu: f64) -> Self {
        self.tolerance = Some(mu);
        self
    }

    /// Sets the example-order scheme (permutation family only).
    ///
    /// # Panics
    /// Panics on [`SamplingScheme::WithReplacement`] — the paper's
    /// sensitivity analysis does not cover it, so a private release under
    /// it would claim a guarantee the proofs don't give.
    pub fn with_sampling(mut self, sampling: SamplingScheme) -> Self {
        assert!(
            !matches!(sampling, SamplingScheme::WithReplacement),
            "with-replacement sampling is outside the paper's privacy analysis"
        );
        self.sampling = sampling;
        self
    }
}

/// A privately trained model plus its calibration record.
#[derive(Clone, Debug)]
pub struct PrivateModel {
    /// The released (noised) model.
    pub model: Vec<f64>,
    /// The non-private model before perturbation (kept for instrumentation;
    /// NOT part of the private release — do not publish it).
    pub unperturbed: Vec<f64>,
    /// The L2-sensitivity used for calibration.
    pub sensitivity: f64,
    /// The budget spent.
    pub budget: Budget,
    /// Mini-batch updates performed by the underlying PSGD.
    pub updates: u64,
}

impl PrivateModel {
    /// Norm of the realized noise draw (‖released − unperturbed‖).
    pub fn noise_norm(&self) -> f64 {
        bolton_linalg::vector::distance(&self.model, &self.unperturbed)
    }
}

/// The step size Table 4 assigns to our algorithm: `1/√m` (convex) or
/// `min(1/β, 1/γt)` (strongly convex).
pub fn paper_step_size(loss: &dyn Loss, m: usize) -> StepSize {
    if loss.is_strongly_convex() {
        StepSize::StronglyConvex { beta: loss.smoothness(), gamma: loss.strong_convexity() }
    } else {
        StepSize::InvSqrtM { m }
    }
}

/// The Δ₂ Algorithm 1/2 uses for the given configuration.
///
/// # Errors
/// Rejects invalid configurations (convex step exceeding `2/β`).
pub fn calibrate_sensitivity(
    loss: &dyn Loss,
    config: &BoltOnConfig,
    m: usize,
) -> Result<f64, PrivacyError> {
    let step = paper_step_size(loss, m);
    let constants = LossConstants::of(loss);
    match config.sensitivity_mode {
        SensitivityMode::Replayed => {
            Ok(sensitivity::replayed(&constants, &step, config.passes, m, config.batch_size))
        }
        SensitivityMode::PaperFormula => {
            if loss.is_strongly_convex() {
                Ok(sensitivity::strongly_convex_decreasing_step(
                    loss.lipschitz(),
                    loss.strong_convexity(),
                    m,
                    config.batch_size,
                ))
            } else {
                let eta = step.eta(1);
                if !step.respects_convex_bound(loss.smoothness()) {
                    return Err(PrivacyError::InvalidMechanism(format!(
                        "step {eta} exceeds 2/beta = {}",
                        2.0 / loss.smoothness()
                    )));
                }
                Ok(sensitivity::convex_constant_step(
                    loss.lipschitz(),
                    eta,
                    config.passes,
                    m,
                    config.batch_size,
                ))
            }
        }
    }
}

/// Trains with Algorithm 1 (convex) or Algorithm 2 (strongly convex),
/// dispatching on `loss.is_strongly_convex()`, and perturbs the output.
///
/// # Errors
/// Propagates calibration/mechanism errors.
///
/// # Panics
/// Panics if the data is empty or (strongly convex case) no projection
/// radius is configured while the loss constants require one.
pub fn train_private<D, R>(
    data: &D,
    loss: &dyn Loss,
    config: &BoltOnConfig,
    rng: &mut R,
) -> Result<PrivateModel, PrivacyError>
where
    D: TrainSet + ?Sized,
    R: Rng + ?Sized,
{
    let m = data.len();
    assert!(m > 0, "training set must be non-empty");
    let sgd_config = sgd_config_of(loss, config, m);

    // Step 1 (black box): run standard PSGD.
    let outcome = run_psgd(data, loss, &sgd_config, rng);

    // Step 2: calibrate Δ₂ and sample one noise draw.
    perturb_outcome(outcome.model, outcome.updates, loss, config, m, data.dim(), rng)
}

/// [`train_private`] on the O(nnz) sparse hot path: training runs through
/// [`bolton_sgd::sparse_engine`] (lazily scaled model, gradient work
/// proportional to nonzeros), and the sensitivity calibration plus the
/// Laplace-ball/Gaussian noise draw are applied to the final *densified*
/// model exactly as on the dense path.
///
/// Both calibration and noise depend only on `(loss, config, m, dim)` —
/// never on the data layout — and the sparse engine consumes identical
/// randomness to [`bolton_sgd::run_psgd`], so at a fixed seed this
/// releases the same noise draw as [`train_private`] on the densified
/// dataset and the released models agree to within float reassociation.
///
/// # Errors
/// Propagates calibration/mechanism errors.
///
/// # Panics
/// Panics if the data is empty or the loss lacks the GLM form the sparse
/// engine requires.
pub fn train_private_sparse<D, R>(
    data: &D,
    loss: &dyn Loss,
    config: &BoltOnConfig,
    rng: &mut R,
) -> Result<PrivateModel, PrivacyError>
where
    D: SparseTrainSet + ?Sized,
    R: Rng + ?Sized,
{
    let m = data.len();
    assert!(m > 0, "training set must be non-empty");
    let sgd_config = sgd_config_of(loss, config, m);

    // Step 1 (black box): run PSGD on the sparse engine.
    let outcome = run_sparse_psgd(data, loss, &sgd_config, rng);

    // Step 2: identical calibration + noise on the densified final model.
    perturb_outcome(outcome.model, outcome.updates, loss, config, m, data.dim(), rng)
}

/// The [`SgdConfig`] both bolt-on training paths run: paper step size,
/// the configured permutation-family sampling, and the caller's knobs.
fn sgd_config_of(loss: &dyn Loss, config: &BoltOnConfig, m: usize) -> SgdConfig {
    assert!(
        !matches!(config.sampling, SamplingScheme::WithReplacement),
        "with-replacement sampling is outside the paper's privacy analysis"
    );
    let step = paper_step_size(loss, m);
    let mut sgd_config = SgdConfig::new(step)
        .with_passes(config.passes)
        .with_batch_size(config.batch_size)
        .with_averaging(config.averaging)
        .with_sampling(config.sampling);
    if let Some(r) = config.projection_radius {
        sgd_config = sgd_config.with_projection(r);
    }
    if let Some(mu) = config.tolerance {
        sgd_config = sgd_config.with_tolerance(mu);
    }
    sgd_config
}

/// The shared Step 2: calibrate Δ₂, draw one noise vector, release.
fn perturb_outcome<R: Rng + ?Sized>(
    unperturbed: Vec<f64>,
    updates: u64,
    loss: &dyn Loss,
    config: &BoltOnConfig,
    m: usize,
    dim: usize,
    rng: &mut R,
) -> Result<PrivateModel, PrivacyError> {
    let delta2 = calibrate_sensitivity(loss, config, m)?;
    let mechanism = NoiseMechanism::for_budget(&config.budget, dim, delta2)?;
    let mut model = unperturbed.clone();
    mechanism.perturb(rng, &mut model);

    Ok(PrivateModel { model, unperturbed, sensitivity: delta2, budget: config.budget, updates })
}

/// Convenience wrapper asserting the convex case (paper Algorithm 1).
///
/// # Errors
/// As [`train_private`].
pub fn private_convex_psgd<D, R>(
    data: &D,
    loss: &dyn Loss,
    config: &BoltOnConfig,
    rng: &mut R,
) -> Result<PrivateModel, PrivacyError>
where
    D: TrainSet + ?Sized,
    R: Rng + ?Sized,
{
    assert!(!loss.is_strongly_convex(), "Algorithm 1 requires a merely convex loss");
    train_private(data, loss, config, rng)
}

/// Convenience wrapper asserting the strongly convex case (paper
/// Algorithm 2).
///
/// # Errors
/// As [`train_private`].
pub fn private_strongly_convex_psgd<D, R>(
    data: &D,
    loss: &dyn Loss,
    config: &BoltOnConfig,
    rng: &mut R,
) -> Result<PrivateModel, PrivacyError>
where
    D: TrainSet + ?Sized,
    R: Rng + ?Sized,
{
    assert!(loss.is_strongly_convex(), "Algorithm 2 requires a strongly convex loss");
    train_private(data, loss, config, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolton_rng::seeded;
    use bolton_sgd::dataset::InMemoryDataset;
    use bolton_sgd::loss::Logistic;
    use bolton_sgd::metrics;

    fn dataset(m: usize, seed: u64) -> InMemoryDataset {
        let mut rng = seeded(seed);
        let mut features = Vec::with_capacity(m * 2);
        let mut labels = Vec::with_capacity(m);
        for _ in 0..m {
            let x0 = rng.next_range(-0.9, 0.9);
            features.push(x0);
            features.push(rng.next_range(-0.3, 0.3));
            labels.push(if x0 >= 0.0 { 1.0 } else { -1.0 });
        }
        InMemoryDataset::from_flat(features, labels, 2)
    }

    #[test]
    fn convex_private_model_trains_and_perturbs() {
        let data = dataset(2000, 201);
        let loss = Logistic::plain();
        let config = BoltOnConfig::new(Budget::pure(1.0).unwrap()).with_passes(5);
        let out = train_private(&data, &loss, &config, &mut seeded(202)).unwrap();
        assert!(out.noise_norm() > 0.0);
        // Sensitivity: 2kLη = 2·5·1·(1/√2000).
        let expect = 10.0 / (2000f64).sqrt();
        assert!((out.sensitivity - expect).abs() < 1e-12);
        let acc = metrics::accuracy(&out.model, &data);
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn strongly_convex_uses_lemma8() {
        let data = dataset(1000, 203);
        let lambda = 0.01;
        let loss = Logistic::regularized(lambda, 1.0 / lambda);
        let config = BoltOnConfig::new(Budget::pure(1.0).unwrap())
            .with_passes(10)
            .with_projection(1.0 / lambda);
        let out = train_private(&data, &loss, &config, &mut seeded(204)).unwrap();
        // Δ₂ = 2L/(γm) = 2·2/(0.01·1000) = 0.4; independent of k.
        assert!((out.sensitivity - 0.4).abs() < 1e-12);
    }

    #[test]
    fn strongly_convex_sensitivity_independent_of_passes() {
        let data = dataset(500, 205);
        let lambda = 0.01;
        let loss = Logistic::regularized(lambda, 1.0 / lambda);
        let s = |k: usize| {
            let config = BoltOnConfig::new(Budget::pure(0.5).unwrap())
                .with_passes(k)
                .with_projection(1.0 / lambda);
            calibrate_sensitivity(&loss, &config, data.len()).unwrap()
        };
        assert_eq!(s(1), s(20));
    }

    #[test]
    fn convex_sensitivity_grows_with_passes() {
        let loss = Logistic::plain();
        let s = |k: usize| {
            let config = BoltOnConfig::new(Budget::pure(0.5).unwrap()).with_passes(k);
            calibrate_sensitivity(&loss, &config, 1000).unwrap()
        };
        assert!((s(20) / s(1) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn minibatch_reduces_convex_sensitivity() {
        let loss = Logistic::plain();
        let s = |b: usize| {
            let config =
                BoltOnConfig::new(Budget::pure(0.5).unwrap()).with_passes(10).with_batch_size(b);
            calibrate_sensitivity(&loss, &config, 1000).unwrap()
        };
        assert!((s(1) / s(50) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn gaussian_noise_for_approx_budget() {
        let data = dataset(1000, 206);
        let loss = Logistic::plain();
        let config = BoltOnConfig::new(Budget::approx(1.0, 1e-6).unwrap()).with_passes(2);
        let out = train_private(&data, &loss, &config, &mut seeded(207)).unwrap();
        assert!(out.noise_norm() > 0.0);
        assert!(!out.budget.is_pure());
    }

    #[test]
    fn replayed_mode_is_at_most_paper_formula_convex() {
        let loss = Logistic::plain();
        let paper = BoltOnConfig::new(Budget::pure(1.0).unwrap()).with_passes(5);
        let replay = paper.with_sensitivity_mode(SensitivityMode::Replayed);
        let sp = calibrate_sensitivity(&loss, &paper, 500).unwrap();
        let sr = calibrate_sensitivity(&loss, &replay, 500).unwrap();
        assert!(sr <= sp + 1e-12, "replayed {sr} > paper {sp}");
    }

    #[test]
    fn more_budget_means_less_noise_on_average() {
        let data = dataset(500, 208);
        let loss = Logistic::plain();
        let avg_noise = |eps: f64, seed: u64| {
            let config = BoltOnConfig::new(Budget::pure(eps).unwrap()).with_passes(3);
            let mut rng = seeded(seed);
            (0..30)
                .map(|_| train_private(&data, &loss, &config, &mut rng).unwrap().noise_norm())
                .sum::<f64>()
                / 30.0
        };
        let tight = avg_noise(0.1, 209);
        let loose = avg_noise(4.0, 209);
        assert!(tight > 5.0 * loose, "ε=0.1 noise {tight} should dwarf ε=4 noise {loose}");
    }

    /// The chunked permutation scheme threads through the bolt-on path:
    /// same Δ₂ as the flat scheme (calibration never sees the order), a
    /// numerically different but deterministic model, and the ablation
    /// scheme stays rejected.
    #[test]
    fn chunked_sampling_threads_through_private_training() {
        let data = dataset(600, 212);
        let loss = Logistic::plain();
        let flat = BoltOnConfig::new(Budget::pure(1.0).unwrap()).with_passes(3);
        let chunked = flat.with_sampling(SamplingScheme::chunked(64));
        let a = train_private(&data, &loss, &flat, &mut seeded(213)).unwrap();
        let b = train_private(&data, &loss, &chunked, &mut seeded(213)).unwrap();
        let b2 = train_private(&data, &loss, &chunked, &mut seeded(213)).unwrap();
        assert_eq!(a.sensitivity, b.sensitivity, "Δ₂ is order-oblivious");
        assert_ne!(a.unperturbed, b.unperturbed, "order distribution differs");
        assert_eq!(b.model, b2.model, "deterministic per seed");

        let result = std::panic::catch_unwind(|| {
            BoltOnConfig::new(Budget::pure(1.0).unwrap())
                .with_sampling(SamplingScheme::WithReplacement)
        });
        assert!(result.is_err(), "with-replacement must be rejected");
    }

    #[test]
    fn wrapper_asserts_convexity_class() {
        let data = dataset(100, 210);
        let lambda = 0.01;
        let strongly = Logistic::regularized(lambda, 1.0 / lambda);
        let config = BoltOnConfig::new(Budget::pure(1.0).unwrap());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            private_convex_psgd(&data, &strongly, &config, &mut seeded(211))
        }));
        assert!(result.is_err(), "Algorithm 1 must reject strongly convex losses");
    }
}

#[cfg(test)]
mod sparse_private_tests {
    use super::*;
    use bolton_rng::seeded;
    use bolton_sgd::dataset::{InMemoryDataset, SparseDataset};
    use bolton_sgd::loss::Logistic;

    fn sparse_pair(m: usize, dim: usize, seed: u64) -> (InMemoryDataset, SparseDataset) {
        bolton_sgd::dataset::sparse_pair_fixture(m, dim, 0.2, seed)
    }

    /// The acceptance property: under a fixed seed the sparse private
    /// release draws the *bit-identical* noise vector as the dense path
    /// (same order randomness consumed, same Δ₂, same mechanism state),
    /// so the released models differ only by the engines' float
    /// reassociation (≤ 1e-9).
    #[test]
    fn sparse_private_equals_dense_private_at_fixed_seed() {
        let (d, s) = sparse_pair(400, 12, 221);
        let loss = Logistic::plain();
        let config = BoltOnConfig::new(Budget::pure(1.0).unwrap()).with_passes(3);
        let dense = train_private(&d, &loss, &config, &mut seeded(222)).unwrap();
        let sparse = train_private_sparse(&s, &loss, &config, &mut seeded(222)).unwrap();
        assert_eq!(dense.sensitivity, sparse.sensitivity);
        assert_eq!(dense.updates, sparse.updates);
        // Identical noise draw from the shared RNG stream; recovering it
        // as `model − unperturbed` re-rounds, hence the few-ulp tolerance.
        for ((dm, du), (sm, su)) in dense
            .model
            .iter()
            .zip(dense.unperturbed.iter())
            .zip(sparse.model.iter().zip(sparse.unperturbed.iter()))
        {
            assert!(((dm - du) - (sm - su)).abs() <= 1e-12, "noise draw diverged");
        }
        // Released models agree to float reassociation.
        for (i, (p, q)) in dense.model.iter().zip(sparse.model.iter()).enumerate() {
            assert!((p - q).abs() <= 1e-9, "coord {i}: {p} vs {q}");
        }
    }

    /// Strongly convex case (Algorithm 2) end-to-end on the sparse path:
    /// Lemma 8 sensitivity and Gaussian noise on the densified model.
    #[test]
    fn sparse_strongly_convex_with_gaussian_noise() {
        let (d, s) = sparse_pair(500, 10, 223);
        let lambda = 0.01;
        let loss = Logistic::regularized(lambda, 1.0 / lambda);
        let config = BoltOnConfig::new(Budget::approx(1.0, 1e-6).unwrap())
            .with_passes(5)
            .with_projection(1.0 / lambda);
        let dense = train_private(&d, &loss, &config, &mut seeded(224)).unwrap();
        let sparse = train_private_sparse(&s, &loss, &config, &mut seeded(224)).unwrap();
        // Δ₂ = 2L/(γm), identical on both paths.
        assert_eq!(dense.sensitivity, sparse.sensitivity);
        assert!(sparse.noise_norm() > 0.0);
        for (i, (p, q)) in dense.model.iter().zip(sparse.model.iter()).enumerate() {
            assert!((p - q).abs() <= 1e-9, "coord {i}: {p} vs {q}");
        }
    }
}

#[cfg(test)]
mod oblivious_k_tests {
    use super::*;
    use bolton_rng::seeded;
    use bolton_sgd::dataset::InMemoryDataset;
    use bolton_sgd::loss::Logistic;

    fn dataset(m: usize, seed: u64) -> InMemoryDataset {
        let mut rng = seeded(seed);
        let mut features = Vec::with_capacity(m * 2);
        let mut labels = Vec::with_capacity(m);
        for _ in 0..m {
            let x0 = rng.next_range(-0.9, 0.9);
            features.push(x0);
            features.push(rng.next_range(-0.3, 0.3));
            labels.push(if x0 >= 0.0 { 1.0 } else { -1.0 });
        }
        InMemoryDataset::from_flat(features, labels, 2)
    }

    /// The oblivious-k strategy: with a tolerance, the strongly convex run
    /// may stop early; the sensitivity (k-independent) is unchanged.
    #[test]
    fn tolerance_stops_early_without_changing_sensitivity() {
        let data = dataset(600, 291);
        let lambda = 0.05;
        let loss = Logistic::regularized(lambda, 1.0 / lambda);
        let capped = BoltOnConfig::new(Budget::pure(1.0).unwrap())
            .with_passes(100)
            .with_projection(1.0 / lambda)
            .with_tolerance(0.01);
        let out = train_private(&data, &loss, &capped, &mut seeded(292)).unwrap();
        // Stopped well before the 100-pass cap...
        assert!(out.updates < 100 * 600, "updates {}", out.updates);
        // ...with the k-oblivious Lemma 8 sensitivity.
        let uncapped = BoltOnConfig::new(Budget::pure(1.0).unwrap())
            .with_passes(1)
            .with_projection(1.0 / lambda);
        assert_eq!(out.sensitivity, calibrate_sensitivity(&loss, &uncapped, 600).unwrap());
    }

    /// In the convex case the tolerance is still sound: calibration uses
    /// the pass cap K, an upper bound on the realized pass count.
    #[test]
    fn convex_tolerance_calibrates_at_the_cap() {
        let data = dataset(400, 293);
        let loss = Logistic::plain();
        let config =
            BoltOnConfig::new(Budget::pure(1.0).unwrap()).with_passes(50).with_tolerance(0.05);
        let out = train_private(&data, &loss, &config, &mut seeded(294)).unwrap();
        let at_cap = calibrate_sensitivity(&loss, &config, 400).unwrap();
        assert_eq!(out.sensitivity, at_cap);
        assert!(out.updates <= 50 * 400);
    }
}

//! The BST14 baseline: Bassily, Smith & Thakurta, "Private empirical risk
//! minimization" (FOCS 2014), extended to a constant number of epochs —
//! paper Algorithms 4 (convex) and 5 (strongly convex).
//!
//! BST14 samples each iterate's example uniformly **with replacement**
//! (subsampling amplification is essential to its analysis) and adds
//! Gaussian noise to every gradient. With `T = km/b` iterations:
//!
//! * `δ₁ = δ/T`
//! * `ε₁` solves `ε = Tε₁(e^{ε₁} − 1) + ε₁√(2T ln(1/δ₁))` (advanced
//!   composition)
//! * `ε₂ = min(1, m·ε₁/(2b))` (privacy amplification by subsampling at rate
//!   `b/m`)
//! * `σ² = 2 ln(1.25/δ₁)/ε₂²` with per-coordinate scale `ι` (`ι = L²`, which
//!   is 1 for logistic regression as the paper notes)
//!
//! The update uses the **sum** batch gradient (sensitivity `2L` per
//! replaced example, norm ≤ `bL`), which is why Algorithm 4's step scale is
//! `G = √(dσ²ι + b²L²)`. BST14 supports only (ε, δ)-DP with δ > 0.

use bolton_privacy::budget::{Budget, PrivacyError};
use bolton_privacy::composition::solve_per_iteration_eps;
use bolton_rng::dist::standard_normal;
use bolton_rng::Rng;
use bolton_sgd::engine::{
    batches_per_pass, run_psgd_with_hook, Averaging, BatchPlan, SamplingScheme, SgdConfig,
};
use bolton_sgd::loss::Loss;
use bolton_sgd::schedule::StepSize;
use bolton_sgd::TrainSet;

/// Configuration for constant-epoch BST14.
#[derive(Clone, Copy, Debug)]
pub struct Bst14Config {
    /// Total (ε, δ) budget; must have δ > 0.
    pub budget: Budget,
    /// Number of epochs `k` (the constant-epoch extension).
    pub passes: usize,
    /// Mini-batch size `b`.
    pub batch_size: usize,
    /// Hypothesis-space radius `R` (the algorithms require constrained
    /// optimization; the paper sets `R = 1/λ`).
    pub radius: f64,
}

impl Bst14Config {
    /// A 1-pass, batch-1 configuration with the given radius.
    pub fn new(budget: Budget, radius: f64) -> Self {
        Self { budget, passes: 1, batch_size: 1, radius }
    }

    /// Sets the number of passes.
    pub fn with_passes(mut self, k: usize) -> Self {
        self.passes = k;
        self
    }

    /// Sets the mini-batch size.
    pub fn with_batch_size(mut self, b: usize) -> Self {
        self.batch_size = b;
        self
    }
}

/// The calibration derived on lines 2–7 of Algorithms 4/5.
#[derive(Clone, Copy, Debug)]
pub struct Bst14Calibration {
    /// Total iterations `T`.
    pub iterations: u64,
    /// Per-iteration failure probability `δ₁ = δ/T`.
    pub delta1: f64,
    /// Per-iteration `ε₁` from advanced composition.
    pub eps1: f64,
    /// Amplified `ε₂ = min(1, m·ε₁/(2b))`.
    pub eps2: f64,
    /// Per-coordinate noise variance `σ²·ι`.
    pub sigma_sq: f64,
    /// Step scale `G = √(dσ²ι + b²L²)` (convex schedule only).
    pub step_scale: f64,
}

/// Computes the calibration for a dataset of `m` examples in `d` dimensions.
///
/// # Errors
/// Rejects pure budgets (BST14 needs δ > 0) and invalid shapes.
pub fn calibrate(
    loss: &dyn Loss,
    config: &Bst14Config,
    m: usize,
    d: usize,
) -> Result<Bst14Calibration, PrivacyError> {
    if config.budget.is_pure() {
        return Err(PrivacyError::InvalidBudget(
            "BST14 requires (eps, delta)-DP with delta > 0".into(),
        ));
    }
    if m == 0 || d == 0 {
        return Err(PrivacyError::InvalidMechanism("empty dataset or zero dimension".into()));
    }
    let b = config.batch_size.min(m);
    let iterations = batches_per_pass(m, b) as u64 * config.passes as u64;
    let delta1 = config.budget.delta() / iterations as f64;
    let eps1 = solve_per_iteration_eps(config.budget.eps(), iterations, delta1)?;
    let eps2 = 1.0_f64.min(m as f64 * eps1 / (2.0 * b as f64));
    // ι = L² localizes the per-iteration sensitivity (ι = 1 for logistic).
    let iota = loss.lipschitz() * loss.lipschitz();
    let sigma_sq = 2.0 * (1.25 / delta1).ln() / (eps2 * eps2) * iota;
    let bl = b as f64 * loss.lipschitz();
    let step_scale = (d as f64 * sigma_sq + bl * bl).sqrt();
    Ok(Bst14Calibration { iterations, delta1, eps1, eps2, sigma_sq, step_scale })
}

/// The result of a BST14 run.
#[derive(Clone, Debug)]
pub struct Bst14Model {
    /// The released model.
    pub model: Vec<f64>,
    /// Updates performed.
    pub updates: u64,
    /// The calibration used.
    pub calibration: Bst14Calibration,
}

/// Trains with Algorithm 4 (convex) or Algorithm 5 (strongly convex),
/// dispatching on `loss.is_strongly_convex()`.
///
/// # Errors
/// Propagates calibration errors.
///
/// # Panics
/// Panics on an empty dataset.
pub fn train_bst14<D, R>(
    data: &D,
    loss: &dyn Loss,
    config: &Bst14Config,
    rng: &mut R,
) -> Result<Bst14Model, PrivacyError>
where
    D: TrainSet + ?Sized,
    R: Rng + ?Sized,
{
    let m = data.len();
    assert!(m > 0, "training set must be non-empty");
    let d = data.dim();
    let cal = calibrate(loss, config, m, d)?;
    let sigma = cal.sigma_sq.sqrt();

    let step = if loss.is_strongly_convex() {
        // Algorithm 5 line 12.
        StepSize::InvGammaT { gamma: loss.strong_convexity() }
    } else {
        // Algorithm 4 line 12: η_t = 2R/(G√t).
        StepSize::BstConvex { radius: config.radius, g: cal.step_scale }
    };

    let b = config.batch_size.min(m);
    let sgd_config = SgdConfig::new(step)
        .with_passes(config.passes)
        .with_batch_size(b)
        .with_averaging(Averaging::FinalIterate)
        .with_sampling(SamplingScheme::WithReplacement)
        .with_projection(config.radius);

    // The engine applies `w ← Π(w − η·g_hooked)` with `g` the *mean* batch
    // gradient; BST14 updates with the *sum* plus noise, so the hook rescales
    // g ← |B|·g + z. |B| is b except possibly the final batch of a pass.
    let plan = BatchPlan::new(m, b);
    let batches = plan.batches as u64;
    let mut noise_rng = rng.fork_stream();
    let outcome = run_psgd_with_hook(data, loss, &sgd_config, rng, |t, grad| {
        let within = ((t - 1) % batches) as usize;
        let batch_len = plan.size_of(within);
        bolton_linalg::vector::scale(batch_len as f64, grad);
        for g in grad.iter_mut() {
            *g += sigma * standard_normal(&mut noise_rng);
        }
    });

    Ok(Bst14Model { model: outcome.model, updates: outcome.updates, calibration: cal })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolton_privacy::composition::advanced_composition_total;
    use bolton_rng::seeded;
    use bolton_sgd::dataset::InMemoryDataset;
    use bolton_sgd::loss::Logistic;

    fn dataset(m: usize, seed: u64) -> InMemoryDataset {
        let mut rng = seeded(seed);
        let mut features = Vec::with_capacity(m * 2);
        let mut labels = Vec::with_capacity(m);
        for _ in 0..m {
            let x0 = rng.next_range(-0.9, 0.9);
            features.push(x0);
            features.push(rng.next_range(-0.3, 0.3));
            labels.push(if x0 >= 0.0 { 1.0 } else { -1.0 });
        }
        InMemoryDataset::from_flat(features, labels, 2)
    }

    #[test]
    fn calibration_solves_composition() {
        let loss = Logistic::plain();
        let config = Bst14Config::new(Budget::approx(1.0, 1e-6).unwrap(), 10.0).with_passes(5);
        let cal = calibrate(&loss, &config, 1000, 50).unwrap();
        assert_eq!(cal.iterations, 5000);
        assert!((cal.delta1 - 1e-6 / 5000.0).abs() < 1e-18);
        let recomposed = advanced_composition_total(cal.eps1, cal.iterations, cal.delta1);
        assert!((recomposed - 1.0).abs() < 1e-6);
        // Amplification: ε₂ = min(1, m·ε₁/2).
        assert!((cal.eps2 - (1000.0 * cal.eps1 / 2.0).min(1.0)).abs() < 1e-12);
    }

    #[test]
    fn pure_budget_rejected() {
        let loss = Logistic::plain();
        let config = Bst14Config::new(Budget::pure(1.0).unwrap(), 10.0);
        assert!(calibrate(&loss, &config, 100, 2).is_err());
    }

    #[test]
    fn fewer_iterations_need_less_noise_per_step() {
        // The paper's constant-epoch extension: reducing passes from the
        // original O(m²) iterations shrinks per-iteration noise.
        let loss = Logistic::plain();
        let mk = |k: usize| {
            let config = Bst14Config::new(Budget::approx(1.0, 1e-6).unwrap(), 10.0).with_passes(k);
            calibrate(&loss, &config, 2000, 10).unwrap().sigma_sq
        };
        assert!(mk(1) < mk(10), "1-pass sigma² {} should be < 10-pass {}", mk(1), mk(10));
    }

    #[test]
    fn trains_and_stays_in_ball() {
        let data = dataset(800, 241);
        let loss = Logistic::plain();
        let radius = 5.0;
        let config = Bst14Config::new(Budget::approx(2.0, 1e-6).unwrap(), radius)
            .with_passes(2)
            .with_batch_size(10);
        let out = train_bst14(&data, &loss, &config, &mut seeded(242)).unwrap();
        assert!(bolton_linalg::vector::norm(&out.model) <= radius + 1e-9);
        assert_eq!(out.updates, 160);
    }

    #[test]
    fn strongly_convex_variant_runs() {
        let data = dataset(500, 243);
        let lambda = 0.01;
        let loss = Logistic::regularized(lambda, 1.0 / lambda);
        let config = Bst14Config::new(Budget::approx(1.0, 1e-6).unwrap(), 1.0 / lambda)
            .with_passes(3)
            .with_batch_size(25);
        let out = train_bst14(&data, &loss, &config, &mut seeded(244)).unwrap();
        assert!(bolton_linalg::vector::norm(&out.model) <= 1.0 / lambda + 1e-9);
    }

    #[test]
    fn deterministic_under_seed() {
        let data = dataset(200, 245);
        let loss = Logistic::plain();
        let config = Bst14Config::new(Budget::approx(1.0, 1e-6).unwrap(), 5.0).with_passes(2);
        let a = train_bst14(&data, &loss, &config, &mut seeded(9)).unwrap();
        let b = train_bst14(&data, &loss, &config, &mut seeded(9)).unwrap();
        assert_eq!(a.model, b.model);
    }

    #[test]
    fn larger_dataset_amplifies_privacy() {
        // ε₂ grows with m (less noise needed) until it caps at 1.
        let loss = Logistic::plain();
        let eps2_at = |m: usize| {
            let config = Bst14Config::new(Budget::approx(0.5, 1e-8).unwrap(), 10.0);
            calibrate(&loss, &config, m, 10).unwrap().eps2
        };
        assert!(eps2_at(100_000) >= eps2_at(1_000));
    }
}

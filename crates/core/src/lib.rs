//! **bolton** — a from-scratch reproduction of *Bolt-on Differential
//! Privacy for Scalable Stochastic Gradient Descent-based Analytics*
//! (Wu, Li, Kumar, Chaudhuri, Jha, Naughton — SIGMOD 2017).
//!
//! The paper's idea: instead of modifying SGD internals to add noise at
//! every step (the "white-box" approach of SCS13/BST14), run standard
//! permutation-based SGD as a **black box** and perturb only the final
//! model, calibrated by a new, tight L2-sensitivity analysis. The payoff is
//! threefold — trivial integration into existing analytics systems, zero
//! runtime overhead, and (surprisingly) *better* accuracy at constant
//! passes.
//!
//! Crate map:
//!
//! * [`sensitivity`] — the closed-form Δ₂ bounds (Lemmas 6–8,
//!   Corollaries 1–3) plus the exact Lemma 4 replay.
//! * [`output_perturbation`] — Algorithms 1/2 with ε-DP (Laplace ball) and
//!   (ε, δ)-DP (Gaussian) noise.
//! * [`scs13`] / [`bst14`] — the two state-of-the-art baselines the paper
//!   compares against, including the constant-epoch BST14 extension
//!   (Algorithms 4/5).
//! * [`tuning`] — private hyper-parameter tuning (Algorithm 3) and
//!   public-data tuning.
//! * [`multiclass`] — one-vs-all with even budget split and accounting.
//! * [`api`] — one [`api::TrainPlan`] per experiment cell; the examples and
//!   every figure-regenerating bench binary go through it.
//!
//! ```
//! use bolton::api::{AlgorithmKind, LossKind, TrainPlan};
//! use bolton_privacy::Budget;
//! use bolton_sgd::dataset::InMemoryDataset;
//!
//! let data = InMemoryDataset::from_flat(
//!     vec![0.6, 0.1, -0.7, 0.2, 0.5, -0.1, -0.4, 0.0],
//!     vec![1.0, -1.0, 1.0, -1.0],
//!     2,
//! );
//! let plan = TrainPlan::new(
//!     LossKind::Logistic { lambda: 1e-3 },
//!     AlgorithmKind::BoltOn,
//!     Some(Budget::pure(1.0).unwrap()),
//! )
//! .with_passes(5)
//! .with_batch_size(2);
//! let model = plan.train(&data, &mut bolton_rng::seeded(42)).unwrap();
//! assert_eq!(model.len(), 2);
//! ```

pub mod api;
pub mod audit;
pub mod bst14;
pub mod model_io;
pub mod multiclass;
pub mod objective_perturbation;
pub mod output_perturbation;
pub mod scs13;
pub mod sensitivity;
pub mod tuning;

pub use api::{AlgorithmKind, LossKind, TrainPlan};
pub use output_perturbation::{BoltOnConfig, PrivateModel, SensitivityMode};

// Re-export the layers an application needs alongside the algorithms.
pub use bolton_privacy::budget::Budget;
pub use bolton_sgd::dataset::{Example, InMemoryDataset, TrainSet};
pub use bolton_sgd::metrics;

//! The paper's L2-sensitivity bounds for permutation-based SGD — the core
//! technical contribution (Section 3.2).
//!
//! | result | setting | bound on `sup ‖A(r;S) − A(r;S')‖` |
//! |---|---|---|
//! | Corollary 1 | convex, constant `η ≤ 2/β` | `2kLη` |
//! | Corollary 2 | convex, `η_t = 2/(β(t+m^c))` | `(4L/β)(1/m^c + ln k/m)` |
//! | Corollary 3 | convex, `η_t = 2/(β(√t+m^c))` | `(4L/β)·Σ_j 1/(√(jm+1)+m^c)` |
//! | Lemma 7 | γ-strongly convex, constant `η ≤ 1/β` | `2ηL/(1−(1−ηγ)^m)` |
//! | Lemma 8 | γ-strongly convex, `η_t = min(1/β, 1/γt)` | `2L/(γm)` |
//!
//! Mini-batching divides the additive term — and hence each bound — by `b`
//! (Section 3.2.3). **A reproduction caveat:** the ÷b shortcut is exactly
//! right for the convex constant-step bound, but for the strongly convex
//! decreasing schedule indexed by *batch* counter the recursion actually
//! telescopes back to `2L/(γm)` independent of `b`. We expose both the
//! paper's closed forms (used by default, for fidelity) and
//! [`replayed`] — the exact Lemma 4 recursion for whatever schedule and
//! batching is in play — which tests compare against. See DESIGN.md §7.

use bolton_sgd::growth::{self, LossConstants};
use bolton_sgd::schedule::StepSize;

fn check_common(lipschitz: f64, k: usize, m: usize, b: usize) {
    assert!(lipschitz.is_finite() && lipschitz > 0.0, "Lipschitz constant must be > 0");
    assert!(k >= 1, "at least one pass");
    assert!(m >= 1, "dataset must be non-empty");
    assert!(b >= 1, "batch size must be >= 1");
}

/// The worst-case batch divisor for the mini-batch ÷b improvement.
///
/// The paper's analysis assumes `b | m`; a naive "flush every b rows"
/// engine would otherwise leave an `m mod b`-row tail batch whose tiny size
/// becomes the sound divisor, silently forfeiting the ÷b benefit (caught by
/// the Lemma 4 replay — see tests). Our engine instead uses the *balanced*
/// partition of [`bolton_sgd::engine::BatchPlan`], whose smallest batch —
/// `⌊m/⌈m/b⌉⌋`, within one of `b` — is the divisor used here.
pub fn effective_batch_divisor(m: usize, b: usize) -> usize {
    bolton_sgd::engine::BatchPlan::new(m, b).min_size()
}

/// Corollary 1: convex loss, constant step `η ≤ 2/β`, `k` passes, batch `b`:
/// `Δ₂ = 2kLη / effective_batch_divisor(m, b)`.
pub fn convex_constant_step(lipschitz: f64, eta: f64, k: usize, m: usize, b: usize) -> f64 {
    check_common(lipschitz, k, m, b);
    assert!(eta.is_finite() && eta > 0.0, "step size must be > 0");
    2.0 * k as f64 * lipschitz * eta / effective_batch_divisor(m, b) as f64
}

/// Corollary 2: convex loss, decreasing step `η_t = 2/(β(t+m^c))`:
/// `Δ₂ = (4L/β)(1/m^c + ln k/m)/b`.
pub fn convex_decreasing_step(
    lipschitz: f64,
    beta: f64,
    m: usize,
    c: f64,
    k: usize,
    b: usize,
) -> f64 {
    check_common(lipschitz, k, m, b);
    assert!(beta > 0.0, "smoothness must be > 0");
    assert!((0.0..1.0).contains(&c), "exponent c must be in [0,1)");
    let m_f = m as f64;
    // The k = 1 term of the corollary's derivation is 1/(m^c + 1); the
    // printed bound absorbs it into 1/m^c. ln 1 = 0 keeps k = 1 sane.
    4.0 * lipschitz / beta * (1.0 / m_f.powf(c) + (k as f64).ln() / m_f)
        / effective_batch_divisor(m, b) as f64
}

/// Corollary 3: convex loss, square-root step `η_t = 2/(β(√t+m^c))`:
/// `Δ₂ = (4L/β)·Σ_{j=0}^{k−1} 1/(√(jm+1)+m^c) / b` (the exact sum, tighter
/// than the corollary's O(·) simplification).
pub fn convex_sqrt_step(lipschitz: f64, beta: f64, m: usize, c: f64, k: usize, b: usize) -> f64 {
    check_common(lipschitz, k, m, b);
    assert!(beta > 0.0, "smoothness must be > 0");
    assert!((0.0..1.0).contains(&c), "exponent c must be in [0,1)");
    let m_f = m as f64;
    let sum: f64 = (0..k).map(|j| 1.0 / ((j as f64 * m_f + 1.0).sqrt() + m_f.powf(c))).sum();
    4.0 * lipschitz / beta * sum / effective_batch_divisor(m, b) as f64
}

/// Lemma 7: γ-strongly convex loss, constant step `η ≤ 1/β`:
/// `Δ₂ = 2ηL/(1−(1−ηγ)^m) / b`.
pub fn strongly_convex_constant_step(
    lipschitz: f64,
    gamma: f64,
    eta: f64,
    m: usize,
    b: usize,
) -> f64 {
    check_common(lipschitz, 1, m, b);
    assert!(gamma > 0.0, "strong convexity must be > 0");
    assert!(eta > 0.0 && eta * gamma < 1.0, "need 0 < ηγ < 1");
    let denom = 1.0 - (1.0 - eta * gamma).powi(m as i32);
    2.0 * eta * lipschitz / denom / effective_batch_divisor(m, b) as f64
}

/// Lemma 8 (Algorithm 2's setting): γ-strongly convex loss,
/// `η_t = min(1/β, 1/γt)`: `Δ₂ = 2L/(γm) / b`.
///
/// The ÷b follows the paper's implementation (Section 4.1); see the module
/// docs for the caveat on its derivation.
pub fn strongly_convex_decreasing_step(lipschitz: f64, gamma: f64, m: usize, b: usize) -> f64 {
    check_common(lipschitz, 1, m, b);
    assert!(gamma > 0.0, "strong convexity must be > 0");
    2.0 * lipschitz / (gamma * m as f64) / effective_batch_divisor(m, b) as f64
}

/// Model averaging (Lemma 10): for non-decreasing per-iterate sensitivities
/// the averaged model's sensitivity is at most `(Σαt)·δ_T`; with the uniform
/// weights the engine uses, `Σαt = 1`, so averaging never increases Δ₂.
pub fn averaging_factor(weights_sum: f64) -> f64 {
    assert!(weights_sum > 0.0 && weights_sum.is_finite());
    weights_sum
}

/// The exact Lemma 4 growth recursion for an arbitrary schedule — the
/// ground truth the closed forms above must dominate (for `b = 1`) and the
/// rigorous fallback for batch-indexed strongly convex schedules.
pub fn replayed(constants: &LossConstants, step: &StepSize, k: usize, m: usize, b: usize) -> f64 {
    growth::replay_sensitivity(constants, step, k, m, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn convex_constants() -> LossConstants {
        LossConstants { lipschitz: 1.0, smoothness: 1.0, strong_convexity: 0.0 }
    }

    #[test]
    fn corollary1_values() {
        assert_eq!(convex_constant_step(1.0, 0.01, 10, 100, 1), 0.2);
        assert_eq!(convex_constant_step(1.0, 0.01, 10, 100, 50), 0.2 / 50.0);
        // b ∤ m: the balanced partition of 110 rows at b = 50 is three
        // batches of 37/37/36, so the sound divisor is 36 (not 50, and far
        // better than the 10-row tail a naive partition would leave).
        assert_eq!(convex_constant_step(1.0, 0.01, 10, 110, 50), 0.2 / 36.0);
        assert_eq!(convex_constant_step(2.0, 0.1, 1, 100, 1), 0.4);
    }

    #[test]
    fn corollary1_dominates_replay_for_all_b() {
        let c = convex_constants();
        for b in [1usize, 7, 50] {
            for k in [1usize, 5] {
                let eta = 0.02;
                let closed = convex_constant_step(c.lipschitz, eta, k, 120, b);
                let exact = replayed(&c, &StepSize::Constant(eta), k, 120, b);
                assert!(closed >= exact - 1e-12, "b={b},k={k}: closed {closed} < replay {exact}");
            }
        }
    }

    #[test]
    fn corollary2_dominates_replay() {
        let c = convex_constants();
        let m = 300;
        let cc = 0.4;
        for k in [1usize, 2, 8] {
            let closed = convex_decreasing_step(c.lipschitz, c.smoothness, m, cc, k, 1);
            let step = StepSize::Decreasing { beta: c.smoothness, m, c: cc };
            let exact = replayed(&c, &step, k, m, 1);
            assert!(closed >= exact, "k={k}: closed {closed} < replay {exact}");
        }
    }

    #[test]
    fn corollary3_dominates_replay() {
        let c = convex_constants();
        let m = 300;
        let cc = 0.4;
        for k in [1usize, 4] {
            let closed = convex_sqrt_step(c.lipschitz, c.smoothness, m, cc, k, 1);
            let step = StepSize::SqrtDecay { beta: c.smoothness, m, c: cc };
            let exact = replayed(&c, &step, k, m, 1);
            assert!(closed >= exact, "k={k}: closed {closed} < replay {exact}");
        }
    }

    #[test]
    fn lemma7_dominates_replay() {
        let gamma = 0.05;
        let c = LossConstants { lipschitz: 1.5, smoothness: 1.05, strong_convexity: gamma };
        let m = 150;
        let eta = 0.5 / c.smoothness;
        for k in [1usize, 3] {
            let closed = strongly_convex_constant_step(c.lipschitz, gamma, eta, m, 1);
            let exact = replayed(&c, &StepSize::Constant(eta), k, m, 1);
            assert!(closed >= exact, "k={k}: closed {closed} < replay {exact}");
        }
    }

    #[test]
    fn lemma8_dominates_replay_at_b1() {
        let gamma = 0.02;
        let c = LossConstants { lipschitz: 2.0, smoothness: 1.02, strong_convexity: gamma };
        let m = 400;
        let step = StepSize::StronglyConvex { beta: c.smoothness, gamma };
        for k in [1usize, 2, 6] {
            let closed = strongly_convex_decreasing_step(c.lipschitz, gamma, m, 1);
            let exact = replayed(&c, &step, k, m, 1);
            assert!(closed >= exact - 1e-12, "k={k}: closed {closed} < replay {exact}");
        }
    }

    /// Documents the reproduction caveat: the paper's ÷b for Lemma 8 is
    /// *below* the batch-indexed recursion (which stays ≈ 2L/(γm)).
    #[test]
    fn lemma8_batch_caveat_is_real() {
        let gamma = 0.02;
        let c = LossConstants { lipschitz: 2.0, smoothness: 1.02, strong_convexity: gamma };
        let m = 400;
        let b = 20;
        let step = StepSize::StronglyConvex { beta: c.smoothness, gamma };
        let paper = strongly_convex_decreasing_step(c.lipschitz, gamma, m, b);
        let exact = replayed(&c, &step, 2, m, b);
        assert!(
            exact > paper,
            "expected the replayed bound {exact} to exceed the paper's ÷b value {paper}"
        );
        // ...but the b-free Lemma 8 value still dominates the recursion.
        let rigorous = strongly_convex_decreasing_step(c.lipschitz, gamma, m, 1);
        assert!(rigorous >= exact - 1e-12, "rigorous {rigorous} < replay {exact}");
    }

    #[test]
    fn lemma8_shrinks_with_m() {
        let at = |m: usize| strongly_convex_decreasing_step(1.0, 0.01, m, 1);
        assert!(at(1000) < at(100));
        assert!((at(100) / at(1000) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sensitivities_are_positive_and_finite() {
        let vals = [
            convex_constant_step(1.0, 0.1, 5, 100, 10),
            convex_decreasing_step(1.0, 1.0, 100, 0.5, 5, 10),
            convex_sqrt_step(1.0, 1.0, 100, 0.5, 5, 10),
            strongly_convex_constant_step(1.0, 0.1, 0.5, 100, 10),
            strongly_convex_decreasing_step(1.0, 0.1, 100, 10),
        ];
        for v in vals {
            assert!(v.is_finite() && v > 0.0, "value {v}");
        }
    }

    #[test]
    #[should_panic(expected = "step size must be > 0")]
    fn rejects_zero_eta() {
        convex_constant_step(1.0, 0.0, 1, 10, 1);
    }

    #[test]
    #[should_panic(expected = "0 < ηγ < 1")]
    fn rejects_eta_gamma_over_one() {
        strongly_convex_constant_step(1.0, 2.0, 1.0, 10, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Corollary 1 dominates the exact Lemma 4 replay over randomized
        /// (L, η-fraction, k, m, b) cells — the closed form is never below
        /// the recursion it summarizes.
        #[test]
        fn corollary1_dominates_replay_randomized(
            lipschitz in 0.1f64..5.0,
            eta_frac in 0.01f64..1.0,
            k in 1usize..8,
            m in 10usize..300,
            b in 1usize..32,
        ) {
            let beta = 1.0f64;
            let eta = eta_frac * 2.0 / beta;
            let constants = LossConstants { lipschitz, smoothness: beta, strong_convexity: 0.0 };
            let closed = convex_constant_step(lipschitz, eta, k, m, b);
            let exact = replayed(&constants, &StepSize::Constant(eta), k, m, b);
            prop_assert!(
                closed >= exact - 1e-9 * exact.max(1e-12),
                "closed {closed} < replay {exact} at L={lipschitz}, η={eta}, k={k}, m={m}, b={b}"
            );
        }

        /// Lemma 8 dominates the replay at b = 1 for randomized (γ, m, k).
        #[test]
        fn lemma8_dominates_replay_randomized(
            gamma in 0.001f64..0.2,
            m in 20usize..400,
            k in 1usize..6,
        ) {
            let beta = 1.0 + gamma;
            let lipschitz = 1.0 + gamma; // L = 1 + λR with R = 1/λ
            let constants =
                LossConstants { lipschitz, smoothness: beta, strong_convexity: gamma };
            let step = StepSize::StronglyConvex { beta, gamma };
            let closed = strongly_convex_decreasing_step(lipschitz, gamma, m, 1);
            let exact = replayed(&constants, &step, k, m, 1);
            prop_assert!(
                closed >= exact - 1e-9 * exact.max(1e-12),
                "closed {closed} < replay {exact} at γ={gamma}, m={m}, k={k}"
            );
        }

        /// The effective batch divisor is always within a factor 2 of the
        /// nominal b (the balanced-partition guarantee), and exact when b | m.
        #[test]
        fn effective_divisor_near_nominal(m in 1usize..5000, b in 1usize..128) {
            let divisor = effective_batch_divisor(m, b);
            let b_eff = b.min(m);
            prop_assert!(divisor <= b_eff);
            prop_assert!(2 * divisor + 1 >= b_eff, "divisor {divisor} too small for b {b_eff}");
            if m % b_eff == 0 {
                prop_assert_eq!(divisor, b_eff);
            }
        }
    }
}

//! Objective perturbation (Chaudhuri, Monteleoni & Sarwate, JMLR 2011) —
//! the other classical private-ERM style the paper's related work contrasts
//! with (Section 5).
//!
//! Instead of noising the output, CMS11 noises the *objective*: minimize
//!
//! ```text
//! J(w) = (1/m)·Σ ℓ(w; (x_i, y_i)) + (λ/2)‖w‖² + ⟨b, w⟩/m
//! ```
//!
//! with `b` drawn from density `∝ exp(−ε'·‖b‖/2)` and
//! `ε' = ε − 2·ln(1 + c/(mλ))` (adding extra regularization when ε' would
//! be non-positive), where `c` bounds the per-example loss curvature
//! (`c = 1/4` for logistic).
//!
//! **The practical catch the paper calls out** (and the reason bolt-on
//! output perturbation exists): the privacy proof requires releasing the
//! *exact* minimizer, which an SGD solver only approximates — "the privacy
//! guarantees provided by both styles often assume that the exact convex
//! minimizer can be found, which usually does not hold in practice". We
//! implement it faithfully as a baseline and label the output accordingly.

use bolton_linalg::vector;
use bolton_privacy::budget::{Budget, PrivacyError};
use bolton_privacy::mechanisms::sample_unit_sphere;
use bolton_rng::dist::Gamma;
use bolton_rng::Rng;
use bolton_sgd::engine::{run_psgd, Averaging, SamplingScheme, SgdConfig};
use bolton_sgd::loss::{Logistic, Loss};
use bolton_sgd::schedule::StepSize;
use bolton_sgd::TrainSet;

/// Logistic loss with the CMS11 linear perturbation term folded in:
/// per-example `ℓ(w) + (λ/2)‖w‖² + ⟨b, w⟩/m`.
struct PerturbedLogistic {
    inner: Logistic,
    /// The per-example linear term `b/m`.
    linear: Vec<f64>,
    linear_norm: f64,
}

impl Loss for PerturbedLogistic {
    fn value(&self, w: &[f64], x: &[f64], y: f64) -> f64 {
        self.inner.value(w, x, y) + vector::dot(&self.linear, w)
    }

    fn add_gradient(&self, w: &[f64], x: &[f64], y: f64, grad: &mut [f64]) {
        self.inner.add_gradient(w, x, y, grad);
        vector::axpy(1.0, &self.linear, grad);
    }

    fn lipschitz(&self) -> f64 {
        self.inner.lipschitz() + self.linear_norm
    }

    fn smoothness(&self) -> f64 {
        self.inner.smoothness()
    }

    fn strong_convexity(&self) -> f64 {
        self.inner.strong_convexity()
    }

    fn lambda(&self) -> f64 {
        self.inner.lambda()
    }

    fn name(&self) -> &'static str {
        "logistic+objective-noise"
    }
}

/// Configuration for CMS11 objective-perturbed logistic regression.
#[derive(Clone, Copy, Debug)]
pub struct ObjPertConfig {
    /// Pure ε-DP budget (the classical mechanism is ε-DP).
    pub budget: Budget,
    /// L2-regularization λ (> 0; the mechanism needs strong convexity).
    pub lambda: f64,
    /// Solver passes for the perturbed objective.
    pub passes: usize,
    /// Solver mini-batch size.
    pub batch_size: usize,
}

/// The calibration record of one run.
#[derive(Clone, Copy, Debug)]
pub struct ObjPertCalibration {
    /// The effective `ε' = ε − 2 ln(1 + c/(mλ_total))` used for `b`.
    pub eps_prime: f64,
    /// Extra regularization added when the requested λ was too small for
    /// the requested ε (CMS11's Δ adjustment).
    pub extra_lambda: f64,
}

/// A model released by objective perturbation.
#[derive(Clone, Debug)]
pub struct ObjPertModel {
    /// The released model (the approximate minimizer — see module docs).
    pub model: Vec<f64>,
    /// Calibration details.
    pub calibration: ObjPertCalibration,
}

/// Curvature bound `c` for the logistic loss (`|ℓ''| ≤ 1/4` at `‖x‖ ≤ 1`).
pub const LOGISTIC_CURVATURE: f64 = 0.25;

/// Trains λ-regularized logistic regression with CMS11 objective
/// perturbation, solving the perturbed objective with PSGD.
///
/// # Errors
/// Rejects approximate budgets, non-positive λ, or an empty dataset.
pub fn train_objective_perturbation<D, R>(
    data: &D,
    config: &ObjPertConfig,
    rng: &mut R,
) -> Result<ObjPertModel, PrivacyError>
where
    D: TrainSet + ?Sized,
    R: Rng + ?Sized,
{
    if !config.budget.is_pure() {
        return Err(PrivacyError::InvalidBudget(
            "objective perturbation is an ε-DP mechanism; use a pure budget".into(),
        ));
    }
    if !(config.lambda > 0.0 && config.lambda.is_finite()) {
        return Err(PrivacyError::InvalidMechanism("lambda must be finite and > 0".into()));
    }
    let m = data.len();
    if m == 0 {
        return Err(PrivacyError::InvalidMechanism("empty dataset".into()));
    }
    let d = data.dim();
    let eps = config.budget.eps();

    // CMS11 calibration: ε' = ε − 2 ln(1 + c/(mλ)); if non-positive, add
    // regularization Δ = c/(m(e^{ε/4} − 1)) − λ and use ε' = ε/2.
    let m_f = m as f64;
    let mut lambda = config.lambda;
    let mut extra_lambda = 0.0;
    let mut eps_prime = eps - 2.0 * (1.0 + LOGISTIC_CURVATURE / (m_f * lambda)).ln();
    if eps_prime <= 0.0 {
        extra_lambda = (LOGISTIC_CURVATURE / (m_f * ((eps / 4.0).exp() - 1.0)) - lambda).max(0.0);
        lambda += extra_lambda;
        eps_prime = eps / 2.0;
    }

    // b with density ∝ exp(−ε'‖b‖/2): direction uniform, ‖b‖ ~ Γ(d, 2/ε').
    let mut b = sample_unit_sphere(rng, d);
    let magnitude = Gamma::new(d as f64, 2.0 / eps_prime).sample(rng);
    vector::scale(magnitude, &mut b);
    let linear: Vec<f64> = b.iter().map(|v| v / m_f).collect();
    let linear_norm = vector::norm(&linear);

    let radius = 1.0 / lambda;
    let loss =
        PerturbedLogistic { inner: Logistic::regularized(lambda, radius), linear, linear_norm };
    let step = StepSize::StronglyConvex { beta: loss.smoothness(), gamma: lambda };
    let sgd = SgdConfig::new(step)
        .with_passes(config.passes)
        .with_batch_size(config.batch_size)
        .with_projection(radius)
        .with_averaging(Averaging::Uniform)
        .with_sampling(SamplingScheme::Permutation { fresh_each_pass: false });
    let outcome = run_psgd(data, &loss, &sgd, rng);

    Ok(ObjPertModel {
        model: outcome.model,
        calibration: ObjPertCalibration { eps_prime, extra_lambda },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolton_rng::seeded;
    use bolton_sgd::dataset::InMemoryDataset;
    use bolton_sgd::metrics;

    fn dataset(m: usize, seed: u64) -> InMemoryDataset {
        let mut rng = seeded(seed);
        let mut features = Vec::with_capacity(m * 3);
        let mut labels = Vec::with_capacity(m);
        for _ in 0..m {
            let x0 = rng.next_range(-0.8, 0.8);
            features.extend_from_slice(&[x0, rng.next_range(-0.2, 0.2), 0.1]);
            labels.push(if x0 >= 0.0 { 1.0 } else { -1.0 });
        }
        InMemoryDataset::from_flat(features, labels, 3)
    }

    #[test]
    fn trains_accurate_model_at_moderate_eps() {
        let data = dataset(5000, 601);
        let config = ObjPertConfig {
            budget: Budget::pure(1.0).unwrap(),
            lambda: 1e-2,
            passes: 10,
            batch_size: 10,
        };
        let out = train_objective_perturbation(&data, &config, &mut seeded(602)).unwrap();
        let acc = metrics::accuracy(&out.model, &data);
        assert!(acc > 0.9, "accuracy {acc}");
        assert!(out.calibration.eps_prime > 0.0);
    }

    #[test]
    fn small_eps_triggers_extra_regularization() {
        let data = dataset(200, 603);
        let config = ObjPertConfig {
            budget: Budget::pure(0.01).unwrap(),
            lambda: 1e-5,
            passes: 2,
            batch_size: 1,
        };
        let out = train_objective_perturbation(&data, &config, &mut seeded(604)).unwrap();
        assert!(out.calibration.extra_lambda > 0.0, "Δ adjustment should fire");
        assert!((out.calibration.eps_prime - 0.005).abs() < 1e-12, "ε' = ε/2");
    }

    #[test]
    fn rejects_approx_budget_and_zero_lambda() {
        let data = dataset(100, 605);
        let bad_budget = ObjPertConfig {
            budget: Budget::approx(1.0, 1e-6).unwrap(),
            lambda: 1e-2,
            passes: 1,
            batch_size: 1,
        };
        assert!(train_objective_perturbation(&data, &bad_budget, &mut seeded(606)).is_err());
        let bad_lambda = ObjPertConfig {
            budget: Budget::pure(1.0).unwrap(),
            lambda: 0.0,
            passes: 1,
            batch_size: 1,
        };
        assert!(train_objective_perturbation(&data, &bad_lambda, &mut seeded(607)).is_err());
    }

    #[test]
    fn deterministic_per_seed_and_noise_matters() {
        let data = dataset(400, 608);
        let config = ObjPertConfig {
            budget: Budget::pure(0.5).unwrap(),
            lambda: 1e-2,
            passes: 3,
            batch_size: 5,
        };
        let a = train_objective_perturbation(&data, &config, &mut seeded(7)).unwrap();
        let b = train_objective_perturbation(&data, &config, &mut seeded(7)).unwrap();
        assert_eq!(a.model, b.model);
        let c = train_objective_perturbation(&data, &config, &mut seeded(8)).unwrap();
        assert_ne!(a.model, c.model, "different b draw must change the model");
    }

    /// At generous ε the perturbation is negligible and the model matches
    /// the unperturbed regularized fit closely.
    #[test]
    fn large_eps_approaches_noiseless() {
        let data = dataset(2000, 609);
        let lambda = 1e-2;
        let config = ObjPertConfig {
            budget: Budget::pure(100.0).unwrap(),
            lambda,
            passes: 10,
            batch_size: 10,
        };
        let private = train_objective_perturbation(&data, &config, &mut seeded(610)).unwrap();
        let loss = Logistic::regularized(lambda, 1.0 / lambda);
        let step = StepSize::StronglyConvex { beta: loss.smoothness(), gamma: lambda };
        let sgd = SgdConfig::new(step)
            .with_passes(10)
            .with_batch_size(10)
            .with_projection(1.0 / lambda)
            .with_averaging(Averaging::Uniform);
        let clean = run_psgd(&data, &loss, &sgd, &mut seeded(611));
        let acc_private = metrics::accuracy(&private.model, &data);
        let acc_clean = metrics::accuracy(&clean.model, &data);
        assert!(
            (acc_private - acc_clean).abs() < 0.02,
            "private {acc_private} vs clean {acc_clean}"
        );
    }
}

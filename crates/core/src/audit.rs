//! Empirical privacy auditing: estimate a lower bound on the effective ε
//! of a randomized release by Monte-Carlo hypothesis testing on
//! neighboring datasets — the style of check DP testing frameworks run
//! against mechanism implementations (a buggy mechanism shows
//! `ε̂ ≫ ε_configured`; a correct one stays below).
//!
//! The audit runs the mechanism many times on a fixed pair of neighboring
//! datasets, projects each released model onto a fixed direction (a scalar
//! test statistic — post-processing, so still ε-DP), histograms the two
//! statistic distributions over shared bins, and reports
//!
//! ```text
//! ε̂ = max_bins |ln( P_S(bin) / P_S'(bin) )|
//! ```
//!
//! over bins with enough mass on both sides. This is a *statistical lower
//! bound witness*: ε̂ substantially above the configured ε is evidence of a
//! calibration bug; ε̂ below it proves nothing (no finite test can), which
//! is exactly how the tests here use it.

use bolton_rng::Rng;

/// Audit configuration.
#[derive(Clone, Copy, Debug)]
pub struct AuditConfig {
    /// Monte-Carlo releases per dataset.
    pub trials: usize,
    /// Histogram bins over the pooled statistic range.
    pub bins: usize,
    /// Minimum per-bin count (on both sides) for a bin to vote.
    pub min_count: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self { trials: 2000, bins: 24, min_count: 20 }
    }
}

/// The audit verdict.
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// The empirical ε lower-bound witness.
    pub empirical_eps: f64,
    /// Number of bins that had enough mass to vote.
    pub informative_bins: usize,
    /// Trials run per dataset.
    pub trials: usize,
}

/// Audits a release mechanism: `release(which, rng)` runs the full private
/// pipeline on dataset `S` (`which = false`) or its neighbor `S'`
/// (`which = true`) and returns the released model; `statistic` projects a
/// release to a scalar.
///
/// # Panics
/// Panics on a degenerate configuration (zero trials/bins).
pub fn audit_mechanism<R: Rng + ?Sized>(
    config: &AuditConfig,
    rng: &mut R,
    mut release: impl FnMut(bool, &mut R) -> Vec<f64>,
    statistic: impl Fn(&[f64]) -> f64,
) -> AuditReport {
    assert!(config.trials >= 10, "need at least 10 trials");
    assert!(config.bins >= 2, "need at least 2 bins");

    let mut stats_s = Vec::with_capacity(config.trials);
    let mut stats_n = Vec::with_capacity(config.trials);
    for _ in 0..config.trials {
        stats_s.push(statistic(&release(false, rng)));
        stats_n.push(statistic(&release(true, rng)));
    }

    // Shared binning over the pooled range.
    let lo = stats_s.iter().chain(stats_n.iter()).cloned().fold(f64::INFINITY, f64::min);
    let hi = stats_s.iter().chain(stats_n.iter()).cloned().fold(f64::NEG_INFINITY, f64::max);
    let width = ((hi - lo) / config.bins as f64).max(f64::MIN_POSITIVE);
    let bin_of = |x: f64| (((x - lo) / width) as usize).min(config.bins - 1);

    let mut counts_s = vec![0usize; config.bins];
    let mut counts_n = vec![0usize; config.bins];
    for &x in &stats_s {
        counts_s[bin_of(x)] += 1;
    }
    for &x in &stats_n {
        counts_n[bin_of(x)] += 1;
    }

    let mut empirical_eps = 0.0f64;
    let mut informative = 0usize;
    for (cs, cn) in counts_s.iter().zip(counts_n.iter()) {
        if *cs >= config.min_count && *cn >= config.min_count {
            informative += 1;
            let ratio = (*cs as f64 / *cn as f64).ln().abs();
            empirical_eps = empirical_eps.max(ratio);
        }
    }
    AuditReport { empirical_eps, informative_bins: informative, trials: config.trials }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output_perturbation::{train_private, BoltOnConfig};
    use crate::Budget;
    use bolton_sgd::dataset::InMemoryDataset;
    use bolton_sgd::loss::Logistic;

    fn fixture() -> (InMemoryDataset, InMemoryDataset) {
        let mut rng = bolton_rng::seeded(901);
        use bolton_rng::Rng;
        let m = 120;
        let mut features = Vec::with_capacity(m * 2);
        let mut labels = Vec::with_capacity(m);
        for _ in 0..m {
            let x0 = rng.next_range(-0.9, 0.9);
            features.extend_from_slice(&[x0, 0.3]);
            labels.push(if x0 >= 0.0 { 1.0 } else { -1.0 });
        }
        let data = InMemoryDataset::from_flat(features, labels, 2);
        // Adversarial neighbor: flip one extreme example.
        let neighbor = data.neighbor(0, &[0.9, -0.3], -data.label_of(0));
        (data, neighbor)
    }

    /// A correctly calibrated bolt-on release passes the audit: the
    /// empirical ε witness stays below the configured ε (with slack for
    /// Monte-Carlo error).
    #[test]
    fn calibrated_mechanism_passes_audit() {
        let (data, neighbor) = fixture();
        let loss = Logistic::plain();
        let eps = 1.0;
        let config = BoltOnConfig::new(Budget::pure(eps).unwrap()).with_passes(2);
        let mut rng = bolton_rng::seeded(902);
        let report = audit_mechanism(
            &AuditConfig { trials: 1500, bins: 16, min_count: 25 },
            &mut rng,
            |which, r| {
                let d = if which { &neighbor } else { &data };
                train_private(d, &loss, &config, r).unwrap().model
            },
            |w| w[0],
        );
        assert!(report.informative_bins > 3, "audit needs informative bins");
        assert!(
            report.empirical_eps < eps + 0.6,
            "empirical ε {} should not blow past configured ε {eps}",
            report.empirical_eps
        );
    }

    /// A deliberately *mis*calibrated release (noise 100× too small) is
    /// caught: the witness explodes past the claimed ε.
    #[test]
    fn broken_mechanism_fails_audit() {
        let (data, neighbor) = fixture();
        let loss = Logistic::plain();
        let claimed_eps = 0.05;
        let mut rng = bolton_rng::seeded(903);
        let report = audit_mechanism(
            &AuditConfig { trials: 1200, bins: 12, min_count: 15 },
            &mut rng,
            |which, r| {
                let d = if which { &neighbor } else { &data };
                // BUG under test: train at ε = 100·claimed but claim tiny ε.
                let config =
                    BoltOnConfig::new(Budget::pure(claimed_eps * 100.0).unwrap()).with_passes(2);
                train_private(d, &loss, &config, r).unwrap().model
            },
            |w| w[0],
        );
        assert!(
            report.empirical_eps > claimed_eps * 4.0,
            "audit should catch the 100× undershoot: witness {} vs claimed {claimed_eps}",
            report.empirical_eps
        );
    }

    /// The noiseless release is far more distinguishable than a properly
    /// noised one at small ε. (Interestingly, it is not *infinitely*
    /// distinguishable: the permutation randomness alone blurs the single
    /// differing example — precisely the Hardt–Recht–Singer stability the
    /// paper's analysis formalizes. The audit quantifies the gap.)
    #[test]
    fn noiseless_release_is_more_distinguishable_than_private() {
        let (data, neighbor) = fixture();
        let loss = Logistic::plain();
        // High per-bin mass keeps the Monte-Carlo noise floor of the
        // ln-ratio estimator (≈ √(2/count)) well below the gap under test.
        let audit_cfg = AuditConfig { trials: 6000, bins: 8, min_count: 250 };

        let mut rng = bolton_rng::seeded(904);
        let noiseless = audit_mechanism(
            &audit_cfg,
            &mut rng,
            |which, r| {
                use bolton_sgd::engine::{run_psgd, SgdConfig};
                use bolton_sgd::schedule::StepSize;
                let d = if which { &neighbor } else { &data };
                let config = SgdConfig::new(StepSize::Constant(0.3)).with_passes(2);
                run_psgd(d, &loss, &config, r).model
            },
            |w| w[0],
        );

        let eps = 0.1;
        let bolt = BoltOnConfig::new(Budget::pure(eps).unwrap()).with_passes(2);
        let mut rng = bolton_rng::seeded(905);
        let private = audit_mechanism(
            &audit_cfg,
            &mut rng,
            |which, r| {
                let d = if which { &neighbor } else { &data };
                train_private(d, &loss, &bolt, r).unwrap().model
            },
            |w| w[0],
        );

        assert!(
            noiseless.empirical_eps > 2.5 * private.empirical_eps,
            "noiseless witness {} should dwarf the ε={eps} witness {}",
            noiseless.empirical_eps,
            private.empirical_eps
        );
    }

    #[test]
    #[should_panic(expected = "at least 10 trials")]
    fn degenerate_config_rejected() {
        let mut rng = bolton_rng::seeded(905);
        audit_mechanism(
            &AuditConfig { trials: 1, bins: 4, min_count: 1 },
            &mut rng,
            |_, _| vec![0.0],
            |w| w[0],
        );
    }
}

//! The SCS13 baseline: Song, Chaudhuri & Sarwate, "Stochastic gradient
//! descent with differentially private updates" (GlobalSIP 2013), extended
//! to multiple passes as in the paper's evaluation (Section 4.1).
//!
//! SCS13 is the *white-box* approach: noise calibrated to the mini-batch
//! gradient's sensitivity `2L/b` is added at **every** update. One pass is
//! ε-DP by parallel composition (each example touches exactly one update in
//! a permuted pass); `k` passes compose sequentially, so each pass gets
//! `ε/k` (and `δ/k`). Table 4 assigns it the `1/√t` schedule.

use bolton_privacy::budget::{Budget, PrivacyError};
use bolton_privacy::mechanisms::{GaussianMechanism, LaplaceBallMechanism};
use bolton_rng::Rng;
use bolton_sgd::engine::{run_psgd_with_hook, Averaging, SamplingScheme, SgdConfig};
use bolton_sgd::loss::Loss;
use bolton_sgd::schedule::StepSize;
use bolton_sgd::TrainSet;

/// Configuration for SCS13.
#[derive(Clone, Copy, Debug)]
pub struct Scs13Config {
    /// Total privacy budget across all passes.
    pub budget: Budget,
    /// Number of passes `k`.
    pub passes: usize,
    /// Mini-batch size `b`.
    pub batch_size: usize,
    /// Projection radius (the paper uses `R = 1/λ` when regularized).
    pub projection_radius: Option<f64>,
}

impl Scs13Config {
    /// A 1-pass, batch-1 configuration.
    pub fn new(budget: Budget) -> Self {
        Self { budget, passes: 1, batch_size: 1, projection_radius: None }
    }

    /// Sets the number of passes.
    pub fn with_passes(mut self, k: usize) -> Self {
        self.passes = k;
        self
    }

    /// Sets the mini-batch size.
    pub fn with_batch_size(mut self, b: usize) -> Self {
        self.batch_size = b;
        self
    }

    /// Enables projected SGD.
    pub fn with_projection(mut self, r: f64) -> Self {
        self.projection_radius = Some(r);
        self
    }
}

/// The result of an SCS13 run.
#[derive(Clone, Debug)]
pub struct Scs13Model {
    /// The released model.
    pub model: Vec<f64>,
    /// Updates performed (= noise draws).
    pub updates: u64,
    /// The per-update gradient sensitivity `2L/b` used for calibration.
    pub per_update_sensitivity: f64,
}

/// Trains with SCS13.
///
/// # Errors
/// Propagates budget/mechanism validation errors.
///
/// # Panics
/// Panics on an empty dataset.
pub fn train_scs13<D, R>(
    data: &D,
    loss: &dyn Loss,
    config: &Scs13Config,
    rng: &mut R,
) -> Result<Scs13Model, PrivacyError>
where
    D: TrainSet + ?Sized,
    R: Rng + ?Sized,
{
    let m = data.len();
    assert!(m > 0, "training set must be non-empty");
    let dim = data.dim();
    // Per-pass budget by sequential composition over k passes.
    let per_pass = config.budget.split_even(config.passes);
    // Replacing one example changes the mean batch gradient by at most 2L/b.
    let grad_sensitivity = 2.0 * loss.lipschitz() / config.batch_size as f64;

    enum PerStep {
        Laplace(LaplaceBallMechanism),
        Gauss(GaussianMechanism),
    }
    let mechanism = if per_pass.is_pure() {
        PerStep::Laplace(LaplaceBallMechanism::new(dim, grad_sensitivity, per_pass.eps())?)
    } else {
        PerStep::Gauss(GaussianMechanism::new(grad_sensitivity, per_pass.eps(), per_pass.delta())?)
    };

    let mut sgd_config = SgdConfig::new(StepSize::InvSqrtT)
        .with_passes(config.passes)
        .with_batch_size(config.batch_size)
        .with_averaging(Averaging::FinalIterate)
        .with_sampling(SamplingScheme::Permutation { fresh_each_pass: true });
    if let Some(r) = config.projection_radius {
        sgd_config = sgd_config.with_projection(r);
    }

    // Split the RNG: one stream drives the permutations inside the engine,
    // the other the noise inside the hook (the hook's &mut borrow must not
    // alias the engine's).
    let mut noise_rng = rng.fork_stream();
    let outcome = run_psgd_with_hook(data, loss, &sgd_config, rng, |_t, grad| match &mechanism {
        PerStep::Laplace(mech) => mech.perturb(&mut noise_rng, grad),
        PerStep::Gauss(mech) => mech.perturb(&mut noise_rng, grad),
    });

    Ok(Scs13Model {
        model: outcome.model,
        updates: outcome.updates,
        per_update_sensitivity: grad_sensitivity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolton_rng::seeded;
    use bolton_sgd::dataset::InMemoryDataset;
    use bolton_sgd::loss::Logistic;
    use bolton_sgd::metrics;

    fn dataset(m: usize, seed: u64) -> InMemoryDataset {
        let mut rng = seeded(seed);
        let mut features = Vec::with_capacity(m * 2);
        let mut labels = Vec::with_capacity(m);
        for _ in 0..m {
            let x0 = rng.next_range(-0.9, 0.9);
            features.push(x0);
            features.push(rng.next_range(-0.3, 0.3));
            labels.push(if x0 >= 0.0 { 1.0 } else { -1.0 });
        }
        InMemoryDataset::from_flat(features, labels, 2)
    }

    #[test]
    fn scs13_runs_and_counts_updates() {
        let data = dataset(500, 221);
        let loss = Logistic::plain();
        let config =
            Scs13Config::new(Budget::pure(4.0).unwrap()).with_passes(2).with_batch_size(10);
        let out = train_scs13(&data, &loss, &config, &mut seeded(222)).unwrap();
        assert_eq!(out.updates, 100);
        assert_eq!(out.per_update_sensitivity, 0.2);
    }

    #[test]
    fn large_budget_approaches_noiseless_accuracy() {
        let data = dataset(3000, 223);
        let loss = Logistic::plain();
        let config =
            Scs13Config::new(Budget::pure(1000.0).unwrap()).with_passes(3).with_batch_size(50);
        let out = train_scs13(&data, &loss, &config, &mut seeded(224)).unwrap();
        let acc = metrics::accuracy(&out.model, &data);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn small_budget_destroys_accuracy_at_batch_one() {
        // The headline phenomenon: per-update noise at b=1 and small ε is
        // enormous (this is what Figure 4(c) shows for SCS13-like noise).
        let data = dataset(1000, 225);
        let loss = Logistic::plain();
        let config = Scs13Config::new(Budget::pure(0.1).unwrap()).with_passes(5);
        let out = train_scs13(&data, &loss, &config, &mut seeded(226)).unwrap();
        let acc = metrics::accuracy(&out.model, &data);
        assert!(acc < 0.85, "b=1, ε=0.1 should be badly degraded; got {acc}");
    }

    #[test]
    fn gaussian_variant_runs() {
        let data = dataset(400, 227);
        let loss = Logistic::plain();
        let config =
            Scs13Config::new(Budget::approx(1.0, 1e-6).unwrap()).with_passes(2).with_batch_size(20);
        let out = train_scs13(&data, &loss, &config, &mut seeded(228)).unwrap();
        assert_eq!(out.updates, 40);
    }

    #[test]
    fn projection_respected() {
        let data = dataset(200, 229);
        let lambda = 0.01;
        let loss = Logistic::regularized(lambda, 1.0 / lambda);
        let config = Scs13Config::new(Budget::pure(0.5).unwrap())
            .with_passes(2)
            .with_projection(1.0 / lambda);
        let out = train_scs13(&data, &loss, &config, &mut seeded(230)).unwrap();
        assert!(bolton_linalg::vector::norm(&out.model) <= 1.0 / lambda + 1e-9);
    }

    #[test]
    fn deterministic_under_seed() {
        let data = dataset(100, 231);
        let loss = Logistic::plain();
        let config = Scs13Config::new(Budget::pure(1.0).unwrap()).with_passes(2);
        let a = train_scs13(&data, &loss, &config, &mut seeded(7)).unwrap();
        let b = train_scs13(&data, &loss, &config, &mut seeded(7)).unwrap();
        assert_eq!(a.model, b.model);
    }
}

//! A unified high-level API over the four training algorithms the paper
//! evaluates (Noiseless, ours, SCS13, BST14) — the entry point the examples
//! and the benchmark harness use, so every experiment cell is a [`TrainPlan`].
//!
//! Swapping algorithms on the same data is one enum away:
//!
//! ```
//! use bolton::api::{AlgorithmKind, LossKind, TrainPlan};
//! use bolton::Budget;
//! use bolton_sgd::dataset::InMemoryDataset;
//!
//! let data = InMemoryDataset::from_flat(
//!     vec![0.8, 0.0, -0.6, 0.3, 0.5, -0.2, -0.9, 0.1],
//!     vec![1.0, -1.0, 1.0, -1.0],
//!     2,
//! );
//! // δ > 0 so BST14 (which needs an approximate budget) is accepted too.
//! let budget = Budget::approx(1.0, 1e-6).unwrap();
//! for alg in [
//!     AlgorithmKind::Noiseless,
//!     AlgorithmKind::BoltOn,
//!     AlgorithmKind::Scs13,
//!     AlgorithmKind::Bst14,
//! ] {
//!     let plan = TrainPlan::new(LossKind::Logistic { lambda: 1e-2 }, alg, Some(budget))
//!         .with_passes(3)
//!         .with_batch_size(2);
//!     let model = plan.train(&data, &mut bolton_rng::seeded(7)).unwrap();
//!     assert!(model.iter().all(|w| w.is_finite()), "{}", alg.label());
//! }
//! ```

use crate::bst14::{train_bst14, Bst14Config};
use crate::output_perturbation::{train_private, BoltOnConfig, SensitivityMode};
use crate::scs13::{train_scs13, Scs13Config};
use bolton_privacy::budget::{Budget, PrivacyError};
use bolton_rng::Rng;
use bolton_sgd::engine::{run_psgd, Averaging, SamplingScheme, SgdConfig};
use bolton_sgd::loss::{HuberSvm, LeastSquares, Logistic, Loss};
use bolton_sgd::schedule::StepSize;
use bolton_sgd::TrainSet;

/// Which loss to fit. For λ > 0 the hypothesis space is the ball
/// `R = 1/λ` (the paper's numeric-stability convention, Section 4.1) and
/// the loss is γ = λ strongly convex; λ = 0 is the unconstrained convex
/// case.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LossKind {
    /// (L2-regularized) logistic regression — the paper's main model.
    Logistic {
        /// Regularization λ (0 ⇒ convex test).
        lambda: f64,
    },
    /// Huber SVM with half-width `h` (paper uses 0.1) — Appendix B.
    HuberSvm {
        /// Smoothing half-width.
        h: f64,
        /// Regularization λ.
        lambda: f64,
    },
    /// Least squares over the ball of the given radius.
    LeastSquares {
        /// Regularization λ.
        lambda: f64,
        /// Hypothesis radius (required even at λ = 0).
        radius: f64,
    },
}

impl LossKind {
    /// Instantiates the loss and its hypothesis radius (`None` for the
    /// unconstrained convex cases).
    pub fn build(&self) -> (Box<dyn Loss>, Option<f64>) {
        match *self {
            LossKind::Logistic { lambda } => {
                if lambda > 0.0 {
                    let r = 1.0 / lambda;
                    (Box::new(Logistic::regularized(lambda, r)), Some(r))
                } else {
                    (Box::new(Logistic::plain()), None)
                }
            }
            LossKind::HuberSvm { h, lambda } => {
                if lambda > 0.0 {
                    let r = 1.0 / lambda;
                    (Box::new(HuberSvm::regularized(h, lambda, r)), Some(r))
                } else {
                    (Box::new(HuberSvm::plain(h)), None)
                }
            }
            LossKind::LeastSquares { lambda, radius } => {
                (Box::new(LeastSquares::regularized(lambda, radius)), Some(radius))
            }
        }
    }

    /// Whether this instance is the strongly convex test case.
    pub fn is_strongly_convex(&self) -> bool {
        match *self {
            LossKind::Logistic { lambda }
            | LossKind::HuberSvm { lambda, .. }
            | LossKind::LeastSquares { lambda, .. } => lambda > 0.0,
        }
    }
}

/// Which algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// Regular PSGD, no privacy — the accuracy ceiling in every figure.
    Noiseless,
    /// Our bolt-on output perturbation (Algorithms 1/2).
    BoltOn,
    /// Per-iteration noise, SCS13.
    Scs13,
    /// Constant-epoch BST14 (Algorithms 4/5); requires δ > 0.
    Bst14,
    /// CMS11 objective perturbation (extension beyond the paper's
    /// evaluation; its related work, Section 5). ε-DP, logistic with λ > 0
    /// only.
    ObjectivePerturbation,
}

impl AlgorithmKind {
    /// Display name matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            AlgorithmKind::Noiseless => "Noiseless",
            AlgorithmKind::BoltOn => "Ours",
            AlgorithmKind::Scs13 => "SCS13",
            AlgorithmKind::Bst14 => "BST14",
            AlgorithmKind::ObjectivePerturbation => "ObjPert",
        }
    }
}

/// A fully specified experiment cell.
#[derive(Clone, Copy, Debug)]
pub struct TrainPlan {
    /// Loss / convexity setting.
    pub loss: LossKind,
    /// Algorithm to run.
    pub algorithm: AlgorithmKind,
    /// Privacy budget (ignored by `Noiseless`).
    pub budget: Option<Budget>,
    /// Number of passes `k`.
    pub passes: usize,
    /// Mini-batch size `b`.
    pub batch_size: usize,
    /// Radius override for algorithms that need a ball even at λ = 0
    /// (BST14's constrained step); defaults to 10 when unset.
    pub radius_override: Option<f64>,
    /// Sensitivity calibration for the bolt-on algorithm.
    pub sensitivity_mode: SensitivityMode,
}

impl TrainPlan {
    /// A plan with the paper's defaults (`k = 10`, `b = 50`).
    pub fn new(loss: LossKind, algorithm: AlgorithmKind, budget: Option<Budget>) -> Self {
        Self {
            loss,
            algorithm,
            budget,
            passes: 10,
            batch_size: 50,
            radius_override: None,
            sensitivity_mode: SensitivityMode::PaperFormula,
        }
    }

    /// Sets the number of passes.
    pub fn with_passes(mut self, k: usize) -> Self {
        self.passes = k;
        self
    }

    /// Sets the mini-batch size.
    pub fn with_batch_size(mut self, b: usize) -> Self {
        self.batch_size = b;
        self
    }

    /// Overrides the fallback radius used when the loss is unconstrained.
    pub fn with_radius(mut self, r: f64) -> Self {
        self.radius_override = Some(r);
        self
    }

    fn budget(&self) -> Result<Budget, PrivacyError> {
        self.budget.ok_or_else(|| {
            PrivacyError::InvalidBudget(format!(
                "{} requires a privacy budget",
                self.algorithm.label()
            ))
        })
    }

    fn fallback_radius(&self, natural: Option<f64>) -> f64 {
        self.radius_override.or(natural).unwrap_or(10.0)
    }

    /// Trains per the plan. The returned vector is the released model.
    ///
    /// # Errors
    /// Propagates budget/mechanism validation failures.
    pub fn train<D, R>(&self, data: &D, rng: &mut R) -> Result<Vec<f64>, PrivacyError>
    where
        D: TrainSet + ?Sized,
        R: Rng + ?Sized,
    {
        let (loss, natural_radius) = self.loss.build();
        let loss = loss.as_ref();
        match self.algorithm {
            AlgorithmKind::Noiseless => {
                // Table 4: 1/√m (convex) or 1/(γt) (strongly convex).
                let m = data.len();
                let step = if loss.is_strongly_convex() {
                    StepSize::InvGammaT { gamma: loss.strong_convexity() }
                } else {
                    StepSize::InvSqrtM { m }
                };
                let mut config = SgdConfig::new(step)
                    .with_passes(self.passes)
                    .with_batch_size(self.batch_size)
                    .with_averaging(Averaging::FinalIterate)
                    .with_sampling(SamplingScheme::Permutation { fresh_each_pass: false });
                if let Some(r) = natural_radius {
                    config = config.with_projection(r);
                }
                Ok(run_psgd(data, loss, &config, rng).model)
            }
            AlgorithmKind::BoltOn => {
                let mut config = BoltOnConfig::new(self.budget()?)
                    .with_passes(self.passes)
                    .with_batch_size(self.batch_size)
                    .with_sensitivity_mode(self.sensitivity_mode);
                if let Some(r) = natural_radius {
                    config = config.with_projection(r);
                }
                Ok(train_private(data, loss, &config, rng)?.model)
            }
            AlgorithmKind::Scs13 => {
                let mut config = Scs13Config::new(self.budget()?)
                    .with_passes(self.passes)
                    .with_batch_size(self.batch_size);
                if let Some(r) = natural_radius {
                    config = config.with_projection(r);
                }
                Ok(train_scs13(data, loss, &config, rng)?.model)
            }
            AlgorithmKind::Bst14 => {
                let radius = self.fallback_radius(natural_radius);
                let config = Bst14Config::new(self.budget()?, radius)
                    .with_passes(self.passes)
                    .with_batch_size(self.batch_size);
                Ok(train_bst14(data, loss, &config, rng)?.model)
            }
            AlgorithmKind::ObjectivePerturbation => {
                let lambda = match self.loss {
                    LossKind::Logistic { lambda } if lambda > 0.0 => lambda,
                    other => {
                        return Err(PrivacyError::InvalidMechanism(format!(
                            "objective perturbation supports regularized logistic \
                             regression only, got {other:?}"
                        )))
                    }
                };
                let config = crate::objective_perturbation::ObjPertConfig {
                    budget: self.budget()?,
                    lambda,
                    passes: self.passes,
                    batch_size: self.batch_size,
                };
                Ok(crate::objective_perturbation::train_objective_perturbation(data, &config, rng)?
                    .model)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolton_rng::seeded;
    use bolton_sgd::dataset::InMemoryDataset;
    use bolton_sgd::metrics;

    fn dataset(m: usize, seed: u64) -> InMemoryDataset {
        let mut rng = seeded(seed);
        let mut features = Vec::with_capacity(m * 2);
        let mut labels = Vec::with_capacity(m);
        for _ in 0..m {
            let x0 = rng.next_range(-0.9, 0.9);
            features.push(x0);
            features.push(rng.next_range(-0.3, 0.3));
            labels.push(if x0 >= 0.0 { 1.0 } else { -1.0 });
        }
        InMemoryDataset::from_flat(features, labels, 2)
    }

    #[test]
    fn all_four_algorithms_train_convex() {
        let data = dataset(1500, 271);
        let budget = Budget::approx(2.0, 1e-6).unwrap();
        for alg in [
            AlgorithmKind::Noiseless,
            AlgorithmKind::BoltOn,
            AlgorithmKind::Scs13,
            AlgorithmKind::Bst14,
        ] {
            let plan = TrainPlan::new(LossKind::Logistic { lambda: 0.0 }, alg, Some(budget));
            let model = plan.train(&data, &mut seeded(272)).unwrap();
            assert_eq!(model.len(), 2, "{}", alg.label());
            assert!(model.iter().all(|v| v.is_finite()), "{}", alg.label());
        }
    }

    #[test]
    fn all_four_algorithms_train_strongly_convex() {
        let data = dataset(1500, 273);
        let budget = Budget::approx(2.0, 1e-6).unwrap();
        for alg in [
            AlgorithmKind::Noiseless,
            AlgorithmKind::BoltOn,
            AlgorithmKind::Scs13,
            AlgorithmKind::Bst14,
        ] {
            let plan = TrainPlan::new(LossKind::Logistic { lambda: 1e-3 }, alg, Some(budget));
            let model = plan.train(&data, &mut seeded(274)).unwrap();
            assert!(model.iter().all(|v| v.is_finite()), "{}", alg.label());
        }
    }

    #[test]
    fn noiseless_needs_no_budget_private_does() {
        let data = dataset(100, 275);
        let loss = LossKind::Logistic { lambda: 0.0 };
        assert!(TrainPlan::new(loss, AlgorithmKind::Noiseless, None)
            .train(&data, &mut seeded(276))
            .is_ok());
        assert!(TrainPlan::new(loss, AlgorithmKind::BoltOn, None)
            .train(&data, &mut seeded(277))
            .is_err());
    }

    #[test]
    fn bst14_rejects_pure_budget() {
        let data = dataset(100, 278);
        let plan = TrainPlan::new(
            LossKind::Logistic { lambda: 0.0 },
            AlgorithmKind::Bst14,
            Some(Budget::pure(1.0).unwrap()),
        );
        assert!(plan.train(&data, &mut seeded(279)).is_err());
    }

    #[test]
    fn headline_result_ours_beats_baselines_at_small_eps() {
        // The paper's central empirical claim (Figures 3/6): at small ε our
        // bolt-on models are substantially more accurate than SCS13/BST14.
        // Averaged over seeds to keep the assertion stable.
        let data = dataset(4000, 280);
        let test = dataset(1000, 281);
        let budget = Budget::approx(0.2, 1e-6).unwrap();
        let loss = LossKind::Logistic { lambda: 1e-3 };
        let mean_acc = |alg: AlgorithmKind| {
            let plan = TrainPlan::new(loss, alg, Some(budget)).with_passes(5).with_batch_size(50);
            let mut total = 0.0;
            let trials = 7;
            for s in 0..trials {
                let model = plan.train(&data, &mut seeded(282 + s)).unwrap();
                total += metrics::accuracy(&model, &test);
            }
            total / trials as f64
        };
        let ours = mean_acc(AlgorithmKind::BoltOn);
        let scs = mean_acc(AlgorithmKind::Scs13);
        let bst = mean_acc(AlgorithmKind::Bst14);
        let noiseless = mean_acc(AlgorithmKind::Noiseless);
        assert!(ours > scs, "ours {ours} vs SCS13 {scs}");
        assert!(ours > bst - 0.02, "ours {ours} vs BST14 {bst}");
        assert!(noiseless >= ours - 0.05, "noiseless {noiseless} vs ours {ours}");
    }

    #[test]
    fn huber_and_least_squares_build() {
        let data = dataset(500, 283);
        for loss in [
            LossKind::HuberSvm { h: 0.1, lambda: 0.0 },
            LossKind::HuberSvm { h: 0.1, lambda: 1e-3 },
            LossKind::LeastSquares { lambda: 1e-3, radius: 5.0 },
        ] {
            let plan =
                TrainPlan::new(loss, AlgorithmKind::BoltOn, Some(Budget::pure(1.0).unwrap()));
            assert!(plan.train(&data, &mut seeded(284)).is_ok(), "{loss:?}");
        }
    }

    #[test]
    fn objective_perturbation_through_the_plan() {
        let data = dataset(1500, 285);
        let good = TrainPlan::new(
            LossKind::Logistic { lambda: 1e-2 },
            AlgorithmKind::ObjectivePerturbation,
            Some(Budget::pure(1.0).unwrap()),
        );
        let model = good.train(&data, &mut seeded(286)).unwrap();
        assert!(metrics::accuracy(&model, &data) > 0.85);
        // Convex (λ = 0) and approximate budgets are rejected.
        let convex = TrainPlan::new(
            LossKind::Logistic { lambda: 0.0 },
            AlgorithmKind::ObjectivePerturbation,
            Some(Budget::pure(1.0).unwrap()),
        );
        assert!(convex.train(&data, &mut seeded(287)).is_err());
        let approx = TrainPlan::new(
            LossKind::Logistic { lambda: 1e-2 },
            AlgorithmKind::ObjectivePerturbation,
            Some(Budget::approx(1.0, 1e-6).unwrap()),
        );
        assert!(approx.train(&data, &mut seeded(288)).is_err());
    }

    #[test]
    fn loss_kind_radius_convention() {
        let (loss, radius) = LossKind::Logistic { lambda: 0.01 }.build();
        assert_eq!(radius, Some(100.0));
        assert!(loss.is_strongly_convex());
        let (loss, radius) = LossKind::Logistic { lambda: 0.0 }.build();
        assert_eq!(radius, None);
        assert!(!loss.is_strongly_convex());
    }
}

//! One-vs-all multiclass classification with an evenly split privacy budget
//! — the paper's MNIST treatment (Section 4.3: "we built one-vs-all
//! multiclass logistic regression models ... and divide the privacy budget
//! evenly" using basic composition).

use bolton_privacy::accountant::Accountant;
use bolton_privacy::budget::{Budget, PrivacyError};
use bolton_rng::Rng;
use bolton_sgd::dataset::TrainSet;
use bolton_sgd::metrics::score;

/// A zero-copy view over a multiclass dataset (labels are class indices
/// `0, 1, …, C−1`) that exposes the binary ±1 problem "class `c` vs rest".
pub struct OneVsRestView<'a, D: TrainSet + ?Sized> {
    base: &'a D,
    positive_class: f64,
}

impl<'a, D: TrainSet + ?Sized> OneVsRestView<'a, D> {
    /// Wraps `base`, relabeling `positive_class` to +1 and the rest to −1.
    pub fn new(base: &'a D, positive_class: usize) -> Self {
        Self { base, positive_class: positive_class as f64 }
    }
}

impl<D: TrainSet + ?Sized> TrainSet for OneVsRestView<'_, D> {
    fn len(&self) -> usize {
        self.base.len()
    }

    fn dim(&self) -> usize {
        self.base.dim()
    }

    fn scan_order(&self, order: &[usize], visit: &mut dyn FnMut(usize, &[f64], f64)) {
        let positive = self.positive_class;
        self.base.scan_order(order, &mut |pos, x, y| {
            visit(pos, x, if y == positive { 1.0 } else { -1.0 });
        });
    }
}

/// A trained one-vs-all classifier: one linear model per class.
#[derive(Clone, Debug)]
pub struct MulticlassModel {
    /// `models[c]` scores class `c`.
    pub models: Vec<Vec<f64>>,
}

impl MulticlassModel {
    /// Predicts the class with the highest linear score.
    ///
    /// # Panics
    /// Panics if the model is empty.
    pub fn predict(&self, x: &[f64]) -> usize {
        assert!(!self.models.is_empty(), "no class models");
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (c, w) in self.models.iter().enumerate() {
            let s = score(w, x);
            if s > best_score {
                best_score = s;
                best = c;
            }
        }
        best
    }

    /// Multiclass accuracy on a dataset whose labels are class indices.
    pub fn accuracy<D: TrainSet + ?Sized>(&self, data: &D) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let mut correct = 0usize;
        data.scan(&mut |_, x, y| {
            if self.predict(x) == y as usize {
                correct += 1;
            }
        });
        correct as f64 / data.len() as f64
    }
}

/// Trains `n_classes` binary models one-vs-all, splitting `total_budget`
/// evenly (basic composition) and accounting every charge.
///
/// `train_binary(view, per_class_budget, rng)` fits one ±1 model.
///
/// # Errors
/// Propagates trainer errors and (impossible by construction, but checked)
/// accountant overdrafts.
pub fn train_one_vs_all<D, R, F>(
    data: &D,
    n_classes: usize,
    total_budget: Budget,
    mut train_binary: F,
    rng: &mut R,
) -> Result<MulticlassModel, PrivacyError>
where
    D: TrainSet + ?Sized,
    R: Rng + ?Sized,
    F: FnMut(&OneVsRestView<'_, D>, Budget, &mut R) -> Result<Vec<f64>, PrivacyError>,
{
    assert!(n_classes >= 2, "need at least two classes");
    let per_class = total_budget.split_even(n_classes);
    let mut accountant = Accountant::new(total_budget);
    let mut models = Vec::with_capacity(n_classes);
    for class in 0..n_classes {
        accountant.charge(format!("ova-class-{class}"), per_class)?;
        let view = OneVsRestView::new(data, class);
        models.push(train_binary(&view, per_class, rng)?);
    }
    Ok(MulticlassModel { models })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolton_rng::seeded;
    use bolton_sgd::dataset::InMemoryDataset;

    /// Three well-separated clusters in 2-D, labels 0/1/2.
    fn clusters(m: usize, seed: u64) -> InMemoryDataset {
        let centers = [(0.8, 0.0), (-0.4, 0.7), (-0.4, -0.7)];
        let mut rng = seeded(seed);
        let mut features = Vec::with_capacity(m * 2);
        let mut labels = Vec::with_capacity(m);
        for i in 0..m {
            let c = i % 3;
            features.push(centers[c].0 + rng.next_range(-0.15, 0.15));
            features.push(centers[c].1 + rng.next_range(-0.15, 0.15));
            labels.push(c as f64);
        }
        InMemoryDataset::from_flat(features, labels, 2)
    }

    #[test]
    fn view_relabels_correctly() {
        let data = clusters(30, 261);
        let view = OneVsRestView::new(&data, 1);
        let mut plus = 0;
        let mut minus = 0;
        view.scan(&mut |_, _, y| {
            assert!(y == 1.0 || y == -1.0);
            if y == 1.0 {
                plus += 1;
            } else {
                minus += 1;
            }
        });
        assert_eq!(plus, 10);
        assert_eq!(minus, 20);
    }

    #[test]
    fn one_vs_all_learns_clusters() {
        let data = clusters(600, 262);
        let budget = Budget::pure(30.0).unwrap();
        let mut rng = seeded(263);
        let loss = bolton_sgd::Logistic::plain();
        let model = train_one_vs_all(
            &data,
            3,
            budget,
            |view, b, r| {
                let config = crate::output_perturbation::BoltOnConfig::new(b).with_passes(5);
                Ok(crate::output_perturbation::train_private(view, &loss, &config, r)?.model)
            },
            &mut rng,
        )
        .unwrap();
        let acc = model.accuracy(&data);
        assert!(acc > 0.9, "multiclass accuracy {acc}");
    }

    #[test]
    fn budget_split_is_accounted() {
        // 10 classes at ε=0.4 total: each gets 0.04, exactly exhausting.
        let data = clusters(100, 264);
        let mut calls = Vec::new();
        let model = train_one_vs_all(
            &data,
            10,
            Budget::pure(0.4).unwrap(),
            |_view, b, _r| {
                calls.push(b.eps());
                Ok(vec![0.0, 0.0])
            },
            &mut seeded(265),
        )
        .unwrap();
        assert_eq!(model.models.len(), 10);
        assert_eq!(calls.len(), 10);
        for e in calls {
            assert!((e - 0.04).abs() < 1e-12);
        }
    }

    #[test]
    fn predict_is_argmax() {
        let m = MulticlassModel { models: vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![-1.0, -1.0]] };
        assert_eq!(m.predict(&[1.0, 0.1]), 0);
        assert_eq!(m.predict(&[0.1, 1.0]), 1);
        assert_eq!(m.predict(&[-1.0, -1.0]), 2);
    }

    #[test]
    fn accuracy_on_empty_is_zero() {
        let m = MulticlassModel { models: vec![vec![1.0]] };
        let empty = InMemoryDataset::from_flat(vec![], vec![], 1);
        assert_eq!(m.accuracy(&empty), 0.0);
    }
}

//! Model persistence: a small, versioned, lossless text format for linear
//! and one-vs-all models, so trained (and privately released) models can be
//! shipped to serving systems.
//!
//! Weights are serialized as hexadecimal IEEE-754 bit patterns, so a
//! save/load round trip is bit-exact — important when the artifact is a
//! privately released model whose noise calibration someone may audit.
//!
//! ```text
//! bolton-model v1
//! kind linear
//! dim 3
//! 3ff0000000000000 4000000000000000 c008000000000000
//! ```

use crate::multiclass::MulticlassModel;
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Errors from model (de)serialization.
#[derive(Debug)]
pub enum ModelIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input is not a valid model file.
    Format(String),
}

impl fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelIoError::Io(e) => write!(f, "i/o error: {e}"),
            ModelIoError::Format(msg) => write!(f, "bad model file: {msg}"),
        }
    }
}

impl std::error::Error for ModelIoError {}

impl From<std::io::Error> for ModelIoError {
    fn from(e: std::io::Error) -> Self {
        ModelIoError::Io(e)
    }
}

fn format_err(msg: impl Into<String>) -> ModelIoError {
    ModelIoError::Format(msg.into())
}

const MAGIC: &str = "bolton-model v1";

fn write_weights<W: Write>(out: &mut W, w: &[f64]) -> Result<(), ModelIoError> {
    let mut line = String::with_capacity(w.len() * 17);
    for (i, v) in w.iter().enumerate() {
        if i > 0 {
            line.push(' ');
        }
        line.push_str(&format!("{:016x}", v.to_bits()));
    }
    writeln!(out, "{line}")?;
    Ok(())
}

fn parse_weights(line: &str, dim: usize) -> Result<Vec<f64>, ModelIoError> {
    let parts: Vec<&str> = line.split_whitespace().collect();
    if parts.len() != dim {
        return Err(format_err(format!("expected {dim} weights, found {}", parts.len())));
    }
    parts
        .iter()
        .map(|tok| {
            u64::from_str_radix(tok, 16)
                .map(f64::from_bits)
                .map_err(|e| format_err(format!("bad weight '{tok}': {e}")))
        })
        .collect()
}

/// Saves a binary linear model.
///
/// # Errors
/// I/O failures.
pub fn save_linear<W: Write>(w: &[f64], writer: W) -> Result<(), ModelIoError> {
    let mut out = BufWriter::new(writer);
    writeln!(out, "{MAGIC}")?;
    writeln!(out, "kind linear")?;
    writeln!(out, "dim {}", w.len())?;
    write_weights(&mut out, w)?;
    out.flush()?;
    Ok(())
}

/// Serializes a binary linear model to bytes (the in-memory counterpart of
/// [`save_linear`], for registries that checksum and store the artifact).
pub fn save_linear_to_vec(w: &[f64]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(64 + w.len() * 17);
    save_linear(w, &mut bytes).expect("writing a model to memory cannot fail");
    bytes
}

/// A 64-bit FNV-1a checksum over a serialized model artifact.
///
/// Not cryptographic — it detects torn writes and bit rot in a model
/// registry, where an adversarial collision is not part of the threat
/// model (the registry directory is trusted storage).
pub fn checksum64(bytes: &[u8]) -> u64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET_BASIS;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Saves a one-vs-all multiclass model.
///
/// # Errors
/// I/O failures; rejects an empty model.
pub fn save_multiclass<W: Write>(model: &MulticlassModel, writer: W) -> Result<(), ModelIoError> {
    if model.models.is_empty() {
        return Err(format_err("multiclass model has no classes"));
    }
    let dim = model.models[0].len();
    if model.models.iter().any(|w| w.len() != dim) {
        return Err(format_err("inconsistent class model dimensions"));
    }
    let mut out = BufWriter::new(writer);
    writeln!(out, "{MAGIC}")?;
    writeln!(out, "kind one-vs-all")?;
    writeln!(out, "dim {dim}")?;
    writeln!(out, "classes {}", model.models.len())?;
    for w in &model.models {
        write_weights(&mut out, w)?;
    }
    out.flush()?;
    Ok(())
}

struct HeaderReader<R: Read> {
    lines: std::io::Lines<BufReader<R>>,
}

impl<R: Read> HeaderReader<R> {
    fn new(reader: R) -> Self {
        Self { lines: BufReader::new(reader).lines() }
    }

    fn next_line(&mut self) -> Result<String, ModelIoError> {
        self.lines
            .next()
            .ok_or_else(|| format_err("unexpected end of file"))?
            .map_err(ModelIoError::from)
    }

    fn expect_field(&mut self, key: &str) -> Result<String, ModelIoError> {
        let line = self.next_line()?;
        let (k, v) = line
            .split_once(' ')
            .ok_or_else(|| format_err(format!("expected '{key} <value>', found '{line}'")))?;
        if k != key {
            return Err(format_err(format!("expected field '{key}', found '{k}'")));
        }
        Ok(v.to_string())
    }
}

/// Loads a binary linear model.
///
/// # Errors
/// [`ModelIoError::Format`] on any deviation from the format.
pub fn load_linear<R: Read>(reader: R) -> Result<Vec<f64>, ModelIoError> {
    let mut header = HeaderReader::new(reader);
    if header.next_line()? != MAGIC {
        return Err(format_err("missing magic header"));
    }
    let kind = header.expect_field("kind")?;
    if kind != "linear" {
        return Err(format_err(format!("expected a linear model, found '{kind}'")));
    }
    let dim: usize =
        header.expect_field("dim")?.parse().map_err(|e| format_err(format!("bad dim: {e}")))?;
    if dim == 0 {
        return Err(format_err("dim must be positive"));
    }
    parse_weights(&header.next_line()?, dim)
}

/// Loads a one-vs-all multiclass model.
///
/// # Errors
/// [`ModelIoError::Format`] on any deviation from the format.
pub fn load_multiclass<R: Read>(reader: R) -> Result<MulticlassModel, ModelIoError> {
    let mut header = HeaderReader::new(reader);
    if header.next_line()? != MAGIC {
        return Err(format_err("missing magic header"));
    }
    let kind = header.expect_field("kind")?;
    if kind != "one-vs-all" {
        return Err(format_err(format!("expected a one-vs-all model, found '{kind}'")));
    }
    let dim: usize =
        header.expect_field("dim")?.parse().map_err(|e| format_err(format!("bad dim: {e}")))?;
    let classes: usize = header
        .expect_field("classes")?
        .parse()
        .map_err(|e| format_err(format!("bad class count: {e}")))?;
    if dim == 0 || classes < 2 {
        return Err(format_err("need dim >= 1 and classes >= 2"));
    }
    let mut models = Vec::with_capacity(classes);
    for _ in 0..classes {
        models.push(parse_weights(&header.next_line()?, dim)?);
    }
    Ok(MulticlassModel { models })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_roundtrip_is_bit_exact() {
        let w = vec![1.0, -2.5, f64::MIN_POSITIVE, 1e300, -0.0, std::f64::consts::PI];
        let mut bytes = Vec::new();
        save_linear(&w, &mut bytes).unwrap();
        let back = load_linear(&bytes[..]).unwrap();
        assert_eq!(w.len(), back.len());
        for (a, b) in w.iter().zip(back.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn multiclass_roundtrip() {
        let model =
            MulticlassModel { models: vec![vec![1.0, 2.0], vec![-1.0, 0.5], vec![0.0, -3.25]] };
        let mut bytes = Vec::new();
        save_multiclass(&model, &mut bytes).unwrap();
        let back = load_multiclass(&bytes[..]).unwrap();
        assert_eq!(back.models, model.models);
        assert_eq!(back.predict(&[1.0, 0.0]), model.predict(&[1.0, 0.0]));
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let mut bytes = Vec::new();
        save_linear(&[1.0], &mut bytes).unwrap();
        assert!(matches!(load_multiclass(&bytes[..]), Err(ModelIoError::Format(_))));
        let model = MulticlassModel { models: vec![vec![1.0], vec![2.0]] };
        let mut bytes = Vec::new();
        save_multiclass(&model, &mut bytes).unwrap();
        assert!(matches!(load_linear(&bytes[..]), Err(ModelIoError::Format(_))));
    }

    #[test]
    fn corrupted_inputs_error_cleanly() {
        for text in [
            "",
            "not a model",
            "bolton-model v1\nkind linear\ndim 2\n3ff0000000000000\n", // short row
            "bolton-model v1\nkind linear\ndim 0\n\n",
            "bolton-model v1\nkind linear\ndim 1\nzzzz\n",
            "bolton-model v1\nkind one-vs-all\ndim 1\nclasses 1\n3ff0000000000000\n",
        ] {
            assert!(
                load_linear(text.as_bytes()).is_err() && load_multiclass(text.as_bytes()).is_err(),
                "should reject: {text:?}"
            );
        }
    }

    #[test]
    fn to_vec_matches_writer_and_checksum_is_stable() {
        let w = vec![0.5, -1.25, 1e-300];
        let mut via_writer = Vec::new();
        save_linear(&w, &mut via_writer).unwrap();
        let via_vec = save_linear_to_vec(&w);
        assert_eq!(via_writer, via_vec);
        assert_eq!(load_linear(&via_vec[..]).unwrap(), w);
        // FNV-1a reference values.
        assert_eq!(checksum64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum64(b"a"), 0xaf63_dc4c_8601_ec8c);
        // Any single-bit flip changes the checksum.
        let base = checksum64(&via_vec);
        let mut flipped = via_vec.clone();
        flipped[10] ^= 1;
        assert_ne!(base, checksum64(&flipped));
    }

    #[test]
    fn file_roundtrip() {
        let path = std::env::temp_dir().join(format!("bolton-model-{}.txt", std::process::id()));
        let w = vec![0.25, -0.75];
        save_linear(&w, std::fs::File::create(&path).unwrap()).unwrap();
        let back = load_linear(std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(w, back);
        std::fs::remove_file(&path).unwrap();
    }
}

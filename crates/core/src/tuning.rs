//! Hyper-parameter tuning: the private tuning Algorithm 3 (exponential
//! mechanism over held-out error counts, following Chaudhuri–Monteleoni–
//! Sarwate) and the public-data alternative (Section 4.1).

use bolton_privacy::budget::{Budget, PrivacyError};
use bolton_rng::Rng;
use bolton_sgd::dataset::InMemoryDataset;
use bolton_sgd::metrics;
use bolton_sgd::TrainSet;

/// One point of the tuning grid `θ = (k, b, λ)` (Section 4.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Candidate {
    /// Number of passes `k`.
    pub passes: usize,
    /// Mini-batch size `b`.
    pub batch_size: usize,
    /// L2-regularization λ (0 for the convex tests).
    pub lambda: f64,
}

/// Builds the cross product of the given grids — the paper's "standard grid
/// search" (its Figure 6 uses `k ∈ {5, 10}` × `λ ∈ {1e-4, 1e-3, 1e-2}`).
pub fn grid(passes: &[usize], batch_sizes: &[usize], lambdas: &[f64]) -> Vec<Candidate> {
    let mut out = Vec::with_capacity(passes.len() * batch_sizes.len() * lambdas.len());
    for &k in passes {
        for &b in batch_sizes {
            for &l in lambdas {
                out.push(Candidate { passes: k, batch_size: b, lambda: l });
            }
        }
    }
    out
}

/// A trainer callback: fit a model on `portion` with hyper-parameters
/// `candidate`, consuming randomness from `rng`.
pub type TrainFn<'a> = dyn FnMut(&InMemoryDataset, &Candidate, &mut dyn Rng) -> Vec<f64> + 'a;

/// The outcome of a tuning run.
#[derive(Clone, Debug)]
pub struct Tuned {
    /// The selected model.
    pub model: Vec<f64>,
    /// Index of the winning candidate.
    pub selected: usize,
    /// Held-out error counts `χ_i` per candidate.
    pub error_counts: Vec<usize>,
}

/// The outcome of a generic (model-type-agnostic) tuning run.
#[derive(Clone, Debug)]
pub struct TunedGeneric<M> {
    /// The selected model.
    pub model: M,
    /// Index of the winning candidate.
    pub selected: usize,
    /// Held-out error counts `χ_i` per candidate.
    pub error_counts: Vec<usize>,
}

/// Algorithm 3 generalized over the model type (binary linear models,
/// one-vs-all bundles, …): `train` fits a model on a portion, `errors`
/// counts its holdout misclassifications χ.
///
/// # Errors
/// Rejects an empty grid or a dataset too small to split `l + 1` ways.
pub fn private_tune_models<M>(
    data: &InMemoryDataset,
    candidates: &[Candidate],
    selection_budget: Budget,
    train: &mut dyn FnMut(&InMemoryDataset, &Candidate, &mut dyn Rng) -> M,
    errors: &dyn Fn(&M, &InMemoryDataset) -> usize,
    rng: &mut dyn Rng,
) -> Result<TunedGeneric<M>, PrivacyError> {
    if candidates.is_empty() {
        return Err(PrivacyError::InvalidMechanism("empty candidate grid".into()));
    }
    let parts = candidates.len() + 1;
    if data.len() < parts {
        return Err(PrivacyError::InvalidMechanism(format!(
            "dataset of {} rows cannot be split into {parts} portions",
            data.len()
        )));
    }
    let portions = data.split(parts);
    let holdout = &portions[candidates.len()];

    let mut models = Vec::with_capacity(candidates.len());
    let mut error_counts = Vec::with_capacity(candidates.len());
    for (i, candidate) in candidates.iter().enumerate() {
        let model = train(&portions[i], candidate, rng);
        error_counts.push(errors(&model, holdout));
        models.push(model);
    }

    // Exponential mechanism over utilities u_i = −χ_i (one changed example
    // moves each error count by at most one, so Δu = 1).
    let mechanism = bolton_privacy::ExponentialMechanism::new(selection_budget.eps(), 1.0)?;
    let utilities: Vec<f64> = error_counts.iter().map(|&chi| -(chi as f64)).collect();
    let selected = mechanism.select(rng, &utilities);

    Ok(TunedGeneric { model: models.swap_remove(selected), selected, error_counts })
}

/// Algorithm 3: private hyper-parameter tuning of binary linear models.
///
/// Splits `data` into `l + 1` equal portions, trains candidate `i` on
/// portion `i` (via `train`, which should itself train privately with the
/// intended per-model budget), counts misclassifications `χ_i` on portion
/// `l + 1`, and picks model `i` with probability `∝ exp(−ε·χ_i/2)`.
///
/// # Errors
/// Rejects an empty grid or a dataset too small to split `l + 1` ways.
pub fn private_tune(
    data: &InMemoryDataset,
    candidates: &[Candidate],
    selection_budget: Budget,
    train: &mut TrainFn<'_>,
    rng: &mut dyn Rng,
) -> Result<Tuned, PrivacyError> {
    let generic = private_tune_models(
        data,
        candidates,
        selection_budget,
        train,
        &|model: &Vec<f64>, holdout| metrics::zero_one_errors(model, holdout),
        rng,
    )?;
    Ok(Tuned {
        model: generic.model,
        selected: generic.selected,
        error_counts: generic.error_counts,
    })
}

/// Tuning with public data: train every candidate on `public_train`, score
/// on `public_validation`, and return the index of the best candidate (ties
/// broken toward the earlier candidate). No privacy cost — the paper's
/// Figure 3 setting.
pub fn public_tune(
    public_train: &InMemoryDataset,
    public_validation: &InMemoryDataset,
    candidates: &[Candidate],
    train: &mut TrainFn<'_>,
    rng: &mut dyn Rng,
) -> (usize, Vec<f64>) {
    assert!(!candidates.is_empty(), "empty candidate grid");
    let mut accuracies = Vec::with_capacity(candidates.len());
    for candidate in candidates {
        let model = train(public_train, candidate, rng);
        accuracies.push(metrics::accuracy(&model, public_validation));
    }
    let best = accuracies
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("accuracy is never NaN"))
        .map(|(i, _)| i)
        .expect("non-empty grid");
    (best, accuracies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolton_rng::seeded;

    fn dataset(m: usize, seed: u64) -> InMemoryDataset {
        let mut rng = seeded(seed);
        let mut features = Vec::with_capacity(m * 2);
        let mut labels = Vec::with_capacity(m);
        for _ in 0..m {
            let x0 = rng.next_range(-1.0, 1.0);
            features.push(x0);
            features.push(rng.next_range(-0.2, 0.2));
            labels.push(if x0 >= 0.0 { 1.0 } else { -1.0 });
        }
        InMemoryDataset::from_flat(features, labels, 2)
    }

    #[test]
    fn grid_cross_product() {
        let g = grid(&[5, 10], &[50], &[1e-4, 1e-3, 1e-2]);
        assert_eq!(g.len(), 6);
        assert_eq!(g[0], Candidate { passes: 5, batch_size: 50, lambda: 1e-4 });
        assert_eq!(g[5], Candidate { passes: 10, batch_size: 50, lambda: 1e-2 });
    }

    /// A "trainer" that returns a good model for one magic candidate and a
    /// terrible one otherwise: the mechanism should nearly always pick the
    /// good one at reasonable ε.
    #[test]
    fn private_tune_prefers_low_error_candidates() {
        let data = dataset(900, 251);
        let candidates = grid(&[1, 2, 3], &[1], &[0.0]);
        let mut picks = [0usize; 3];
        for trial in 0..30 {
            let mut rng = seeded(252 + trial);
            let mut train = |_p: &InMemoryDataset, c: &Candidate, _r: &mut dyn Rng| {
                if c.passes == 2 {
                    vec![1.0, 0.0] // perfect direction
                } else {
                    vec![-1.0, 0.0] // inverted
                }
            };
            let tuned =
                private_tune(&data, &candidates, Budget::pure(1.0).unwrap(), &mut train, &mut rng)
                    .unwrap();
            picks[tuned.selected] += 1;
        }
        assert!(picks[1] >= 28, "good candidate picked {}/30", picks[1]);
    }

    #[test]
    fn private_tune_randomizes_under_tiny_eps() {
        // At ε → 0 selection is nearly uniform; the bad candidates must win
        // sometimes.
        let data = dataset(600, 253);
        let candidates = grid(&[1, 2], &[1], &[0.0]);
        let mut bad_picks = 0;
        for trial in 0..200 {
            let mut rng = seeded(300 + trial);
            let mut train = |_p: &InMemoryDataset, c: &Candidate, _r: &mut dyn Rng| {
                if c.passes == 2 {
                    vec![1.0, 0.0]
                } else {
                    vec![-1.0, 0.0]
                }
            };
            let tuned =
                private_tune(&data, &candidates, Budget::pure(1e-4).unwrap(), &mut train, &mut rng)
                    .unwrap();
            if tuned.selected == 0 {
                bad_picks += 1;
            }
        }
        assert!(
            (50..150).contains(&bad_picks),
            "ε≈0 selection should be ≈uniform; bad picked {bad_picks}/200"
        );
    }

    #[test]
    fn private_tune_validates_inputs() {
        let data = dataset(10, 254);
        let mut train = |_p: &InMemoryDataset, _c: &Candidate, _r: &mut dyn Rng| vec![0.0, 0.0];
        let mut rng = seeded(255);
        assert!(private_tune(&data, &[], Budget::pure(1.0).unwrap(), &mut train, &mut rng).is_err());
        let big_grid = grid(&[1, 2, 3, 4, 5, 6], &[1, 2], &[0.0]);
        assert!(private_tune(&data, &big_grid, Budget::pure(1.0).unwrap(), &mut train, &mut rng)
            .is_err());
    }

    #[test]
    fn public_tune_returns_argmax() {
        let train_data = dataset(400, 256);
        let val_data = dataset(200, 257);
        let candidates = grid(&[1, 2, 3], &[1], &[0.0]);
        let mut train = |_p: &InMemoryDataset, c: &Candidate, _r: &mut dyn Rng| match c.passes {
            2 => vec![1.0, 0.0],
            3 => vec![0.5, 0.1],
            _ => vec![-1.0, 0.0],
        };
        let mut rng = seeded(258);
        let (best, accs) = public_tune(&train_data, &val_data, &candidates, &mut train, &mut rng);
        assert_eq!(accs.len(), 3);
        assert!(accs[best] >= accs[0] && accs[best] >= accs[2]);
        assert_eq!(best, 1);
    }

    #[test]
    fn error_counts_reflect_holdout() {
        let data = dataset(500, 259);
        let candidates = grid(&[1], &[1], &[0.0]);
        let mut train = |_p: &InMemoryDataset, _c: &Candidate, _r: &mut dyn Rng| vec![1.0, 0.0];
        let mut rng = seeded(260);
        let tuned =
            private_tune(&data, &candidates, Budget::pure(1.0).unwrap(), &mut train, &mut rng)
                .unwrap();
        // The perfect-direction model should make few errors on the holdout.
        let holdout_size = 500 / 2;
        assert!(tuned.error_counts[0] < holdout_size / 10);
    }
}

#[cfg(test)]
mod generic_tests {
    use super::*;
    use bolton_rng::seeded;

    /// Three tight clusters with class-index labels for the multiclass path.
    fn clusters(m: usize, seed: u64) -> InMemoryDataset {
        let centers = [(0.8, 0.0), (-0.4, 0.7), (-0.4, -0.7)];
        let mut rng = seeded(seed);
        let mut features = Vec::with_capacity(m * 2);
        let mut labels = Vec::with_capacity(m);
        for i in 0..m {
            let c = i % 3;
            features.push(centers[c].0 + rng.next_range(-0.1, 0.1));
            features.push(centers[c].1 + rng.next_range(-0.1, 0.1));
            labels.push(c as f64);
        }
        InMemoryDataset::from_flat(features, labels, 2)
    }

    /// The generic tuner drives a multiclass model type end to end.
    #[test]
    fn generic_tuner_handles_multiclass_models() {
        use crate::multiclass::{MulticlassModel, OneVsRestView};
        let data = clusters(900, 281);
        let candidates = grid(&[2, 5], &[10], &[0.0]);
        let loss = bolton_sgd::Logistic::plain();
        let mut train = |portion: &InMemoryDataset, c: &Candidate, r: &mut dyn Rng| {
            let mut models = Vec::new();
            for class in 0..3 {
                let view = OneVsRestView::new(portion, class);
                let config = bolton_sgd::SgdConfig::new(bolton_sgd::StepSize::Constant(0.5))
                    .with_passes(c.passes)
                    .with_batch_size(c.batch_size);
                models.push(bolton_sgd::run_psgd(&view, &loss, &config, r).model);
            }
            MulticlassModel { models }
        };
        let errors = |model: &MulticlassModel, holdout: &InMemoryDataset| {
            let mut errs = 0usize;
            bolton_sgd::TrainSet::scan(holdout, &mut |_, x, y| {
                if model.predict(x) != y as usize {
                    errs += 1;
                }
            });
            errs
        };
        let mut rng = seeded(282);
        let tuned = private_tune_models(
            &data,
            &candidates,
            Budget::pure(2.0).unwrap(),
            &mut train,
            &errors,
            &mut rng,
        )
        .unwrap();
        assert_eq!(tuned.error_counts.len(), 2);
        let acc = tuned.model.accuracy(&data);
        assert!(acc > 0.9, "tuned multiclass accuracy {acc}");
    }
}

//! Hyper-parameter tuning: the private tuning Algorithm 3 (exponential
//! mechanism over held-out error counts, following Chaudhuri–Monteleoni–
//! Sarwate) and the public-data alternative (Section 4.1).

use bolton_privacy::budget::{Budget, PrivacyError};
use bolton_rng::{Rng, SplitMix64};
use bolton_sgd::dataset::InMemoryDataset;
use bolton_sgd::metrics;
use bolton_sgd::pool::ParallelRunner;
// The splittable-dataset abstraction lives with the datasets themselves
// (re-exported here for source compatibility): `bolton_sgd` implements it
// for the dense and sparse in-memory datasets, and `bolton_data` for the
// file-backed `StoredDataset`, so tuning grids train candidates without
// densifying sparse corpora or materializing out-of-core ones.
pub use bolton_sgd::dataset::TuningData;

/// One point of the tuning grid `θ = (k, b, λ)` (Section 4.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Candidate {
    /// Number of passes `k`.
    pub passes: usize,
    /// Mini-batch size `b`.
    pub batch_size: usize,
    /// L2-regularization λ (0 for the convex tests).
    pub lambda: f64,
}

/// Builds the cross product of the given grids — the paper's "standard grid
/// search" (its Figure 6 uses `k ∈ {5, 10}` × `λ ∈ {1e-4, 1e-3, 1e-2}`).
pub fn grid(passes: &[usize], batch_sizes: &[usize], lambdas: &[f64]) -> Vec<Candidate> {
    let mut out = Vec::with_capacity(passes.len() * batch_sizes.len() * lambdas.len());
    for &k in passes {
        for &b in batch_sizes {
            for &l in lambdas {
                out.push(Candidate { passes: k, batch_size: b, lambda: l });
            }
        }
    }
    out
}

/// A trainer callback: fit a model on `portion` with hyper-parameters
/// `candidate`, consuming randomness from `rng`.
pub type TrainFn<'a> = dyn FnMut(&InMemoryDataset, &Candidate, &mut dyn Rng) -> Vec<f64> + 'a;

/// The outcome of a tuning run.
#[derive(Clone, Debug)]
pub struct Tuned {
    /// The selected model.
    pub model: Vec<f64>,
    /// Index of the winning candidate.
    pub selected: usize,
    /// Held-out error counts `χ_i` per candidate.
    pub error_counts: Vec<usize>,
}

/// The outcome of a generic (model-type-agnostic) tuning run.
#[derive(Clone, Debug)]
pub struct TunedGeneric<M> {
    /// The selected model.
    pub model: M,
    /// Index of the winning candidate.
    pub selected: usize,
    /// Held-out error counts `χ_i` per candidate.
    pub error_counts: Vec<usize>,
}

/// Algorithm 3 generalized over the model type (binary linear models,
/// one-vs-all bundles, …): `train` fits a model on a portion, `errors`
/// counts its holdout misclassifications χ.
///
/// # Errors
/// Rejects an empty grid or a dataset too small to split `l + 1` ways.
pub fn private_tune_models<M>(
    data: &InMemoryDataset,
    candidates: &[Candidate],
    selection_budget: Budget,
    train: &mut dyn FnMut(&InMemoryDataset, &Candidate, &mut dyn Rng) -> M,
    errors: &dyn Fn(&M, &InMemoryDataset) -> usize,
    rng: &mut dyn Rng,
) -> Result<TunedGeneric<M>, PrivacyError> {
    let portions = split_for_grid(data, candidates.len())?;
    let holdout = &portions[candidates.len()];

    let mut models = Vec::with_capacity(candidates.len());
    let mut error_counts = Vec::with_capacity(candidates.len());
    for (i, candidate) in candidates.iter().enumerate() {
        let model = train(&portions[i], candidate, rng);
        error_counts.push(errors(&model, holdout));
        models.push(model);
    }

    select_by_errors(models, error_counts, selection_budget, rng)
}

/// Algorithm 3's data layout, shared by the sequential and pool-parallel
/// tuners: `l + 1` equal portions, one per candidate plus the holdout.
///
/// # Errors
/// Rejects an empty grid or a dataset too small to split `l + 1` ways.
fn split_for_grid<D: TuningData>(data: &D, n_candidates: usize) -> Result<Vec<D>, PrivacyError> {
    if n_candidates == 0 {
        return Err(PrivacyError::InvalidMechanism("empty candidate grid".into()));
    }
    let parts = n_candidates + 1;
    if data.len() < parts {
        return Err(PrivacyError::InvalidMechanism(format!(
            "dataset of {} rows cannot be split into {parts} portions",
            data.len()
        )));
    }
    Ok(data.split_portions(parts))
}

/// Algorithm 3's selection step, shared by the sequential and
/// pool-parallel tuners: the exponential mechanism over utilities
/// `u_i = −χ_i` (one changed example moves each error count by at most
/// one, so Δu = 1).
fn select_by_errors<M>(
    mut models: Vec<M>,
    error_counts: Vec<usize>,
    selection_budget: Budget,
    rng: &mut dyn Rng,
) -> Result<TunedGeneric<M>, PrivacyError> {
    let mechanism = bolton_privacy::ExponentialMechanism::new(selection_budget.eps(), 1.0)?;
    let utilities: Vec<f64> = error_counts.iter().map(|&chi| -(chi as f64)).collect();
    let selected = mechanism.select(rng, &utilities);
    Ok(TunedGeneric { model: models.swap_remove(selected), selected, error_counts })
}

/// A stateless trainer for the pool-parallel tuning paths: unlike
/// [`TrainFn`] it may not share mutable state across candidates, which is
/// exactly what makes grid cells independent tasks. Generic over the
/// dataset type so sparse corpora tune without densifying (`D` defaults to
/// the dense in-memory dataset).
pub type ParTrainFn<'a, M, D = InMemoryDataset> =
    dyn Fn(&D, &Candidate, &mut dyn Rng) -> M + Sync + 'a;

/// Derives candidate `i`'s private RNG stream from `training_seed`. The
/// derivation depends only on `(training_seed, i)`, so results are
/// bit-identical for any pool size or scheduling.
fn candidate_rng(training_seed: u64, i: usize) -> impl Rng {
    let stream = SplitMix64::new(training_seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    bolton_rng::seeded({
        let mut s = stream;
        s.next_u64()
    })
}

/// [`private_tune_models`] with candidate training fanned out over a
/// persistent worker pool: candidate `i` trains on portion `i` and scores
/// the shared holdout as one task, with its randomness derived from
/// `(training_seed, i)`. Only the final exponential-mechanism draw
/// consumes `rng`, so the selection is distributed exactly as in the
/// sequential tuner and the outcome is independent of the pool's thread
/// count and steal order.
///
/// Generic over [`TuningData`], so a [`bolton_sgd::SparseDataset`] grid trains its
/// candidates on sparse portions end-to-end (pair it with a sparse-engine
/// trainer and [`bolton_sgd::metrics::zero_one_errors_sparse`] scoring).
///
/// # Errors
/// Rejects an empty grid or a dataset too small to split `l + 1` ways.
#[allow(clippy::too_many_arguments)] // mirrors Algorithm 3's parameter list
pub fn private_tune_models_parallel<M: Send, D: TuningData>(
    runner: &ParallelRunner<'_>,
    data: &D,
    candidates: &[Candidate],
    selection_budget: Budget,
    train: &ParTrainFn<'_, M, D>,
    errors: &(dyn Fn(&M, &D) -> usize + Sync),
    training_seed: u64,
    rng: &mut dyn Rng,
) -> Result<TunedGeneric<M>, PrivacyError> {
    let portions = split_for_grid(data, candidates.len())?;
    let holdout = &portions[candidates.len()];

    let tasks: Vec<_> = candidates
        .iter()
        .enumerate()
        .map(|(i, candidate)| {
            let portion = &portions[i];
            move || {
                let mut rng = candidate_rng(training_seed, i);
                let model = train(portion, candidate, &mut rng);
                let chi = errors(&model, holdout);
                (model, chi)
            }
        })
        .collect();
    let outcomes = runner.run(tasks);

    let (models, error_counts) = outcomes.into_iter().unzip();
    select_by_errors(models, error_counts, selection_budget, rng)
}

/// [`public_tune`] with the grid trained on a persistent worker pool, one
/// task per candidate, randomness derived from `(training_seed, i)`.
/// Returns the winning index and per-candidate validation accuracies;
/// results are independent of the pool's thread count and steal order.
/// Generic over [`TuningData`] like [`private_tune_models_parallel`].
///
/// # Panics
/// Panics if the candidate grid is empty.
pub fn public_tune_parallel<D: TuningData>(
    runner: &ParallelRunner<'_>,
    public_train: &D,
    public_validation: &D,
    candidates: &[Candidate],
    train: &ParTrainFn<'_, Vec<f64>, D>,
    training_seed: u64,
) -> (usize, Vec<f64>) {
    assert!(!candidates.is_empty(), "empty candidate grid");
    let tasks: Vec<_> = candidates
        .iter()
        .enumerate()
        .map(|(i, candidate)| {
            move || {
                let mut rng = candidate_rng(training_seed, i);
                let model = train(public_train, candidate, &mut rng);
                metrics::accuracy(&model, public_validation)
            }
        })
        .collect();
    let accuracies = runner.run(tasks);
    let best = accuracies
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("accuracy is never NaN"))
        .map(|(i, _)| i)
        .expect("non-empty grid");
    (best, accuracies)
}

/// Algorithm 3: private hyper-parameter tuning of binary linear models.
///
/// Splits `data` into `l + 1` equal portions, trains candidate `i` on
/// portion `i` (via `train`, which should itself train privately with the
/// intended per-model budget), counts misclassifications `χ_i` on portion
/// `l + 1`, and picks model `i` with probability `∝ exp(−ε·χ_i/2)`.
///
/// # Errors
/// Rejects an empty grid or a dataset too small to split `l + 1` ways.
pub fn private_tune(
    data: &InMemoryDataset,
    candidates: &[Candidate],
    selection_budget: Budget,
    train: &mut TrainFn<'_>,
    rng: &mut dyn Rng,
) -> Result<Tuned, PrivacyError> {
    let generic = private_tune_models(
        data,
        candidates,
        selection_budget,
        train,
        &|model: &Vec<f64>, holdout| metrics::zero_one_errors(model, holdout),
        rng,
    )?;
    Ok(Tuned {
        model: generic.model,
        selected: generic.selected,
        error_counts: generic.error_counts,
    })
}

/// Tuning with public data: train every candidate on `public_train`, score
/// on `public_validation`, and return the index of the best candidate (ties
/// broken toward the earlier candidate). No privacy cost — the paper's
/// Figure 3 setting.
pub fn public_tune(
    public_train: &InMemoryDataset,
    public_validation: &InMemoryDataset,
    candidates: &[Candidate],
    train: &mut TrainFn<'_>,
    rng: &mut dyn Rng,
) -> (usize, Vec<f64>) {
    assert!(!candidates.is_empty(), "empty candidate grid");
    let mut accuracies = Vec::with_capacity(candidates.len());
    for candidate in candidates {
        let model = train(public_train, candidate, rng);
        accuracies.push(metrics::accuracy(&model, public_validation));
    }
    let best = accuracies
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("accuracy is never NaN"))
        .map(|(i, _)| i)
        .expect("non-empty grid");
    (best, accuracies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolton_rng::seeded;

    fn dataset(m: usize, seed: u64) -> InMemoryDataset {
        let mut rng = seeded(seed);
        let mut features = Vec::with_capacity(m * 2);
        let mut labels = Vec::with_capacity(m);
        for _ in 0..m {
            let x0 = rng.next_range(-1.0, 1.0);
            features.push(x0);
            features.push(rng.next_range(-0.2, 0.2));
            labels.push(if x0 >= 0.0 { 1.0 } else { -1.0 });
        }
        InMemoryDataset::from_flat(features, labels, 2)
    }

    #[test]
    fn grid_cross_product() {
        let g = grid(&[5, 10], &[50], &[1e-4, 1e-3, 1e-2]);
        assert_eq!(g.len(), 6);
        assert_eq!(g[0], Candidate { passes: 5, batch_size: 50, lambda: 1e-4 });
        assert_eq!(g[5], Candidate { passes: 10, batch_size: 50, lambda: 1e-2 });
    }

    /// A "trainer" that returns a good model for one magic candidate and a
    /// terrible one otherwise: the mechanism should nearly always pick the
    /// good one at reasonable ε.
    #[test]
    fn private_tune_prefers_low_error_candidates() {
        let data = dataset(900, 251);
        let candidates = grid(&[1, 2, 3], &[1], &[0.0]);
        let mut picks = [0usize; 3];
        for trial in 0..30 {
            let mut rng = seeded(252 + trial);
            let mut train = |_p: &InMemoryDataset, c: &Candidate, _r: &mut dyn Rng| {
                if c.passes == 2 {
                    vec![1.0, 0.0] // perfect direction
                } else {
                    vec![-1.0, 0.0] // inverted
                }
            };
            let tuned =
                private_tune(&data, &candidates, Budget::pure(1.0).unwrap(), &mut train, &mut rng)
                    .unwrap();
            picks[tuned.selected] += 1;
        }
        assert!(picks[1] >= 28, "good candidate picked {}/30", picks[1]);
    }

    #[test]
    fn private_tune_randomizes_under_tiny_eps() {
        // At ε → 0 selection is nearly uniform; the bad candidates must win
        // sometimes.
        let data = dataset(600, 253);
        let candidates = grid(&[1, 2], &[1], &[0.0]);
        let mut bad_picks = 0;
        for trial in 0..200 {
            let mut rng = seeded(300 + trial);
            let mut train = |_p: &InMemoryDataset, c: &Candidate, _r: &mut dyn Rng| {
                if c.passes == 2 {
                    vec![1.0, 0.0]
                } else {
                    vec![-1.0, 0.0]
                }
            };
            let tuned =
                private_tune(&data, &candidates, Budget::pure(1e-4).unwrap(), &mut train, &mut rng)
                    .unwrap();
            if tuned.selected == 0 {
                bad_picks += 1;
            }
        }
        assert!(
            (50..150).contains(&bad_picks),
            "ε≈0 selection should be ≈uniform; bad picked {bad_picks}/200"
        );
    }

    #[test]
    fn private_tune_validates_inputs() {
        let data = dataset(10, 254);
        let mut train = |_p: &InMemoryDataset, _c: &Candidate, _r: &mut dyn Rng| vec![0.0, 0.0];
        let mut rng = seeded(255);
        assert!(private_tune(&data, &[], Budget::pure(1.0).unwrap(), &mut train, &mut rng).is_err());
        let big_grid = grid(&[1, 2, 3, 4, 5, 6], &[1, 2], &[0.0]);
        assert!(private_tune(&data, &big_grid, Budget::pure(1.0).unwrap(), &mut train, &mut rng)
            .is_err());
    }

    #[test]
    fn public_tune_returns_argmax() {
        let train_data = dataset(400, 256);
        let val_data = dataset(200, 257);
        let candidates = grid(&[1, 2, 3], &[1], &[0.0]);
        let mut train = |_p: &InMemoryDataset, c: &Candidate, _r: &mut dyn Rng| match c.passes {
            2 => vec![1.0, 0.0],
            3 => vec![0.5, 0.1],
            _ => vec![-1.0, 0.0],
        };
        let mut rng = seeded(258);
        let (best, accs) = public_tune(&train_data, &val_data, &candidates, &mut train, &mut rng);
        assert_eq!(accs.len(), 3);
        assert!(accs[best] >= accs[0] && accs[best] >= accs[2]);
        assert_eq!(best, 1);
    }

    #[test]
    fn error_counts_reflect_holdout() {
        let data = dataset(500, 259);
        let candidates = grid(&[1], &[1], &[0.0]);
        let mut train = |_p: &InMemoryDataset, _c: &Candidate, _r: &mut dyn Rng| vec![1.0, 0.0];
        let mut rng = seeded(260);
        let tuned =
            private_tune(&data, &candidates, Budget::pure(1.0).unwrap(), &mut train, &mut rng)
                .unwrap();
        // The perfect-direction model should make few errors on the holdout.
        let holdout_size = 500 / 2;
        assert!(tuned.error_counts[0] < holdout_size / 10);
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use bolton_rng::seeded;
    use bolton_sgd::pool::WorkerPool;

    fn dataset(m: usize, seed: u64) -> InMemoryDataset {
        let mut rng = seeded(seed);
        let mut features = Vec::with_capacity(m * 2);
        let mut labels = Vec::with_capacity(m);
        for _ in 0..m {
            let x0 = rng.next_range(-1.0, 1.0);
            features.push(x0);
            features.push(rng.next_range(-0.2, 0.2));
            labels.push(if x0 >= 0.0 { 1.0 } else { -1.0 });
        }
        InMemoryDataset::from_flat(features, labels, 2)
    }

    /// A real SGD trainer for the grid cells, seeded per candidate by the
    /// tuner itself.
    fn sgd_trainer(portion: &InMemoryDataset, c: &Candidate, rng: &mut dyn Rng) -> Vec<f64> {
        let config = bolton_sgd::SgdConfig::new(bolton_sgd::StepSize::Constant(0.5))
            .with_passes(c.passes)
            .with_batch_size(c.batch_size);
        bolton_sgd::run_psgd(portion, &bolton_sgd::Logistic::plain(), &config, rng).model
    }

    #[test]
    fn parallel_private_tune_prefers_low_error_candidates() {
        let data = dataset(900, 261);
        let candidates = grid(&[1, 2, 3], &[1], &[0.0]);
        let pool = WorkerPool::new(2);
        let mut picks = [0usize; 3];
        for trial in 0..30 {
            let mut rng = seeded(262 + trial);
            let train = |_p: &InMemoryDataset, c: &Candidate, _r: &mut dyn Rng| {
                if c.passes == 2 {
                    vec![1.0, 0.0]
                } else {
                    vec![-1.0, 0.0]
                }
            };
            let tuned = private_tune_models_parallel(
                &pool.runner(),
                &data,
                &candidates,
                Budget::pure(1.0).unwrap(),
                &train,
                &|model: &Vec<f64>, holdout| metrics::zero_one_errors(model, holdout),
                900 + trial,
                &mut rng,
            )
            .unwrap();
            picks[tuned.selected] += 1;
        }
        assert!(picks[1] >= 28, "good candidate picked {}/30", picks[1]);
    }

    /// The tuner's outcome is a function of the seeds only — never of the
    /// pool size executing the grid.
    #[test]
    fn parallel_tune_independent_of_pool_size() {
        let data = dataset(600, 263);
        let candidates = grid(&[1, 2], &[1, 5], &[0.0]);
        let run_with_pool = |threads: usize| {
            let pool = WorkerPool::new(threads);
            let mut rng = seeded(264);
            private_tune_models_parallel(
                &pool.runner(),
                &data,
                &candidates,
                Budget::pure(1.0).unwrap(),
                &sgd_trainer,
                &|model: &Vec<f64>, holdout| metrics::zero_one_errors(model, holdout),
                265,
                &mut rng,
            )
            .unwrap()
        };
        let a = run_with_pool(1);
        for threads in [2, 4] {
            let b = run_with_pool(threads);
            assert_eq!(a.selected, b.selected, "{threads} threads");
            assert_eq!(a.error_counts, b.error_counts, "{threads} threads");
            assert_eq!(a.model, b.model, "{threads} threads");
        }
    }

    #[test]
    fn parallel_public_tune_matches_sequential_argmax() {
        let train_data = dataset(400, 266);
        let val_data = dataset(200, 267);
        let candidates = grid(&[1, 2, 3], &[1], &[0.0]);
        // A deterministic trainer that ignores its RNG, so sequential and
        // parallel tuners see identical models.
        let fixed = |_p: &InMemoryDataset, c: &Candidate, _r: &mut dyn Rng| match c.passes {
            2 => vec![1.0, 0.0],
            3 => vec![0.5, 0.1],
            _ => vec![-1.0, 0.0],
        };
        let pool = WorkerPool::new(3);
        let (best_par, accs_par) =
            public_tune_parallel(&pool.runner(), &train_data, &val_data, &candidates, &fixed, 268);
        let mut train_mut = |p: &InMemoryDataset, c: &Candidate, r: &mut dyn Rng| fixed(p, c, r);
        let (best_seq, accs_seq) =
            public_tune(&train_data, &val_data, &candidates, &mut train_mut, &mut seeded(269));
        assert_eq!(best_par, best_seq);
        assert_eq!(accs_par, accs_seq);
    }

    #[test]
    fn parallel_private_tune_validates_inputs() {
        let data = dataset(10, 270);
        let pool = WorkerPool::new(1);
        let train = |_p: &InMemoryDataset, _c: &Candidate, _r: &mut dyn Rng| vec![0.0, 0.0];
        let errors = |m: &Vec<f64>, h: &InMemoryDataset| metrics::zero_one_errors(m, h);
        let mut rng = seeded(271);
        assert!(private_tune_models_parallel(
            &pool.runner(),
            &data,
            &[],
            Budget::pure(1.0).unwrap(),
            &train,
            &errors,
            272,
            &mut rng,
        )
        .is_err());
        let big_grid = grid(&[1, 2, 3, 4, 5, 6], &[1, 2], &[0.0]);
        assert!(private_tune_models_parallel(
            &pool.runner(),
            &data,
            &big_grid,
            Budget::pure(1.0).unwrap(),
            &train,
            &errors,
            273,
            &mut rng,
        )
        .is_err());
    }
}

#[cfg(test)]
mod sparse_tuning_tests {
    use super::*;
    use bolton_rng::seeded;
    use bolton_sgd::dataset::SparseDataset;
    use bolton_sgd::pool::WorkerPool;
    use bolton_sgd::sparse_engine::run_sparse_psgd;

    fn sparse_pair(m: usize, dim: usize, seed: u64) -> (InMemoryDataset, SparseDataset) {
        bolton_sgd::dataset::sparse_pair_fixture(m, dim, 0.25, seed)
    }

    /// The tuning grid runs end-to-end on sparse portions: candidates
    /// train through the sparse engine and score through the sparse scan —
    /// no densification anywhere — and the outcome matches the dense tuner
    /// at the same seeds (identical error counts and selection).
    #[test]
    fn sparse_grid_matches_dense_grid_without_densifying() {
        let (d, s) = sparse_pair(600, 8, 283);
        let candidates = grid(&[1, 3], &[1, 4], &[0.0]);
        let pool = WorkerPool::new(2);

        let dense_trainer = |p: &InMemoryDataset, c: &Candidate, r: &mut dyn Rng| {
            let config = bolton_sgd::SgdConfig::new(bolton_sgd::StepSize::Constant(0.4))
                .with_passes(c.passes)
                .with_batch_size(c.batch_size);
            bolton_sgd::run_psgd(p, &bolton_sgd::Logistic::plain(), &config, r).model
        };
        let sparse_trainer = |p: &SparseDataset, c: &Candidate, r: &mut dyn Rng| {
            let config = bolton_sgd::SgdConfig::new(bolton_sgd::StepSize::Constant(0.4))
                .with_passes(c.passes)
                .with_batch_size(c.batch_size);
            run_sparse_psgd(p, &bolton_sgd::Logistic::plain(), &config, r).model
        };

        let dense_tuned = private_tune_models_parallel(
            &pool.runner(),
            &d,
            &candidates,
            Budget::pure(1.0).unwrap(),
            &dense_trainer,
            &|model: &Vec<f64>, holdout| metrics::zero_one_errors(model, holdout),
            284,
            &mut seeded(285),
        )
        .unwrap();
        let sparse_tuned = private_tune_models_parallel(
            &pool.runner(),
            &s,
            &candidates,
            Budget::pure(1.0).unwrap(),
            &sparse_trainer,
            &|model: &Vec<f64>, holdout| metrics::zero_one_errors_sparse(model, holdout),
            284,
            &mut seeded(285),
        )
        .unwrap();

        assert_eq!(dense_tuned.error_counts, sparse_tuned.error_counts);
        assert_eq!(dense_tuned.selected, sparse_tuned.selected);
        for (p, q) in dense_tuned.model.iter().zip(sparse_tuned.model.iter()) {
            assert!((p - q).abs() <= 1e-9);
        }
    }

    #[test]
    fn sparse_public_tune_runs_on_sparse_portions() {
        let (_, train_s) = sparse_pair(300, 6, 286);
        let (_, val_s) = sparse_pair(150, 6, 287);
        let candidates = grid(&[1, 2], &[1], &[0.0]);
        let pool = WorkerPool::new(2);
        let trainer = |p: &SparseDataset, c: &Candidate, r: &mut dyn Rng| {
            let config = bolton_sgd::SgdConfig::new(bolton_sgd::StepSize::Constant(0.4))
                .with_passes(c.passes);
            run_sparse_psgd(p, &bolton_sgd::Logistic::plain(), &config, r).model
        };
        let (best, accs) =
            public_tune_parallel(&pool.runner(), &train_s, &val_s, &candidates, &trainer, 288);
        assert_eq!(accs.len(), 2);
        assert!(best < 2);
        assert!(accs.iter().all(|a| (0.0..=1.0).contains(a)));
    }
}

#[cfg(test)]
mod generic_tests {
    use super::*;
    use bolton_rng::seeded;

    /// Three tight clusters with class-index labels for the multiclass path.
    fn clusters(m: usize, seed: u64) -> InMemoryDataset {
        let centers = [(0.8, 0.0), (-0.4, 0.7), (-0.4, -0.7)];
        let mut rng = seeded(seed);
        let mut features = Vec::with_capacity(m * 2);
        let mut labels = Vec::with_capacity(m);
        for i in 0..m {
            let c = i % 3;
            features.push(centers[c].0 + rng.next_range(-0.1, 0.1));
            features.push(centers[c].1 + rng.next_range(-0.1, 0.1));
            labels.push(c as f64);
        }
        InMemoryDataset::from_flat(features, labels, 2)
    }

    /// The generic tuner drives a multiclass model type end to end.
    #[test]
    fn generic_tuner_handles_multiclass_models() {
        use crate::multiclass::{MulticlassModel, OneVsRestView};
        let data = clusters(900, 281);
        let candidates = grid(&[2, 5], &[10], &[0.0]);
        let loss = bolton_sgd::Logistic::plain();
        let mut train = |portion: &InMemoryDataset, c: &Candidate, r: &mut dyn Rng| {
            let mut models = Vec::new();
            for class in 0..3 {
                let view = OneVsRestView::new(portion, class);
                let config = bolton_sgd::SgdConfig::new(bolton_sgd::StepSize::Constant(0.5))
                    .with_passes(c.passes)
                    .with_batch_size(c.batch_size);
                models.push(bolton_sgd::run_psgd(&view, &loss, &config, r).model);
            }
            MulticlassModel { models }
        };
        let errors = |model: &MulticlassModel, holdout: &InMemoryDataset| {
            let mut errs = 0usize;
            bolton_sgd::TrainSet::scan(holdout, &mut |_, x, y| {
                if model.predict(x) != y as usize {
                    errs += 1;
                }
            });
            errs
        };
        let mut rng = seeded(282);
        let tuned = private_tune_models(
            &data,
            &candidates,
            Budget::pure(2.0).unwrap(),
            &mut train,
            &errors,
            &mut rng,
        )
        .unwrap();
        assert_eq!(tuned.error_counts.len(), 2);
        let acc = tuned.model.accuracy(&data);
        assert!(acc > 0.9, "tuned multiclass accuracy {acc}");
    }
}

//! Step-size schedules (paper Table 4 plus Corollaries 2–3).
//!
//! `t` is the 1-based update index (one update per mini-batch). Schedules
//! are pure functions of `t` and fixed constants, so two neighboring runs
//! replay identical step sizes — a premise of the sensitivity analysis.

/// A step-size rule `η_t`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StepSize {
    /// Fixed `η` (Algorithm 1 requires `η ≤ 2/β`).
    Constant(f64),
    /// `1/√m` — the paper's "constant" choice for the convex rows of
    /// Table 4 (non-private and ours).
    InvSqrtM {
        /// Training-set size `m`.
        m: usize,
    },
    /// `1/√t` — SCS13's schedule (all rows of Table 4).
    InvSqrtT,
    /// `2/(β(t + m^c))` — Corollary 2's decreasing schedule.
    Decreasing {
        /// Smoothness constant β of the loss.
        beta: f64,
        /// Training-set size `m`.
        m: usize,
        /// Exponent `c ∈ [0, 1)`.
        c: f64,
    },
    /// `2/(β(√t + m^c))` — Corollary 3's square-root schedule.
    SqrtDecay {
        /// Smoothness constant β of the loss.
        beta: f64,
        /// Training-set size `m`.
        m: usize,
        /// Exponent `c ∈ [0, 1)`.
        c: f64,
    },
    /// `min(1/β, 1/(γt))` — Algorithm 2's strongly convex schedule.
    StronglyConvex {
        /// Smoothness constant β.
        beta: f64,
        /// Strong-convexity modulus γ.
        gamma: f64,
    },
    /// `1/(γt)` — the noiseless strongly convex schedule (Table 4) and
    /// BST14's strongly convex schedule (Algorithm 5 line 12).
    InvGammaT {
        /// Strong-convexity modulus γ.
        gamma: f64,
    },
    /// `2R/(G√t)` — BST14's convex schedule (Algorithm 4 line 12).
    BstConvex {
        /// Hypothesis-space radius R.
        radius: f64,
        /// Gradient-plus-noise scale `G = √(dσ² + b²L²)`.
        g: f64,
    },
}

impl StepSize {
    /// The step size for 1-based update index `t`.
    ///
    /// # Panics
    /// Panics if `t == 0` (updates are 1-based) or the schedule's constants
    /// are invalid (zero β/γ/m where required).
    pub fn eta(&self, t: u64) -> f64 {
        assert!(t >= 1, "update index is 1-based");
        match *self {
            StepSize::Constant(eta) => {
                assert!(eta > 0.0 && eta.is_finite(), "constant step must be positive");
                eta
            }
            StepSize::InvSqrtM { m } => {
                assert!(m > 0, "InvSqrtM requires m > 0");
                1.0 / (m as f64).sqrt()
            }
            StepSize::InvSqrtT => 1.0 / (t as f64).sqrt(),
            StepSize::Decreasing { beta, m, c } => {
                assert!(beta > 0.0 && m > 0 && (0.0..1.0).contains(&c));
                2.0 / (beta * (t as f64 + (m as f64).powf(c)))
            }
            StepSize::SqrtDecay { beta, m, c } => {
                assert!(beta > 0.0 && m > 0 && (0.0..1.0).contains(&c));
                2.0 / (beta * ((t as f64).sqrt() + (m as f64).powf(c)))
            }
            StepSize::StronglyConvex { beta, gamma } => {
                assert!(beta > 0.0 && gamma > 0.0);
                (1.0 / beta).min(1.0 / (gamma * t as f64))
            }
            StepSize::InvGammaT { gamma } => {
                assert!(gamma > 0.0);
                1.0 / (gamma * t as f64)
            }
            StepSize::BstConvex { radius, g } => {
                assert!(radius > 0.0 && g > 0.0);
                2.0 * radius / (g * (t as f64).sqrt())
            }
        }
    }

    /// The largest step the schedule ever takes (its value at `t = 1`);
    /// schedules here are all non-increasing in `t`.
    pub fn max_eta(&self) -> f64 {
        self.eta(1)
    }

    /// Checks Algorithm 1's precondition `η_t ≤ 2/β` for all `t ≥ 1`.
    pub fn respects_convex_bound(&self, beta: f64) -> bool {
        self.max_eta() <= 2.0 / beta + 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_ignores_t() {
        let s = StepSize::Constant(0.05);
        assert_eq!(s.eta(1), 0.05);
        assert_eq!(s.eta(1_000_000), 0.05);
    }

    #[test]
    fn inv_sqrt_m() {
        let s = StepSize::InvSqrtM { m: 10_000 };
        assert!((s.eta(7) - 0.01).abs() < 1e-15);
    }

    #[test]
    fn inv_sqrt_t_decays() {
        let s = StepSize::InvSqrtT;
        assert_eq!(s.eta(1), 1.0);
        assert_eq!(s.eta(4), 0.5);
        assert_eq!(s.eta(100), 0.1);
    }

    #[test]
    fn decreasing_schedule_formula() {
        let s = StepSize::Decreasing { beta: 2.0, m: 100, c: 0.5 };
        // t=1: 2/(2·(1+10)) = 1/11.
        assert!((s.eta(1) - 1.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn sqrt_decay_formula() {
        let s = StepSize::SqrtDecay { beta: 2.0, m: 100, c: 0.5 };
        // t=4: 2/(2·(2+10)) = 1/12.
        assert!((s.eta(4) - 1.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn strongly_convex_caps_at_inv_beta() {
        let s = StepSize::StronglyConvex { beta: 4.0, gamma: 0.01 };
        // Early: 1/(γt) huge, capped at 1/β.
        assert_eq!(s.eta(1), 0.25);
        // Late: 1/(γt) takes over once t > β/γ = 400.
        assert!((s.eta(1000) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn bst_convex_schedule() {
        let s = StepSize::BstConvex { radius: 2.0, g: 8.0 };
        assert!((s.eta(1) - 0.5).abs() < 1e-12);
        assert!((s.eta(4) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn all_schedules_are_non_increasing() {
        let schedules = [
            StepSize::Constant(0.1),
            StepSize::InvSqrtM { m: 50 },
            StepSize::InvSqrtT,
            StepSize::Decreasing { beta: 1.0, m: 50, c: 0.3 },
            StepSize::SqrtDecay { beta: 1.0, m: 50, c: 0.3 },
            StepSize::StronglyConvex { beta: 1.0, gamma: 0.001 },
            StepSize::InvGammaT { gamma: 0.001 },
            StepSize::BstConvex { radius: 1.0, g: 1.0 },
        ];
        for s in schedules {
            let mut prev = s.eta(1);
            for t in 2..200 {
                let cur = s.eta(t);
                assert!(cur <= prev + 1e-15, "{s:?} increased at t={t}");
                prev = cur;
            }
        }
    }

    #[test]
    fn convex_bound_check() {
        assert!(StepSize::Constant(0.5).respects_convex_bound(1.0));
        assert!(!StepSize::Constant(3.0).respects_convex_bound(1.0));
        // 1/√m ≤ 2/β=2 for any m ≥ 1.
        assert!(StepSize::InvSqrtM { m: 1 }.respects_convex_bound(1.0));
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_t_panics() {
        StepSize::InvSqrtT.eta(0);
    }
}

//! Evaluation metrics: classification accuracy, error counts, and empirical
//! risk `L_S(w) = (1/m)·Σ ℓ(w; (x_i, y_i))`.

use crate::dataset::{SparseTrainSet, TrainSet};
use crate::loss::Loss;
use bolton_linalg::vector;

/// The linear score `⟨w, x⟩`.
#[inline]
pub fn score(w: &[f64], x: &[f64]) -> f64 {
    vector::dot(w, x)
}

/// Binary prediction in `{−1, +1}` by the sign of the score (ties → +1).
#[inline]
pub fn predict(w: &[f64], x: &[f64]) -> f64 {
    if score(w, x) >= 0.0 {
        1.0
    } else {
        -1.0
    }
}

/// Number of misclassified examples (`χ` in Algorithm 3, line 4).
pub fn zero_one_errors<D: TrainSet + ?Sized>(w: &[f64], data: &D) -> usize {
    let mut errors = 0usize;
    data.scan(&mut |_, x, y| {
        if predict(w, x) != y {
            errors += 1;
        }
    });
    errors
}

/// Classification accuracy in `[0, 1]`.
pub fn accuracy<D: TrainSet + ?Sized>(w: &[f64], data: &D) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    1.0 - zero_one_errors(w, data) as f64 / data.len() as f64
}

/// Mean training loss `L_S(w)`.
pub fn empirical_risk<D: TrainSet + ?Sized>(loss: &dyn Loss, w: &[f64], data: &D) -> f64 {
    assert!(!data.is_empty(), "empirical risk of empty dataset");
    let mut total = 0.0;
    data.scan(&mut |_, x, y| total += loss.value(w, x, y));
    total / data.len() as f64
}

/// [`zero_one_errors`] over a sparse scan: scores are O(nnz) sparse-dense
/// dot products and no row is densified. The sparse dot reassociates the
/// summation relative to the dense kernel, so a score sitting *exactly* on
/// the decision boundary could in principle flip; real-valued data never
/// does.
pub fn zero_one_errors_sparse<D: SparseTrainSet + ?Sized>(w: &[f64], data: &D) -> usize {
    let mut errors = 0usize;
    data.scan_sparse(&mut |_, x, y| {
        let p = if x.dot_dense(w) >= 0.0 { 1.0 } else { -1.0 };
        if p != y {
            errors += 1;
        }
    });
    errors
}

/// Classification accuracy via the sparse scan.
pub fn accuracy_sparse<D: SparseTrainSet + ?Sized>(w: &[f64], data: &D) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    1.0 - zero_one_errors_sparse(w, data) as f64 / data.len() as f64
}

/// Mean training loss `L_S(w)` via the sparse scan (GLM-form losses only).
///
/// # Panics
/// Panics if the dataset is empty or the loss lacks the GLM form.
pub fn empirical_risk_sparse<D: SparseTrainSet + ?Sized>(
    loss: &dyn Loss,
    w: &[f64],
    data: &D,
) -> f64 {
    assert!(!data.is_empty(), "empirical risk of empty dataset");
    let reg = 0.5 * loss.lambda() * vector::norm_sq(w);
    let mut total = 0.0;
    data.scan_sparse(&mut |_, x, y| {
        let z = x.dot_dense(w);
        total += loss.glm_value(z, y).expect("sparse risk requires a GLM-form loss") + reg;
    });
    total / data.len() as f64
}

/// Confusion counts for a binary problem.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Confusion {
    /// True positives (label +1 predicted +1).
    pub tp: usize,
    /// True negatives.
    pub tn: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Computes the confusion matrix of `w` over `data`.
    pub fn compute<D: TrainSet + ?Sized>(w: &[f64], data: &D) -> Self {
        let mut c = Confusion::default();
        data.scan(&mut |_, x, y| {
            let p = predict(w, x);
            match (y > 0.0, p > 0.0) {
                (true, true) => c.tp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fp += 1,
                (true, false) => c.fn_ += 1,
            }
        });
        c
    }

    /// Accuracy derived from the counts.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.tn + self.fp + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::InMemoryDataset;
    use crate::loss::Logistic;

    fn data() -> InMemoryDataset {
        // Four points on the x-axis labeled by sign.
        InMemoryDataset::from_flat(
            vec![1.0, 0.0, 0.5, 0.0, -1.0, 0.0, -0.5, 0.0],
            vec![1.0, 1.0, -1.0, -1.0],
            2,
        )
    }

    #[test]
    fn perfect_model_has_full_accuracy() {
        let w = [1.0, 0.0];
        assert_eq!(zero_one_errors(&w, &data()), 0);
        assert_eq!(accuracy(&w, &data()), 1.0);
    }

    #[test]
    fn inverted_model_has_zero_accuracy() {
        let w = [-1.0, 0.0];
        // Note: the point at score exactly 0 would tie-break to +1, but all
        // four scores here are nonzero.
        assert_eq!(accuracy(&w, &data()), 0.0);
    }

    #[test]
    fn zero_model_predicts_positive() {
        let w = [0.0, 0.0];
        // Ties go to +1: the two positive examples are right.
        assert_eq!(accuracy(&w, &data()), 0.5);
    }

    #[test]
    fn confusion_counts() {
        let c = Confusion::compute(&[1.0, 0.0], &data());
        assert_eq!(c, Confusion { tp: 2, tn: 2, fp: 0, fn_: 0 });
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn empirical_risk_at_zero_is_ln2() {
        let loss = Logistic::plain();
        let risk = empirical_risk(&loss, &[0.0, 0.0], &data());
        assert!((risk - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn risk_decreases_for_better_model() {
        let loss = Logistic::plain();
        let bad = empirical_risk(&loss, &[0.0, 0.0], &data());
        let good = empirical_risk(&loss, &[2.0, 0.0], &data());
        assert!(good < bad);
    }

    #[test]
    fn sparse_metrics_match_dense_metrics() {
        let d = data();
        let s = crate::dataset::SparseDataset::from_dense(&d);
        let loss = Logistic::regularized(0.01, 10.0);
        for w in [[1.0, 0.0], [-0.5, 0.2], [0.0, 0.0]] {
            assert_eq!(zero_one_errors(&w, &d), zero_one_errors_sparse(&w, &s), "{w:?}");
            assert_eq!(accuracy(&w, &d), accuracy_sparse(&w, &s), "{w:?}");
            let dense_risk = empirical_risk(&loss, &w, &d);
            let sparse_risk = empirical_risk_sparse(&loss, &w, &s);
            assert!((dense_risk - sparse_risk).abs() < 1e-12, "{w:?}");
        }
    }
}

/// Area under the ROC curve of the linear score, by the rank statistic
/// (equivalent to the Mann–Whitney U normalization). Ties in score
/// contribute half. Returns 0.5 for degenerate single-class data.
pub fn auc<D: TrainSet + ?Sized>(w: &[f64], data: &D) -> f64 {
    let mut scored: Vec<(f64, bool)> = Vec::with_capacity(data.len());
    data.scan(&mut |_, x, y| scored.push((score(w, x), y > 0.0)));
    auc_from_scored(scored)
}

/// Accuracy from precomputed scores and labels (the batch-scoring path:
/// score once in parallel, derive every metric from the score vector).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn accuracy_from_scores(scores: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores and labels must align");
    if scores.is_empty() {
        return 0.0;
    }
    let errors = scores
        .iter()
        .zip(labels.iter())
        .filter(|(&s, &y)| (if s >= 0.0 { 1.0 } else { -1.0 }) != y)
        .count();
    1.0 - errors as f64 / scores.len() as f64
}

/// [`auc`] from precomputed scores and labels (labels positive iff > 0).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn auc_from_scores(scores: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores and labels must align");
    let scored: Vec<(f64, bool)> =
        scores.iter().zip(labels.iter()).map(|(&s, &y)| (s, y > 0.0)).collect();
    auc_from_scored(scored)
}

fn auc_from_scored(mut scored: Vec<(f64, bool)>) -> f64 {
    let positives = scored.iter().filter(|(_, p)| *p).count();
    let negatives = scored.len() - positives;
    if positives == 0 || negatives == 0 {
        return 0.5;
    }
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("scores are never NaN"));
    // Sum of positive ranks with midranks for ties.
    let mut rank_sum = 0.0f64;
    let mut i = 0usize;
    while i < scored.len() {
        let mut j = i;
        while j + 1 < scored.len() && scored[j + 1].0 == scored[i].0 {
            j += 1;
        }
        // 1-based midrank of the tie group [i, j].
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for entry in &scored[i..=j] {
            if entry.1 {
                rank_sum += midrank;
            }
        }
        i = j + 1;
    }
    let p = positives as f64;
    let n = negatives as f64;
    (rank_sum - p * (p + 1.0) / 2.0) / (p * n)
}

#[cfg(test)]
mod auc_tests {
    use super::*;
    use crate::dataset::InMemoryDataset;

    fn labeled(points: &[(f64, f64)]) -> InMemoryDataset {
        let features: Vec<f64> = points.iter().map(|(x, _)| *x).collect();
        let labels: Vec<f64> = points.iter().map(|(_, y)| *y).collect();
        InMemoryDataset::from_flat(features, labels, 1)
    }

    #[test]
    fn perfect_separation_is_one() {
        let data = labeled(&[(0.9, 1.0), (0.8, 1.0), (0.1, -1.0), (0.2, -1.0)]);
        assert_eq!(auc(&[1.0], &data), 1.0);
        // Inverted scores: AUC 0.
        assert_eq!(auc(&[-1.0], &data), 0.0);
    }

    #[test]
    fn random_scores_are_half() {
        // All scores identical ⇒ full tie group ⇒ 0.5 exactly.
        let data = labeled(&[(0.5, 1.0), (0.5, -1.0), (0.5, 1.0), (0.5, -1.0)]);
        assert_eq!(auc(&[1.0], &data), 0.5);
    }

    #[test]
    fn hand_computed_case() {
        // Scores: +1 examples at 0.9, 0.4; −1 examples at 0.6, 0.1.
        // Pairs won: (0.9>0.6), (0.9>0.1), (0.4>0.1) = 3 of 4 ⇒ 0.75.
        let data = labeled(&[(0.9, 1.0), (0.4, 1.0), (0.6, -1.0), (0.1, -1.0)]);
        assert_eq!(auc(&[1.0], &data), 0.75);
    }

    #[test]
    fn single_class_degenerates_to_half() {
        let data = labeled(&[(0.9, 1.0), (0.8, 1.0)]);
        assert_eq!(auc(&[1.0], &data), 0.5);
    }

    /// The score-based entry points agree exactly with the scan-based
    /// metrics on the same data (batch scoring must not change results).
    #[test]
    fn from_scores_agrees_with_scans() {
        let points = [(0.9, 1.0), (-0.4, -1.0), (0.2, 1.0), (-0.1, -1.0), (0.2, -1.0)];
        let data = labeled(&points);
        for w in [[1.0], [-0.5], [0.0]] {
            let scores: Vec<f64> = points.iter().map(|(x, _)| w[0] * x).collect();
            let labels: Vec<f64> = points.iter().map(|(_, y)| *y).collect();
            assert_eq!(accuracy_from_scores(&scores, &labels), accuracy(&w, &data), "{w:?}");
            assert_eq!(auc_from_scores(&scores, &labels), auc(&w, &data), "{w:?}");
        }
        assert_eq!(accuracy_from_scores(&[], &[]), 0.0);
        assert_eq!(auc_from_scores(&[], &[]), 0.5);
    }

    #[test]
    fn auc_is_scale_invariant_accuracy_is_not() {
        let data = labeled(&[(0.9, 1.0), (-0.4, -1.0), (0.2, 1.0), (-0.1, -1.0)]);
        let a1 = auc(&[1.0], &data);
        let a2 = auc(&[100.0], &data);
        assert_eq!(a1, a2);
        assert_eq!(a1, 1.0);
    }
}

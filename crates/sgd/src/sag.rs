//! SAG — Stochastic Average Gradient (Le Roux, Schmidt & Bach, NeurIPS
//! 2012), the second variance-reduced method the paper names as
//! non-adaptive (Definition 7's discussion).
//!
//! SAG keeps a table of the most recent gradient per example and updates
//! with the running average:
//!
//! ```text
//! g_i ← ∇ℓ_i(w)            (refresh the sampled example's slot)
//! w   ← Π( w − η·(Σ_j g_j)/m )
//! ```
//!
//! Memory is O(m·d) for general losses. (Linear models admit an O(m)
//! scalar-residual refinement — store only `ℓ'(z_i)` per example — but we
//! keep full gradient vectors for generality and clarity, matching the
//! reference description.)
//!
//! L2 regularization is applied **exactly** via `weight_decay` rather than
//! through the gradient memory: stale `λw` slots otherwise accumulate a
//! systematic drift (pass the *unregularized* loss here).

use crate::dataset::TrainSet;
use crate::engine::SgdOutcome;
use crate::loss::Loss;
use bolton_linalg::vector;
use bolton_rng::{random_permutation, Rng};

/// Configuration for SAG.
#[derive(Clone, Copy, Debug)]
pub struct SagConfig {
    /// Number of passes over the data.
    pub passes: usize,
    /// Constant step size η (SAG's guidance: ≈ 1/(16β)).
    pub step: f64,
    /// Exact L2 weight decay λ (use with an *unregularized* loss).
    pub weight_decay: f64,
    /// Optional projection radius.
    pub projection_radius: Option<f64>,
}

impl SagConfig {
    /// A configuration with the given pass count and step (no decay).
    pub fn new(passes: usize, step: f64) -> Self {
        Self { passes, step, weight_decay: 0.0, projection_radius: None }
    }

    /// Sets the exact L2 weight decay.
    pub fn with_weight_decay(mut self, lambda: f64) -> Self {
        self.weight_decay = lambda;
        self
    }

    /// Enables projected updates.
    pub fn with_projection(mut self, radius: f64) -> Self {
        self.projection_radius = Some(radius);
        self
    }
}

/// Runs SAG with permutation-ordered passes.
///
/// # Panics
/// Panics on an empty dataset or non-positive step.
pub fn run_sag<D, R>(data: &D, loss: &dyn Loss, config: &SagConfig, rng: &mut R) -> SgdOutcome
where
    D: TrainSet + ?Sized,
    R: Rng + ?Sized,
{
    let m = data.len();
    let d = data.dim();
    assert!(m > 0, "training set must be non-empty");
    assert!(config.step > 0.0 && config.step.is_finite(), "step must be positive");
    assert!(config.passes >= 1, "at least one pass");

    let mut w = vec![0.0; d];
    // Gradient memory: one slot per example, plus the running sum.
    let mut table = vec![0.0; m * d];
    let mut seen = vec![false; m];
    let mut seen_count = 0usize;
    let mut grad_sum = vec![0.0; d];
    let mut fresh = vec![0.0; d];
    let mut updates = 0u64;

    for _pass in 0..config.passes {
        let order = random_permutation(rng, m);
        // Positions carry the example id through scan_order.
        data.scan_order(&order, &mut |pos, x, y| {
            let i = order[pos];
            vector::fill_zero(&mut fresh);
            loss.add_gradient(&w, x, y, &mut fresh);
            let slot = &mut table[i * d..(i + 1) * d];
            // grad_sum += fresh − old_slot
            for ((sum, new_g), old_g) in grad_sum.iter_mut().zip(fresh.iter()).zip(slot.iter()) {
                *sum += new_g - old_g;
            }
            slot.copy_from_slice(&fresh);
            if !seen[i] {
                seen[i] = true;
                seen_count += 1;
            }
            // Average over the examples seen so far (the standard SAG
            // warm-up normalization), plus exact weight decay.
            let eta = config.step / seen_count as f64;
            if config.weight_decay > 0.0 {
                vector::scale(1.0 - config.step * config.weight_decay, &mut w);
            }
            vector::axpy(-eta, &grad_sum, &mut w);
            if let Some(r) = config.projection_radius {
                vector::project_l2_ball(&mut w, r);
            }
            updates += 1;
        });
    }

    SgdOutcome { model: w, updates, passes_completed: config.passes, epoch_losses: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::InMemoryDataset;
    use crate::loss::Logistic;
    use crate::metrics;
    use bolton_rng::seeded;

    fn problem(m: usize, seed: u64) -> InMemoryDataset {
        let mut rng = seeded(seed);
        let mut features = Vec::with_capacity(m * 3);
        let mut labels = Vec::with_capacity(m);
        for _ in 0..m {
            let x0 = rng.next_range(-0.8, 0.8);
            features.extend_from_slice(&[x0, rng.next_range(-0.4, 0.4), 0.2]);
            labels.push(if x0 >= 0.0 { 1.0 } else { -1.0 });
        }
        InMemoryDataset::from_flat(features, labels, 3)
    }

    #[test]
    fn sag_learns() {
        let data = problem(800, 711);
        let loss = Logistic::plain();
        let config = SagConfig::new(10, 0.06).with_weight_decay(1e-3).with_projection(1e3);
        let out = run_sag(&data, &loss, &config, &mut seeded(712));
        let acc = metrics::accuracy(&out.model, &data);
        assert!(acc > 0.9, "accuracy {acc}");
        assert_eq!(out.updates, 8000);
    }

    #[test]
    fn sag_converges_lower_than_one_pass() {
        let data = problem(500, 713);
        let loss = Logistic::plain();
        // 1/(16β)-scale step per SAG's guidance.
        let risk_at = |passes: usize| {
            let config = SagConfig::new(passes, 0.06).with_weight_decay(1e-2).with_projection(1e2);
            let out = run_sag(&data, &loss, &config, &mut seeded(714));
            metrics::empirical_risk(&loss, &out.model, &data)
        };
        assert!(risk_at(10) + 0.001 < risk_at(1), "more passes should reduce risk");
    }

    #[test]
    fn deterministic_per_seed() {
        let data = problem(200, 715);
        let loss = Logistic::plain();
        let config = SagConfig::new(2, 0.5);
        let a = run_sag(&data, &loss, &config, &mut seeded(3));
        let b = run_sag(&data, &loss, &config, &mut seeded(3));
        assert_eq!(a.model, b.model);
    }

    #[test]
    fn projection_respected() {
        let data = problem(100, 716);
        let loss = Logistic::plain();
        let config = SagConfig::new(3, 10.0).with_projection(0.3);
        let out = run_sag(&data, &loss, &config, &mut seeded(4));
        assert!(vector::norm(&out.model) <= 0.3 + 1e-12);
    }

    /// SAG's gradient memory must track the true sum: after a full pass,
    /// grad_sum equals Σ_i ∇ℓ_i at each example's last-visited iterate —
    /// verified indirectly by checking the final model is finite and the
    /// optimizer is stable over many passes (no drift blow-up).
    #[test]
    fn long_runs_remain_stable() {
        let data = problem(150, 717);
        let loss = Logistic::plain();
        let config = SagConfig::new(40, 0.06).with_weight_decay(1e-2).with_projection(1e2);
        let out = run_sag(&data, &loss, &config, &mut seeded(5));
        assert!(out.model.iter().all(|v| v.is_finite()));
        let risk = metrics::empirical_risk(&loss, &out.model, &data);
        assert!(risk < 0.5, "risk {risk}");
    }
}

//! The O(nnz) sparse PSGD hot path: lazily scaled models over
//! [`SparseTrainSet`] scans.
//!
//! The dense engine ([`crate::engine`]) costs O(d) per example regardless of
//! how sparse the data is, because rows are densified and the model update
//! sweeps every coordinate. For the paper's high-dimensional one-hot
//! workloads (KDDCup-99-style, density a few percent) that wastes a factor
//! of `d/nnz`. This module keeps the exact PSGD semantics — same balanced
//! [`BatchPlan`], same [`PassOrders`] randomness, same step schedules,
//! projection, and averaging — while touching only the nonzeros:
//!
//! * **Lazy scaling.** The iterate is represented as `w = scale·v`. The
//!   L2-regularization shrink `w ← (1 − ηλ)·w` and the L2-ball projection
//!   `w ← (R/‖w‖)·w` become O(1) updates of `scale`; only the
//!   data-dependent gradient term touches coordinates.
//! * **GLM gradients.** Every built-in loss has the generalized-linear form
//!   `∇ℓ = φ′(⟨w, x⟩, y)·x + λw` ([`Loss::glm_derivative`]), so the
//!   per-example gradient is a scalar times the sparse row: the batch
//!   gradient lives on the union of the batch rows' nonzeros.
//! * **Deferred unscale.** True coordinates are materialized by dividing by
//!   `scale` only at batch boundaries (the coordinate update
//!   `v[i] ← v[i] − η·ḡ[i]/scale`), and the full model is unscaled once at
//!   output time.
//! * **Incremental norms.** `‖v‖²` is maintained from the touched
//!   coordinates' deltas (projection needs `‖w‖ = |scale|·‖v‖` every
//!   update) and recomputed exactly once per pass to stop drift.
//! * **Deferred O(nnz) averaging.** The iterate average
//!   `Σ_j scale_j·v_j` is carried as `a + μ·v`, where `μ` accumulates the
//!   scales of the averaged iterates (an O(1) update per averaging event)
//!   and the correction buffer `a` absorbs `−μ·δ` whenever a coordinate of
//!   `v` moves by `δ` — an O(1) touch-up at the coordinates the batch
//!   already updates. `a` is therefore only ever written inside the union
//!   of the scanned rows' supports ([`SparseScratch::averaged_support_nnz`]
//!   counts the distinct writes), so averaged iterates no longer densify:
//!   averaging costs O(nnz) per update plus one O(d) materialization
//!   (`a + μ·v`) at output time, exactly like the final-iterate unscale.
//!
//! The result matches the dense engine on densified inputs to within float
//! reassociation (≈1e-9 over realistic runs; the sparse dot reduces over
//! nonzeros where the dense kernel reduces over all `d` coordinates, so
//! bit-equality is only guaranteed for fully dense rows — see
//! [`bolton_linalg::SparseVec::dot_dense`]).
//!
//! There is **no gradient hook** on this path: per-batch dense noise
//! injection (SCS13/BST14) is inherently O(d) per update. Output
//! perturbation — the paper's bolt-on approach — never needs one, which is
//! exactly why private sparse training can run at O(nnz).

use crate::dataset::SparseTrainSet;
use crate::engine::{Averaging, BatchPlan, PassOrders, SgdConfig, SgdOutcome};
use crate::loss::Loss;
use bolton_linalg::vector;
use bolton_rng::Rng;

/// Fold the lazy scale into the coordinates once its magnitude leaves
/// `[1e-120, 1e120]`: far outside any realistic trajectory, long before
/// underflow/overflow could corrupt the represented iterate.
const SCALE_FOLD_LIMIT: f64 = 1e120;

/// Reusable buffers for the sparse inner loop, mirroring
/// [`crate::engine::Scratch`]: pool workers and repeated runs reuse one
/// scratch so the hot path performs no per-run allocation (buffers are
/// sized on first use and kept; the buffer that becomes the returned model
/// is handed to the caller and re-grown on the next run).
#[derive(Debug, Default)]
pub struct SparseScratch {
    /// Lazily scaled model coordinates (`w = scale·v`).
    v: Vec<f64>,
    /// Dense-indexed batch-gradient accumulator; only stamped entries are
    /// meaningful, so it is never cleared wholesale.
    grad: Vec<f64>,
    /// `stamp[i] == epoch` marks coordinate `i` as touched by the current
    /// batch — O(1) membership without an O(d) clear per batch.
    stamp: Vec<u32>,
    /// Indices touched by the current batch, in first-touch order.
    touched: Vec<u32>,
    /// Deferred-averaging correction buffer `a` (the average is `a + μ·v`;
    /// only used by the averaging modes, written only inside the data's
    /// union support).
    avg: Vec<f64>,
    /// `avg_stamp[i] != 0` marks coordinate `i` as written in `avg` during
    /// the current run — instrumentation behind
    /// [`SparseScratch::averaged_support_nnz`].
    avg_stamp: Vec<u32>,
    /// Distinct coordinates written in `avg` during the last run.
    avg_nnz: usize,
    /// Current batch epoch for `stamp`.
    epoch: u32,
}

impl SparseScratch {
    /// An empty scratch; buffers are allocated lazily on first run.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, d: usize) {
        for buf in [&mut self.v, &mut self.grad, &mut self.avg] {
            buf.clear();
            buf.resize(d, 0.0);
        }
        for st in [&mut self.stamp, &mut self.avg_stamp] {
            st.clear();
            st.resize(d, 0);
        }
        self.touched.clear();
        self.avg_nnz = 0;
        self.epoch = 0;
    }

    /// Number of distinct coordinates the deferred-averaging correction
    /// buffer wrote during the last run (always 0 under
    /// [`Averaging::FinalIterate`]). Bounded above by the union of the
    /// scanned rows' supports: the averaging accumulator provably never
    /// densifies beyond the data.
    pub fn averaged_support_nnz(&self) -> usize {
        self.avg_nnz
    }
}

/// Advances the batch epoch, resetting the stamps on the (effectively
/// unreachable) u32 wraparound.
fn next_batch_epoch(epoch: &mut u32, stamp: &mut [u32]) {
    *epoch = epoch.wrapping_add(1);
    if *epoch == 0 {
        stamp.fill(0);
        *epoch = 1;
    }
}

/// Runs sparse PSGD with randomness drawn from `rng` — the O(nnz)
/// counterpart of [`crate::engine::run_psgd`], consuming identical
/// randomness (one [`PassOrders`] sample), so a dense run on the densified
/// data at the same seed follows the same example orders.
///
/// # Panics
/// Panics if the configuration is invalid or the loss lacks the GLM form
/// ([`Loss::glm_derivative`] returns `None`).
pub fn run_sparse_psgd<D, R>(
    data: &D,
    loss: &dyn Loss,
    config: &SgdConfig,
    rng: &mut R,
) -> SgdOutcome
where
    D: SparseTrainSet + ?Sized,
    R: Rng + ?Sized,
{
    let m = data.len();
    config.validate(m);
    let orders = PassOrders::sample(config, m, rng);
    run_sparse_with_pass_orders(data, loss, config, &orders, &mut SparseScratch::new())
}

/// Runs sparse PSGD over explicitly provided per-pass orders — the
/// deterministic replay entry point mirroring
/// [`crate::engine::run_with_orders`].
///
/// # Panics
/// As [`run_sparse_with_pass_orders`], plus if `orders.len() !=
/// config.passes` or any order's length differs from `data.len()`.
pub fn run_sparse_with_orders<D>(
    data: &D,
    loss: &dyn Loss,
    config: &SgdConfig,
    orders: &[Vec<usize>],
) -> SgdOutcome
where
    D: SparseTrainSet + ?Sized,
{
    assert_eq!(orders.len(), config.passes, "one order per pass is required");
    for order in orders {
        assert_eq!(order.len(), data.len(), "order length must equal dataset size");
    }
    sparse_core(data, loss, config, &|pass| orders[pass].as_slice(), &mut SparseScratch::new())
}

/// Runs sparse PSGD over [`PassOrders`], reusing the caller's
/// [`SparseScratch`] — the allocation-free entry point the worker pool
/// uses. Semantics are identical to [`run_sparse_with_orders`] over the
/// materialized per-pass orders.
///
/// # Panics
/// Panics if `orders.passes() != config.passes`, any order's length differs
/// from `data.len()`, any index is out of bounds, or the loss lacks the
/// GLM form.
pub fn run_sparse_with_pass_orders<D>(
    data: &D,
    loss: &dyn Loss,
    config: &SgdConfig,
    orders: &PassOrders,
    scratch: &mut SparseScratch,
) -> SgdOutcome
where
    D: SparseTrainSet + ?Sized,
{
    assert_eq!(orders.passes(), config.passes, "one order per pass is required");
    for pass in 0..orders.passes() {
        assert_eq!(orders.order(pass).len(), data.len(), "order length must equal dataset size");
    }
    sparse_core(data, loss, config, &|pass| orders.order(pass), scratch)
}

/// The sparse inner loop shared by every entry point.
fn sparse_core<'o, D>(
    data: &D,
    loss: &dyn Loss,
    config: &SgdConfig,
    order_of: &dyn Fn(usize) -> &'o [usize],
    scratch: &mut SparseScratch,
) -> SgdOutcome
where
    D: SparseTrainSet + ?Sized,
{
    let m = data.len();
    let d = data.dim();
    config.validate(m);
    assert!(
        loss.glm_derivative(0.0, 1.0).is_some(),
        "sparse PSGD requires a GLM-form loss ({} does not expose glm_derivative); \
         use the dense engine instead",
        loss.name()
    );
    let lambda = loss.lambda();

    let b = config.batch_size.min(m);
    let plan = BatchPlan::new(m, b);
    let updates_per_pass = plan.batches as u64;
    let total_updates = updates_per_pass * config.passes as u64;
    let tail_window = ((total_updates as f64).ln().ceil() as u64).max(1);
    let tail_start = total_updates.saturating_sub(tail_window) + 1;

    // At batch size 1 every batch gradient is the single row scaled by its
    // φ′, so the scatter→flush round-trip through `grad`/`touched`/`stamp`
    // is pure overhead: the fast path below fuses the update straight from
    // the row's nonzeros (this is the paper's Figure 2 configuration).
    let singleton_batches = b == 1;

    scratch.reset(d);
    let SparseScratch { v, grad, stamp, touched, avg, avg_stamp, avg_nnz, epoch } = scratch;
    // The lazy representation: w = scale·v, with ‖v‖² tracked incrementally.
    let mut scale = 1.0f64;
    let mut norm_sq = 0.0f64;
    let mut averaged_count = 0u64;
    // Deferred averaging: the running sum of averaged iterates
    // Σ_j scale_j·v_j is represented as avg + mu·v. Each averaging event
    // adds its scale to mu (O(1)); each coordinate move δ of v subtracts
    // μ·δ into avg at that coordinate (O(1), at a coordinate the batch
    // already touches), keeping the representation exact.
    let mut mu = 0.0f64;
    let mut t: u64 = 0;
    let mut epoch_losses = Vec::new();
    let mut passes_completed = 0usize;

    for pass in 0..config.passes {
        let order = order_of(pass);
        let mut batch_len = 0usize;
        let mut batch_idx = 0usize;
        next_batch_epoch(epoch, stamp);
        data.scan_order_sparse(order, &mut |_pos, x, y| {
            // O(nnz) score, then scatter φ′·x onto the batch accumulator
            // (singleton batches update directly from the row at the
            // boundary below instead).
            let z = scale * x.dot_dense(v);
            let coeff = loss.glm_derivative(z, y).expect("GLM form checked above");
            if !singleton_batches && coeff != 0.0 {
                for (i, xi) in x.iter() {
                    if stamp[i] != *epoch {
                        stamp[i] = *epoch;
                        grad[i] = 0.0;
                        touched.push(i as u32);
                    }
                    grad[i] += coeff * xi;
                }
            }
            batch_len += 1;
            if batch_len == plan.size_of(batch_idx) {
                batch_idx += 1;
                t += 1;
                let eta = config.step.eta(t);
                // w ← w − η·(ḡ + λw) = (1 − ηλ)·w − η·ḡ: the shrink is an
                // O(1) scale update; only ḡ's support gets coordinate work.
                let decay = 1.0 - eta * lambda;
                if decay == 0.0 {
                    // Degenerate shrink-to-zero step (ηλ = 1 exactly).
                    // v is about to vanish, so fold the averaged history
                    // μ·v into the correction buffer first (touching only
                    // v's support, which lies inside the data's union
                    // support).
                    if mu != 0.0 {
                        for (i, &vi) in v.iter().enumerate() {
                            if vi != 0.0 {
                                if avg_stamp[i] == 0 {
                                    avg_stamp[i] = 1;
                                    *avg_nnz += 1;
                                }
                                avg[i] += mu * vi;
                            }
                        }
                        mu = 0.0;
                    }
                    vector::fill_zero(v);
                    scale = 1.0;
                    norm_sq = 0.0;
                } else {
                    scale *= decay;
                    let a = scale.abs();
                    if !(SCALE_FOLD_LIMIT.recip()..=SCALE_FOLD_LIMIT).contains(&a) {
                        // v ← scale·v rescales the base of the deferred
                        // average, so μ compensates by the inverse factor.
                        vector::scale(scale, v);
                        mu /= scale;
                        scale = 1.0;
                        norm_sq = vector::norm_sq(v);
                    }
                }
                // Deferred unscale: one division by the post-shrink scale
                // folds the batch mean and the lazy factor together. Each
                // coordinate move also patches the deferred average
                // (avg[i] −= μ·δ) so avg + μ·v keeps equaling the sum of
                // past averaged iterates.
                if singleton_batches {
                    if coeff != 0.0 {
                        let step = -eta * coeff / scale;
                        for (i, xi) in x.iter() {
                            let old = v[i];
                            let new = old + step * xi;
                            v[i] = new;
                            norm_sq += new * new - old * old;
                            if mu != 0.0 {
                                if avg_stamp[i] == 0 {
                                    avg_stamp[i] = 1;
                                    *avg_nnz += 1;
                                }
                                avg[i] -= mu * (new - old);
                            }
                        }
                    }
                } else {
                    let step = -eta / (batch_len as f64 * scale);
                    for &iu in touched.iter() {
                        let i = iu as usize;
                        let old = v[i];
                        let new = old + step * grad[i];
                        v[i] = new;
                        norm_sq += new * new - old * old;
                        if mu != 0.0 {
                            if avg_stamp[i] == 0 {
                                avg_stamp[i] = 1;
                                *avg_nnz += 1;
                            }
                            avg[i] -= mu * (new - old);
                        }
                    }
                    touched.clear();
                }
                if let Some(r) = config.projection_radius {
                    // Π onto ‖w‖ ≤ R is a pure rescale: O(1) on the lazy
                    // representation.
                    let norm_w = scale.abs() * norm_sq.max(0.0).sqrt();
                    if norm_w > r {
                        scale *= r / norm_w;
                    }
                }
                match config.averaging {
                    Averaging::FinalIterate => {}
                    // Deferred averaging: adding this iterate to the
                    // running sum avg + μ·v is just μ += scale — O(1).
                    Averaging::Uniform => {
                        mu += scale;
                        averaged_count += 1;
                    }
                    Averaging::LastLog => {
                        if t >= tail_start {
                            mu += scale;
                            averaged_count += 1;
                        }
                    }
                }
                batch_len = 0;
                next_batch_epoch(epoch, stamp);
            }
        });
        passes_completed += 1;
        // One exact recomputation per pass stops incremental-norm drift.
        norm_sq = vector::norm_sq(v);

        if let Some(mu) = config.tolerance {
            let cur = risk_scaled(loss, scale, v, norm_sq, data);
            let stop = epoch_losses
                .last()
                .is_some_and(|&prev: &f64| prev.abs() > 0.0 && (prev - cur) / prev.abs() < mu);
            epoch_losses.push(cur);
            if stop {
                break;
            }
        }
    }

    let model = match config.averaging {
        Averaging::FinalIterate => {
            // Output-time materialization of the true coordinates.
            vector::scale(scale, v);
            std::mem::take(v)
        }
        Averaging::Uniform | Averaging::LastLog => {
            assert!(averaged_count > 0, "no iterates were averaged");
            // Output-time materialization of the deferred average:
            // Σ_j scale_j·v_j = avg + μ·v, then one division by the count.
            vector::axpy(mu, v, avg);
            vector::scale(1.0 / averaged_count as f64, avg);
            std::mem::take(avg)
        }
    };

    SgdOutcome { model, updates: t, passes_completed, epoch_losses }
}

/// Mean training loss of the lazily scaled iterate, computed sparsely:
/// `mean φ(scale·⟨v, x⟩, y) + (λ/2)·scale²·‖v‖²`.
fn risk_scaled<D>(loss: &dyn Loss, scale: f64, v: &[f64], norm_sq_v: f64, data: &D) -> f64
where
    D: SparseTrainSet + ?Sized,
{
    let mut total = 0.0;
    data.scan_sparse(&mut |_, x, y| {
        let z = scale * x.dot_dense(v);
        total += loss.glm_value(z, y).expect("GLM form checked by the engine");
    });
    total / data.len() as f64 + 0.5 * loss.lambda() * (scale * scale * norm_sq_v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{InMemoryDataset, SparseDataset};
    use crate::engine::run_psgd;
    use crate::loss::{HuberSvm, LeastSquares, Logistic};
    use crate::schedule::StepSize;
    use bolton_rng::seeded;

    fn sparse_pair(m: usize, dim: usize, seed: u64) -> (InMemoryDataset, SparseDataset) {
        crate::dataset::sparse_pair_fixture(m, dim, 0.2, seed)
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (p, q)) in a.iter().zip(b.iter()).enumerate() {
            assert!((p - q).abs() <= tol, "{what}: coord {i}: {p} vs {q}");
        }
    }

    #[test]
    fn matches_dense_logistic_plain() {
        let (d, s) = sparse_pair(120, 12, 901);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.4)).with_passes(3);
        let dense = run_psgd(&d, &loss, &config, &mut seeded(902));
        let sparse = run_sparse_psgd(&s, &loss, &config, &mut seeded(902));
        assert_eq!(dense.updates, sparse.updates);
        assert_eq!(dense.passes_completed, sparse.passes_completed);
        assert_close(&dense.model, &sparse.model, 1e-9, "logistic plain");
    }

    /// λ > 0 with projection: the multiplicative shrink and the L2-ball
    /// projection both ride the lazy scale. `m = 103, b = 10` hits the
    /// balanced partition's `min_size` edge (batches of 10 and 9).
    #[test]
    fn matches_dense_regularized_projected_minsize_edge() {
        let (d, s) = sparse_pair(103, 9, 903);
        let loss = Logistic::regularized(0.05, 2.0);
        let config = SgdConfig::new(StepSize::StronglyConvex { beta: 1.05, gamma: 0.05 })
            .with_passes(3)
            .with_batch_size(10)
            .with_projection(2.0);
        assert_eq!(BatchPlan::new(103, 10).min_size(), 9);
        let dense = run_psgd(&d, &loss, &config, &mut seeded(904));
        let sparse = run_sparse_psgd(&s, &loss, &config, &mut seeded(904));
        assert_eq!(dense.updates, sparse.updates);
        assert_close(&dense.model, &sparse.model, 1e-9, "regularized projected");
        assert!(vector::norm(&sparse.model) <= 2.0 + 1e-9);
    }

    #[test]
    fn matches_dense_across_losses() {
        let (d, s) = sparse_pair(90, 10, 905);
        let losses: Vec<Box<dyn Loss>> = vec![
            Box::new(Logistic::plain()),
            Box::new(HuberSvm::plain(0.1)),
            Box::new(HuberSvm::regularized(0.1, 0.01, 5.0)),
            Box::new(LeastSquares::new(3.0)),
        ];
        for loss in &losses {
            for batch in [1usize, 4, 90] {
                let mut config =
                    SgdConfig::new(StepSize::Constant(0.3)).with_passes(2).with_batch_size(batch);
                if loss.lambda() > 0.0 {
                    config = config.with_projection(5.0);
                }
                let dense = run_psgd(&d, loss.as_ref(), &config, &mut seeded(906));
                let sparse = run_sparse_psgd(&s, loss.as_ref(), &config, &mut seeded(906));
                assert_close(
                    &dense.model,
                    &sparse.model,
                    1e-9,
                    &format!("{} b={batch}", loss.name()),
                );
            }
        }
    }

    #[test]
    fn averaging_modes_match_dense() {
        let (d, s) = sparse_pair(80, 8, 907);
        let loss = Logistic::plain();
        for avg in [Averaging::Uniform, Averaging::LastLog] {
            let config = SgdConfig::new(StepSize::Constant(0.3))
                .with_passes(2)
                .with_batch_size(3)
                .with_averaging(avg);
            let dense = run_psgd(&d, &loss, &config, &mut seeded(908));
            let sparse = run_sparse_psgd(&s, &loss, &config, &mut seeded(908));
            assert_close(&dense.model, &sparse.model, 1e-9, &format!("{avg:?}"));
        }
    }

    /// Satellite property: deferred averaging matches the dense-averaged
    /// model within 1e-9 across losses × projection on/off × both
    /// averaging modes, and the correction accumulator provably never
    /// densifies — it writes only inside the union of the rows' supports,
    /// which this fixture keeps strictly smaller than `d`.
    #[test]
    fn deferred_averaging_parity_and_nnz_bound() {
        let (d, s) = crate::dataset::sparse_pair_fixture(15, 80, 0.05, 920);
        let dim = 80usize;
        // Union support of the data, from the sparse rows themselves.
        let mut in_union = vec![false; dim];
        for r in 0..15 {
            for (i, _) in s.row(r).iter() {
                in_union[i] = true;
            }
        }
        let union_nnz = in_union.iter().filter(|&&b| b).count();
        assert!(union_nnz < dim, "fixture must leave empty coordinates ({union_nnz} of {dim})");

        let losses: Vec<(Box<dyn Loss>, bool)> = vec![
            (Box::new(Logistic::plain()), false),
            (Box::new(Logistic::plain()), true),
            (Box::new(Logistic::regularized(0.05, 2.0)), true),
            (Box::new(HuberSvm::plain(0.1)), false),
            (Box::new(HuberSvm::regularized(0.1, 0.05, 2.0)), true),
            (Box::new(LeastSquares::new(3.0)), false),
        ];
        for (loss, project) in &losses {
            for avg in [Averaging::Uniform, Averaging::LastLog] {
                for batch in [1usize, 4] {
                    let mut config = SgdConfig::new(StepSize::Constant(0.3))
                        .with_passes(3)
                        .with_batch_size(batch)
                        .with_averaging(avg);
                    if *project {
                        config = config.with_projection(2.0);
                    }
                    let what = format!("{} proj={project} {avg:?} b={batch}", loss.name());
                    let dense = run_psgd(&d, loss.as_ref(), &config, &mut seeded(921));
                    let orders = PassOrders::sample(&config, 15, &mut seeded(921));
                    let mut scratch = SparseScratch::new();
                    let sparse = run_sparse_with_pass_orders(
                        &s,
                        loss.as_ref(),
                        &config,
                        &orders,
                        &mut scratch,
                    );
                    assert_close(&dense.model, &sparse.model, 1e-9, &what);
                    // The nnz bound: every accumulator write sits in the
                    // union support.
                    assert!(
                        scratch.averaged_support_nnz() <= union_nnz,
                        "{what}: accumulator wrote {} coords, union support is {union_nnz}",
                        scratch.averaged_support_nnz(),
                    );
                    // And coordinates outside the union stay exactly zero
                    // in the averaged model.
                    for (i, &w) in sparse.model.iter().enumerate() {
                        if !in_union[i] {
                            assert_eq!(w, 0.0, "{what}: untouched coord {i} drifted");
                        }
                    }
                }
            }
        }
    }

    /// FinalIterate runs pay no averaging cost at all: the correction
    /// accumulator is never written.
    #[test]
    fn final_iterate_never_touches_the_averaging_accumulator() {
        let (_, s) = sparse_pair(60, 10, 922);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.3)).with_passes(2);
        let orders = PassOrders::sample(&config, 60, &mut seeded(923));
        let mut scratch = SparseScratch::new();
        run_sparse_with_pass_orders(&s, &loss, &config, &orders, &mut scratch);
        assert_eq!(scratch.averaged_support_nnz(), 0);
    }

    #[test]
    fn fresh_permutations_and_replacement_match_dense() {
        use crate::engine::SamplingScheme;
        let (d, s) = sparse_pair(70, 7, 909);
        let loss = Logistic::plain();
        for sampling in
            [SamplingScheme::Permutation { fresh_each_pass: true }, SamplingScheme::WithReplacement]
        {
            let config = SgdConfig::new(StepSize::InvSqrtT).with_passes(3).with_sampling(sampling);
            let dense = run_psgd(&d, &loss, &config, &mut seeded(910));
            let sparse = run_sparse_psgd(&s, &loss, &config, &mut seeded(910));
            assert_close(&dense.model, &sparse.model, 1e-9, &format!("{sampling:?}"));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (_, s) = sparse_pair(60, 6, 911);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.2)).with_passes(2);
        let a = run_sparse_psgd(&s, &loss, &config, &mut seeded(912));
        let b = run_sparse_psgd(&s, &loss, &config, &mut seeded(912));
        assert_eq!(a.model, b.model);
    }

    #[test]
    fn replayed_orders_match_run_with_orders() {
        let (d, s) = sparse_pair(50, 5, 913);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.25)).with_passes(2).with_batch_size(4);
        let orders: Vec<Vec<usize>> = vec![(0..50).rev().collect(), (0..50).collect()];
        let dense = crate::engine::run_with_orders(&d, &loss, &config, &orders, &mut |_, _| {});
        let sparse = run_sparse_with_orders(&s, &loss, &config, &orders);
        assert_close(&dense.model, &sparse.model, 1e-9, "replayed orders");
    }

    #[test]
    fn tolerance_stops_early() {
        let (_, s) = sparse_pair(150, 6, 914);
        let loss = Logistic::regularized(0.1, 10.0);
        let config = SgdConfig::new(StepSize::StronglyConvex { beta: 1.1, gamma: 0.1 })
            .with_passes(50)
            .with_projection(10.0)
            .with_tolerance(0.05);
        let out = run_sparse_psgd(&s, &loss, &config, &mut seeded(915));
        assert!(out.passes_completed < 50, "ran {}", out.passes_completed);
        assert_eq!(out.epoch_losses.len(), out.passes_completed);
    }

    #[test]
    #[should_panic(expected = "requires a GLM-form loss")]
    fn non_glm_loss_rejected() {
        struct Opaque;
        impl Loss for Opaque {
            fn value(&self, _: &[f64], _: &[f64], _: f64) -> f64 {
                0.0
            }
            fn add_gradient(&self, _: &[f64], _: &[f64], _: f64, _: &mut [f64]) {}
            fn lipschitz(&self) -> f64 {
                1.0
            }
            fn smoothness(&self) -> f64 {
                1.0
            }
            fn strong_convexity(&self) -> f64 {
                0.0
            }
            fn lambda(&self) -> f64 {
                0.0
            }
            fn name(&self) -> &'static str {
                "opaque"
            }
        }
        let (_, s) = sparse_pair(10, 3, 916);
        let config = SgdConfig::new(StepSize::Constant(0.1));
        run_sparse_psgd(&s, &Opaque, &config, &mut seeded(917));
    }

    /// Scratch reuse across runs must not leak state between runs.
    #[test]
    fn scratch_reuse_is_stateless() {
        let (_, s) = sparse_pair(40, 5, 918);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.3)).with_passes(2);
        let mut scratch = SparseScratch::new();
        let orders = PassOrders::sample(&config, 40, &mut seeded(919));
        let a = run_sparse_with_pass_orders(&s, &loss, &config, &orders, &mut scratch);
        let b = run_sparse_with_pass_orders(&s, &loss, &config, &orders, &mut scratch);
        assert_eq!(a.model, b.model);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::dataset::{InMemoryDataset, SparseDataset};
    use crate::engine::run_psgd;
    use crate::loss::{HuberSvm, LeastSquares, Logistic};
    use crate::schedule::StepSize;
    use proptest::prelude::*;

    /// The satellite property: lazy-scaled sparse PSGD equals the dense
    /// engine within 1e-9 across losses (logistic, Huber/hinge-like, least
    /// squares), projection on/off, and batch sizes including the
    /// `BatchPlan::min_size()` edge (arbitrary `m mod b`).
    #[allow(clippy::too_many_arguments)]
    fn check_case(
        m: usize,
        dim: usize,
        seed: u64,
        loss_idx: usize,
        batch: usize,
        passes: usize,
        project: bool,
        regularized: bool,
    ) {
        use bolton_rng::Rng as _;
        let mut rng = bolton_rng::seeded(seed);
        let mut features = Vec::with_capacity(m * dim);
        let mut labels = Vec::with_capacity(m);
        for _ in 0..m {
            for _ in 0..dim {
                features.push(if rng.next_bool(0.25) { rng.next_range(-0.4, 0.4) } else { 0.0 });
            }
            labels.push(if rng.next_bool(0.5) { 1.0 } else { -1.0 });
        }
        let d = InMemoryDataset::from_flat(features, labels, dim);
        let s = SparseDataset::from_dense(&d);
        let radius = 1.5;
        let lambda = if regularized { 0.05 } else { 0.0 };
        let loss: Box<dyn Loss> = match loss_idx {
            0 if regularized => Box::new(Logistic::regularized(lambda, radius)),
            0 => Box::new(Logistic::plain()),
            1 if regularized => Box::new(HuberSvm::regularized(0.1, lambda, radius)),
            1 => Box::new(HuberSvm::plain(0.1)),
            _ => Box::new(LeastSquares::regularized(lambda, radius)),
        };
        let mut config =
            SgdConfig::new(StepSize::Constant(0.3)).with_passes(passes).with_batch_size(batch);
        // λ > 0 requires the ball constraint for the constants to hold;
        // also exercise projection on some unregularized runs.
        if project || regularized {
            config = config.with_projection(radius);
        }
        let dense = run_psgd(&d, loss.as_ref(), &config, &mut bolton_rng::seeded(seed ^ 0xA5));
        let sparse =
            run_sparse_psgd(&s, loss.as_ref(), &config, &mut bolton_rng::seeded(seed ^ 0xA5));
        assert_eq!(dense.updates, sparse.updates);
        for (i, (p, q)) in dense.model.iter().zip(sparse.model.iter()).enumerate() {
            assert!(
                (p - q).abs() <= 1e-9,
                "{} m={} b={} k={} proj={} reg={}: coord {i}: {p} vs {q}",
                loss.name(),
                m,
                batch,
                passes,
                project,
                regularized,
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn lazy_sparse_equals_dense_engine(
            m in 2usize..60,
            dim in 2usize..16,
            seed in 0u64..1_000_000,
            loss_idx in 0usize..3,
            batch in 1usize..20,
            passes in 1usize..4,
            project in any::<bool>(),
            regularized in any::<bool>(),
        ) {
            check_case(m, dim, seed, loss_idx, batch, passes, project, regularized);
        }
    }
}

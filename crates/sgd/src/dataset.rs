//! The training-set abstraction shared by in-memory data, file-backed
//! chunk stores, and the Bismarck storage engine.
//!
//! SGD only ever needs one access pattern: stream examples in a prescribed
//! order. [`TrainSet::scan_order`] is a visitor so that a disk-backed
//! implementation can pin a buffer-pool page only for the duration of each
//! callback — no lifetimes escape the storage layer.
//!
//! The ordered scan itself is implemented exactly once, over the
//! chunk-granular [`crate::chunked::ChunkedRows`] view: every concrete
//! dataset here (and Bismarck's `Table`, and `bolton_data`'s file-backed
//! `StoredDataset`) only describes its chunk layout and how to pin one
//! chunk; [`crate::chunked::scan_order`] does the rest.

/// A labeled example: dense features plus a label.
///
/// Binary classification uses labels in `{−1.0, +1.0}` throughout, matching
/// the paper's logistic-loss formulation (Equation 1).
#[derive(Clone, Debug, PartialEq)]
pub struct Example {
    /// Dense feature vector (normalized to ‖x‖ ≤ 1 by the data layer).
    pub features: Vec<f64>,
    /// Class label (±1 for binary tasks; class index for multiclass sources).
    pub label: f64,
}

/// An ordered training set that can stream examples in any prescribed order.
pub trait TrainSet {
    /// Number of examples `m`.
    fn len(&self) -> usize;

    /// Whether the set is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feature dimensionality `d`.
    fn dim(&self) -> usize;

    /// Streams examples in the order given by `order` (indices into
    /// `0..len()`), invoking `visit(position_in_order, features, label)`.
    ///
    /// # Panics
    /// Implementations panic if any index is out of bounds.
    fn scan_order(&self, order: &[usize], visit: &mut dyn FnMut(usize, &[f64], f64));

    /// Streams all examples in storage order.
    fn scan(&self, visit: &mut dyn FnMut(usize, &[f64], f64)) {
        let order: Vec<usize> = (0..self.len()).collect();
        self.scan_order(&order, visit);
    }

    /// Fetches one example by index (convenience for tests and metrics).
    fn get(&self, index: usize) -> Example {
        let mut out = None;
        self.scan_order(&[index], &mut |_, x, y| {
            out = Some(Example { features: x.to_vec(), label: y });
        });
        out.expect("scan_order must visit the requested index")
    }
}

/// A plain in-memory training set: the flat feature matrix plus labels.
#[derive(Clone, Debug)]
pub struct InMemoryDataset {
    features: Vec<f64>,
    labels: Vec<f64>,
    dim: usize,
}

impl InMemoryDataset {
    /// Builds a dataset from a flat row-major feature buffer.
    ///
    /// # Panics
    /// Panics if `features.len() != labels.len() * dim` or `dim == 0`.
    pub fn from_flat(features: Vec<f64>, labels: Vec<f64>, dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(features.len(), labels.len() * dim, "feature buffer size mismatch");
        Self { features, labels, dim }
    }

    /// Builds a dataset from per-example vectors.
    ///
    /// # Panics
    /// Panics if examples have inconsistent dimensions or the set is empty.
    pub fn from_examples(examples: &[Example]) -> Self {
        assert!(!examples.is_empty(), "dataset must be non-empty");
        let dim = examples[0].features.len();
        let mut features = Vec::with_capacity(examples.len() * dim);
        let mut labels = Vec::with_capacity(examples.len());
        for ex in examples {
            assert_eq!(ex.features.len(), dim, "inconsistent feature dimension");
            features.extend_from_slice(&ex.features);
            labels.push(ex.label);
        }
        Self { features, labels, dim }
    }

    /// Immutable view of example `i`'s features.
    pub fn features_of(&self, i: usize) -> &[f64] {
        &self.features[i * self.dim..(i + 1) * self.dim]
    }

    /// Label of example `i`.
    pub fn label_of(&self, i: usize) -> f64 {
        self.labels[i]
    }

    /// Replaces example `i` (used to build neighboring datasets in the
    /// sensitivity tests).
    ///
    /// # Panics
    /// Panics on dimension mismatch or out-of-range index.
    pub fn replace(&mut self, i: usize, features: &[f64], label: f64) {
        assert_eq!(features.len(), self.dim, "dimension mismatch");
        assert!(i < self.labels.len(), "index out of range");
        self.features[i * self.dim..(i + 1) * self.dim].copy_from_slice(features);
        self.labels[i] = label;
    }

    /// Returns a copy with example `i` replaced — a *neighboring dataset*
    /// in the sense of Definition 5.
    pub fn neighbor(&self, i: usize, features: &[f64], label: f64) -> Self {
        let mut other = self.clone();
        other.replace(i, features, label);
        other
    }

    /// Splits into `parts` nearly equal contiguous portions (used by the
    /// private tuning Algorithm 3, line 2).
    ///
    /// # Panics
    /// Panics if `parts == 0` or `parts > len`.
    pub fn split(&self, parts: usize) -> Vec<InMemoryDataset> {
        assert!(parts > 0 && parts <= self.len(), "invalid split arity");
        let base = self.len() / parts;
        let extra = self.len() % parts;
        let mut out = Vec::with_capacity(parts);
        let mut start = 0usize;
        for p in 0..parts {
            let size = base + usize::from(p < extra);
            let features = self.features[start * self.dim..(start + size) * self.dim].to_vec();
            let labels = self.labels[start..start + size].to_vec();
            out.push(InMemoryDataset::from_flat(features, labels, self.dim));
            start += size;
        }
        out
    }

    /// Selects a subset of examples by index into a new dataset.
    pub fn subset(&self, indices: &[usize]) -> Self {
        let mut features = Vec::with_capacity(indices.len() * self.dim);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            features.extend_from_slice(self.features_of(i));
            labels.push(self.label_of(i));
        }
        InMemoryDataset::from_flat(features, labels, self.dim)
    }
}

impl crate::chunked::ChunkedRows for InMemoryDataset {
    fn len(&self) -> usize {
        self.labels.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn chunk_len(&self) -> usize {
        // RAM-resident rows form one degenerate chunk: pinning is free.
        self.labels.len().max(1)
    }

    fn visit_chunk_rows(
        &self,
        chunk: usize,
        locals: &[usize],
        visit: &mut dyn FnMut(usize, &[f64], f64),
    ) {
        let base = chunk * self.chunk_len();
        for (k, &l) in locals.iter().enumerate() {
            let i = base + l;
            visit(k, self.features_of(i), self.labels[i]);
        }
    }
}

impl TrainSet for InMemoryDataset {
    fn len(&self) -> usize {
        self.labels.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn scan_order(&self, order: &[usize], visit: &mut dyn FnMut(usize, &[f64], f64)) {
        crate::chunked::scan_order(self, order, visit);
    }
}

/// A dataset the tuning algorithms (the paper's Algorithm 3 and the public
/// grid search) can partition into contiguous portions — the only
/// structural operation tuning needs beyond [`TrainSet`] scanning.
/// Implemented for the dense, sparse, and file-backed datasets, so tuning
/// grids train candidates without densifying sparse corpora or
/// materializing out-of-core ones.
pub trait TuningData: TrainSet + Sync + Sized {
    /// Splits into `parts` nearly equal contiguous portions (Algorithm 3,
    /// line 2).
    ///
    /// # Panics
    /// Panics if `parts == 0` or `parts > len`.
    fn split_portions(&self, parts: usize) -> Vec<Self>;
}

impl TuningData for InMemoryDataset {
    fn split_portions(&self, parts: usize) -> Vec<Self> {
        self.split(parts)
    }
}

impl TuningData for SparseDataset {
    fn split_portions(&self, parts: usize) -> Vec<Self> {
        self.split(parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> InMemoryDataset {
        InMemoryDataset::from_flat(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![1.0, -1.0, 1.0], 2)
    }

    #[test]
    fn accessors() {
        let d = tiny();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.features_of(1), &[3.0, 4.0]);
        assert_eq!(d.label_of(2), 1.0);
    }

    #[test]
    fn scan_order_visits_in_order() {
        let d = tiny();
        let mut seen = Vec::new();
        d.scan_order(&[2, 0], &mut |pos, x, y| seen.push((pos, x[0], y)));
        assert_eq!(seen, vec![(0, 5.0, 1.0), (1, 1.0, 1.0)]);
    }

    #[test]
    fn default_scan_is_storage_order() {
        let d = tiny();
        let mut labels = Vec::new();
        d.scan(&mut |_, _, y| labels.push(y));
        assert_eq!(labels, vec![1.0, -1.0, 1.0]);
    }

    #[test]
    fn get_roundtrip() {
        let d = tiny();
        let ex = d.get(1);
        assert_eq!(ex.features, vec![3.0, 4.0]);
        assert_eq!(ex.label, -1.0);
    }

    #[test]
    fn neighbor_differs_in_exactly_one_example() {
        let d = tiny();
        let n = d.neighbor(1, &[9.0, 9.0], 1.0);
        assert_eq!(n.features_of(0), d.features_of(0));
        assert_eq!(n.features_of(2), d.features_of(2));
        assert_eq!(n.features_of(1), &[9.0, 9.0]);
        assert_eq!(n.label_of(1), 1.0);
    }

    #[test]
    fn split_covers_everything() {
        let d = InMemoryDataset::from_flat((0..20).map(f64::from).collect(), vec![1.0; 10], 2);
        let parts = d.split(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 10);
        // Sizes are near-equal: 4, 3, 3.
        assert_eq!(parts[0].len(), 4);
        assert_eq!(parts[1].len(), 3);
        // First example of second part is example 4 of the original.
        assert_eq!(parts[1].features_of(0), d.features_of(4));
    }

    #[test]
    fn subset_picks_rows() {
        let d = tiny();
        let s = d.subset(&[2, 2, 0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.features_of(0), d.features_of(2));
        assert_eq!(s.features_of(2), d.features_of(0));
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn from_flat_checks_shape() {
        InMemoryDataset::from_flat(vec![1.0; 5], vec![1.0; 2], 2);
    }

    #[test]
    fn from_examples_roundtrip() {
        let exs = vec![
            Example { features: vec![1.0, 0.0], label: 1.0 },
            Example { features: vec![0.0, 1.0], label: -1.0 },
        ];
        let d = InMemoryDataset::from_examples(&exs);
        assert_eq!(d.get(0), exs[0]);
        assert_eq!(d.get(1), exs[1]);
    }
}

/// A training set that can additionally stream rows *sparsely*, handing the
/// visitor each example's stored [`bolton_linalg::SparseVec`] directly.
///
/// This is the access pattern behind the O(nnz) training path
/// ([`crate::sparse_engine`]): a consumer that accepts sparse rows never
/// touches the thread-local dense row buffer the [`TrainSet`] scan
/// materializes into, so per-example cost is proportional to the row's
/// nonzeros rather than the ambient dimension.
pub trait SparseTrainSet: TrainSet {
    /// Streams examples in the order given by `order` (indices into
    /// `0..len()`), invoking `visit(position_in_order, row, label)` with
    /// the sparse row — no densification.
    ///
    /// # Panics
    /// Implementations panic if any index is out of bounds.
    fn scan_order_sparse(
        &self,
        order: &[usize],
        visit: &mut dyn FnMut(usize, &bolton_linalg::SparseVec, f64),
    );

    /// Streams all examples sparsely in storage order.
    fn scan_sparse(&self, visit: &mut dyn FnMut(usize, &bolton_linalg::SparseVec, f64)) {
        let order: Vec<usize> = (0..self.len()).collect();
        self.scan_order_sparse(&order, visit);
    }
}

/// A training set stored sparsely (one [`bolton_linalg::SparseVec`] per
/// example), materialized into a reusable dense row buffer during scans.
///
/// The dense [`TrainSet`] scan keeps every private algorithm working
/// unmodified; the [`SparseTrainSet`] scan hands the stored rows out
/// directly so the sparse engine trains in O(nnz) — exactly how
/// one-hot-encoded corpora like KDDCup-99 are best held.
#[derive(Clone, Debug)]
pub struct SparseDataset {
    rows: Vec<bolton_linalg::SparseVec>,
    labels: Vec<f64>,
    dim: usize,
}

impl SparseDataset {
    /// Builds a dataset from sparse rows and labels.
    ///
    /// # Panics
    /// Panics if lengths mismatch, the set is empty, or any row's ambient
    /// dimension differs.
    pub fn new(rows: Vec<bolton_linalg::SparseVec>, labels: Vec<f64>) -> Self {
        assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
        assert!(!rows.is_empty(), "dataset must be non-empty");
        let dim = rows[0].dim();
        assert!(dim > 0, "dimension must be positive");
        for r in &rows {
            assert_eq!(r.dim(), dim, "inconsistent row dimension");
        }
        Self { rows, labels, dim }
    }

    /// Converts from a dense dataset (keeping only nonzeros).
    pub fn from_dense(data: &InMemoryDataset) -> Self {
        let rows = (0..data.len())
            .map(|i| bolton_linalg::SparseVec::from_dense(data.features_of(i)))
            .collect();
        let labels = (0..data.len()).map(|i| data.label_of(i)).collect();
        Self::new(rows, labels)
    }

    /// Total stored nonzeros across all rows.
    pub fn total_nnz(&self) -> usize {
        self.rows.iter().map(bolton_linalg::SparseVec::nnz).sum()
    }

    /// The sparse row `i`.
    pub fn row(&self, i: usize) -> &bolton_linalg::SparseVec {
        &self.rows[i]
    }

    /// Label of example `i`.
    pub fn label_of(&self, i: usize) -> f64 {
        self.labels[i]
    }

    /// Splits into `parts` nearly equal contiguous portions without
    /// densifying (the private tuning Algorithm 3, line 2, on sparse data).
    ///
    /// # Panics
    /// Panics if `parts == 0` or `parts > len`.
    pub fn split(&self, parts: usize) -> Vec<SparseDataset> {
        assert!(parts > 0 && parts <= self.len(), "invalid split arity");
        let base = self.len() / parts;
        let extra = self.len() % parts;
        let mut out = Vec::with_capacity(parts);
        let mut start = 0usize;
        for p in 0..parts {
            let size = base + usize::from(p < extra);
            out.push(SparseDataset::new(
                self.rows[start..start + size].to_vec(),
                self.labels[start..start + size].to_vec(),
            ));
            start += size;
        }
        out
    }
}

impl crate::chunked::ChunkedRows for SparseDataset {
    fn len(&self) -> usize {
        self.labels.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn chunk_len(&self) -> usize {
        self.labels.len().max(1)
    }

    fn visit_chunk_rows(
        &self,
        chunk: usize,
        locals: &[usize],
        visit: &mut dyn FnMut(usize, &[f64], f64),
    ) {
        // The dense row buffer is thread-local rather than per-call:
        // chunked scans (e.g. through a `ShardView`) issue many short
        // visits per pass, and a per-call allocation would multiply with
        // the run count on the hot path.
        thread_local! {
            static ROW_BUF: std::cell::RefCell<Vec<f64>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        let base = chunk * self.chunk_len();
        let mut body = |buf: &mut Vec<f64>| {
            buf.clear();
            buf.resize(self.dim, 0.0);
            for (k, &l) in locals.iter().enumerate() {
                let i = base + l;
                self.rows[i].write_dense(buf);
                visit(k, buf, self.labels[i]);
            }
        };
        ROW_BUF.with(|cell| match cell.try_borrow_mut() {
            Ok(mut buf) => body(&mut buf),
            // A reentrant scan (the visitor scanning this thread's sparse
            // data again) falls back to a local buffer.
            Err(_) => body(&mut vec![0.0; self.dim]),
        });
    }
}

impl crate::chunked::SparseChunkedRows for SparseDataset {
    fn visit_chunk_rows_sparse(
        &self,
        chunk: usize,
        locals: &[usize],
        visit: &mut dyn FnMut(usize, &bolton_linalg::SparseVec, f64),
    ) {
        use crate::chunked::ChunkedRows as _;
        // Rows are handed out as stored: no dense buffer, no thread-local
        // state, O(1) bookkeeping per example.
        let base = chunk * self.chunk_len();
        for (k, &l) in locals.iter().enumerate() {
            let i = base + l;
            visit(k, &self.rows[i], self.labels[i]);
        }
    }
}

impl SparseTrainSet for SparseDataset {
    fn scan_order_sparse(
        &self,
        order: &[usize],
        visit: &mut dyn FnMut(usize, &bolton_linalg::SparseVec, f64),
    ) {
        crate::chunked::scan_order_sparse(self, order, visit);
    }
}

impl TrainSet for SparseDataset {
    fn len(&self) -> usize {
        self.labels.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn scan_order(&self, order: &[usize], visit: &mut dyn FnMut(usize, &[f64], f64)) {
        crate::chunked::scan_order(self, order, visit);
    }
}

/// Test fixture shared by the sparse-path test modules (in this crate and
/// in dependent crates' tests): random sparse binary data as a
/// (dense, sparse) pair over the same examples, `density` being each
/// cell's nonzero probability. Hidden from docs; not a stable API.
#[doc(hidden)]
pub fn sparse_pair_fixture(
    m: usize,
    dim: usize,
    density: f64,
    seed: u64,
) -> (InMemoryDataset, SparseDataset) {
    use bolton_rng::Rng as _;
    let mut rng = bolton_rng::seeded(seed);
    let mut features = Vec::with_capacity(m * dim);
    let mut labels = Vec::with_capacity(m);
    for _ in 0..m {
        for _ in 0..dim {
            features.push(if rng.next_bool(density) { rng.next_range(-0.3, 0.3) } else { 0.0 });
        }
        labels.push(if rng.next_bool(0.5) { 1.0 } else { -1.0 });
    }
    let d = InMemoryDataset::from_flat(features, labels, dim);
    let s = SparseDataset::from_dense(&d);
    (d, s)
}

#[cfg(test)]
mod sparse_tests {
    use super::*;
    use bolton_rng::Rng as _;

    fn dense() -> InMemoryDataset {
        InMemoryDataset::from_flat(
            vec![0.0, 2.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 3.0],
            vec![1.0, -1.0, 1.0],
            3,
        )
    }

    #[test]
    fn from_dense_preserves_everything() {
        let d = dense();
        let s = SparseDataset::from_dense(&d);
        assert_eq!(s.len(), 3);
        assert_eq!(TrainSet::dim(&s), 3);
        assert_eq!(s.total_nnz(), 3);
        for i in 0..3 {
            assert_eq!(s.get(i), d.get(i));
        }
    }

    #[test]
    fn scan_order_matches_dense_scan() {
        let d = dense();
        let s = SparseDataset::from_dense(&d);
        let order = [2usize, 0, 1];
        let mut via_dense = Vec::new();
        let mut via_sparse = Vec::new();
        d.scan_order(&order, &mut |pos, x, y| via_dense.push((pos, x.to_vec(), y)));
        s.scan_order(&order, &mut |pos, x, y| via_sparse.push((pos, x.to_vec(), y)));
        assert_eq!(via_dense, via_sparse);
    }

    /// Training on sparse storage produces the identical model.
    #[test]
    fn sgd_on_sparse_equals_sgd_on_dense() {
        use crate::engine::{run_with_orders, SgdConfig};
        use crate::loss::Logistic;
        use crate::schedule::StepSize;
        let mut rng = bolton_rng::seeded(481);
        let m = 60;
        let dim = 8;
        let mut features = Vec::with_capacity(m * dim);
        let mut labels = Vec::with_capacity(m);
        for _ in 0..m {
            for j in 0..dim {
                // ~70% sparsity.
                features.push(if rng.next_bool(0.3) { rng.next_range(-0.3, 0.3) } else { 0.0 });
                let _ = j;
            }
            labels.push(if rng.next_bool(0.5) { 1.0 } else { -1.0 });
        }
        let d = InMemoryDataset::from_flat(features, labels, dim);
        let s = SparseDataset::from_dense(&d);
        assert!(s.total_nnz() < m * dim / 2, "fixture should be sparse");
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.3)).with_passes(2).with_batch_size(5);
        let orders: Vec<Vec<usize>> = vec![(0..m).rev().collect(); 2];
        let a = run_with_orders(&d, &loss, &config, &orders, &mut |_, _| {});
        let b = run_with_orders(&s, &loss, &config, &orders, &mut |_, _| {});
        assert_eq!(a.model, b.model);
    }

    /// Reentrant scans (a visitor scanning the same thread's sparse data
    /// again) must not corrupt the shared row buffer.
    #[test]
    fn reentrant_scan_keeps_rows_intact() {
        let d = dense();
        let s = SparseDataset::from_dense(&d);
        let mut outer_rows = Vec::new();
        s.scan_order(&[0, 1, 2], &mut |pos, x, _| {
            let outer = x.to_vec();
            let mut inner_first = None;
            s.scan_order(&[2], &mut |_, ix, _| inner_first = Some(ix.to_vec()));
            assert_eq!(inner_first.unwrap(), d.features_of(2), "inner scan row");
            // The outer row handed to us must still match the dataset
            // after the nested scan ran on this thread.
            assert_eq!(x, d.features_of(pos), "outer row after inner scan");
            outer_rows.push(outer);
        });
        assert_eq!(outer_rows.len(), 3);
    }

    /// The sparse scan hands out exactly the stored rows, in order.
    #[test]
    fn sparse_scan_matches_dense_scan_content() {
        let d = dense();
        let s = SparseDataset::from_dense(&d);
        let order = [1usize, 2, 0];
        let mut seen = Vec::new();
        s.scan_order_sparse(&order, &mut |pos, row, y| seen.push((pos, row.to_dense(), y)));
        let mut expect = Vec::new();
        d.scan_order(&order, &mut |pos, x, y| expect.push((pos, x.to_vec(), y)));
        assert_eq!(seen, expect);
    }

    /// A sparse consumer never touches the thread-local dense row buffer:
    /// nesting a sparse scan inside a dense scan must leave the outer dense
    /// row intact *without* falling back to a per-call allocation (the
    /// `RefCell` is never borrowed by the sparse path).
    #[test]
    fn sparse_scan_inside_dense_scan_skips_row_buffer() {
        let d = dense();
        let s = SparseDataset::from_dense(&d);
        let mut outer_count = 0usize;
        s.scan_order(&[0, 1, 2], &mut |pos, x, _| {
            let mut inner = Vec::new();
            s.scan_order_sparse(&[2, 0], &mut |_, row, y| inner.push((row.to_dense(), y)));
            assert_eq!(inner[0].0, d.features_of(2));
            assert_eq!(inner[1].0, d.features_of(0));
            // The dense row we were handed is untouched by the sparse scan.
            assert_eq!(x, d.features_of(pos), "outer dense row corrupted");
            outer_count += 1;
        });
        assert_eq!(outer_count, 3);
    }

    #[test]
    fn sparse_split_covers_everything_without_densifying() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            rows.push(bolton_linalg::SparseVec::from_pairs(4, [(i % 4, 1.0 + i as f64)]));
            labels.push(if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        let s = SparseDataset::new(rows, labels);
        let parts = s.split(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(SparseDataset::len).sum::<usize>(), 10);
        assert_eq!(parts[0].len(), 4);
        assert_eq!(parts[1].len(), 3);
        // First example of the second part is example 4 of the original.
        assert_eq!(parts[1].row(0), s.row(4));
        assert_eq!(parts[1].label_of(0), s.label_of(4));
        assert_eq!(parts[0].total_nnz() + parts[1].total_nnz() + parts[2].total_nnz(), 10);
    }

    /// Sparse storage behind a `ShardView` (the pool's chunked scans)
    /// trains identically to dense storage.
    #[test]
    fn sharded_sparse_training_matches_dense() {
        use crate::engine::{run_with_orders, SgdConfig};
        use crate::loss::Logistic;
        use crate::parallel::ShardView;
        use crate::schedule::StepSize;
        let mut rng = bolton_rng::seeded(482);
        let m = 300;
        let dim = 6;
        let mut features = Vec::with_capacity(m * dim);
        let mut labels = Vec::with_capacity(m);
        for _ in 0..m {
            for _ in 0..dim {
                features.push(if rng.next_bool(0.3) { rng.next_range(-0.3, 0.3) } else { 0.0 });
            }
            labels.push(if rng.next_bool(0.5) { 1.0 } else { -1.0 });
        }
        let d = InMemoryDataset::from_flat(features, labels, dim);
        let s = SparseDataset::from_dense(&d);
        let shard: Vec<usize> = (0..m).step_by(2).collect();
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.3)).with_passes(2).with_batch_size(4);
        let orders: Vec<Vec<usize>> = vec![(0..shard.len()).rev().collect(); 2];
        let dense_view = ShardView::new(&d, shard.clone());
        let sparse_view = ShardView::new(&s, shard);
        let a = run_with_orders(&dense_view, &loss, &config, &orders, &mut |_, _| {});
        let b = run_with_orders(&sparse_view, &loss, &config, &orders, &mut |_, _| {});
        assert_eq!(a.model, b.model);
    }

    #[test]
    #[should_panic(expected = "inconsistent row dimension")]
    fn mixed_dims_rejected() {
        SparseDataset::new(
            vec![
                bolton_linalg::SparseVec::from_pairs(3, [(0, 1.0)]),
                bolton_linalg::SparseVec::from_pairs(4, [(0, 1.0)]),
            ],
            vec![1.0, -1.0],
        );
    }
}

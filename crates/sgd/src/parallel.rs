//! Data-parallel PSGD by parameter mixing (Zinkevich, Weimer, Smola & Li,
//! "Parallelized Stochastic Gradient Descent", NeurIPS 2010) — the
//! shared-memory parallelism that systems like Bismarck use for the
//! noiseless path.
//!
//! The permuted data is split into `workers` contiguous shards; each worker
//! independently runs the full SGD configuration on its shard from the same
//! initialization, and the resulting models are averaged.
//!
//! Shards are scheduled on the persistent work-stealing pool
//! ([`crate::pool`]) rather than per-call `std::thread::scope` spawns, and
//! results are mixed in shard order, so the model is a function of the seed
//! and the shard count (`workers`) only — never of the pool's thread count
//! or which thread ran which shard. [`run_parallel_psgd_scoped`] keeps the
//! old spawn-per-call path as a benchmark baseline.
//!
//! **Behavior change vs the pre-pool implementation:** workers now honor
//! `config.sampling` for their shard-local pass orders (one shared
//! permutation per worker under the default non-fresh scheme), where the
//! old code unconditionally resampled a fresh permutation every pass.
//! Models trained with a multi-pass config therefore differ numerically
//! from pre-pool runs at the same seed (determinism per seed is unchanged).
//!
//! **Privacy note:** the paper's sensitivity analysis covers *sequential*
//! PSGD. Parameter mixing changes the analysis (each worker sees a 1/w
//! fraction of the data, and the average dilutes a differing example by
//! 1/w), so this module is offered for the noiseless/scalability use case;
//! private training should use the sequential engine.
//!
//! **SIMD reproducibility:** every worker runs the same dispatched kernels
//! (`bolton_linalg::simd`), so mixed models inherit the per-lane-width
//! contract — bit-identical across thread counts and schedules at a fixed
//! dispatch mode, reassociated low-order bits across modes of different
//! lane width (pin `BOLTON_SIMD` to compare across machines).

use crate::dataset::{SparseTrainSet, TrainSet};
use crate::engine::{run_with_pass_orders, PassOrders, Scratch, SgdConfig, SgdOutcome};
use crate::loss::Loss;
use crate::pool::ParallelRunner;
use crate::sparse_engine::{run_sparse_with_pass_orders, SparseScratch};
use bolton_linalg::vector;
use bolton_rng::{random_permutation, Rng};
use std::borrow::Cow;

/// A contiguous shard of a base dataset, exposed as a [`TrainSet`].
pub struct ShardView<'a, D: TrainSet + ?Sized> {
    base: &'a D,
    indices: Cow<'a, [usize]>,
}

impl<'a, D: TrainSet + ?Sized> ShardView<'a, D> {
    /// Wraps `base`, restricted to the given example indices.
    ///
    /// # Panics
    /// Panics if `indices` is empty or any index is out of range.
    pub fn new(base: &'a D, indices: Vec<usize>) -> Self {
        Self::build(base, Cow::Owned(indices))
    }

    /// Like [`ShardView::new`] but borrowing the indices — the worker pool
    /// hands each shard a slice of the one shared permutation instead of
    /// copying it.
    ///
    /// # Panics
    /// Panics if `indices` is empty or any index is out of range.
    pub fn from_slice(base: &'a D, indices: &'a [usize]) -> Self {
        Self::build(base, Cow::Borrowed(indices))
    }

    fn build(base: &'a D, indices: Cow<'a, [usize]>) -> Self {
        assert!(!indices.is_empty(), "shard must be non-empty");
        assert!(indices.iter().all(|&i| i < base.len()), "shard index out of range");
        Self { base, indices }
    }
}

/// Fixed-size stack chunk for index translation in [`ShardView::scan_order`];
/// bounds the remap cost at zero heap allocations per scan.
const SCAN_CHUNK: usize = 128;

impl<D: TrainSet + ?Sized> TrainSet for ShardView<'_, D> {
    fn len(&self) -> usize {
        self.indices.len()
    }

    fn dim(&self) -> usize {
        self.base.dim()
    }

    fn scan_order(&self, order: &[usize], visit: &mut dyn FnMut(usize, &[f64], f64)) {
        // Translate shard-local indices to base indices in fixed-size
        // chunks on the stack — the old per-scan `Vec` allocated m indices
        // on every pass of every worker.
        let mut mapped = [0usize; SCAN_CHUNK];
        let mut offset = 0usize;
        for chunk in order.chunks(SCAN_CHUNK) {
            for (slot, &i) in mapped.iter_mut().zip(chunk.iter()) {
                *slot = self.indices[i];
            }
            let base_offset = offset;
            self.base.scan_order(&mapped[..chunk.len()], &mut |pos, x, y| {
                visit(base_offset + pos, x, y);
            });
            offset += chunk.len();
        }
    }
}

impl<D: SparseTrainSet + ?Sized> SparseTrainSet for ShardView<'_, D> {
    fn scan_order_sparse(
        &self,
        order: &[usize],
        visit: &mut dyn FnMut(usize, &bolton_linalg::SparseVec, f64),
    ) {
        // Same chunked zero-allocation index translation as the dense scan;
        // the rows themselves are handed through sparsely (no dense row
        // buffer anywhere on this path).
        let mut mapped = [0usize; SCAN_CHUNK];
        let mut offset = 0usize;
        for chunk in order.chunks(SCAN_CHUNK) {
            for (slot, &i) in mapped.iter_mut().zip(chunk.iter()) {
                *slot = self.indices[i];
            }
            let base_offset = offset;
            self.base.scan_order_sparse(&mapped[..chunk.len()], &mut |pos, x, y| {
                visit(base_offset + pos, x, y);
            });
            offset += chunk.len();
        }
    }
}

/// Index ranges `[lo, hi)` of each worker's contiguous shard of the
/// permutation: sizes within one of each other, larger shards first.
fn shard_bounds(m: usize, workers: usize) -> Vec<(usize, usize)> {
    let base = m / workers;
    let extra = m % workers;
    let mut bounds = Vec::with_capacity(workers);
    let mut start = 0usize;
    for w in 0..workers {
        let size = base + usize::from(w < extra);
        bounds.push((start, start + size));
        start += size;
    }
    bounds
}

/// Draws the top-level permutation and each worker's `[lo, hi)` slice of it,
/// honoring `config.sampling`:
///
/// * flat/with-replacement schemes — one uniform [`random_permutation`],
///   row-balanced contiguous shards (the historical behavior, bit-for-bit);
/// * [`SamplingScheme::ChunkedPermutation`] — a two-level chunk-preserving
///   permutation with shard bounds aligned to whole shuffled chunks, so
///   every shard is a *chunk range*: a worker scans its own set of chunks
///   and never touches (or evicts, on a cached out-of-core store) another
///   worker's hot chunk.
///
/// Consumes identical randomness for both engines (dense and sparse), which
/// is what keeps their parallel models in agreement.
///
/// # Panics
/// For the chunked scheme, panics if `workers` exceeds the chunk count —
/// there would be no chunk range left for some worker.
fn draw_shards<R: Rng + ?Sized>(
    rng: &mut R,
    m: usize,
    workers: usize,
    config: &SgdConfig,
) -> (Vec<usize>, Vec<(usize, usize)>) {
    match config.sampling {
        crate::engine::SamplingScheme::ChunkedPermutation { chunk_len, .. } => {
            // The one two-level draw (`bolton_rng::chunked_permutation`)
            // also reports each whole-chunk run's position span; shard
            // bounds are just groups of consecutive spans.
            let (order, spans) = bolton_rng::chunked_permutation_with_spans(rng, m, chunk_len);
            let chunks = spans.len();
            assert!(
                workers <= chunks,
                "{workers} workers over {chunks} chunks: lower the worker count or chunk_len"
            );
            let base = chunks / workers;
            let extra = chunks % workers;
            let mut bounds = Vec::with_capacity(workers);
            let mut next = 0usize;
            for w in 0..workers {
                let count = base + usize::from(w < extra);
                bounds.push((spans[next].0, spans[next + count - 1].1));
                next += count;
            }
            (order, bounds)
        }
        _ => (random_permutation(rng, m), shard_bounds(m, workers)),
    }
}

/// Shard-local per-pass orders honoring `config.sampling`.
///
/// For the chunked scheme, shard positions are *not* re-chunked at fixed
/// `chunk_len` windows: the store's short final chunk can sit anywhere in
/// the shard's slice of the top-level order, which would shift every later
/// window off the real chunk boundaries and make each window straddle two
/// store chunks (thrashing a one-chunk cache). Instead the shard's runs
/// are recovered from its base indices (maximal spans with one store
/// chunk id), and the two-level shuffle is applied run-wise — every
/// shard-local pass still pins each of the shard's chunks exactly once.
fn shard_pass_orders<R: Rng + ?Sized>(
    config: &SgdConfig,
    indices: &[usize],
    rng: &mut R,
) -> PassOrders {
    let crate::engine::SamplingScheme::ChunkedPermutation { chunk_len, fresh_each_pass } =
        config.sampling
    else {
        return PassOrders::sample(config, indices.len(), rng);
    };
    // Maximal same-store-chunk position spans of this shard.
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let mut start = 0usize;
    while start < indices.len() {
        let chunk = indices[start] / chunk_len;
        let mut end = start + 1;
        while end < indices.len() && indices[end] / chunk_len == chunk {
            end += 1;
        }
        spans.push((start, end));
        start = end;
    }
    let sample_one = |rng: &mut R| {
        let run_order = random_permutation(rng, spans.len());
        let mut order = Vec::with_capacity(indices.len());
        for &r in &run_order {
            let (lo, hi) = spans[r];
            let at = order.len();
            order.extend(lo..hi);
            bolton_rng::shuffle(rng, &mut order[at..]);
        }
        order
    };
    if fresh_each_pass {
        PassOrders::PerPass((0..config.passes).map(|_| sample_one(rng)).collect())
    } else {
        PassOrders::Shared { order: sample_one(rng), passes: config.passes }
    }
}

thread_local! {
    /// Per-thread scratch reused across shard runs: pool threads are
    /// long-lived, so gradient/average buffers persist across epochs
    /// instead of being reallocated per run.
    static SHARD_SCRATCH: std::cell::RefCell<Scratch> = std::cell::RefCell::new(Scratch::new());

    /// Per-thread scratch for the sparse shard runs (lazy model, batch
    /// accumulator, stamps). Separate from [`SHARD_SCRATCH`]: the sparse
    /// path never allocates — or touches — a dense row buffer.
    static SPARSE_SHARD_SCRATCH: std::cell::RefCell<SparseScratch> =
        std::cell::RefCell::new(SparseScratch::new());
}

/// One worker's shard run: per-pass orders derived from its own seeded
/// stream (honoring `config.sampling` — note the pre-pool implementation
/// always resampled fresh per pass regardless of the configured scheme),
/// executed with the thread's reusable scratch.
fn shard_run<D>(
    data: &D,
    indices: &[usize],
    seed: u64,
    loss: &(dyn Loss + Sync),
    config: &SgdConfig,
) -> SgdOutcome
where
    D: TrainSet + Sync + ?Sized,
{
    let view = ShardView::from_slice(data, indices);
    let mut worker_rng = bolton_rng::seeded(seed);
    let orders = shard_pass_orders(config, indices, &mut worker_rng);
    SHARD_SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        run_with_pass_orders(&view, loss, config, &orders, &mut |_, _| {}, &mut scratch)
    })
}

/// The shared pool driver behind [`run_parallel_psgd_on`] and
/// [`run_parallel_psgd_sparse_on`]: one permutation draw, one derived seed
/// per worker, shard tasks scheduled on the runner, shard-order mixing.
/// Keeping the RNG consumption in exactly one place is what guarantees the
/// dense and sparse paths consume identical randomness.
fn pooled_parameter_mixing<R, F>(
    runner: &ParallelRunner<'_>,
    m: usize,
    dim: usize,
    config: &SgdConfig,
    workers: usize,
    rng: &mut R,
    shard: F,
) -> SgdOutcome
where
    R: Rng + ?Sized,
    F: Fn(&[usize], u64) -> SgdOutcome + Sync,
{
    assert!(workers >= 1, "at least one worker");
    assert!(workers <= m, "more workers than examples");
    let (permutation, bounds) = draw_shards(rng, m, workers, config);
    // Each worker gets its own derived RNG stream for its pass orders.
    let seeds: Vec<u64> = (0..workers).map(|_| rng.next_u64()).collect();

    let shard = &shard;
    let tasks: Vec<_> = bounds
        .into_iter()
        .zip(seeds)
        .map(|((lo, hi), seed)| {
            let indices = &permutation[lo..hi];
            move || shard(indices, seed)
        })
        .collect();
    let results = runner.run(tasks);
    mix(&results, dim, config.passes)
}

/// Parameter mixing: the plain average of the worker models, reduced in
/// shard order for bit-reproducibility.
fn mix(results: &[SgdOutcome], d: usize, passes: usize) -> SgdOutcome {
    let workers = results.len();
    let mut model = vec![0.0; d];
    let mut updates = 0u64;
    for out in results {
        vector::axpy(1.0 / workers as f64, &out.model, &mut model);
        updates += out.updates;
    }
    SgdOutcome { model, updates, passes_completed: passes, epoch_losses: Vec::new() }
}

/// Runs parameter-mixing parallel PSGD on the process-global worker pool:
/// `workers` independent SGD runs on disjoint random shards, averaged at
/// the end.
///
/// `workers` is the *shard count* — part of the algorithm, influencing the
/// result. The pool's thread count (see [`crate::pool::global`] and
/// `BOLTON_THREADS`) is purely an execution resource; any pool produces
/// bit-identical models for the same seed and shard count.
///
/// # Panics
/// Panics if `workers == 0` or `workers > data.len()`.
pub fn run_parallel_psgd<D, R>(
    data: &D,
    loss: &(dyn Loss + Sync),
    config: &SgdConfig,
    workers: usize,
    rng: &mut R,
) -> SgdOutcome
where
    D: TrainSet + Sync + ?Sized,
    R: Rng + ?Sized,
{
    run_parallel_psgd_on(&crate::pool::runner(), data, loss, config, workers, rng)
}

/// [`run_parallel_psgd`] on an explicit [`ParallelRunner`] — the entry
/// point for callers that manage their own pool (benchmarks, tests).
///
/// # Panics
/// Panics if `workers == 0` or `workers > data.len()`.
pub fn run_parallel_psgd_on<D, R>(
    runner: &ParallelRunner<'_>,
    data: &D,
    loss: &(dyn Loss + Sync),
    config: &SgdConfig,
    workers: usize,
    rng: &mut R,
) -> SgdOutcome
where
    D: TrainSet + Sync + ?Sized,
    R: Rng + ?Sized,
{
    pooled_parameter_mixing(
        runner,
        data.len(),
        data.dim(),
        config,
        workers,
        rng,
        |indices, seed| shard_run(data, indices, seed, loss, config),
    )
}

/// One worker's sparse shard run: identical order derivation to
/// [`shard_run`] (same derived stream, same shard-local [`PassOrders`]),
/// executed by the O(nnz) lazy engine with the thread's reusable sparse
/// scratch.
fn shard_run_sparse<D>(
    data: &D,
    indices: &[usize],
    seed: u64,
    loss: &(dyn Loss + Sync),
    config: &SgdConfig,
) -> SgdOutcome
where
    D: SparseTrainSet + Sync + ?Sized,
{
    let view = ShardView::from_slice(data, indices);
    let mut worker_rng = bolton_rng::seeded(seed);
    let orders = shard_pass_orders(config, indices, &mut worker_rng);
    SPARSE_SHARD_SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        run_sparse_with_pass_orders(&view, loss, config, &orders, &mut scratch)
    })
}

/// Parameter-mixing parallel PSGD on the O(nnz) sparse hot path
/// ([`crate::sparse_engine`]), scheduled on the process-global pool.
///
/// Sharding, per-worker seed derivation, and shard-order mixing are
/// identical to [`run_parallel_psgd`] (the same randomness is consumed
/// from `rng`), so on densified inputs the two agree to within float
/// reassociation and this path inherits the same determinism guarantee:
/// the model depends on the seed and shard count only, never on the pool's
/// thread count or steal order.
///
/// # Panics
/// Panics if `workers == 0`, `workers > data.len()`, or the loss lacks the
/// GLM form the sparse engine requires.
pub fn run_parallel_psgd_sparse<D, R>(
    data: &D,
    loss: &(dyn Loss + Sync),
    config: &SgdConfig,
    workers: usize,
    rng: &mut R,
) -> SgdOutcome
where
    D: SparseTrainSet + Sync + ?Sized,
    R: Rng + ?Sized,
{
    run_parallel_psgd_sparse_on(&crate::pool::runner(), data, loss, config, workers, rng)
}

/// [`run_parallel_psgd_sparse`] on an explicit [`ParallelRunner`].
///
/// # Panics
/// As [`run_parallel_psgd_sparse`].
pub fn run_parallel_psgd_sparse_on<D, R>(
    runner: &ParallelRunner<'_>,
    data: &D,
    loss: &(dyn Loss + Sync),
    config: &SgdConfig,
    workers: usize,
    rng: &mut R,
) -> SgdOutcome
where
    D: SparseTrainSet + Sync + ?Sized,
    R: Rng + ?Sized,
{
    pooled_parameter_mixing(
        runner,
        data.len(),
        data.dim(),
        config,
        workers,
        rng,
        |indices, seed| shard_run_sparse(data, indices, seed, loss, config),
    )
}

/// The pre-pool baseline: identical sharding, seeding, and mixing, but
/// spawning fresh scoped threads on every call. Kept so the
/// `parallel_pool` benchmark can quantify what the persistent pool saves;
/// produces bit-identical results to [`run_parallel_psgd`].
///
/// # Panics
/// Panics if `workers == 0` or `workers > data.len()`.
pub fn run_parallel_psgd_scoped<D, R>(
    data: &D,
    loss: &(dyn Loss + Sync),
    config: &SgdConfig,
    workers: usize,
    rng: &mut R,
) -> SgdOutcome
where
    D: TrainSet + Sync + ?Sized,
    R: Rng + ?Sized,
{
    let m = data.len();
    assert!(workers >= 1, "at least one worker");
    assert!(workers <= m, "more workers than examples");
    let (permutation, bounds) = draw_shards(rng, m, workers, config);
    let seeds: Vec<u64> = (0..workers).map(|_| rng.next_u64()).collect();

    let results: Vec<SgdOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .into_iter()
            .zip(seeds)
            .map(|((lo, hi), seed)| {
                let indices = &permutation[lo..hi];
                scope.spawn(move || shard_run(data, indices, seed, loss, config))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    mix(&results, data.dim(), config.passes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::InMemoryDataset;
    use crate::engine::{run_with_orders, SamplingScheme};
    use crate::loss::Logistic;
    use crate::pool::WorkerPool;
    use crate::schedule::StepSize;
    use bolton_rng::seeded;

    fn separable(m: usize, seed: u64) -> InMemoryDataset {
        let mut rng = seeded(seed);
        let mut features = Vec::with_capacity(m * 2);
        let mut labels = Vec::with_capacity(m);
        for _ in 0..m {
            let x0 = rng.next_range(-1.0, 1.0);
            features.push(0.7 * x0);
            features.push(rng.next_range(-0.15, 0.15));
            labels.push(if x0 >= 0.0 { 1.0 } else { -1.0 });
        }
        InMemoryDataset::from_flat(features, labels, 2)
    }

    #[test]
    fn shard_view_maps_indices() {
        let data = separable(10, 501);
        let shard = ShardView::new(&data, vec![7, 2, 9]);
        assert_eq!(shard.len(), 3);
        assert_eq!(TrainSet::dim(&shard), 2);
        let mut seen = Vec::new();
        shard.scan_order(&[2, 0], &mut |pos, x, _| seen.push((pos, x[0])));
        assert_eq!(seen[0], (0, data.features_of(9)[0]));
        assert_eq!(seen[1], (1, data.features_of(7)[0]));
    }

    #[test]
    fn shard_view_chunked_scan_preserves_positions() {
        // A shard longer than one SCAN_CHUNK must still report global
        // positions and visit every example exactly once.
        let m = 2 * SCAN_CHUNK + 37;
        let data = separable(m, 513);
        let indices: Vec<usize> = (0..m).rev().collect();
        let shard = ShardView::from_slice(&data, &indices);
        let order: Vec<usize> = (0..m).collect();
        let mut seen = Vec::new();
        shard.scan_order(&order, &mut |pos, x, _| seen.push((pos, x[0])));
        assert_eq!(seen.len(), m);
        for (pos, (seen_pos, x0)) in seen.iter().enumerate() {
            assert_eq!(pos, *seen_pos);
            assert_eq!(*x0, data.features_of(m - 1 - pos)[0]);
        }
    }

    #[test]
    fn parallel_learns_separable_problem() {
        let data = separable(2000, 502);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.5)).with_passes(4);
        for workers in [1, 2, 4, 8] {
            let out = run_parallel_psgd(&data, &loss, &config, workers, &mut seeded(503));
            let acc = crate::metrics::accuracy(&out.model, &data);
            assert!(acc > 0.95, "{workers} workers: accuracy {acc}");
        }
    }

    #[test]
    fn total_updates_cover_all_shards() {
        let data = separable(103, 504);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.2)).with_passes(2);
        let out = run_parallel_psgd(&data, &loss, &config, 4, &mut seeded(505));
        // Shards of 26/26/26/25, batch 1: 103 updates per pass × 2.
        assert_eq!(out.updates, 206);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = separable(200, 506);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.3)).with_passes(2);
        let a = run_parallel_psgd(&data, &loss, &config, 3, &mut seeded(507));
        let b = run_parallel_psgd(&data, &loss, &config, 3, &mut seeded(507));
        assert_eq!(a.model, b.model);
    }

    /// The tentpole determinism guarantee: pool thread count and steal
    /// order are execution details; the model depends only on seed and
    /// shard count.
    #[test]
    fn model_independent_of_pool_size() {
        let data = separable(400, 514);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.3)).with_passes(3);
        let reference = {
            let pool = WorkerPool::new(1);
            run_parallel_psgd_on(&pool.runner(), &data, &loss, &config, 4, &mut seeded(515))
        };
        for threads in [2, 3, 8] {
            let pool = WorkerPool::new(threads);
            let out =
                run_parallel_psgd_on(&pool.runner(), &data, &loss, &config, 4, &mut seeded(515));
            assert_eq!(out.model, reference.model, "pool of {threads} threads diverged");
            assert_eq!(out.updates, reference.updates);
        }
    }

    /// The pool-backed path and the scoped-spawn baseline share sharding,
    /// seeding, and mixing, so they must agree bit-for-bit.
    #[test]
    fn pool_matches_scoped_baseline() {
        let data = separable(300, 516);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.4)).with_passes(2).with_batch_size(3);
        for workers in [1, 2, 5] {
            let pooled = run_parallel_psgd(&data, &loss, &config, workers, &mut seeded(517));
            let scoped = run_parallel_psgd_scoped(&data, &loss, &config, workers, &mut seeded(517));
            assert_eq!(pooled.model, scoped.model, "{workers} workers");
            assert_eq!(pooled.updates, scoped.updates);
        }
    }

    /// With one shard, parameter mixing degenerates to the sequential
    /// engine: replaying the derived randomness through [`run_with_orders`]
    /// on the base dataset reproduces the model exactly.
    #[test]
    fn single_worker_matches_sequential_engine() {
        let m = 150;
        let data = separable(m, 518);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.25)).with_passes(3).with_batch_size(4);

        let parallel = run_parallel_psgd(&data, &loss, &config, 1, &mut seeded(519));

        // Replay the same derivation by hand: the shard is the full
        // permutation; the worker samples one shared shard-local order
        // (non-fresh scheme) from its derived stream. Composing the two
        // gives the base-dataset order the sequential engine sees.
        let mut rng = seeded(519);
        let permutation = random_permutation(&mut rng, m);
        let worker_seed = rng.next_u64();
        let mut worker_rng = bolton_rng::seeded(worker_seed);
        let shard_order = random_permutation(&mut worker_rng, m);
        let composed: Vec<usize> = shard_order.iter().map(|&i| permutation[i]).collect();
        let orders = vec![composed; config.passes];
        let sequential = run_with_orders(&data, &loss, &config, &orders, &mut |_, _| {});

        assert_eq!(parallel.model, sequential.model);
        assert_eq!(parallel.updates, sequential.updates);
    }

    /// Under the chunked sampling scheme, shards are chunk *ranges*: each
    /// worker's slice of the top-level order is a union of whole chunks,
    /// and no chunk is split across workers.
    #[test]
    fn chunked_shards_are_chunk_ranges() {
        let m = 530;
        let chunk_len = 64; // 9 chunks, the last short.
        let data = separable(m, 521);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.3))
            .with_passes(2)
            .with_sampling(SamplingScheme::chunked(chunk_len));
        // Determinism and learning through the public entry point.
        let a = run_parallel_psgd(&data, &loss, &config, 4, &mut seeded(522));
        let b = run_parallel_psgd(&data, &loss, &config, 4, &mut seeded(522));
        assert_eq!(a.model, b.model);
        assert_eq!(a.updates, m as u64 * 2);
        assert!(crate::metrics::accuracy(&a.model, &data) > 0.9);
        // Inspect the shard structure by replaying the draw.
        let (order, bounds) = super::draw_shards(&mut seeded(522), m, 4, &config);
        assert_eq!(bounds.len(), 4);
        assert_eq!(bounds[0].0, 0);
        assert_eq!(bounds[3].1, m);
        let mut chunk_owner = vec![usize::MAX; m.div_ceil(chunk_len)];
        for (w, &(lo, hi)) in bounds.iter().enumerate() {
            assert!(lo < hi, "empty shard");
            for &i in &order[lo..hi] {
                let c = i / chunk_len;
                assert!(
                    chunk_owner[c] == usize::MAX || chunk_owner[c] == w,
                    "chunk {c} split across workers {} and {w}",
                    chunk_owner[c]
                );
                chunk_owner[c] = w;
            }
        }
        assert!(chunk_owner.iter().all(|&w| w != usize::MAX), "every chunk assigned");
    }

    /// Shard-local chunked orders are derived from the shard's *runs*, so
    /// even when the store's short final chunk sits mid-shard (shifting
    /// everything after it off the fixed `chunk_len` grid) every pass
    /// still visits each store chunk in one contiguous block.
    #[test]
    fn shard_local_chunked_orders_stay_chunk_contiguous() {
        let chunk_len = 8usize;
        // Store chunks: 0 = [0,8), 1 = [8,16), short 2 = [16,20).
        // The short chunk's run sits in the middle of the shard.
        let indices: Vec<usize> = (8..16).chain(16..20).chain(0..8).collect();
        let config = SgdConfig::new(StepSize::Constant(0.1))
            .with_passes(3)
            .with_sampling(SamplingScheme::ChunkedPermutation { chunk_len, fresh_each_pass: true });
        let orders = super::shard_pass_orders(&config, &indices, &mut seeded(525));
        for pass in 0..3 {
            let order = orders.order(pass);
            let mut sorted = order.to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..20).collect::<Vec<_>>(), "pass {pass} not a permutation");
            // Composed base accesses visit each store chunk contiguously.
            let base: Vec<usize> = order.iter().map(|&p| indices[p] / chunk_len).collect();
            let mut seen = Vec::new();
            for w in base.windows(2) {
                if w[0] != w[1] {
                    seen.push(w[0]);
                }
            }
            seen.push(*base.last().unwrap());
            let mut dedup = seen.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), seen.len(), "store chunk revisited: {base:?}");
        }
    }

    #[test]
    #[should_panic(expected = "lower the worker count or chunk_len")]
    fn more_workers_than_chunks_panics() {
        let data = separable(100, 523);
        let loss = Logistic::plain();
        let config =
            SgdConfig::new(StepSize::Constant(0.1)).with_sampling(SamplingScheme::chunked(64));
        run_parallel_psgd(&data, &loss, &config, 4, &mut seeded(524));
    }

    #[test]
    fn parallel_result_close_to_sequential() {
        let data = separable(3000, 508);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.5)).with_passes(3);
        let seq = crate::engine::run_psgd(&data, &loss, &config, &mut seeded(509));
        let par = run_parallel_psgd(&data, &loss, &config, 4, &mut seeded(510));
        let acc_seq = crate::metrics::accuracy(&seq.model, &data);
        let acc_par = crate::metrics::accuracy(&par.model, &data);
        assert!((acc_seq - acc_par).abs() < 0.03, "sequential {acc_seq} vs parallel {acc_par}");
    }

    /// A panic inside a shard surfaces to the caller instead of hanging
    /// the pool (here: triggered through a poisoned loss input).
    #[test]
    fn worker_panic_propagates() {
        struct PanicsOnScan;
        impl TrainSet for PanicsOnScan {
            fn len(&self) -> usize {
                8
            }
            fn dim(&self) -> usize {
                1
            }
            fn scan_order(&self, _order: &[usize], _visit: &mut dyn FnMut(usize, &[f64], f64)) {
                panic!("storage failure");
            }
        }
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.1));
        let result = std::panic::catch_unwind(|| {
            run_parallel_psgd(&PanicsOnScan, &loss, &config, 2, &mut seeded(520))
        });
        assert!(result.is_err(), "shard panic must propagate");
    }

    #[test]
    #[should_panic(expected = "more workers than examples")]
    fn too_many_workers_panics() {
        let data = separable(3, 511);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.1));
        run_parallel_psgd(&data, &loss, &config, 8, &mut seeded(512));
    }
}

#[cfg(test)]
mod sparse_parallel_tests {
    use super::*;
    use crate::dataset::{InMemoryDataset, SparseDataset};
    use crate::loss::Logistic;
    use crate::pool::WorkerPool;
    use crate::schedule::StepSize;
    use bolton_rng::seeded;

    fn sparse_pair(m: usize, dim: usize, seed: u64) -> (InMemoryDataset, SparseDataset) {
        crate::dataset::sparse_pair_fixture(m, dim, 0.2, seed)
    }

    /// The sparse parallel path consumes the same randomness and mixes in
    /// the same shard order as the dense path, so on densified inputs the
    /// models agree to within float reassociation for every worker count.
    #[test]
    fn sparse_parallel_matches_dense_parallel() {
        let (d, s) = sparse_pair(240, 10, 531);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.3)).with_passes(2).with_batch_size(3);
        for workers in [1usize, 2, 5] {
            let dense = run_parallel_psgd(&d, &loss, &config, workers, &mut seeded(532));
            let sparse = run_parallel_psgd_sparse(&s, &loss, &config, workers, &mut seeded(532));
            assert_eq!(dense.updates, sparse.updates, "{workers} workers");
            for (i, (p, q)) in dense.model.iter().zip(sparse.model.iter()).enumerate() {
                assert!((p - q).abs() <= 1e-9, "{workers} workers: coord {i}: {p} vs {q}");
            }
        }
    }

    /// Pool thread count and steal order stay execution details on the
    /// sparse path: bit-identical models for any pool size.
    #[test]
    fn sparse_model_independent_of_pool_size() {
        let (_, s) = sparse_pair(300, 8, 533);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.25)).with_passes(2);
        let reference = {
            let pool = WorkerPool::new(1);
            run_parallel_psgd_sparse_on(&pool.runner(), &s, &loss, &config, 4, &mut seeded(534))
        };
        for threads in [2, 3, 8] {
            let pool = WorkerPool::new(threads);
            let out = run_parallel_psgd_sparse_on(
                &pool.runner(),
                &s,
                &loss,
                &config,
                4,
                &mut seeded(534),
            );
            assert_eq!(out.model, reference.model, "pool of {threads} threads diverged");
        }
    }

    /// Sparse shards over a `ShardView` compose: a view of a view still
    /// streams sparse rows with correct positions.
    #[test]
    fn shard_view_sparse_scan_maps_indices() {
        let (d, s) = sparse_pair(20, 6, 535);
        let shard = ShardView::new(&s, vec![7, 2, 9, 11]);
        let mut seen = Vec::new();
        shard.scan_order_sparse(&[3, 0], &mut |pos, row, y| seen.push((pos, row.to_dense(), y)));
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0], (0, d.features_of(11).to_vec(), d.label_of(11)));
        assert_eq!(seen[1], (1, d.features_of(7).to_vec(), d.label_of(7)));
    }
}

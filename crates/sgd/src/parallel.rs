//! Data-parallel PSGD by parameter mixing (Zinkevich, Weimer, Smola & Li,
//! "Parallelized Stochastic Gradient Descent", NeurIPS 2010) — the
//! shared-memory parallelism that systems like Bismarck use for the
//! noiseless path.
//!
//! The permuted data is split into `workers` contiguous shards; each worker
//! independently runs the full SGD configuration on its shard from the same
//! initialization, and the resulting models are averaged.
//!
//! **Privacy note:** the paper's sensitivity analysis covers *sequential*
//! PSGD. Parameter mixing changes the analysis (each worker sees a 1/w
//! fraction of the data, and the average dilutes a differing example by
//! 1/w), so this module is offered for the noiseless/scalability use case;
//! private training should use the sequential engine.

use crate::dataset::TrainSet;
use crate::engine::{run_with_orders, SgdConfig, SgdOutcome};
use crate::loss::Loss;
use bolton_linalg::vector;
use bolton_rng::{random_permutation, Rng};

/// A contiguous shard of a base dataset, exposed as a [`TrainSet`].
pub struct ShardView<'a, D: TrainSet + ?Sized> {
    base: &'a D,
    indices: Vec<usize>,
}

impl<'a, D: TrainSet + ?Sized> ShardView<'a, D> {
    /// Wraps `base`, restricted to the given example indices.
    ///
    /// # Panics
    /// Panics if `indices` is empty or any index is out of range.
    pub fn new(base: &'a D, indices: Vec<usize>) -> Self {
        assert!(!indices.is_empty(), "shard must be non-empty");
        assert!(indices.iter().all(|&i| i < base.len()), "shard index out of range");
        Self { base, indices }
    }
}

impl<D: TrainSet + ?Sized> TrainSet for ShardView<'_, D> {
    fn len(&self) -> usize {
        self.indices.len()
    }

    fn dim(&self) -> usize {
        self.base.dim()
    }

    fn scan_order(&self, order: &[usize], visit: &mut dyn FnMut(usize, &[f64], f64)) {
        let mapped: Vec<usize> = order.iter().map(|&i| self.indices[i]).collect();
        self.base.scan_order(&mapped, visit);
    }
}

/// Runs parameter-mixing parallel PSGD: `workers` independent SGD runs on
/// disjoint random shards, averaged at the end.
///
/// With `workers == 1` this is exactly [`run_with_orders`] over a single
/// sampled permutation.
///
/// # Panics
/// Panics if `workers == 0` or `workers > data.len()`.
pub fn run_parallel_psgd<D, R>(
    data: &D,
    loss: &(dyn Loss + Sync),
    config: &SgdConfig,
    workers: usize,
    rng: &mut R,
) -> SgdOutcome
where
    D: TrainSet + Sync + ?Sized,
    R: Rng + ?Sized,
{
    let m = data.len();
    assert!(workers >= 1, "at least one worker");
    assert!(workers <= m, "more workers than examples");
    let permutation = random_permutation(rng, m);

    // Contiguous shards of the permutation, sizes within one of each other.
    let base = m / workers;
    let extra = m % workers;
    let mut shards: Vec<Vec<usize>> = Vec::with_capacity(workers);
    let mut start = 0usize;
    for w in 0..workers {
        let size = base + usize::from(w < extra);
        shards.push(permutation[start..start + size].to_vec());
        start += size;
    }

    // Each worker gets its own derived RNG stream for its pass permutations.
    let seeds: Vec<u64> = (0..workers).map(|_| rng.next_u64()).collect();

    let results: Vec<SgdOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .zip(seeds)
            .map(|(shard, seed)| {
                scope.spawn(move || {
                    let view = ShardView::new(data, shard);
                    let mut worker_rng = bolton_rng::seeded(seed);
                    let shard_m = view.len();
                    let orders: Vec<Vec<usize>> = (0..config.passes)
                        .map(|_| random_permutation(&mut worker_rng, shard_m))
                        .collect();
                    run_with_orders(&view, loss, config, &orders, &mut |_, _| {})
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    // Parameter mixing: plain average of the worker models.
    let d = data.dim();
    let mut model = vec![0.0; d];
    let mut updates = 0u64;
    for out in &results {
        vector::axpy(1.0 / workers as f64, &out.model, &mut model);
        updates += out.updates;
    }
    SgdOutcome { model, updates, passes_completed: config.passes, epoch_losses: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::InMemoryDataset;
    use crate::loss::Logistic;
    use crate::schedule::StepSize;
    use bolton_rng::seeded;

    fn separable(m: usize, seed: u64) -> InMemoryDataset {
        let mut rng = seeded(seed);
        let mut features = Vec::with_capacity(m * 2);
        let mut labels = Vec::with_capacity(m);
        for _ in 0..m {
            let x0 = rng.next_range(-1.0, 1.0);
            features.push(0.7 * x0);
            features.push(rng.next_range(-0.15, 0.15));
            labels.push(if x0 >= 0.0 { 1.0 } else { -1.0 });
        }
        InMemoryDataset::from_flat(features, labels, 2)
    }

    #[test]
    fn shard_view_maps_indices() {
        let data = separable(10, 501);
        let shard = ShardView::new(&data, vec![7, 2, 9]);
        assert_eq!(shard.len(), 3);
        assert_eq!(TrainSet::dim(&shard), 2);
        let mut seen = Vec::new();
        shard.scan_order(&[2, 0], &mut |pos, x, _| seen.push((pos, x[0])));
        assert_eq!(seen[0], (0, data.features_of(9)[0]));
        assert_eq!(seen[1], (1, data.features_of(7)[0]));
    }

    #[test]
    fn parallel_learns_separable_problem() {
        let data = separable(2000, 502);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.5)).with_passes(4);
        for workers in [1, 2, 4, 8] {
            let out = run_parallel_psgd(&data, &loss, &config, workers, &mut seeded(503));
            let acc = crate::metrics::accuracy(&out.model, &data);
            assert!(acc > 0.95, "{workers} workers: accuracy {acc}");
        }
    }

    #[test]
    fn total_updates_cover_all_shards() {
        let data = separable(103, 504);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.2)).with_passes(2);
        let out = run_parallel_psgd(&data, &loss, &config, 4, &mut seeded(505));
        // Shards of 26/26/26/25, batch 1: 103 updates per pass × 2.
        assert_eq!(out.updates, 206);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = separable(200, 506);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.3)).with_passes(2);
        let a = run_parallel_psgd(&data, &loss, &config, 3, &mut seeded(507));
        let b = run_parallel_psgd(&data, &loss, &config, 3, &mut seeded(507));
        assert_eq!(a.model, b.model);
    }

    #[test]
    fn parallel_result_close_to_sequential() {
        let data = separable(3000, 508);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.5)).with_passes(3);
        let seq = crate::engine::run_psgd(&data, &loss, &config, &mut seeded(509));
        let par = run_parallel_psgd(&data, &loss, &config, 4, &mut seeded(510));
        let acc_seq = crate::metrics::accuracy(&seq.model, &data);
        let acc_par = crate::metrics::accuracy(&par.model, &data);
        assert!((acc_seq - acc_par).abs() < 0.03, "sequential {acc_seq} vs parallel {acc_par}");
    }

    #[test]
    #[should_panic(expected = "more workers than examples")]
    fn too_many_workers_panics() {
        let data = separable(3, 511);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.1));
        run_parallel_psgd(&data, &loss, &config, 8, &mut seeded(512));
    }
}

//! Permutation-based stochastic gradient descent (PSGD), the non-private
//! optimization substrate of the paper (Section 2).
//!
//! * [`chunked`] — the chunk-granular [`chunked::ChunkedRows`] view every
//!   dataset adapts to; ordered scans are implemented exactly once over it.
//! * [`dataset`] — the [`dataset::TrainSet`] scan abstraction shared by
//!   in-memory datasets, file-backed chunk stores, and the Bismarck
//!   storage engine.
//! * [`loss`] — convex losses with their (L, β, γ) constants: L2-regularized
//!   logistic regression (the paper's running example), Huber SVM
//!   (Appendix B), and least squares.
//! * [`schedule`] — every step-size rule in Table 4 plus the corollaries'
//!   decreasing and square-root schedules.
//! * [`engine`] — mini-batch projected PSGD with model averaging, fresh
//!   permutations, with-replacement ablation, per-batch gradient hooks (how
//!   SCS13/BST14 inject their white-box noise), and convergence tolerance.
//! * [`growth`] — the Lemma 4 growth recursion replayed analytically, used
//!   to cross-check the closed-form sensitivity bounds.
//! * [`metrics`] — test accuracy / empirical risk used across the harness.
//! * [`pool`] — the persistent work-stealing worker pool behind every
//!   parallel region (epochs, tuning grids, bench trials).
//! * [`parallel`] — parameter-mixing parallel PSGD scheduled on the pool.
//! * [`sparse_engine`] — the O(nnz) sparse hot path: lazily scaled models
//!   (`w = scale·v`) over [`dataset::SparseTrainSet`] scans, with O(1)
//!   shrink/projection and gradient steps that touch only nonzeros.

pub mod chunked;
pub mod dataset;
pub mod engine;
pub mod growth;
pub mod loss;
pub mod metrics;
pub mod parallel;
pub mod pool;
pub mod sag;
pub mod schedule;
pub mod sparse_engine;
pub mod svrg;

pub use chunked::{ChunkedRows, SparseChunkedRows};
pub use dataset::{InMemoryDataset, SparseDataset, SparseTrainSet, TrainSet, TuningData};
pub use engine::{run_psgd, Averaging, SamplingScheme, SgdConfig, SgdOutcome};
pub use loss::{HuberSvm, LeastSquares, Logistic, Loss};
pub use parallel::{
    run_parallel_psgd, run_parallel_psgd_on, run_parallel_psgd_scoped, run_parallel_psgd_sparse,
    run_parallel_psgd_sparse_on,
};
pub use pool::{ParallelRunner, WorkerPool};
pub use sag::run_sag;
pub use schedule::StepSize;
pub use sparse_engine::{run_sparse_psgd, SparseScratch};
pub use svrg::run_svrg;

//! Chunk-granular row access — the single scan implementation behind every
//! [`TrainSet`](crate::dataset::TrainSet).
//!
//! The paper's in-RDBMS framing (Bismarck's buffer pool, Figure 2b's
//! larger-than-memory configuration) makes *paged* access the natural data
//! layout: rows live in fixed-size chunks (a heap page, a file chunk, or —
//! degenerately — one chunk holding the whole in-memory dataset), and a
//! scan pins one chunk at a time. [`ChunkedRows`] captures exactly that
//! contract, and [`scan_order`]/[`scan_order_sparse`] implement the ordered
//! [`TrainSet::scan_order`](crate::dataset::TrainSet::scan_order) visit
//! *once* over it: the order is split into maximal same-chunk runs so a
//! chunk is pinned once per run rather than once per row.
//!
//! Consumers that want sequential-I/O-friendly multi-pass training over
//! out-of-core chunks pair this with
//! [`SamplingScheme::ChunkedPermutation`](crate::engine::SamplingScheme):
//! a two-level "shuffle chunks, shuffle within each chunk" order whose
//! same-chunk runs are whole chunks, so each pass touches every chunk
//! exactly once.
//!
//! Because every backend scans through this one implementation, a row's
//! features reach the gradient kernels as the same `&[f64]` slice whether
//! they live in a `Vec`, a buffer-pool page, or an mmap-backed chunk view —
//! so training from any backend is bit-identical at a fixed seed and SIMD
//! dispatch mode (see `bolton_linalg::simd` for the lane-width contract).

use bolton_linalg::SparseVec;

/// Maximum rows per generic-scan run; bounds the index-translation buffer
/// at zero heap allocations per scan (mirrors `ShardView`'s chunking).
pub const SCAN_RUN: usize = 128;

/// Rows laid out in fixed-size chunks (the last chunk may be short).
///
/// `visit_chunk_rows` is the only data-access primitive; everything else —
/// ordered scans, shard scans, metrics — is derived from it, so a new
/// storage backend (file-backed chunk store, buffer-pool table) implements
/// one method and inherits the whole training stack.
pub trait ChunkedRows {
    /// Number of rows.
    fn len(&self) -> usize;

    /// Whether the dataset holds no rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feature dimensionality `d`.
    fn dim(&self) -> usize;

    /// Rows per full chunk (≥ 1). The final chunk holds the remainder.
    fn chunk_len(&self) -> usize;

    /// Number of chunks: `⌈len / chunk_len⌉`.
    fn num_chunks(&self) -> usize {
        self.len().div_ceil(self.chunk_len())
    }

    /// Rows held by chunk `chunk`.
    ///
    /// # Panics
    /// Panics if `chunk >= num_chunks()`.
    fn rows_in_chunk(&self, chunk: usize) -> usize {
        let chunks = self.num_chunks();
        assert!(chunk < chunks, "chunk {chunk} out of range ({chunks} chunks)");
        let cl = self.chunk_len();
        if chunk + 1 == chunks {
            self.len() - chunk * cl
        } else {
            cl
        }
    }

    /// Pins chunk `chunk` and streams the rows at the given chunk-local
    /// indices: `visit(k, features, label)` for the `k`-th entry of
    /// `locals`. The chunk (page, cache entry) need only stay resident for
    /// the duration of the call — no lifetimes escape the storage layer.
    ///
    /// # Panics
    /// Implementations panic if `chunk` or any local index is out of range.
    fn visit_chunk_rows(
        &self,
        chunk: usize,
        locals: &[usize],
        visit: &mut dyn FnMut(usize, &[f64], f64),
    );
}

/// Chunked rows that can additionally stream *sparse* rows, handing the
/// visitor each example's [`SparseVec`] without densification — the chunked
/// counterpart of [`SparseTrainSet`](crate::dataset::SparseTrainSet).
pub trait SparseChunkedRows: ChunkedRows {
    /// Like [`ChunkedRows::visit_chunk_rows`], but hands out sparse rows.
    ///
    /// # Panics
    /// Implementations panic if `chunk` or any local index is out of range.
    fn visit_chunk_rows_sparse(
        &self,
        chunk: usize,
        locals: &[usize],
        visit: &mut dyn FnMut(usize, &SparseVec, f64),
    );
}

/// Splits `order` into maximal same-chunk runs (capped at [`SCAN_RUN`]) and
/// dispatches each run through `per_run(chunk, locals, base_position)`.
fn for_each_run(
    m: usize,
    chunk_len: usize,
    order: &[usize],
    per_run: &mut dyn FnMut(usize, &[usize], usize),
) {
    debug_assert!(chunk_len >= 1, "chunk_len must be positive");
    let mut locals = [0usize; SCAN_RUN];
    let mut start = 0usize;
    while start < order.len() {
        let chunk = order[start] / chunk_len;
        let mut run = 1usize;
        while run < SCAN_RUN && start + run < order.len() && order[start + run] / chunk_len == chunk
        {
            run += 1;
        }
        for (slot, &g) in locals.iter_mut().zip(&order[start..start + run]) {
            assert!(g < m, "scan index {g} out of range ({m} rows)");
            *slot = g - chunk * chunk_len;
        }
        per_run(chunk, &locals[..run], start);
        start += run;
    }
}

/// The one ordered dense scan: visits `order`'s rows in order, pinning each
/// chunk once per same-chunk run. Backs every
/// [`TrainSet::scan_order`](crate::dataset::TrainSet::scan_order)
/// implementation in the workspace.
///
/// # Panics
/// Panics if any index in `order` is out of range.
pub fn scan_order<C: ChunkedRows + ?Sized>(
    data: &C,
    order: &[usize],
    visit: &mut dyn FnMut(usize, &[f64], f64),
) {
    if order.is_empty() {
        return;
    }
    // Degenerate single-chunk stores (the in-memory datasets) skip run
    // detection entirely: no per-row division, no index translation, one
    // pin — the engine's inner loop stays as direct as before the
    // refactor.
    if data.num_chunks() <= 1 {
        data.visit_chunk_rows(0, order, visit);
        return;
    }
    for_each_run(data.len(), data.chunk_len(), order, &mut |chunk, locals, base| {
        data.visit_chunk_rows(chunk, locals, &mut |k, x, y| visit(base + k, x, y));
    });
}

/// The one ordered sparse scan; backs every
/// [`SparseTrainSet::scan_order_sparse`](crate::dataset::SparseTrainSet::scan_order_sparse)
/// implementation.
///
/// # Panics
/// Panics if any index in `order` is out of range.
pub fn scan_order_sparse<C: SparseChunkedRows + ?Sized>(
    data: &C,
    order: &[usize],
    visit: &mut dyn FnMut(usize, &SparseVec, f64),
) {
    if order.is_empty() {
        return;
    }
    if data.num_chunks() <= 1 {
        data.visit_chunk_rows_sparse(0, order, visit);
        return;
    }
    for_each_run(data.len(), data.chunk_len(), order, &mut |chunk, locals, base| {
        data.visit_chunk_rows_sparse(chunk, locals, &mut |k, x, y| visit(base + k, x, y));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy chunked store: row i has features [i, 2i] and label ±1.
    struct Toy {
        rows: usize,
        cl: usize,
        pins: std::cell::Cell<usize>,
    }

    impl Toy {
        fn new(rows: usize, cl: usize) -> Self {
            Self { rows, cl, pins: std::cell::Cell::new(0) }
        }
    }

    impl ChunkedRows for Toy {
        fn len(&self) -> usize {
            self.rows
        }
        fn dim(&self) -> usize {
            2
        }
        fn chunk_len(&self) -> usize {
            self.cl
        }
        fn visit_chunk_rows(
            &self,
            chunk: usize,
            locals: &[usize],
            visit: &mut dyn FnMut(usize, &[f64], f64),
        ) {
            self.pins.set(self.pins.get() + 1);
            assert!(chunk < self.num_chunks(), "chunk out of range");
            for (k, &l) in locals.iter().enumerate() {
                let i = chunk * self.cl + l;
                assert!(l < self.rows_in_chunk(chunk), "local out of range");
                let x = [i as f64, 2.0 * i as f64];
                visit(k, &x, if i.is_multiple_of(2) { 1.0 } else { -1.0 });
            }
        }
    }

    #[test]
    fn scan_visits_in_order_with_positions() {
        let toy = Toy::new(10, 4);
        let order = [9usize, 1, 2, 3, 0, 8];
        let mut seen = Vec::new();
        scan_order(&toy, &order, &mut |pos, x, y| seen.push((pos, x[0], y)));
        assert_eq!(seen.len(), order.len());
        for (pos, &(seen_pos, x0, y)) in seen.iter().enumerate() {
            assert_eq!(pos, seen_pos);
            assert_eq!(x0, order[pos] as f64);
            assert_eq!(y, if order[pos].is_multiple_of(2) { 1.0 } else { -1.0 });
        }
    }

    #[test]
    fn chunk_local_order_pins_each_chunk_once() {
        let toy = Toy::new(12, 4);
        // A chunk-local order: all of chunk 2, then 0, then 1.
        let order: Vec<usize> = (8..12).chain(0..4).chain(4..8).collect();
        scan_order(&toy, &order, &mut |_, _, _| {});
        assert_eq!(toy.pins.get(), 3, "one pin per chunk-run expected");
    }

    #[test]
    fn runs_are_capped_at_scan_run() {
        // Two chunks (so the fast path doesn't apply); a long same-chunk
        // prefix must still split into SCAN_RUN-sized runs.
        let toy = Toy::new(3 * SCAN_RUN + 10, 3 * SCAN_RUN);
        let order: Vec<usize> = (0..3 * SCAN_RUN).collect();
        let mut count = 0usize;
        scan_order(&toy, &order, &mut |_, _, _| count += 1);
        assert_eq!(count, 3 * SCAN_RUN);
        assert_eq!(toy.pins.get(), 3, "runs must cap at SCAN_RUN");
    }

    /// A single-chunk store (the in-memory degenerate case) is scanned
    /// with exactly one pin and no run detection.
    #[test]
    fn single_chunk_fast_path_pins_once() {
        let toy = Toy::new(3 * SCAN_RUN, 3 * SCAN_RUN);
        let order: Vec<usize> = (0..3 * SCAN_RUN).rev().collect();
        let mut seen = Vec::new();
        scan_order(&toy, &order, &mut |pos, x, _| seen.push((pos, x[0])));
        assert_eq!(toy.pins.get(), 1, "single chunk must pin once");
        assert_eq!(seen.len(), order.len());
        for (pos, &(p, x0)) in seen.iter().enumerate() {
            assert_eq!(pos, p);
            assert_eq!(x0, order[pos] as f64);
        }
    }

    #[test]
    fn rows_in_chunk_covers_remainder() {
        let toy = Toy::new(10, 4);
        assert_eq!(toy.num_chunks(), 3);
        assert_eq!(toy.rows_in_chunk(0), 4);
        assert_eq!(toy.rows_in_chunk(2), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_rejected() {
        let toy = Toy::new(5, 2);
        scan_order(&toy, &[5], &mut |_, _, _| {});
    }
}

//! SVRG — Stochastic Variance Reduced Gradient (Johnson & Zhang, NeurIPS
//! 2013).
//!
//! The paper names SVRG (and SAG) as further *non-adaptive* algorithms its
//! "randomness one at a time" privacy argument covers (Definition 7 and the
//! surrounding discussion): the sampling choices are independent of the
//! data values. This module provides the optimizer; a closed-form
//! L2-sensitivity for SVRG is not part of the paper (its bounds are proved
//! for plain PSGD), so private use should calibrate via the replayed
//! recursion or stick to PSGD — see `bolton::sensitivity`.
//!
//! Per epoch `s`: snapshot `w̃ ← w` and the full gradient
//! `μ̃ = ∇L_S(w̃)`; then for each step, with example `i`,
//!
//! ```text
//! w ← Π( w − η·(∇ℓ_i(w) − ∇ℓ_i(w̃) + μ̃) )
//! ```
//!
//! The correction term keeps the update unbiased while shrinking its
//! variance as `w → w̃`, enabling constant step sizes.

use crate::dataset::TrainSet;
use crate::engine::SgdOutcome;
use crate::loss::Loss;
use bolton_linalg::vector;
use bolton_rng::{random_permutation, Rng};

/// Configuration for SVRG.
#[derive(Clone, Copy, Debug)]
pub struct SvrgConfig {
    /// Number of outer epochs (each = one snapshot pass + one update pass).
    pub epochs: usize,
    /// Constant step size η (SVRG's hallmark; no decay needed).
    pub step: f64,
    /// Optional projection radius.
    pub projection_radius: Option<f64>,
}

impl SvrgConfig {
    /// A configuration with the given epoch count and step.
    pub fn new(epochs: usize, step: f64) -> Self {
        Self { epochs, step, projection_radius: None }
    }

    /// Enables projected updates.
    pub fn with_projection(mut self, radius: f64) -> Self {
        self.projection_radius = Some(radius);
        self
    }
}

/// Runs SVRG with permutation-ordered inner loops (non-adaptive, like
/// PSGD: all sampling is independent of data values).
///
/// # Panics
/// Panics on an empty dataset or a non-positive step.
pub fn run_svrg<D, R>(data: &D, loss: &dyn Loss, config: &SvrgConfig, rng: &mut R) -> SgdOutcome
where
    D: TrainSet + ?Sized,
    R: Rng + ?Sized,
{
    let m = data.len();
    let d = data.dim();
    assert!(m > 0, "training set must be non-empty");
    assert!(config.step > 0.0 && config.step.is_finite(), "step must be positive");
    assert!(config.epochs >= 1, "at least one epoch");

    let mut w = vec![0.0; d];
    let mut snapshot = vec![0.0; d];
    let mut full_grad = vec![0.0; d];
    let mut grad_w = vec![0.0; d];
    let mut grad_snap = vec![0.0; d];
    let mut updates = 0u64;

    for _epoch in 0..config.epochs {
        // Snapshot pass: w̃ and μ̃ = ∇L_S(w̃).
        snapshot.copy_from_slice(&w);
        vector::fill_zero(&mut full_grad);
        data.scan(&mut |_, x, y| {
            loss.add_gradient(&snapshot, x, y, &mut full_grad);
        });
        vector::scale(1.0 / m as f64, &mut full_grad);

        // Update pass in a fresh permutation.
        let order = random_permutation(rng, m);
        data.scan_order(&order, &mut |_, x, y| {
            vector::fill_zero(&mut grad_w);
            loss.add_gradient(&w, x, y, &mut grad_w);
            vector::fill_zero(&mut grad_snap);
            loss.add_gradient(&snapshot, x, y, &mut grad_snap);
            // g = ∇ℓ_i(w) − ∇ℓ_i(w̃) + μ̃
            for ((g, s), f) in grad_w.iter_mut().zip(grad_snap.iter()).zip(full_grad.iter()) {
                *g = *g - *s + *f;
            }
            vector::axpy(-config.step, &grad_w, &mut w);
            if let Some(r) = config.projection_radius {
                vector::project_l2_ball(&mut w, r);
            }
            updates += 1;
        });
    }

    SgdOutcome { model: w, updates, passes_completed: config.epochs, epoch_losses: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::InMemoryDataset;
    use crate::engine::{run_psgd, SgdConfig};
    use crate::loss::Logistic;
    use crate::metrics;
    use crate::schedule::StepSize;
    use bolton_rng::seeded;

    fn noisy_problem(m: usize, seed: u64) -> InMemoryDataset {
        let mut rng = seeded(seed);
        let mut features = Vec::with_capacity(m * 4);
        let mut labels = Vec::with_capacity(m);
        for _ in 0..m {
            let x0 = rng.next_range(-0.8, 0.8);
            features.extend_from_slice(&[
                x0,
                rng.next_range(-0.5, 0.5),
                rng.next_range(-0.5, 0.5),
                0.2,
            ]);
            let flip = rng.next_bool(0.1);
            let clean = if x0 >= 0.0 { 1.0 } else { -1.0 };
            labels.push(if flip { -clean } else { clean });
        }
        InMemoryDataset::from_flat(features, labels, 4)
    }

    #[test]
    fn svrg_learns() {
        let data = noisy_problem(1000, 701);
        let loss = Logistic::regularized(1e-3, 1e3);
        let config = SvrgConfig::new(5, 0.5).with_projection(1e3);
        let out = run_svrg(&data, &loss, &config, &mut seeded(702));
        let acc = metrics::accuracy(&out.model, &data);
        assert!(acc > 0.85, "accuracy {acc}");
        assert_eq!(out.updates, 5000);
        assert_eq!(out.passes_completed, 5);
    }

    /// The variance-reduction payoff: at the same epoch budget and a
    /// constant step, SVRG reaches lower training risk than plain PSGD
    /// (PSGD with a large constant step stalls at a noise floor).
    #[test]
    fn svrg_beats_constant_step_psgd_on_risk() {
        let data = noisy_problem(2000, 703);
        let lambda = 1e-2;
        let loss = Logistic::regularized(lambda, 1.0 / lambda);
        let epochs = 8;
        let eta = 0.5;
        let svrg = run_svrg(
            &data,
            &loss,
            &SvrgConfig::new(epochs, eta).with_projection(1.0 / lambda),
            &mut seeded(704),
        );
        let psgd = run_psgd(
            &data,
            &loss,
            &SgdConfig::new(StepSize::Constant(eta))
                .with_passes(epochs)
                .with_projection(1.0 / lambda),
            &mut seeded(705),
        );
        let risk_svrg = metrics::empirical_risk(&loss, &svrg.model, &data);
        let risk_psgd = metrics::empirical_risk(&loss, &psgd.model, &data);
        assert!(
            risk_svrg <= risk_psgd + 1e-6,
            "SVRG risk {risk_svrg} should not exceed PSGD risk {risk_psgd}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let data = noisy_problem(300, 706);
        let loss = Logistic::plain();
        let config = SvrgConfig::new(2, 0.3);
        let a = run_svrg(&data, &loss, &config, &mut seeded(7));
        let b = run_svrg(&data, &loss, &config, &mut seeded(7));
        assert_eq!(a.model, b.model);
        let c = run_svrg(&data, &loss, &config, &mut seeded(8));
        assert_ne!(a.model, c.model);
    }

    #[test]
    fn projection_respected() {
        let data = noisy_problem(200, 707);
        let loss = Logistic::plain();
        let config = SvrgConfig::new(3, 5.0).with_projection(0.2);
        let out = run_svrg(&data, &loss, &config, &mut seeded(708));
        assert!(vector::norm(&out.model) <= 0.2 + 1e-12);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn rejects_bad_step() {
        let data = noisy_problem(10, 709);
        let loss = Logistic::plain();
        run_svrg(&data, &loss, &SvrgConfig::new(1, 0.0), &mut seeded(710));
    }
}

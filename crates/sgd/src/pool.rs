//! A persistent work-stealing worker pool for data-parallel training.
//!
//! The paper's scalability claim (Figure 2) rests on parallel PSGD running
//! at native speed; spawning fresh OS threads for every epoch (the old
//! `std::thread::scope` path) pays spawn/join latency on each call and
//! prevents the hot path from ever being steady-state. [`WorkerPool`]
//! spawns its threads once; every parallel region afterwards — training
//! epochs, tuning grids, benchmark trials — reuses them through a scoped
//! [`ParallelRunner`] handle.
//!
//! # Scheduling
//!
//! A submitted job is a list of tasks. The task index space `0..n` is
//! partitioned into contiguous chunks, one per participant (every pool
//! thread plus the submitting caller). Each participant owns a chunked
//! deque holding its range: owners pop from the front, and an idle
//! participant steals the *back half* of a victim's remaining range —
//! classic chunked work stealing, implemented as a `(lo, hi)` span under a
//! mutex so no unsafe lock-free code is needed at this task granularity
//! (tasks are whole SGD shard runs or grid cells, microseconds at minimum).
//!
//! # Determinism
//!
//! Results are written into per-task slots and returned in task order, so
//! any reduction over them is bit-reproducible no matter which thread ran
//! which task or in what order ranges were stolen. The pool's thread count
//! is an execution resource only; it never influences numeric results.
//!
//! # Deadlock freedom
//!
//! The caller participates in its own job (and a task may itself submit a
//! nested job), so a job always makes progress even when every pool thread
//! is busy elsewhere.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A type-erased, lifetime-erased task. Safety: [`WorkerPool::run`] blocks
/// until every task has finished, so the `'static` is a fiction that never
/// outlives the borrows it hides.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// A participant's chunk of the task index space: a `[lo, hi)` span.
/// Owners pop the front; thieves cut off the back half.
struct RangeDeque {
    span: Mutex<(usize, usize)>,
}

impl RangeDeque {
    fn new(lo: usize, hi: usize) -> Self {
        Self { span: Mutex::new((lo, hi)) }
    }

    /// Pops the next index owned by this participant.
    fn pop_front(&self) -> Option<usize> {
        let mut s = self.span.lock().expect("deque lock");
        if s.0 < s.1 {
            let i = s.0;
            s.0 += 1;
            Some(i)
        } else {
            None
        }
    }

    /// Steals the back half of the remaining span (at least one index).
    fn steal_back(&self) -> Option<(usize, usize)> {
        let mut s = self.span.lock().expect("deque lock");
        let len = s.1 - s.0;
        if len == 0 {
            return None;
        }
        let keep = len / 2;
        let stolen = (s.0 + keep, s.1);
        s.1 = s.0 + keep;
        Some(stolen)
    }

    /// Installs a stolen span. Only the owning participant calls this, and
    /// only when its own span is empty.
    fn install(&self, span: (usize, usize)) {
        let mut s = self.span.lock().expect("deque lock");
        debug_assert!(s.0 >= s.1, "installing over a non-empty deque");
        *s = span;
    }

    fn is_empty(&self) -> bool {
        let s = self.span.lock().expect("deque lock");
        s.0 >= s.1
    }
}

/// One submitted parallel region: erased tasks plus the stealing state.
struct Job {
    /// One slot per task; a participant claims an index, then takes the task.
    tasks: Vec<Mutex<Option<Task>>>,
    /// One chunked deque per participant (pool threads + the caller last).
    deques: Vec<RangeDeque>,
    /// Unfinished-task count, guarded for the completion condvar.
    remaining: Mutex<usize>,
    finished: Condvar,
    /// First panic payload observed in any task.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Back-reference to the pool, so a thief installing a stolen span can
    /// re-wake workers that transiently saw every deque empty (the span is
    /// invisible between `steal_back` and `install`). The cycle
    /// `queue → Job → PoolShared` is broken when the caller removes the
    /// finished job from the queue.
    pool: Arc<PoolShared>,
}

impl Job {
    fn new(tasks: Vec<Task>, participants: usize, pool: Arc<PoolShared>) -> Self {
        let n = tasks.len();
        // Partition 0..n into `participants` contiguous near-equal chunks.
        let base = n / participants;
        let extra = n % participants;
        let mut deques = Vec::with_capacity(participants);
        let mut start = 0usize;
        for p in 0..participants {
            let size = base + usize::from(p < extra);
            deques.push(RangeDeque::new(start, start + size));
            start += size;
        }
        Self {
            tasks: tasks.into_iter().map(|t| Mutex::new(Some(t))).collect(),
            deques,
            remaining: Mutex::new(n),
            finished: Condvar::new(),
            panic: Mutex::new(None),
            pool,
        }
    }

    /// Claims the next task index: own deque first, then steal, sweeping
    /// victims cyclically. Returns `None` when no claimable work is left
    /// (a stolen-but-not-yet-installed span is owned by its thief, so
    /// nothing is ever lost).
    fn claim(&self, me: usize) -> Option<usize> {
        if let Some(i) = self.deques[me].pop_front() {
            return Some(i);
        }
        let k = self.deques.len();
        for offset in 1..k {
            let victim = (me + offset) % k;
            if let Some((lo, hi)) = self.deques[victim].steal_back() {
                // Run the first stolen index now; queue the rest locally,
                // then re-wake any worker that went to sleep while the
                // span was in flight between steal and install. Taking the
                // queue lock first serializes with a worker's
                // observe-empty-then-wait critical section, so the notify
                // cannot land in the gap before its `wait`.
                if lo + 1 < hi {
                    self.deques[me].install((lo + 1, hi));
                    let _queue = self.pool.queue.lock().expect("queue lock");
                    self.pool.work_cv.notify_all();
                }
                return Some(lo);
            }
        }
        None
    }

    /// Claims and runs tasks until no claimable work remains.
    fn run_available(&self, me: usize) {
        while let Some(i) = self.claim(me) {
            let task = self.tasks[i].lock().expect("task slot lock").take();
            if let Some(task) = task {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                    let mut first = self.panic.lock().expect("panic slot lock");
                    if first.is_none() {
                        *first = Some(payload);
                    }
                }
                let mut rem = self.remaining.lock().expect("remaining lock");
                *rem -= 1;
                if *rem == 0 {
                    self.finished.notify_all();
                }
            }
        }
    }

    fn has_claimable(&self) -> bool {
        self.deques.iter().any(|d| !d.is_empty())
    }
}

struct PoolShared {
    /// Jobs with potentially claimable work. Small (usually 0 or 1 entries);
    /// the caller removes its job on completion.
    queue: Mutex<Vec<Arc<Job>>>,
    work_cv: Condvar,
    shutdown: AtomicBool,
}

/// A persistent pool of worker threads executing parallel regions.
///
/// See the [module docs](self) for the scheduling and determinism model.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// Spawns a pool with `threads` long-lived worker threads.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "pool needs at least one thread");
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(Vec::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..threads)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bolton-pool-{me}"))
                    .spawn(move || worker_main(&shared, me))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, handles, threads }
    }

    /// Number of worker threads (the caller participates on top of these).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A scoped handle for submitting parallel regions to this pool.
    pub fn runner(&self) -> ParallelRunner<'_> {
        ParallelRunner { pool: self }
    }

    /// Runs every task to completion, returning results in task order.
    ///
    /// The calling thread participates in the work, so this also makes
    /// progress when all workers are busy (including nested calls from
    /// inside a task).
    ///
    /// # Panics
    /// If a task panics, the panic is re-raised here after all other tasks
    /// finish; the pool itself stays usable.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            // A single task gains nothing from scheduling; run it inline.
            let mut tasks = tasks;
            return vec![(tasks.pop().expect("one task"))()];
        }

        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let erased: Vec<Task> = tasks
            .into_iter()
            .zip(results.iter())
            .map(|(f, slot)| {
                let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let out = f();
                    *slot.lock().expect("result slot lock") = Some(out);
                });
                // SAFETY: `run` blocks until `remaining` hits zero, i.e.
                // until every erased closure has returned, so the borrows
                // captured by `task` (the result slots and the caller's
                // environment) strictly outlive every use.
                unsafe {
                    std::mem::transmute::<
                        Box<dyn FnOnce() + Send + '_>,
                        Box<dyn FnOnce() + Send + 'static>,
                    >(task)
                }
            })
            .collect();

        // The caller is the last participant.
        let caller = self.threads;
        let job = Arc::new(Job::new(erased, self.threads + 1, Arc::clone(&self.shared)));
        {
            let mut queue = self.shared.queue.lock().expect("queue lock");
            queue.push(Arc::clone(&job));
        }
        self.shared.work_cv.notify_all();

        job.run_available(caller);
        let mut rem = job.remaining.lock().expect("remaining lock");
        while *rem > 0 {
            rem = job.finished.wait(rem).expect("finished wait");
        }
        drop(rem);
        {
            let mut queue = self.shared.queue.lock().expect("queue lock");
            queue.retain(|j| !Arc::ptr_eq(j, &job));
        }
        if let Some(payload) = job.panic.lock().expect("panic slot lock").take() {
            resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot lock")
                    .expect("task finished without producing a result")
            })
            .collect()
    }

    /// Splits `[0, n)` into up to `parts` near-equal contiguous ranges and
    /// runs `f(lo, hi)` for each on the pool, returning the results in
    /// range order (so concatenating them reconstructs item order).
    ///
    /// This is the data-parallel shape the serving layer's batch scorer
    /// uses: range `r` covers `[r·⌈n/parts⌉ … )` with the remainder spread
    /// over the leading ranges, the same split as `StoredDataset::split`.
    /// Empty inputs return no ranges; `parts` is clamped to `n`.
    pub fn run_ranges<T, F>(&self, n: usize, parts: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let parts = parts.clamp(1, n);
        let base = n / parts;
        let extra = n % parts;
        let f = &f;
        let mut lo = 0usize;
        let tasks: Vec<_> = (0..parts)
            .map(|p| {
                let size = base + usize::from(p < extra);
                let range = (lo, lo + size);
                lo += size;
                move || f(range.0, range.1)
            })
            .collect();
        debug_assert_eq!(lo, n, "ranges must cover [0, n)");
        self.run(tasks)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_cv.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_main(shared: &PoolShared, me: usize) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = queue.iter().find(|j| j.has_claimable()) {
                    break Arc::clone(job);
                }
                queue = shared.work_cv.wait(queue).expect("work wait");
            }
        };
        job.run_available(me);
    }
}

/// A scoped, copyable handle for submitting parallel regions to a
/// [`WorkerPool`]. All pool consumers ([`crate::parallel::run_parallel_psgd_on`],
/// the tuning grid, the bench harness) take this instead of a concrete pool
/// so tests can pin pools of any size.
#[derive(Clone, Copy)]
pub struct ParallelRunner<'p> {
    pool: &'p WorkerPool,
}

impl ParallelRunner<'_> {
    /// Runs every task on the pool, returning results in task order. See
    /// [`WorkerPool::run`].
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        self.pool.run(tasks)
    }

    /// Worker-thread count of the underlying pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Range fan-out on the pool. See [`WorkerPool::run_ranges`].
    pub fn run_ranges<T, F>(&self, n: usize, parts: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, usize) -> T + Sync,
    {
        self.pool.run_ranges(n, parts, f)
    }
}

/// Thread count for the process-global pool: `BOLTON_THREADS` if set to a
/// positive integer, otherwise the hardware's available parallelism.
fn default_threads() -> usize {
    std::env::var("BOLTON_THREADS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n: &usize| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// The process-global pool, created on first use and kept for the process
/// lifetime so every epoch/grid/bench reuses the same threads.
pub fn global() -> &'static WorkerPool {
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(|| WorkerPool::new(default_threads()))
}

/// A runner on the process-global pool.
pub fn runner() -> ParallelRunner<'static> {
    global().runner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn run_ranges_covers_in_order() {
        let pool = WorkerPool::new(3);
        assert_eq!(
            pool.run_ranges(10, 4, |lo, hi| (lo, hi)),
            vec![(0, 3), (3, 6), (6, 8), (8, 10)]
        );
        let flat: Vec<usize> =
            pool.run_ranges(100, 7, |lo, hi| (lo..hi).collect::<Vec<_>>()).concat();
        assert_eq!(flat, (0..100).collect::<Vec<_>>());
        assert!(pool.run_ranges(0, 4, |_, _| ()).is_empty());
        // parts > n clamps to one item per range.
        assert_eq!(pool.run_ranges(3, 16, |lo, hi| hi - lo), vec![1, 1, 1]);
    }

    #[test]
    fn results_come_back_in_task_order() {
        let pool = WorkerPool::new(3);
        let tasks: Vec<_> = (0..100usize)
            .map(|i| {
                move || {
                    // Mix up completion timing a little.
                    if i % 7 == 0 {
                        std::thread::yield_now();
                    }
                    i * i
                }
            })
            .collect();
        let out = pool.runner().run(tasks);
        assert_eq!(out, (0..100usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_task_jobs() {
        let pool = WorkerPool::new(1);
        let none: Vec<usize> = pool.run(Vec::<fn() -> usize>::new());
        assert!(none.is_empty());
        assert_eq!(pool.run(vec![|| 41 + 1]), vec![42]);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        for _ in 0..20 {
            let tasks: Vec<_> = (0..37)
                .map(|_| {
                    let counter = &counter;
                    move || counter.fetch_add(1, Ordering::SeqCst)
                })
                .collect();
            pool.run(tasks);
        }
        assert_eq!(counter.load(Ordering::SeqCst), 20 * 37);
    }

    #[test]
    fn tasks_borrow_caller_state() {
        let pool = WorkerPool::new(2);
        let data: Vec<f64> = (0..1000).map(f64::from).collect();
        let chunks: Vec<&[f64]> = data.chunks(97).collect();
        let sums =
            pool.run(chunks.iter().map(|c| move || c.iter().sum::<f64>()).collect::<Vec<_>>());
        assert_eq!(sums.iter().sum::<f64>(), data.iter().sum::<f64>());
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(
                (0..8)
                    .map(|i| move || if i == 5 { panic!("worker 5 exploded") } else { i })
                    .collect::<Vec<_>>(),
            )
        }));
        let payload = result.expect_err("panic must propagate to the caller");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("worker 5 exploded"), "unexpected payload: {msg}");
        // The pool stays usable after a task panic.
        assert_eq!(pool.run(vec![|| 1, || 2]), vec![1, 2]);
    }

    #[test]
    fn nested_jobs_do_not_deadlock() {
        let pool = WorkerPool::new(1);
        let outer: Vec<_> = (0..4usize)
            .map(|i| {
                let pool = &pool;
                move || {
                    let inner =
                        pool.run((0..3usize).map(|j| move || i * 10 + j).collect::<Vec<_>>());
                    inner.iter().sum::<usize>()
                }
            })
            .collect();
        let sums = pool.run(outer);
        assert_eq!(sums, vec![3, 33, 63, 93]);
    }

    #[test]
    fn stealing_covers_imbalanced_tasks() {
        // One participant's initial chunk holds all the slow tasks; the
        // others must steal from it to finish.
        let pool = WorkerPool::new(3);
        let tasks: Vec<_> = (0..32usize)
            .map(|i| {
                move || {
                    if i < 8 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    i
                }
            })
            .collect();
        let out = pool.run(tasks);
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn global_pool_is_reused() {
        let a = global() as *const WorkerPool;
        let b = global() as *const WorkerPool;
        assert_eq!(a, b);
        assert!(runner().threads() >= 1);
    }
}

//! Convex loss functions with their optimization constants.
//!
//! Each loss carries the triple (L, β, γ) — Lipschitz, smoothness, strong
//! convexity — derived exactly as in Section 2 of the paper under the
//! standing assumptions `‖x‖ ≤ 1` and (when λ > 0) `‖w‖ ≤ R`:
//!
//! | loss | L | β | γ |
//! |---|---|---|---|
//! | logistic, λ=0 | 1 | 1 | 0 |
//! | logistic, λ>0 | 1+λR | 1+λ | λ |
//! | Huber SVM, λ=0 | 1 | 1/(2h) | 0 |
//! | Huber SVM, λ>0 | 1+λR | 1/(2h)+λ | λ |
//! | least squares, λ=0 | 1+R | 1 | 0 |
//! | least squares, λ>0 | 1+R+λR | 1+λ | λ |

/// A per-example convex loss `ℓ(w; (x, y))` with known constants.
pub trait Loss {
    /// Loss value at `w` on example `(x, y)`.
    fn value(&self, w: &[f64], x: &[f64], y: f64) -> f64;

    /// Accumulates `∇ℓ(w; (x, y))` into `grad` (adds, does not overwrite, so
    /// mini-batches can share one buffer).
    fn add_gradient(&self, w: &[f64], x: &[f64], y: f64, grad: &mut [f64]);

    /// Lipschitz constant L (bound on `‖∇ℓ‖`).
    fn lipschitz(&self) -> f64;

    /// Smoothness constant β (bound on `‖H(ℓ)‖`).
    fn smoothness(&self) -> f64;

    /// Strong-convexity modulus γ (0 for merely convex losses).
    fn strong_convexity(&self) -> f64;

    /// The L2-regularization coefficient λ baked into this loss.
    fn lambda(&self) -> f64;

    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Whether the loss is strongly convex (γ > 0).
    fn is_strongly_convex(&self) -> bool {
        self.strong_convexity() > 0.0
    }

    /// The scalar derivative `φ′(z, y)` of the generalized-linear form
    /// `ℓ(w; (x, y)) = φ(⟨w, x⟩, y) + (λ/2)‖w‖²`, where
    /// `∇ℓ = φ′(z, y)·x + λw` — the structure the O(nnz) sparse engine
    /// ([`crate::sparse_engine`]) relies on: the data-dependent gradient is
    /// a *scalar multiple of the example*, and the `λw` term becomes a
    /// multiplicative shrink of the lazily scaled model.
    ///
    /// Every built-in loss has this form; the default `None` routes custom
    /// losses to the dense engine.
    fn glm_derivative(&self, z: f64, y: f64) -> Option<f64> {
        let _ = (z, y);
        None
    }

    /// The unregularized value `φ(z, y)` at score `z = ⟨w, x⟩` (companion
    /// of [`Loss::glm_derivative`]; the full loss adds `(λ/2)‖w‖²`).
    fn glm_value(&self, z: f64, y: f64) -> Option<f64> {
        let _ = (z, y);
        None
    }
}

/// Numerically stable `ln(1 + e^t)`.
#[inline]
fn log1p_exp(t: f64) -> f64 {
    if t > 0.0 {
        t + (-t).exp().ln_1p()
    } else {
        t.exp().ln_1p()
    }
}

/// Numerically stable logistic sigmoid `1/(1 + e^{−t})`.
#[inline]
fn sigmoid(t: f64) -> f64 {
    if t >= 0.0 {
        1.0 / (1.0 + (-t).exp())
    } else {
        let e = t.exp();
        e / (1.0 + e)
    }
}

fn check_reg(lambda: f64, radius: f64) {
    assert!(lambda >= 0.0 && lambda.is_finite(), "lambda must be finite and >= 0");
    if lambda > 0.0 {
        assert!(
            radius.is_finite() && radius > 0.0,
            "strong convexity (lambda > 0) requires a finite hypothesis radius R"
        );
    }
}

/// L2-regularized logistic regression (paper Equation 1):
/// `ℓ(w, (x, y)) = ln(1 + exp(−y⟨w, x⟩)) + (λ/2)‖w‖²`.
#[derive(Clone, Copy, Debug)]
pub struct Logistic {
    lambda: f64,
    radius: f64,
}

impl Logistic {
    /// Plain (unregularized, merely convex) logistic loss.
    pub fn plain() -> Self {
        Self { lambda: 0.0, radius: f64::INFINITY }
    }

    /// λ-regularized logistic loss over the ball `‖w‖ ≤ radius`.
    ///
    /// # Panics
    /// Panics if λ < 0, or λ > 0 without a finite positive radius.
    pub fn regularized(lambda: f64, radius: f64) -> Self {
        check_reg(lambda, radius);
        Self { lambda, radius }
    }
}

impl Loss for Logistic {
    fn value(&self, w: &[f64], x: &[f64], y: f64) -> f64 {
        let z = bolton_linalg::vector::dot(w, x);
        self.glm_value(z, y).expect("logistic is GLM-form")
            + 0.5 * self.lambda * bolton_linalg::vector::norm_sq(w)
    }

    fn add_gradient(&self, w: &[f64], x: &[f64], y: f64, grad: &mut [f64]) {
        let z = bolton_linalg::vector::dot(w, x);
        // ∇ = −y·σ(−y z)·x + λw
        let coeff = self.glm_derivative(z, y).expect("logistic is GLM-form");
        bolton_linalg::vector::axpy(coeff, x, grad);
        if self.lambda > 0.0 {
            bolton_linalg::vector::axpy(self.lambda, w, grad);
        }
    }

    fn glm_derivative(&self, z: f64, y: f64) -> Option<f64> {
        Some(-y * sigmoid(-y * z))
    }

    fn glm_value(&self, z: f64, y: f64) -> Option<f64> {
        Some(log1p_exp(-y * z))
    }

    fn lipschitz(&self) -> f64 {
        if self.lambda == 0.0 {
            1.0
        } else {
            1.0 + self.lambda * self.radius
        }
    }

    fn smoothness(&self) -> f64 {
        1.0 + self.lambda
    }

    fn strong_convexity(&self) -> f64 {
        self.lambda
    }

    fn lambda(&self) -> f64 {
        self.lambda
    }

    fn name(&self) -> &'static str {
        "logistic"
    }
}

/// Huber-smoothed SVM loss (Appendix B), parameterized by half-width `h`:
///
/// ```text
///            ⎧ 0                       z > 1 + h
/// ℓ_huber =  ⎨ (1 + h − z)²/(4h)       |1 − z| ≤ h     where z = y⟨w, x⟩
///            ⎩ 1 − z                   z < 1 − h
/// ```
/// plus `(λ/2)‖w‖²`.
#[derive(Clone, Copy, Debug)]
pub struct HuberSvm {
    h: f64,
    lambda: f64,
    radius: f64,
}

impl HuberSvm {
    /// Unregularized Huber SVM with smoothing half-width `h` (paper uses 0.1).
    ///
    /// # Panics
    /// Panics unless `0 < h <= 1`.
    pub fn plain(h: f64) -> Self {
        Self::regularized(h, 0.0, f64::INFINITY)
    }

    /// λ-regularized Huber SVM over the ball `‖w‖ ≤ radius`.
    ///
    /// # Panics
    /// Panics unless `0 < h <= 1`; see [`Logistic::regularized`] for λ rules.
    pub fn regularized(h: f64, lambda: f64, radius: f64) -> Self {
        assert!(h > 0.0 && h <= 1.0, "huber half-width must be in (0, 1]");
        check_reg(lambda, radius);
        Self { h, lambda, radius }
    }

    /// The smoothing half-width.
    pub fn half_width(&self) -> f64 {
        self.h
    }
}

impl Loss for HuberSvm {
    fn value(&self, w: &[f64], x: &[f64], y: f64) -> f64 {
        let z = bolton_linalg::vector::dot(w, x);
        self.glm_value(z, y).expect("huber is GLM-form")
            + 0.5 * self.lambda * bolton_linalg::vector::norm_sq(w)
    }

    fn add_gradient(&self, w: &[f64], x: &[f64], y: f64, grad: &mut [f64]) {
        let z = bolton_linalg::vector::dot(w, x);
        let coeff = self.glm_derivative(z, y).expect("huber is GLM-form");
        if coeff != 0.0 {
            bolton_linalg::vector::axpy(coeff, x, grad);
        }
        if self.lambda > 0.0 {
            bolton_linalg::vector::axpy(self.lambda, w, grad);
        }
    }

    fn glm_derivative(&self, z: f64, y: f64) -> Option<f64> {
        let zy = y * z;
        let dz = if zy > 1.0 + self.h {
            0.0
        } else if zy < 1.0 - self.h {
            -1.0
        } else {
            -(1.0 + self.h - zy) / (2.0 * self.h)
        };
        Some(dz * y)
    }

    fn glm_value(&self, z: f64, y: f64) -> Option<f64> {
        let zy = y * z;
        Some(if zy > 1.0 + self.h {
            0.0
        } else if zy < 1.0 - self.h {
            1.0 - zy
        } else {
            let t = 1.0 + self.h - zy;
            t * t / (4.0 * self.h)
        })
    }

    fn lipschitz(&self) -> f64 {
        if self.lambda == 0.0 {
            1.0
        } else {
            1.0 + self.lambda * self.radius
        }
    }

    fn smoothness(&self) -> f64 {
        1.0 / (2.0 * self.h) + self.lambda
    }

    fn strong_convexity(&self) -> f64 {
        self.lambda
    }

    fn lambda(&self) -> f64 {
        self.lambda
    }

    fn name(&self) -> &'static str {
        "huber-svm"
    }
}

/// Squared loss `½(⟨w, x⟩ − y)² + (λ/2)‖w‖²` for |y| ≤ 1, used by the
/// regression example and as a third convex workload in tests.
#[derive(Clone, Copy, Debug)]
pub struct LeastSquares {
    lambda: f64,
    radius: f64,
}

impl LeastSquares {
    /// Unregularized least squares over the ball `‖w‖ ≤ radius` (the radius
    /// is required even at λ = 0 because the Lipschitz constant depends on
    /// it: `L = R + 1`).
    ///
    /// # Panics
    /// Panics unless `radius` is finite and positive.
    pub fn new(radius: f64) -> Self {
        assert!(radius.is_finite() && radius > 0.0, "least squares requires a finite radius");
        Self { lambda: 0.0, radius }
    }

    /// λ-regularized least squares over the ball `‖w‖ ≤ radius`.
    pub fn regularized(lambda: f64, radius: f64) -> Self {
        assert!(radius.is_finite() && radius > 0.0, "least squares requires a finite radius");
        check_reg(lambda, radius);
        Self { lambda, radius }
    }
}

impl Loss for LeastSquares {
    fn value(&self, w: &[f64], x: &[f64], y: f64) -> f64 {
        let z = bolton_linalg::vector::dot(w, x);
        self.glm_value(z, y).expect("least squares is GLM-form")
            + 0.5 * self.lambda * bolton_linalg::vector::norm_sq(w)
    }

    fn add_gradient(&self, w: &[f64], x: &[f64], y: f64, grad: &mut [f64]) {
        let z = bolton_linalg::vector::dot(w, x);
        let coeff = self.glm_derivative(z, y).expect("least squares is GLM-form");
        bolton_linalg::vector::axpy(coeff, x, grad);
        if self.lambda > 0.0 {
            bolton_linalg::vector::axpy(self.lambda, w, grad);
        }
    }

    fn glm_derivative(&self, z: f64, y: f64) -> Option<f64> {
        Some(z - y)
    }

    fn glm_value(&self, z: f64, y: f64) -> Option<f64> {
        let r = z - y;
        Some(0.5 * r * r)
    }

    fn lipschitz(&self) -> f64 {
        self.radius + 1.0 + self.lambda * self.radius
    }

    fn smoothness(&self) -> f64 {
        1.0 + self.lambda
    }

    fn strong_convexity(&self) -> f64 {
        self.lambda
    }

    fn lambda(&self) -> f64 {
        self.lambda
    }

    fn name(&self) -> &'static str {
        "least-squares"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolton_linalg::vector::norm;

    /// Central-difference check of `add_gradient` against `value`.
    fn check_gradient(loss: &dyn Loss, w: &[f64], x: &[f64], y: f64) {
        let d = w.len();
        let mut grad = vec![0.0; d];
        loss.add_gradient(w, x, y, &mut grad);
        let eps = 1e-6;
        for i in 0..d {
            let mut wp = w.to_vec();
            let mut wm = w.to_vec();
            wp[i] += eps;
            wm[i] -= eps;
            let numeric = (loss.value(&wp, x, y) - loss.value(&wm, x, y)) / (2.0 * eps);
            assert!(
                (grad[i] - numeric).abs() < 1e-5,
                "{}: coord {i}: analytic {} vs numeric {numeric}",
                loss.name(),
                grad[i]
            );
        }
    }

    #[test]
    fn logistic_gradient_matches_finite_difference() {
        let loss = Logistic::regularized(0.01, 10.0);
        check_gradient(&loss, &[0.3, -0.5, 0.1], &[0.5, 0.5, -0.2], 1.0);
        check_gradient(&loss, &[0.3, -0.5, 0.1], &[0.5, 0.5, -0.2], -1.0);
        check_gradient(&Logistic::plain(), &[2.0, -1.0, 0.0], &[0.1, 0.9, 0.0], -1.0);
    }

    #[test]
    fn huber_gradient_matches_finite_difference_all_branches() {
        let loss = HuberSvm::regularized(0.1, 0.001, 100.0);
        // z > 1+h (flat), |1−z| <= h (quadratic), z < 1−h (linear).
        check_gradient(&loss, &[2.0, 0.0], &[1.0, 0.0], 1.0); // z = 2 > 1.1
        check_gradient(&loss, &[1.0, 0.0], &[1.0, 0.0], 1.0); // z = 1, inside band
        check_gradient(&loss, &[-1.0, 0.0], &[1.0, 0.0], 1.0); // z = −1 < 0.9
    }

    #[test]
    fn least_squares_gradient_matches_finite_difference() {
        let loss = LeastSquares::regularized(0.05, 5.0);
        check_gradient(&loss, &[0.5, -0.25], &[0.8, 0.6], 0.7);
    }

    #[test]
    fn logistic_constants_match_paper() {
        let plain = Logistic::plain();
        assert_eq!(plain.lipschitz(), 1.0);
        assert_eq!(plain.smoothness(), 1.0);
        assert_eq!(plain.strong_convexity(), 0.0);
        assert!(!plain.is_strongly_convex());

        let lambda = 0.0001;
        let radius = 1.0 / lambda;
        let reg = Logistic::regularized(lambda, radius);
        assert!((reg.lipschitz() - 2.0).abs() < 1e-12); // 1 + λR = 1 + 1 = 2
        assert!((reg.smoothness() - 1.0001).abs() < 1e-12);
        assert_eq!(reg.strong_convexity(), lambda);
        assert!(reg.is_strongly_convex());
    }

    #[test]
    fn huber_constants_match_paper() {
        let h = 0.1;
        let plain = HuberSvm::plain(h);
        assert_eq!(plain.lipschitz(), 1.0);
        assert_eq!(plain.smoothness(), 5.0); // 1/(2·0.1)
        let reg = HuberSvm::regularized(h, 0.001, 1000.0);
        assert!((reg.lipschitz() - 2.0).abs() < 1e-12);
        assert!((reg.smoothness() - 5.001).abs() < 1e-12);
    }

    /// Empirical Lipschitz check: ‖∇ℓ‖ ≤ L over random in-domain points.
    #[test]
    fn gradient_norm_bounded_by_lipschitz_constant() {
        use bolton_rng::Rng;
        let mut rng = bolton_rng::seeded(61);
        let losses: Vec<Box<dyn Loss>> = vec![
            Box::new(Logistic::plain()),
            Box::new(Logistic::regularized(0.01, 10.0)),
            Box::new(HuberSvm::plain(0.1)),
            Box::new(HuberSvm::regularized(0.1, 0.01, 10.0)),
            Box::new(LeastSquares::new(3.0)),
        ];
        for loss in &losses {
            let radius = match loss.name() {
                "least-squares" => 3.0,
                _ if loss.lambda() > 0.0 => 10.0,
                _ => 10.0, // L for the unregularized losses is ‖x‖-driven only
            };
            for _ in 0..200 {
                // Random w inside the ball, x inside the unit sphere, y ∈ ±1.
                let mut w: Vec<f64> = (0..4).map(|_| rng.next_range(-1.0, 1.0)).collect();
                bolton_linalg::vector::project_l2_ball(&mut w, radius);
                let mut x: Vec<f64> = (0..4).map(|_| rng.next_range(-1.0, 1.0)).collect();
                bolton_linalg::vector::project_l2_ball(&mut x, 1.0);
                let y = if rng.next_bool(0.5) { 1.0 } else { -1.0 };
                let mut grad = vec![0.0; 4];
                loss.add_gradient(&w, &x, y, &mut grad);
                assert!(
                    norm(&grad) <= loss.lipschitz() + 1e-9,
                    "{}: ‖∇‖ = {} > L = {}",
                    loss.name(),
                    norm(&grad),
                    loss.lipschitz()
                );
            }
        }
    }

    #[test]
    fn gradient_accumulates_rather_than_overwrites() {
        let loss = Logistic::plain();
        let w = [0.1, 0.2];
        let x = [1.0, 0.0];
        let mut a = vec![0.0; 2];
        loss.add_gradient(&w, &x, 1.0, &mut a);
        let mut b = a.clone();
        loss.add_gradient(&w, &x, 1.0, &mut b);
        assert!((b[0] - 2.0 * a[0]).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "requires a finite hypothesis radius")]
    fn regularized_without_radius_panics() {
        Logistic::regularized(0.1, f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "half-width")]
    fn huber_rejects_bad_h() {
        HuberSvm::plain(0.0);
    }

    /// The GLM decomposition is the dense paths' single source of truth:
    /// `value = φ(⟨w,x⟩,y) + (λ/2)‖w‖²` and the data-dependent gradient is
    /// `φ′·x`, for every built-in loss at every branch.
    #[test]
    fn glm_form_matches_dense_paths() {
        use bolton_rng::Rng;
        let losses: Vec<Box<dyn Loss>> = vec![
            Box::new(Logistic::plain()),
            Box::new(Logistic::regularized(0.05, 10.0)),
            Box::new(HuberSvm::plain(0.1)),
            Box::new(HuberSvm::regularized(0.1, 0.01, 10.0)),
            Box::new(LeastSquares::regularized(0.02, 5.0)),
        ];
        let mut rng = bolton_rng::seeded(67);
        for loss in &losses {
            for _ in 0..50 {
                let w: Vec<f64> = (0..3).map(|_| rng.next_range(-2.0, 2.0)).collect();
                let x: Vec<f64> = (0..3).map(|_| rng.next_range(-0.5, 0.5)).collect();
                let y = if rng.next_bool(0.5) { 1.0 } else { -1.0 };
                let z = bolton_linalg::vector::dot(&w, &x);
                let phi = loss.glm_value(z, y).expect("built-in losses are GLM-form");
                let reg = 0.5 * loss.lambda() * bolton_linalg::vector::norm_sq(&w);
                assert_eq!(loss.value(&w, &x, y), phi + reg, "{}", loss.name());
                let coeff = loss.glm_derivative(z, y).expect("built-in losses are GLM-form");
                let mut grad = vec![0.0; 3];
                loss.add_gradient(&w, &x, y, &mut grad);
                let mut expect = vec![0.0; 3];
                bolton_linalg::vector::axpy(coeff, &x, &mut expect);
                bolton_linalg::vector::axpy(loss.lambda(), &w, &mut expect);
                for (g, e) in grad.iter().zip(expect.iter()) {
                    assert!((g - e).abs() < 1e-12, "{}", loss.name());
                }
            }
        }
    }

    #[test]
    fn logistic_value_is_stable_for_large_scores() {
        let loss = Logistic::plain();
        // Huge score: loss at correct label ≈ 0, at wrong label ≈ |z|.
        let w = [100.0, 0.0];
        let x = [1.0, 0.0];
        let right = loss.value(&w, &x, 1.0);
        let wrong = loss.value(&w, &x, -1.0);
        assert!(right.is_finite() && right < 1e-30);
        assert!((wrong - 100.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod definition1_proptests {
    //! Property tests of Definition 1: each loss satisfies the convexity,
    //! Lipschitz, strong convexity, and smoothness inequalities with its
    //! *claimed* constants, over random in-domain points. This is the
    //! ground the entire sensitivity analysis stands on.

    use super::*;
    use bolton_linalg::vector;
    use proptest::prelude::*;

    fn in_ball(raw: Vec<f64>, radius: f64) -> Vec<f64> {
        let mut v = raw;
        vector::project_l2_ball(&mut v, radius);
        v
    }

    fn gradient(loss: &dyn Loss, w: &[f64], x: &[f64], y: f64) -> Vec<f64> {
        let mut g = vec![0.0; w.len()];
        loss.add_gradient(w, x, y, &mut g);
        g
    }

    fn losses_with_radii() -> Vec<(Box<dyn Loss>, f64)> {
        vec![
            (Box::new(Logistic::plain()), 5.0),
            (Box::new(Logistic::regularized(0.05, 10.0)), 10.0),
            (Box::new(HuberSvm::plain(0.1)), 5.0),
            (Box::new(HuberSvm::regularized(0.2, 0.01, 20.0)), 20.0),
            (Box::new(LeastSquares::regularized(0.05, 3.0)), 3.0),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Convexity + strong convexity (Definition 1, items 1 and 3):
        /// f(u) ≥ f(v) + ⟨∇f(v), u−v⟩ + (γ/2)‖u−v‖².
        #[test]
        fn first_order_lower_bound_holds(
            u_raw in proptest::collection::vec(-3.0f64..3.0, 4),
            v_raw in proptest::collection::vec(-3.0f64..3.0, 4),
            x_raw in proptest::collection::vec(-1.0f64..1.0, 4),
            positive in any::<bool>(),
        ) {
            let x = in_ball(x_raw, 1.0);
            let y = if positive { 1.0 } else { -1.0 };
            for (loss, radius) in losses_with_radii() {
                let u = in_ball(u_raw.clone(), radius);
                let v = in_ball(v_raw.clone(), radius);
                let grad_v = gradient(loss.as_ref(), &v, &x, y);
                let mut diff = vec![0.0; 4];
                vector::sub(&u, &v, &mut diff);
                let gamma = loss.strong_convexity();
                let lower = loss.value(&v, &x, y)
                    + vector::dot(&grad_v, &diff)
                    + 0.5 * gamma * vector::norm_sq(&diff);
                let actual = loss.value(&u, &x, y);
                prop_assert!(
                    actual >= lower - 1e-9 * lower.abs().max(1.0),
                    "{}: f(u) = {actual} < lower bound {lower}",
                    loss.name()
                );
            }
        }

        /// Smoothness (Definition 1, item 4): ‖∇f(u) − ∇f(v)‖ ≤ β‖u − v‖.
        #[test]
        fn gradient_is_beta_lipschitz(
            u_raw in proptest::collection::vec(-3.0f64..3.0, 4),
            v_raw in proptest::collection::vec(-3.0f64..3.0, 4),
            x_raw in proptest::collection::vec(-1.0f64..1.0, 4),
            positive in any::<bool>(),
        ) {
            let x = in_ball(x_raw, 1.0);
            let y = if positive { 1.0 } else { -1.0 };
            for (loss, radius) in losses_with_radii() {
                let u = in_ball(u_raw.clone(), radius);
                let v = in_ball(v_raw.clone(), radius);
                let gu = gradient(loss.as_ref(), &u, &x, y);
                let gv = gradient(loss.as_ref(), &v, &x, y);
                let grad_dist = vector::distance(&gu, &gv);
                let point_dist = vector::distance(&u, &v);
                prop_assert!(
                    grad_dist <= loss.smoothness() * point_dist + 1e-9,
                    "{}: ‖∇f(u)−∇f(v)‖ = {grad_dist} > β·‖u−v‖ = {}",
                    loss.name(),
                    loss.smoothness() * point_dist
                );
            }
        }

        /// The gradient-update operator G_{ℓ,η} is (1−ηγ)-expansive for
        /// η ≤ 1/β (Lemma 2) — measured on the actual operators.
        #[test]
        fn gradient_update_expansiveness(
            u_raw in proptest::collection::vec(-2.0f64..2.0, 4),
            v_raw in proptest::collection::vec(-2.0f64..2.0, 4),
            x_raw in proptest::collection::vec(-1.0f64..1.0, 4),
            eta_frac in 0.05f64..1.0,
        ) {
            let x = in_ball(x_raw, 1.0);
            let y = 1.0;
            for (loss, radius) in losses_with_radii() {
                let u = in_ball(u_raw.clone(), radius);
                let v = in_ball(v_raw.clone(), radius);
                let eta = eta_frac / loss.smoothness();
                let apply = |w: &[f64]| {
                    let g = gradient(loss.as_ref(), w, &x, y);
                    let mut out = w.to_vec();
                    vector::axpy(-eta, &g, &mut out);
                    out
                };
                let before = vector::distance(&u, &v);
                let after = vector::distance(&apply(&u), &apply(&v));
                let rho = 1.0 - eta * loss.strong_convexity();
                prop_assert!(
                    after <= rho * before + 1e-9,
                    "{}: after {after} > ρ·before {}",
                    loss.name(),
                    rho * before
                );
            }
        }

        /// Boundedness (Lemma 3): ‖G(w) − w‖ = η‖∇ℓ(w)‖ ≤ ηL.
        #[test]
        fn gradient_update_boundedness(
            w_raw in proptest::collection::vec(-3.0f64..3.0, 4),
            x_raw in proptest::collection::vec(-1.0f64..1.0, 4),
            positive in any::<bool>(),
            eta in 0.01f64..0.5,
        ) {
            let x = in_ball(x_raw, 1.0);
            let y = if positive { 1.0 } else { -1.0 };
            for (loss, radius) in losses_with_radii() {
                let w = in_ball(w_raw.clone(), radius);
                let g = gradient(loss.as_ref(), &w, &x, y);
                let movement = eta * vector::norm(&g);
                prop_assert!(
                    movement <= eta * loss.lipschitz() + 1e-9,
                    "{}: ‖G(w)−w‖ = {movement} > ηL = {}",
                    loss.name(),
                    eta * loss.lipschitz()
                );
            }
        }
    }
}

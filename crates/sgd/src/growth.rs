//! The growth recursion of Lemma 4, replayed analytically.
//!
//! Two SGD runs on neighboring datasets with identical randomness encounter
//! different gradient operators only at the position of the differing
//! example. Lemma 4 bounds the hypothesis divergence `δ_t = ‖w_t − w'_t‖`:
//!
//! * same operator, ρ-expansive: `δ_t ≤ ρ·δ_{t−1}`
//! * differing operators, σ_t-bounded: `δ_t ≤ min(ρ,1)·δ_{t−1} + 2σ_t`
//!
//! With mini-batch size `b` the additive term becomes `2σ_t/b`
//! (Section 3.2.3). Replaying this recursion for every possible position of
//! the differing example and taking the supremum gives the exact value the
//! paper's closed forms (Lemmas 6–8, Corollaries 1–3) upper-bound; the core
//! crate's tests check `closed_form ≥ replayed ≥ empirical`.

use crate::schedule::StepSize;

/// Loss constants needed by the recursion.
#[derive(Clone, Copy, Debug)]
pub struct LossConstants {
    /// Lipschitz constant L.
    pub lipschitz: f64,
    /// Smoothness β.
    pub smoothness: f64,
    /// Strong convexity γ (0 for merely convex).
    pub strong_convexity: f64,
}

impl LossConstants {
    /// Extracts the constants from a [`crate::loss::Loss`].
    pub fn of(loss: &dyn crate::loss::Loss) -> Self {
        Self {
            lipschitz: loss.lipschitz(),
            smoothness: loss.smoothness(),
            strong_convexity: loss.strong_convexity(),
        }
    }

    /// Expansiveness of the gradient operator `G_{ℓ,η}` (Lemmas 1–2):
    /// `1` for convex losses with `η ≤ 2/β`; `1 − ηγ` for γ-strongly convex
    /// losses with `η ≤ 1/β`.
    ///
    /// # Panics
    /// Panics if `η` exceeds the regime where expansiveness is known
    /// (`η > 2/β`, or `η > 1/β` in the strongly convex case).
    pub fn expansiveness(&self, eta: f64) -> f64 {
        if self.strong_convexity > 0.0 {
            assert!(
                eta <= 1.0 / self.smoothness + 1e-12,
                "strongly convex expansiveness requires eta <= 1/beta (eta={eta}, beta={})",
                self.smoothness
            );
            1.0 - eta * self.strong_convexity
        } else {
            assert!(
                eta <= 2.0 / self.smoothness + 1e-12,
                "convex expansiveness requires eta <= 2/beta (eta={eta}, beta={})",
                self.smoothness
            );
            1.0
        }
    }

    /// Boundedness of the gradient update (Lemma 3): `σ = ηL`.
    pub fn boundedness(&self, eta: f64) -> f64 {
        eta * self.lipschitz
    }
}

/// Replays the growth recursion for `k` passes over `m` examples with
/// mini-batch size `b`, assuming the differing example sits at position
/// `i_star` of the (shared) permutation. Returns the bound on `δ_T`.
///
/// # Panics
/// Panics if `i_star >= m` or any argument is zero.
pub fn replay_delta(
    constants: &LossConstants,
    step: &StepSize,
    k: usize,
    m: usize,
    b: usize,
    i_star: usize,
) -> f64 {
    assert!(k >= 1 && m >= 1 && b >= 1, "k, m, b must be positive");
    assert!(i_star < m, "i_star must index into the permutation");
    let plan = crate::engine::BatchPlan::new(m, b);
    let differing_batch = plan.batch_of_position(i_star);
    let mut delta = 0.0f64;
    let mut t: u64 = 0;
    for _pass in 0..k {
        for batch in 0..plan.batches {
            t += 1;
            let eta = step.eta(t);
            let rho = constants.expansiveness(eta);
            if batch == differing_batch {
                let sigma = constants.boundedness(eta);
                delta = rho.min(1.0) * delta + 2.0 * sigma / plan.size_of(batch) as f64;
            } else {
                delta *= rho;
            }
        }
    }
    delta
}

/// The supremum of [`replay_delta`] over every possible position of the
/// differing example — the replayed L2-sensitivity of the whole run.
pub fn replay_sensitivity(
    constants: &LossConstants,
    step: &StepSize,
    k: usize,
    m: usize,
    b: usize,
) -> f64 {
    let plan = crate::engine::BatchPlan::new(m, b);
    // δ_T depends on i* only through its batch index, so scanning one
    // representative position per batch suffices.
    let mut position = 0usize;
    let mut worst = 0.0f64;
    for batch in 0..plan.batches {
        worst = worst.max(replay_delta(constants, step, k, m, b, position));
        position += plan.size_of(batch);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn convex() -> LossConstants {
        LossConstants { lipschitz: 1.0, smoothness: 1.0, strong_convexity: 0.0 }
    }

    fn strongly_convex(gamma: f64) -> LossConstants {
        LossConstants { lipschitz: 2.0, smoothness: 1.0 + gamma, strong_convexity: gamma }
    }

    #[test]
    fn convex_constant_step_matches_2kl_eta() {
        // Equation (8): each pass contributes exactly 2Lη, so δ_T = 2kLη.
        let c = convex();
        let eta = 0.05;
        for k in [1, 3, 10] {
            let got = replay_sensitivity(&c, &StepSize::Constant(eta), k, 100, 1);
            let expect = 2.0 * k as f64 * c.lipschitz * eta;
            assert!((got - expect).abs() < 1e-12, "k={k}: {got} vs {expect}");
        }
    }

    #[test]
    fn minibatch_divides_sensitivity_by_b() {
        let c = convex();
        let eta = 0.05;
        let base = replay_sensitivity(&c, &StepSize::Constant(eta), 2, 100, 1);
        let batched = replay_sensitivity(&c, &StepSize::Constant(eta), 2, 100, 10);
        assert!((base / batched - 10.0).abs() < 1e-9, "ratio {}", base / batched);
    }

    #[test]
    fn strongly_convex_sensitivity_bounded_by_2l_over_gamma_m() {
        // Lemma 8's closed form 2L/(γm) dominates the replayed recursion
        // under η_t = min(1/β, 1/γt).
        let gamma = 0.1;
        let c = strongly_convex(gamma);
        let m = 200;
        for k in [1, 2, 5] {
            let step = StepSize::StronglyConvex { beta: c.smoothness, gamma };
            let got = replay_sensitivity(&c, &step, k, m, 1);
            let bound = 2.0 * c.lipschitz / (gamma * m as f64);
            assert!(
                got <= bound * (1.0 + 1e-9),
                "k={k}: replayed {got} exceeds closed form {bound}"
            );
        }
    }

    #[test]
    fn strongly_convex_contracts_with_position() {
        // Early differing positions are contracted more; the sup should be
        // attained by a late position.
        let gamma = 0.05;
        let c = strongly_convex(gamma);
        let step = StepSize::StronglyConvex { beta: c.smoothness, gamma };
        let early = replay_delta(&c, &step, 1, 100, 1, 0);
        let late = replay_delta(&c, &step, 1, 100, 1, 99);
        assert!(late > early, "late {late} !> early {early}");
    }

    #[test]
    fn convex_position_does_not_matter_with_constant_step() {
        let c = convex();
        let step = StepSize::Constant(0.1);
        let a = replay_delta(&c, &step, 2, 50, 1, 0);
        let b = replay_delta(&c, &step, 2, 50, 1, 49);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn decreasing_schedule_sensitivity_below_corollary2() {
        // Corollary 2: δ_T ≤ (4L/β)(1/m^c + ln k / m).
        let c = convex();
        let m = 500;
        let cc = 0.5;
        for k in [1, 2, 5] {
            let step = StepSize::Decreasing { beta: c.smoothness, m, c: cc };
            let got = replay_sensitivity(&c, &step, k, m, 1);
            let bound = 4.0 * c.lipschitz / c.smoothness
                * (1.0 / (m as f64).powf(cc) + (k as f64).ln() / m as f64 + 1.0 / m as f64);
            assert!(got <= bound * 1.01, "k={k}: {got} vs corollary bound {bound}");
        }
    }

    #[test]
    #[should_panic(expected = "requires eta <= 2/beta")]
    fn expansiveness_guard_convex() {
        convex().expansiveness(2.5);
    }

    #[test]
    #[should_panic(expected = "i_star must index")]
    fn replay_checks_position() {
        replay_delta(&convex(), &StepSize::Constant(0.1), 1, 10, 1, 10);
    }
}

//! The permutation-based SGD engine.
//!
//! One update per mini-batch: `w ← Π_C(w − η_t·(mean-batch-gradient + hook
//! noise))` (Equations 2 and 7 plus the mini-batch extension of
//! Section 3.2.3). The engine is deliberately *black-box*: output
//! perturbation never touches it, while SCS13/BST14 inject per-batch noise
//! through the gradient hook — mirroring the integration difference that
//! Figure 1 illustrates (bolting on at (B) vs. modifying the transition
//! function at (C)).

use crate::dataset::TrainSet;
use crate::loss::Loss;
use crate::schedule::StepSize;
use bolton_linalg::vector;
use bolton_rng::{random_permutation, Rng};

/// Which iterate the engine returns (Lemma 10's model averaging).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Averaging {
    /// Return the final iterate `w_T`.
    FinalIterate,
    /// Return `(1/T)·Σ_t w_t` — the averaging used by the convergence
    /// theorems (Lemma 12, Theorem 12).
    Uniform,
    /// Return the average of the last `⌈ln T⌉` iterates.
    LastLog,
}

/// How example order is generated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplingScheme {
    /// Permutation-based SGD; optionally resample the permutation each pass
    /// (the analysis covers both — Section 3.2.3 "Fresh Permutation").
    Permutation {
        /// Sample a new permutation at the start of every pass.
        fresh_each_pass: bool,
    },
    /// Two-level permutation over fixed chunks of `chunk_len` rows:
    /// shuffle the chunk order, then shuffle within each chunk
    /// ([`bolton_rng::chunked_permutation`]). Every same-chunk run is a
    /// whole chunk, so multi-pass training over a chunked out-of-core
    /// store ([`crate::chunked::ChunkedRows`]) pins each chunk exactly
    /// once per pass instead of issuing random I/O across the whole file.
    ///
    /// **Numerical note:** this order is uniform over chunk-preserving
    /// permutations only, not over all `m!` orders, so models differ
    /// numerically from [`SamplingScheme::Permutation`] at the same seed.
    /// **Privacy note:** the paper's sensitivity bounds (Lemmas 4/5/8)
    /// hold for *every fixed* example order — the analysis is worst-case
    /// over the differing example's positions — so any distribution over
    /// permutations, including this one, inherits the same Δ₂ and the
    /// bolt-on guarantee is unchanged.
    ChunkedPermutation {
        /// Rows per chunk (match the store's chunk length for sequential
        /// I/O; any positive value is valid).
        chunk_len: usize,
        /// Sample a new two-level order at the start of every pass.
        fresh_each_pass: bool,
    },
    /// Independent uniform sampling with replacement (ablation only: the
    /// paper's sensitivity analysis does *not* cover this scheme).
    WithReplacement,
}

impl SamplingScheme {
    /// The chunk-locality scheme at the given chunk length, non-fresh — the
    /// out-of-core default (one two-level order shared by all passes).
    pub fn chunked(chunk_len: usize) -> Self {
        Self::ChunkedPermutation { chunk_len, fresh_each_pass: false }
    }
}

/// Configuration for one SGD run.
#[derive(Clone, Copy, Debug)]
pub struct SgdConfig {
    /// Number of passes `k` over the data.
    pub passes: usize,
    /// Mini-batch size `b`.
    pub batch_size: usize,
    /// Step-size schedule `η_t`.
    pub step: StepSize,
    /// Optional constrained optimization: project onto `‖w‖ ≤ R` after
    /// every update.
    pub projection_radius: Option<f64>,
    /// Which iterate to return.
    pub averaging: Averaging,
    /// Example ordering.
    pub sampling: SamplingScheme,
    /// Optional early-stop tolerance µ: after each pass the mean training
    /// loss is measured, and the run stops once the relative decrease falls
    /// below µ (the paper's "oblivious k" strategy for the strongly convex
    /// case, Section 4.3).
    pub tolerance: Option<f64>,
}

impl SgdConfig {
    /// A single-pass, batch-1, final-iterate configuration with the given
    /// schedule — the baseline everything else builds on.
    pub fn new(step: StepSize) -> Self {
        Self {
            passes: 1,
            batch_size: 1,
            step,
            projection_radius: None,
            averaging: Averaging::FinalIterate,
            sampling: SamplingScheme::Permutation { fresh_each_pass: false },
            tolerance: None,
        }
    }

    /// Sets the number of passes.
    pub fn with_passes(mut self, k: usize) -> Self {
        self.passes = k;
        self
    }

    /// Sets the mini-batch size.
    pub fn with_batch_size(mut self, b: usize) -> Self {
        self.batch_size = b;
        self
    }

    /// Enables projected SGD on the L2 ball of the given radius.
    pub fn with_projection(mut self, radius: f64) -> Self {
        self.projection_radius = Some(radius);
        self
    }

    /// Sets the averaging mode.
    pub fn with_averaging(mut self, averaging: Averaging) -> Self {
        self.averaging = averaging;
        self
    }

    /// Sets the sampling scheme.
    pub fn with_sampling(mut self, sampling: SamplingScheme) -> Self {
        self.sampling = sampling;
        self
    }

    /// Enables the early-stop tolerance.
    pub fn with_tolerance(mut self, mu: f64) -> Self {
        self.tolerance = Some(mu);
        self
    }

    pub(crate) fn validate(&self, m: usize) {
        assert!(self.passes >= 1, "at least one pass is required");
        assert!(self.batch_size >= 1, "batch size must be >= 1");
        assert!(m >= 1, "dataset must be non-empty");
        if let Some(r) = self.projection_radius {
            assert!(r.is_finite() && r > 0.0, "projection radius must be finite and > 0");
        }
        if let Some(mu) = self.tolerance {
            assert!(mu >= 0.0 && mu.is_finite(), "tolerance must be finite and >= 0");
        }
        if let SamplingScheme::ChunkedPermutation { chunk_len, .. } = self.sampling {
            assert!(chunk_len >= 1, "chunk_len must be positive");
        }
    }
}

/// The result of an SGD run.
#[derive(Clone, Debug)]
pub struct SgdOutcome {
    /// The returned model (per the configured [`Averaging`]).
    pub model: Vec<f64>,
    /// Total number of mini-batch updates performed.
    pub updates: u64,
    /// Number of passes actually completed (< `passes` if tolerance fired).
    pub passes_completed: usize,
    /// Mean training loss after each completed pass (populated only when a
    /// tolerance is configured, since it costs an extra scan per pass).
    pub epoch_losses: Vec<f64>,
}

/// Number of mini-batch updates a single pass performs: `⌈m/b⌉`.
pub fn batches_per_pass(m: usize, batch_size: usize) -> usize {
    m.div_ceil(batch_size)
}

/// A *balanced* mini-batch partition of one pass: `⌈m/b⌉` batches whose
/// sizes differ by at most one.
///
/// The naive "flush every b rows" partition leaves a final batch of
/// `m mod b` rows; since the mini-batch sensitivity improvement divides by
/// the *smallest* batch containing the differing example, a 2-row tail
/// batch would silently forfeit almost the whole ÷b benefit (the paper
/// sidesteps this by assuming `b | m`). Balancing restores the benefit for
/// every `m`: the smallest batch is `⌊m/⌈m/b⌉⌋ ≥ ⌈b/2⌉` (equivalently
/// `⌊b/2⌋ + 1` for odd `b`), since `m ≥ (q−1)·b + 1` for `q = ⌈m/b⌉`
/// passes gives `m/q ≥ b − (b−1)/q ≥ (b+1)/2` whenever `q ≥ 2`.
///
/// ```
/// use bolton_sgd::engine::BatchPlan;
/// let plan = BatchPlan::new(103, 10);
/// assert_eq!(plan.batches, 11);
/// assert_eq!(plan.min_size(), 9); // not the 3-row tail a naive split leaves
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPlan {
    /// Number of batches per pass.
    pub batches: usize,
    /// The first `big_count` batches have `small_size + 1` rows.
    big_count: usize,
    /// Size of the later (smaller) batches.
    small_size: usize,
}

impl BatchPlan {
    /// Plans one pass over `m` examples at nominal batch size `b`.
    ///
    /// # Panics
    /// Panics if `m == 0` or `b == 0`.
    pub fn new(m: usize, b: usize) -> Self {
        assert!(m > 0 && b > 0, "batch plan needs positive m and b");
        let b = b.min(m);
        let batches = m.div_ceil(b);
        let small_size = m / batches;
        let big_count = m % batches;
        Self { batches, big_count, small_size }
    }

    /// Size of batch `idx` (0-based).
    ///
    /// # Panics
    /// Panics if `idx >= batches`.
    pub fn size_of(&self, idx: usize) -> usize {
        assert!(idx < self.batches, "batch index out of range");
        self.small_size + usize::from(idx < self.big_count)
    }

    /// The smallest batch size in the partition — the sound mini-batch
    /// divisor for the sensitivity bounds.
    pub fn min_size(&self) -> usize {
        self.small_size
    }

    /// Which batch the example at in-pass position `pos` falls into.
    ///
    /// # Panics
    /// Panics if `pos` is beyond the pass.
    pub fn batch_of_position(&self, pos: usize) -> usize {
        let big = self.small_size + 1;
        let split = self.big_count * big;
        if pos < split {
            pos / big
        } else {
            let idx = self.big_count + (pos - split) / self.small_size;
            assert!(idx < self.batches, "position out of range");
            idx
        }
    }
}

/// Runs PSGD with randomness drawn from `rng` and no gradient hook.
pub fn run_psgd<D, R>(data: &D, loss: &dyn Loss, config: &SgdConfig, rng: &mut R) -> SgdOutcome
where
    D: TrainSet + ?Sized,
    R: Rng + ?Sized,
{
    run_psgd_with_hook(data, loss, config, rng, |_, _| {})
}

/// Runs PSGD, applying `hook(t, grad)` to every mean mini-batch gradient
/// before the update — the injection point used by SCS13 and BST14.
pub fn run_psgd_with_hook<D, R>(
    data: &D,
    loss: &dyn Loss,
    config: &SgdConfig,
    rng: &mut R,
    mut hook: impl FnMut(u64, &mut [f64]),
) -> SgdOutcome
where
    D: TrainSet + ?Sized,
    R: Rng + ?Sized,
{
    let m = data.len();
    config.validate(m);
    let orders = PassOrders::sample(config, m, rng);
    run_with_pass_orders(data, loss, config, &orders, &mut hook, &mut Scratch::new())
}

/// Per-pass example orders without materializing one `Vec` per pass.
///
/// The default (non-fresh) permutation scheme reuses a single permutation
/// for every pass; storing it once replaces the old `vec![perm; passes]`
/// clone-per-pass, which allocated `passes·m` indices for one pass worth of
/// information.
#[derive(Clone, Debug)]
pub enum PassOrders {
    /// One order shared by every pass (the non-fresh permutation scheme).
    Shared {
        /// The single order.
        order: Vec<usize>,
        /// How many passes reuse it.
        passes: usize,
    },
    /// A distinct order per pass (fresh permutations, with-replacement).
    PerPass(Vec<Vec<usize>>),
}

impl PassOrders {
    /// Samples orders for `config` over `m` examples, consuming exactly the
    /// same randomness as the original per-pass materialization (one
    /// permutation for the non-fresh scheme, one per pass otherwise).
    pub fn sample<R: Rng + ?Sized>(config: &SgdConfig, m: usize, rng: &mut R) -> Self {
        match config.sampling {
            SamplingScheme::Permutation { fresh_each_pass } => {
                if fresh_each_pass {
                    Self::PerPass((0..config.passes).map(|_| random_permutation(rng, m)).collect())
                } else {
                    Self::Shared { order: random_permutation(rng, m), passes: config.passes }
                }
            }
            SamplingScheme::ChunkedPermutation { chunk_len, fresh_each_pass } => {
                if fresh_each_pass {
                    Self::PerPass(
                        (0..config.passes)
                            .map(|_| bolton_rng::chunked_permutation(rng, m, chunk_len))
                            .collect(),
                    )
                } else {
                    Self::Shared {
                        order: bolton_rng::chunked_permutation(rng, m, chunk_len),
                        passes: config.passes,
                    }
                }
            }
            SamplingScheme::WithReplacement => Self::PerPass(
                (0..config.passes).map(|_| (0..m).map(|_| rng.next_index(m)).collect()).collect(),
            ),
        }
    }

    /// Number of passes covered.
    pub fn passes(&self) -> usize {
        match self {
            Self::Shared { passes, .. } => *passes,
            Self::PerPass(orders) => orders.len(),
        }
    }

    /// The order for pass `pass`.
    ///
    /// # Panics
    /// Panics if `pass >= self.passes()`.
    pub fn order(&self, pass: usize) -> &[usize] {
        match self {
            Self::Shared { order, passes } => {
                assert!(pass < *passes, "pass out of range");
                order
            }
            Self::PerPass(orders) => &orders[pass],
        }
    }
}

/// Reusable buffers for the SGD inner loop (model iterate, gradient
/// accumulator, iterate average), so repeated runs — pool workers, tuning
/// grids, benchmark trials — do not reallocate per run.
///
/// A default-constructed scratch starts empty; buffers are sized on first
/// use and kept across runs (the buffer that becomes the returned model is
/// handed to the caller and re-grown on the next run).
#[derive(Debug, Default)]
pub struct Scratch {
    w: Vec<f64>,
    grad: Vec<f64>,
    avg: Vec<f64>,
}

impl Scratch {
    /// An empty scratch; buffers are allocated lazily on first run.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, d: usize) {
        for buf in [&mut self.w, &mut self.grad, &mut self.avg] {
            buf.clear();
            buf.resize(d, 0.0);
        }
    }
}

/// Runs SGD over explicitly provided per-pass orders (`orders.len()` must
/// equal `config.passes`). This is the deterministic core used by the
/// sensitivity tests, which must replay *identical randomness* on
/// neighboring datasets (the "randomness one at a time" argument of
/// Lemma 5).
///
/// # Panics
/// Panics if `orders.len() != config.passes`, any order's length differs
/// from `data.len()`, or any index is out of bounds.
pub fn run_with_orders<D>(
    data: &D,
    loss: &dyn Loss,
    config: &SgdConfig,
    orders: &[Vec<usize>],
    hook: &mut dyn FnMut(u64, &mut [f64]),
) -> SgdOutcome
where
    D: TrainSet + ?Sized,
{
    assert_eq!(orders.len(), config.passes, "one order per pass is required");
    for order in orders {
        assert_eq!(order.len(), data.len(), "order length must equal dataset size");
    }
    run_core(data, loss, config, &|pass| orders[pass].as_slice(), hook, &mut Scratch::new())
}

/// Runs SGD over [`PassOrders`], reusing the caller's [`Scratch`] buffers —
/// the allocation-free entry point the worker pool and tuning grid use.
///
/// Semantics are identical to [`run_with_orders`] over the materialized
/// per-pass orders.
///
/// # Panics
/// Panics if `orders.passes() != config.passes`, any order's length differs
/// from `data.len()`, or any index is out of bounds.
pub fn run_with_pass_orders<D>(
    data: &D,
    loss: &dyn Loss,
    config: &SgdConfig,
    orders: &PassOrders,
    hook: &mut dyn FnMut(u64, &mut [f64]),
    scratch: &mut Scratch,
) -> SgdOutcome
where
    D: TrainSet + ?Sized,
{
    assert_eq!(orders.passes(), config.passes, "one order per pass is required");
    // Validate every order eagerly: with tolerance-based early stopping a
    // later pass may never execute, and a malformed order must not pass
    // silently.
    match orders {
        PassOrders::Shared { order, .. } => {
            assert_eq!(order.len(), data.len(), "order length must equal dataset size");
        }
        PassOrders::PerPass(per_pass) => {
            for order in per_pass {
                assert_eq!(order.len(), data.len(), "order length must equal dataset size");
            }
        }
    }
    run_core(data, loss, config, &|pass| orders.order(pass), hook, scratch)
}

/// The deterministic inner loop shared by every entry point. `order_of`
/// yields the example order for each pass index.
fn run_core<'o, D>(
    data: &D,
    loss: &dyn Loss,
    config: &SgdConfig,
    order_of: &dyn Fn(usize) -> &'o [usize],
    hook: &mut dyn FnMut(u64, &mut [f64]),
    scratch: &mut Scratch,
) -> SgdOutcome
where
    D: TrainSet + ?Sized,
{
    let m = data.len();
    let d = data.dim();
    config.validate(m);

    let b = config.batch_size.min(m);
    let plan = BatchPlan::new(m, b);
    let updates_per_pass = plan.batches as u64;
    let total_updates = updates_per_pass * config.passes as u64;
    // ⌈ln T⌉ window for LastLog averaging, at least 1.
    let tail_window = ((total_updates as f64).ln().ceil() as u64).max(1);
    let tail_start = total_updates.saturating_sub(tail_window) + 1;

    scratch.reset(d);
    let Scratch { w, grad, avg } = scratch;
    let mut averaged_count = 0u64;
    let mut t: u64 = 0;
    let mut epoch_losses = Vec::new();
    let mut passes_completed = 0usize;

    for pass in 0..config.passes {
        // Both public entry points validate every order's length eagerly.
        let order = order_of(pass);
        let mut batch_len = 0usize;
        let mut batch_idx = 0usize;
        // One pass: stream examples in permuted order, flushing an update
        // at each balanced-partition boundary.
        data.scan_order(order, &mut |_pos, x, y| {
            loss.add_gradient(w, x, y, grad);
            batch_len += 1;
            if batch_len == plan.size_of(batch_idx) {
                batch_idx += 1;
                t += 1;
                vector::scale(1.0 / batch_len as f64, grad);
                hook(t, grad);
                let eta = config.step.eta(t);
                // Fused update: one sweep applies the step and (when
                // constrained) the L2-ball projection.
                match config.projection_radius {
                    Some(r) => {
                        vector::axpy_project_l2(-eta, grad, w, r);
                    }
                    None => vector::axpy(-eta, grad, w),
                }
                match config.averaging {
                    Averaging::FinalIterate => {}
                    Averaging::Uniform => {
                        vector::axpy(1.0, w, avg);
                        averaged_count += 1;
                    }
                    Averaging::LastLog => {
                        if t >= tail_start {
                            vector::axpy(1.0, w, avg);
                            averaged_count += 1;
                        }
                    }
                }
                vector::fill_zero(grad);
                batch_len = 0;
            }
        });
        passes_completed += 1;

        if let Some(mu) = config.tolerance {
            let cur = crate::metrics::empirical_risk(loss, w, data);
            let stop = epoch_losses
                .last()
                .is_some_and(|&prev: &f64| prev.abs() > 0.0 && (prev - cur) / prev.abs() < mu);
            epoch_losses.push(cur);
            if stop {
                break;
            }
        }
    }

    // Hand the relevant buffer to the caller; the scratch re-grows it on
    // the next run.
    let model = match config.averaging {
        Averaging::FinalIterate => std::mem::take(w),
        Averaging::Uniform | Averaging::LastLog => {
            assert!(averaged_count > 0, "no iterates were averaged");
            vector::scale(1.0 / averaged_count as f64, avg);
            std::mem::take(avg)
        }
    };

    SgdOutcome { model, updates: t, passes_completed, epoch_losses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::InMemoryDataset;
    use crate::loss::{LeastSquares, Logistic};
    use bolton_rng::seeded;

    /// A linearly separable 2-D toy problem: y = sign(x₀).
    fn separable(m: usize, seed: u64) -> InMemoryDataset {
        let mut rng = seeded(seed);
        let mut features = Vec::with_capacity(m * 2);
        let mut labels = Vec::with_capacity(m);
        for _ in 0..m {
            let x0 = rng.next_range(-1.0, 1.0);
            let x1 = rng.next_range(-0.2, 0.2);
            features.push(x0 * 0.7);
            features.push(x1);
            labels.push(if x0 >= 0.0 { 1.0 } else { -1.0 });
        }
        InMemoryDataset::from_flat(features, labels, 2)
    }

    #[test]
    fn sgd_learns_separable_problem() {
        let data = separable(500, 71);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.5)).with_passes(5);
        let mut rng = seeded(72);
        let out = run_psgd(&data, &loss, &config, &mut rng);
        let acc = crate::metrics::accuracy(&out.model, &data);
        assert!(acc > 0.95, "accuracy {acc}");
        assert_eq!(out.updates, 2500);
        assert_eq!(out.passes_completed, 5);
    }

    #[test]
    fn batch_updates_count() {
        let data = separable(103, 73);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.1)).with_passes(2).with_batch_size(10);
        let mut rng = seeded(74);
        let out = run_psgd(&data, &loss, &config, &mut rng);
        // ⌈103/10⌉ = 11 updates per pass.
        assert_eq!(out.updates, 22);
    }

    #[test]
    fn projection_keeps_model_in_ball() {
        let data = separable(200, 75);
        let loss = Logistic::regularized(0.1, 0.5);
        let config = SgdConfig::new(StepSize::Constant(1.0)).with_passes(5).with_projection(0.5);
        let mut rng = seeded(76);
        let out = run_psgd(&data, &loss, &config, &mut rng);
        assert!(vector::norm(&out.model) <= 0.5 + 1e-9);
    }

    #[test]
    fn uniform_averaging_returns_mean_of_iterates() {
        // With least squares on one example and constant step, iterates are
        // predictable: check the average equals the manual computation.
        let data = InMemoryDataset::from_flat(vec![1.0], vec![1.0], 1);
        let loss = LeastSquares::new(10.0);
        let config = SgdConfig::new(StepSize::Constant(0.5))
            .with_passes(3)
            .with_averaging(Averaging::Uniform);
        let mut rng = seeded(77);
        let out = run_psgd(&data, &loss, &config, &mut rng);
        // w₀=0; update: w ← w − 0.5(w−1) = 0.5w + 0.5 ⇒ iterates 0.5, 0.75, 0.875.
        let expect = (0.5 + 0.75 + 0.875) / 3.0;
        assert!((out.model[0] - expect).abs() < 1e-12, "got {}", out.model[0]);
    }

    #[test]
    fn final_iterate_differs_from_average() {
        let data = separable(100, 78);
        let loss = Logistic::plain();
        let mut rng_a = seeded(79);
        let mut rng_b = seeded(79);
        let base = SgdConfig::new(StepSize::Constant(0.5)).with_passes(2);
        let fin = run_psgd(&data, &loss, &base, &mut rng_a);
        let avg = run_psgd(&data, &loss, &base.with_averaging(Averaging::Uniform), &mut rng_b);
        assert_ne!(fin.model, avg.model);
    }

    #[test]
    fn hook_sees_every_update() {
        let data = separable(50, 80);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.1)).with_passes(3).with_batch_size(7);
        let mut rng = seeded(81);
        let mut ts = Vec::new();
        let out = run_psgd_with_hook(&data, &loss, &config, &mut rng, |t, _| ts.push(t));
        assert_eq!(ts.len() as u64, out.updates);
        let expected: Vec<u64> = (1..=out.updates).collect();
        assert_eq!(ts, expected);
    }

    #[test]
    fn hook_noise_changes_outcome() {
        let data = separable(100, 82);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.1)).with_passes(1);
        let mut rng_a = seeded(83);
        let mut rng_b = seeded(83);
        let clean = run_psgd(&data, &loss, &config, &mut rng_a);
        let noisy = run_psgd_with_hook(&data, &loss, &config, &mut rng_b, |_, g| g[0] += 1.0);
        assert_ne!(clean.model, noisy.model);
    }

    #[test]
    fn same_seed_same_model() {
        let data = separable(100, 84);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::InvSqrtT).with_passes(2);
        let a = run_psgd(&data, &loss, &config, &mut seeded(85));
        let b = run_psgd(&data, &loss, &config, &mut seeded(85));
        assert_eq!(a.model, b.model);
    }

    #[test]
    fn fresh_permutations_change_trajectory() {
        let data = separable(100, 86);
        let loss = Logistic::plain();
        let single = SgdConfig::new(StepSize::Constant(0.3)).with_passes(3);
        let fresh = single.with_sampling(SamplingScheme::Permutation { fresh_each_pass: true });
        let a = run_psgd(&data, &loss, &single, &mut seeded(87));
        let b = run_psgd(&data, &loss, &fresh, &mut seeded(87));
        assert_ne!(a.model, b.model);
    }

    #[test]
    fn chunked_permutation_scheme_learns_and_differs_from_flat() {
        let data = separable(400, 186);
        let loss = Logistic::plain();
        let flat = SgdConfig::new(StepSize::Constant(0.3)).with_passes(3);
        let chunked = flat.with_sampling(SamplingScheme::chunked(64));
        let a = run_psgd(&data, &loss, &flat, &mut seeded(187));
        let b = run_psgd(&data, &loss, &chunked, &mut seeded(187));
        // Different order distribution ⇒ numerically different model...
        assert_ne!(a.model, b.model);
        // ...but the same learning behavior and update count.
        assert_eq!(a.updates, b.updates);
        assert!(crate::metrics::accuracy(&b.model, &data) > 0.95);
        // Deterministic per seed, like every other scheme.
        let b2 = run_psgd(&data, &loss, &chunked, &mut seeded(187));
        assert_eq!(b.model, b2.model);
    }

    #[test]
    fn chunked_orders_are_chunk_local() {
        // Every pass order sampled under the chunked scheme consists of
        // whole-chunk runs: each chunk's rows occupy one contiguous block.
        let config = SgdConfig::new(StepSize::Constant(0.1)).with_passes(2).with_sampling(
            SamplingScheme::ChunkedPermutation { chunk_len: 8, fresh_each_pass: true },
        );
        let orders = PassOrders::sample(&config, 50, &mut seeded(188));
        for pass in 0..2 {
            let order = orders.order(pass);
            let mut first_seen = std::collections::HashMap::new();
            let mut last_seen = std::collections::HashMap::new();
            for (pos, &i) in order.iter().enumerate() {
                let c = i / 8;
                first_seen.entry(c).or_insert(pos);
                last_seen.insert(c, pos);
            }
            for (c, &first) in &first_seen {
                let span = last_seen[c] - first + 1;
                let size = if *c == 6 { 2 } else { 8 };
                assert_eq!(span, size, "chunk {c} not contiguous in pass {pass}");
            }
        }
    }

    #[test]
    fn with_replacement_runs() {
        let data = separable(100, 88);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.3))
            .with_passes(3)
            .with_sampling(SamplingScheme::WithReplacement);
        let out = run_psgd(&data, &loss, &config, &mut seeded(89));
        assert!(crate::metrics::accuracy(&out.model, &data) > 0.9);
    }

    #[test]
    fn tolerance_stops_early() {
        let data = separable(200, 90);
        let loss = Logistic::regularized(0.1, 10.0);
        let config = SgdConfig::new(StepSize::StronglyConvex { beta: 1.1, gamma: 0.1 })
            .with_passes(50)
            .with_tolerance(0.05);
        let out = run_psgd(&data, &loss, &config, &mut seeded(91));
        assert!(out.passes_completed < 50, "should stop early, ran {}", out.passes_completed);
        assert_eq!(out.epoch_losses.len(), out.passes_completed);
        // Losses should be decreasing up to the stop.
        for pair in out.epoch_losses.windows(2) {
            assert!(pair[1] <= pair[0] * 1.001, "loss increased: {pair:?}");
        }
    }

    #[test]
    fn run_with_orders_is_deterministic_given_orders() {
        let data = separable(60, 92);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.2)).with_passes(2);
        let orders: Vec<Vec<usize>> = vec![(0..60).rev().collect(), (0..60).collect()];
        let a = run_with_orders(&data, &loss, &config, &orders, &mut |_, _| {});
        let b = run_with_orders(&data, &loss, &config, &orders, &mut |_, _| {});
        assert_eq!(a.model, b.model);
    }

    #[test]
    #[should_panic(expected = "order length must equal dataset size")]
    fn malformed_later_order_rejected_eagerly() {
        // Even with a tolerance that stops the run after pass 1, a
        // malformed pass-2 order must be rejected up front.
        let data = separable(10, 98);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.2)).with_passes(2).with_tolerance(1.0);
        let orders: Vec<Vec<usize>> = vec![(0..10).collect(), (0..5).collect()];
        run_with_orders(&data, &loss, &config, &orders, &mut |_, _| {});
    }

    #[test]
    #[should_panic(expected = "one order per pass")]
    fn order_arity_checked() {
        let data = separable(10, 93);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.2)).with_passes(2);
        run_with_orders(&data, &loss, &config, &[(0..10).collect()], &mut |_, _| {});
    }

    #[test]
    fn batch_size_larger_than_dataset_is_full_batch() {
        let data = separable(10, 94);
        let loss = Logistic::plain();
        let config = SgdConfig::new(StepSize::Constant(0.2)).with_batch_size(1000);
        let out = run_psgd(&data, &loss, &config, &mut seeded(95));
        assert_eq!(out.updates, 1);
    }

    #[test]
    fn last_log_averaging_differs_from_both() {
        let data = separable(300, 96);
        let loss = Logistic::plain();
        let run_mode = |avg: Averaging| {
            let config = SgdConfig::new(StepSize::Constant(0.4)).with_passes(3).with_averaging(avg);
            run_psgd(&data, &loss, &config, &mut seeded(97)).model
        };
        let fin = run_mode(Averaging::FinalIterate);
        let uni = run_mode(Averaging::Uniform);
        let log = run_mode(Averaging::LastLog);
        assert_ne!(fin, uni);
        assert_ne!(uni, log);
        // The last-log window hugs the final iterate far closer than the
        // all-iterates average does.
        let d_log = vector::distance(&fin, &log);
        let d_uni = vector::distance(&fin, &uni);
        assert!(d_log < d_uni, "‖fin−log‖ = {d_log} !< ‖fin−uni‖ = {d_uni}");
    }
}

#[cfg(test)]
mod batch_plan_tests {
    use super::BatchPlan;

    #[test]
    fn exact_division() {
        let plan = BatchPlan::new(100, 10);
        assert_eq!(plan.batches, 10);
        assert_eq!(plan.min_size(), 10);
        for i in 0..10 {
            assert_eq!(plan.size_of(i), 10);
        }
    }

    #[test]
    fn balanced_remainder() {
        // 103 rows at b = 10: 11 batches, 4 of 10 and 7 of 9.
        let plan = BatchPlan::new(103, 10);
        assert_eq!(plan.batches, 11);
        let sizes: Vec<usize> = (0..plan.batches).map(|i| plan.size_of(i)).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 103);
        assert_eq!(sizes.iter().max(), Some(&10));
        assert_eq!(sizes.iter().min(), Some(&9));
        assert_eq!(plan.min_size(), 9);
        // Sizes are non-increasing (big batches first).
        for pair in sizes.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
    }

    #[test]
    fn batch_bigger_than_m() {
        let plan = BatchPlan::new(7, 100);
        assert_eq!(plan.batches, 1);
        assert_eq!(plan.size_of(0), 7);
        assert_eq!(plan.min_size(), 7);
    }

    #[test]
    fn batch_of_position_matches_partition() {
        for (m, b) in [(103usize, 10usize), (100, 10), (7, 3), (50, 50), (11, 4)] {
            let plan = BatchPlan::new(m, b);
            let mut pos = 0usize;
            for batch in 0..plan.batches {
                for _ in 0..plan.size_of(batch) {
                    assert_eq!(plan.batch_of_position(pos), batch, "m={m}, b={b}, pos={pos}");
                    pos += 1;
                }
            }
            assert_eq!(pos, m);
        }
    }

    #[test]
    fn min_size_never_below_half_b() {
        // The balanced partition's guarantee: min ≥ ⌊b/2⌋ (hence ÷b within 2×).
        for m in 1..400usize {
            for b in 1..=40usize {
                let plan = BatchPlan::new(m, b);
                let b_eff = b.min(m);
                assert!(
                    2 * plan.min_size() + 1 >= b_eff,
                    "m={m}, b={b}: min {} too small",
                    plan.min_size()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive m and b")]
    fn zero_m_panics() {
        BatchPlan::new(0, 5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The partition always covers exactly m rows with sizes within one
        /// of each other.
        #[test]
        fn batch_plan_is_balanced_cover(m in 1usize..2000, b in 1usize..100) {
            let plan = BatchPlan::new(m, b);
            let sizes: Vec<usize> = (0..plan.batches).map(|i| plan.size_of(i)).collect();
            prop_assert_eq!(sizes.iter().sum::<usize>(), m);
            let max = *sizes.iter().max().unwrap();
            let min = *sizes.iter().min().unwrap();
            prop_assert!(max - min <= 1, "max {max}, min {min}");
            prop_assert_eq!(min, plan.min_size());
            prop_assert_eq!(plan.batches, m.div_ceil(b.min(m)));
        }

        /// `batch_of_position` agrees with the cumulative `size_of`
        /// partition for every in-pass position.
        #[test]
        fn batch_of_position_matches_cumulative_sizes(m in 1usize..2000, b in 1usize..100) {
            let plan = BatchPlan::new(m, b);
            let mut pos = 0usize;
            for batch in 0..plan.batches {
                for _ in 0..plan.size_of(batch) {
                    prop_assert_eq!(plan.batch_of_position(pos), batch, "m={}, b={}, pos={}", m, b, pos);
                    pos += 1;
                }
            }
            prop_assert_eq!(pos, m);
        }

        /// The smallest batch never drops below `⌈b/2⌉` (i.e. `⌊b/2⌋ + 1`
        /// for odd `b`), so the mini-batch sensitivity divisor stays within
        /// 2× of the nominal batch size for every (m, b).
        #[test]
        fn min_size_stays_within_half_of_b(m in 1usize..2000, b in 1usize..100) {
            let plan = BatchPlan::new(m, b);
            let b_eff = b.min(m);
            prop_assert!(
                plan.min_size() >= b_eff.div_ceil(2),
                "m={}, b={}: min {} < ceil({}/2)", m, b, plan.min_size(), b_eff
            );
            if b_eff % 2 == 1 {
                prop_assert!(plan.min_size() > b_eff / 2);
            }
        }

        /// The engine performs exactly plan.batches updates per pass,
        /// regardless of (m, b).
        #[test]
        fn engine_update_count_matches_plan(m in 1usize..200, b in 1usize..40, k in 1usize..4) {
            let data = {
                // Deterministic fixture; contents are irrelevant to the
                // update-count property under test.
                let features: Vec<f64> = (0..m).map(|i| (i as f64 * 0.37).sin()).collect();
                let labels: Vec<f64> =
                    (0..m).map(|i| if i % 3 == 0 { 1.0 } else { -1.0 }).collect();
                crate::dataset::InMemoryDataset::from_flat(features, labels, 1)
            };
            let loss = crate::loss::Logistic::plain();
            let config =
                SgdConfig::new(StepSize::Constant(0.1)).with_passes(k).with_batch_size(b);
            let out = run_psgd(&data, &loss, &config, &mut bolton_rng::seeded(4243));
            let plan = BatchPlan::new(m, b);
            prop_assert_eq!(out.updates, (plan.batches * k) as u64);
        }
    }
}

//! Golden-bit regression for the SIMD dispatch layer.
//!
//! The exact bit patterns below were captured from the pre-SIMD scalar
//! kernels (the 4-wide unrolls that now live behind `BOLTON_SIMD=off`).
//! Under any 4-lane dispatch mode (`scalar`, `avx2`) training must
//! reproduce them bit for bit; the 8-lane `avx512` mode reassociates
//! reduction low-order bits and must stay within 1e-9 — which is also the
//! documented cross-width reproducibility contract.
//!
//! The CI `BOLTON_SIMD=off` matrix leg runs this test with the exact
//! branch active, so "off reproduces today's models bit-for-bit at the
//! same seed" is continuously enforced.

use bolton_linalg::simd;
use bolton_rng::seeded;
use bolton_sgd::dataset::sparse_pair_fixture;
use bolton_sgd::{run_psgd, run_sparse_psgd, Averaging, Logistic, SgdConfig, StepSize};

/// Pre-SIMD golden bits: dense PSGD, final iterate.
const DENSE_FINAL: [u64; 12] = [
    0xbfcc68eda0be309e,
    0xbf73944009b6f805,
    0xbfb3f4ec36b609fc,
    0x3f998c4ec5d68822,
    0xbfc018ce984b1e15,
    0xbfac9d65a58cb82b,
    0x3f4e308b8c9a94ce,
    0xbfc75d97b18e8ef7,
    0x3f67901ba413907e,
    0xbfbba2b0425235bc,
    0xbfa4027792ea54e0,
    0x3fc02f7e1d2ce645,
];

/// Pre-SIMD golden bits: dense PSGD, uniform averaging.
const DENSE_UNIFORM: [u64; 12] = [
    0xbfc203041cea7357,
    0xbf7fcf83b66476be,
    0xbf9cbd600bed4555,
    0xbf8b092d89eec3f2,
    0xbfb21b90d54da3a3,
    0xbf9565a568401acc,
    0x3f9140855041dca7,
    0xbfb67d6076b90b7e,
    0xbf991b8354206b25,
    0xbfa31cbc7e1c5196,
    0xbfa598b66eda8138,
    0x3fafe65aeba0e156,
];

/// Pre-SIMD golden bits: sparse-engine PSGD, final iterate.
const SPARSE_FINAL: [u64; 12] = [
    0xbfcc68eda0be30bb,
    0xbf73944009b6f839,
    0xbfb3f4ec36b60a08,
    0x3f998c4ec5d6881d,
    0xbfc018ce984b1e22,
    0xbfac9d65a58cb83c,
    0x3f4e308b8c9a98b0,
    0xbfc75d97b18e8f09,
    0x3f67901ba4138eff,
    0xbfbba2b0425235cd,
    0xbfa4027792ea54fd,
    0x3fc02f7e1d2ce652,
];

fn config() -> SgdConfig {
    SgdConfig::new(StepSize::Constant(0.35)).with_passes(3).with_batch_size(4).with_projection(2.0)
}

fn check(model: &[f64], golden: &[u64; 12], what: &str) {
    assert_eq!(model.len(), golden.len());
    if simd::active().lane_width() <= 4 {
        // Same lane width as the capture: the contract is exact bits.
        let bits: Vec<u64> = model.iter().map(|w| w.to_bits()).collect();
        assert_eq!(bits, golden, "{what}: bit drift under {} dispatch", simd::active().name());
    } else {
        // Wider reduction: reassociated low-order bits, 1e-9 closeness.
        for (j, (&w, &g)) in model.iter().zip(golden.iter()).enumerate() {
            let gf = f64::from_bits(g);
            assert!(
                (w - gf).abs() < 1e-9,
                "{what}: coord {j} drifted {w} vs {gf} under {}",
                simd::active().name()
            );
        }
    }
}

#[test]
fn dense_final_iterate_reproduces_golden_bits() {
    let data = sparse_pair_fixture(160, 12, 0.3, 777).0;
    let loss = Logistic::regularized(0.01, 2.0);
    let out = run_psgd(&data, &loss, &config(), &mut seeded(778));
    check(&out.model, &DENSE_FINAL, "dense FinalIterate");
}

#[test]
fn dense_uniform_average_reproduces_golden_bits() {
    let data = sparse_pair_fixture(160, 12, 0.3, 777).0;
    let loss = Logistic::regularized(0.01, 2.0);
    let cfg = config().with_averaging(Averaging::Uniform);
    let out = run_psgd(&data, &loss, &cfg, &mut seeded(778));
    check(&out.model, &DENSE_UNIFORM, "dense Uniform average");
}

#[test]
fn sparse_final_iterate_reproduces_golden_bits() {
    let sparse = sparse_pair_fixture(160, 12, 0.3, 777).1;
    let loss = Logistic::regularized(0.01, 2.0);
    let out = run_sparse_psgd(&sparse, &loss, &config(), &mut seeded(778));
    check(&out.model, &SPARSE_FINAL, "sparse FinalIterate");
}

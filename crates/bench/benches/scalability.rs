//! Criterion version of Figure 2: linear scaling of per-epoch runtime in
//! the number of examples, in memory and through a starved buffer pool
//! (the disk path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use bolton_bench::{run_bismarck_sc, BisAlg};
use bolton_bismarck::{synthesize, Backing, SynthSpec};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_rows");
    group.sample_size(10);
    for rows in [2_000usize, 4_000, 8_000] {
        group.throughput(Throughput::Elements(rows as u64));
        for (mode, backing, pool) in
            [("mem", Backing::Memory, 1024usize), ("disk", Backing::TempFile, 4)]
        {
            group.bench_with_input(BenchmarkId::new(mode, rows), &rows, |bencher, &rows| {
                bencher.iter_batched(
                    || {
                        let mut rng = bolton_rng::seeded(63);
                        synthesize(
                            "s",
                            &SynthSpec::scalability(rows),
                            backing.clone(),
                            pool,
                            &mut rng,
                        )
                        .expect("synthesize")
                    },
                    |mut table| {
                        black_box(run_bismarck_sc(&mut table, BisAlg::Ours, 1e-4, 0.1, 1, 1, 64))
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
        }
    }
    group.finish();
}

fn bench_buffer_pool_scan(c: &mut Criterion) {
    // Pure storage-layer throughput: scan a disk table through pools of
    // different sizes.
    let mut group = c.benchmark_group("buffer_pool_scan");
    for pool in [4usize, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(pool), &pool, |bencher, &pool| {
            let mut rng = bolton_rng::seeded(65);
            let table = synthesize(
                "scan",
                &SynthSpec::scalability(1000),
                Backing::TempFile,
                pool,
                &mut rng,
            )
            .expect("synthesize");
            bencher.iter(|| {
                let mut acc = 0.0f64;
                table.scan_rows(&mut |_, x, y| acc += x[0] + y).expect("scan");
                black_box(acc)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling, bench_buffer_pool_scan);
criterion_main!(benches);

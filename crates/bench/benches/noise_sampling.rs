//! Micro-benchmarks of the noise mechanisms (Appendix E sampler and the
//! Gaussian mechanism) across dimensions — the per-update cost that makes
//! SCS13/BST14 slow and that output perturbation pays exactly once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bolton_privacy::mechanisms::{sample_unit_sphere, GaussianMechanism, LaplaceBallMechanism};
use bolton_rng::dist::Gamma;
use bolton_rng::{seeded, Rng};

fn bench_laplace_ball(c: &mut Criterion) {
    let mut group = c.benchmark_group("laplace_ball_sample");
    for dim in [5usize, 50, 500] {
        let mech = LaplaceBallMechanism::new(dim, 0.01, 0.1).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |bench, _| {
            let mut rng = seeded(1);
            bench.iter(|| black_box(mech.sample_noise(&mut rng)));
        });
    }
    group.finish();
}

fn bench_gaussian(c: &mut Criterion) {
    let mut group = c.benchmark_group("gaussian_sample");
    for dim in [5usize, 50, 500] {
        let mech = GaussianMechanism::new(0.01, 0.1, 1e-8).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |bench, &d| {
            let mut rng = seeded(2);
            bench.iter(|| black_box(mech.sample_noise(&mut rng, d)));
        });
    }
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    c.bench_function("gamma_draw_shape_50", |b| {
        let gamma = Gamma::new(50.0, 0.1);
        let mut rng = seeded(3);
        b.iter(|| black_box(gamma.sample(&mut rng)));
    });
    c.bench_function("unit_sphere_d50", |b| {
        let mut rng = seeded(4);
        b.iter(|| black_box(sample_unit_sphere(&mut rng, 50)));
    });
    c.bench_function("xoshiro_u64", |b| {
        let mut rng = seeded(5);
        b.iter(|| black_box(rng.next_u64()));
    });
}

criterion_group!(benches, bench_laplace_ball, bench_gaussian, bench_primitives);
criterion_main!(benches);

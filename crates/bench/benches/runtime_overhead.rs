//! Criterion version of Figure 5: per-epoch runtime of the four algorithms
//! inside Bismarck at small batch sizes, where the white-box baselines pay
//! their per-update sampling cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bolton_bench::{run_bismarck_sc, table_from_dataset, BisAlg};
use bolton_bismarck::Backing;
use bolton_data::{generate_scaled, DatasetSpec};

fn bench_epoch_runtime(c: &mut Criterion) {
    let bench_data = generate_scaled(DatasetSpec::Covtype, 61, 0.004);
    for batch in [1usize, 10] {
        let mut group = c.benchmark_group(format!("epoch_runtime_b{batch}"));
        group.sample_size(10);
        for alg in BisAlg::ALL {
            group.bench_with_input(
                BenchmarkId::from_parameter(alg.label()),
                &alg,
                |bencher, &alg| {
                    bencher.iter_batched(
                        || table_from_dataset(&bench_data.train, "t", Backing::Memory, 512),
                        |mut table| {
                            black_box(run_bismarck_sc(&mut table, alg, 1e-4, 0.1, 1, batch, 62))
                        },
                        criterion::BatchSize::LargeInput,
                    );
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_epoch_runtime);
criterion_main!(benches);

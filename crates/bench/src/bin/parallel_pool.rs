//! Parallel-PSGD pool benchmark — the Figure 2 in-memory workload
//! (synthesizer data, d = 50, mini-batch 1) run three ways at each worker
//! count:
//!
//! 1. `sequential` — the plain engine ([`bolton_sgd::run_psgd`]);
//! 2. `scoped` — parameter-mixing parallel PSGD spawning fresh scoped
//!    threads per call (the pre-pool baseline);
//! 3. `pool` — the same algorithm on the persistent work-stealing
//!    [`WorkerPool`].
//!
//! Prints TSV to stdout and writes `BENCH_parallel_psgd.json` (override
//! with `BOLTON_BENCH_OUT`) so the perf trajectory is tracked in-repo.
//! Wall-clock speedups are bounded by the machine's available parallelism,
//! which is recorded in the JSON: on a single-core CI runner the parallel
//! paths can only tie the sequential engine, while the pool-vs-scoped
//! comparison (spawn/join overhead) is meaningful at any core count.
//!
//! Knobs: `BOLTON_POOL_ROWS` (default 8000), `BOLTON_POOL_WORKERS`
//! (comma-separated, default `1,2,4,8`), `BOLTON_POOL_PASSES` (default 3),
//! `BOLTON_POOL_REPEATS` (default 5), `BOLTON_THREADS` (pool size,
//! default = max worker count).

use bolton_bench::{header, row, time_it};
use bolton_sgd::{
    run_parallel_psgd_on, run_parallel_psgd_scoped, run_psgd, Logistic, SgdConfig, StepSize,
    WorkerPool,
};
use std::time::Duration;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

fn env_list(key: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(key) {
        Ok(spec) => spec.split(',').filter_map(|tok| tok.trim().parse().ok()).collect(),
        Err(_) => default.to_vec(),
    }
}

/// Median wall-clock of `repeats` timed calls.
fn median_secs(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<Duration> = (0..repeats).map(|_| time_it(&mut f).1).collect();
    samples.sort();
    samples[samples.len() / 2].as_secs_f64()
}

fn main() {
    let rows = env_usize("BOLTON_POOL_ROWS", 8000);
    let dim = 50usize;
    let passes = env_usize("BOLTON_POOL_PASSES", 3);
    let repeats = env_usize("BOLTON_POOL_REPEATS", 5);
    let worker_counts = env_list("BOLTON_POOL_WORKERS", &[1, 2, 4, 8]);
    assert!(!worker_counts.is_empty(), "no worker counts requested");

    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
    let pool_threads =
        env_usize("BOLTON_THREADS", worker_counts.iter().copied().max().expect("non-empty"));
    let pool = WorkerPool::new(pool_threads);
    let runner = pool.runner();

    // The canonical synthetic workload shared with the figure binaries:
    // unit-ball features, hidden unit-norm hyperplane, 10% label flips.
    let data =
        bolton_data::generator::linear_binary(&mut bolton_rng::seeded(0xF162), rows, dim, 0.1);
    let loss = Logistic::plain();
    let config = SgdConfig::new(StepSize::Constant(0.5)).with_passes(passes);

    header(&["path", "workers", "seconds_per_epoch", "speedup_vs_sequential"]);

    // Warm up (page in the dataset, start the pool threads) then time the
    // sequential engine baseline.
    let _ = run_psgd(&data, &loss, &config, &mut bolton_rng::seeded(1));
    let seq = median_secs(repeats, || {
        let out = run_psgd(&data, &loss, &config, &mut bolton_rng::seeded(2));
        std::hint::black_box(out.model.len());
    }) / passes as f64;
    row(&["sequential".into(), "1".into(), format!("{seq:.6}"), "1.00".into()]);

    let mut cells = Vec::new();
    for &workers in &worker_counts {
        let scoped = median_secs(repeats, || {
            let out = run_parallel_psgd_scoped(
                &data,
                &loss,
                &config,
                workers,
                &mut bolton_rng::seeded(3),
            );
            std::hint::black_box(out.model.len());
        }) / passes as f64;
        let pooled = median_secs(repeats, || {
            let out = run_parallel_psgd_on(
                &runner,
                &data,
                &loss,
                &config,
                workers,
                &mut bolton_rng::seeded(3),
            );
            std::hint::black_box(out.model.len());
        }) / passes as f64;
        row(&[
            "scoped".into(),
            workers.to_string(),
            format!("{scoped:.6}"),
            format!("{:.2}", seq / scoped),
        ]);
        row(&[
            "pool".into(),
            workers.to_string(),
            format!("{pooled:.6}"),
            format!("{:.2}", seq / pooled),
        ]);
        cells.push((workers, scoped, pooled));
    }

    // Machine-readable trajectory record.
    let out_path =
        std::env::var("BOLTON_BENCH_OUT").unwrap_or_else(|_| "BENCH_parallel_psgd.json".into());
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"parallel_psgd_pool\",\n");
    json.push_str("  \"workload\": \"figure2_in_memory\",\n");
    json.push_str(&format!("  \"rows\": {rows},\n"));
    json.push_str(&format!("  \"dim\": {dim},\n"));
    json.push_str(&format!("  \"passes\": {passes},\n"));
    json.push_str("  \"batch_size\": 1,\n");
    json.push_str(&format!("  \"repeats\": {repeats},\n"));
    json.push_str(&format!("  \"hardware_threads\": {hardware},\n"));
    json.push_str(&format!("  \"pool_threads\": {pool_threads},\n"));
    json.push_str(&format!("  \"sequential_seconds_per_epoch\": {seq:.6},\n"));
    json.push_str("  \"results\": [\n");
    for (i, (workers, scoped, pooled)) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {workers}, \"scoped_seconds_per_epoch\": {scoped:.6}, \
             \"pool_seconds_per_epoch\": {pooled:.6}, \
             \"pool_speedup_vs_sequential\": {:.4}, \"pool_speedup_vs_scoped\": {:.4}}}{}\n",
            seq / pooled,
            scoped / pooled,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    eprintln!("wrote {out_path}");
}

//! Figure 5 — runtime overhead of the private algorithms inside Bismarck.
//!
//! Row 1: runtime vs number of epochs (mini-batch 10) on the three main
//! datasets. Row 2: runtime vs mini-batch size (one epoch). Strongly convex
//! (ε, δ)-DP, ε = 0.1, as in the paper ("other settings have very similar
//! trends"). The claims under test: ours ≈ noiseless everywhere; SCS13 and
//! BST14 pay 2–6× at small batches, converging to parity at batch 500.
//!
//! Output: TSV rows `panel, dataset, epochs, batch, algorithm, seconds`.

use bolton_bench::{header, row, table_from_dataset, BisAlg, MAIN_DATASETS};
use bolton_bismarck::Backing;
use bolton_data::generate;

fn main() {
    header(&["panel", "dataset", "epochs", "batch", "algorithm", "seconds"]);
    for spec in MAIN_DATASETS {
        let bench = generate(spec, 0xF165);

        // Row 1: epochs sweep at batch 10.
        for &epochs in &[1usize, 5, 10, 15, 20] {
            for alg in BisAlg::ALL {
                let mut table = table_from_dataset(&bench.train, "rt", Backing::Memory, 4096);
                let (_, elapsed) =
                    bolton_bench::run_bismarck_sc(&mut table, alg, 1e-4, 0.1, epochs, 10, 7);
                row(&[
                    "epochs".into(),
                    spec.name().into(),
                    epochs.to_string(),
                    "10".into(),
                    alg.label().into(),
                    format!("{:.4}", elapsed.as_secs_f64()),
                ]);
            }
        }

        // Row 2: batch-size sweep at one epoch.
        for &batch in &[1usize, 10, 100, 500] {
            for alg in BisAlg::ALL {
                let mut table = table_from_dataset(&bench.train, "rt", Backing::Memory, 4096);
                let (_, elapsed) =
                    bolton_bench::run_bismarck_sc(&mut table, alg, 1e-4, 0.1, 1, batch, 8);
                row(&[
                    "batch".into(),
                    spec.name().into(),
                    "1".into(),
                    batch.to_string(),
                    alg.label().into(),
                    format!("{:.4}", elapsed.as_secs_f64()),
                ]);
            }
        }
    }
}

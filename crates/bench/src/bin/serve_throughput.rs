//! Serving-layer throughput: the v1 line protocol (one statement per
//! round trip) versus the v2 binary protocol pipelining a fixed window of
//! in-flight statements per connection, over the same in-process server
//! and the same mixed COUNT / EVAL / prepared-EXECUTE workload.
//!
//! Each client thread opens its own connection, PREPAREs a statement, then
//! issues `stmts` statements: v1 sequentially (`request` round trips), v2
//! keeping `depth` requests in flight (`send_request` / `recv_response`
//! window). Pipelining wins by amortizing round-trip latency and per-wake
//! scheduling across the window — so the speedup holds even on a
//! single-core runner, where parallel execution alone could only tie.
//!
//! Prints TSV to stdout and writes `BENCH_serve_throughput.json` (override
//! with `BOLTON_BENCH_OUT`). The JSON records the honest
//! `hardware_threads` and the shared engine pool's parse-cache hit rate
//! over the run.
//!
//! Knobs: `BOLTON_ST_CLIENTS` (default 64), `BOLTON_ST_DEPTH` (window,
//! default 8), `BOLTON_ST_STMTS` (statements per client per phase, default
//! 192), `BOLTON_ST_ROWS` (table rows, default 1000). At 8+ clients the
//! binary asserts the acceptance floor: v2 ≥ 2× v1 and parse-cache hit
//! rate > 90%.

use bolton_bismarck::server::{serve, Client};
use bolton_bismarck::{Db, Limits, ServerConfig};
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

/// The statement mix, cycled per request index: a cheap aggregate, a
/// model evaluation, and a prepared-statement execution.
fn statement(i: usize) -> &'static str {
    match i % 3 {
        0 => "SELECT COUNT(*) FROM t",
        1 => "EVAL m ON t",
        _ => "EXECUTE q",
    }
}

/// One v1 client: sequential request/response round trips.
fn v1_client(addr: &str, stmts: usize) {
    let mut c = Client::connect(addr).expect("v1 connect");
    c.expect_ok("PREPARE q AS SELECT AVG($1) FROM t").expect("PREPARE");
    for i in 0..stmts {
        let lines = c.request(&full_statement(i)).expect("v1 request");
        assert!(lines.last().is_some_and(|l| l.starts_with("ok")), "{lines:?}");
    }
}

/// One v2 client: a sliding window of `depth` in-flight request IDs.
fn v2_client(addr: &str, stmts: usize, depth: usize) {
    let mut c = Client::connect_v2(addr).expect("v2 connect");
    c.expect_ok("PREPARE q AS SELECT AVG($1) FROM t").expect("PREPARE");
    let mut sent = 0usize;
    let mut received = 0usize;
    while received < stmts {
        while sent < stmts && sent - received < depth {
            c.send_request(&full_statement(sent)).expect("v2 send");
            sent += 1;
        }
        let (_, response) = c.recv_response().expect("v2 recv");
        assert!(response.is_ok(), "{response:?}");
        received += 1;
    }
}

/// `EXECUTE q` needs its placeholder argument appended.
fn full_statement(i: usize) -> String {
    let stmt = statement(i);
    if stmt == "EXECUTE q" {
        "EXECUTE q (1)".to_string()
    } else {
        stmt.to_string()
    }
}

/// Runs one phase: `clients` threads, each issuing `stmts` statements.
/// Returns aggregate statements/second.
fn run_phase(addr: &str, clients: usize, per_client: impl Fn(&str) + Sync) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        let per_client = &per_client;
        for _ in 0..clients {
            scope.spawn(move || per_client(addr));
        }
    });
    start.elapsed().as_secs_f64()
}

/// Reads the engine pool's parse-cache counters out of `SHOW LIMITS`.
fn cache_counters(addr: &str) -> (u64, u64) {
    let mut c = Client::connect_v2(addr).expect("stats connect");
    let limits = c.query("SHOW LIMITS").expect("SHOW LIMITS");
    let field = |key: &str| -> u64 {
        limits
            .rows()
            .iter()
            .find_map(|row| row.strip_prefix(key))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{key} missing from SHOW LIMITS: {limits:?}"))
    };
    (field("parse_cache_hits="), field("parse_cache_misses="))
}

fn main() {
    let clients = env_usize("BOLTON_ST_CLIENTS", 64);
    let depth = env_usize("BOLTON_ST_DEPTH", 8);
    let stmts = env_usize("BOLTON_ST_STMTS", 192);
    let rows = env_usize("BOLTON_ST_ROWS", 1000);
    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());

    let db = Arc::new(Db::new());
    let limits = Limits::default();
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        max_connections: clients + 8,
        limits: limits.clone(),
    };
    let server = serve(Arc::clone(&db), &config).expect("bind");
    let addr = server.addr().to_string();

    let mut setup = Client::connect(&addr).expect("setup connect");
    setup.expect_ok("CREATE TABLE t (DIM 8)").unwrap();
    setup.expect_ok(&format!("SYNTH t ROWS {rows} SEED 7 NOISE 0.05")).unwrap();
    setup.expect_ok("TRAIN m ON t ALGO bolton EPS 1 LAMBDA 0.01 PASSES 1 BATCH 10 SEED 3").unwrap();

    // Warm both paths once so thread-pool and page-cache effects don't
    // land inside either timed phase.
    v1_client(&addr, 6);
    v2_client(&addr, 6, depth.max(1));

    bolton_bench::header(&["protocol", "clients", "depth", "stmts_per_sec", "speedup_vs_v1"]);

    let v1_secs = run_phase(&addr, clients, |a| v1_client(a, stmts));
    let v1_rate = (clients * stmts) as f64 / v1_secs;
    bolton_bench::row(&[
        "v1-line".into(),
        clients.to_string(),
        "1".into(),
        format!("{v1_rate:.0}"),
        "1.00".into(),
    ]);

    let (hits_before, misses_before) = cache_counters(&addr);
    let v2_secs = run_phase(&addr, clients, |a| v2_client(a, stmts, depth.max(1)));
    let (hits_after, misses_after) = cache_counters(&addr);
    let v2_rate = (clients * stmts) as f64 / v2_secs;
    let speedup = v2_rate / v1_rate;
    bolton_bench::row(&[
        "v2-pipelined".into(),
        clients.to_string(),
        depth.to_string(),
        format!("{v2_rate:.0}"),
        format!("{speedup:.2}"),
    ]);

    let d_hits = hits_after - hits_before;
    let d_misses = misses_after - misses_before;
    let hit_rate =
        if d_hits + d_misses == 0 { 1.0 } else { d_hits as f64 / (d_hits + d_misses) as f64 };
    println!(
        "# parse cache over the v2 phase: {d_hits} hits, {d_misses} misses ({:.1}%)",
        hit_rate * 100.0
    );

    let mut stop = Client::connect(&addr).expect("stop connect");
    stop.expect_ok("SHUTDOWN").unwrap();
    server.wait();

    let out_path = std::env::var("BOLTON_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_serve_throughput.json".to_string());
    let json = format!(
        "{{\n  \"benchmark\": \"serve_throughput\",\n  \"workload\": \"mixed count/eval/prepared-execute over one in-process server\",\n  \"clients\": {clients},\n  \"pipeline_depth\": {depth},\n  \"stmts_per_client\": {stmts},\n  \"rows\": {rows},\n  \"hardware_threads\": {hardware},\n  \"pipeline_executors\": {execs},\n  \"parse_engines\": {engines},\n  \"v1_stmts_per_sec\": {v1_rate:.1},\n  \"v2_stmts_per_sec\": {v2_rate:.1},\n  \"v2_speedup_vs_v1\": {speedup:.3},\n  \"parse_cache_hits\": {d_hits},\n  \"parse_cache_misses\": {d_misses},\n  \"parse_cache_hit_rate\": {hit_rate:.4}\n}}\n",
        execs = limits.pipeline_executors,
        engines = limits.parse_engines,
    );
    let mut f = std::fs::File::create(&out_path).expect("create bench json");
    f.write_all(json.as_bytes()).expect("write bench json");
    println!("# wrote {out_path}");

    // Acceptance floor — only meaningful at real concurrency (the CI
    // micro-run uses 2 clients and just checks the harness runs).
    if clients >= 8 {
        assert!(
            speedup >= 2.0,
            "pipelined v2 must be >= 2x v1 at {clients} clients: got {speedup:.2}x"
        );
        assert!(hit_rate > 0.9, "parse-cache hit rate must exceed 90%: got {hit_rate:.3}");
    }
}

//! SIMD kernel microbenchmark — dispatched hot-path kernels vs. the
//! 4-wide scalar reference.
//!
//! Times every supported [`simd::Mode`] over the five hot kernels
//! (`dot`, `norm_sq`, `axpy`, `scale`, `axpy_project_l2`) at
//! d ∈ {256, 512, 1024, 2048}, asserting the reproducibility contract
//! before trusting any timing:
//! * each reduction kernel is bit-identical to the fixed-width reference
//!   at its own lane width (scalar/AVX2 → width 4, AVX-512 → width 16);
//! * element-wise kernels (`axpy`, `scale`) are bit-identical across
//!   *all* modes;
//! * the fused `axpy_project_l2` equals the unfused sequence per mode.
//!
//! Acceptance gate: when the machine supports a SIMD mode, the dispatched
//! kernel must reach ≥1.5× the scalar reference on `dot` and
//! `axpy_project_l2` at d ≥ 1024.
//!
//! Prints TSV to stdout and writes `BENCH_simd_kernels.json` (override
//! with `BOLTON_BENCH_OUT`). Knobs: `BOLTON_SIMD_REPEATS` (default 9),
//! `BOLTON_SIMD_TARGET_OPS` (inner-loop op count per sample, default
//! 8_000_000).

use bolton_bench::{header, row};
use bolton_linalg::simd::{self, Mode};
use bolton_rng::Rng;
use std::hint::black_box;
use std::time::Instant;

// Sizes stay in the L1-resident, compute-bound regime: once the working
// set spills past L1 (~d=4096: two 32 KB vectors) every implementation is
// load-bandwidth-bound and lane width stops mattering.
const DIMS: [usize; 4] = [256, 512, 1024, 2048];
const KERNELS: [&str; 5] = ["dot", "norm_sq", "axpy", "scale", "axpy_project_l2"];

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

fn random_vec(rng: &mut impl Rng, dim: usize) -> Vec<f64> {
    (0..dim).map(|_| rng.next_f64() * 2.0 - 1.0).collect()
}

/// Best (minimum) wall-clock nanoseconds per kernel call: each sample runs
/// the kernel `iters` times back-to-back so short dims stay measurable, and
/// the minimum over samples is kept — scheduler/VM noise only ever *adds*
/// time, so the min is the honest throughput-capability estimate.
fn best_ns_per_call(repeats: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters / 4 {
        f(); // warm caches and the dispatch OnceLock before sampling
    }
    (0..repeats)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() * 1e9 / iters as f64
        })
        .fold(f64::INFINITY, f64::min)
}

/// Verifies the bit-level contract for one mode at one dim before timing.
fn assert_contract(mode: Mode, x: &[f64], y: &[f64]) {
    let w = mode.lane_width();
    assert_eq!(
        simd::dot(mode, x, y).to_bits(),
        simd::reference_dot(w, x, y).to_bits(),
        "{} dot must match the width-{w} reference bitwise",
        mode.name()
    );
    assert_eq!(
        simd::norm_sq(mode, x).to_bits(),
        simd::reference_norm_sq(w, x).to_bits(),
        "{} norm_sq must match the width-{w} reference bitwise",
        mode.name()
    );
    // Element-wise kernels: identical across every mode.
    let mut via_mode = y.to_vec();
    let mut via_scalar = y.to_vec();
    simd::axpy(mode, 0.37, x, &mut via_mode);
    simd::axpy(Mode::Scalar, 0.37, x, &mut via_scalar);
    assert_eq!(via_mode, via_scalar, "{} axpy must be bit-identical to scalar", mode.name());
    simd::scale(mode, -1.25, &mut via_mode);
    simd::scale(Mode::Scalar, -1.25, &mut via_scalar);
    assert_eq!(via_mode, via_scalar, "{} scale must be bit-identical to scalar", mode.name());
    // Fused == unfused under the same mode.
    let mut fused = y.to_vec();
    let norm = simd::axpy_project_l2(mode, 0.37, x, &mut fused, 1.0);
    let mut unfused = y.to_vec();
    simd::axpy(mode, 0.37, x, &mut unfused);
    let n = simd::norm_sq(mode, &unfused).sqrt();
    if n > 1.0 {
        simd::scale(mode, 1.0 / n, &mut unfused);
    }
    assert_eq!(fused, unfused, "{} fused axpy_project_l2 must equal unfused", mode.name());
    assert_eq!(norm.to_bits(), n.to_bits(), "{} fused norm must match unfused", mode.name());
}

fn time_kernel(kernel: &str, mode: Mode, dim: usize, repeats: usize, target_ops: usize) -> f64 {
    let mut rng = bolton_rng::seeded(0x51D0 + dim as u64);
    let x = random_vec(&mut rng, dim);
    let y = random_vec(&mut rng, dim);
    let mut buf = y.clone();
    let iters = (target_ops / dim).max(1);
    match kernel {
        "dot" => best_ns_per_call(repeats, iters, || {
            black_box(simd::dot(mode, black_box(&x), black_box(&y)));
        }),
        "norm_sq" => best_ns_per_call(repeats, iters, || {
            black_box(simd::norm_sq(mode, black_box(&x)));
        }),
        "axpy" => best_ns_per_call(repeats, iters, || {
            simd::axpy(mode, black_box(1e-9), black_box(&x), &mut buf);
            black_box(buf.len());
        }),
        "scale" => best_ns_per_call(repeats, iters, || {
            simd::scale(mode, black_box(1.0 + 1e-12), &mut buf);
            black_box(buf.len());
        }),
        "axpy_project_l2" => best_ns_per_call(repeats, iters, || {
            black_box(simd::axpy_project_l2(mode, black_box(1e-9), black_box(&x), &mut buf, 1e9));
            black_box(buf.len());
        }),
        _ => unreachable!("unknown kernel {kernel}"),
    }
}

fn main() {
    let repeats = env_usize("BOLTON_SIMD_REPEATS", 9);
    let target_ops = env_usize("BOLTON_SIMD_TARGET_OPS", 8_000_000);
    let modes = simd::supported_modes();
    let dispatched = simd::active();
    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Contract first: no timing is reported for a kernel that fails the
    // reproducibility asserts.
    let mut rng = bolton_rng::seeded(0xC0_117AC7);
    for &dim in &DIMS {
        // Include a ragged tail so the masked/tail path is covered too.
        for d in [dim, dim + 3] {
            let x = random_vec(&mut rng, d);
            let y = random_vec(&mut rng, d);
            for &mode in &modes {
                assert_contract(mode, &x, &y);
            }
        }
    }

    header(&["kernel", "dim", "mode", "ns_per_call", "speedup_vs_scalar"]);
    // timings[kernel][dim] -> Vec<(mode, ns)>
    let mut timings: Vec<Vec<Vec<(Mode, f64)>>> = vec![vec![Vec::new(); DIMS.len()]; KERNELS.len()];
    for (ki, &kernel) in KERNELS.iter().enumerate() {
        for (di, &dim) in DIMS.iter().enumerate() {
            let scalar_ns = time_kernel(kernel, Mode::Scalar, dim, repeats, target_ops);
            for &mode in &modes {
                let ns = if mode == Mode::Scalar {
                    scalar_ns
                } else {
                    time_kernel(kernel, mode, dim, repeats, target_ops)
                };
                timings[ki][di].push((mode, ns));
                row(&[
                    kernel.into(),
                    dim.to_string(),
                    mode.name().into(),
                    format!("{ns:.1}"),
                    format!("{:.3}", scalar_ns / ns),
                ]);
            }
        }
    }

    // Acceptance gate: the *dispatched* mode must beat scalar by ≥1.5× on
    // dot and axpy_project_l2 at every d ≥ 1024 — only meaningful when the
    // hardware actually has a SIMD mode (scalar-only machines record parity).
    let simd_available = simd::detected() != Mode::Scalar;
    let mut gate_results = Vec::new();
    for (ki, &kernel) in KERNELS.iter().enumerate() {
        if kernel != "dot" && kernel != "axpy_project_l2" {
            continue;
        }
        for (di, &dim) in DIMS.iter().enumerate() {
            if dim < 1024 {
                continue;
            }
            let cells = &timings[ki][di];
            let scalar_ns = cells.iter().find(|(m, _)| *m == Mode::Scalar).unwrap().1;
            let disp_ns = cells.iter().find(|(m, _)| *m == dispatched).unwrap().1;
            let speedup = scalar_ns / disp_ns;
            gate_results.push((kernel, dim, speedup));
            if simd_available && dispatched != Mode::Scalar {
                assert!(
                    speedup >= 1.5,
                    "dispatched {} must be >=1.5x scalar on {kernel} at d={dim}, got {speedup:.3}x",
                    dispatched.name()
                );
            }
        }
    }

    let out_path =
        std::env::var("BOLTON_BENCH_OUT").unwrap_or_else(|_| "BENCH_simd_kernels.json".into());
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"simd_kernels\",\n");
    json.push_str(&format!("  \"hardware_threads\": {hardware},\n"));
    json.push_str(&format!(
        "  \"capabilities\": {{\"avx2\": {}, \"avx512f\": {}}},\n",
        simd::supported(Mode::Avx2),
        simd::supported(Mode::Avx512)
    ));
    json.push_str(&format!("  \"detected_mode\": \"{}\",\n", simd::detected().name()));
    json.push_str(&format!("  \"dispatched_mode\": \"{}\",\n", dispatched.name()));
    json.push_str(&format!(
        "  \"lane_widths\": {{{}}},\n",
        modes
            .iter()
            .map(|m| format!("\"{}\": {}", m.name(), m.lane_width()))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!("  \"repeats\": {repeats},\n"));
    json.push_str(&format!("  \"inner_loop_target_ops\": {target_ops},\n"));
    json.push_str("  \"bit_identity_asserts_passed\": true,\n");
    json.push_str("  \"kernels\": {\n");
    for (ki, &kernel) in KERNELS.iter().enumerate() {
        json.push_str(&format!("    \"{kernel}\": {{\n"));
        for (di, &dim) in DIMS.iter().enumerate() {
            let cells = &timings[ki][di];
            let scalar_ns = cells.iter().find(|(m, _)| *m == Mode::Scalar).unwrap().1;
            let body = cells
                .iter()
                .map(|(m, ns)| {
                    format!(
                        "\"{}\": {{\"ns_per_call\": {ns:.1}, \"speedup_vs_scalar\": {:.4}}}",
                        m.name(),
                        scalar_ns / ns
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            let comma = if di + 1 < DIMS.len() { "," } else { "" };
            json.push_str(&format!("      \"d{dim}\": {{{body}}}{comma}\n"));
        }
        let comma = if ki + 1 < KERNELS.len() { "," } else { "" };
        json.push_str(&format!("    }}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"acceptance\": {{\"simd_available\": {simd_available}, \"required_speedup\": 1.5, \
         \"gates\": [{}]}}\n",
        gate_results
            .iter()
            .map(|(k, d, s)| format!(
                "{{\"kernel\": \"{k}\", \"dim\": {d}, \"dispatched_speedup\": {s:.4}}}"
            ))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    eprintln!("wrote {out_path}");
}

//! Ablation: permutation-based sampling (the scheme the sensitivity
//! analysis covers) vs with-replacement sampling. Convergence is similar;
//! the point is that the paper's privacy argument *requires* PSGD —
//! with-replacement runs can touch the differing example many times per
//! pass, and the replayed Lemma 4 bound no longer applies.
//!
//! Output: TSV rows `scheme, passes, train_accuracy, test_accuracy`.

use bolton_bench::{header, row};
use bolton_data::{generate_scaled, DatasetSpec};
use bolton_sgd::engine::{run_psgd, SamplingScheme, SgdConfig};
use bolton_sgd::loss::Logistic;
use bolton_sgd::schedule::StepSize;
use bolton_sgd::{metrics, TrainSet};

fn main() {
    header(&["scheme", "passes", "train_accuracy", "test_accuracy"]);
    let bench = generate_scaled(DatasetSpec::Covtype, 0xAB2, 0.02);
    let m = bench.train.len();
    let loss = Logistic::plain();
    for (name, scheme) in [
        ("permutation", SamplingScheme::Permutation { fresh_each_pass: false }),
        ("permutation-fresh", SamplingScheme::Permutation { fresh_each_pass: true }),
        ("with-replacement", SamplingScheme::WithReplacement),
    ] {
        for passes in [1usize, 5, 10] {
            let config = SgdConfig::new(StepSize::InvSqrtM { m })
                .with_passes(passes)
                .with_batch_size(50)
                .with_sampling(scheme);
            let out = run_psgd(&bench.train, &loss, &config, &mut bolton_rng::seeded(0xAB3));
            row(&[
                name.into(),
                passes.to_string(),
                format!("{:.4}", metrics::accuracy(&out.model, &bench.train)),
                format!("{:.4}", metrics::accuracy(&out.model, &bench.test)),
            ]);
        }
    }
}

//! Table 4 — the step-size rules per setting and algorithm, evaluated at a
//! few `t` so the schedule implementations are auditable at a glance.
//!
//! Output: TSV rows `setting, algorithm, rule, eta_t1, eta_t100, eta_t10000`.

use bolton_bench::{header, row};
use bolton_sgd::schedule::StepSize;

fn main() {
    header(&["setting", "algorithm", "rule", "eta_t1", "eta_t100", "eta_t10000"]);
    let m = 10_000usize;
    let lambda = 1e-4;
    let beta_c = 1.0; // plain logistic
    let beta_sc = 1.0 + lambda;
    let gamma = lambda;
    // BST14 convex scale, representative calibration (d=50, sigma²=1e4, b=50).
    let g = (50.0f64 * 1.0e4 + (50.0f64 * 1.0).powi(2)).sqrt();
    let radius = 1.0 / lambda;

    let cells: Vec<(&str, &str, &str, StepSize)> = vec![
        ("convex", "Noiseless", "1/sqrt(m)", StepSize::InvSqrtM { m }),
        ("convex", "Ours", "1/sqrt(m)", StepSize::InvSqrtM { m }),
        ("convex", "SCS13", "1/sqrt(t)", StepSize::InvSqrtT),
        ("convex", "BST14", "2R/(G*sqrt(t))", StepSize::BstConvex { radius, g }),
        ("strongly-convex", "Noiseless", "1/(gamma*t)", StepSize::InvGammaT { gamma }),
        (
            "strongly-convex",
            "Ours",
            "min(1/beta, 1/(gamma*t))",
            StepSize::StronglyConvex { beta: beta_sc, gamma },
        ),
        ("strongly-convex", "SCS13", "1/sqrt(t)", StepSize::InvSqrtT),
        ("strongly-convex", "BST14", "1/(gamma*t)", StepSize::InvGammaT { gamma }),
        // The corollaries' analytical schedules (Section 3.2.1).
        (
            "convex-analysis",
            "Corollary2",
            "2/(beta*(t+m^c))",
            StepSize::Decreasing { beta: beta_c, m, c: 0.5 },
        ),
        (
            "convex-analysis",
            "Corollary3",
            "2/(beta*(sqrt(t)+m^c))",
            StepSize::SqrtDecay { beta: beta_c, m, c: 0.5 },
        ),
    ];

    for (setting, alg, rule, schedule) in cells {
        row(&[
            setting.to_string(),
            alg.to_string(),
            rule.to_string(),
            format!("{:.6}", schedule.eta(1)),
            format!("{:.6}", schedule.eta(100)),
            format!("{:.6}", schedule.eta(10_000)),
        ]);
    }
}

//! Figure 4 — the effect of passes and mini-batch size on our algorithm
//! (MNIST-like).
//!
//! (a) Convex ε-DP (Test 1), b = 1: more passes ⇒ more noise ⇒ *worse*
//!     accuracy (sensitivity 2kLη grows with k).
//! (b) Strongly convex ε-DP (Test 3), b = 50: more passes ⇒ *better*
//!     accuracy (sensitivity 2L/γm is k-oblivious, convergence improves).
//! (c) Convex ε-DP, k = 20: batch size b ∈ {1, 10, 50} — slightly enlarging
//!     b slashes the noise.
//!
//! Output: TSV rows `panel, eps, passes, batch, accuracy`.

use bolton::api::AlgorithmKind;
use bolton_bench::{header, mean_accuracy, row, Scenario, DEFAULT_LAMBDA};
use bolton_data::{generate, DatasetSpec};
use bolton_sgd::TrainSet;

fn main() {
    header(&["panel", "eps", "passes", "batch", "accuracy"]);
    let bench = generate(DatasetSpec::Mnist, 0xF164);
    let m = bench.train.len();
    let eps_grid = DatasetSpec::Mnist.epsilon_grid();

    // (a) Convex, b = 1, k ∈ {1, 10, 20}.
    for &k in &[1usize, 10, 20] {
        for &eps in eps_grid {
            let scenario = Scenario::ConvexPure;
            let acc = mean_accuracy(
                &bench,
                scenario.logistic(0.0),
                AlgorithmKind::BoltOn,
                Some(scenario.budget(eps, m)),
                k,
                1,
                3000,
            );
            row(&[
                "a-convex-passes".into(),
                format!("{eps}"),
                k.to_string(),
                "1".into(),
                format!("{acc:.4}"),
            ]);
        }
    }

    // (b) Strongly convex, b = 50, k ∈ {1, 10, 20}.
    for &k in &[1usize, 10, 20] {
        for &eps in eps_grid {
            let scenario = Scenario::StronglyConvexPure;
            let acc = mean_accuracy(
                &bench,
                scenario.logistic(DEFAULT_LAMBDA),
                AlgorithmKind::BoltOn,
                Some(scenario.budget(eps, m)),
                k,
                50,
                3100,
            );
            row(&[
                "b-strongly-convex-passes".into(),
                format!("{eps}"),
                k.to_string(),
                "50".into(),
                format!("{acc:.4}"),
            ]);
        }
    }

    // (c) Convex, k = 20, b ∈ {1, 10, 50}.
    for &b in &[1usize, 10, 50] {
        for &eps in eps_grid {
            let scenario = Scenario::ConvexPure;
            let acc = mean_accuracy(
                &bench,
                scenario.logistic(0.0),
                AlgorithmKind::BoltOn,
                Some(scenario.budget(eps, m)),
                20,
                b,
                3200,
            );
            row(&[
                "c-convex-batch".into(),
                format!("{eps}"),
                "20".into(),
                b.to_string(),
                format!("{acc:.4}"),
            ]);
        }
    }
}

//! Ablation beyond the paper: bolt-on output perturbation vs CMS11
//! objective perturbation (the other classical private-ERM style from the
//! paper's related work, Section 5) on the same strongly convex task.
//!
//! Both are ε-DP; the interesting axes are the noise route (output vs
//! objective) and the exactness caveat (objective perturbation's guarantee
//! assumes an exact minimizer, which SGD only approximates).
//!
//! Output: TSV rows `eps, method, accuracy, auc`.

use bolton::objective_perturbation::{train_objective_perturbation, ObjPertConfig};
use bolton::output_perturbation::{train_private, BoltOnConfig};
use bolton::{Budget, TrainSet};
use bolton_bench::{header, row};
use bolton_data::{generate_scaled, DatasetSpec};
use bolton_sgd::loss::Logistic;
use bolton_sgd::metrics;

fn main() {
    header(&["eps", "method", "accuracy", "auc"]);
    let bench = generate_scaled(DatasetSpec::Protein, 0xABB, 0.3);
    let lambda = 1e-2;
    let trials = bolton_bench::default_trials();
    let m = bench.train.len();
    let _ = m;

    for eps in [0.005, 0.02, 0.1, 0.5] {
        // Bolt-on output perturbation (Algorithm 2).
        let mut acc = 0.0;
        let mut area = 0.0;
        for t in 0..trials {
            let loss = Logistic::regularized(lambda, 1.0 / lambda);
            let config = BoltOnConfig::new(Budget::pure(eps).expect("budget"))
                .with_passes(10)
                .with_batch_size(50)
                .with_projection(1.0 / lambda);
            let out =
                train_private(&bench.train, &loss, &config, &mut bolton_rng::seeded(0xABC + t))
                    .expect("train");
            acc += metrics::accuracy(&out.model, &bench.test);
            area += metrics::auc(&out.model, &bench.test);
        }
        row(&[
            format!("{eps}"),
            "output-perturbation".into(),
            format!("{:.4}", acc / trials as f64),
            format!("{:.4}", area / trials as f64),
        ]);

        // CMS11 objective perturbation.
        let mut acc = 0.0;
        let mut area = 0.0;
        for t in 0..trials {
            let config = ObjPertConfig {
                budget: Budget::pure(eps).expect("budget"),
                lambda,
                passes: 10,
                batch_size: 50,
            };
            let out = train_objective_perturbation(
                &bench.train,
                &config,
                &mut bolton_rng::seeded(0xABD + t),
            )
            .expect("train");
            acc += metrics::accuracy(&out.model, &bench.test);
            area += metrics::auc(&out.model, &bench.test);
        }
        row(&[
            format!("{eps}"),
            "objective-perturbation".into(),
            format!("{:.4}", acc / trials as f64),
            format!("{:.4}", area / trials as f64),
        ]);
    }
}

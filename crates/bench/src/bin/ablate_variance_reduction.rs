//! Ablation: plain PSGD vs the variance-reduced optimizers the paper names
//! as equally non-adaptive (SVRG, SAG) — empirical risk as a function of
//! effective data passes on a strongly convex task. (SVRG pays 2× gradient
//! evaluations per update plus a snapshot pass; we charge it accordingly.)
//!
//! Output: TSV rows `optimizer, passes, empirical_risk, accuracy`.

use bolton_bench::{header, row};
use bolton_data::{generate_scaled, DatasetSpec};
use bolton_sgd::engine::{run_psgd, SgdConfig};
use bolton_sgd::loss::{Logistic, Loss};
use bolton_sgd::sag::{run_sag, SagConfig};
use bolton_sgd::schedule::StepSize;
use bolton_sgd::svrg::{run_svrg, SvrgConfig};
use bolton_sgd::{metrics, TrainSet};

fn main() {
    header(&["optimizer", "passes", "empirical_risk", "accuracy"]);
    let bench = generate_scaled(DatasetSpec::Covtype, 0xAC0, 0.02);
    let lambda = 1e-2;
    let loss = Logistic::regularized(lambda, 1.0 / lambda);
    let m = bench.train.len();
    let _ = m;

    for passes in [1usize, 2, 4, 8] {
        // PSGD with the strongly convex schedule.
        let psgd = run_psgd(
            &bench.train,
            &loss,
            &SgdConfig::new(StepSize::StronglyConvex { beta: loss.smoothness(), gamma: lambda })
                .with_passes(passes)
                .with_projection(1.0 / lambda),
            &mut bolton_rng::seeded(0xAC1),
        );
        row(&[
            "psgd".into(),
            passes.to_string(),
            format!("{:.6}", metrics::empirical_risk(&loss, &psgd.model, &bench.train)),
            format!("{:.4}", metrics::accuracy(&psgd.model, &bench.test)),
        ]);

        // SVRG: each outer epoch costs ~3 effective passes (snapshot +
        // double gradients); report at the same effective-pass budget.
        let svrg_epochs = (passes / 3).max(1);
        let svrg = run_svrg(
            &bench.train,
            &loss,
            &SvrgConfig::new(svrg_epochs, 0.3).with_projection(1.0 / lambda),
            &mut bolton_rng::seeded(0xAC2),
        );
        row(&[
            format!("svrg-{svrg_epochs}epochs"),
            passes.to_string(),
            format!("{:.6}", metrics::empirical_risk(&loss, &svrg.model, &bench.train)),
            format!("{:.4}", metrics::accuracy(&svrg.model, &bench.test)),
        ]);

        // SAG at the same pass count (unregularized loss + exact decay).
        let plain = Logistic::plain();
        let sag = run_sag(
            &bench.train,
            &plain,
            &SagConfig::new(passes, 0.06).with_weight_decay(lambda).with_projection(1.0 / lambda),
            &mut bolton_rng::seeded(0xAC3),
        );
        row(&[
            "sag".into(),
            passes.to_string(),
            format!("{:.6}", metrics::empirical_risk(&loss, &sag.model, &bench.train)),
            format!("{:.4}", metrics::accuracy(&sag.model, &bench.test)),
        ]);
    }
}

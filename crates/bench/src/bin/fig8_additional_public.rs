//! Figure 8 (Appendix C) — HIGGS-like and KDDCup-99-like accuracy with
//! public-data tuning (fixed k = 10, b = 50, λ = 1e-4 where applicable).
//!
//! The claim under test: at very large m, privacy is nearly free for our
//! algorithms (noise ∝ 1/m for ε-DP strongly convex), while SCS13/BST14
//! remain visibly below the noiseless ceiling at small ε.
//!
//! Output: TSV rows `dataset, scenario, eps, algorithm, accuracy`.

use bolton_bench::{
    budget_for, header, mean_accuracy, row, Scenario, DEFAULT_BATCH, DEFAULT_LAMBDA,
    DEFAULT_PASSES, EXTRA_DATASETS,
};
use bolton_data::generate;
use bolton_sgd::TrainSet;

fn main() {
    header(&["dataset", "scenario", "eps", "algorithm", "accuracy"]);
    for spec in EXTRA_DATASETS {
        let bench = generate(spec, 0xF168);
        let m = bench.train.len();
        for scenario in Scenario::ALL {
            let loss = scenario.logistic(DEFAULT_LAMBDA);
            for &eps in spec.epsilon_grid() {
                for &alg in scenario.algorithms() {
                    let budget = budget_for(scenario, alg, eps, m);
                    let acc = mean_accuracy(
                        &bench,
                        loss,
                        alg,
                        budget,
                        DEFAULT_PASSES,
                        DEFAULT_BATCH,
                        6000,
                    );
                    row(&[
                        spec.name().to_string(),
                        scenario.label().to_string(),
                        format!("{eps}"),
                        alg.label().to_string(),
                        format!("{acc:.4}"),
                    ]);
                }
            }
        }
    }
}

//! Figure 9 (Appendix C) — HIGGS-like and KDDCup-99-like accuracy with the
//! private tuning Algorithm 3 (grid k ∈ {5, 10}, λ ∈ {1e-4, 1e-3, 1e-2}
//! where applicable, b = 50).
//!
//! Output: TSV rows `dataset, scenario, eps, algorithm, accuracy`.

use bolton::api::{AlgorithmKind, TrainPlan};
use bolton::tuning::{grid, private_tune, Candidate};
use bolton::{metrics, InMemoryDataset, TrainSet};
use bolton_bench::{
    budget_for, header, row, Scenario, DEFAULT_BATCH, DEFAULT_LAMBDA, DEFAULT_PASSES,
    EXTRA_DATASETS,
};
use bolton_data::{generate, Benchmark};
use bolton_rng::Rng;

fn candidates(scenario: Scenario) -> Vec<Candidate> {
    if scenario.strongly_convex() {
        grid(&[5, 10], &[DEFAULT_BATCH], &[1e-4, 1e-3, 1e-2])
    } else {
        grid(&[5, 10], &[DEFAULT_BATCH], &[0.0])
    }
}

fn tuned_accuracy(
    bench: &Benchmark,
    scenario: Scenario,
    alg: AlgorithmKind,
    eps: f64,
    seed: u64,
) -> f64 {
    let m = bench.train.len();
    let budget = scenario.budget(eps, m);
    let cands = candidates(scenario);
    let mut rng = bolton_rng::seeded(seed);
    let mut train = |portion: &InMemoryDataset, c: &Candidate, r: &mut dyn Rng| {
        let plan = TrainPlan::new(scenario.logistic(c.lambda), alg, Some(budget))
            .with_passes(c.passes)
            .with_batch_size(c.batch_size);
        plan.train(portion, r).expect("candidate must train")
    };
    let tuned = private_tune(&bench.train, &cands, budget, &mut train, &mut rng)
        .expect("tuning must succeed");
    metrics::accuracy(&tuned.model, &bench.test)
}

fn main() {
    header(&["dataset", "scenario", "eps", "algorithm", "accuracy"]);
    let trials = bolton_bench::default_trials();
    for spec in EXTRA_DATASETS {
        let bench = generate(spec, 0xF169);
        let m = bench.train.len();
        for scenario in Scenario::ALL {
            for &eps in spec.epsilon_grid() {
                for &alg in scenario.algorithms() {
                    let acc = if alg == AlgorithmKind::Noiseless {
                        bolton_bench::mean_accuracy(
                            &bench,
                            scenario.logistic(DEFAULT_LAMBDA),
                            alg,
                            budget_for(scenario, alg, eps, m),
                            DEFAULT_PASSES,
                            DEFAULT_BATCH,
                            7000,
                        )
                    } else {
                        let mut total = 0.0;
                        for t in 0..trials {
                            total += tuned_accuracy(&bench, scenario, alg, eps, 7000 + t);
                        }
                        total / trials as f64
                    };
                    row(&[
                        spec.name().to_string(),
                        scenario.label().to_string(),
                        format!("{eps}"),
                        alg.label().to_string(),
                        format!("{acc:.4}"),
                    ]);
                }
            }
        }
    }
}

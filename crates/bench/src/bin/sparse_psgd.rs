//! Sparse-PSGD benchmark — the paper's high-dimensional one-hot workload
//! (KDDCup-99-like: d in the tens of thousands, density a few percent) run
//! two ways, noiseless and private:
//!
//! 1. `densify` — [`bolton_sgd::run_psgd`] over the [`SparseDataset`]'s
//!    dense scan (every row materialized into a dense buffer; O(d) per
//!    example — the pre-sparse-engine baseline);
//! 2. `sparse` — [`bolton_sgd::run_sparse_psgd`], the O(nnz) lazy-scaled
//!    hot path, plus the pool-parallel [`run_parallel_psgd_sparse`] against
//!    its densifying counterpart.
//!
//! Both engines consume identical randomness, so at each seed the models
//! must agree to within float reassociation — the bin asserts the max
//! coordinate difference and, for the private runs, that the two paths
//! drew the bit-identical noise vector. Prints TSV to stdout and writes
//! `BENCH_sparse_psgd.json` (override with `BOLTON_BENCH_OUT`).
//!
//! Knobs: `BOLTON_SPARSE_ROWS` (default 2000), `BOLTON_SPARSE_DIM`
//! (default 10000), `BOLTON_SPARSE_DENSITY` (default 0.05),
//! `BOLTON_SPARSE_PASSES` (default 2), `BOLTON_SPARSE_REPEATS` (default
//! 3), `BOLTON_SPARSE_WORKERS` (default 2).

use bolton::output_perturbation::{train_private, train_private_sparse, BoltOnConfig};
use bolton::Budget;
use bolton_bench::{header, row, time_it};
use bolton_sgd::{
    run_parallel_psgd, run_parallel_psgd_sparse, run_psgd, run_sparse_psgd, Logistic, SgdConfig,
    SparseDataset, StepSize,
};
use std::time::Duration;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

/// Median wall-clock of `repeats` timed calls.
fn median_secs(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<Duration> = (0..repeats).map(|_| time_it(&mut f).1).collect();
    samples.sort();
    samples[samples.len() / 2].as_secs_f64()
}

fn max_coord_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(p, q)| (p - q).abs()).fold(0.0, f64::max)
}

/// One timed comparison cell: (densify secs/epoch, sparse secs/epoch,
/// max coordinate difference between the two paths' models).
struct Cell {
    densify: f64,
    sparse: f64,
    max_diff: f64,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.densify / self.sparse
    }
}

fn main() {
    let rows = env_usize("BOLTON_SPARSE_ROWS", 2000);
    let dim = env_usize("BOLTON_SPARSE_DIM", 10_000);
    let density = env_f64("BOLTON_SPARSE_DENSITY", 0.05);
    let passes = env_usize("BOLTON_SPARSE_PASSES", 2);
    let repeats = env_usize("BOLTON_SPARSE_REPEATS", 3);
    let workers = env_usize("BOLTON_SPARSE_WORKERS", 2);
    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());

    let data: SparseDataset = bolton_data::generator::sparse_linear_binary(
        &mut bolton_rng::seeded(0x5A23),
        rows,
        dim,
        density,
        0.1,
    );
    let nnz = data.total_nnz();
    let loss = Logistic::plain();
    let config = SgdConfig::new(StepSize::Constant(0.5)).with_passes(passes);
    let epochs = passes as f64;

    header(&["path", "mode", "seconds_per_epoch", "speedup_vs_densify", "max_coord_diff"]);

    // Noiseless sequential: the densifying TrainSet scan vs the O(nnz)
    // lazy engine, same seed ⇒ same example orders.
    let noiseless = {
        let dense_model = run_psgd(&data, &loss, &config, &mut bolton_rng::seeded(11)).model;
        let sparse_model =
            run_sparse_psgd(&data, &loss, &config, &mut bolton_rng::seeded(11)).model;
        let max_diff = max_coord_diff(&dense_model, &sparse_model);
        assert!(max_diff <= 1e-6, "sparse and densifying models diverged: {max_diff}");
        let densify = median_secs(repeats, || {
            let out = run_psgd(&data, &loss, &config, &mut bolton_rng::seeded(12));
            std::hint::black_box(out.model.len());
        }) / epochs;
        let sparse = median_secs(repeats, || {
            let out = run_sparse_psgd(&data, &loss, &config, &mut bolton_rng::seeded(12));
            std::hint::black_box(out.model.len());
        }) / epochs;
        Cell { densify, sparse, max_diff }
    };
    row(&[
        "densify".into(),
        "noiseless".into(),
        format!("{:.6}", noiseless.densify),
        "1.00".into(),
        "0".into(),
    ]);
    row(&[
        "sparse".into(),
        "noiseless".into(),
        format!("{:.6}", noiseless.sparse),
        format!("{:.2}", noiseless.speedup()),
        format!("{:.3e}", noiseless.max_diff),
    ]);

    // Private (ε = 1 bolt-on, Algorithm 1): sensitivity calibration and the
    // Laplace-ball draw ride on top of either engine; at a fixed seed both
    // paths draw the bit-identical noise vector.
    let bolton_config =
        BoltOnConfig::new(Budget::pure(1.0).expect("valid eps")).with_passes(passes);
    let private = {
        let dense = train_private(&data, &loss, &bolton_config, &mut bolton_rng::seeded(21))
            .expect("dense");
        let sparse =
            train_private_sparse(&data, &loss, &bolton_config, &mut bolton_rng::seeded(21))
                .expect("sparse");
        // Both paths consume identical randomness before the mechanism, so
        // the noise vectors come from the same stream; recovering them as
        // `model − unperturbed` re-rounds, hence the few-ulp tolerance.
        for ((dm, du), (sm, su)) in dense
            .model
            .iter()
            .zip(dense.unperturbed.iter())
            .zip(sparse.model.iter().zip(sparse.unperturbed.iter()))
        {
            assert!(
                ((dm - du) - (sm - su)).abs() <= 1e-12,
                "noise draws diverged between the paths: {} vs {}",
                dm - du,
                sm - su
            );
        }
        let max_diff = max_coord_diff(&dense.model, &sparse.model);
        assert!(max_diff <= 1e-6, "private models diverged: {max_diff}");
        let densify = median_secs(repeats, || {
            let out = train_private(&data, &loss, &bolton_config, &mut bolton_rng::seeded(22));
            std::hint::black_box(out.expect("dense").model.len());
        }) / epochs;
        let sparse = median_secs(repeats, || {
            let out =
                train_private_sparse(&data, &loss, &bolton_config, &mut bolton_rng::seeded(22));
            std::hint::black_box(out.expect("sparse").model.len());
        }) / epochs;
        Cell { densify, sparse, max_diff }
    };
    row(&[
        "densify".into(),
        "private_eps1".into(),
        format!("{:.6}", private.densify),
        "1.00".into(),
        "0".into(),
    ]);
    row(&[
        "sparse".into(),
        "private_eps1".into(),
        format!("{:.6}", private.sparse),
        format!("{:.2}", private.speedup()),
        format!("{:.3e}", private.max_diff),
    ]);

    // Pool-parallel parameter mixing at the configured worker count.
    let parallel = {
        let dense_model =
            run_parallel_psgd(&data, &loss, &config, workers, &mut bolton_rng::seeded(31)).model;
        let sparse_model =
            run_parallel_psgd_sparse(&data, &loss, &config, workers, &mut bolton_rng::seeded(31))
                .model;
        let max_diff = max_coord_diff(&dense_model, &sparse_model);
        assert!(max_diff <= 1e-6, "parallel models diverged: {max_diff}");
        let densify = median_secs(repeats, || {
            let out =
                run_parallel_psgd(&data, &loss, &config, workers, &mut bolton_rng::seeded(32));
            std::hint::black_box(out.model.len());
        }) / epochs;
        let sparse = median_secs(repeats, || {
            let out = run_parallel_psgd_sparse(
                &data,
                &loss,
                &config,
                workers,
                &mut bolton_rng::seeded(32),
            );
            std::hint::black_box(out.model.len());
        }) / epochs;
        Cell { densify, sparse, max_diff }
    };
    row(&[
        format!("densify_par{workers}"),
        "noiseless".into(),
        format!("{:.6}", parallel.densify),
        "1.00".into(),
        "0".into(),
    ]);
    row(&[
        format!("sparse_par{workers}"),
        "noiseless".into(),
        format!("{:.6}", parallel.sparse),
        format!("{:.2}", parallel.speedup()),
        format!("{:.3e}", parallel.max_diff),
    ]);

    // Machine-readable trajectory record.
    let out_path =
        std::env::var("BOLTON_BENCH_OUT").unwrap_or_else(|_| "BENCH_sparse_psgd.json".into());
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"sparse_psgd_lazy\",\n");
    json.push_str("  \"workload\": \"kddcup_like_one_hot\",\n");
    json.push_str(&format!("  \"rows\": {rows},\n"));
    json.push_str(&format!("  \"dim\": {dim},\n"));
    json.push_str(&format!("  \"density\": {density},\n"));
    json.push_str(&format!("  \"total_nnz\": {nnz},\n"));
    json.push_str(&format!("  \"passes\": {passes},\n"));
    json.push_str("  \"batch_size\": 1,\n");
    json.push_str(&format!("  \"repeats\": {repeats},\n"));
    json.push_str(&format!("  \"hardware_threads\": {hardware},\n"));
    let emit = |json: &mut String, name: &str, cell: &Cell, last: bool| {
        json.push_str(&format!(
            "  \"{name}\": {{\"densify_seconds_per_epoch\": {:.6}, \
             \"sparse_seconds_per_epoch\": {:.6}, \"speedup\": {:.4}, \
             \"max_coord_diff\": {:.3e}}}{}\n",
            cell.densify,
            cell.sparse,
            cell.speedup(),
            cell.max_diff,
            if last { "" } else { "," }
        ));
    };
    emit(&mut json, "noiseless", &noiseless, false);
    json.push_str("  \"private_noise_same_rng_stream\": true,\n");
    json.push_str("  \"private_epsilon\": 1.0,\n");
    emit(&mut json, "private", &private, false);
    json.push_str(&format!("  \"parallel_workers\": {workers},\n"));
    emit(&mut json, "parallel", &parallel, true);
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    eprintln!("wrote {out_path}");
}

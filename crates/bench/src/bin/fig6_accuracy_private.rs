//! Figure 6 — test accuracy with the private tuning Algorithm 3.
//!
//! Same grid as Figure 3, but hyper-parameters are selected by the
//! exponential mechanism over held-out error counts, with the paper's grid:
//! k ∈ {5, 10} and (strongly convex tests only) λ ∈ {1e-4, 1e-3, 1e-2},
//! b = 50 throughout.
//!
//! Output: TSV rows `dataset, scenario, eps, algorithm, accuracy`.

use bolton::api::{AlgorithmKind, TrainPlan};
use bolton::multiclass::MulticlassModel;
use bolton::tuning::{grid, private_tune_models, Candidate};
use bolton::{metrics, InMemoryDataset, TrainSet};
use bolton_bench::{
    budget_for, header, multiclass_cell, multiclass_errors, row, Scenario, DEFAULT_BATCH,
    DEFAULT_LAMBDA, DEFAULT_PASSES, MAIN_DATASETS,
};
use bolton_data::{generate, Benchmark};
use bolton_rng::Rng;

fn candidates(scenario: Scenario) -> Vec<Candidate> {
    if scenario.strongly_convex() {
        grid(&[5, 10], &[DEFAULT_BATCH], &[1e-4, 1e-3, 1e-2])
    } else {
        grid(&[5, 10], &[DEFAULT_BATCH], &[0.0])
    }
}

/// One privately tuned accuracy cell (binary or multiclass).
fn tuned_accuracy(
    bench: &Benchmark,
    scenario: Scenario,
    alg: AlgorithmKind,
    eps: f64,
    seed: u64,
) -> f64 {
    let m = bench.train.len();
    let classes = bench.spec.classes();
    let cands = candidates(scenario);
    let budget = scenario.budget(eps, m);
    let mut rng = bolton_rng::seeded(seed);

    if classes == 2 {
        let mut train = |portion: &InMemoryDataset, c: &Candidate, r: &mut dyn Rng| {
            let plan = TrainPlan::new(scenario.logistic(c.lambda), alg, Some(budget))
                .with_passes(c.passes)
                .with_batch_size(c.batch_size);
            plan.train(portion, r).expect("candidate must train")
        };
        let tuned =
            bolton::tuning::private_tune(&bench.train, &cands, budget, &mut train, &mut rng)
                .expect("tuning must succeed");
        metrics::accuracy(&tuned.model, &bench.test)
    } else {
        let mut train = |portion: &InMemoryDataset, c: &Candidate, r: &mut dyn Rng| {
            multiclass_cell(
                portion,
                classes,
                scenario.logistic(c.lambda),
                alg,
                Some(budget),
                c.passes,
                c.batch_size,
                r,
            )
        };
        let errors =
            |model: &MulticlassModel, holdout: &InMemoryDataset| multiclass_errors(model, holdout);
        let tuned =
            private_tune_models(&bench.train, &cands, budget, &mut train, &errors, &mut rng)
                .expect("tuning must succeed");
        tuned.model.accuracy(&bench.test)
    }
}

fn main() {
    header(&["dataset", "scenario", "eps", "algorithm", "accuracy"]);
    let trials = bolton_bench::default_trials();
    for spec in MAIN_DATASETS {
        let bench = generate(spec, 0xF166);
        let m = bench.train.len();
        for scenario in Scenario::ALL {
            for &eps in spec.epsilon_grid() {
                for &alg in scenario.algorithms() {
                    let acc = if alg == AlgorithmKind::Noiseless {
                        // The noiseless ceiling needs no private tuning.
                        bolton_bench::mean_accuracy(
                            &bench,
                            scenario.logistic(DEFAULT_LAMBDA),
                            alg,
                            budget_for(scenario, alg, eps, m),
                            DEFAULT_PASSES,
                            DEFAULT_BATCH,
                            2000,
                        )
                    } else {
                        let mut total = 0.0;
                        for t in 0..trials {
                            total += tuned_accuracy(&bench, scenario, alg, eps, 2000 + t);
                        }
                        total / trials as f64
                    };
                    row(&[
                        spec.name().to_string(),
                        scenario.label().to_string(),
                        format!("{eps}"),
                        alg.label().to_string(),
                        format!("{acc:.4}"),
                    ]);
                }
            }
        }
    }
}

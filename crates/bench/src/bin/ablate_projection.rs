//! Ablation: random-projection dimension sweep for the MNIST-like
//! benchmark — the accuracy/noise trade-off behind the paper's 784 → 50
//! choice. Lower d' means less ε-DP noise (∝ d·ln d) but more structural
//! distortion.
//!
//! Output: TSV rows `proj_dim, algorithm, eps, accuracy`.

use bolton::api::{AlgorithmKind, LossKind};
use bolton::Budget;
use bolton_bench::{header, multiclass_cell, row};
use bolton_data::generator::gaussian_mixture;
use bolton_data::projection::project_dataset;
use bolton_linalg::RandomProjection;
use bolton_sgd::TrainSet;

fn main() {
    header(&["proj_dim", "algorithm", "eps", "accuracy"]);
    let mut rng = bolton_rng::seeded(0xAB9);
    let total_rows = 14_000;
    let raw = gaussian_mixture(&mut rng, total_rows, 784, 10, 0.75);
    let train_idx: Vec<usize> = (0..12_000).collect();
    let test_idx: Vec<usize> = (12_000..total_rows).collect();
    let loss = LossKind::Logistic { lambda: 1e-2 };
    let trials = bolton_bench::default_trials();

    for proj_dim in [10usize, 25, 50, 100, 200] {
        let projection = RandomProjection::gaussian(&mut rng, 784, proj_dim);
        let projected = project_dataset(&raw, &projection);
        let train = projected.subset(&train_idx);
        let test = projected.subset(&test_idx);
        for (alg, budget) in [
            (AlgorithmKind::Noiseless, None),
            (AlgorithmKind::BoltOn, Some(Budget::pure(1.0).expect("budget"))),
        ] {
            let mut total = 0.0;
            for t in 0..trials {
                let model = multiclass_cell(
                    &train,
                    10,
                    loss,
                    alg,
                    budget,
                    5,
                    50,
                    &mut bolton_rng::seeded(0xABA + t),
                );
                total += model.accuracy(&test);
            }
            row(&[
                proj_dim.to_string(),
                alg.label().into(),
                budget.map_or("-".into(), |b| format!("{}", b.eps())),
                format!("{:.4}", total / trials as f64),
            ]);
        }
        let _ = train.len();
    }
}

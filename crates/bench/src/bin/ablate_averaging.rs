//! Ablation: model averaging (Lemma 10) — final iterate vs uniform average
//! vs last-log-T average, under the 1-pass convex setting the convergence
//! theorems analyze (they bound the risk of the *averaged* iterate).
//!
//! Output: TSV rows `averaging, eps, accuracy` (+ a noiseless row per mode).

use bolton::output_perturbation::{train_private, BoltOnConfig};
use bolton::{metrics, Budget};
use bolton_bench::{header, row};
use bolton_data::{generate_scaled, DatasetSpec};
use bolton_sgd::engine::Averaging;
use bolton_sgd::loss::Logistic;

fn main() {
    header(&["averaging", "eps", "accuracy"]);
    let bench = generate_scaled(DatasetSpec::Protein, 0xAB4, 0.5);
    let loss = Logistic::plain();
    let trials = bolton_bench::default_trials();
    for (name, mode) in [
        ("final-iterate", Averaging::FinalIterate),
        ("uniform", Averaging::Uniform),
        ("last-log", Averaging::LastLog),
    ] {
        for eps in [0.02, 0.1, 0.5] {
            let mut total = 0.0;
            for t in 0..trials {
                let config = BoltOnConfig::new(Budget::pure(eps).expect("budget"))
                    .with_passes(1)
                    .with_batch_size(10)
                    .with_averaging(mode);
                let out =
                    train_private(&bench.train, &loss, &config, &mut bolton_rng::seeded(0xAB5 + t))
                        .expect("train");
                total += metrics::accuracy(&out.model, &bench.test);
            }
            row(&[name.into(), format!("{eps}"), format!("{:.4}", total / trials as f64)]);
        }
    }
}

//! An interactive private-analytics shell: the Bismarck SQL surface plus
//! `TRAIN` and `EVAL` statements wired to the private training algorithms —
//! the "in-RDBMS private ML" experience the paper argues for, end to end.
//!
//! ```text
//! $ cargo run --release -p bolton-bench --bin bolton_shell
//! bolton> CREATE TABLE t (DIM 10) DISK
//! bolton> SYNTH t ROWS 20000 SEED 7 NOISE 0.05
//! bolton> TRAIN m ON t ALGO boltOn EPS 0.1 LAMBDA 0.01 PASSES 10 BATCH 50
//! trained model 'm': train accuracy 0.9472
//! bolton> EVAL m ON t
//! accuracy 0.9472, AUC 0.9866
//! bolton> \q
//! ```
//!
//! `ALGO` ∈ {noiseless, bolton, scs13, bst14, objpert}; `DELTA` switches the
//! DP flavor ((ε, δ) instead of pure ε).

use bolton::api::{AlgorithmKind, LossKind, TrainPlan};
use bolton::{metrics, Budget};
use bolton_bismarck::sql::{run as run_sql, QueryResult};
use bolton_bismarck::Catalog;
use std::collections::BTreeMap;
use std::io::{BufRead, Write};

struct Shell {
    catalog: Catalog,
    models: BTreeMap<String, Vec<f64>>,
    seed: u64,
}

fn parse_algo(token: &str) -> Option<AlgorithmKind> {
    match token.to_ascii_lowercase().as_str() {
        "noiseless" => Some(AlgorithmKind::Noiseless),
        "bolton" | "ours" => Some(AlgorithmKind::BoltOn),
        "scs13" => Some(AlgorithmKind::Scs13),
        "bst14" => Some(AlgorithmKind::Bst14),
        "objpert" => Some(AlgorithmKind::ObjectivePerturbation),
        _ => None,
    }
}

impl Shell {
    fn new() -> Self {
        Self { catalog: Catalog::new(), models: BTreeMap::new(), seed: 42 }
    }

    /// `TRAIN model ON table ALGO a [EPS e] [DELTA d] [LAMBDA l] [PASSES k]
    /// [BATCH b] [SEED s]`
    fn train(&mut self, tokens: &[&str]) -> Result<String, String> {
        let mut it = tokens.iter();
        let model_name = it.next().ok_or("TRAIN needs a model name")?.to_string();
        if !it.next().is_some_and(|t| t.eq_ignore_ascii_case("ON")) {
            return Err("expected ON <table>".into());
        }
        let table_name = it.next().ok_or("expected a table name")?.to_string();
        let mut algo = AlgorithmKind::BoltOn;
        let mut eps: Option<f64> = None;
        let mut delta: Option<f64> = None;
        let mut lambda = 0.0f64;
        let mut passes = 10usize;
        let mut batch = 50usize;
        let mut seed = self.seed;
        let mut rest: Vec<&str> = it.copied().collect();
        rest.reverse();
        while let Some(key) = rest.pop() {
            let value = rest.pop().ok_or_else(|| format!("{key} needs a value"))?;
            match key.to_ascii_uppercase().as_str() {
                "ALGO" => {
                    algo = parse_algo(value).ok_or_else(|| format!("unknown ALGO '{value}'"))?
                }
                "EPS" => eps = Some(value.parse().map_err(|e| format!("bad EPS: {e}"))?),
                "DELTA" => delta = Some(value.parse().map_err(|e| format!("bad DELTA: {e}"))?),
                "LAMBDA" => lambda = value.parse().map_err(|e| format!("bad LAMBDA: {e}"))?,
                "PASSES" => passes = value.parse().map_err(|e| format!("bad PASSES: {e}"))?,
                "BATCH" => batch = value.parse().map_err(|e| format!("bad BATCH: {e}"))?,
                "SEED" => seed = value.parse().map_err(|e| format!("bad SEED: {e}"))?,
                other => return Err(format!("unknown option '{other}'")),
            }
        }
        let budget = match (algo, eps) {
            (AlgorithmKind::Noiseless, _) => None,
            (_, Some(e)) => Some(match delta {
                Some(d) => Budget::approx(e, d).map_err(|err| err.to_string())?,
                None => Budget::pure(e).map_err(|err| err.to_string())?,
            }),
            (_, None) => return Err("private algorithms need EPS".into()),
        };
        let table = self.catalog.get(&table_name).map_err(|e| e.to_string())?;
        let plan = TrainPlan::new(LossKind::Logistic { lambda }, algo, budget)
            .with_passes(passes)
            .with_batch_size(batch);
        let model = plan.train(table, &mut bolton_rng::seeded(seed)).map_err(|e| e.to_string())?;
        let acc = metrics::accuracy(&model, table);
        self.models.insert(model_name.clone(), model);
        self.seed = self.seed.wrapping_add(1);
        Ok(format!("trained model '{model_name}': train accuracy {acc:.4}"))
    }

    /// `EVAL model ON table`
    fn eval(&mut self, tokens: &[&str]) -> Result<String, String> {
        let [model_name, on, table_name] = tokens else {
            return Err("usage: EVAL <model> ON <table>".into());
        };
        if !on.eq_ignore_ascii_case("ON") {
            return Err("usage: EVAL <model> ON <table>".into());
        }
        let model =
            self.models.get(*model_name).ok_or_else(|| format!("no model named '{model_name}'"))?;
        let table = self.catalog.get(table_name).map_err(|e| e.to_string())?;
        let acc = metrics::accuracy(model, table);
        let auc = metrics::auc(model, table);
        Ok(format!("accuracy {acc:.4}, AUC {auc:.4}"))
    }

    fn dispatch(&mut self, line: &str) -> Result<String, String> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.first().map(|t| t.to_ascii_uppercase()) {
            Some(head) if head == "TRAIN" => self.train(&tokens[1..]),
            Some(head) if head == "EVAL" => self.eval(&tokens[1..]),
            Some(head) if head == "MODELS" => Ok(if self.models.is_empty() {
                "(no models)".to_string()
            } else {
                self.models.keys().cloned().collect::<Vec<_>>().join("\n")
            }),
            _ => match run_sql(&mut self.catalog, line) {
                Ok(QueryResult::Ok) => Ok("ok".into()),
                Ok(QueryResult::Count(n)) => Ok(n.to_string()),
                Ok(QueryResult::Scalar(Some(v))) => Ok(v.to_string()),
                Ok(QueryResult::Scalar(None)) => Ok("NULL".into()),
                Ok(QueryResult::Names(names)) => {
                    Ok(if names.is_empty() { "(no tables)".into() } else { names.join("\n") })
                }
                Ok(QueryResult::Histogram(bins)) => Ok(bins
                    .iter()
                    .map(|(label, count)| format!("{label}\t{count}"))
                    .collect::<Vec<_>>()
                    .join("\n")),
                Ok(QueryResult::Stats(columns)) => Ok(columns
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        let name = if i + 1 == columns.len() {
                            "label".to_string()
                        } else {
                            format!("f{i}")
                        };
                        format!(
                            "{name}\tmin {:.4}\tmax {:.4}\tmean {:.4}\tstd {:.4}",
                            c.min, c.max, c.mean, c.std_dev
                        )
                    })
                    .collect::<Vec<_>>()
                    .join("\n")),
                // Serving results never come back from the catalog executor
                // (this shell handles TRAIN/EVAL itself, above).
                Ok(
                    QueryResult::Trained { .. }
                    | QueryResult::Scores { .. }
                    | QueryResult::ModelVersioned { .. }
                    | QueryResult::Models(_)
                    | QueryResult::Checkpointed { .. },
                ) => Ok("ok".into()),
                Err(e) => Err(e.to_string()),
            },
        }
    }
}

fn main() {
    let mut shell = Shell::new();
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    println!("bolton private-analytics shell — SQL + TRAIN/EVAL/MODELS; \\q quits");
    loop {
        print!("bolton> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed == "\\q" || trimmed.eq_ignore_ascii_case("quit") {
            break;
        }
        match shell.dispatch(trimmed) {
            Ok(msg) => println!("{msg}"),
            Err(msg) => println!("error: {msg}"),
        }
    }
}

//! Figure 2b (larger-than-memory) — out-of-core private training through
//! the chunked row store.
//!
//! The paper's Figure 2b runs bolt-on private SGD against a dataset that
//! does not fit in memory. This bin reproduces the *data path*: the
//! workload is streamed to a chunked on-disk [`StoredDataset`] and trained
//! with a chunk-cache byte budget (`BOLTON_MEM_BUDGET` semantics, set
//! explicitly here) far below the dataset size, under the two-level
//! "shuffle chunks, shuffle within chunk" order
//! ([`SamplingScheme::chunked`]) so every pass pins each chunk exactly
//! once.
//!
//! Asserted invariants (the acceptance criteria):
//! * the out-of-core model is **bit-identical** to the in-memory model at
//!   the same seed and sampling scheme — noiseless, parallel, and private
//!   (same Δ₂, same noise draw);
//! * peak resident chunk bytes (from [`StoredDataset::cache_stats`]) never
//!   exceed the budget, and the budget is below 25% of the dataset size;
//! * the cache actually evicts (the run is genuinely out-of-core).
//!
//! Prints TSV to stdout and writes `BENCH_out_of_core.json` (override with
//! `BOLTON_BENCH_OUT`).
//!
//! Knobs: `BOLTON_OOC_ROWS` (default 6000), `BOLTON_OOC_DIM` (default 64),
//! `BOLTON_OOC_CHUNK_ROWS` (default 256), `BOLTON_OOC_PASSES` (default 2),
//! `BOLTON_OOC_REPEATS` (default 3), `BOLTON_OOC_WORKERS` (default 2),
//! `BOLTON_OOC_BUDGET_FRACTION` (default 0.2).

use bolton::output_perturbation::{train_private, BoltOnConfig};
use bolton::Budget;
use bolton_bench::{header, row, time_it};
use bolton_data::row_store::{write_dense_dataset, StoredDataset};
use bolton_sgd::{
    run_parallel_psgd, run_psgd, Logistic, SamplingScheme, SgdConfig, StepSize, TrainSet,
};
use std::time::Duration;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

fn median_secs(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<Duration> = (0..repeats).map(|_| time_it(&mut f).1).collect();
    samples.sort();
    samples[samples.len() / 2].as_secs_f64()
}

fn main() {
    let rows = env_usize("BOLTON_OOC_ROWS", 6000);
    let dim = env_usize("BOLTON_OOC_DIM", 64);
    let chunk_rows = env_usize("BOLTON_OOC_CHUNK_ROWS", 256);
    let passes = env_usize("BOLTON_OOC_PASSES", 2);
    let repeats = env_usize("BOLTON_OOC_REPEATS", 3);
    let workers = env_usize("BOLTON_OOC_WORKERS", 2);
    let budget_fraction = env_f64("BOLTON_OOC_BUDGET_FRACTION", 0.2);
    assert!(
        budget_fraction > 0.0 && budget_fraction < 0.25,
        "budget fraction must stay below the 25% acceptance bound"
    );

    // The in-memory reference workload, streamed once to the store file.
    let data =
        bolton_data::generator::linear_binary(&mut bolton_rng::seeded(0x0C2B), rows, dim, 0.05);
    let store_path = std::env::temp_dir().join(format!("bolton-fig2b-{}.rws", std::process::id()));
    write_dense_dataset(&data, &store_path, chunk_rows).expect("write row store");
    let file_bytes = std::fs::metadata(&store_path).expect("store metadata").len() as usize;

    let dataset_bytes = rows * (dim + 1) * 8;
    let chunk_bytes = chunk_rows * (dim + 1) * 8;
    let budget = (budget_fraction * dataset_bytes as f64) as usize;
    assert!(
        chunk_bytes <= budget,
        "one chunk must fit the budget (chunk {chunk_bytes} B, budget {budget} B)"
    );

    let stored = StoredDataset::open_with_budget(&store_path, budget).expect("open row store");
    assert_eq!(TrainSet::len(&stored), rows);

    let loss = Logistic::plain();
    let config = SgdConfig::new(StepSize::Constant(0.5))
        .with_passes(passes)
        .with_sampling(SamplingScheme::chunked(chunk_rows));
    let epochs = passes as f64;

    header(&["path", "mode", "seconds_per_epoch", "slowdown_vs_memory", "bit_identical"]);

    // Noiseless sequential: the acceptance bit-identity check, then timing.
    let mem_model = run_psgd(&data, &loss, &config, &mut bolton_rng::seeded(41)).model;
    stored.reset_cache_stats();
    let disk_model = run_psgd(&stored, &loss, &config, &mut bolton_rng::seeded(41)).model;
    assert_eq!(mem_model, disk_model, "out-of-core model must be bit-identical to in-memory");
    let noiseless_stats = stored.cache_stats();
    assert!(
        noiseless_stats.peak_resident_bytes <= budget,
        "resident chunk bytes exceeded the budget: {noiseless_stats:?}"
    );
    assert!(
        noiseless_stats.evictions > 0,
        "budget must force evictions (run was not out-of-core): {noiseless_stats:?}"
    );
    if stored.mmap_backed() {
        assert_eq!(
            noiseless_stats.copied_hits, 0,
            "a mapped dense store must serve borrowed views only: {noiseless_stats:?}"
        );
        assert!(
            noiseless_stats.borrowed_mmap_hits > 0,
            "mapped store served no borrowed views: {noiseless_stats:?}"
        );
    }

    let mem_secs = median_secs(repeats, || {
        let out = run_psgd(&data, &loss, &config, &mut bolton_rng::seeded(42));
        std::hint::black_box(out.model.len());
    }) / epochs;
    let disk_secs = median_secs(repeats, || {
        let out = run_psgd(&stored, &loss, &config, &mut bolton_rng::seeded(42));
        std::hint::black_box(out.model.len());
    }) / epochs;
    row(&[
        "memory".into(),
        "noiseless".into(),
        format!("{mem_secs:.6}"),
        "1.00".into(),
        "-".into(),
    ]);
    row(&[
        "out_of_core".into(),
        "noiseless".into(),
        format!("{disk_secs:.6}"),
        format!("{:.2}", disk_secs / mem_secs),
        "true".into(),
    ]);

    // Private (ε = 1 bolt-on): identical Δ₂ and identical noise draw ⇒ the
    // released model from disk is bit-for-bit the in-memory release.
    let bolton_config = BoltOnConfig::new(Budget::pure(1.0).expect("valid eps"))
        .with_passes(passes)
        .with_sampling(SamplingScheme::chunked(chunk_rows));
    let mem_priv = train_private(&data, &loss, &bolton_config, &mut bolton_rng::seeded(43))
        .expect("in-memory private");
    let disk_priv = train_private(&stored, &loss, &bolton_config, &mut bolton_rng::seeded(43))
        .expect("out-of-core private");
    assert_eq!(mem_priv.sensitivity, disk_priv.sensitivity, "calibration must not see the layout");
    assert_eq!(mem_priv.model, disk_priv.model, "private release must be bit-identical");
    let mem_priv_secs = median_secs(repeats, || {
        let out = train_private(&data, &loss, &bolton_config, &mut bolton_rng::seeded(44));
        std::hint::black_box(out.expect("memory").model.len());
    }) / epochs;
    let disk_priv_secs = median_secs(repeats, || {
        let out = train_private(&stored, &loss, &bolton_config, &mut bolton_rng::seeded(44));
        std::hint::black_box(out.expect("disk").model.len());
    }) / epochs;
    row(&[
        "memory".into(),
        "private_eps1".into(),
        format!("{mem_priv_secs:.6}"),
        "1.00".into(),
        "-".into(),
    ]);
    row(&[
        "out_of_core".into(),
        "private_eps1".into(),
        format!("{disk_priv_secs:.6}"),
        format!("{:.2}", disk_priv_secs / mem_priv_secs),
        "true".into(),
    ]);

    // Pool-parallel parameter mixing: shards are chunk ranges, models stay
    // bit-identical to in-memory.
    let mem_par =
        run_parallel_psgd(&data, &loss, &config, workers, &mut bolton_rng::seeded(45)).model;
    let disk_par =
        run_parallel_psgd(&stored, &loss, &config, workers, &mut bolton_rng::seeded(45)).model;
    assert_eq!(mem_par, disk_par, "parallel out-of-core model must be bit-identical");
    let mem_par_secs = median_secs(repeats, || {
        let out = run_parallel_psgd(&data, &loss, &config, workers, &mut bolton_rng::seeded(46));
        std::hint::black_box(out.model.len());
    }) / epochs;
    let disk_par_secs = median_secs(repeats, || {
        let out = run_parallel_psgd(&stored, &loss, &config, workers, &mut bolton_rng::seeded(46));
        std::hint::black_box(out.model.len());
    }) / epochs;
    row(&[
        format!("memory_par{workers}"),
        "noiseless".into(),
        format!("{mem_par_secs:.6}"),
        "1.00".into(),
        "-".into(),
    ]);
    row(&[
        format!("out_of_core_par{workers}"),
        "noiseless".into(),
        format!("{disk_par_secs:.6}"),
        format!("{:.2}", disk_par_secs / mem_par_secs),
        "true".into(),
    ]);

    let final_stats = stored.cache_stats();
    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());

    let out_path =
        std::env::var("BOLTON_BENCH_OUT").unwrap_or_else(|_| "BENCH_out_of_core.json".into());
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"fig2b_out_of_core\",\n");
    json.push_str("  \"workload\": \"linear_binary_dense_row_store\",\n");
    json.push_str(&format!("  \"rows\": {rows},\n"));
    json.push_str(&format!("  \"dim\": {dim},\n"));
    json.push_str(&format!("  \"chunk_rows\": {chunk_rows},\n"));
    json.push_str(&format!("  \"passes\": {passes},\n"));
    json.push_str(&format!("  \"repeats\": {repeats},\n"));
    json.push_str(&format!("  \"hardware_threads\": {hardware},\n"));
    json.push_str(&format!("  \"dataset_bytes\": {dataset_bytes},\n"));
    json.push_str(&format!("  \"store_file_bytes\": {file_bytes},\n"));
    json.push_str(&format!("  \"mem_budget_bytes\": {budget},\n"));
    json.push_str(&format!(
        "  \"budget_fraction_of_dataset\": {:.4},\n",
        budget as f64 / dataset_bytes as f64
    ));
    json.push_str(&format!("  \"mmap_backed\": {},\n", stored.mmap_backed()));
    json.push_str(&format!(
        "  \"noiseless_scan\": {{\"cache_hits\": {}, \"cache_misses\": {}, \"evictions\": {}, \
         \"peak_resident_bytes\": {}, \"borrowed_mmap_hits\": {}, \"copied_hits\": {}}},\n",
        noiseless_stats.hits,
        noiseless_stats.misses,
        noiseless_stats.evictions,
        noiseless_stats.peak_resident_bytes,
        noiseless_stats.borrowed_mmap_hits,
        noiseless_stats.copied_hits
    ));
    json.push_str(&format!(
        "  \"final_cache\": {{\"cache_hits\": {}, \"cache_misses\": {}, \"evictions\": {}, \
         \"peak_resident_bytes\": {}, \"borrowed_mmap_hits\": {}, \"copied_hits\": {}}},\n",
        final_stats.hits,
        final_stats.misses,
        final_stats.evictions,
        final_stats.peak_resident_bytes,
        final_stats.borrowed_mmap_hits,
        final_stats.copied_hits
    ));
    json.push_str("  \"bit_identical_to_memory\": {\"noiseless\": true, \"private_eps1\": true, \"parallel\": true},\n");
    json.push_str(&format!(
        "  \"noiseless\": {{\"memory_seconds_per_epoch\": {mem_secs:.6}, \
         \"out_of_core_seconds_per_epoch\": {disk_secs:.6}, \"slowdown\": {:.4}}},\n",
        disk_secs / mem_secs
    ));
    json.push_str(&format!(
        "  \"private_eps1\": {{\"memory_seconds_per_epoch\": {mem_priv_secs:.6}, \
         \"out_of_core_seconds_per_epoch\": {disk_priv_secs:.6}, \"slowdown\": {:.4}}},\n",
        disk_priv_secs / mem_priv_secs
    ));
    json.push_str(&format!("  \"parallel_workers\": {workers},\n"));
    json.push_str(&format!(
        "  \"parallel\": {{\"memory_seconds_per_epoch\": {mem_par_secs:.6}, \
         \"out_of_core_seconds_per_epoch\": {disk_par_secs:.6}, \"slowdown\": {:.4}}}\n",
        disk_par_secs / mem_par_secs
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    eprintln!("wrote {out_path}");

    std::fs::remove_file(&store_path).expect("remove temp store");
}

//! Figure 3 — test accuracy with hyper-parameters tuned on public data.
//!
//! Rows: MNIST-like, Protein-like, Covertype-like. Columns: the four test
//! scenarios of Section 4.3. Each series sweeps ε over the dataset's grid
//! for Noiseless / Ours / SCS13 (+ BST14 in the (ε, δ) tests), with the
//! paper's fixed public-tuned hyper-parameters: k = 10, b = 50, λ = 1e-4
//! ("Each point is the test accuracy of the model trained with 10 passes
//! and λ = 0.0001, where applicable").
//!
//! Output: TSV rows `dataset, scenario, eps, algorithm, accuracy`.

use bolton_bench::{
    budget_for, header, mean_accuracy, row, Scenario, DEFAULT_BATCH, DEFAULT_LAMBDA,
    DEFAULT_PASSES, MAIN_DATASETS,
};
use bolton_data::generate;
use bolton_sgd::TrainSet;

fn main() {
    header(&["dataset", "scenario", "eps", "algorithm", "accuracy"]);
    for spec in MAIN_DATASETS {
        let bench = generate(spec, 0xF163);
        let m = bench.train.len();
        for scenario in Scenario::ALL {
            let loss = scenario.logistic(DEFAULT_LAMBDA);
            for &eps in spec.epsilon_grid() {
                for &alg in scenario.algorithms() {
                    let budget = budget_for(scenario, alg, eps, m);
                    let acc = mean_accuracy(
                        &bench,
                        loss,
                        alg,
                        budget,
                        DEFAULT_PASSES,
                        DEFAULT_BATCH,
                        1000,
                    );
                    row(&[
                        spec.name().to_string(),
                        scenario.label().to_string(),
                        format!("{eps}"),
                        alg.label().to_string(),
                        format!("{acc:.4}"),
                    ]);
                }
            }
        }
    }
}

//! Ablation: the convex step-size schedules of Section 3.2.1 — constant
//! (Corollary 1), decreasing (Corollary 2), square-root (Corollary 3) —
//! comparing their sensitivity bounds and the resulting private accuracy
//! at equal ε. The paper presents the corollaries analytically; this
//! regenerates the comparison empirically.
//!
//! Output: TSV rows `schedule, k, sensitivity, eps, accuracy`.

use bolton::sensitivity;
use bolton::{metrics, Budget, TrainSet};
use bolton_bench::{header, row};
use bolton_data::{generate_scaled, DatasetSpec};
use bolton_privacy::mechanisms::NoiseMechanism;
use bolton_sgd::engine::{run_psgd, SgdConfig};
use bolton_sgd::loss::{Logistic, Loss};
use bolton_sgd::schedule::StepSize;

fn main() {
    header(&["schedule", "k", "sensitivity", "eps", "accuracy"]);
    let bench = generate_scaled(DatasetSpec::Protein, 0xABE, 0.3);
    let m = bench.train.len();
    let loss = Logistic::plain();
    let b = 50usize;
    let c = 0.5;
    let trials = bolton_bench::default_trials();

    for k in [1usize, 5, 20] {
        let schedules: Vec<(&str, StepSize, f64)> = vec![
            (
                "constant-1/sqrt(m)",
                StepSize::InvSqrtM { m },
                sensitivity::convex_constant_step(
                    loss.lipschitz(),
                    1.0 / (m as f64).sqrt(),
                    k,
                    m,
                    b,
                ),
            ),
            (
                "decreasing-cor2",
                StepSize::Decreasing { beta: loss.smoothness(), m, c },
                sensitivity::convex_decreasing_step(
                    loss.lipschitz(),
                    loss.smoothness(),
                    m,
                    c,
                    k,
                    b,
                ),
            ),
            (
                "sqrt-cor3",
                StepSize::SqrtDecay { beta: loss.smoothness(), m, c },
                sensitivity::convex_sqrt_step(loss.lipschitz(), loss.smoothness(), m, c, k, b),
            ),
        ];
        for (name, step, delta2) in schedules {
            for eps in [0.05, 0.5] {
                let mut total = 0.0;
                for t in 0..trials {
                    let mut rng = bolton_rng::seeded(0xABF + t + k as u64);
                    let config = SgdConfig::new(step).with_passes(k).with_batch_size(b);
                    let mut out = run_psgd(&bench.train, &loss, &config, &mut rng);
                    NoiseMechanism::for_budget(
                        &Budget::pure(eps).expect("budget"),
                        bench.train.dim(),
                        delta2,
                    )
                    .expect("mechanism")
                    .perturb(&mut rng, &mut out.model);
                    total += metrics::accuracy(&out.model, &bench.test);
                }
                row(&[
                    name.into(),
                    k.to_string(),
                    format!("{delta2:.3e}"),
                    format!("{eps}"),
                    format!("{:.4}", total / trials as f64),
                ]);
            }
        }
    }
}

//! Figure 10 (Appendix D) — mini-batch size vs accuracy on MNIST-like,
//! strongly convex (ε, δ)-DP (Test 4), b ∈ {50, 100, 150, 200}, all four
//! algorithms.
//!
//! Output: TSV rows `batch, eps, algorithm, accuracy`.

use bolton_bench::{
    budget_for, header, mean_accuracy, row, Scenario, DEFAULT_LAMBDA, DEFAULT_PASSES,
};
use bolton_data::{generate, DatasetSpec};
use bolton_sgd::TrainSet;

fn main() {
    header(&["batch", "eps", "algorithm", "accuracy"]);
    let bench = generate(DatasetSpec::Mnist, 0xF16A);
    let m = bench.train.len();
    let scenario = Scenario::StronglyConvexApprox;
    for &b in &[50usize, 100, 150, 200] {
        for &eps in DatasetSpec::Mnist.epsilon_grid() {
            for &alg in scenario.algorithms() {
                let acc = mean_accuracy(
                    &bench,
                    scenario.logistic(DEFAULT_LAMBDA),
                    alg,
                    budget_for(scenario, alg, eps, m),
                    DEFAULT_PASSES,
                    b,
                    4000,
                );
                row(&[
                    b.to_string(),
                    format!("{eps}"),
                    alg.label().to_string(),
                    format!("{acc:.4}"),
                ]);
            }
        }
    }
}

//! Table 3 — the dataset inventory, with generated shape checks.
//!
//! Prints the paper's sizes next to the sizes generated at the current
//! scale, plus unit-norm and class-count sanity results.
//!
//! Output: TSV rows `name, task, paper_train, paper_test, dims, gen_train,
//! gen_test, max_feature_norm, classes_seen`.

use bolton::TrainSet;
use bolton_bench::{header, row};
use bolton_data::{generate, DatasetSpec};
use std::collections::BTreeSet;

fn main() {
    header(&[
        "name",
        "task",
        "paper_train",
        "paper_test",
        "dims",
        "gen_train",
        "gen_test",
        "max_feature_norm",
        "classes_seen",
    ]);
    for spec in DatasetSpec::ALL {
        let bench = generate(spec, 0x7AB3);
        let mut max_norm: f64 = 0.0;
        let mut classes: BTreeSet<i64> = BTreeSet::new();
        for i in 0..bench.train.len() {
            max_norm = max_norm.max(bolton_linalg::vector::norm(bench.train.features_of(i)));
            classes.insert(bench.train.label_of(i) as i64);
        }
        let (paper_train, paper_test) = spec.paper_sizes();
        let task = if spec.classes() == 2 {
            "binary".to_string()
        } else {
            format!("{} classes", spec.classes())
        };
        let dims = if spec.raw_dim() != spec.model_dim() {
            format!("{} ({})", spec.raw_dim(), spec.model_dim())
        } else {
            spec.raw_dim().to_string()
        };
        row(&[
            spec.name().to_string(),
            task,
            paper_train.to_string(),
            paper_test.to_string(),
            dims,
            bench.train.len().to_string(),
            bench.test.len().to_string(),
            format!("{max_norm:.4}"),
            classes.len().to_string(),
        ]);
    }
}

//! Figure 2 — scalability: per-epoch runtime vs dataset size for the four
//! algorithms inside Bismarck, (a) in memory and (b) larger than memory.
//!
//! Paper parameters: synthesizer data with d = 50 features, mini-batch
//! size 1, ε = 0.1, λ = 1e-4, strongly convex (ε, δ)-DP. The paper sweeps
//! to 50M (memory) / 1.2B (disk) examples on a 48-core Xeon; default sizes
//! here are laptop-scale (override with `BOLTON_FIG2_SIZES`, a
//! comma-separated list of row counts). The claims under test are *shape*:
//! all four scale linearly; SCS13/BST14 pay a per-example noise cost in
//! memory; I/O dominates (and equalizes everyone) on disk.
//!
//! Output: TSV rows `mode, rows, algorithm, seconds_per_epoch`.

use bolton_bench::{header, row, BisAlg};
use bolton_bismarck::{synthesize, Backing, SynthSpec};

fn sizes() -> Vec<usize> {
    if let Ok(spec) = std::env::var("BOLTON_FIG2_SIZES") {
        return spec.split(',').filter_map(|tok| tok.trim().parse().ok()).collect();
    }
    vec![10_000, 20_000, 40_000]
}

fn main() {
    header(&["mode", "rows", "algorithm", "seconds_per_epoch"]);
    let epochs = 1usize;
    for rows in sizes() {
        // (a) In memory: generous pool, memory heap.
        // (b) Disk: temp-file heap with a pool far smaller than the table
        //     (dim=50 ⇒ 20 rows/page), forcing eviction traffic.
        let pages_needed = rows / 20 + 1;
        for (mode, backing, pool) in [
            ("memory", Backing::Memory, pages_needed + 8),
            ("disk", Backing::TempFile, (pages_needed / 50).max(4)),
        ] {
            for alg in BisAlg::ALL {
                let mut rng = bolton_rng::seeded(0xF162 ^ rows as u64);
                let spec = SynthSpec::scalability(rows);
                let mut table = synthesize("scale", &spec, backing.clone(), pool, &mut rng)
                    .expect("synthesize");
                let (_, elapsed) =
                    bolton_bench::run_bismarck_sc(&mut table, alg, 1e-4, 0.1, epochs, 1, 99);
                row(&[
                    mode.to_string(),
                    rows.to_string(),
                    alg.label().to_string(),
                    format!("{:.4}", elapsed.as_secs_f64() / epochs as f64),
                ]);
            }
        }
    }
}

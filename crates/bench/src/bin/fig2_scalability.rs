//! Figure 2 — scalability: per-epoch runtime vs dataset size for the four
//! algorithms inside Bismarck, (a) in memory and (b) larger than memory.
//!
//! Paper parameters: synthesizer data with d = 50 features, mini-batch
//! size 1, ε = 0.1, λ = 1e-4, strongly convex (ε, δ)-DP. The paper sweeps
//! to 50M (memory) / 1.2B (disk) examples on a 48-core Xeon; default sizes
//! here are laptop-scale (override with `BOLTON_FIG2_SIZES`, a
//! comma-separated list of row counts). The claims under test are *shape*:
//! all four scale linearly; SCS13/BST14 pay a per-example noise cost in
//! memory; I/O dominates (and equalizes everyone) on disk.
//!
//! Output: TSV rows `mode, rows, algorithm, seconds_per_epoch`, then a
//! worker-sweep section (`workers, rows, seconds_per_epoch, speedup`)
//! through [`run_parallel_psgd`] — the paper's multi-core Figure 2 axis.
//! The sweep defaults to `1..=hardware_threads` (so a single-core box
//! honestly sweeps only 1) and is overridable with `BOLTON_FIG2_WORKERS`,
//! a comma-separated worker-count list. A JSON summary recording the
//! machine's true `hardware_threads` is written to
//! `BENCH_fig2_scalability.json` (override with `BOLTON_BENCH_OUT`).

use bolton_bench::{header, row, time_it, BisAlg};
use bolton_bismarck::{synthesize, Backing, SynthSpec};
use bolton_sgd::{run_parallel_psgd, Logistic, SgdConfig, StepSize};

fn sizes() -> Vec<usize> {
    if let Ok(spec) = std::env::var("BOLTON_FIG2_SIZES") {
        return spec.split(',').filter_map(|tok| tok.trim().parse().ok()).collect();
    }
    vec![10_000, 20_000, 40_000]
}

fn worker_sweep(hardware: usize) -> Vec<usize> {
    if let Ok(spec) = std::env::var("BOLTON_FIG2_WORKERS") {
        return spec.split(',').filter_map(|tok| tok.trim().parse().ok()).collect();
    }
    (1..=hardware).collect()
}

fn main() {
    header(&["mode", "rows", "algorithm", "seconds_per_epoch"]);
    let epochs = 1usize;
    for rows in sizes() {
        // (a) In memory: generous pool, memory heap.
        // (b) Disk: temp-file heap with a pool far smaller than the table
        //     (dim=50 ⇒ 20 rows/page), forcing eviction traffic.
        let pages_needed = rows / 20 + 1;
        for (mode, backing, pool) in [
            ("memory", Backing::Memory, pages_needed + 8),
            ("disk", Backing::TempFile, (pages_needed / 50).max(4)),
        ] {
            for alg in BisAlg::ALL {
                let mut rng = bolton_rng::seeded(0xF162 ^ rows as u64);
                let spec = SynthSpec::scalability(rows);
                let mut table = synthesize("scale", &spec, backing.clone(), pool, &mut rng)
                    .expect("synthesize");
                let (_, elapsed) =
                    bolton_bench::run_bismarck_sc(&mut table, alg, 1e-4, 0.1, epochs, 1, 99);
                row(&[
                    mode.to_string(),
                    rows.to_string(),
                    alg.label().to_string(),
                    format!("{:.4}", elapsed.as_secs_f64() / epochs as f64),
                ]);
            }
        }
    }

    // Worker sweep: the paper's multi-core axis via pool-parallel PSGD with
    // parameter mixing. `hardware_threads` is the machine's real capacity —
    // never inflated, so a 1-core runner reports a 1-point sweep.
    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sweep = worker_sweep(hardware);
    let sweep_rows = *sizes().last().expect("at least one size");
    let sweep_passes = 2usize;
    let data = bolton_data::generator::linear_binary(
        &mut bolton_rng::seeded(0xF162_50AA),
        sweep_rows,
        50,
        0.05,
    );
    let loss = Logistic::regularized(1e-4, 1.0);
    let config = SgdConfig::new(StepSize::Constant(0.5)).with_passes(sweep_passes);

    header(&["workers", "rows", "seconds_per_epoch", "speedup_vs_1"]);
    let mut cells: Vec<(usize, f64)> = Vec::new();
    let mut base_secs = f64::NAN;
    for &workers in &sweep {
        let (_, elapsed) = time_it(|| {
            let out =
                run_parallel_psgd(&data, &loss, &config, workers, &mut bolton_rng::seeded(0xF162));
            std::hint::black_box(out.model.len());
        });
        let secs = elapsed.as_secs_f64() / sweep_passes as f64;
        if base_secs.is_nan() {
            base_secs = secs;
        }
        cells.push((workers, secs));
        row(&[
            workers.to_string(),
            sweep_rows.to_string(),
            format!("{secs:.4}"),
            format!("{:.2}", base_secs / secs),
        ]);
    }

    let out_path =
        std::env::var("BOLTON_BENCH_OUT").unwrap_or_else(|_| "BENCH_fig2_scalability.json".into());
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"fig2_scalability_worker_sweep\",\n");
    json.push_str(&format!("  \"hardware_threads\": {hardware},\n"));
    json.push_str(&format!("  \"rows\": {sweep_rows},\n"));
    json.push_str("  \"dim\": 50,\n");
    json.push_str(&format!("  \"passes\": {sweep_passes},\n"));
    json.push_str(&format!(
        "  \"worker_sweep\": [{}]\n",
        cells
            .iter()
            .map(|(w, s)| format!(
                "{{\"workers\": {w}, \"seconds_per_epoch\": {s:.6}, \"speedup_vs_1\": {:.4}}}",
                base_secs / s
            ))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    eprintln!("wrote {out_path}");
}

//! Ablation: ε-DP Laplace-ball vs (ε, δ)-DP Gaussian noise across model
//! dimension — the d·ln d vs √d story of Theorems 2/3 that motivates
//! random projection (Section 2).
//!
//! Output: TSV rows `dim, mechanism, expected_norm, empirical_mean_norm`.

use bolton_bench::{header, row};
use bolton_privacy::mechanisms::{GaussianMechanism, LaplaceBallMechanism};

fn main() {
    header(&["dim", "mechanism", "expected_norm", "empirical_mean_norm"]);
    let sensitivity = 0.01;
    let eps = 0.1;
    let delta = 1e-8;
    let trials = 2000;
    for dim in [5usize, 10, 25, 50, 100, 200, 400, 784] {
        let mut rng = bolton_rng::seeded(0xAB1 + dim as u64);
        let laplace = LaplaceBallMechanism::new(dim, sensitivity, eps).expect("mechanism");
        let mean_lap: f64 = (0..trials)
            .map(|_| bolton_linalg::vector::norm(&laplace.sample_noise(&mut rng)))
            .sum::<f64>()
            / trials as f64;
        row(&[
            dim.to_string(),
            "laplace-ball".into(),
            format!("{:.5}", laplace.expected_norm()),
            format!("{mean_lap:.5}"),
        ]);

        let gaussian = GaussianMechanism::new(sensitivity, eps, delta).expect("mechanism");
        let mean_gauss: f64 = (0..trials)
            .map(|_| bolton_linalg::vector::norm(&gaussian.sample_noise(&mut rng, dim)))
            .sum::<f64>()
            / trials as f64;
        row(&[
            dim.to_string(),
            "gaussian".into(),
            format!("{:.5}", gaussian.expected_norm(dim)),
            format!("{mean_gauss:.5}"),
        ]);
    }
}

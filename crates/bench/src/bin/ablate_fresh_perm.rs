//! Ablation: single permutation reused each pass vs a fresh permutation per
//! pass. The sensitivity analysis covers both (Section 3.2.3); accuracy is
//! expected to be comparable, with fresh permutations slightly better on
//! multi-pass runs (less order-coupling).
//!
//! Output: TSV rows `permutations, passes, eps, accuracy`.

use bolton::output_perturbation::{train_private, BoltOnConfig};
use bolton::{metrics, Budget};
use bolton_bench::{header, row};
use bolton_data::{generate_scaled, DatasetSpec};
use bolton_sgd::loss::Logistic;

fn main() {
    header(&["permutations", "passes", "eps", "accuracy"]);
    let bench = generate_scaled(DatasetSpec::Covtype, 0xAB6, 0.05);
    let lambda = 1e-3;
    let loss = Logistic::regularized(lambda, 1.0 / lambda);
    let trials = bolton_bench::default_trials();
    // The BoltOnConfig always reuses one permutation (matching the paper's
    // main algorithms); the fresh variant goes through the engine directly.
    for passes in [1usize, 5, 20] {
        for eps in [0.05, 0.4] {
            // Reused permutation via the standard path.
            let mut total = 0.0;
            for t in 0..trials {
                let config = BoltOnConfig::new(Budget::pure(eps).expect("budget"))
                    .with_passes(passes)
                    .with_batch_size(50)
                    .with_projection(1.0 / lambda);
                let out =
                    train_private(&bench.train, &loss, &config, &mut bolton_rng::seeded(0xAB7 + t))
                        .expect("train");
                total += metrics::accuracy(&out.model, &bench.test);
            }
            row(&[
                "single".into(),
                passes.to_string(),
                format!("{eps}"),
                format!("{:.4}", total / trials as f64),
            ]);

            // Fresh permutations: same sensitivity (the analysis applies to
            // any fixed permutation sequence), noise added manually.
            let mut total = 0.0;
            for t in 0..trials {
                use bolton_privacy::mechanisms::NoiseMechanism;
                use bolton_sgd::engine::{run_psgd, SamplingScheme, SgdConfig};
                let mut rng = bolton_rng::seeded(0xAB8 + t);
                let config = BoltOnConfig::new(Budget::pure(eps).expect("budget"))
                    .with_passes(passes)
                    .with_batch_size(50)
                    .with_projection(1.0 / lambda);
                let delta2 = bolton::output_perturbation::calibrate_sensitivity(
                    &loss,
                    &config,
                    bolton::TrainSet::len(&bench.train),
                )
                .expect("sensitivity");
                let sgd = SgdConfig::new(bolton::output_perturbation::paper_step_size(
                    &loss,
                    bolton::TrainSet::len(&bench.train),
                ))
                .with_passes(passes)
                .with_batch_size(50)
                .with_projection(1.0 / lambda)
                .with_sampling(SamplingScheme::Permutation { fresh_each_pass: true });
                let mut out = run_psgd(&bench.train, &loss, &sgd, &mut rng);
                NoiseMechanism::for_budget(
                    &Budget::pure(eps).expect("budget"),
                    bolton::TrainSet::dim(&bench.train),
                    delta2,
                )
                .expect("mechanism")
                .perturb(&mut rng, &mut out.model);
                total += metrics::accuracy(&out.model, &bench.test);
            }
            row(&[
                "fresh".into(),
                passes.to_string(),
                format!("{eps}"),
                format!("{:.4}", total / trials as f64),
            ]);
        }
    }
}

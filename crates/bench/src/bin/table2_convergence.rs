//! Table 2 — convergence for (ε, δ)-DP at a constant number of passes:
//! ours O(√d/√m) (convex) / O(√d·log m/m) (strongly convex) vs BST14's
//! extra log factors.
//!
//! We measure the *excess empirical risk* `L_S(w̃) − L_S(w*)` (w* ≈ a long
//! noiseless run) for 1-pass training while doubling m, and report the
//! empirical decay exponent α in excess ≈ C·m^(−α). The paper's table
//! predicts α ≈ 0.5 for ours-convex and α ≈ 1 for ours-strongly-convex,
//! with BST14 matching up to log factors (so slightly smaller measured α).
//!
//! Output: TSV rows `setting, algorithm, m, excess_risk` followed by
//! fitted exponents.

use bolton::api::{AlgorithmKind, LossKind, TrainPlan};
use bolton::{metrics, Budget};
use bolton_bench::{header, row};
use bolton_data::generator::linear_binary;
use bolton_sgd::engine::{run_psgd, Averaging, SgdConfig};
use bolton_sgd::schedule::StepSize;

fn excess_risk(loss_kind: LossKind, alg: AlgorithmKind, m: usize, d: usize, trials: u64) -> f64 {
    let mut total = 0.0;
    for t in 0..trials {
        let mut rng = bolton_rng::seeded(0x7AB2 + t * 977 + m as u64);
        let data = linear_binary(&mut rng, m, d, 0.1);
        // Reference optimum: long noiseless run with averaging.
        let (loss, radius) = loss_kind.build();
        let ref_step = if loss.is_strongly_convex() {
            StepSize::StronglyConvex { beta: loss.smoothness(), gamma: loss.strong_convexity() }
        } else {
            StepSize::InvSqrtM { m }
        };
        let mut ref_config =
            SgdConfig::new(ref_step).with_passes(30).with_averaging(Averaging::Uniform);
        if let Some(r) = radius {
            ref_config = ref_config.with_projection(r);
        }
        let reference = run_psgd(&data, loss.as_ref(), &ref_config, &mut rng);
        let optimum = metrics::empirical_risk(loss.as_ref(), &reference.model, &data);

        let budget = Budget::approx(1.0, 1.0 / (m as f64 * m as f64)).expect("budget");
        let plan = TrainPlan::new(loss_kind, alg, Some(budget)).with_passes(1).with_batch_size(1);
        let model = plan.train(&data, &mut rng).expect("train");
        let risk = metrics::empirical_risk(loss.as_ref(), &model, &data);
        total += (risk - optimum).max(0.0);
    }
    total / trials as f64
}

/// Least-squares slope of log(excess) on log(m): excess ≈ C·m^(−α).
fn fitted_exponent(points: &[(usize, f64)]) -> f64 {
    let n = points.len() as f64;
    let xs: Vec<f64> = points.iter().map(|(m, _)| (*m as f64).ln()).collect();
    let ys: Vec<f64> = points.iter().map(|(_, e)| e.max(1e-12).ln()).collect();
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let var: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    -(cov / var)
}

fn main() {
    header(&["setting", "algorithm", "m", "excess_risk"]);
    let d = 10;
    let ms = [2_000usize, 4_000, 8_000, 16_000, 32_000];
    let trials = bolton_bench::default_trials();
    let mut exponents = Vec::new();
    for (setting, loss_kind) in [
        ("convex", LossKind::Logistic { lambda: 0.0 }),
        ("strongly-convex", LossKind::Logistic { lambda: 1e-3 }),
    ] {
        for alg in [AlgorithmKind::BoltOn, AlgorithmKind::Bst14] {
            let mut points = Vec::new();
            for &m in &ms {
                let excess = excess_risk(loss_kind, alg, m, d, trials);
                points.push((m, excess));
                row(&[
                    setting.to_string(),
                    alg.label().to_string(),
                    m.to_string(),
                    format!("{excess:.6}"),
                ]);
            }
            exponents.push((setting, alg.label(), fitted_exponent(&points)));
        }
    }
    println!();
    header(&["setting", "algorithm", "fitted_decay_exponent_alpha"]);
    for (setting, alg, alpha) in exponents {
        row(&[setting.to_string(), alg.to_string(), format!("{alpha:.3}")]);
    }
}

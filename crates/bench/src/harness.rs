//! Experiment-cell runners shared by every figure binary.

use crate::scenarios::Scenario;
use bolton::api::{AlgorithmKind, LossKind, TrainPlan};
use bolton::multiclass::{train_one_vs_all, MulticlassModel};
use bolton::{metrics, Budget, InMemoryDataset, TrainSet};
use bolton_data::Benchmark;
use bolton_rng::Rng;
use std::time::{Duration, Instant};

/// Prints a `#`-prefixed TSV header row.
pub fn header(cols: &[&str]) {
    println!("#{}", cols.join("\t"));
}

/// Prints one TSV data row.
pub fn row(fields: &[String]) {
    println!("{}", fields.join("\t"));
}

/// Times a closure.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Number of seeds each accuracy cell is averaged over (paper plots single
/// runs; we average a few seeds for stable, reproducible tables).
pub fn default_trials() -> u64 {
    std::env::var("BOLTON_TRIALS").ok().and_then(|v| v.parse().ok()).unwrap_or(3)
}

/// Trains one plan and returns test accuracy, handling the binary and
/// (for MNIST-like) the one-vs-all multiclass pipelines.
pub fn accuracy_cell(
    bench: &Benchmark,
    loss: LossKind,
    algorithm: AlgorithmKind,
    budget: Option<Budget>,
    passes: usize,
    batch: usize,
    seed: u64,
) -> f64 {
    let mut rng = bolton_rng::seeded(seed);
    let classes = bench.spec.classes();
    if classes == 2 {
        let plan =
            TrainPlan::new(loss, algorithm, budget).with_passes(passes).with_batch_size(batch);
        let model = plan.train(&bench.train, &mut rng).expect("cell must train");
        metrics::accuracy(&model, &bench.test)
    } else {
        let model = multiclass_cell(
            &bench.train,
            classes,
            loss,
            algorithm,
            budget,
            passes,
            batch,
            &mut rng,
        );
        model.accuracy(&bench.test)
    }
}

/// Trains a one-vs-all bundle, splitting the budget evenly across classes
/// (basic composition — the paper's MNIST treatment).
#[allow(clippy::too_many_arguments)]
pub fn multiclass_cell<D, R>(
    train: &D,
    classes: usize,
    loss: LossKind,
    algorithm: AlgorithmKind,
    budget: Option<Budget>,
    passes: usize,
    batch: usize,
    rng: &mut R,
) -> MulticlassModel
where
    D: TrainSet + ?Sized,
    R: Rng + ?Sized,
{
    match budget {
        Some(total) => train_one_vs_all(
            train,
            classes,
            total,
            |view, per_class, r| {
                let plan = TrainPlan::new(loss, algorithm, Some(per_class))
                    .with_passes(passes)
                    .with_batch_size(batch);
                plan.train(view, r)
            },
            rng,
        )
        .expect("multiclass training must succeed"),
        None => {
            // Noiseless: no budget to split; train each class directly.
            let mut models = Vec::with_capacity(classes);
            for class in 0..classes {
                let view = bolton::multiclass::OneVsRestView::new(train, class);
                let plan = TrainPlan::new(loss, algorithm, None)
                    .with_passes(passes)
                    .with_batch_size(batch);
                models.push(plan.train(&view, rng).expect("noiseless training must succeed"));
            }
            MulticlassModel { models }
        }
    }
}

/// Accuracy averaged over [`default_trials`] seeds.
///
/// Trials run as independent tasks on the persistent worker pool
/// ([`bolton_sgd::pool::global`]); each trial's seed is `base_seed + t` and
/// the sum is reduced in trial order, so the mean is bit-identical to the
/// old sequential loop regardless of pool size.
#[allow(clippy::too_many_arguments)]
pub fn mean_accuracy(
    bench: &Benchmark,
    loss: LossKind,
    algorithm: AlgorithmKind,
    budget: Option<Budget>,
    passes: usize,
    batch: usize,
    base_seed: u64,
) -> f64 {
    let trials = default_trials();
    let runner = bolton_sgd::pool::runner();
    let tasks: Vec<_> = (0..trials)
        .map(|t| {
            move || accuracy_cell(bench, loss, algorithm, budget, passes, batch, base_seed + t)
        })
        .collect();
    let accuracies = runner.run(tasks);
    accuracies.iter().sum::<f64>() / trials as f64
}

/// Multiclass error counter for the generic private tuner.
pub fn multiclass_errors(model: &MulticlassModel, holdout: &InMemoryDataset) -> usize {
    let mut errs = 0usize;
    holdout.scan(&mut |_, x, y| {
        if model.predict(x) != y as usize {
            errs += 1;
        }
    });
    errs
}

/// The scenario-appropriate budget, or `None` for the noiseless baseline.
pub fn budget_for(
    scenario: Scenario,
    algorithm: AlgorithmKind,
    eps: f64,
    m: usize,
) -> Option<Budget> {
    if algorithm == AlgorithmKind::Noiseless {
        None
    } else {
        Some(scenario.budget(eps, m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::Scenario;
    use bolton_data::{generate_scaled, DatasetSpec};

    #[test]
    fn binary_cell_runs() {
        let bench = generate_scaled(DatasetSpec::Protein, 42, 0.005);
        let acc = accuracy_cell(
            &bench,
            LossKind::Logistic { lambda: 0.0 },
            AlgorithmKind::Noiseless,
            None,
            2,
            10,
            1,
        );
        assert!(acc > 0.8, "protein noiseless {acc}");
    }

    #[test]
    fn multiclass_cell_runs() {
        let bench = generate_scaled(DatasetSpec::Mnist, 43, 0.003);
        let acc = accuracy_cell(
            &bench,
            LossKind::Logistic { lambda: 0.0 },
            AlgorithmKind::BoltOn,
            Some(Budget::pure(100.0).unwrap()),
            2,
            10,
            2,
        );
        assert!(acc > 0.5, "mnist near-noiseless {acc}");
    }

    #[test]
    fn budget_for_noiseless_is_none() {
        assert!(budget_for(Scenario::ConvexPure, AlgorithmKind::Noiseless, 0.1, 100).is_none());
        assert!(budget_for(Scenario::ConvexPure, AlgorithmKind::BoltOn, 0.1, 100).is_some());
    }
}

//! Shared harness for the figure/table-regenerating binaries.
//!
//! Every binary in `src/bin/` prints the same rows/series its paper
//! counterpart reports, using tab-separated columns with a `#`-prefixed
//! header so output pastes into a spreadsheet or gnuplot. Workloads default
//! to scaled-down sizes (see `bolton_data::datasets`); set
//! `BOLTON_PAPER_SCALE=1` to run the paper's full Table 3 sizes.

pub mod bismarck_support;
pub mod harness;
pub mod scenarios;

pub use bismarck_support::*;
pub use harness::*;
pub use scenarios::*;

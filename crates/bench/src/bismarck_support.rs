//! In-RDBMS experiment support: run each of the four algorithms through the
//! Bismarck epoch driver, mirroring the paper's integration (Figure 1) for
//! the runtime/scalability experiments (Figures 2 and 5).

use bolton::bst14::{calibrate, Bst14Config};
use bolton::output_perturbation::{calibrate_sensitivity, paper_step_size, BoltOnConfig};
use bolton::{Budget, InMemoryDataset, TrainSet};
use bolton_bismarck::driver::{train, DriverConfig, TrainedModel};
use bolton_bismarck::{Backing, Table};
use bolton_privacy::mechanisms::{LaplaceBallMechanism, NoiseMechanism};
use bolton_rng::dist::standard_normal;
use bolton_rng::Rng;
use bolton_sgd::engine::BatchPlan;
use bolton_sgd::loss::{Logistic, Loss};
use std::time::{Duration, Instant};

/// Loads an in-memory dataset into a Bismarck table.
pub fn table_from_dataset(
    data: &InMemoryDataset,
    name: &str,
    backing: Backing,
    pool_pages: usize,
) -> Table {
    let mut table = Table::create(name, data.dim(), backing, pool_pages).expect("table creation");
    for i in 0..data.len() {
        table.insert(data.features_of(i), data.label_of(i)).expect("insert row");
    }
    table.flush().expect("flush");
    table
}

/// Which algorithm to push through the driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BisAlg {
    /// Regular Bismarck (Figure 1 A).
    Noiseless,
    /// Output perturbation at the controller (Figure 1 B).
    Ours,
    /// Per-batch Laplace/Gaussian noise in the UDA (Figure 1 C).
    Scs13,
    /// Per-batch Gaussian noise with BST14's calibration (Figure 1 C).
    Bst14,
}

impl BisAlg {
    /// All four, in the paper's legend order.
    pub const ALL: [BisAlg; 4] = [BisAlg::Noiseless, BisAlg::Ours, BisAlg::Scs13, BisAlg::Bst14];

    /// Legend label.
    pub fn label(&self) -> &'static str {
        match self {
            BisAlg::Noiseless => "Noiseless",
            BisAlg::Ours => "Ours",
            BisAlg::Scs13 => "SCS13",
            BisAlg::Bst14 => "BST14",
        }
    }
}

/// Runs one training job inside Bismarck, returning the model and the
/// wall-clock time of the epoch loop (shuffle included, like the paper's
/// per-epoch runtime measurements).
///
/// Uses the strongly convex (ε, δ) setting of Figures 2/5: L2-regularized
/// logistic regression, `R = 1/λ`, Gaussian noise.
pub fn run_bismarck_sc(
    table: &mut Table,
    alg: BisAlg,
    lambda: f64,
    eps: f64,
    epochs: usize,
    batch: usize,
    seed: u64,
) -> (TrainedModel, Duration) {
    let m = table.row_count();
    let dim = TrainSet::dim(table);
    let delta = 1.0 / (m as f64 * m as f64);
    let budget = Budget::approx(eps, delta).expect("budget");
    let radius = 1.0 / lambda;
    let loss = Logistic::regularized(lambda, radius);
    let step = paper_step_size(&loss, m);
    let config = DriverConfig { step, ..DriverConfig::new(epochs, step) }
        .with_batch_size(batch)
        .with_projection(radius);
    let mut rng = bolton_rng::seeded(seed);
    let mut noise_rng = rng.fork_stream();

    let start = Instant::now();
    let out = match alg {
        BisAlg::Noiseless => train(table, &loss, &config, &mut rng, None, None).expect("train"),
        BisAlg::Ours => {
            let bolt = BoltOnConfig::new(budget)
                .with_passes(epochs)
                .with_batch_size(batch)
                .with_projection(radius);
            let delta2 = calibrate_sensitivity(&loss, &bolt, m).expect("sensitivity");
            let mechanism = NoiseMechanism::for_budget(&budget, dim, delta2).expect("mechanism");
            let mut output = |w: &mut [f64]| mechanism.perturb(&mut noise_rng, w);
            train(table, &loss, &config, &mut rng, None, Some(&mut output)).expect("train")
        }
        BisAlg::Scs13 => {
            let per_pass = budget.split_even(epochs);
            let grad_sens = 2.0 * loss.lipschitz() / batch as f64;
            let mech = bolton_privacy::mechanisms::GaussianMechanism::new(
                grad_sens,
                per_pass.eps(),
                per_pass.delta(),
            )
            .expect("mechanism");
            let mut hook = |_t: u64, g: &mut [f64]| mech.perturb(&mut noise_rng, g);
            train(table, &loss, &config, &mut rng, Some(&mut hook), None).expect("train")
        }
        BisAlg::Bst14 => {
            let bst = Bst14Config::new(budget, radius).with_passes(epochs).with_batch_size(batch);
            let cal = calibrate(&loss, &bst, m, dim).expect("calibration");
            let sigma = cal.sigma_sq.sqrt();
            let plan = BatchPlan::new(m, batch);
            let batches = plan.batches as u64;
            let mut hook = |t: u64, g: &mut [f64]| {
                let len = plan.size_of(((t - 1) % batches) as usize);
                bolton_linalg::vector::scale(len as f64, g);
                for v in g.iter_mut() {
                    *v += sigma * standard_normal(&mut noise_rng);
                }
            };
            train(table, &loss, &config, &mut rng, Some(&mut hook), None).expect("train")
        }
    };
    (out, start.elapsed())
}

/// ε-DP per-batch noise variant of SCS13 used by the pure-DP runtime cells.
pub fn scs13_pure_hook<'a, R: Rng>(
    loss: &dyn Loss,
    dim: usize,
    batch: usize,
    eps_per_pass: f64,
    noise_rng: &'a mut R,
) -> impl FnMut(u64, &mut [f64]) + 'a {
    let grad_sens = 2.0 * loss.lipschitz() / batch as f64;
    let mech = LaplaceBallMechanism::new(dim, grad_sens, eps_per_pass).expect("mechanism");
    move |_t, g: &mut [f64]| mech.perturb(noise_rng, g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolton_data::{generate_scaled, DatasetSpec};

    #[test]
    fn all_four_run_in_bismarck() {
        let bench = generate_scaled(DatasetSpec::Covtype, 51, 0.002);
        for alg in BisAlg::ALL {
            let mut table = table_from_dataset(&bench.train, "t", Backing::Memory, 256);
            let (out, elapsed) = run_bismarck_sc(&mut table, alg, 1e-4, 0.1, 2, 10, 52);
            assert_eq!(out.epochs_run, 2, "{}", alg.label());
            assert!(out.model.iter().all(|v| v.is_finite()), "{}", alg.label());
            assert!(elapsed.as_nanos() > 0);
        }
    }

    #[test]
    fn disk_backed_run_works() {
        let bench = generate_scaled(DatasetSpec::Covtype, 53, 0.002);
        let mut table = table_from_dataset(&bench.train, "t", Backing::TempFile, 4);
        let (out, _) = run_bismarck_sc(&mut table, BisAlg::Ours, 1e-4, 0.1, 1, 10, 54);
        assert!(out.model.iter().all(|v| v.is_finite()));
    }
}

//! The four test scenarios of Section 4.3 and their parameter conventions.

use bolton::api::{AlgorithmKind, LossKind};
use bolton::Budget;
use bolton_data::DatasetSpec;

/// The paper's four accuracy test scenarios (Section 4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// Test 1: convex (λ = 0), ε-DP.
    ConvexPure,
    /// Test 2: convex (λ = 0), (ε, δ)-DP.
    ConvexApprox,
    /// Test 3: strongly convex (λ > 0), ε-DP.
    StronglyConvexPure,
    /// Test 4: strongly convex (λ > 0), (ε, δ)-DP.
    StronglyConvexApprox,
}

impl Scenario {
    /// All four, in paper order.
    pub const ALL: [Scenario; 4] = [
        Scenario::ConvexPure,
        Scenario::ConvexApprox,
        Scenario::StronglyConvexPure,
        Scenario::StronglyConvexApprox,
    ];

    /// The paper's label ("Test 1" … "Test 4").
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::ConvexPure => "Test1-Convex-eps",
            Scenario::ConvexApprox => "Test2-Convex-eps-delta",
            Scenario::StronglyConvexPure => "Test3-StronglyConvex-eps",
            Scenario::StronglyConvexApprox => "Test4-StronglyConvex-eps-delta",
        }
    }

    /// Whether the scenario uses a strongly convex (regularized) loss.
    pub fn strongly_convex(&self) -> bool {
        matches!(self, Scenario::StronglyConvexPure | Scenario::StronglyConvexApprox)
    }

    /// Whether the scenario grants δ > 0.
    pub fn approx(&self) -> bool {
        matches!(self, Scenario::ConvexApprox | Scenario::StronglyConvexApprox)
    }

    /// Logistic-loss kind for this scenario at regularization `lambda`.
    pub fn logistic(&self, lambda: f64) -> LossKind {
        LossKind::Logistic { lambda: if self.strongly_convex() { lambda } else { 0.0 } }
    }

    /// Huber-SVM kind for this scenario (h = 0.1, Appendix B).
    pub fn huber(&self, lambda: f64) -> LossKind {
        LossKind::HuberSvm { h: 0.1, lambda: if self.strongly_convex() { lambda } else { 0.0 } }
    }

    /// Budget for a sweep point ε on a dataset of `m` training rows
    /// (δ = 1/m², Section 4.3).
    pub fn budget(&self, eps: f64, m: usize) -> Budget {
        if self.approx() {
            let delta = 1.0 / (m as f64 * m as f64);
            Budget::approx(eps, delta).expect("valid sweep budget")
        } else {
            Budget::pure(eps).expect("valid sweep budget")
        }
    }

    /// Algorithms compared in this scenario: BST14 appears only in the
    /// (ε, δ) tests (Figures 3/6 caption).
    pub fn algorithms(&self) -> &'static [AlgorithmKind] {
        if self.approx() {
            &[
                AlgorithmKind::Noiseless,
                AlgorithmKind::BoltOn,
                AlgorithmKind::Scs13,
                AlgorithmKind::Bst14,
            ]
        } else {
            &[AlgorithmKind::Noiseless, AlgorithmKind::BoltOn, AlgorithmKind::Scs13]
        }
    }
}

/// The paper's default regularization for the figures (λ = 1e-4).
pub const DEFAULT_LAMBDA: f64 = 1e-4;

/// The figures' mini-batch size (b = 50).
pub const DEFAULT_BATCH: usize = 50;

/// The figures' pass count (k = 10).
pub const DEFAULT_PASSES: usize = 10;

/// The three main-paper datasets of Figures 3/5/6/7.
pub const MAIN_DATASETS: [DatasetSpec; 3] =
    [DatasetSpec::Mnist, DatasetSpec::Protein, DatasetSpec::Covtype];

/// The appendix datasets of Figures 8/9.
pub const EXTRA_DATASETS: [DatasetSpec; 2] = [DatasetSpec::Higgs, DatasetSpec::Kddcup99];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_conventions() {
        assert!(!Scenario::ConvexPure.approx());
        assert!(Scenario::StronglyConvexApprox.strongly_convex());
        assert_eq!(Scenario::ConvexPure.algorithms().len(), 3);
        assert_eq!(Scenario::ConvexApprox.algorithms().len(), 4);
        // Convex scenarios zero out lambda.
        assert_eq!(Scenario::ConvexPure.logistic(0.01), LossKind::Logistic { lambda: 0.0 });
        assert_eq!(
            Scenario::StronglyConvexPure.logistic(0.01),
            LossKind::Logistic { lambda: 0.01 }
        );
    }

    #[test]
    fn budget_delta_convention() {
        let b = Scenario::ConvexApprox.budget(0.1, 1000);
        assert_eq!(b.delta(), 1e-6);
        let p = Scenario::ConvexPure.budget(0.1, 1000);
        assert!(p.is_pure());
    }
}

//! A clock-eviction buffer pool.
//!
//! The pool owns the heap storage and caches up to `capacity` pages in
//! frames. Access is closure-scoped (`with_page` / `with_page_mut`), which
//! pins the frame for exactly the duration of the closure without any guard
//! lifetimes — the pattern the storage scan needs. Dirty frames are written
//! back on eviction and on [`BufferPool::flush`].
//!
//! Capping `capacity` far below the table size is how the scalability
//! experiments (paper Figure 2b) force the disk-resident code path.

use crate::error::{DbError, DbResult};
use crate::heap::HeapStorage;
use crate::page::Page;
use std::collections::HashMap;

/// Cache statistics, for the scalability harness and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests served from a frame.
    pub hits: u64,
    /// Page requests that had to read storage.
    pub misses: u64,
    /// Frames written back because they were dirty at eviction.
    pub dirty_evictions: u64,
    /// Total evictions.
    pub evictions: u64,
}

struct Frame {
    pid: Option<usize>,
    page: Page,
    dirty: bool,
    referenced: bool,
    /// Highest WAL LSN whose change this frame holds (0 = none recorded).
    /// Purely bookkeeping for the durability layer: the WAL is synced per
    /// statement before acknowledgement, so any LSN found on a dirty frame
    /// is already durable in the log by the time the frame could be
    /// written back.
    lsn: u64,
}

/// A buffer pool over a heap file.
pub struct BufferPool {
    frames: Vec<Frame>,
    /// pid → frame index for resident pages.
    resident: HashMap<usize, usize>,
    hand: usize,
    storage: Box<dyn HeapStorage>,
    stats: PoolStats,
}

impl BufferPool {
    /// Wraps `storage` with a pool of `capacity` frames.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(storage: Box<dyn HeapStorage>, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let frames = (0..capacity)
            .map(|_| Frame {
                pid: None,
                page: Page::new(),
                dirty: false,
                referenced: false,
                lsn: 0,
            })
            .collect();
        Self { frames, resident: HashMap::new(), hand: 0, storage, stats: PoolStats::default() }
    }

    /// Number of pages in the underlying heap.
    pub fn page_count(&self) -> usize {
        self.storage.page_count()
    }

    /// Pool capacity in frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Resets cache statistics (between benchmark phases).
    pub fn reset_stats(&mut self) {
        self.stats = PoolStats::default();
    }

    /// Description of the underlying storage.
    pub fn describe(&self) -> String {
        format!("{} via {}-frame pool", self.storage.describe(), self.frames.len())
    }

    /// Runs `f` against page `pid` (read-only).
    pub fn with_page<T>(&mut self, pid: usize, f: impl FnOnce(&Page) -> T) -> DbResult<T> {
        let frame = self.fetch(pid)?;
        Ok(f(&self.frames[frame].page))
    }

    /// Runs `f` against page `pid` mutably, marking the frame dirty.
    pub fn with_page_mut<T>(&mut self, pid: usize, f: impl FnOnce(&mut Page) -> T) -> DbResult<T> {
        let frame = self.fetch(pid)?;
        self.frames[frame].dirty = true;
        Ok(f(&mut self.frames[frame].page))
    }

    /// Appends a fresh page to the heap, returning its id. The page is also
    /// cached so an immediately following `with_page_mut` hits.
    pub fn append_page(&mut self, page: &Page) -> DbResult<usize> {
        let pid = self.storage.append_page(page)?;
        // Warm the cache with the new tail page: inserts hammer it.
        let frame = self.take_frame()?;
        self.frames[frame].page.bytes_mut().copy_from_slice(page.bytes());
        self.install(frame, pid, false);
        Ok(pid)
    }

    /// Writes every dirty frame back to storage.
    pub fn flush(&mut self) -> DbResult<()> {
        for i in 0..self.frames.len() {
            if self.frames[i].dirty {
                let pid = self.frames[i].pid.expect("dirty frame must hold a page");
                self.storage.write_page(pid, &self.frames[i].page)?;
                self.frames[i].dirty = false;
                self.frames[i].lsn = 0;
            }
        }
        Ok(())
    }

    /// Flushes every dirty frame and fsyncs the underlying heap, so a
    /// file-backed table is bytewise complete on disk. Checkpoints call
    /// this on named-file tables before snapshotting them.
    pub fn flush_and_sync(&mut self) -> DbResult<()> {
        self.flush()?;
        self.storage.sync()
    }

    /// Tags page `pid`'s resident frame with WAL position `lsn` (a no-op
    /// if the page is not resident — its change is already on storage,
    /// written back when the frame was reclaimed).
    pub fn stamp_lsn(&mut self, pid: usize, lsn: u64) {
        if let Some(&frame) = self.resident.get(&pid) {
            self.frames[frame].lsn = self.frames[frame].lsn.max(lsn);
        }
    }

    /// Highest LSN stamped on any dirty frame (0 = none): the WAL position
    /// the log must be durable through before these frames may hit disk.
    pub fn max_dirty_lsn(&self) -> u64 {
        self.frames.iter().filter(|f| f.dirty).map(|f| f.lsn).max().unwrap_or(0)
    }

    fn fetch(&mut self, pid: usize) -> DbResult<usize> {
        if let Some(&frame) = self.resident.get(&pid) {
            self.stats.hits += 1;
            self.frames[frame].referenced = true;
            return Ok(frame);
        }
        self.stats.misses += 1;
        if pid >= self.storage.page_count() {
            return Err(DbError::PageOutOfBounds { pid, pages: self.storage.page_count() });
        }
        let frame = self.take_frame()?;
        // Disjoint field borrows: read storage directly into the frame's
        // page buffer, avoiding a per-miss allocation.
        self.storage.read_page(pid, &mut self.frames[frame].page)?;
        self.install(frame, pid, false);
        Ok(frame)
    }

    fn install(&mut self, frame: usize, pid: usize, dirty: bool) {
        let f = &mut self.frames[frame];
        f.pid = Some(pid);
        f.dirty = dirty;
        f.referenced = true;
        f.lsn = 0;
        self.resident.insert(pid, frame);
    }

    /// Finds a victim frame via the clock algorithm, writing it back if
    /// dirty and detaching it from the resident map.
    fn take_frame(&mut self) -> DbResult<usize> {
        // First pass: any empty frame.
        if let Some(i) = self.frames.iter().position(|f| f.pid.is_none()) {
            return Ok(i);
        }
        // Clock: skip recently referenced frames once, clearing their bit.
        loop {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            if self.frames[i].referenced {
                self.frames[i].referenced = false;
                continue;
            }
            let pid = self.frames[i].pid.expect("occupied frame");
            if self.frames[i].dirty {
                self.storage.write_page(pid, &self.frames[i].page)?;
                self.stats.dirty_evictions += 1;
            }
            self.stats.evictions += 1;
            self.resident.remove(&pid);
            self.frames[i].pid = None;
            self.frames[i].dirty = false;
            self.frames[i].lsn = 0;
            return Ok(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::MemHeap;

    fn page_with(value: f64) -> Page {
        let mut p = Page::new();
        p.push_row(&[value], 1.0).unwrap();
        p
    }

    fn read_value(page: &Page) -> f64 {
        let mut buf = [0.0];
        page.read_row(0, &mut buf).unwrap();
        buf[0]
    }

    #[test]
    fn append_then_read_hits_cache() {
        let mut pool = BufferPool::new(Box::new(MemHeap::new()), 4);
        let pid = pool.append_page(&page_with(5.0)).unwrap();
        let v = pool.with_page(pid, read_value).unwrap();
        assert_eq!(v, 5.0);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().misses, 0);
    }

    #[test]
    fn eviction_under_pressure_preserves_data() {
        let capacity = 3;
        let n_pages = 20;
        let mut pool = BufferPool::new(Box::new(MemHeap::new()), capacity);
        for i in 0..n_pages {
            pool.append_page(&page_with(i as f64)).unwrap();
        }
        // Read every page twice in a pattern that thrashes a 3-frame pool.
        for round in 0..2 {
            for i in 0..n_pages {
                let v = pool.with_page(i, read_value).unwrap();
                assert_eq!(v, i as f64, "round {round}, page {i}");
            }
        }
        assert!(pool.stats().evictions > 0);
    }

    #[test]
    fn dirty_pages_survive_eviction() {
        let mut pool = BufferPool::new(Box::new(MemHeap::new()), 2);
        for i in 0..5 {
            pool.append_page(&page_with(i as f64)).unwrap();
        }
        // Mutate page 0, then touch enough pages to evict it.
        pool.with_page_mut(0, |p| {
            p.clear();
            p.push_row(&[42.0], 1.0).unwrap();
        })
        .unwrap();
        for i in 1..5 {
            pool.with_page(i, read_value).unwrap();
        }
        let v = pool.with_page(0, read_value).unwrap();
        assert_eq!(v, 42.0);
        assert!(pool.stats().dirty_evictions >= 1);
    }

    #[test]
    fn flush_writes_back_without_eviction() {
        let mut pool = BufferPool::new(Box::new(MemHeap::new()), 8);
        pool.append_page(&page_with(1.0)).unwrap();
        pool.with_page_mut(0, |p| {
            p.clear();
            p.push_row(&[2.0], 1.0).unwrap();
        })
        .unwrap();
        pool.flush().unwrap();
        // Flushing twice is a no-op (frame no longer dirty).
        pool.flush().unwrap();
        assert_eq!(pool.with_page(0, read_value).unwrap(), 2.0);
    }

    #[test]
    fn sequential_scan_with_tiny_pool_mostly_misses() {
        let mut pool = BufferPool::new(Box::new(MemHeap::new()), 1);
        for i in 0..10 {
            pool.append_page(&page_with(i as f64)).unwrap();
        }
        pool.reset_stats();
        for i in 0..10 {
            pool.with_page(i, read_value).unwrap();
        }
        // With a single frame and 10 distinct pages only the last append
        // could hit; after reset, all 10 reads miss except possibly page 9.
        assert!(pool.stats().misses >= 9, "stats {:?}", pool.stats());
    }

    #[test]
    fn out_of_bounds_page_errors() {
        let mut pool = BufferPool::new(Box::new(MemHeap::new()), 2);
        assert!(matches!(pool.with_page(0, |_| ()), Err(DbError::PageOutOfBounds { .. })));
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_panics() {
        BufferPool::new(Box::new(MemHeap::new()), 0);
    }

    #[test]
    fn lsn_stamps_track_dirty_frames() {
        let mut pool = BufferPool::new(Box::new(MemHeap::new()), 2);
        pool.append_page(&page_with(1.0)).unwrap();
        pool.append_page(&page_with(2.0)).unwrap();
        assert_eq!(pool.max_dirty_lsn(), 0);
        pool.with_page_mut(0, |_| ()).unwrap();
        pool.stamp_lsn(0, 7);
        pool.with_page_mut(1, |_| ()).unwrap();
        pool.stamp_lsn(1, 9);
        // A lower stamp never regresses the frame.
        pool.stamp_lsn(1, 3);
        assert_eq!(pool.max_dirty_lsn(), 9);
        // Flushing clears dirty bits and stamps together.
        pool.flush_and_sync().unwrap();
        assert_eq!(pool.max_dirty_lsn(), 0);
        // Stamping a non-resident page is a quiet no-op.
        pool.stamp_lsn(99, 1);
        assert_eq!(pool.max_dirty_lsn(), 0);
    }

    #[test]
    fn eviction_clears_the_frame_stamp() {
        let mut pool = BufferPool::new(Box::new(MemHeap::new()), 1);
        pool.append_page(&page_with(1.0)).unwrap();
        pool.append_page(&page_with(2.0)).unwrap(); // evicts page 0's frame
        pool.with_page_mut(1, |_| ()).unwrap();
        pool.stamp_lsn(1, 5);
        assert_eq!(pool.max_dirty_lsn(), 5);
        pool.with_page(0, read_value).unwrap(); // evicts page 1, writes it back
        assert_eq!(pool.max_dirty_lsn(), 0);
    }

    #[test]
    fn repeated_access_is_a_hit_stream() {
        let mut pool = BufferPool::new(Box::new(MemHeap::new()), 2);
        pool.append_page(&page_with(3.0)).unwrap();
        pool.reset_stats();
        for _ in 0..100 {
            pool.with_page(0, read_value).unwrap();
        }
        assert_eq!(pool.stats().hits, 100);
        assert_eq!(pool.stats().misses, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::heap::MemHeap;
    use proptest::prelude::*;

    proptest! {
        /// Under an arbitrary access pattern, a tiny pool returns exactly
        /// what a huge pool returns — eviction is invisible to readers.
        #[test]
        fn tiny_pool_equals_big_pool(
            accesses in proptest::collection::vec(0usize..20, 1..200),
            writes in proptest::collection::vec((0usize..20, -100.0f64..100.0), 0..40),
        ) {
            let make_pool = |capacity: usize| {
                let mut pool = BufferPool::new(Box::new(MemHeap::new()), capacity);
                for i in 0..20usize {
                    let mut page = Page::new();
                    page.push_row(&[i as f64], 1.0).unwrap();
                    pool.append_page(&page).unwrap();
                }
                pool
            };
            let mut tiny = make_pool(2);
            let mut big = make_pool(32);
            // Interleave writes into both pools identically.
            for (pid, value) in &writes {
                for pool in [&mut tiny, &mut big] {
                    pool.with_page_mut(*pid, |p| {
                        p.clear();
                        p.push_row(&[*value], 1.0).unwrap();
                    })
                    .unwrap();
                }
            }
            for pid in &accesses {
                let read = |pool: &mut BufferPool| {
                    pool.with_page(*pid, |p| {
                        let mut buf = [0.0];
                        p.read_row(0, &mut buf).unwrap();
                        buf[0]
                    })
                    .unwrap()
                };
                prop_assert_eq!(read(&mut tiny), read(&mut big), "page {}", pid);
            }
        }
    }
}

//! Wire protocol v2: length-prefixed binary frames with request IDs, and
//! the typed response surface shared by both protocol versions.
//!
//! ## Frame layout
//!
//! Every v2 message — request or response — is one frame:
//!
//! ```text
//! offset  size  field
//! 0       1     magic       0xB2 (never a valid first byte of UTF-8 SQL,
//!                           so the server auto-detects v2 on byte one)
//! 1       1     flags       must be 0 in requests; reserved
//! 2       4     request_id  u32 LE, chosen by the client, echoed verbatim
//!                           on the matching response
//! 6       4     len         u32 LE payload length in bytes
//! 10      8     checksum    u64 LE FNV-1a over the payload (the same
//!                           [`bolton::model_io::checksum64`] the WAL uses)
//! 18      len   payload
//! ```
//!
//! A request payload is one UTF-8 SQL statement (no trailing newline
//! required). A response payload is byte-for-byte the v1 textual response
//! block for that statement — zero or more `* …` data lines then exactly
//! one `ok …`/`err …` terminator line, each `\n`-terminated — so v1 and v2
//! answers to the same statement are bit-identical by construction, and
//! one [`Response`] parser serves both transports.
//!
//! ## Request IDs and pipelining
//!
//! A client may have many requests in flight on one connection; the server
//! executes them on a small per-connection executor pool and writes each
//! response frame as its statement finishes, tagged with the request's ID —
//! responses can arrive **out of order**, and two pipelined statements may
//! execute concurrently (order between them is not guaranteed; pipeline
//! dependent statements on separate round trips). Shedding (`err busy
//! retry_after_ms=N`) and deadlines (`err timeout …`) are likewise
//! per-request: a shed or timed-out statement answers on its own ID while
//! its neighbours proceed.
//!
//! ## Auto-detection
//!
//! [`MAGIC`] is `>= 0x80`, which can never start a UTF-8 text line, so the
//! server peeks one byte on a fresh connection: `0xB2` ⇒ v2 frames,
//! anything else ⇒ the v1 line protocol. Legacy clients need no changes.

use crate::error::{DbError, DbResult};
use bolton::model_io::checksum64;
use std::io::{BufRead, Read, Write};

/// First byte of every v2 frame. `>= 0x80` guarantees it is never the
/// first byte of a UTF-8 statement line, which is what makes first-byte
/// protocol auto-detection sound.
pub const MAGIC: u8 = 0xB2;

/// Bytes in a frame header (`magic | flags | request_id | len | checksum`).
pub const HEADER_LEN: usize = 18;

/// Hard cap on a single frame payload, bounding per-connection memory
/// against a hostile `len` field. Requests are further capped by the
/// server's per-statement byte limit.
pub const MAX_FRAME_PAYLOAD: usize = 16 * 1024 * 1024;

/// One decoded v2 frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Reserved; must be 0 in requests.
    pub flags: u8,
    /// Client-chosen ID, echoed on the matching response.
    pub request_id: u32,
    /// Statement text (requests) or response block (responses).
    pub payload: Vec<u8>,
}

/// Why a byte sequence is not a valid frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// First byte is not [`MAGIC`] — the stream is not (or no longer)
    /// speaking v2 frames.
    BadMagic(u8),
    /// The header's `len` exceeds the decoder's payload cap.
    Oversize {
        /// The request ID from the (still readable) header.
        request_id: u32,
        /// The claimed payload length.
        len: u64,
        /// The cap it exceeded.
        max: usize,
    },
    /// The payload does not match the header checksum.
    BadChecksum {
        /// The request ID from the header.
        request_id: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(b) => write!(f, "bad frame magic 0x{b:02x}"),
            FrameError::Oversize { request_id, len, max } => {
                write!(f, "frame payload {len} exceeds {max} bytes (request {request_id})")
            }
            FrameError::BadChecksum { request_id } => {
                write!(f, "frame payload fails its checksum (request {request_id})")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for std::io::Error {
    fn from(e: FrameError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// A parsed frame header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// Reserved flag bits.
    pub flags: u8,
    /// The request ID.
    pub request_id: u32,
    /// Payload length in bytes.
    pub len: u32,
    /// FNV-1a checksum of the payload.
    pub checksum: u64,
}

/// Parses the first [`HEADER_LEN`] bytes of `buf` as a frame header,
/// validating the magic and the payload cap (but not the checksum, which
/// needs the payload).
///
/// # Errors
/// [`FrameError::BadMagic`] / [`FrameError::Oversize`].
///
/// # Panics
/// If `buf` is shorter than [`HEADER_LEN`].
pub fn parse_header(buf: &[u8], max_payload: usize) -> Result<Header, FrameError> {
    assert!(buf.len() >= HEADER_LEN, "parse_header needs a full header");
    if buf[0] != MAGIC {
        return Err(FrameError::BadMagic(buf[0]));
    }
    let flags = buf[1];
    let request_id = u32::from_le_bytes(buf[2..6].try_into().expect("4 bytes"));
    let len = u32::from_le_bytes(buf[6..10].try_into().expect("4 bytes"));
    let checksum = u64::from_le_bytes(buf[10..18].try_into().expect("8 bytes"));
    if len as u64 > max_payload as u64 {
        return Err(FrameError::Oversize { request_id, len: len as u64, max: max_payload });
    }
    Ok(Header { flags, request_id, len, checksum })
}

/// Appends the encoding of one frame to `out`.
pub fn encode_into(out: &mut Vec<u8>, flags: u8, request_id: u32, payload: &[u8]) {
    let len = u32::try_from(payload.len()).expect("frame payload fits u32");
    out.reserve(HEADER_LEN + payload.len());
    out.push(MAGIC);
    out.push(flags);
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&checksum64(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Encodes one frame.
#[must_use]
pub fn encode(flags: u8, request_id: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    encode_into(&mut out, flags, request_id, payload);
    out
}

/// Decodes one frame from the front of `buf`.
///
/// Returns `Ok(None)` when `buf` is a (possibly empty) torn prefix — more
/// bytes are needed — and `Ok(Some((frame, consumed)))` on success.
///
/// # Errors
/// [`FrameError`] when the bytes can never become a valid frame: wrong
/// magic, oversize `len`, or a payload failing its checksum.
pub fn decode(buf: &[u8], max_payload: usize) -> Result<Option<(Frame, usize)>, FrameError> {
    if buf.len() < HEADER_LEN {
        if let Some(&first) = buf.first() {
            if first != MAGIC {
                return Err(FrameError::BadMagic(first));
            }
        }
        return Ok(None);
    }
    let header = parse_header(buf, max_payload)?;
    let total = HEADER_LEN + header.len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let payload = &buf[HEADER_LEN..total];
    if checksum64(payload) != header.checksum {
        return Err(FrameError::BadChecksum { request_id: header.request_id });
    }
    Ok(Some((
        Frame { flags: header.flags, request_id: header.request_id, payload: payload.to_vec() },
        total,
    )))
}

/// Writes one frame as a single `write_all` (header and payload in one
/// buffer, so a torn network write tears *inside* a frame, never between
/// cleanly framed messages). Does not flush.
///
/// # Errors
/// I/O failures.
pub fn write_frame(
    w: &mut impl Write,
    flags: u8,
    request_id: u32,
    payload: &[u8],
) -> std::io::Result<()> {
    w.write_all(&encode(flags, request_id, payload))
}

/// Reads one frame from a blocking stream. Returns `Ok(None)` on a clean
/// EOF at a frame boundary.
///
/// # Errors
/// `UnexpectedEof` mid-frame, `InvalidData` wrapping a [`FrameError`], or
/// transport failures.
pub fn read_frame(r: &mut impl Read, max_payload: usize) -> std::io::Result<Option<Frame>> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-frame-header",
            ));
        }
        filled += n;
    }
    let header = parse_header(&header, max_payload)?;
    let mut payload = vec![0u8; header.len as usize];
    r.read_exact(&mut payload)?;
    if checksum64(&payload) != header.checksum {
        return Err(FrameError::BadChecksum { request_id: header.request_id }.into());
    }
    Ok(Some(Frame { flags: header.flags, request_id: header.request_id, payload }))
}

// ---------------------------------------------------------------------------
// Typed responses
// ---------------------------------------------------------------------------

/// Structured error classes, replacing ad-hoc `err …` prefix matching in
/// clients. Parsed from the terminator line; [`ErrKind::Other`] covers
/// parse/execution errors that carry no retry semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrKind {
    /// Shed by rate limiting, admission control, or a connection quota —
    /// back off for [`Response::retry_after_ms`] and retry.
    Busy,
    /// The statement ran past its deadline.
    Timeout,
    /// The connection was reaped idle.
    Idle,
    /// The server is at its connection limit.
    ConnLimit,
    /// The statement exceeded the per-statement byte cap.
    TooLarge,
    /// A started statement did not complete within the read deadline.
    ReadTimeout,
    /// A v2 framing violation (bad magic, flags, or checksum).
    Protocol,
    /// Any other parse or execution error.
    Other,
}

/// One statement's full response, parsed from the wire text (identical on
/// both protocol versions).
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// `ok …` with no data lines; `kv` holds the terminator's
    /// `key=value` summary tokens (a bare token parses as `(token, "")`).
    Ok {
        /// Terminator summary tokens in wire order.
        kv: Vec<(String, String)>,
    },
    /// `ok …` preceded by `* ` data lines (SHOW TABLES, LIST MODELS, …).
    Rows {
        /// Data lines, `* ` prefix stripped, in wire order.
        rows: Vec<String>,
        /// Terminator summary tokens in wire order.
        kv: Vec<(String, String)>,
    },
    /// `err …`.
    Err {
        /// The structured class.
        kind: ErrKind,
        /// From `retry_after_ms=N` when present (busy sheds).
        retry_after_ms: Option<u64>,
        /// The full message after `err `.
        message: String,
    },
}

fn parse_kv(rest: &str) -> Vec<(String, String)> {
    rest.split_whitespace()
        .map(|tok| match tok.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (tok.to_string(), String::new()),
        })
        .collect()
}

fn classify_err(message: &str) -> (ErrKind, Option<u64>) {
    let retry = message
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("retry_after_ms="))
        .and_then(|v| v.parse().ok());
    let kind = if message.starts_with("busy") {
        ErrKind::Busy
    } else if message.starts_with("timeout") {
        ErrKind::Timeout
    } else if message.starts_with("idle") {
        ErrKind::Idle
    } else if message.starts_with("server at connection limit") {
        ErrKind::ConnLimit
    } else if message.starts_with("statement exceeds") {
        ErrKind::TooLarge
    } else if message.starts_with("read timeout") {
        ErrKind::ReadTimeout
    } else if message.starts_with("protocol") {
        ErrKind::Protocol
    } else {
        ErrKind::Other
    };
    (kind, retry)
}

impl Response {
    /// Parses a response from its wire lines (data lines first, the
    /// `ok`/`err` terminator last), as returned by the line client.
    #[must_use]
    pub fn from_lines(lines: &[String]) -> Response {
        let (terminator, data) = match lines.split_last() {
            Some(split) => split,
            None => {
                return Response::Err {
                    kind: ErrKind::Protocol,
                    retry_after_ms: None,
                    message: "protocol empty response".to_string(),
                }
            }
        };
        let rows: Vec<String> =
            data.iter().map(|l| l.strip_prefix("* ").unwrap_or(l).to_string()).collect();
        if let Some(rest) = terminator.strip_prefix("err") {
            let message = rest.trim_start().to_string();
            let (kind, retry_after_ms) = classify_err(&message);
            return Response::Err { kind, retry_after_ms, message };
        }
        let kv = parse_kv(terminator.strip_prefix("ok").unwrap_or(terminator));
        if rows.is_empty() {
            Response::Ok { kv }
        } else {
            Response::Rows { rows, kv }
        }
    }

    /// Parses a v2 response frame payload (the `\n`-terminated block).
    #[must_use]
    pub fn from_payload(payload: &[u8]) -> Response {
        let text = String::from_utf8_lossy(payload);
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        Response::from_lines(&lines)
    }

    /// Whether this is an `ok` response.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        !matches!(self, Response::Err { .. })
    }

    /// The error class, if this is an error.
    #[must_use]
    pub fn err_kind(&self) -> Option<ErrKind> {
        match self {
            Response::Err { kind, .. } => Some(*kind),
            _ => None,
        }
    }

    /// The `retry_after_ms` hint of a busy shed, if any.
    #[must_use]
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            Response::Err { retry_after_ms, .. } => *retry_after_ms,
            _ => None,
        }
    }

    /// Looks up a terminator summary value by key (`count`, `acc`, …).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        let kv = match self {
            Response::Ok { kv } | Response::Rows { kv, .. } => kv,
            Response::Err { .. } => return None,
        };
        kv.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// The data rows (empty unless [`Response::Rows`]).
    #[must_use]
    pub fn rows(&self) -> &[String] {
        match self {
            Response::Rows { rows, .. } => rows,
            _ => &[],
        }
    }

    /// Errors with the server's message on [`Response::Err`] — the typed
    /// replacement for scraping `err ` prefixes off terminator lines.
    ///
    /// # Errors
    /// [`DbError::Parse`] carrying the server message.
    pub fn into_result(self) -> DbResult<Response> {
        match self {
            Response::Err { message, .. } => Err(DbError::Parse(format!("server: err {message}"))),
            ok => Ok(ok),
        }
    }
}

/// Reads one v1 textual response block (data lines + terminator) from a
/// buffered reader, returning the trimmed lines. Shared by the line client
/// and the pipelined line path.
///
/// # Errors
/// `UnexpectedEof` when the server hangs up mid-response; I/O failures.
pub fn read_response_block(reader: &mut impl BufRead) -> std::io::Result<Vec<String>> {
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-response",
            ));
        }
        let line = line.trim_end().to_string();
        let done = line.starts_with("ok") || line.starts_with("err");
        lines.push(line);
        if done {
            return Ok(lines);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let payload = b"SELECT COUNT(*) FROM t";
        let bytes = encode(0, 7, payload);
        assert_eq!(bytes.len(), HEADER_LEN + payload.len());
        assert_eq!(bytes[0], MAGIC);
        let (frame, used) = decode(&bytes, MAX_FRAME_PAYLOAD).unwrap().unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(frame, Frame { flags: 0, request_id: 7, payload: payload.to_vec() });
    }

    #[test]
    fn empty_payload_frames_are_valid() {
        let bytes = encode(0, 0, b"");
        let (frame, used) = decode(&bytes, MAX_FRAME_PAYLOAD).unwrap().unwrap();
        assert_eq!(used, HEADER_LEN);
        assert!(frame.payload.is_empty());
    }

    #[test]
    fn torn_prefixes_need_more_bytes() {
        let bytes = encode(1, 42, b"EVAL m ON t");
        for cut in 0..bytes.len() {
            assert_eq!(decode(&bytes[..cut], MAX_FRAME_PAYLOAD), Ok(None), "prefix {cut}");
        }
    }

    #[test]
    fn trailing_bytes_are_left_unconsumed() {
        let mut bytes = encode(0, 1, b"a");
        let second = encode(0, 2, b"bb");
        bytes.extend_from_slice(&second);
        let (frame, used) = decode(&bytes, MAX_FRAME_PAYLOAD).unwrap().unwrap();
        assert_eq!(frame.request_id, 1);
        let (frame2, used2) = decode(&bytes[used..], MAX_FRAME_PAYLOAD).unwrap().unwrap();
        assert_eq!(frame2.request_id, 2);
        assert_eq!(used + used2, bytes.len());
    }

    #[test]
    fn corruption_is_detected() {
        let good = encode(0, 9, b"SHOW TABLES");
        // Magic flip: instantly not-a-frame.
        let mut bad = good.clone();
        bad[0] ^= 0x01;
        assert!(matches!(decode(&bad, MAX_FRAME_PAYLOAD), Err(FrameError::BadMagic(_))));
        // Any checksum byte flip: BadChecksum with the right request id.
        for i in 10..HEADER_LEN {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert_eq!(
                decode(&bad, MAX_FRAME_PAYLOAD),
                Err(FrameError::BadChecksum { request_id: 9 }),
                "checksum byte {i}"
            );
        }
        // Any payload byte flip too.
        for i in HEADER_LEN..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert_eq!(
                decode(&bad, MAX_FRAME_PAYLOAD),
                Err(FrameError::BadChecksum { request_id: 9 }),
                "payload byte {i}"
            );
        }
    }

    #[test]
    fn oversize_len_is_rejected_with_the_request_id() {
        let bytes = encode(0, 3, &[0u8; 100]);
        let err = decode(&bytes, 64).unwrap_err();
        assert_eq!(err, FrameError::Oversize { request_id: 3, len: 100, max: 64 });
    }

    #[test]
    fn stream_read_frame_roundtrips_and_reports_clean_eof() {
        let mut bytes = encode(0, 5, b"one");
        bytes.extend_from_slice(&encode(0, 6, b"two"));
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor, MAX_FRAME_PAYLOAD).unwrap().unwrap().request_id, 5);
        assert_eq!(read_frame(&mut cursor, MAX_FRAME_PAYLOAD).unwrap().unwrap().request_id, 6);
        assert!(read_frame(&mut cursor, MAX_FRAME_PAYLOAD).unwrap().is_none(), "clean EOF");
        // A torn frame is an UnexpectedEof, not a silent None.
        let torn = encode(0, 7, b"torn")[..HEADER_LEN + 2].to_vec();
        let mut cursor = std::io::Cursor::new(torn);
        let err = read_frame(&mut cursor, MAX_FRAME_PAYLOAD).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn responses_parse_ok_rows_and_err() {
        let ok = Response::from_lines(&["ok count=200".to_string()]);
        assert_eq!(ok, Response::Ok { kv: vec![("count".into(), "200".into())] });
        assert_eq!(ok.get("count"), Some("200"));

        let bare = Response::from_lines(&["ok null".to_string()]);
        assert_eq!(bare.get("null"), Some(""));

        let rows =
            Response::from_lines(&["* t".to_string(), "* u".to_string(), "ok count=2".to_string()]);
        assert_eq!(rows.rows(), &["t".to_string(), "u".to_string()]);
        assert_eq!(rows.get("count"), Some("2"));

        let busy = Response::from_lines(&["err busy retry_after_ms=40".to_string()]);
        assert_eq!(busy.err_kind(), Some(ErrKind::Busy));
        assert_eq!(busy.retry_after_ms(), Some(40));
        assert!(busy.clone().into_result().is_err());

        for (line, kind) in [
            ("err timeout statement ran past its deadline", ErrKind::Timeout),
            ("err idle connection reaped after 60ms", ErrKind::Idle),
            ("err server at connection limit (64)", ErrKind::ConnLimit),
            ("err statement exceeds 65536 bytes", ErrKind::TooLarge),
            ("err read timeout: statement line incomplete after 60ms", ErrKind::ReadTimeout),
            ("err protocol unsupported frame flags 0x01", ErrKind::Protocol),
            ("err no table 'ghost'", ErrKind::Other),
        ] {
            let parsed = Response::from_lines(&[line.to_string()]);
            assert_eq!(parsed.err_kind(), Some(kind), "{line}");
        }
    }

    #[test]
    fn response_payload_parse_matches_line_parse() {
        let payload = b"* t\n* u\nok count=2\n";
        let from_payload = Response::from_payload(payload);
        let from_lines =
            Response::from_lines(&["* t".to_string(), "* u".to_string(), "ok count=2".to_string()]);
        assert_eq!(from_payload, from_lines);
    }
}

//! The shared parse/plan engine pool behind the server's statement paths.
//!
//! Before protocol v2, every connection parsed its own statements from
//! scratch: per-connection parser work, zero reuse across the hot,
//! repetitive serving workload (the same `EVAL MODEL … ON t` thousands of
//! times a second). An [`EnginePool`] replaces that with a small fixed set
//! of *engines*, each owning one shard of an LRU parse cache keyed on the
//! exact statement text. Requests check out an engine round-robin (an
//! atomic counter — no coordination beyond the engine's own mutex), so
//! concurrent parses spread across shards instead of convoying on one
//! lock, and per-connection parser state is gone entirely: connections
//! hold no parse structures, only the shared pool handle.
//!
//! A hot statement therefore skips the tokenizer: the engine returns the
//! cached [`Arc<Statement>`] — the AST is immutable and shared, never
//! re-parsed or cloned per request. Parse *errors* are never cached (they
//! are cold-path by definition and caching them would pin garbage).
//!
//! Heavy statement *execution* (TRAIN, batch scoring) still fans out on
//! the process-global [`bolton_sgd::pool`] worker pool; the engine pool
//! only covers the parse/plan step in front of it.
//!
//! Knobs: `BOLTON_PARSE_ENGINES` (shard count) and `BOLTON_PARSE_CACHE`
//! (entries per engine; `0` disables caching). Live counters surface in
//! `SHOW LIMITS` as `parse_cache_hits` / `parse_cache_misses`.

use crate::error::DbResult;
use crate::sql::{self, Statement};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// One engine's LRU shard: statement text → shared AST, with a logical
/// clock for eviction. Capacity is small (hundreds), so the O(capacity)
/// min-stamp eviction scan is cheaper than a linked-list LRU's churn.
struct ParseCache {
    map: HashMap<String, (Arc<Statement>, u64)>,
    clock: u64,
    capacity: usize,
}

impl ParseCache {
    fn get(&mut self, text: &str) -> Option<Arc<Statement>> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(text).map(|(stmt, stamp)| {
            *stamp = clock;
            Arc::clone(stmt)
        })
    }

    fn insert(&mut self, text: String, stmt: Arc<Statement>) {
        if self.map.len() >= self.capacity && !self.map.contains_key(&text) {
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, (_, stamp))| *stamp).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.clock += 1;
        self.map.insert(text, (stmt, self.clock));
    }
}

/// Live pool counters, as reported by [`EnginePool::stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineStats {
    /// Statements served from the parse cache.
    pub hits: u64,
    /// Statements that went through the tokenizer.
    pub misses: u64,
}

impl EngineStats {
    /// Cache hit rate in `[0, 1]`; 0 when nothing was parsed yet.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The shared round-robin parse/plan pool. One per server, shared by every
/// connection on both protocol versions.
pub struct EnginePool {
    engines: Vec<Mutex<ParseCache>>,
    next: AtomicUsize,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EnginePool {
    /// A pool of `engines` shards, each caching up to `capacity` parsed
    /// statements. `capacity == 0` disables caching (every statement
    /// parses fresh); `engines` is clamped to ≥ 1.
    #[must_use]
    pub fn new(engines: usize, capacity: usize) -> Self {
        let engines = engines.max(1);
        EnginePool {
            engines: (0..engines)
                .map(|_| Mutex::new(ParseCache { map: HashMap::new(), clock: 0, capacity }))
                .collect(),
            next: AtomicUsize::new(0),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Parses `text`, serving hot statements from the checked-out engine's
    /// cache. Each engine caches independently, so a statement hot across
    /// the whole workload costs at most one miss per engine.
    ///
    /// # Errors
    /// Parse errors (never cached).
    pub fn parse(&self, text: &str) -> DbResult<Arc<Statement>> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return sql::parse(text).map(Arc::new);
        }
        let idx = self.next.fetch_add(1, Ordering::Relaxed) % self.engines.len();
        let mut cache = self.engines[idx].lock().expect("engine lock");
        if let Some(stmt) = cache.get(text) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(stmt);
        }
        // Parse under the engine's lock: the engine is "busy" for the
        // duration, and the round-robin counter routes concurrent misses
        // to other engines.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let stmt = Arc::new(sql::parse(text)?);
        cache.insert(text.to_string(), Arc::clone(&stmt));
        Ok(stmt)
    }

    /// Number of engines (cache shards).
    #[must_use]
    pub fn engines(&self) -> usize {
        self.engines.len()
    }

    /// Per-engine cache capacity (0 = caching disabled).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot of the hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_statements_hit_after_one_miss_per_engine() {
        let pool = EnginePool::new(3, 8);
        for _ in 0..30 {
            let stmt = pool.parse("SELECT COUNT(*) FROM t").unwrap();
            assert!(matches!(*stmt, Statement::Count { .. }));
        }
        let stats = pool.stats();
        assert_eq!(stats.misses, 3, "one cold parse per engine");
        assert_eq!(stats.hits, 27);
        assert!(stats.hit_rate() > 0.89, "{:?}", stats);
    }

    #[test]
    fn cached_asts_are_shared_not_reparsed() {
        let pool = EnginePool::new(1, 4);
        let a = pool.parse("SHOW TABLES").unwrap();
        let b = pool.parse("SHOW TABLES").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hit must return the same AST");
    }

    #[test]
    fn parse_errors_are_not_cached() {
        let pool = EnginePool::new(1, 4);
        assert!(pool.parse("DEFINITELY NOT SQL").is_err());
        assert!(pool.parse("DEFINITELY NOT SQL").is_err());
        let stats = pool.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2, "errors always re-parse");
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let pool = EnginePool::new(1, 2);
        pool.parse("SHOW TABLES").unwrap(); // A
        pool.parse("SELECT COUNT(*) FROM t").unwrap(); // B
        pool.parse("SHOW TABLES").unwrap(); // A again: A is now hotter
        pool.parse("LIST MODELS").unwrap(); // C evicts B
        let before = pool.stats();
        pool.parse("SHOW TABLES").unwrap(); // still cached
        assert_eq!(pool.stats().hits, before.hits + 1, "A survived eviction");
        pool.parse("SELECT COUNT(*) FROM t").unwrap(); // B was evicted
        assert_eq!(pool.stats().misses, before.misses + 1, "B re-parses");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let pool = EnginePool::new(2, 0);
        pool.parse("SHOW TABLES").unwrap();
        pool.parse("SHOW TABLES").unwrap();
        let stats = pool.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hit_rate(), 0.0);
    }

    #[test]
    fn round_robin_spreads_misses_across_engines() {
        let pool = EnginePool::new(4, 8);
        // 4 distinct statements land on 4 distinct engines in one cycle.
        for text in
            ["SHOW TABLES", "LIST MODELS", "SELECT COUNT(*) FROM a", "SELECT COUNT(*) FROM b"]
        {
            pool.parse(text).unwrap();
        }
        assert_eq!(pool.stats().misses, 4);
        // A second identical cycle hits every engine's cache.
        for text in
            ["SHOW TABLES", "LIST MODELS", "SELECT COUNT(*) FROM a", "SELECT COUNT(*) FROM b"]
        {
            pool.parse(text).unwrap();
        }
        assert_eq!(pool.stats().hits, 4);
    }
}

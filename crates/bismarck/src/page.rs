//! Fixed-size pages holding fixed-width training rows.
//!
//! A row is `dim` feature doubles followed by one label double, serialized
//! little-endian. The page header stores the row count; rows pack densely
//! after it. Fixed-width rows keep the row-id ↔ (page, slot) mapping a pure
//! arithmetic function, which the permuted scans rely on.

use crate::error::{DbError, DbResult};

/// Page size in bytes (PostgreSQL's default, which Bismarck runs on).
pub const PAGE_SIZE: usize = 8192;

/// Bytes reserved at the head of each page (row count + padding).
pub const PAGE_HEADER: usize = 8;

/// One 8 KiB page.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page").field("rows", &self.row_count()).finish()
    }
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// A fresh empty page.
    pub fn new() -> Self {
        Self { data: Box::new([0u8; PAGE_SIZE]) }
    }

    /// Bytes one row occupies for a `dim`-feature schema.
    pub const fn row_bytes(dim: usize) -> usize {
        (dim + 1) * 8
    }

    /// Rows a page can hold for a `dim`-feature schema.
    pub const fn rows_per_page(dim: usize) -> usize {
        (PAGE_SIZE - PAGE_HEADER) / Self::row_bytes(dim)
    }

    /// Number of rows currently stored.
    pub fn row_count(&self) -> usize {
        u32::from_le_bytes([self.data[0], self.data[1], self.data[2], self.data[3]]) as usize
    }

    fn set_row_count(&mut self, n: usize) {
        self.data[0..4].copy_from_slice(&(n as u32).to_le_bytes());
    }

    /// Whether a row of the given schema still fits.
    pub fn has_room(&self, dim: usize) -> bool {
        self.row_count() < Self::rows_per_page(dim)
    }

    /// Appends a row. Returns the slot index.
    ///
    /// # Errors
    /// [`DbError::RowTooLarge`] if even an empty page cannot hold the row;
    /// [`DbError::SlotOutOfBounds`] if the page is full.
    pub fn push_row(&mut self, features: &[f64], label: f64) -> DbResult<usize> {
        let dim = features.len();
        let capacity = Self::rows_per_page(dim);
        if capacity == 0 {
            return Err(DbError::RowTooLarge { dim });
        }
        let slot = self.row_count();
        if slot >= capacity {
            return Err(DbError::SlotOutOfBounds { slot, rows: capacity });
        }
        let mut offset = PAGE_HEADER + slot * Self::row_bytes(dim);
        for &v in features {
            self.data[offset..offset + 8].copy_from_slice(&v.to_le_bytes());
            offset += 8;
        }
        self.data[offset..offset + 8].copy_from_slice(&label.to_le_bytes());
        self.set_row_count(slot + 1);
        Ok(slot)
    }

    /// Reads the row at `slot` into `features_out`, returning the label.
    ///
    /// # Errors
    /// [`DbError::SlotOutOfBounds`] for a bad slot.
    ///
    /// # Panics
    /// Panics if `features_out.len()` disagrees with the schema the page was
    /// written with (callers own the schema; pages are schema-less bytes).
    pub fn read_row(&self, slot: usize, features_out: &mut [f64]) -> DbResult<f64> {
        let dim = features_out.len();
        if slot >= self.row_count() {
            return Err(DbError::SlotOutOfBounds { slot, rows: self.row_count() });
        }
        let mut offset = PAGE_HEADER + slot * Self::row_bytes(dim);
        for v in features_out.iter_mut() {
            *v =
                f64::from_le_bytes(self.data[offset..offset + 8].try_into().expect("8-byte slice"));
            offset += 8;
        }
        let label =
            f64::from_le_bytes(self.data[offset..offset + 8].try_into().expect("8-byte slice"));
        Ok(label)
    }

    /// Resets the page to empty (bytes retained, count zeroed).
    pub fn clear(&mut self) {
        self.set_row_count(0);
    }

    /// Raw bytes (for the heap file).
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Mutable raw bytes (for the heap file).
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_capacity_math() {
        // dim=50: row = 408 bytes; (8192-8)/408 = 20 rows.
        assert_eq!(Page::row_bytes(50), 408);
        assert_eq!(Page::rows_per_page(50), 20);
        // Degenerate: a row wider than a page.
        assert_eq!(Page::rows_per_page(2000), 0);
    }

    #[test]
    fn push_then_read_roundtrip() {
        let mut page = Page::new();
        let rows = [
            (vec![1.0, -2.5, 3.25], 1.0),
            (vec![0.0, 0.5, -0.5], -1.0),
            (vec![f64::MIN_POSITIVE, 1e300, -1e-300], 1.0),
        ];
        for (i, (x, y)) in rows.iter().enumerate() {
            assert_eq!(page.push_row(x, *y).unwrap(), i);
        }
        assert_eq!(page.row_count(), 3);
        let mut buf = vec![0.0; 3];
        for (i, (x, y)) in rows.iter().enumerate() {
            let label = page.read_row(i, &mut buf).unwrap();
            assert_eq!(&buf, x);
            assert_eq!(label, *y);
        }
    }

    #[test]
    fn page_fills_to_exact_capacity() {
        let dim = 100;
        let cap = Page::rows_per_page(dim);
        let mut page = Page::new();
        let x = vec![0.25; dim];
        for _ in 0..cap {
            page.push_row(&x, 1.0).unwrap();
        }
        assert!(matches!(page.push_row(&x, 1.0), Err(DbError::SlotOutOfBounds { .. })));
    }

    #[test]
    fn oversized_row_is_rejected() {
        let mut page = Page::new();
        let x = vec![0.0; 2000];
        assert!(matches!(page.push_row(&x, 1.0), Err(DbError::RowTooLarge { .. })));
    }

    #[test]
    fn read_bad_slot_fails() {
        let page = Page::new();
        let mut buf = vec![0.0; 2];
        assert!(matches!(page.read_row(0, &mut buf), Err(DbError::SlotOutOfBounds { .. })));
    }

    #[test]
    fn clear_resets_count() {
        let mut page = Page::new();
        page.push_row(&[1.0], 1.0).unwrap();
        page.clear();
        assert_eq!(page.row_count(), 0);
        assert!(page.has_room(1));
    }

    #[test]
    fn bytes_roundtrip_through_copy() {
        let mut page = Page::new();
        page.push_row(&[7.0, 8.0], -1.0).unwrap();
        let mut copy = Page::new();
        copy.bytes_mut().copy_from_slice(page.bytes());
        let mut buf = vec![0.0; 2];
        assert_eq!(copy.read_row(0, &mut buf).unwrap(), -1.0);
        assert_eq!(buf, vec![7.0, 8.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any batch of rows that fits in one page round-trips exactly,
        /// including non-finite and subnormal values (pages are raw bits).
        #[test]
        fn page_roundtrips_arbitrary_rows(
            dim in 1usize..64,
            raw_rows in proptest::collection::vec(
                (proptest::collection::vec(proptest::num::f64::ANY, 0..64), proptest::num::f64::ANY),
                1..12,
            ),
        ) {
            let mut page = Page::new();
            let capacity = Page::rows_per_page(dim);
            let mut written: Vec<(Vec<f64>, f64)> = Vec::new();
            for (values, label) in raw_rows {
                if written.len() == capacity.min(12) {
                    break;
                }
                // Resize the row to the page's schema width.
                let mut row = values;
                row.resize(dim, 0.0);
                page.push_row(&row, label).unwrap();
                written.push((row, label));
            }
            prop_assert_eq!(page.row_count(), written.len());
            let mut buf = vec![0.0; dim];
            for (slot, (row, label)) in written.iter().enumerate() {
                let got_label = page.read_row(slot, &mut buf).unwrap();
                // Bit-exact comparison (NaN-safe).
                prop_assert_eq!(got_label.to_bits(), label.to_bits());
                for (a, b) in buf.iter().zip(row.iter()) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }

        /// Capacity arithmetic: rows_per_page never overflows the page.
        #[test]
        fn capacity_fits_in_page(dim in 1usize..2000) {
            let capacity = Page::rows_per_page(dim);
            prop_assert!(PAGE_HEADER + capacity * Page::row_bytes(dim) <= PAGE_SIZE);
            // One more row would overflow.
            prop_assert!(PAGE_HEADER + (capacity + 1) * Page::row_bytes(dim) > PAGE_SIZE);
        }
    }
}

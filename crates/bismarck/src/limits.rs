//! Overload protection and cooperative cancellation for the serving layer.
//!
//! Three independent mechanisms, composed by [`crate::server`]:
//!
//! * **Rate limiting** — a [`TokenBucket`] per connection plus an optional
//!   global bucket cap statements/second. The deterministic arithmetic
//!   lives in [`TokenBucketCore`] (pure, microsecond timestamps in,
//!   micro-tokens inside), so the property tests drive it without a clock.
//! * **Admission control** — [`Admission`] bounds the statements executing
//!   concurrently across all sessions and [`IpQuota`] bounds connections
//!   per client address. Both *shed* (the caller answers
//!   `err busy retry_after_ms=N`) instead of queueing unboundedly.
//! * **Cancellation** — a [`CancelToken`] is armed with the statement
//!   deadline (`BOLTON_STMT_TIMEOUT_MS`) and flipped by the connection's
//!   reader thread on disconnect or by a draining server. Long read-side
//!   loops (TRAIN passes, table scans, batch scoring) poll it and bail by
//!   unwinding with a private marker that [`crate::session::Session`]
//!   catches at the statement boundary — locks release on the way out and
//!   no table or registry state has changed, because only read-only code
//!   paths carry cancellation points.

use crate::error::{DbError, DbResult};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

/// Why a statement was cancelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelCause {
    /// The statement ran past its armed deadline
    /// (`BOLTON_STMT_TIMEOUT_MS`, or the drain deadline capping it).
    Deadline,
    /// The client disconnected or the server is shutting down.
    Disconnect,
}

/// The panic payload cancellation points unwind with. Private to the
/// crate: [`crate::session::Session::execute`] catches it at the statement
/// boundary and turns it into [`DbError::Cancelled`]; anything else that
/// catches panics (the worker pool) re-raises payloads verbatim, so the
/// marker survives a parallel fan-out.
pub(crate) struct CancelUnwind(pub(crate) CancelCause);

/// Suppresses the default "thread panicked" stderr noise for the
/// cancellation marker — it is control flow, not a bug. Installed once,
/// chaining to the previous hook for every real panic.
fn install_quiet_cancel_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CancelUnwind>().is_none() {
                prev(info);
            }
        }));
    });
}

struct CancelState {
    epoch: Instant,
    cancelled: AtomicBool,
    /// Deadline in microseconds since `epoch`; `u64::MAX` = unarmed.
    deadline_us: AtomicU64,
}

/// A shared, cloneable cancellation flag with an optional deadline.
///
/// One token lives per connection: the server arms it with the statement
/// timeout before each execute and disarms it after; the reader thread
/// [`CancelToken::cancel`]s it when the client hangs up; a draining server
/// [`CancelToken::cap_deadline`]s every live token so in-flight statements
/// finish within the drain window or abort.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<CancelState>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A fresh token: not cancelled, no deadline.
    pub fn new() -> Self {
        install_quiet_cancel_hook();
        CancelToken {
            inner: Arc::new(CancelState {
                epoch: Instant::now(),
                cancelled: AtomicBool::new(false),
                deadline_us: AtomicU64::new(u64::MAX),
            }),
        }
    }

    fn now_us(&self) -> u64 {
        u64::try_from(self.inner.epoch.elapsed().as_micros()).unwrap_or(u64::MAX - 1)
    }

    /// Flags the token cancelled ([`CancelCause::Disconnect`]). Sticky.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Arms (or clears, with `None`) the statement deadline.
    pub fn arm(&self, timeout: Option<Duration>) {
        let deadline = match timeout {
            Some(t) => self.now_us().saturating_add(saturating_us(t)),
            None => u64::MAX,
        };
        self.inner.deadline_us.store(deadline, Ordering::Release);
    }

    /// Clears the deadline (statement finished).
    pub fn disarm(&self) {
        self.inner.deadline_us.store(u64::MAX, Ordering::Release);
    }

    /// Tightens the deadline to at most `remaining` from now (never
    /// loosens) — how a draining server bounds in-flight statements.
    pub fn cap_deadline(&self, remaining: Duration) {
        let cap = self.now_us().saturating_add(saturating_us(remaining));
        self.inner.deadline_us.fetch_min(cap, Ordering::AcqRel);
    }

    /// Why this token is triggered, if it is.
    pub fn cause(&self) -> Option<CancelCause> {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return Some(CancelCause::Disconnect);
        }
        if self.now_us() >= self.inner.deadline_us.load(Ordering::Acquire) {
            return Some(CancelCause::Deadline);
        }
        None
    }

    /// Errors with [`DbError::Cancelled`] when triggered — the check used
    /// at statement boundaries, where an `Err` return is available.
    ///
    /// # Errors
    /// [`DbError::Cancelled`] when cancelled or past the deadline.
    pub fn check(&self) -> DbResult<()> {
        match self.cause() {
            Some(cause) => Err(DbError::Cancelled(cause)),
            None => Ok(()),
        }
    }

    /// A cancellation point for visitor callbacks and pool closures that
    /// cannot return an error: unwinds with the crate-private marker when
    /// triggered. Only reachable under [`crate::session::Session::execute`],
    /// which catches the marker and releases locks on the way out.
    pub(crate) fn bail_point(&self) {
        if let Some(cause) = self.cause() {
            std::panic::panic_any(CancelUnwind(cause));
        }
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CancelToken(cause={:?})", self.cause())
    }
}

fn saturating_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------------
// Token bucket
// ---------------------------------------------------------------------------

/// Micro-tokens per token: the bucket does integer arithmetic at 1e-6
/// token granularity so sub-second refill never rounds to zero.
const MICRO: u64 = 1_000_000;

/// The pure token-bucket arithmetic: timestamps in, verdicts out. No
/// clock, no locks — the property tests replay arbitrary timelines
/// through it deterministically.
#[derive(Clone, Debug)]
pub struct TokenBucketCore {
    /// Refill rate in tokens/second (= micro-tokens per microsecond).
    rate: u64,
    /// Capacity in micro-tokens.
    burst_micro: u64,
    /// Currently available micro-tokens.
    available_micro: u64,
    /// Timestamp of the last refill, µs on the caller's clock.
    last_us: u64,
}

impl TokenBucketCore {
    /// A bucket refilling at `rate_per_sec` tokens/second, holding at most
    /// `burst` tokens, starting full. Both are clamped to ≥ 1.
    pub fn new(rate_per_sec: u64, burst: u64) -> Self {
        let burst_micro = burst.max(1).saturating_mul(MICRO);
        TokenBucketCore {
            rate: rate_per_sec.max(1),
            burst_micro,
            available_micro: burst_micro,
            last_us: 0,
        }
    }

    /// Advances the bucket to `now_us`, crediting elapsed-time refill.
    /// Time never runs backwards: a stale `now_us` is clamped forward.
    fn refill(&mut self, now_us: u64) {
        let now = now_us.max(self.last_us);
        let elapsed = now - self.last_us;
        let add = u64::try_from(u128::from(elapsed) * u128::from(self.rate)).unwrap_or(u64::MAX);
        self.available_micro = self.available_micro.saturating_add(add).min(self.burst_micro);
        self.last_us = now;
    }

    /// Takes one token at time `now_us`.
    ///
    /// # Errors
    /// When the bucket is empty, returns the µs until one token refills —
    /// the `retry_after` the server puts on the wire.
    pub fn try_acquire(&mut self, now_us: u64) -> Result<(), u64> {
        self.refill(now_us);
        if self.available_micro >= MICRO {
            self.available_micro -= MICRO;
            Ok(())
        } else {
            Err((MICRO - self.available_micro).div_ceil(self.rate))
        }
    }

    /// Available micro-tokens after refilling to `now_us` (tests).
    pub fn available_micro_at(&mut self, now_us: u64) -> u64 {
        self.refill(now_us);
        self.available_micro
    }
}

/// A thread-safe token bucket on the real clock.
pub struct TokenBucket {
    core: Mutex<TokenBucketCore>,
    epoch: Instant,
}

impl TokenBucket {
    /// See [`TokenBucketCore::new`].
    pub fn new(rate_per_sec: u64, burst: u64) -> Self {
        TokenBucket {
            core: Mutex::new(TokenBucketCore::new(rate_per_sec, burst)),
            epoch: Instant::now(),
        }
    }

    /// Takes one token now.
    ///
    /// # Errors
    /// When empty, returns how long until one token refills.
    pub fn try_acquire(&self) -> Result<(), Duration> {
        let now_us = u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX - 1);
        self.core
            .lock()
            .expect("token bucket lock")
            .try_acquire(now_us)
            .map_err(Duration::from_micros)
    }
}

impl std::fmt::Debug for TokenBucket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TokenBucket({:?})", self.core.lock().expect("token bucket lock"))
    }
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

/// A shedding semaphore over the statements executing concurrently.
/// `try_acquire` never blocks: either a permit is free or the caller sheds
/// the request — the queue an overloaded server would otherwise grow lives
/// in the clients' retry loops, bounded by their `retry_after_ms`.
pub struct Admission {
    max: usize,
    active: AtomicUsize,
}

impl Admission {
    /// A controller admitting at most `max` concurrent statements (≥ 1).
    pub fn new(max: usize) -> Arc<Self> {
        Arc::new(Admission { max: max.max(1), active: AtomicUsize::new(0) })
    }

    /// Claims a permit, or `None` when the server is saturated.
    pub fn try_acquire(self: &Arc<Self>) -> Option<AdmissionPermit> {
        let mut cur = self.active.load(Ordering::Relaxed);
        loop {
            if cur >= self.max {
                return None;
            }
            match self.active.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(AdmissionPermit(Arc::clone(self))),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Statements currently holding a permit.
    pub fn in_flight(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// The permit cap.
    pub fn max(&self) -> usize {
        self.max
    }
}

/// One admitted statement; dropping it (normal return or unwind) releases
/// the permit, so a cancelled or panicking statement can never leak one.
pub struct AdmissionPermit(Arc<Admission>);

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::AcqRel);
    }
}

// ---------------------------------------------------------------------------
// Per-address connection quota
// ---------------------------------------------------------------------------

/// Bounds live connections per client address (`BOLTON_MAX_CONN_PER_IP`),
/// so one greedy host cannot monopolize the global connection budget.
/// Keys are strings: an IP for TCP, `"local"` for Unix sockets.
pub struct IpQuota {
    max_per_key: usize,
    counts: Mutex<HashMap<String, usize>>,
}

impl IpQuota {
    /// A quota of `max_per_key` connections per address (≥ 1).
    pub fn new(max_per_key: usize) -> Arc<Self> {
        Arc::new(IpQuota { max_per_key: max_per_key.max(1), counts: Mutex::new(HashMap::new()) })
    }

    /// Claims a slot for `key`, or `None` when the address is at its cap.
    pub fn try_acquire(self: &Arc<Self>, key: &str) -> Option<IpPermit> {
        let mut counts = self.counts.lock().expect("ip quota lock");
        let count = counts.entry(key.to_string()).or_insert(0);
        if *count >= self.max_per_key {
            return None;
        }
        *count += 1;
        Some(IpPermit { quota: Arc::clone(self), key: key.to_string() })
    }

    /// Live connections for `key`.
    pub fn count(&self, key: &str) -> usize {
        self.counts.lock().expect("ip quota lock").get(key).copied().unwrap_or(0)
    }
}

/// One connection's slot under its address quota; dropped on disconnect.
pub struct IpPermit {
    quota: Arc<IpQuota>,
    key: String,
}

impl Drop for IpPermit {
    fn drop(&mut self) {
        let mut counts = self.quota.counts.lock().expect("ip quota lock");
        if let Some(count) = counts.get_mut(&self.key) {
            *count -= 1;
            if *count == 0 {
                counts.remove(&self.key);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Limits configuration
// ---------------------------------------------------------------------------

/// The resilience knobs, all off by default (zero = disabled) except the
/// drain window. [`Limits::from_env`] reads the `BOLTON_*` environment the
/// `bismarck_serve` binary documents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Limits {
    /// Per-statement deadline in ms (`BOLTON_STMT_TIMEOUT_MS`; 0 = none).
    pub stmt_timeout_ms: u64,
    /// Per-connection statements/sec (`BOLTON_RATE_LIMIT`; 0 = unlimited).
    pub rate_limit: u64,
    /// Whole-server statements/sec (`BOLTON_GLOBAL_RATE_LIMIT`; 0 = unlimited).
    pub global_rate_limit: u64,
    /// Connections per client address (`BOLTON_MAX_CONN_PER_IP`; 0 = unlimited).
    pub max_conn_per_ip: usize,
    /// Concurrently executing statements (`BOLTON_MAX_ACTIVE_STMTS`;
    /// 0 = unlimited) — the admission-control semaphore.
    pub max_active_statements: usize,
    /// Close connections idle longer than this, in ms
    /// (`BOLTON_IDLE_TIMEOUT_MS`; 0 = never reap).
    pub idle_timeout_ms: u64,
    /// Slow-loris defense: a started statement line must complete within
    /// this many ms, and blocked response writes time out after it too
    /// (`BOLTON_READ_TIMEOUT_MS`; 0 = no deadline).
    pub read_timeout_ms: u64,
    /// Graceful-drain window for in-flight statements on SHUTDOWN/SIGTERM,
    /// in ms (`BOLTON_DRAIN_TIMEOUT_MS`).
    pub drain_timeout_ms: u64,
    /// Executor threads per v2 (pipelined) connection — the concurrency of
    /// one connection's in-flight statements (`BOLTON_PIPELINE_EXECUTORS`;
    /// clamped to ≥ 1).
    pub pipeline_executors: usize,
    /// Maximum queued-but-unstarted pipelined requests per v2 connection;
    /// beyond it the connection's reader stops pulling frames, so
    /// backpressure lands on the client's socket
    /// (`BOLTON_PIPELINE_DEPTH`; clamped to ≥ 1).
    pub pipeline_depth: usize,
    /// Engines (cache shards) in the shared parse/plan pool
    /// (`BOLTON_PARSE_ENGINES`; clamped to ≥ 1).
    pub parse_engines: usize,
    /// Parsed statements cached per engine (`BOLTON_PARSE_CACHE`;
    /// 0 disables the parse cache).
    pub parse_cache: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            stmt_timeout_ms: 0,
            rate_limit: 0,
            global_rate_limit: 0,
            max_conn_per_ip: 0,
            max_active_statements: 0,
            idle_timeout_ms: 0,
            read_timeout_ms: 0,
            drain_timeout_ms: 5_000,
            pipeline_executors: 4,
            pipeline_depth: 64,
            parse_engines: 4,
            parse_cache: 256,
        }
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) if !v.trim().is_empty() => {
            v.trim().parse().unwrap_or_else(|_| panic!("{name}: expected an integer, got '{v}'"))
        }
        _ => default,
    }
}

impl Limits {
    /// Reads every knob from the environment, defaulting as
    /// [`Limits::default`].
    ///
    /// # Panics
    /// On unparseable values, like the rest of the `BOLTON_*` knobs.
    pub fn from_env() -> Self {
        let d = Limits::default();
        Limits {
            stmt_timeout_ms: env_u64("BOLTON_STMT_TIMEOUT_MS", d.stmt_timeout_ms),
            rate_limit: env_u64("BOLTON_RATE_LIMIT", d.rate_limit),
            global_rate_limit: env_u64("BOLTON_GLOBAL_RATE_LIMIT", d.global_rate_limit),
            max_conn_per_ip: env_u64("BOLTON_MAX_CONN_PER_IP", d.max_conn_per_ip as u64) as usize,
            max_active_statements: env_u64(
                "BOLTON_MAX_ACTIVE_STMTS",
                d.max_active_statements as u64,
            ) as usize,
            idle_timeout_ms: env_u64("BOLTON_IDLE_TIMEOUT_MS", d.idle_timeout_ms),
            read_timeout_ms: env_u64("BOLTON_READ_TIMEOUT_MS", d.read_timeout_ms),
            drain_timeout_ms: env_u64("BOLTON_DRAIN_TIMEOUT_MS", d.drain_timeout_ms),
            pipeline_executors: env_u64("BOLTON_PIPELINE_EXECUTORS", d.pipeline_executors as u64)
                as usize,
            pipeline_depth: env_u64("BOLTON_PIPELINE_DEPTH", d.pipeline_depth as u64) as usize,
            parse_engines: env_u64("BOLTON_PARSE_ENGINES", d.parse_engines as u64) as usize,
            parse_cache: env_u64("BOLTON_PARSE_CACHE", d.parse_cache as u64) as usize,
        }
    }

    /// The statement deadline, if any.
    pub fn stmt_timeout(&self) -> Option<Duration> {
        (self.stmt_timeout_ms > 0).then(|| Duration::from_millis(self.stmt_timeout_ms))
    }

    /// The idle-connection reap threshold, if any.
    pub fn idle_timeout(&self) -> Option<Duration> {
        (self.idle_timeout_ms > 0).then(|| Duration::from_millis(self.idle_timeout_ms))
    }

    /// The per-line read (and response write) deadline, if any.
    pub fn read_timeout(&self) -> Option<Duration> {
        (self.read_timeout_ms > 0).then(|| Duration::from_millis(self.read_timeout_ms))
    }

    /// The graceful-drain window.
    pub fn drain_timeout(&self) -> Duration {
        Duration::from_millis(self.drain_timeout_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_grants_burst_then_refills_at_rate() {
        // 10 tokens/sec, burst 2: two immediate grants, then a 100 ms cadence.
        let mut b = TokenBucketCore::new(10, 2);
        assert_eq!(b.try_acquire(0), Ok(()));
        assert_eq!(b.try_acquire(0), Ok(()));
        let retry = b.try_acquire(0).unwrap_err();
        assert_eq!(retry, 100_000, "one token refills in 1/rate seconds");
        // 99 ms later: still short.
        assert!(b.try_acquire(99_000).is_err());
        // At exactly 100 ms the token is back.
        assert_eq!(b.try_acquire(100_000), Ok(()));
    }

    #[test]
    fn bucket_never_exceeds_burst_after_idle() {
        let mut b = TokenBucketCore::new(1_000, 3);
        // A long idle period must not bank more than the burst.
        assert_eq!(b.available_micro_at(3_600_000_000), 3 * MICRO);
        for _ in 0..3 {
            assert!(b.try_acquire(3_600_000_000).is_ok());
        }
        assert!(b.try_acquire(3_600_000_000).is_err());
    }

    #[test]
    fn bucket_clamps_backwards_time() {
        let mut b = TokenBucketCore::new(1, 1);
        assert!(b.try_acquire(5_000_000).is_ok());
        // A stale timestamp neither panics nor double-credits refill.
        let avail_then = b.available_micro_at(1_000_000);
        assert!(avail_then < MICRO, "no token from going backwards, got {avail_then}");
    }

    #[test]
    fn token_bucket_real_clock_sheds_with_retry_after() {
        let b = TokenBucket::new(5, 1);
        assert!(b.try_acquire().is_ok());
        let retry = b.try_acquire().unwrap_err();
        assert!(retry <= Duration::from_millis(200), "retry_after bounded by 1/rate: {retry:?}");
    }

    #[test]
    fn admission_sheds_at_the_cap_and_permits_release_on_drop() {
        let a = Admission::new(2);
        let p1 = a.try_acquire().unwrap();
        let _p2 = a.try_acquire().unwrap();
        assert!(a.try_acquire().is_none(), "cap reached");
        assert_eq!(a.in_flight(), 2);
        drop(p1);
        assert_eq!(a.in_flight(), 1);
        assert!(a.try_acquire().is_some(), "released permit is reusable");
    }

    #[test]
    fn ip_quota_caps_per_key_and_cleans_up() {
        let q = IpQuota::new(2);
        let a1 = q.try_acquire("10.0.0.1").unwrap();
        let _a2 = q.try_acquire("10.0.0.1").unwrap();
        assert!(q.try_acquire("10.0.0.1").is_none(), "per-address cap");
        let _b1 = q.try_acquire("10.0.0.2").unwrap();
        assert_eq!(q.count("10.0.0.1"), 2);
        drop(a1);
        assert_eq!(q.count("10.0.0.1"), 1);
        assert!(q.try_acquire("10.0.0.1").is_some());
    }

    #[test]
    fn cancel_token_deadline_and_disconnect_report_their_cause() {
        let t = CancelToken::new();
        assert_eq!(t.cause(), None);
        t.arm(Some(Duration::ZERO));
        assert_eq!(t.cause(), Some(CancelCause::Deadline));
        assert!(matches!(t.check(), Err(DbError::Cancelled(CancelCause::Deadline))));
        t.disarm();
        assert_eq!(t.cause(), None);
        t.cancel();
        assert_eq!(t.cause(), Some(CancelCause::Disconnect), "disconnect wins over no deadline");
    }

    #[test]
    fn cap_deadline_only_tightens() {
        let t = CancelToken::new();
        t.arm(Some(Duration::from_secs(3600)));
        t.cap_deadline(Duration::ZERO);
        assert_eq!(t.cause(), Some(CancelCause::Deadline), "cap tightened the deadline");
        let t2 = CancelToken::new();
        t2.arm(Some(Duration::ZERO));
        t2.cap_deadline(Duration::from_secs(3600));
        assert_eq!(t2.cause(), Some(CancelCause::Deadline), "cap never loosens");
    }

    #[test]
    fn bail_point_unwinds_with_the_private_marker() {
        let t = CancelToken::new();
        t.cancel();
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| t.bail_point())).unwrap_err();
        let marker = caught.downcast::<CancelUnwind>().expect("marker payload");
        assert_eq!(marker.0, CancelCause::Disconnect);
    }

    #[test]
    fn limits_default_is_all_off_except_drain() {
        let l = Limits::default();
        assert_eq!(l.stmt_timeout(), None);
        assert_eq!(l.idle_timeout(), None);
        assert_eq!(l.read_timeout(), None);
        assert_eq!(l.drain_timeout(), Duration::from_millis(5_000));
        assert_eq!(l.rate_limit, 0);
        assert_eq!(l.max_conn_per_ip, 0);
        assert_eq!(l.max_active_statements, 0);
        // The protocol-v2 machinery defaults *on*: shedding stays opt-in,
        // but pipelining and the parse cache are core serving behavior.
        assert_eq!(l.pipeline_executors, 4);
        assert_eq!(l.pipeline_depth, 64);
        assert_eq!(l.parse_engines, 4);
        assert_eq!(l.parse_cache, 256);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The defining token-bucket property: over *any* window of the
        /// acquisition history, the number of granted tokens never exceeds
        /// `burst + rate · window` — one grant can spend stored burst, the
        /// rest must be paid for by elapsed time.
        #[test]
        fn grants_never_exceed_rate_over_any_window(
            rate in 1u64..50,
            burst in 1u64..20,
            steps in proptest::collection::vec((0u64..200_000, 1u64..4), 1..120),
        ) {
            let mut bucket = TokenBucketCore::new(rate, burst);
            let mut now_us = 0u64;
            let mut grants: Vec<u64> = Vec::new();
            for (advance_us, attempts) in steps {
                now_us += advance_us;
                for _ in 0..attempts {
                    if bucket.try_acquire(now_us).is_ok() {
                        grants.push(now_us);
                    }
                }
            }
            // Check every window [grants[i], grants[j]].
            for i in 0..grants.len() {
                for j in i..grants.len() {
                    let window_us = grants[j] - grants[i];
                    let granted = (j - i + 1) as u128;
                    // granted tokens ≤ burst + rate·window (in µ-tokens,
                    // so the comparison is exact integer arithmetic).
                    prop_assert!(
                        granted * u128::from(MICRO)
                            <= u128::from(burst) * u128::from(MICRO)
                                + u128::from(window_us) * u128::from(rate),
                        "{granted} grants in a {window_us}µs window at rate {rate}/s burst {burst}"
                    );
                }
            }
        }

        /// Refill is monotone in time and capped at the burst: observing
        /// the bucket at any ascending timestamps (without acquiring)
        /// never decreases the balance and never exceeds the burst.
        #[test]
        fn refill_is_monotone_and_capped(
            rate in 1u64..1_000,
            burst in 1u64..50,
            drains in 0u64..30,
            advances in proptest::collection::vec(0u64..100_000, 1..60),
        ) {
            let mut bucket = TokenBucketCore::new(rate, burst);
            // Start from an arbitrary partially-drained state.
            for _ in 0..drains {
                let _ = bucket.try_acquire(0);
            }
            let mut now_us = 0u64;
            let mut prev = bucket.available_micro_at(0);
            for advance_us in advances {
                now_us += advance_us;
                let avail = bucket.available_micro_at(now_us);
                prop_assert!(avail >= prev, "refill went backwards: {prev} -> {avail}");
                prop_assert!(avail <= burst * MICRO, "refill overshot the burst");
                prev = avail;
            }
        }

        /// The `retry_after` hint is honest: a denied acquisition at time
        /// `t` succeeds at `t + retry` (and the hint is never zero).
        #[test]
        fn retry_after_hint_is_sufficient(
            rate in 1u64..1_000,
            burst in 1u64..20,
            spend in proptest::collection::vec(0u64..50_000, 1..40),
        ) {
            let mut bucket = TokenBucketCore::new(rate, burst);
            let mut now_us = 0u64;
            for advance_us in spend {
                now_us += advance_us;
                if let Err(retry_us) = bucket.try_acquire(now_us) {
                    prop_assert!(retry_us > 0, "empty bucket promised instant retry");
                    now_us += retry_us;
                    prop_assert!(
                        bucket.try_acquire(now_us).is_ok(),
                        "retry_after={retry_us}µs was not enough at rate {rate}/s"
                    );
                }
            }
        }
    }
}

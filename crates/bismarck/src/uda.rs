//! User-Defined Aggregates: the `initialize / transition / terminate` API
//! that in-RDBMS analytics builds on (paper Section 4.2).
//!
//! An aggregate is a stateful object fed one tuple at a time by the
//! executor, exactly like a PostgreSQL C UDA. The SGD epoch is "just another
//! aggregate" next to `AVG` — that architectural equivalence (Figure 1) is
//! what makes the bolt-on approach possible.

use crate::error::DbResult;
use crate::table::Table;
use bolton_linalg::vector;
use bolton_sgd::engine::BatchPlan;
use bolton_sgd::loss::Loss;
use bolton_sgd::schedule::StepSize;

/// The per-batch gradient-noise callback type (Figure 1 (C)): invoked with
/// the 1-based update counter and the mean mini-batch gradient.
pub type BatchNoiseFn<'a> = dyn FnMut(u64, &mut [f64]) + 'a;

/// A user-defined aggregate over `(features, label)` tuples.
pub trait Aggregate {
    /// The value produced at end of scan.
    type Output;

    /// Resets the aggregation state (`initialize` in the UDA C API).
    fn initialize(&mut self);

    /// Consumes one tuple (`transition`).
    fn transition(&mut self, features: &[f64], label: f64);

    /// Produces the result (`terminate`).
    fn terminate(&mut self) -> Self::Output;
}

/// Runs an aggregate over a full sequential scan of `table`.
///
/// # Errors
/// Propagates storage errors from the scan.
pub fn run_aggregate<A: Aggregate>(table: &Table, agg: &mut A) -> DbResult<A::Output> {
    agg.initialize();
    table.scan_rows(&mut |_, x, y| agg.transition(x, y))?;
    Ok(agg.terminate())
}

/// The paper's warm-up example: `AVG` over one feature column, with state
/// `(sum, count)`.
#[derive(Clone, Copy, Debug)]
pub struct AvgAggregate {
    /// Which feature column to average; `None` averages the label.
    pub column: Option<usize>,
    sum: f64,
    count: u64,
}

impl AvgAggregate {
    /// Average of feature column `column`.
    pub fn over_column(column: usize) -> Self {
        Self { column: Some(column), sum: 0.0, count: 0 }
    }

    /// Average of the label.
    pub fn over_label() -> Self {
        Self { column: None, sum: 0.0, count: 0 }
    }
}

impl Aggregate for AvgAggregate {
    type Output = Option<f64>;

    fn initialize(&mut self) {
        self.sum = 0.0;
        self.count = 0;
    }

    fn transition(&mut self, features: &[f64], label: f64) {
        self.sum += match self.column {
            Some(c) => features[c],
            None => label,
        };
        self.count += 1;
    }

    fn terminate(&mut self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

/// Per-column summary statistics (`ANALYZE`): min/max/mean/std per feature
/// column plus the label, via one scan (Welford accumulators).
#[derive(Clone, Debug)]
pub struct ColumnStatsAggregate {
    stats: Vec<bolton_linalg::OnlineStats>,
}

/// One column's summary from [`ColumnStatsAggregate`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ColumnSummary {
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
}

impl ColumnStatsAggregate {
    /// Creates an aggregate for a `dim`-feature table (the label is tracked
    /// as a final extra column).
    pub fn new(dim: usize) -> Self {
        Self { stats: vec![bolton_linalg::OnlineStats::new(); dim + 1] }
    }
}

impl Aggregate for ColumnStatsAggregate {
    type Output = Vec<ColumnSummary>;

    fn initialize(&mut self) {
        for s in &mut self.stats {
            *s = bolton_linalg::OnlineStats::new();
        }
    }

    fn transition(&mut self, features: &[f64], label: f64) {
        for (s, v) in self.stats.iter_mut().zip(features.iter().chain(std::iter::once(&label))) {
            s.push(*v);
        }
    }

    fn terminate(&mut self) -> Vec<ColumnSummary> {
        self.stats
            .iter()
            .map(|s| ColumnSummary {
                min: s.min(),
                max: s.max(),
                mean: s.mean(),
                std_dev: s.std_dev(),
            })
            .collect()
    }
}

/// One epoch of mini-batch (projected) SGD as a UDA.
///
/// The driver seeds `model` with the previous epoch's output and `t0` with
/// the global update counter so step-size schedules continue across epochs —
/// mirroring how Bismarck's Python controller re-invokes the SGD UDA with
/// the prior model each epoch.
///
/// `batch_noise`, when set, is invoked on every mean mini-batch gradient
/// before the update. This is the "(C)" integration point of Figure 1 that
/// SCS13/BST14 need — note that supporting it required modifying this
/// transition logic, whereas output perturbation never touches this file.
pub struct SgdEpochAggregate<'a> {
    loss: &'a dyn Loss,
    step: StepSize,
    plan: BatchPlan,
    projection_radius: Option<f64>,
    model: Vec<f64>,
    t0: u64,
    batch_noise: Option<&'a mut BatchNoiseFn<'a>>,
    grad: Vec<f64>,
    in_batch: usize,
    batch_idx: usize,
    t: u64,
}

impl<'a> SgdEpochAggregate<'a> {
    /// Builds an epoch aggregate starting from `model` at global update
    /// counter `t0`, over a pass of `pass_rows` tuples (needed up front to
    /// plan the balanced mini-batch partition the sensitivity analysis
    /// assumes — the driver knows the cardinality from the catalog).
    ///
    /// # Panics
    /// Panics if `batch_size == 0` or `pass_rows == 0`.
    pub fn new(
        loss: &'a dyn Loss,
        step: StepSize,
        batch_size: usize,
        projection_radius: Option<f64>,
        model: Vec<f64>,
        t0: u64,
        pass_rows: usize,
    ) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        let dim = model.len();
        Self {
            loss,
            step,
            plan: BatchPlan::new(pass_rows, batch_size),
            projection_radius,
            model,
            t0,
            batch_noise: None,
            grad: vec![0.0; dim],
            in_batch: 0,
            batch_idx: 0,
            t: t0,
        }
    }

    /// Installs a per-batch gradient noise hook (the SCS13/BST14 path).
    pub fn with_batch_noise(mut self, hook: &'a mut BatchNoiseFn<'a>) -> Self {
        self.batch_noise = Some(hook);
        self
    }

    fn flush_batch(&mut self) {
        if self.in_batch == 0 {
            return;
        }
        self.t += 1;
        vector::scale(1.0 / self.in_batch as f64, &mut self.grad);
        if let Some(hook) = self.batch_noise.as_mut() {
            hook(self.t, &mut self.grad);
        }
        let eta = self.step.eta(self.t);
        vector::axpy(-eta, &self.grad, &mut self.model);
        if let Some(r) = self.projection_radius {
            vector::project_l2_ball(&mut self.model, r);
        }
        vector::fill_zero(&mut self.grad);
        self.in_batch = 0;
        self.batch_idx += 1;
    }
}

/// The epoch's result: the updated model plus the advanced update counter.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochOutput {
    /// Model after the epoch.
    pub model: Vec<f64>,
    /// Global update counter after the epoch (pass back as next `t0`).
    pub t: u64,
}

impl Aggregate for SgdEpochAggregate<'_> {
    type Output = EpochOutput;

    fn initialize(&mut self) {
        vector::fill_zero(&mut self.grad);
        self.in_batch = 0;
        self.batch_idx = 0;
        self.t = self.t0;
    }

    fn transition(&mut self, features: &[f64], label: f64) {
        self.loss.add_gradient(&self.model, features, label, &mut self.grad);
        self.in_batch += 1;
        if self.batch_idx < self.plan.batches && self.in_batch == self.plan.size_of(self.batch_idx)
        {
            self.flush_batch();
        }
    }

    fn terminate(&mut self) -> EpochOutput {
        self.flush_batch();
        EpochOutput { model: self.model.clone(), t: self.t }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolton_sgd::loss::Logistic;

    fn table_with(rows: &[(Vec<f64>, f64)]) -> Table {
        let mut t = Table::in_memory("t", rows[0].0.len());
        for (x, y) in rows {
            t.insert(x, *y).unwrap();
        }
        t
    }

    #[test]
    fn avg_matches_manual() {
        let t =
            table_with(&[(vec![1.0, 10.0], 1.0), (vec![2.0, 20.0], -1.0), (vec![3.0, 30.0], 1.0)]);
        let mut avg0 = AvgAggregate::over_column(0);
        assert_eq!(run_aggregate(&t, &mut avg0).unwrap(), Some(2.0));
        let mut avg1 = AvgAggregate::over_column(1);
        assert_eq!(run_aggregate(&t, &mut avg1).unwrap(), Some(20.0));
        let mut avgl = AvgAggregate::over_label();
        assert!((run_aggregate(&t, &mut avgl).unwrap().unwrap() - (1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn avg_of_empty_is_none() {
        let t = Table::in_memory("empty", 2);
        let mut avg = AvgAggregate::over_column(0);
        assert_eq!(run_aggregate(&t, &mut avg).unwrap(), None);
    }

    #[test]
    fn aggregate_is_reusable_after_initialize() {
        let t = table_with(&[(vec![4.0], 1.0), (vec![6.0], 1.0)]);
        let mut avg = AvgAggregate::over_column(0);
        assert_eq!(run_aggregate(&t, &mut avg).unwrap(), Some(5.0));
        // Second run must not see stale state.
        assert_eq!(run_aggregate(&t, &mut avg).unwrap(), Some(5.0));
    }

    /// The in-RDBMS epoch must compute exactly what the in-memory engine
    /// computes on the same data in the same order.
    #[test]
    fn sgd_epoch_matches_in_memory_engine() {
        use bolton_sgd::{engine, InMemoryDataset, SgdConfig};
        let rows: Vec<(Vec<f64>, f64)> = (0..57)
            .map(|i| {
                let x0 = ((i * 37) % 100) as f64 / 100.0 - 0.5;
                (vec![x0, 0.3], if x0 > 0.0 { 1.0 } else { -1.0 })
            })
            .collect();
        let table = table_with(&rows);
        let loss = Logistic::plain();
        let step = StepSize::Constant(0.3);
        let batch = 5;

        // In-memory engine, identity order, one pass.
        let examples: Vec<bolton_sgd::dataset::Example> = rows
            .iter()
            .map(|(x, y)| bolton_sgd::dataset::Example { features: x.clone(), label: *y })
            .collect();
        let mem = InMemoryDataset::from_examples(&examples);
        let config = SgdConfig::new(step).with_batch_size(batch);
        let orders = vec![(0..rows.len()).collect::<Vec<_>>()];
        let expected = engine::run_with_orders(&mem, &loss, &config, &orders, &mut |_, _| {});

        // UDA path over the table (storage order is insertion order).
        let mut agg = SgdEpochAggregate::new(&loss, step, batch, None, vec![0.0; 2], 0, rows.len());
        let got = run_aggregate(&table, &mut agg).unwrap();

        assert_eq!(got.t, expected.updates);
        for (a, b) in got.model.iter().zip(expected.model.iter()) {
            assert!((a - b).abs() < 1e-12, "UDA {a} vs engine {b}");
        }
    }

    #[test]
    fn epoch_counter_continues_across_epochs() {
        let t = table_with(&vec![(vec![0.5], 1.0); 10]);
        let loss = Logistic::plain();
        let mut agg = SgdEpochAggregate::new(&loss, StepSize::InvSqrtT, 3, None, vec![0.0], 0, 10);
        let out1 = run_aggregate(&t, &mut agg).unwrap();
        assert_eq!(out1.t, 4); // ⌈10/3⌉
        let mut agg2 =
            SgdEpochAggregate::new(&loss, StepSize::InvSqrtT, 3, None, out1.model, out1.t, 10);
        let out2 = run_aggregate(&t, &mut agg2).unwrap();
        assert_eq!(out2.t, 8);
    }

    #[test]
    fn batch_noise_hook_fires_per_batch() {
        let t = table_with(&vec![(vec![0.5], 1.0); 10]);
        let loss = Logistic::plain();
        let mut calls = Vec::new();
        {
            let mut hook = |t: u64, _g: &mut [f64]| calls.push(t);
            let mut agg =
                SgdEpochAggregate::new(&loss, StepSize::InvSqrtT, 4, None, vec![0.0], 0, 10)
                    .with_batch_noise(&mut hook);
            run_aggregate(&t, &mut agg).unwrap();
        }
        assert_eq!(calls, vec![1, 2, 3]); // batches of 4, 4, 2
    }

    #[test]
    fn projection_applies_in_uda_path() {
        let t = table_with(&vec![(vec![1.0], 1.0); 20]);
        let loss = Logistic::plain();
        let mut agg =
            SgdEpochAggregate::new(&loss, StepSize::Constant(5.0), 1, Some(0.1), vec![0.0], 0, 20);
        let out = run_aggregate(&t, &mut agg).unwrap();
        assert!(vector::norm(&out.model) <= 0.1 + 1e-12);
    }
}

//! The shared database: one process-wide [`Db`] that any number of
//! [`crate::session::Session`]s drive concurrently.
//!
//! Concurrency model (two-level locking, always acquired catalog → table):
//!
//! * The **catalog map** is an `RwLock` over `name → Arc<RwLock<Table>>`.
//!   Lookups take the read lock just long enough to clone the `Arc`;
//!   CREATE/DROP take the write lock for a map edit only — never while any
//!   table work runs.
//! * Each **table** is its own `RwLock`. Scans (`SELECT`, `EVAL`, `TRAIN`
//!   — training never mutates the table: sampling orders come from the
//!   engine's permutation schemes, not an in-place shuffle) share the read
//!   lock, so any number of readers overlap with one long-running trainer.
//!   `INSERT`/`SHUFFLE`/`SYNTH` take the table write lock.
//! * Below both, the table's buffer pool has its own page latch
//!   ([`crate::table::Table`]), so concurrent readers of one table
//!   interleave at page granularity without torn reads.
//!
//! Shared **models** live in a third map (`name → Arc<[f64]>`): `TRAIN`
//! publishes, `EVAL` reads, `SAVE MODEL` commits to the optional on-disk
//! [`ModelRegistry`], and `LOAD MODEL` republishes a committed version.
//!
//! # Durability
//!
//! A `Db` opened on a data directory ([`Db::open`]) makes tables
//! crash-safe. Every mutation appends a [`WalRecord`] to the write-ahead
//! log *while holding the same lock that serializes the mutation*, so the
//! log order equals the apply order; the record is fsynced (group commit)
//! after the lock drops and **before** the statement is acknowledged.
//! [`Db::checkpoint`] freezes the catalog under read locks, snapshots
//! every table into the `bolton_data` row-store chunk format inside a
//! `checkpoint-N/` directory, commits it by atomically rewriting the
//! `CURRENT` pointer file, then truncates the log. Recovery in `Db::open`
//! loads the `CURRENT` checkpoint and replays only records with
//! `lsn > checkpoint_lsn`, stopping cleanly at a torn log tail — so a
//! second recovery of the same directory is bit-identical (idempotent).
//!
//! ```text
//! data-dir/
//!   CURRENT            → "checkpoint-3"   (atomically swapped pointer)
//!   checkpoint-3/
//!     CATALOG          lsn + one line per table
//!     <table>.rowstore PR-4 chunked row store, one per non-empty table
//!   wal-000004.log     log segments; checkpoints delete covered ones
//!   wal-000005.log     (the highest segment is the one being appended)
//! ```
//!
//! All write-side I/O goes through the [`Vfs`], so the
//! crash tests drive every window of this protocol deterministically with
//! [`FaultVfs`](crate::fault::FaultVfs).

use crate::catalog::Catalog;
use crate::error::{DbError, DbResult};
use crate::fault::{StdVfs, Vfs};
use crate::heap::Backing;
use crate::page::Page;
use crate::registry::ModelRegistry;
use crate::synth::SynthSpec;
use crate::table::{Table, DEFAULT_POOL_PAGES};
use crate::wal::{Wal, WalConfig, WalRecord, WAL_TMP_FILE};
use bolton_data::row_store::{RowStoreWriter, StoredDataset};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Pointer file naming the committed checkpoint directory.
pub const CURRENT_FILE: &str = "CURRENT";
const CURRENT_TMP: &str = "CURRENT.tmp";
const CHECKPOINT_TMP: &str = "checkpoint.tmp";
const CATALOG_FILE: &str = "CATALOG";

/// How a durable [`Db`] is opened — directory, vfs, and the WAL knobs the
/// `bismarck_serve` binary exposes as `BOLTON_WAL_*`.
#[derive(Clone)]
pub struct DurabilityOptions {
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
    sync_wal: bool,
    checkpoint_every: u64,
    registry: Option<PathBuf>,
    registry_keep: usize,
    segment_bytes: u64,
    sync_window: Duration,
}

impl DurabilityOptions {
    /// Options for `dir` with production defaults: [`StdVfs`], fsync on
    /// every commit, no automatic checkpoints, no model registry, default
    /// WAL segment size, no fsync batching window.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityOptions {
            dir: dir.into(),
            vfs: Arc::new(StdVfs),
            sync_wal: true,
            checkpoint_every: 0,
            registry: None,
            registry_keep: 0,
            segment_bytes: crate::wal::DEFAULT_SEGMENT_BYTES,
            sync_window: Duration::ZERO,
        }
    }

    /// Routes write-side I/O through `vfs` (fault injection in tests).
    #[must_use]
    pub fn vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.vfs = vfs;
        self
    }

    /// Whether commits fsync the WAL (`false` trades crash safety of the
    /// latest writes for speed — the `BOLTON_WAL_SYNC=off` knob).
    #[must_use]
    pub fn sync_wal(mut self, on: bool) -> Self {
        self.sync_wal = on;
        self
    }

    /// Auto-checkpoint after this many WAL records (0 = manual
    /// `CHECKPOINT` only — the `BOLTON_WAL_CHECKPOINT_EVERY` knob).
    #[must_use]
    pub fn checkpoint_every(mut self, records: u64) -> Self {
        self.checkpoint_every = records;
        self
    }

    /// Also attach a [`ModelRegistry`] rooted at `dir`.
    #[must_use]
    pub fn registry(mut self, dir: impl Into<PathBuf>) -> Self {
        self.registry = Some(dir.into());
        self
    }

    /// Registry retention: keep at most this many newest versions per
    /// model name, GCing superseded artifacts at commit time (0 = keep
    /// everything — the `BOLTON_REGISTRY_KEEP` knob).
    #[must_use]
    pub fn registry_keep(mut self, keep: usize) -> Self {
        self.registry_keep = keep;
        self
    }

    /// WAL segment size before rotation ([`crate::wal::WalConfig::segment_bytes`]).
    #[must_use]
    pub fn segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes;
        self
    }

    /// Group-commit fsync batching window
    /// ([`crate::wal::WalConfig::sync_window`] — the
    /// `BOLTON_WAL_SYNC_WINDOW_US` knob).
    #[must_use]
    pub fn sync_window(mut self, window: Duration) -> Self {
        self.sync_window = window;
        self
    }
}

/// The durable state of a [`Db`] opened on a data directory.
struct Durable {
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
    wal: Wal,
    checkpoint_every: u64,
    /// Sequence number the next checkpoint directory gets.
    checkpoint_seq: AtomicU64,
    /// LSN the committed checkpoint covers (records ≤ this are obsolete).
    checkpoint_lsn: AtomicU64,
    /// Serializes checkpoints (they share the `checkpoint.tmp` staging
    /// directory and the `CURRENT` swap).
    checkpoint_lock: Mutex<()>,
}

/// The catalog map: table name → shared table handle.
type TableMap = BTreeMap<String, Arc<RwLock<Table>>>;

/// A shared, thread-safe database: tables, in-memory models, and an
/// optional versioned on-disk model registry.
#[derive(Default)]
pub struct Db {
    tables: RwLock<TableMap>,
    models: RwLock<BTreeMap<String, Arc<Vec<f64>>>>,
    registry: Option<ModelRegistry>,
    durable: Option<Durable>,
}

impl Db {
    /// An empty database without a model registry (`SAVE MODEL` /
    /// `LOAD MODEL` will error until one is attached).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty database with a [`ModelRegistry`] rooted at `dir`
    /// (created if needed, replayed if it already holds versions).
    ///
    /// # Errors
    /// Registry open failures.
    pub fn with_registry(dir: impl AsRef<Path>) -> DbResult<Self> {
        Self::with_registry_keep(dir, 0)
    }

    /// [`Db::with_registry`] with a retention policy: keep at most `keep`
    /// newest versions per model name (0 = keep everything).
    ///
    /// # Errors
    /// Registry open failures.
    pub fn with_registry_keep(dir: impl AsRef<Path>, keep: usize) -> DbResult<Self> {
        let registry = ModelRegistry::open(dir.as_ref())?;
        registry.set_keep(keep);
        Ok(Self {
            tables: RwLock::default(),
            models: RwLock::default(),
            registry: Some(registry),
            durable: None,
        })
    }

    /// Opens a durable database on `dir` (created if needed), recovering
    /// tables from the committed checkpoint plus the write-ahead log. See
    /// the module docs for the directory layout and recovery protocol.
    ///
    /// # Errors
    /// I/O failures; [`DbError::Corrupt`] when the checkpoint fails
    /// validation (a torn *log* tail is expected crash debris and recovers
    /// cleanly, but a damaged checkpoint does not).
    pub fn open(dir: impl Into<PathBuf>) -> DbResult<Self> {
        Self::open_with(DurabilityOptions::new(dir))
    }

    /// [`Db::open`] with explicit [`DurabilityOptions`].
    ///
    /// # Errors
    /// As [`Db::open`].
    pub fn open_with(opts: DurabilityOptions) -> DbResult<Self> {
        let dir = opts.dir;
        fs::create_dir_all(&dir)?;
        // Crash debris from interrupted checkpoints / log truncations:
        // anything still named *.tmp never committed and is dead.
        let _ = fs::remove_file(dir.join(CURRENT_TMP));
        let _ = fs::remove_file(dir.join(WAL_TMP_FILE));
        let _ = fs::remove_dir_all(dir.join(CHECKPOINT_TMP));

        let current = match fs::read_to_string(dir.join(CURRENT_FILE)) {
            Ok(s) => {
                let name = s.trim().to_string();
                if name.is_empty() {
                    return Err(DbError::Corrupt("empty CURRENT pointer file".to_string()));
                }
                Some(name)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(e.into()),
        };
        // Checkpoint directories CURRENT does not reference are either a
        // commit that crashed before the pointer swap or a superseded
        // snapshot whose deletion crashed; both are garbage.
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let fname = entry.file_name().to_string_lossy().into_owned();
            if fname.starts_with("checkpoint-") && current.as_deref() != Some(fname.as_str()) {
                let _ = fs::remove_dir_all(entry.path());
            }
        }

        let (mut tables, checkpoint_lsn, next_seq) = match &current {
            Some(name) => {
                let seq: u64 =
                    name.strip_prefix("checkpoint-").and_then(|s| s.parse().ok()).ok_or_else(
                        || DbError::Corrupt(format!("CURRENT names invalid checkpoint '{name}'")),
                    )?;
                let (tables, lsn) = load_checkpoint(&dir.join(name), opts.vfs.injects_faults())?;
                (tables, lsn, seq + 1)
            }
            None => (BTreeMap::new(), 0, 1),
        };

        let (wal, records) = Wal::open_with(
            &dir,
            Arc::clone(&opts.vfs),
            WalConfig {
                sync_on_commit: opts.sync_wal,
                min_next_lsn: checkpoint_lsn + 1,
                segment_bytes: opts.segment_bytes,
                sync_window: opts.sync_window,
            },
        )?;
        for (lsn, record) in &records {
            // Records the checkpoint already covers replay as no-ops by
            // being skipped — this is what makes recovery idempotent when
            // a crash lands between the CURRENT swap and the log reset.
            if *lsn <= checkpoint_lsn {
                continue;
            }
            apply_record(&mut tables, *lsn, record)?;
        }

        let registry = match &opts.registry {
            Some(reg_dir) => {
                let registry = ModelRegistry::open(reg_dir)?;
                registry.set_keep(opts.registry_keep);
                Some(registry)
            }
            None => None,
        };
        Ok(Self {
            tables: RwLock::new(tables),
            models: RwLock::default(),
            registry,
            durable: Some(Durable {
                dir,
                vfs: opts.vfs,
                wal,
                checkpoint_every: opts.checkpoint_every,
                checkpoint_seq: AtomicU64::new(next_seq),
                checkpoint_lsn: AtomicU64::new(checkpoint_lsn),
                checkpoint_lock: Mutex::new(()),
            }),
        })
    }

    /// Moves a single-session [`Catalog`]'s tables into a shared `Db`.
    pub fn from_catalog(catalog: Catalog) -> Self {
        let tables = catalog
            .into_tables()
            .into_iter()
            .map(|(name, table)| (name, Arc::new(RwLock::new(table))))
            .collect();
        Self {
            tables: RwLock::new(tables),
            models: RwLock::default(),
            registry: None,
            durable: None,
        }
    }

    /// The durable data directory, when opened with [`Db::open`].
    pub fn data_dir(&self) -> Option<&Path> {
        self.durable.as_ref().map(|d| d.dir.as_path())
    }

    /// Whether mutations are logged and crash-safe.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// The write-ahead log, when durable (tests and telemetry).
    pub fn wal(&self) -> Option<&Wal> {
        self.durable.as_ref().map(|d| &d.wal)
    }

    /// The attached registry, if any.
    pub fn registry(&self) -> Option<&ModelRegistry> {
        self.registry.as_ref()
    }

    /// The attached registry, or a helpful error.
    ///
    /// # Errors
    /// [`DbError::Model`] when the Db was opened without a registry.
    pub fn registry_required(&self) -> DbResult<&ModelRegistry> {
        self.registry.as_ref().ok_or_else(|| {
            DbError::Model(
                "no model registry attached (open the Db with Db::with_registry)".to_string(),
            )
        })
    }

    /// Creates an empty table (WAL-logged and fsynced when durable).
    ///
    /// # Errors
    /// [`DbError::TableExists`] on a name collision; storage failures.
    pub fn create_table(
        &self,
        name: &str,
        dim: usize,
        backing: Backing,
        pool_pages: usize,
    ) -> DbResult<()> {
        let disk = !matches!(backing, Backing::Memory);
        let lsn;
        {
            let mut tables = self.tables.write().expect("catalog lock");
            if tables.contains_key(name) {
                return Err(DbError::TableExists(name.to_string()));
            }
            let mut table = Table::create(name, dim, backing, pool_pages)?;
            lsn = self.log_record(&WalRecord::CreateTable {
                name: name.to_string(),
                dim: dim as u32,
                disk,
            })?;
            if let Some(l) = lsn {
                table.note_lsn(l);
            }
            tables.insert(name.to_string(), Arc::new(RwLock::new(table)));
        }
        self.sync_lsn(lsn)
    }

    /// Registers an already-built table (synthesizer / store loader
    /// output). When durable this logs the table as a CREATE plus one
    /// INSERT per row — correct for any source, at the cost of walking
    /// the rows once; `CREATE TABLE … FROM STORE` goes through the
    /// compact [`Db::create_table_from_store`] instead.
    ///
    /// # Errors
    /// [`DbError::TableExists`] on a name collision.
    pub fn register_table(&self, table: Table) -> DbResult<()> {
        let name = table.name().to_string();
        let mut last_lsn = None;
        {
            let mut tables = self.tables.write().expect("catalog lock");
            if tables.contains_key(&name) {
                return Err(DbError::TableExists(name));
            }
            let mut table = table;
            if let Some(d) = &self.durable {
                let disk = !matches!(table.backing(), Backing::Memory);
                last_lsn = Some(d.wal.append(&WalRecord::CreateTable {
                    name: name.clone(),
                    dim: table.dim() as u32,
                    disk,
                })?);
                let mut log_err = None;
                table.scan_rows(&mut |_, x, y| {
                    if log_err.is_none() {
                        let record = WalRecord::Insert {
                            name: name.clone(),
                            features: x.to_vec(),
                            label: y,
                        };
                        match d.wal.append(&record) {
                            Ok(l) => last_lsn = Some(l),
                            Err(e) => log_err = Some(e),
                        }
                    }
                })?;
                if let Some(e) = log_err {
                    return Err(e);
                }
            }
            if let Some(l) = last_lsn {
                table.note_lsn(l);
            }
            tables.insert(name, Arc::new(RwLock::new(table)));
        }
        self.sync_lsn(last_lsn)
    }

    /// Loads a `bolton_data` row store as a new table, logging the compact
    /// `CREATE … FROM STORE` record. Until the next checkpoint, recovery
    /// re-reads `path` — a checkpoint snapshots the rows and drops that
    /// external dependency.
    ///
    /// # Errors
    /// [`DbError::TableExists`] on a collision; [`DbError::Corrupt`] for a
    /// bad or empty store.
    pub fn create_table_from_store(
        &self,
        name: &str,
        path: &str,
        disk: bool,
        pool_pages: usize,
    ) -> DbResult<usize> {
        // Load outside the catalog lock (the store may be large), then
        // re-check the name under the lock.
        let mut table = crate::sql::table_from_store(name, path, disk, pool_pages)?;
        let rows = table.row_count();
        let lsn;
        {
            let mut tables = self.tables.write().expect("catalog lock");
            if tables.contains_key(name) {
                return Err(DbError::TableExists(name.to_string()));
            }
            lsn = self.log_record(&WalRecord::CreateFromStore {
                name: name.to_string(),
                path: path.to_string(),
                disk,
            })?;
            if let Some(l) = lsn {
                table.note_lsn(l);
            }
            tables.insert(name.to_string(), Arc::new(RwLock::new(table)));
        }
        self.sync_lsn(lsn)?;
        Ok(rows)
    }

    /// Shared handle to a table. Callers take the table's read lock to
    /// scan and the write lock to mutate; the catalog map lock is released
    /// before this returns, so holding the handle never blocks CREATE/DROP
    /// of *other* tables.
    ///
    /// # Errors
    /// [`DbError::TableNotFound`] when absent.
    pub fn table(&self, name: &str) -> DbResult<Arc<RwLock<Table>>> {
        let tables = self.tables.read().expect("catalog lock");
        tables.get(name).cloned().ok_or_else(|| DbError::TableNotFound(name.to_string()))
    }

    /// Drops a table from the catalog. Sessions still holding the handle
    /// keep a usable table until the last `Arc` drops (MVCC-by-refcount).
    ///
    /// # Errors
    /// [`DbError::TableNotFound`] when absent.
    pub fn drop_table(&self, name: &str) -> DbResult<()> {
        let lsn;
        {
            let mut tables = self.tables.write().expect("catalog lock");
            if !tables.contains_key(name) {
                return Err(DbError::TableNotFound(name.to_string()));
            }
            lsn = self.log_record(&WalRecord::DropTable { name: name.to_string() })?;
            tables.remove(name);
        }
        self.sync_lsn(lsn)
    }

    /// Inserts one row into table `name`, WAL-first when durable: the
    /// record is appended under the table's write lock (so log order is
    /// apply order) and fsynced after the lock drops — an `Ok` return
    /// means the row survives a crash.
    ///
    /// # Errors
    /// [`DbError::TableNotFound`] / [`DbError::SchemaMismatch`]; storage
    /// and log failures.
    pub fn insert_row(&self, name: &str, features: &[f64], label: f64) -> DbResult<()> {
        let handle = self.table(name)?;
        let lsn = {
            let mut table = handle.write().expect("table lock");
            self.log_apply_insert(&mut table, name, features, label)?
        };
        self.sync_lsn(lsn)
    }

    /// The shared INSERT body: validate, log, apply, stamp — under the
    /// caller's table write lock. Returns the LSN to sync (None when not
    /// durable). `COPY FROM` loops this and syncs once at the end.
    pub(crate) fn log_apply_insert(
        &self,
        table: &mut Table,
        name: &str,
        features: &[f64],
        label: f64,
    ) -> DbResult<Option<u64>> {
        if features.len() != table.dim() {
            return Err(DbError::SchemaMismatch { expected: table.dim(), got: features.len() });
        }
        match &self.durable {
            Some(d) => {
                let lsn = d.wal.append(&WalRecord::Insert {
                    name: name.to_string(),
                    features: features.to_vec(),
                    label,
                })?;
                table.insert_at_lsn(features, label, lsn)?;
                Ok(Some(lsn))
            }
            None => {
                table.insert(features, label)?;
                Ok(None)
            }
        }
    }

    /// Appends `record` to the WAL (no fsync). Callers must hold the lock
    /// that serializes the mutation the record describes, and must call
    /// [`Db::sync_lsn`] after releasing it, before acknowledging.
    ///
    /// # Errors
    /// Log I/O failures.
    pub(crate) fn log_record(&self, record: &WalRecord) -> DbResult<Option<u64>> {
        match &self.durable {
            Some(d) => Ok(Some(d.wal.append(record)?)),
            None => Ok(None),
        }
    }

    /// Group-commits the log through `lsn` (no-op for `None` / non-durable).
    ///
    /// # Errors
    /// Fsync failures — the caller must not acknowledge the write.
    pub(crate) fn sync_lsn(&self, lsn: Option<u64>) -> DbResult<()> {
        match (&self.durable, lsn) {
            (Some(d), Some(lsn)) => d.wal.sync_to(lsn),
            _ => Ok(()),
        }
    }

    /// Snapshots every table into a fresh `checkpoint-N/` directory (the
    /// `bolton_data` row-store format), commits it via the `CURRENT`
    /// pointer swap, and truncates the WAL. Returns the number of tables
    /// snapshotted and the LSN the checkpoint covers.
    ///
    /// Holds the catalog read lock plus every table's read lock while the
    /// snapshot is written, so writers stall but readers keep scanning.
    ///
    /// # Errors
    /// [`DbError::Wal`] when the db is not durable; I/O failures.
    pub fn checkpoint(&self) -> DbResult<(usize, u64)> {
        let d = self.durable.as_ref().ok_or_else(|| {
            DbError::Wal(
                "CHECKPOINT requires a durable data directory (open the Db with Db::open)"
                    .to_string(),
            )
        })?;
        let _serial = d.checkpoint_lock.lock().expect("checkpoint lock");
        let tables = self.tables.read().expect("catalog lock");
        let guards: Vec<(&String, std::sync::RwLockReadGuard<'_, Table>)> =
            tables.iter().map(|(n, t)| (n, t.read().expect("table lock"))).collect();
        let n_tables = guards.len();
        // The snapshot must never get ahead of the durable log: sync first,
        // then everything ≤ lsn is both applied (locks held) and durable.
        let lsn = d.wal.sync_all()?;

        let tmp = d.dir.join(CHECKPOINT_TMP);
        let _ = fs::remove_dir_all(&tmp);
        fs::create_dir_all(&tmp)?;
        let mut catalog_text = format!("bolton-checkpoint v1\nlsn {lsn}\n");
        for (name, t) in &guards {
            if matches!(t.backing(), Backing::File(_)) {
                // Named heap files are user-visible artifacts: leave them
                // bytewise complete alongside the snapshot.
                t.flush_durable()?;
            }
            let disk = u8::from(!matches!(t.backing(), Backing::Memory));
            catalog_text.push_str(&format!("table {name} {} {disk} {}\n", t.dim(), t.row_count()));
            if t.row_count() > 0 {
                let store_path = tmp.join(format!("{name}.rowstore"));
                let chunk_rows = Page::rows_per_page(t.dim()).max(1);
                let mut writer = RowStoreWriter::create_dense(&store_path, t.dim(), chunk_rows)
                    .map_err(checkpoint_err)?;
                let mut write_err = None;
                t.scan_rows(&mut |_, x, y| {
                    if write_err.is_none() {
                        if let Err(e) = writer.push_dense(x, y) {
                            write_err = Some(e);
                        }
                    }
                })?;
                if let Some(e) = write_err {
                    return Err(checkpoint_err(e));
                }
                writer.finish().map_err(checkpoint_err)?;
                d.vfs.sync_file(&store_path)?;
            }
        }
        drop(guards);
        drop(tables);

        let catalog_file = d.vfs.create(&tmp.join(CATALOG_FILE))?;
        catalog_file.write_all(catalog_text.as_bytes())?;
        catalog_file.sync()?;
        drop(catalog_file);
        d.vfs.sync_dir(&tmp)?;

        // Commit: name the staged directory, swap CURRENT, truncate log.
        let seq = d.checkpoint_seq.fetch_add(1, Ordering::SeqCst);
        let ckpt_name = format!("checkpoint-{seq}");
        let ckpt_dir = d.dir.join(&ckpt_name);
        let _ = fs::remove_dir_all(&ckpt_dir);
        d.vfs.rename(&tmp, &ckpt_dir)?;
        d.vfs.sync_dir(&d.dir)?;
        let cur_tmp = d.dir.join(CURRENT_TMP);
        let cur = d.vfs.create(&cur_tmp)?;
        cur.write_all(format!("{ckpt_name}\n").as_bytes())?;
        cur.sync()?;
        drop(cur);
        d.vfs.rename(&cur_tmp, &d.dir.join(CURRENT_FILE))?;
        d.vfs.sync_dir(&d.dir)?;
        d.checkpoint_lsn.store(lsn, Ordering::SeqCst);
        // The checkpoint is committed; the records it covers are obsolete.
        // Records past `lsn` (appended after the snapshot guards dropped)
        // are carried over, never truncated.
        d.wal.reset(lsn)?;
        // Best-effort removal of superseded snapshots; a crash here just
        // leaves directories the next open garbage-collects.
        if let Ok(entries) = fs::read_dir(&d.dir) {
            for entry in entries.flatten() {
                let fname = entry.file_name().to_string_lossy().into_owned();
                if fname.starts_with("checkpoint-") && fname != ckpt_name {
                    let _ = fs::remove_dir_all(entry.path());
                }
            }
        }
        Ok((n_tables, lsn))
    }

    /// Runs [`Db::checkpoint`] if the auto-checkpoint threshold is set and
    /// the WAL has accumulated that many records. Sessions call this after
    /// a mutation commits, with no locks held.
    ///
    /// # Errors
    /// Checkpoint failures.
    pub fn maybe_checkpoint(&self) -> DbResult<()> {
        if let Some(d) = &self.durable {
            if d.checkpoint_every > 0 && d.wal.records_since_checkpoint() >= d.checkpoint_every {
                self.checkpoint()?;
            }
        }
        Ok(())
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().expect("catalog lock").keys().cloned().collect()
    }

    /// Publishes a model under `name` in shared memory (visible to every
    /// session immediately).
    pub fn put_model(&self, name: &str, w: Vec<f64>) {
        let mut models = self.models.write().expect("model map lock");
        models.insert(name.to_string(), Arc::new(w));
    }

    /// A shared handle to an in-memory model.
    ///
    /// # Errors
    /// [`DbError::ModelNotFound`] when absent.
    pub fn model(&self, name: &str) -> DbResult<Arc<Vec<f64>>> {
        let models = self.models.read().expect("model map lock");
        models.get(name).cloned().ok_or_else(|| DbError::ModelNotFound(name.to_string()))
    }

    /// Names of all in-memory models, sorted.
    pub fn model_names(&self) -> Vec<String> {
        self.models.read().expect("model map lock").keys().cloned().collect()
    }
}

fn checkpoint_err(e: impl std::fmt::Display) -> DbError {
    DbError::Wal(format!("checkpoint: {e}"))
}

/// Loads a committed checkpoint directory: parses `CATALOG`, streams each
/// non-empty table's row store back into a fresh [`Table`].
///
/// `copy_mode` forces [`StoredDataset::open_copying`] so recovery reads stay
/// on the plain-`read` path when the active [`Vfs`](crate::fault::Vfs)
/// injects faults — mmap would bypass the vfs and hide injected errors.
fn load_checkpoint(ckpt_dir: &Path, copy_mode: bool) -> DbResult<(TableMap, u64)> {
    use bolton_sgd::TrainSet;
    let corrupt =
        |msg: String| DbError::Corrupt(format!("checkpoint {}: {msg}", ckpt_dir.display()));
    let text = fs::read_to_string(ckpt_dir.join(CATALOG_FILE))
        .map_err(|e| corrupt(format!("read CATALOG: {e}")))?;
    let mut lines = text.lines();
    if lines.next() != Some("bolton-checkpoint v1") {
        return Err(corrupt("bad CATALOG header".to_string()));
    }
    let lsn: u64 = lines
        .next()
        .and_then(|l| l.strip_prefix("lsn "))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| corrupt("bad CATALOG lsn line".to_string()))?;
    let mut tables = BTreeMap::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let (name, dim, disk, rows) = match parts.as_slice() {
            ["table", name, dim, disk, rows] => {
                let dim: usize =
                    dim.parse().map_err(|_| corrupt(format!("bad dim in '{line}'")))?;
                let rows: usize =
                    rows.parse().map_err(|_| corrupt(format!("bad rows in '{line}'")))?;
                (*name, dim, *disk == "1", rows)
            }
            _ => return Err(corrupt(format!("bad CATALOG line '{line}'"))),
        };
        let backing = if disk { Backing::TempFile } else { Backing::Memory };
        let mut table = Table::create(name, dim, backing, DEFAULT_POOL_PAGES)?;
        if rows > 0 {
            let store_path = ckpt_dir.join(format!("{name}.rowstore"));
            let store = if copy_mode {
                StoredDataset::open_copying(&store_path)
            } else {
                StoredDataset::open(&store_path)
            }
            .map_err(|e| corrupt(format!("row store for '{name}': {e}")))?;
            if TrainSet::dim(&store) != dim {
                return Err(corrupt(format!(
                    "row store for '{name}' has dim {}, CATALOG says {dim}",
                    TrainSet::dim(&store)
                )));
            }
            let mut insert_err = None;
            store.scan(&mut |_, x, y| {
                if insert_err.is_none() {
                    if let Err(e) = table.insert(x, y) {
                        insert_err = Some(e);
                    }
                }
            });
            if let Some(e) = insert_err {
                return Err(e);
            }
        }
        if table.row_count() != rows {
            return Err(corrupt(format!(
                "row store for '{name}' holds {} rows, CATALOG says {rows}",
                table.row_count()
            )));
        }
        table.note_lsn(lsn);
        table.flush()?;
        tables.insert(name.to_string(), Arc::new(RwLock::new(table)));
    }
    Ok((tables, lsn))
}

/// Applies one replayed WAL record to the recovering catalog. Replay runs
/// single-threaded inside `Db::open`, so the table locks are uncontended.
fn apply_record(tables: &mut TableMap, lsn: u64, record: &WalRecord) -> DbResult<()> {
    let missing =
        |name: &str| DbError::Corrupt(format!("wal replay (lsn {lsn}): table '{name}' not found"));
    let collides = |name: &str| {
        DbError::Corrupt(format!("wal replay (lsn {lsn}): table '{name}' already exists"))
    };
    match record {
        WalRecord::CreateTable { name, dim, disk } => {
            if tables.contains_key(name) {
                return Err(collides(name));
            }
            let backing = if *disk { Backing::TempFile } else { Backing::Memory };
            let mut table =
                Table::create(name.as_str(), *dim as usize, backing, DEFAULT_POOL_PAGES)?;
            table.note_lsn(lsn);
            tables.insert(name.clone(), Arc::new(RwLock::new(table)));
        }
        WalRecord::CreateFromStore { name, path, disk } => {
            if tables.contains_key(name) {
                return Err(collides(name));
            }
            let mut table = crate::sql::table_from_store(name, path, *disk, DEFAULT_POOL_PAGES)
                .map_err(|e| {
                    DbError::Wal(format!(
                        "replay CREATE FROM STORE '{path}' (lsn {lsn}): {e}; \
                         a CHECKPOINT snapshots such tables and drops the external dependency"
                    ))
                })?;
            table.note_lsn(lsn);
            tables.insert(name.clone(), Arc::new(RwLock::new(table)));
        }
        WalRecord::DropTable { name } => {
            tables.remove(name).ok_or_else(|| missing(name))?;
        }
        WalRecord::Insert { name, features, label } => {
            let handle = tables.get(name).ok_or_else(|| missing(name))?;
            handle.write().expect("table lock").insert_at_lsn(features, *label, lsn)?;
        }
        WalRecord::Synth { name, rows, seed, noise } => {
            // SYNTH logs its spec, not its rows: re-synthesizing with the
            // same seed is deterministic and bit-identical.
            let handle = tables.get(name).ok_or_else(|| missing(name))?;
            let mut table = handle.write().expect("table lock");
            let spec = SynthSpec {
                rows: *rows as usize,
                dim: table.dim(),
                label_noise: *noise,
                feature_scale: 1.0,
            };
            let backing = table.backing().clone();
            let mut rng = bolton_rng::seeded(*seed);
            *table = crate::synth::synthesize(name, &spec, backing, DEFAULT_POOL_PAGES, &mut rng)?;
            table.note_lsn(lsn);
        }
        WalRecord::Shuffle { name, seed } => {
            let handle = tables.get(name).ok_or_else(|| missing(name))?;
            let mut table = handle.write().expect("table lock");
            table.shuffle(&mut bolton_rng::seeded(*seed))?;
            table.note_lsn(lsn);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_lookup_drop_cycle() {
        let db = Db::new();
        db.create_table("t", 3, Backing::Memory, 8).unwrap();
        assert!(matches!(
            db.create_table("t", 3, Backing::Memory, 8),
            Err(DbError::TableExists(_))
        ));
        {
            let handle = db.table("t").unwrap();
            let mut table = handle.write().expect("table lock");
            table.insert(&[1.0, 2.0, 3.0], 1.0).unwrap();
        }
        assert_eq!(db.table("t").unwrap().read().expect("table lock").row_count(), 1);
        assert_eq!(db.table_names(), vec!["t".to_string()]);
        db.drop_table("t").unwrap();
        assert!(matches!(db.table("t"), Err(DbError::TableNotFound(_))));
    }

    #[test]
    fn dropped_table_survives_for_holders() {
        let db = Db::new();
        db.create_table("t", 2, Backing::Memory, 8).unwrap();
        db.table("t").unwrap().write().expect("lock").insert(&[1.0, 2.0], -1.0).unwrap();
        let held = db.table("t").unwrap();
        db.drop_table("t").unwrap();
        // The session that grabbed the handle before the drop still scans.
        assert_eq!(held.read().expect("lock").row_count(), 1);
    }

    #[test]
    fn models_are_shared() {
        let db = Db::new();
        assert!(matches!(db.model("m"), Err(DbError::ModelNotFound(_))));
        db.put_model("m", vec![0.5, -0.5]);
        assert_eq!(*db.model("m").unwrap(), vec![0.5, -0.5]);
        assert_eq!(db.model_names(), vec!["m".to_string()]);
    }

    #[test]
    fn registry_requirement_is_explicit() {
        let db = Db::new();
        assert!(matches!(db.registry_required(), Err(DbError::Model(_))));
        assert!(db.registry().is_none());
    }

    #[test]
    fn from_catalog_migrates_tables() {
        let mut catalog = Catalog::new();
        catalog.create_table("a", 2, Backing::Memory, 8).unwrap();
        catalog.get_mut("a").unwrap().insert(&[1.0, 2.0], 1.0).unwrap();
        let db = Db::from_catalog(catalog);
        assert_eq!(db.table("a").unwrap().read().expect("lock").row_count(), 1);
    }

    fn data_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bolton-db-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Bit-exact scan snapshot of every table: name → (feature bits, label
    /// bits) per row.
    fn scan_bits(db: &Db) -> BTreeMap<String, Vec<(Vec<u64>, u64)>> {
        let mut out = BTreeMap::new();
        for name in db.table_names() {
            let handle = db.table(&name).unwrap();
            let table = handle.read().expect("table lock");
            let mut rows = Vec::new();
            table
                .scan_rows(&mut |_, x, y| {
                    rows.push((x.iter().map(|v| v.to_bits()).collect(), y.to_bits()));
                })
                .unwrap();
            out.insert(name, rows);
        }
        out
    }

    #[test]
    fn non_durable_db_rejects_checkpoint() {
        let db = Db::new();
        assert!(!db.is_durable());
        assert!(db.wal().is_none());
        assert!(matches!(db.checkpoint(), Err(DbError::Wal(_))));
    }

    #[test]
    fn durable_writes_survive_reopen() {
        let dir = data_dir("reopen");
        {
            let db = Db::open(&dir).unwrap();
            assert!(db.is_durable());
            assert_eq!(db.data_dir(), Some(dir.as_path()));
            db.create_table("t", 3, Backing::Memory, 8).unwrap();
            db.insert_row("t", &[1.0, 2.5, -0.125], 1.0).unwrap();
            db.insert_row("t", &[4.0, 5.0, 6.0], -1.0).unwrap();
            db.create_table("gone", 2, Backing::TempFile, 8).unwrap();
            db.drop_table("gone").unwrap();
        }
        let db = Db::open(&dir).unwrap();
        assert_eq!(db.table_names(), vec!["t".to_string()]);
        let handle = db.table("t").unwrap();
        let table = handle.read().expect("lock");
        assert_eq!(table.row_count(), 2);
        let mut buf = vec![0.0; 3];
        assert_eq!(table.read_row(0, &mut buf).unwrap(), 1.0);
        assert_eq!(buf, vec![1.0, 2.5, -0.125]);
        assert!(table.last_lsn() > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_log_and_replays_only_the_tail() {
        let dir = data_dir("ckpt");
        let reference;
        {
            let db = Db::open(&dir).unwrap();
            db.create_table("t", 2, Backing::Memory, 8).unwrap();
            for i in 0..30 {
                db.insert_row("t", &[i as f64, -(i as f64)], 1.0).unwrap();
            }
            let (n_tables, lsn) = db.checkpoint().unwrap();
            assert_eq!(n_tables, 1);
            assert_eq!(lsn, 31);
            assert_eq!(db.wal().unwrap().records_since_checkpoint(), 0);
            // Every covered segment was deleted; what remains is empty.
            let live_wal_bytes: u64 = fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| {
                    let e = e.unwrap();
                    e.file_name()
                        .to_str()
                        .and_then(crate::wal::parse_segment_seq)
                        .map(|_| e.metadata().unwrap().len())
                })
                .sum();
            assert_eq!(live_wal_bytes, 0);
            // Post-checkpoint tail: three more rows in the log only.
            for i in 30..33 {
                db.insert_row("t", &[i as f64, -(i as f64)], -1.0).unwrap();
            }
            reference = scan_bits(&db);
        }
        let db = Db::open(&dir).unwrap();
        assert_eq!(db.wal().unwrap().records_since_checkpoint(), 3);
        assert_eq!(scan_bits(&db), reference);
        // Recovery is idempotent: a second reopen is bit-identical too.
        drop(db);
        let db = Db::open(&dir).unwrap();
        assert_eq!(scan_bits(&db), reference);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn synth_and_shuffle_replay_bit_identically() {
        let dir = data_dir("synth");
        let reference;
        {
            let db = Db::open(&dir).unwrap();
            db.create_table("t", 4, Backing::Memory, 8).unwrap();
            let handle = db.table("t").unwrap();
            {
                let mut table = handle.write().expect("lock");
                let lsn = db
                    .log_record(&WalRecord::Synth {
                        name: "t".into(),
                        rows: 50,
                        seed: 9,
                        noise: 0.1,
                    })
                    .unwrap();
                let spec = SynthSpec { rows: 50, dim: 4, label_noise: 0.1, feature_scale: 1.0 };
                let mut rng = bolton_rng::seeded(9);
                *table = crate::synth::synthesize(
                    "t",
                    &spec,
                    Backing::Memory,
                    DEFAULT_POOL_PAGES,
                    &mut rng,
                )
                .unwrap();
                if let Some(l) = lsn {
                    table.note_lsn(l);
                }
                let lsn2 =
                    db.log_record(&WalRecord::Shuffle { name: "t".into(), seed: 3 }).unwrap();
                table.shuffle(&mut bolton_rng::seeded(3)).unwrap();
                if let Some(l) = lsn2 {
                    table.note_lsn(l);
                }
            }
            db.sync_lsn(Some(db.wal().unwrap().appended_lsn())).unwrap();
            reference = scan_bits(&db);
        }
        let db = Db::open(&dir).unwrap();
        assert_eq!(scan_bits(&db), reference, "seeded SYNTH+SHUFFLE replay is deterministic");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_checkpoint_fires_at_the_threshold() {
        let dir = data_dir("auto");
        let db = Db::open_with(DurabilityOptions::new(&dir).checkpoint_every(5)).unwrap();
        db.create_table("t", 2, Backing::Memory, 8).unwrap();
        for i in 0..3 {
            db.insert_row("t", &[i as f64, 0.0], 1.0).unwrap();
            db.maybe_checkpoint().unwrap();
        }
        assert!(!dir.join(CURRENT_FILE).exists(), "4 records < threshold 5");
        db.insert_row("t", &[9.0, 9.0], 1.0).unwrap();
        db.maybe_checkpoint().unwrap();
        assert!(dir.join(CURRENT_FILE).exists(), "threshold reached");
        assert_eq!(db.wal().unwrap().records_since_checkpoint(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn register_table_logs_rows_when_durable() {
        let dir = data_dir("register");
        let reference;
        {
            let db = Db::open(&dir).unwrap();
            let mut t = Table::in_memory("pre", 2);
            t.insert(&[0.5, -0.5], 1.0).unwrap();
            t.insert(&[1.5, -1.5], -1.0).unwrap();
            db.register_table(t).unwrap();
            reference = scan_bits(&db);
        }
        let db = Db::open(&dir).unwrap();
        assert_eq!(scan_bits(&db), reference);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_discards_stale_checkpoint_dirs_and_tmp_debris() {
        let dir = data_dir("debris");
        {
            let db = Db::open(&dir).unwrap();
            db.create_table("t", 2, Backing::Memory, 8).unwrap();
            db.insert_row("t", &[1.0, 2.0], 1.0).unwrap();
            db.checkpoint().unwrap();
        }
        // Simulate crash debris: an orphan staged checkpoint, a stale
        // unreferenced snapshot, and tmp pointer files.
        fs::create_dir_all(dir.join(CHECKPOINT_TMP)).unwrap();
        fs::write(dir.join(CHECKPOINT_TMP).join(CATALOG_FILE), "garbage").unwrap();
        fs::create_dir_all(dir.join("checkpoint-99")).unwrap();
        fs::write(dir.join(CURRENT_TMP), "checkpoint-99\n").unwrap();
        fs::write(dir.join(WAL_TMP_FILE), "junk").unwrap();
        let db = Db::open(&dir).unwrap();
        assert_eq!(db.table("t").unwrap().read().expect("lock").row_count(), 1);
        assert!(!dir.join(CHECKPOINT_TMP).exists());
        assert!(!dir.join("checkpoint-99").exists());
        assert!(!dir.join(CURRENT_TMP).exists());
        assert!(!dir.join(WAL_TMP_FILE).exists());
        let _ = fs::remove_dir_all(&dir);
    }
}

//! The shared database: one process-wide [`Db`] that any number of
//! [`crate::session::Session`]s drive concurrently.
//!
//! Concurrency model (two-level locking, always acquired catalog → table):
//!
//! * The **catalog map** is an `RwLock` over `name → Arc<RwLock<Table>>`.
//!   Lookups take the read lock just long enough to clone the `Arc`;
//!   CREATE/DROP take the write lock for a map edit only — never while any
//!   table work runs.
//! * Each **table** is its own `RwLock`. Scans (`SELECT`, `EVAL`, `TRAIN`
//!   — training never mutates the table: sampling orders come from the
//!   engine's permutation schemes, not an in-place shuffle) share the read
//!   lock, so any number of readers overlap with one long-running trainer.
//!   `INSERT`/`SHUFFLE`/`SYNTH` take the table write lock.
//! * Below both, the table's buffer pool has its own page latch
//!   ([`crate::table::Table`]), so concurrent readers of one table
//!   interleave at page granularity without torn reads.
//!
//! Shared **models** live in a third map (`name → Arc<[f64]>`): `TRAIN`
//! publishes, `EVAL` reads, `SAVE MODEL` commits to the optional on-disk
//! [`ModelRegistry`], and `LOAD MODEL` republishes a committed version.

use crate::catalog::Catalog;
use crate::error::{DbError, DbResult};
use crate::heap::Backing;
use crate::registry::ModelRegistry;
use crate::table::Table;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, RwLock};

/// A shared, thread-safe database: tables, in-memory models, and an
/// optional versioned on-disk model registry.
#[derive(Default)]
pub struct Db {
    tables: RwLock<BTreeMap<String, Arc<RwLock<Table>>>>,
    models: RwLock<BTreeMap<String, Arc<Vec<f64>>>>,
    registry: Option<ModelRegistry>,
}

impl Db {
    /// An empty database without a model registry (`SAVE MODEL` /
    /// `LOAD MODEL` will error until one is attached).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty database with a [`ModelRegistry`] rooted at `dir`
    /// (created if needed, replayed if it already holds versions).
    ///
    /// # Errors
    /// Registry open failures.
    pub fn with_registry(dir: impl AsRef<Path>) -> DbResult<Self> {
        Ok(Self {
            tables: RwLock::default(),
            models: RwLock::default(),
            registry: Some(ModelRegistry::open(dir.as_ref())?),
        })
    }

    /// Moves a single-session [`Catalog`]'s tables into a shared `Db`.
    pub fn from_catalog(catalog: Catalog) -> Self {
        let tables = catalog
            .into_tables()
            .into_iter()
            .map(|(name, table)| (name, Arc::new(RwLock::new(table))))
            .collect();
        Self { tables: RwLock::new(tables), models: RwLock::default(), registry: None }
    }

    /// The attached registry, if any.
    pub fn registry(&self) -> Option<&ModelRegistry> {
        self.registry.as_ref()
    }

    /// The attached registry, or a helpful error.
    ///
    /// # Errors
    /// [`DbError::Model`] when the Db was opened without a registry.
    pub fn registry_required(&self) -> DbResult<&ModelRegistry> {
        self.registry.as_ref().ok_or_else(|| {
            DbError::Model(
                "no model registry attached (open the Db with Db::with_registry)".to_string(),
            )
        })
    }

    /// Creates an empty table.
    ///
    /// # Errors
    /// [`DbError::TableExists`] on a name collision; storage failures.
    pub fn create_table(
        &self,
        name: &str,
        dim: usize,
        backing: Backing,
        pool_pages: usize,
    ) -> DbResult<()> {
        let mut tables = self.tables.write().expect("catalog lock");
        if tables.contains_key(name) {
            return Err(DbError::TableExists(name.to_string()));
        }
        let table = Table::create(name, dim, backing, pool_pages)?;
        tables.insert(name.to_string(), Arc::new(RwLock::new(table)));
        Ok(())
    }

    /// Registers an already-built table (synthesizer / store loader
    /// output).
    ///
    /// # Errors
    /// [`DbError::TableExists`] on a name collision.
    pub fn register_table(&self, table: Table) -> DbResult<()> {
        let name = table.name().to_string();
        let mut tables = self.tables.write().expect("catalog lock");
        if tables.contains_key(&name) {
            return Err(DbError::TableExists(name));
        }
        tables.insert(name, Arc::new(RwLock::new(table)));
        Ok(())
    }

    /// Shared handle to a table. Callers take the table's read lock to
    /// scan and the write lock to mutate; the catalog map lock is released
    /// before this returns, so holding the handle never blocks CREATE/DROP
    /// of *other* tables.
    ///
    /// # Errors
    /// [`DbError::TableNotFound`] when absent.
    pub fn table(&self, name: &str) -> DbResult<Arc<RwLock<Table>>> {
        let tables = self.tables.read().expect("catalog lock");
        tables.get(name).cloned().ok_or_else(|| DbError::TableNotFound(name.to_string()))
    }

    /// Drops a table from the catalog. Sessions still holding the handle
    /// keep a usable table until the last `Arc` drops (MVCC-by-refcount).
    ///
    /// # Errors
    /// [`DbError::TableNotFound`] when absent.
    pub fn drop_table(&self, name: &str) -> DbResult<()> {
        let mut tables = self.tables.write().expect("catalog lock");
        tables.remove(name).map(|_| ()).ok_or_else(|| DbError::TableNotFound(name.to_string()))
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().expect("catalog lock").keys().cloned().collect()
    }

    /// Publishes a model under `name` in shared memory (visible to every
    /// session immediately).
    pub fn put_model(&self, name: &str, w: Vec<f64>) {
        let mut models = self.models.write().expect("model map lock");
        models.insert(name.to_string(), Arc::new(w));
    }

    /// A shared handle to an in-memory model.
    ///
    /// # Errors
    /// [`DbError::ModelNotFound`] when absent.
    pub fn model(&self, name: &str) -> DbResult<Arc<Vec<f64>>> {
        let models = self.models.read().expect("model map lock");
        models.get(name).cloned().ok_or_else(|| DbError::ModelNotFound(name.to_string()))
    }

    /// Names of all in-memory models, sorted.
    pub fn model_names(&self) -> Vec<String> {
        self.models.read().expect("model map lock").keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_lookup_drop_cycle() {
        let db = Db::new();
        db.create_table("t", 3, Backing::Memory, 8).unwrap();
        assert!(matches!(
            db.create_table("t", 3, Backing::Memory, 8),
            Err(DbError::TableExists(_))
        ));
        {
            let handle = db.table("t").unwrap();
            let mut table = handle.write().expect("table lock");
            table.insert(&[1.0, 2.0, 3.0], 1.0).unwrap();
        }
        assert_eq!(db.table("t").unwrap().read().expect("table lock").row_count(), 1);
        assert_eq!(db.table_names(), vec!["t".to_string()]);
        db.drop_table("t").unwrap();
        assert!(matches!(db.table("t"), Err(DbError::TableNotFound(_))));
    }

    #[test]
    fn dropped_table_survives_for_holders() {
        let db = Db::new();
        db.create_table("t", 2, Backing::Memory, 8).unwrap();
        db.table("t").unwrap().write().expect("lock").insert(&[1.0, 2.0], -1.0).unwrap();
        let held = db.table("t").unwrap();
        db.drop_table("t").unwrap();
        // The session that grabbed the handle before the drop still scans.
        assert_eq!(held.read().expect("lock").row_count(), 1);
    }

    #[test]
    fn models_are_shared() {
        let db = Db::new();
        assert!(matches!(db.model("m"), Err(DbError::ModelNotFound(_))));
        db.put_model("m", vec![0.5, -0.5]);
        assert_eq!(*db.model("m").unwrap(), vec![0.5, -0.5]);
        assert_eq!(db.model_names(), vec!["m".to_string()]);
    }

    #[test]
    fn registry_requirement_is_explicit() {
        let db = Db::new();
        assert!(matches!(db.registry_required(), Err(DbError::Model(_))));
        assert!(db.registry().is_none());
    }

    #[test]
    fn from_catalog_migrates_tables() {
        let mut catalog = Catalog::new();
        catalog.create_table("a", 2, Backing::Memory, 8).unwrap();
        catalog.get_mut("a").unwrap().insert(&[1.0, 2.0], 1.0).unwrap();
        let db = Db::from_catalog(catalog);
        assert_eq!(db.table("a").unwrap().read().expect("lock").row_count(), 1);
    }
}
